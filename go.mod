module bgpcoll

go 1.22
