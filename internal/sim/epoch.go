// Conservative parallel epochs.
//
// A sharded run advances in windows [T, T+L) where T is the minimum pending
// timestamp across all shards and L is the kernel lookahead. Within a window
// every peer shard executes independently — in parallel on the window worker
// goroutines, or sequentially in shard order under noShard — because the
// post-time contract guarantees nothing produced inside the window can
// affect a peer shard before it ends: a post into a peer shard must land at
// or after src.now + L, and src.now >= T for the whole window, so the
// message lands at or after T + L = W. Hub shards run after the peer phase
// within the same window, so posts into a hub only need t >= src.now — the
// hub has not yet executed any instant the sender has reached.
//
// Cross-shard messages are buffered into per-(src,dst) lanes and delivered
// by the controller between phases. Delivery order is deterministic: for
// each destination, all incoming lanes are concatenated in source-shard-id
// order and stable-sorted by timestamp, so equal-time messages keep (src id,
// lane position) order — a pure function of the simulation, independent of
// which goroutine ran which shard when. Delivered messages enter the
// destination's heap through the normal push path, acquiring per-shard seqs
// in delivery order; since every delivered timestamp is strictly after the
// destination's clock (the window-edge invariant below), delivery never
// races the destination's same-instant ring.
//
// Window-edge invariant: when a shard finishes a window bounded by W, its
// ring is empty, every heap entry is at t >= W, and its clock is < W. Mail
// delivered for the next window therefore always lands in the future of the
// destination's clock.
package sim

import (
	"fmt"
	"sort"
)

// xmsg is one buffered cross-shard message. Pointer fields are cleared on
// delivery so drained lanes retain nothing.
type xmsg struct {
	t    Time
	kind uint8
	c    *Counter    // xAdd
	n    int64       // xAdd amount
	e    *Event      // xFire
	fn   func()      // xCall
	h    PostHandler // xHook
	a, b int64       // xHook operands
}

const (
	xAdd  uint8 = iota // c.Add(n) at t on the destination shard
	xFire              // e.Fire() at t
	xCall              // fn() at t
	xHook              // h.RunPost(a, b) at t
)

// PostHandler receives delivered PostHook messages: the closure-free
// cross-shard call for high-volume paths (one handler object, two integer
// operands, no allocation per post beyond the lane slot).
type PostHandler interface {
	RunPost(a, b int64)
}

// postTo validates the conservative contract and returns the lane for dst.
//
//bgplint:hot
func (sh *Shard) postTo(dst *Shard, t Time) *[]xmsg {
	if dst == sh {
		panic("sim: cross-shard post to own shard; schedule locally")
	}
	if dst.hub && !sh.hub {
		// Hubs run after the peer phase of the same window.
		if t < sh.now {
			panic(fmt.Sprintf("sim: post at %v before now %v", t, sh.now))
		}
	} else if t < sh.now+sh.k.lookahead {
		panic(fmt.Sprintf("sim: post at %v violates lookahead %v from now %v",
			t, sh.k.lookahead, sh.now))
	}
	for int(dst.id) >= len(sh.out) {
		sh.out = append(sh.out, nil)
	}
	return &sh.out[dst.id]
}

// PostAdd schedules c.Add(n) at absolute time t on c's shard, which must not
// be the calling shard (use AddAt for local adds). Peer destinations require
// t >= now + lookahead; hub destinations only t >= now.
//
//bgplint:hot
func (sh *Shard) PostAdd(t Time, c *Counter, n int64) {
	c.check()
	lane := sh.postTo(c.sh, t)
	*lane = append(*lane, xmsg{t: t, kind: xAdd, c: c, n: n})
}

// PostFire schedules e.Fire() at absolute time t on e's shard.
func (sh *Shard) PostFire(t Time, e *Event) {
	e.check()
	lane := sh.postTo(e.sh, t)
	*lane = append(*lane, xmsg{t: t, kind: xFire, e: e})
}

// PostCall schedules fn() at absolute time t on dst. The callback runs under
// dst's virtual-CPU token with dst's clock at t; it must touch only dst's
// objects.
func (sh *Shard) PostCall(t Time, dst *Shard, fn func()) {
	lane := sh.postTo(dst, t)
	*lane = append(*lane, xmsg{t: t, kind: xCall, fn: fn})
}

// PostHook schedules h.RunPost(a, b) at absolute time t on dst: the
// pointer-lean PostCall for per-chunk hot paths.
//
//bgplint:hot
func (sh *Shard) PostHook(t Time, dst *Shard, h PostHandler, a, b int64) {
	lane := sh.postTo(dst, t)
	*lane = append(*lane, xmsg{t: t, kind: xHook, h: h, a: a, b: b})
}

// deliver enqueues one merged message on the shard's heap. The caller (the
// controller, between phases) guarantees t > sh.now, so the entry always
// belongs in the future queue, never the same-instant ring.
func (sh *Shard) deliver(m *xmsg) {
	switch m.kind {
	case xAdd:
		sh.queue.push(m.t, entry{kind: eAdd, idx: sh.newAdd(m.c, m.n)})
	case xFire:
		e := m.e
		sh.queue.push(m.t, entry{kind: eFn, idx: sh.newCb(e.Fire)})
	case xCall:
		sh.queue.push(m.t, entry{kind: eFn, idx: sh.newCb(m.fn)})
	case xHook:
		var i uint32
		if n := len(sh.hookFree); n > 0 {
			i = sh.hookFree[n-1]
			sh.hookFree = sh.hookFree[:n-1]
			sh.hooks[i] = postHook{h: m.h, a: m.a, b: m.b}
		} else {
			sh.hooks = append(sh.hooks, postHook{h: m.h, a: m.a, b: m.b})
			i = uint32(len(sh.hooks) - 1)
		}
		sh.queue.push(m.t, entry{kind: eHook, idx: i})
	}
}

// deliverMail drains every (src, dst) lane: for each destination, lanes are
// concatenated in source-shard order into mergeBuf, stable-sorted by
// timestamp (preserving source order and lane FIFO at equal times), and
// delivered. Runs only on the controller goroutine between phases, when no
// shard is executing.
func (k *Kernel) deliverMail() {
	for _, dst := range k.shards {
		buf := k.mergeBuf[:0]
		for _, src := range k.shards {
			if int(dst.id) >= len(src.out) {
				continue
			}
			lane := src.out[int(dst.id)]
			if len(lane) == 0 {
				continue
			}
			buf = append(buf, lane...)
			clear(lane)
			src.out[int(dst.id)] = lane[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].t < buf[j].t })
		for i := range buf {
			dst.deliver(&buf[i])
		}
		clear(buf)
		k.mergeBuf = buf[:0]
	}
}

// minPending returns the earliest runnable instant across all shards: the
// shard's clock if its same-instant ring holds work (Spawn seeds resumes on
// the ring before the first Run), else its heap top. ok is false when no
// shard has anything pending — with empty lanes (always true between
// epochs) that means the simulation is finished or deadlocked.
func (k *Kernel) minPending() (Time, bool) {
	var t Time
	ok := false
	for _, sh := range k.shards {
		var st Time
		if !sh.ring.empty() {
			st = sh.now
		} else if len(sh.queue.s) > 0 {
			st = sh.queue.s[0].t
		} else {
			continue
		}
		if !ok || st < t {
			t, ok = st, true
		}
	}
	return t, ok
}

// anyBlocked reports whether any shard has parked waiters.
func (k *Kernel) anyBlocked() bool {
	for _, sh := range k.shards {
		if sh.blocked > 0 {
			return true
		}
	}
	return false
}

// startWorker launches the shard's window worker for the duration of one
// sharded Run. The worker executes exactly one runWindow per start-channel
// receive and owns no state of its own: the start send happens-before the
// window and the done receive happens-after it, so the shard's entire state
// stays single-threaded along the start/done chain. Workers exist only
// while Run executes (stopWorker closes start), so an idle pooled kernel
// holds no goroutines. This is the bgplint-sanctioned goroutine launch in
// this file; see the package comment in shard.go.
func (sh *Shard) startWorker() {
	// The worker sees only these local channel values: the sh.start/sh.done
	// fields are controller-side bookkeeping (stopWorker nils them with no
	// ordering relative to a worker that is still unwinding its range loop).
	start := make(chan Time)
	done := make(chan struct{})
	sh.start, sh.done = start, done
	go func() {
		for bound := range start {
			sh.runWindow(bound)
			done <- struct{}{}
		}
	}()
}

func (sh *Shard) stopWorker() {
	close(sh.start)
	sh.start, sh.done = nil, nil
}

// runSharded is Run for kernels with more than one shard: the conservative
// epoch controller. Each iteration computes the window [T, W), runs every
// peer shard's window (in parallel on the workers, or sequentially under
// noShard), delivers the mail they produced, then runs hub shards one at a
// time (each seeing the merged peer traffic for the window), and delivers
// again so hub output reaches the peers' next window. The committed order is
// a pure function of the simulation: noShard and the parallel execution are
// bit-identical by construction.
func (k *Kernel) runSharded() error {
	if k.lookahead <= 0 {
		return fmt.Errorf("sim: sharded Run without lookahead; call SetLookahead")
	}
	parallel := !k.noShard
	var peers, hubs []*Shard
	for _, sh := range k.shards {
		if sh.hub {
			hubs = append(hubs, sh)
		} else {
			peers = append(peers, sh)
		}
	}
	if parallel {
		// Shard 0's windows run on the controller goroutine itself; workers
		// cover the rest of the peer phase. Hubs run serially on the
		// controller, so they need no workers.
		for _, sh := range peers[1:] {
			sh.startWorker()
		}
		defer func() {
			for _, sh := range peers[1:] {
				sh.stopWorker()
			}
		}()
	}

	// Pre-run posts (setup code may PostCall before Run) must be delivered
	// before the first window is computed.
	k.deliverMail()

	for {
		t, ok := k.minPending()
		if !ok {
			if k.anyBlocked() {
				return k.deadlockError()
			}
			return nil
		}
		w := t + k.lookahead

		if parallel {
			for _, sh := range peers[1:] {
				sh.start <- w
			}
			peers[0].runWindow(w)
			for _, sh := range peers[1:] {
				<-sh.done
			}
		} else {
			for _, sh := range peers {
				sh.runWindow(w)
			}
		}
		if err := k.checkFailure(); err != nil {
			return err
		}
		// Peer output: same-window mail into hubs, next-window mail between
		// peers. Both must land before the hubs run / the next window starts.
		k.deliverMail()

		for _, sh := range hubs {
			sh.runWindow(w)
		}
		if err := k.checkFailure(); err != nil {
			return err
		}
		// Hub output (t >= now + L >= W) feeds the next window.
		k.deliverMail()
	}
}
