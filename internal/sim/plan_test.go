package sim

import (
	"strings"
	"testing"
)

// runBoth executes the same scenario on a fused and a noFuse (reference)
// kernel and returns both final clocks; callers assert they match, which is
// the plan contract: fused steps land at exactly the unfused instants.
func runBoth(t *testing.T, scenario func(k *Kernel)) (fused, unfused Time) {
	t.Helper()
	run := func(noFuse bool) Time {
		k := New()
		k.noFuse = noFuse
		scenario(k)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	return run(false), run(true)
}

func TestWaitPlanRunsStepsWhileParked(t *testing.T) {
	k := New()
	ev := k.NewEvent("go")
	c := k.NewCounter("sig")
	var addedAt, resumedAt Time
	k.Spawn("w", func(p *Proc) {
		pl := p.NewPlan()
		pl.Sleep(30 * Nanosecond)
		pl.Add(c, 1)
		pl.Sleep(10 * Nanosecond)
		p.WaitPlan(ev, pl)
		resumedAt = p.Now()
	})
	k.Spawn("obs", func(p *Proc) {
		p.WaitGE(c, 1)
		addedAt = p.Now()
	})
	k.At(100*Nanosecond, ev.Fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if addedAt != 130*Nanosecond {
		t.Fatalf("plan Add landed at %v, want 130ns", addedAt)
	}
	if resumedAt != 140*Nanosecond {
		t.Fatalf("process resumed at %v, want 140ns", resumedAt)
	}
}

func TestWaitPlanEmptyIsWait(t *testing.T) {
	k := New()
	ev := k.NewEvent("go")
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.WaitPlan(ev, p.NewPlan())
		at = p.Now()
	})
	k.At(5*Nanosecond, ev.Fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Nanosecond {
		t.Fatalf("resumed at %v, want 5ns", at)
	}
}

func TestWaitPlanFiredEventRunsInline(t *testing.T) {
	k := New()
	ev := k.NewEvent("done")
	ev.Fire()
	var at Time
	k.Spawn("w", func(p *Proc) {
		pl := p.NewPlan()
		pl.Sleep(7 * Nanosecond)
		p.WaitPlan(ev, pl)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*Nanosecond {
		t.Fatalf("resumed at %v, want 7ns (inline steps must still run)", at)
	}
}

func TestWaitGEPlanSatisfiedRunsInline(t *testing.T) {
	k := New()
	c := k.NewCounter("c")
	c.Add(3)
	sig := k.NewCounter("sig")
	var at Time
	k.Spawn("w", func(p *Proc) {
		pl := p.NewPlan()
		pl.Sleep(4 * Nanosecond)
		pl.Add(sig, 2)
		p.WaitGEPlan(c, 2, pl)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 4*Nanosecond || sig.Value() != 2 {
		t.Fatalf("at = %v, sig = %d; want 4ns, 2", at, sig.Value())
	}
}

// TestPlanInstantFinalResumeOrder pins the Kernel.fused contract: a plan that
// exhausts on an instant step resumes its process at exactly the queue
// position the unfused resume would occupy — before waiters the event
// released after it.
func TestPlanInstantFinalResumeOrder(t *testing.T) {
	for _, noFuse := range []bool{false, true} {
		k := New()
		k.noFuse = noFuse
		ev := k.NewEvent("go")
		c := k.NewCounter("sig")
		var order []string
		k.Spawn("planner", func(p *Proc) {
			pl := p.NewPlan()
			pl.Add(c, 1) // instant final step: no timed tail
			p.WaitPlan(ev, pl)
			order = append(order, "planner")
		})
		k.Spawn("later", func(p *Proc) {
			p.Wait(ev)
			order = append(order, "later")
		})
		k.At(Nanosecond, ev.Fire)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		want := [2]string{"planner", "later"}
		if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
			t.Fatalf("noFuse=%v: order = %v, want %v", noFuse, order, want)
		}
		if c.Value() != 1 {
			t.Fatalf("noFuse=%v: plan Add not applied", noFuse)
		}
	}
}

func TestPlanBusyMatchesUnfused(t *testing.T) {
	scenario := func(k *Kernel) {
		pipe := k.NewPipe("bus", 2e9, 0)
		c := k.NewCounter("chunks")
		// A feeder adds chunks over time; two consumers occupy the shared
		// pipe per chunk, once fused and once via a contending Transfer, so
		// Reserve order (and thus completion times) depends on exact
		// scheduling instants.
		k.Spawn("feeder", func(p *Proc) {
			for i := 0; i < 8; i++ {
				p.Sleep(20 * Nanosecond)
				c.Add(1)
			}
		})
		k.Spawn("fusedwait", func(p *Proc) {
			for i := int64(1); i <= 8; i++ {
				pl := p.NewPlan()
				pl.Busy(pipe, 4096, 10*Nanosecond)
				p.WaitGEPlan(c, i, pl)
			}
		})
		k.Spawn("rival", func(p *Proc) {
			for i := 0; i < 8; i++ {
				p.Sleep(15 * Nanosecond)
				p.Transfer(pipe, 2048)
			}
		})
	}
	fused, unfused := runBoth(t, scenario)
	if fused != unfused {
		t.Fatalf("fused final time %v != unfused %v", fused, unfused)
	}
}

func TestPlanStepPanicFailsSimulation(t *testing.T) {
	k := New()
	ev := k.NewEvent("go")
	c := k.NewCounter("c")
	k.Spawn("bad", func(p *Proc) {
		pl := p.NewPlan()
		pl.Sleep(Nanosecond)
		pl.Add(c, -1) // Counter.Add panics on negative n
		p.WaitPlan(ev, pl)
	})
	k.At(Nanosecond, ev.Fire)
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("step panic not surfaced as process failure, err = %v", err)
	}
}

// TestPlanDeadlockNamesParkedProc checks that a process parked on a
// plan-attached wait still appears in the deadlock report: the waiter entry
// carries both the continuation and the process.
func TestPlanDeadlockNamesParkedProc(t *testing.T) {
	k := New()
	ev := k.NewEvent("never")
	k.Spawn("stuckplan", func(p *Proc) {
		pl := p.NewPlan()
		pl.Sleep(Nanosecond)
		p.WaitPlan(ev, pl)
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "stuckplan") || !strings.Contains(err.Error(), "never") {
		t.Fatalf("deadlock report %v does not name the plan-parked process", err)
	}
}
