// Package sim implements a deterministic discrete-event simulation kernel
// used to model the Blue Gene/P machine.
//
// The kernel advances a virtual clock with picosecond resolution and executes
// scheduled events in (time, sequence) order, so runs are fully deterministic.
// Simulated activities can be expressed two ways:
//
//   - Callback events, scheduled with Kernel.At or Kernel.After. These are
//     cheap and are used on hot paths such as per-chunk network arrivals.
//   - Processes (Proc), goroutine-backed coroutines spawned with
//     Kernel.Spawn. Exactly one process runs at a time; a process yields the
//     virtual CPU by sleeping, waiting on an Event, or waiting on a Counter
//     threshold. Processes make sequential protocol code (an MPI rank, a DMA
//     engine, a communication thread) read like the pseudo-code in the paper.
//
// Shared hardware resources with finite bandwidth (a torus link, the DMA
// engine, the collective tree, a memory bus) are modeled as Pipes: serialized
// byte channels where each reservation occupies the pipe for bytes/bandwidth
// of virtual time plus a fixed latency.
//
// Counters mirror the DMA byte counters and the paper's software message
// counters: monotonically increasing values that processes can wait on until
// a threshold is reached.
package sim
