// Program-mode processes: full-lifecycle resumable state machines executed
// by the kernel itself, with no backing goroutine.
//
// A Plan (plan.go) fuses the step chain behind one wait; the process still
// owns a goroutine and still pays a channel rendezvous every time that chain
// ends. A program goes the rest of the way: the whole process body is
// written in explicit-resume style — every blocking operation takes the rest
// of the body as a continuation — so parking is storing a func and resuming
// is an ordinary queue callback run inline under whichever goroutine holds
// the virtual-CPU token. A rank whose body is program-expressible never
// touches a channel, a pool worker, or the Go scheduler.
//
// Determinism: each operation here is a mechanical transcription of the
// blocking primitive it replaces and pushes exactly the queue entries that
// primitive would have pushed, at the same instants, in the same order:
//
//   - SleepThen schedules its continuation where Sleep would have scheduled
//     the process resume (always scheduling, even for zero durations);
//     SleepUntilThen and BusyThen keep the respective "already satisfied"
//     fast paths that return without scheduling.
//   - WaitThen/WaitGEThen append a waiter at the same list position Wait/
//     WaitGE would have; the fired/satisfied fast paths run the continuation
//     inline exactly where the blocking call would have returned without
//     yielding.
//   - WaitPlanThen/WaitGEPlanThen step the attached plan with the same
//     placement rules as Plan.advance, and a plan that exhausts on instant
//     steps calls the continuation at that exact queue position — the
//     program analog of Kernel.fused.
//
// Callbacks run inline inside Kernel.next and the ring drains in FIFO order,
// so a continuation executing at its pop position is observationally
// identical to a goroutine resuming at that position: both run their slice
// of process code to the next park before the kernel pops another entry.
// DESIGN.md §11 gives the full argument.
//
// The queue entries a parked program leaves behind are pointer-free: an
// eCont (continuation) or eProg (plan step) entry names the process by its
// arena index, and the kernel dispatches to runCont/runProg below — the
// per-spawn trampoline closures those entries used to carry are gone.
//
// The same operations also run on ordinary goroutine processes (each has a
// blocking fallback that calls the continuation synchronously), which is how
// the noProgram reference mode executes the identical collective bodies —
// there is exactly one transcription of each protocol, not two.
//
// Contract for program bodies: operations may only be called from the
// process's own body or continuations (never from unrelated callbacks), and
// an operation that parks or schedules must be the last thing its caller
// does — the continuation carries the rest. Violations panic.
package sim

// SpawnProgram creates a process whose body is written in explicit-resume
// style and schedules its first execution at the current virtual time, at
// the same queue position Spawn would have used. In program mode (default)
// the process is inline: no goroutine is attached and the kernel runs the
// body and every continuation as queue callbacks. In noProgram reference
// mode the identical body runs on an ordinary goroutine process, with each
// operation falling back to its blocking primitive.
func (k *Kernel) SpawnProgram(name string, fn func(p *Proc)) *Proc {
	return k.s0.SpawnProgram(name, fn)
}

// SpawnProgram creates a program-mode process on this shard; see
// Kernel.SpawnProgram.
func (sh *Shard) SpawnProgram(name string, fn func(p *Proc)) *Proc {
	return sh.SpawnProgramIdx(name, -1, fn)
}

// SpawnProgramIdx is SpawnProgram for indexed process families (see
// Shard.SpawnIdx): the name renders lazily as "<prefix><id>".
func (sh *Shard) SpawnProgramIdx(prefix string, id int32, fn func(p *Proc)) *Proc {
	if sh.k.noProgram {
		return sh.SpawnIdx(prefix, id, fn)
	}
	p := sh.carveProc(prefix, id)
	p.inline = true
	p.idx = len(sh.procs)
	sh.procs = append(sh.procs, p.self)
	p.cont = func() { fn(p) }
	p.armed = true
	sh.ring.push(entry{kind: eCont, idx: p.self})
	return p
}

// resetFrame clears the program frame of a freshly carved process slot (see
// Kernel.carveProc); a slot reused after Reset may hold a finished — or, on
// a dropped failed kernel, parked — program's state.
func (p *Proc) resetFrame() {
	p.inline, p.armed = false, false
	p.cont = nil
}

// Inline reports whether the process runs without a goroutine (program
// mode). Collective code does not branch on this — the operations below are
// mode-agnostic — but spawn-time setup occasionally wants to know.
func (p *Proc) Inline() bool { return p.inline }

// progRecover converts a panic in program code into the same simulation
// failure a goroutine process body panic produces.
func (p *Proc) progRecover() {
	if r := recover(); r != nil {
		p.sh.fail(procPanicError(p.Name(), r))
	}
}

// runCont is the kernel's dispatch for an eCont entry: disarm, run the
// pending continuation, and retire the program if it parked nowhere new.
//
//bgplint:hot
func (p *Proc) runCont() {
	defer p.progRecover()
	p.armed = false
	c := p.cont
	p.cont = nil
	c()
	if !p.armed {
		p.finishProgram()
	}
}

// runProg is the kernel's dispatch for an eProg entry: disarm, step the
// program's plan, and retire the program if it parked nowhere new.
//
//bgplint:hot
func (p *Proc) runProg() {
	defer p.progRecover()
	p.armed = false
	p.stepProg()
	if !p.armed {
		p.finishProgram()
	}
}

// finishProgram drops a completed program from the deadlock-report set, the
// inline analog of the removal in Proc.exec.
func (p *Proc) finishProgram() {
	sh := p.sh
	last := len(sh.procs) - 1
	moved := sh.procs[last]
	sh.procs[p.idx] = moved
	sh.procAt(moved).idx = p.idx
	sh.procs = sh.procs[:last]
}

// checkIdle guards the tail-call contract: arming a second resume while one
// is pending means the body kept executing past a parking operation. It also
// carries the epoch check for every inline program operation.
func (p *Proc) checkIdle() {
	p.check()
	if p.armed {
		panic("sim: program operation with a resume already pending on " + p.Name())
	}
}

// schedContAt schedules the stored continuation at absolute time t, using
// the same now-vs-future placement rule as schedProc so the entry lands
// exactly where the process's own resume would have.
//
//bgplint:hot
func (p *Proc) schedContAt(t Time) {
	p.armed = true
	if t <= p.sh.now {
		p.sh.ring.push(entry{kind: eCont, idx: p.self})
		return
	}
	p.sh.queue.push(t, entry{kind: eCont, idx: p.self})
}

// SleepThen advances the process by d of virtual time and then continues
// with cont — the explicit-resume form of Proc.Sleep. Like Sleep it always
// schedules, even for zero durations.
//
//bgplint:hot
func (p *Proc) SleepThen(d Time, cont func()) {
	if !p.inline {
		p.Sleep(d)
		cont()
		return
	}
	p.checkIdle()
	if d < 0 {
		d = 0
	}
	p.cont = cont
	p.schedContAt(p.sh.now + d)
}

// SleepUntilThen continues with cont at absolute virtual time t — the
// explicit-resume form of Proc.SleepUntil, including its already-elapsed
// fast path (cont runs inline, nothing is scheduled).
//
//bgplint:hot
func (p *Proc) SleepUntilThen(t Time, cont func()) {
	if !p.inline {
		p.SleepUntil(t)
		cont()
		return
	}
	p.checkIdle()
	if t <= p.sh.now {
		cont()
		return
	}
	p.cont = cont
	p.schedContAt(t)
}

// BusyThen reserves bytes on pipe, occupies the process until both the
// serialized reservation and the concurrent fixed cost complete, then
// continues with cont — the explicit-resume form of the Plan.Busy /
// hw core-memory-operation pattern:
//
//	done := pipe.Reserve(bytes); p.SleepUntil(max(done, now+concurrent))
//
//bgplint:hot
func (p *Proc) BusyThen(pipe *Pipe, bytes int, concurrent Time, cont func()) {
	done := pipe.Reserve(bytes)
	if c := p.sh.now + concurrent; c > done {
		done = c
	}
	if !p.inline {
		p.SleepUntil(done)
		cont()
		return
	}
	p.checkIdle()
	if done <= p.sh.now {
		cont()
		return
	}
	p.cont = cont
	p.schedContAt(done)
}

// WaitThen continues with cont once ev fires — the explicit-resume form of
// Proc.Wait. If ev has already fired cont runs inline, exactly where Wait
// would have returned without yielding.
//
//bgplint:hot
func (p *Proc) WaitThen(ev *Event, cont func()) {
	if !p.inline {
		p.Wait(ev)
		cont()
		return
	}
	p.checkIdle()
	ev.check()
	p.checkOwner(ev.sh)
	if ev.fired {
		cont()
		return
	}
	p.waitEv = ev
	p.sh.blocked++
	p.cont = cont
	p.armed = true
	ev.waiters = append(ev.waiters, entry{kind: eCont, idx: p.self})
}

// WaitGEThen continues with cont once c reaches at least v — the
// explicit-resume form of Proc.WaitGE.
//
//bgplint:hot
func (p *Proc) WaitGEThen(c *Counter, v int64, cont func()) {
	if !p.inline {
		p.WaitGE(c, v)
		cont()
		return
	}
	p.checkIdle()
	c.check()
	p.checkOwner(c.sh)
	if c.v >= v {
		cont()
		return
	}
	p.waitC, p.waitGE = c, v
	p.sh.blocked++
	p.cont = cont
	p.armed = true
	c.wait(v, entry{kind: eCont, idx: p.self})
}

// WaitPlanThen blocks on ev, runs pl, then continues with cont — the
// explicit-resume form of Proc.WaitPlan followed by the rest of the body.
//
//bgplint:hot
func (p *Proc) WaitPlanThen(ev *Event, pl *Plan, cont func()) {
	if !p.inline {
		p.WaitPlan(ev, pl)
		cont()
		return
	}
	if len(pl.steps) == 0 {
		p.WaitThen(ev, cont)
		return
	}
	p.checkIdle()
	ev.check()
	p.checkOwner(ev.sh)
	if ev.fired {
		// Wait would have returned without yielding; the plan steps from
		// here, scheduling exactly where the unfused slice would have.
		p.cont = cont
		p.stepProg()
		return
	}
	p.waitEv = ev
	p.sh.blocked++
	p.cont = cont
	p.armed = true
	ev.waiters = append(ev.waiters, entry{kind: eProg, idx: p.self})
}

// WaitGEPlanThen blocks until c reaches at least v, runs pl, then continues
// with cont — the explicit-resume form of Proc.WaitGEPlan followed by the
// rest of the body.
//
//bgplint:hot
func (p *Proc) WaitGEPlanThen(c *Counter, v int64, pl *Plan, cont func()) {
	if !p.inline {
		p.WaitGEPlan(c, v, pl)
		cont()
		return
	}
	if len(pl.steps) == 0 {
		p.WaitGEThen(c, v, cont)
		return
	}
	p.checkIdle()
	c.check()
	p.checkOwner(c.sh)
	if c.v >= v {
		p.cont = cont
		p.stepProg()
		return
	}
	p.waitC, p.waitGE = c, v
	p.sh.blocked++
	p.cont = cont
	p.armed = true
	c.wait(v, entry{kind: eProg, idx: p.self})
}

// stepProg is Plan.advance for inline processes: instant steps execute in
// place, a timed step schedules the plan's continuation — or, for the last
// step, the stored body continuation itself — at its completion time, and a
// plan that exhausts on instant steps runs the continuation right here, at
// the exact queue position Kernel.fused would have resumed the goroutine.
//
//bgplint:hot
func (p *Proc) stepProg() {
	sh := p.sh
	pl := &p.plan
	for pl.i < len(pl.steps) {
		s := &pl.steps[pl.i]
		pl.i++
		var done Time
		switch s.kind {
		case stepSleep:
			done = sh.now + s.d
		case stepBusy:
			done = s.pipe.Reserve(s.bytes)
			if c := sh.now + s.d; c > done {
				done = c
			}
			if done <= sh.now {
				continue // mirrors the unfused SleepUntil fast path
			}
		case stepAdd:
			s.c.Add(s.n)
			continue
		}
		if pl.i == len(pl.steps) {
			p.schedContAt(done)
		} else {
			p.armed = true
			if done <= sh.now {
				sh.ring.push(entry{kind: eProg, idx: p.self})
			} else {
				sh.queue.push(done, entry{kind: eProg, idx: p.self})
			}
		}
		return
	}
	c := p.cont
	p.cont = nil
	c()
}
