package sim

// Event is a one-shot occurrence in virtual time. Processes block on it with
// Proc.Wait; callbacks subscribe with OnFire. Firing an event releases all
// current and future waiters. Events are not reusable; allocate a new one per
// occurrence.
type Event struct {
	k       *Kernel
	name    string
	fired   bool
	waiters []entry // parked process resumes (Wait) and callbacks (OnFire)
}

// NewEvent returns an unfired event, carved from the kernel's arena (see
// arena.go). The name appears in deadlock reports.
func (k *Kernel) NewEvent(name string) *Event {
	e := k.arena.newEvent()
	e.k, e.name = k, name
	return e
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire marks the event fired and schedules all waiters at the current virtual
// time. Firing twice panics: it always indicates a protocol bug.
//
// The waiters are released as one run-ring batch: the blocked bookkeeping
// (normally done per-entry in Kernel.wake) runs first, then the whole slice
// is appended to the ring in a single copy, preserving registration order.
func (e *Event) Fire() {
	if e.fired {
		panic("sim: event " + e.name + " fired twice")
	}
	e.fired = true
	if len(e.waiters) == 0 {
		return
	}
	k := e.k
	for _, w := range e.waiters {
		if w.p != nil {
			k.blocked--
			w.p.waitEv, w.p.waitC = nil, nil
		}
	}
	k.ring.pushBatch(e.waiters)
	e.waiters = nil
}

// OnFire registers fn to run when the event fires. If the event has already
// fired, fn is scheduled at the current time.
func (e *Event) OnFire(fn func()) {
	if e.fired {
		e.k.At(e.k.now, fn)
		return
	}
	e.waiters = append(e.waiters, entry{fn: fn})
}
