package sim

// Event is a one-shot occurrence in virtual time. Processes block on it with
// Proc.Wait; callbacks subscribe with OnFire. Firing an event releases all
// current and future waiters. Events are not reusable; allocate a new one per
// occurrence — and not retainable across Kernel.Reset: the epoch stamp makes
// a stale handle panic instead of aliasing whatever now occupies its slot.
//
// An event belongs to the shard that created it: only that shard's code may
// wait on it, fire it, or subscribe to it. Other shards reach it through
// Shard.PostFire.
type Event struct {
	sh      *Shard
	name    string
	epoch   uint32
	fired   bool
	waiters []entry // parked process resumes (Wait) and callbacks (OnFire)

	// fpGen/fpID intern this object into a steady-state fingerprint walk
	// (steady.go): when fpGen equals the walking capture's generation the
	// object is already labelled fpID; any other value means unseen. The
	// stamp lives on the object so a rack-scale capture interns millions of
	// objects with two word writes instead of a map insert.
	fpGen uint64
	fpID  uint32
}

// NewEvent returns an unfired event owned by the root shard; see
// Shard.NewEvent.
func (k *Kernel) NewEvent(name string) *Event { return k.s0.NewEvent(name) }

// NewEvent returns an unfired event, carved from the shard's arena (see
// arena.go). The name appears in deadlock reports. Every field is
// reinitialized here: after a Reset the slot still holds a previous run's
// state (the waiter slice keeps its capacity on purpose).
func (sh *Shard) NewEvent(name string) *Event {
	e := sh.arena.newEvent()
	e.sh, e.name, e.epoch = sh, name, sh.k.epoch
	e.fired = false
	e.waiters = e.waiters[:0]
	return e
}

// check panics when the handle predates the kernel's current epoch: its slab
// slot belongs to the next lease now (or will shortly).
func (e *Event) check() {
	if e.epoch != e.sh.k.epoch {
		panic("sim: event handle (" + e.name + ") used across Kernel.Reset")
	}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Reserve grows the waiter list's capacity to at least n. Callers that know
// the subscriber count up front (a barrier event takes one waiter per rank)
// use it to replace log2(n) doubling copies with one exact allocation; the
// capacity then survives Kernel.Reset with the slot, like any other waiter
// slice.
func (e *Event) Reserve(n int) {
	e.check()
	if cap(e.waiters) < n {
		w := make([]entry, len(e.waiters), n)
		copy(w, e.waiters)
		e.waiters = w
	}
}

// Fire marks the event fired and schedules all waiters at the current virtual
// time. Firing twice panics: it always indicates a protocol bug.
//
// The waiters are released as one run-ring batch: the blocked bookkeeping
// (normally done per-entry in Shard.wake) runs first, then the whole slice
// is appended to the ring in a single copy, preserving registration order.
func (e *Event) Fire() {
	e.check()
	if e.fired {
		panic("sim: event " + e.name + " fired twice")
	}
	e.fired = true
	if len(e.waiters) == 0 {
		return
	}
	sh := e.sh
	for _, w := range e.waiters {
		if w.kind != eFn {
			p := sh.procAt(w.idx)
			sh.blocked--
			p.waitEv, p.waitC = nil, nil
		}
	}
	sh.ring.pushBatch(e.waiters)
	e.waiters = e.waiters[:0]
}

// OnFire registers fn to run when the event fires. If the event has already
// fired, fn is scheduled at the current time. Like Fire, it must be called
// from the owning shard.
func (e *Event) OnFire(fn func()) {
	e.check()
	if e.fired {
		e.sh.At(e.sh.now, fn)
		return
	}
	e.waiters = append(e.waiters, entry{kind: eFn, idx: e.sh.newCb(fn)})
}
