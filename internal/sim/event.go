package sim

// Event is a one-shot occurrence in virtual time. Processes block on it with
// Proc.Wait; callbacks subscribe with OnFire. Firing an event releases all
// current and future waiters. Events are not reusable; allocate a new one per
// occurrence — and not retainable across Kernel.Reset: the epoch stamp makes
// a stale handle panic instead of aliasing whatever now occupies its slot.
type Event struct {
	k       *Kernel
	name    string
	epoch   uint32
	fired   bool
	waiters []entry // parked process resumes (Wait) and callbacks (OnFire)
}

// NewEvent returns an unfired event, carved from the kernel's arena (see
// arena.go). The name appears in deadlock reports. Every field is
// reinitialized here: after a Reset the slot still holds a previous run's
// state (the waiter slice keeps its capacity on purpose).
func (k *Kernel) NewEvent(name string) *Event {
	e := k.arena.newEvent()
	e.k, e.name, e.epoch = k, name, k.epoch
	e.fired = false
	e.waiters = e.waiters[:0]
	return e
}

// check panics when the handle predates the kernel's current epoch: its slab
// slot belongs to the next lease now (or will shortly).
func (e *Event) check() {
	if e.epoch != e.k.epoch {
		panic("sim: event handle (" + e.name + ") used across Kernel.Reset")
	}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire marks the event fired and schedules all waiters at the current virtual
// time. Firing twice panics: it always indicates a protocol bug.
//
// The waiters are released as one run-ring batch: the blocked bookkeeping
// (normally done per-entry in Kernel.wake) runs first, then the whole slice
// is appended to the ring in a single copy, preserving registration order.
func (e *Event) Fire() {
	e.check()
	if e.fired {
		panic("sim: event " + e.name + " fired twice")
	}
	e.fired = true
	if len(e.waiters) == 0 {
		return
	}
	k := e.k
	for _, w := range e.waiters {
		if w.kind != eFn {
			p := k.procAt(w.idx)
			k.blocked--
			p.waitEv, p.waitC = nil, nil
		}
	}
	k.ring.pushBatch(e.waiters)
	e.waiters = e.waiters[:0]
}

// OnFire registers fn to run when the event fires. If the event has already
// fired, fn is scheduled at the current time.
func (e *Event) OnFire(fn func()) {
	e.check()
	if e.fired {
		e.k.At(e.k.now, fn)
		return
	}
	e.waiters = append(e.waiters, entry{kind: eFn, idx: e.k.newCb(fn)})
}
