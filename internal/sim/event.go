package sim

// Event is a one-shot occurrence in virtual time. Processes block on it with
// Proc.Wait; callbacks subscribe with OnFire. Firing an event releases all
// current and future waiters. Events are not reusable; allocate a new one per
// occurrence.
type Event struct {
	k       *Kernel
	name    string
	fired   bool
	waiters []entry // parked process resumes (Wait) and callbacks (OnFire)
}

// NewEvent returns an unfired event. The name appears in deadlock reports.
func (k *Kernel) NewEvent(name string) *Event {
	return &Event{k: k, name: name}
}

// Fired reports whether the event has fired.
func (e *Event) Fired() bool { return e.fired }

// Fire marks the event fired and schedules all waiters at the current virtual
// time. Firing twice panics: it always indicates a protocol bug.
func (e *Event) Fire() {
	if e.fired {
		panic("sim: event " + e.name + " fired twice")
	}
	e.fired = true
	for _, w := range e.waiters {
		e.k.wake(w)
	}
	e.waiters = nil
}

// OnFire registers fn to run when the event fires. If the event has already
// fired, fn is scheduled at the current time.
func (e *Event) OnFire(fn func()) {
	if e.fired {
		e.k.At(e.k.now, fn)
		return
	}
	e.waiters = append(e.waiters, entry{fn: fn})
}
