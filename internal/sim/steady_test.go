package sim

import (
	"fmt"
	"testing"
)

// steadyRig is a miniature of the bench measure loop, entirely inside the
// sim package: n program processes run iters rounds of (work; barrier),
// and the first process released from each round's barrier drives a Steady
// detector exactly the way internal/bench's extrapolator does. The work is
// a shared-pipe transfer plus a deferred counter add whose eAdd entry is
// still pending in the heap at the boundary, so captures exercise ring
// entries, heap entries and live plan/wait state together.
type steadyRig struct {
	t    *testing.T
	kern *Kernel
	pipe *Pipe

	n     int
	iters int
	// work is the per-round transfer size. A rig whose work changes every
	// round never reaches steady state; the extra walk hashes it, exactly
	// as a layer's SteadyState must hash anything that steers future
	// execution.
	work     func(round int) int
	noExtrap bool
	// bgDelay is the deferred add's horizon: longer than one round but
	// shorter than two, so every boundary sees exactly one pending heap
	// eAdd at a constant relative offset.
	bgDelay Time

	det     *Steady
	loops   []*steadyLoop
	calls   int
	bk      int
	skipped int64
	done    bool

	arrived int
	ev      *Event
}

type steadyLoop struct {
	rig     *steadyRig
	p       *Proc
	id      int
	i       int
	elapsed Time
	start   Time
}

const rigBarLat = Time(1500)

func newSteadyRig(t *testing.T, n, iters int, work func(round int) int, noExtrap bool) *steadyRig {
	k := New()
	k.SetNoExtrap(noExtrap)
	r := &steadyRig{t: t, kern: k, n: n, iters: iters, work: work, noExtrap: noExtrap}
	// One steady round: n serialized transfers on the shared pipe (1 ps/byte,
	// 25 ps latency on the last sleeper) plus the barrier release.
	r.bgDelay = Time(n*work(0)) + 25 + rigBarLat + 1000
	r.pipe = k.NewPipe("rig.bus", 1e12, 25) // 1 ps/byte
	r.det = NewSteady(k, func(f *FP) {
		f.I64(int64(r.arrived))
		f.I64(int64(len(r.loops)))
		for _, l := range r.loops {
			f.I64(int64(r.work(l.i))) // behavior-steering state: hashed, not laned
			f.MonoTime(&l.elapsed)
			f.MonoInt(&l.i)
		}
	})
	for id := 0; id < n; id++ {
		l := &steadyLoop{rig: r, id: id}
		r.loops = append(r.loops, l)
		l.p = k.SpawnProgram(fmt.Sprintf("rig%d", id), func(p *Proc) {
			l.p = p
			l.iter()
		})
	}
	return r
}

func (l *steadyLoop) iter() {
	if l.i == l.rig.iters {
		return
	}
	r := l.rig
	if r.arrived == 0 {
		r.ev = r.kern.NewEvent("rig.round")
	}
	r.arrived++
	ev := r.ev
	if r.arrived == r.n {
		r.arrived = 0
		r.kern.After(rigBarLat, ev.Fire)
	}
	l.p.WaitThen(ev, l.afterBarrier)
}

func (l *steadyLoop) afterBarrier() {
	r := l.rig
	r.boundary()
	l.start = l.p.Now()
	if l.id == 0 {
		// A deferred add outliving this round: a pending heap eAdd at every
		// boundary, on a per-round counter so its content is round-invariant.
		r.kern.AddAt(l.p.Now()+r.bgDelay, r.kern.NewCounter("rig.bg"), 7)
	}
	done := r.pipe.Reserve(r.work(l.i))
	l.p.SleepUntilThen(done, l.afterWork)
}

func (l *steadyLoop) afterWork() {
	l.elapsed += l.p.Now() - l.start
	l.i++
	l.iter()
}

// boundary mirrors bench/extrap.go: the first release of each round's
// barrier captures; on a match the remaining rounds are extrapolated.
func (r *steadyRig) boundary() {
	if r.done {
		return
	}
	r.calls++
	if (r.calls-1)%r.n != 0 {
		return
	}
	if r.det.GaveUp() {
		r.done = true
		return
	}
	r.bk++
	if !r.det.Capture() {
		return
	}
	p := int64(r.det.Period())
	if skip := int64(r.iters-r.bk) / p * p; skip > 0 {
		r.det.Forward(skip / p)
		r.skipped += skip
	}
	r.done = true
}

func (r *steadyRig) run() {
	if err := r.kern.Run(); err != nil {
		r.t.Fatalf("rig run: %v", err)
	}
}

// rigState flattens everything observable the rig and kernel end in.
func (r *steadyRig) state() string {
	b, busy, tr := r.pipe.Stats()
	s := fmt.Sprintf("now=%d pipe=%d/%d/%d", r.kern.Now(), b, busy, tr)
	for _, l := range r.loops {
		s += fmt.Sprintf(" [%d i=%d elapsed=%d]", l.id, l.i, l.elapsed)
	}
	return s
}

// TestSteadyExtrapolationMatchesReference pins the induction end to end: a
// periodic workload with extrapolation lands in exactly the state full
// execution reaches — clock, per-loop accumulators and pipe statistics —
// and the detector genuinely skipped the tail.
func TestSteadyExtrapolationMatchesReference(t *testing.T) {
	work := func(int) int { return 4096 }
	ref := newSteadyRig(t, 4, 40, work, true)
	ref.run()
	ext := newSteadyRig(t, 4, 40, work, false)
	ext.run()
	if got, want := ext.state(), ref.state(); got != want {
		t.Fatalf("extrapolated end state\n %s\nreference end state\n %s", got, want)
	}
	if ext.skipped == 0 {
		t.Fatalf("detector never engaged on a periodic workload (last refusal: %q)", ext.det.LastRefusal())
	}
	if ref.skipped != 0 {
		t.Fatalf("noExtrap rig extrapolated %d rounds", ref.skipped)
	}
}

// TestSteadyPeriodicCycleExtrapolates pins the period-p generalization: a
// workload whose rounds cycle through p transfer sizes never matches
// consecutively, but the detector catches the cycle against its capture
// window, skips whole periods only, and still lands in the reference end
// state — the torus-allreduce shape (pipelined chunk rotation) in
// miniature.
func TestSteadyPeriodicCycleExtrapolates(t *testing.T) {
	for _, period := range []int{2, 3} {
		t.Run(fmt.Sprintf("period%d", period), func(t *testing.T) {
			work := func(round int) int { return 4096 + 1024*(round%period) }
			ref := newSteadyRig(t, 4, 41, work, true)
			ref.run()
			ext := newSteadyRig(t, 4, 41, work, false)
			ext.run()
			if got, want := ext.state(), ref.state(); got != want {
				t.Fatalf("periodic extrapolated end state\n %s\nreference end state\n %s", got, want)
			}
			if ext.skipped == 0 {
				t.Fatalf("detector never engaged on a period-%d workload (last refusal: %q)", period, ext.det.LastRefusal())
			}
			if p := ext.det.Period(); p != period {
				t.Fatalf("detected period %d, want %d", p, period)
			}
			if ext.skipped%int64(period) != 0 {
				t.Fatalf("skipped %d rounds, not a whole number of %d-round periods", ext.skipped, period)
			}
		})
	}
}

// TestSteadyNeverSteadyFallsBack pins the fallback: a workload whose
// behavior-steering state changes every round must never match, the
// detector must stop burning fingerprints after its attempt budget, and the
// run must complete identically to the noExtrap reference.
func TestSteadyNeverSteadyFallsBack(t *testing.T) {
	work := func(round int) int { return 1024 + 512*round }
	ref := newSteadyRig(t, 3, 24, work, true)
	ref.run()
	rig := newSteadyRig(t, 3, 24, work, false)
	rig.run()
	if rig.skipped != 0 {
		t.Fatalf("never-steady workload extrapolated %d rounds", rig.skipped)
	}
	if !rig.det.GaveUp() {
		t.Fatalf("detector did not cap its attempts on a never-steady workload")
	}
	if got, want := rig.state(), ref.state(); got != want {
		t.Fatalf("fallback end state\n %s\nreference end state\n %s", got, want)
	}
}

// TestSteadyCaptureRefusals pins the refusal guards: closures the
// fingerprint cannot see through, the noExtrap flag, and sharded kernels
// all void the capture instead of guessing.
func TestSteadyCaptureRefusals(t *testing.T) {
	t.Run("pending callback", func(t *testing.T) {
		k := New()
		k.At(10, func() {})
		det := NewSteady(k, nil)
		if det.Capture() {
			t.Fatal("capture matched with no previous capture")
		}
		if det.LastRefusal() == "" {
			t.Fatal("pending eFn entry did not refuse the capture")
		}
	})
	t.Run("noExtrap", func(t *testing.T) {
		k := New()
		k.SetNoExtrap(true)
		det := NewSteady(k, nil)
		det.Capture()
		if det.LastRefusal() == "" {
			t.Fatal("noExtrap kernel did not refuse the capture")
		}
	})
	t.Run("sharded", func(t *testing.T) {
		k := New()
		k.SetLookahead(100)
		k.NewShard()
		det := NewSteady(k, nil)
		det.Capture()
		if det.LastRefusal() == "" {
			t.Fatal("sharded kernel did not refuse the capture")
		}
	})
	t.Run("layer refusal", func(t *testing.T) {
		k := New()
		det := NewSteady(k, func(f *FP) { f.Refuse("layer says no") })
		det.Capture()
		if got := det.LastRefusal(); got != "layer says no" {
			t.Fatalf("layer refusal = %q", got)
		}
	})
}

// TestSteadyResetReuse pins the epoch interaction: a kernel that
// extrapolated, Reset, and re-ran produces the same states as one that
// never extrapolated — Forward leaves nothing Reset cannot rewind.
func TestSteadyResetReuse(t *testing.T) {
	work := func(int) int { return 2048 }
	// Two rounds of run+Reset on one kernel... the rig owns its kernel, so
	// emulate reuse by running an extrapolated rig, resetting its kernel,
	// and running a fresh workload on it against a never-extrapolated twin.
	a := newSteadyRig(t, 3, 30, work, false)
	a.run()
	if a.skipped == 0 {
		t.Fatalf("first run never extrapolated (last refusal: %q)", a.det.LastRefusal())
	}
	a.kern.Reset()

	b := newSteadyRig(t, 3, 30, work, true)
	b.run()
	b.kern.Reset()

	// Re-run the same workload shape on both reset kernels, full execution,
	// and require identical outcomes.
	rerun := func(k *Kernel) string {
		p := k.NewPipe("post.bus", 1e12, 10)
		var endA, endB Time
		k.SpawnProgram("post0", func(pr *Proc) {
			done := p.Reserve(512)
			pr.SleepUntilThen(done, func() { endA = pr.Now() })
		})
		k.SpawnProgram("post1", func(pr *Proc) {
			done := p.Reserve(256)
			pr.SleepUntilThen(done, func() { endB = pr.Now() })
		})
		if err := k.Run(); err != nil {
			t.Fatalf("post-reset run: %v", err)
		}
		return fmt.Sprintf("%d/%d/%d", k.Now(), endA, endB)
	}
	if got, want := rerun(a.kern), rerun(b.kern); got != want {
		t.Fatalf("post-reset run after extrapolation %q, after full execution %q", got, want)
	}
}

// BenchmarkSteadyFingerprint measures one Capture on a populated kernel:
// the cost extrapolation pays per boundary until detection.
func BenchmarkSteadyFingerprint(b *testing.B) {
	work := func(int) int { return 4096 }
	r := newSteadyRig(nil, 64, 1<<30, work, true) // noExtrap: the rig itself must not consume the detector
	// Run a few rounds by bounding iterations through a manual boundary cap:
	// instead, capture against the freshly spawned state (ring holds every
	// loop's first barrier wait).
	det := NewSteady(r.kern, func(f *FP) {
		for _, l := range r.loops {
			f.MonoTime(&l.elapsed)
			f.MonoInt(&l.i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.attempts = 0
		det.Capture()
	}
}
