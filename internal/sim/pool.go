// Worker pool for process goroutines. A figure regeneration creates one
// Kernel per (series, size) cell and spawns up to 8192 rank processes into
// each; without pooling every cell pays goroutine creation plus stack
// regrowth for the whole partition. Workers here park between assignments
// and are shared process-wide (across kernels and across the bench sweep
// runner's OS-thread parallelism), so a new cell's Spawn reuses a parked
// goroutine whose stack already grew to collective-protocol depth.
//
// This file is the only sanctioned goroutine launch site in internal/sim
// (enforced by the bgplint rawgoroutine analyzer): a worker goroutine only
// ever executes simulation code while holding the virtual-CPU token its
// gate channel carries, so pooling adds no real concurrency to any kernel.
//
// Memory-model note: a worker re-parks (putWorker) only after it has passed
// the token on, and a worker's next assignment is written (Spawn) strictly
// between getWorker and the token send that starts it. The pool mutex orders
// repark against checkout, and the unbuffered gate send orders the
// assignment writes against the worker's reads, so worker reuse is race-free
// — including across concurrently running kernels on different OS threads.
package sim

import "sync"

// maxPooledWorkers bounds the parked-goroutine stash. Workers released
// beyond the cap simply exit: the cap only matters after a burst (e.g. a
// multi-kernel parallel sweep at full scale) and keeps the worst-case parked
// stack memory bounded. 1<<16 covers eight concurrent 8192-rank cells.
const maxPooledWorkers = 1 << 16

// worker is a pooled goroutine and its permanently owned gate channel.
// p and fn are the pending assignment, written by Spawn before the first
// token send and cleared by the worker when it starts running.
type worker struct {
	gate chan struct{}
	p    *Proc
	fn   func(*Proc)
}

var workerPool struct {
	mu sync.Mutex
	s  []*worker
}

// getWorker pops a parked worker or launches a fresh one. The caller must
// set w.p/w.fn before the worker's gate receives the virtual-CPU token.
func getWorker() *worker {
	workerPool.mu.Lock()
	if n := len(workerPool.s); n > 0 {
		w := workerPool.s[n-1]
		workerPool.s[n-1] = nil
		workerPool.s = workerPool.s[:n-1]
		workerPool.mu.Unlock()
		return w
	}
	workerPool.mu.Unlock()
	w := &worker{gate: make(chan struct{})}
	go w.loop()
	return w
}

// putWorker re-parks w for reuse; false means the pool is full and the
// worker should exit.
func putWorker(w *worker) bool {
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	if len(workerPool.s) >= maxPooledWorkers {
		return false
	}
	workerPool.s = append(workerPool.s, w)
	return true
}

// pooledWorkers reports the current parked count (tests only).
func pooledWorkers() int {
	workerPool.mu.Lock()
	defer workerPool.mu.Unlock()
	return len(workerPool.s)
}

// loop is the worker body: receive the token with an assignment pending, run
// the process to completion, pass the token to the next runnable process (or
// back to the kernel), then re-park. The token send must be the last
// kernel-state operation of the assignment; the repark happens after it and
// touches only the pool.
func (w *worker) loop() {
	for {
		<-w.gate
		p, fn := w.p, w.fn
		w.p, w.fn = nil, nil
		p.exec(fn)
		sh := p.sh
		if q := sh.handoff(); q != nil {
			q.gate <- struct{}{}
		} else {
			sh.sched <- struct{}{}
		}
		if !putWorker(w) {
			return
		}
	}
}
