package sim

import "sort"

// Counter is a watchable monotonically increasing value in virtual time. It
// models both the DMA engine's hardware byte counters and the paper's
// software message counters: a producer adds received byte counts, consumers
// wait until the count reaches a threshold. Like events, counters must not
// outlive a Kernel.Reset: stale handles panic via the epoch stamp.
//
// A counter belongs to the shard that created it: only that shard's code may
// add to it, wait on it, or subscribe to it. Other shards reach it through
// Shard.PostAdd.
type Counter struct {
	sh      *Shard
	name    string
	epoch   uint32
	v       int64
	waiters []counterWait // kept sorted by threshold

	// fpGen/fpID intern this object into a steady-state fingerprint walk
	// (steady.go): when fpGen equals the walking capture's generation the
	// object is already labelled fpID; any other value means unseen. The
	// stamp lives on the object so a rack-scale capture interns millions of
	// objects with two word writes instead of a map insert.
	fpGen uint64
	fpID  uint32
}

type counterWait struct {
	threshold int64
	e         entry
}

// NewCounter returns a counter starting at zero owned by the root shard; see
// Shard.NewCounter.
func (k *Kernel) NewCounter(name string) *Counter { return k.s0.NewCounter(name) }

// NewCounter returns a counter starting at zero, carved from the shard's
// arena (see arena.go). Every field is reinitialized: after a Reset the slot
// still holds a previous run's state (the waiter slice keeps its capacity).
func (sh *Shard) NewCounter(name string) *Counter {
	c := sh.arena.newCounter()
	c.sh, c.name, c.epoch = sh, name, sh.k.epoch
	c.v = 0
	c.waiters = c.waiters[:0]
	return c
}

// check panics when the handle predates the kernel's current epoch.
func (c *Counter) check() {
	if c.epoch != c.sh.k.epoch {
		panic("sim: counter handle (" + c.name + ") used across Kernel.Reset")
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Shard returns the owning shard.
func (c *Counter) Shard() *Shard { return c.sh }

// Add increases the counter by n (n must be non-negative; the structures the
// counter models only count up) and releases any waiters whose threshold is
// now reached.
func (c *Counter) Add(n int64) {
	c.check()
	if n < 0 {
		panic("sim: counter " + c.name + " decremented")
	}
	c.v += n
	c.release()
}

// Reset sets the counter back to zero for reuse by a subsequent operation.
// Resetting with waiters outstanding panics: the waiters' thresholds would
// silently refer to the previous epoch.
func (c *Counter) Reset() {
	c.check()
	if len(c.waiters) > 0 {
		panic("sim: counter " + c.name + " reset with waiters")
	}
	c.v = 0
}

func (c *Counter) wait(threshold int64, e entry) {
	i := sort.Search(len(c.waiters), func(i int) bool {
		return c.waiters[i].threshold > threshold
	})
	c.waiters = append(c.waiters, counterWait{})
	copy(c.waiters[i+1:], c.waiters[i:])
	c.waiters[i] = counterWait{threshold: threshold, e: e}
}

func (c *Counter) release() {
	n := 0
	for n < len(c.waiters) && c.waiters[n].threshold <= c.v {
		n++
	}
	if n == 0 {
		return
	}
	sh := c.sh
	if n == 1 {
		sh.wake(c.waiters[0].e)
	} else {
		// A threshold crossing that releases several waiters at one instant
		// wakes them as a single run-ring batch: the per-waiter blocked
		// bookkeeping runs first, then one bulk append in threshold order
		// (ties in registration order — the same order wake-by-wake pushes
		// would have produced).
		buf := sh.arena.wakeBuf[:0]
		for _, w := range c.waiters[:n] {
			if w.e.kind != eFn {
				p := sh.procAt(w.e.idx)
				sh.blocked--
				p.waitEv, p.waitC = nil, nil
			}
			buf = append(buf, w.e)
		}
		sh.ring.pushBatch(buf)
		sh.arena.wakeBuf = buf[:0]
	}
	// Compact in place rather than re-slicing the front away: waking repeatedly
	// would otherwise shrink capacity to zero and reallocate on every wait.
	// counterWait is pointer-free, so the vacated tail needs no clearing.
	rem := copy(c.waiters, c.waiters[n:])
	c.waiters = c.waiters[:rem]
}

// OnGE schedules fn once the counter reaches at least v. If it already has,
// fn is scheduled at the current time. Like Add, it must be called from the
// owning shard.
func (c *Counter) OnGE(v int64, fn func()) {
	c.check()
	if c.v >= v {
		c.sh.At(c.sh.now, fn)
		return
	}
	c.wait(v, entry{kind: eFn, idx: c.sh.newCb(fn)})
}
