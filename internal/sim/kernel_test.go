package sim

import (
	"strings"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(30*Nanosecond, func() { order = append(order, 3) })
	k.At(10*Nanosecond, func() { order = append(order, 1) })
	k.At(20*Nanosecond, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30*Nanosecond {
		t.Fatalf("final time = %v, want 30ns", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 100; i++ {
		k.At(5*Nanosecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: order[%d] = %d", i, order[i])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := New()
	k.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*Nanosecond, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := New()
	var times []Time
	k.Spawn("sleeper", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(Microsecond)
		times = append(times, p.Now())
		p.Sleep(2 * Microsecond)
		times = append(times, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Microsecond, 3 * Microsecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	k := New()
	var trace []string
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * Nanosecond)
		trace = append(trace, "a1")
		p.Sleep(20 * Nanosecond)
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * Nanosecond)
		trace = append(trace, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(trace, ",")
	want := "a0,b0,a1,b1,a2"
	if got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
}

func TestEventWaitAndFire(t *testing.T) {
	k := New()
	ev := k.NewEvent("go")
	var woke Time = -1
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(ev)
		woke = p.Now()
	})
	k.At(7*Microsecond, ev.Fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 7*Microsecond {
		t.Fatalf("woke at %v, want 7us", woke)
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	k := New()
	ev := k.NewEvent("done")
	ev.Fire()
	var woke Time = -1
	k.Spawn("late", func(p *Proc) {
		p.Sleep(3 * Nanosecond)
		p.Wait(ev)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3*Nanosecond {
		t.Fatalf("woke at %v, want 3ns", woke)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	k := New()
	ev := k.NewEvent("x")
	ev.Fire()
	defer func() {
		if recover() == nil {
			t.Error("double Fire did not panic")
		}
	}()
	ev.Fire()
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	ev := k.NewEvent("never")
	k.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	err := k.Run()
	if err == nil {
		t.Fatal("deadlock not reported")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error %q does not name the blocked process", err)
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	k := New()
	k.Spawn("bad", func(p *Proc) {
		p.Sleep(Nanosecond)
		panic("boom")
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("process panic not surfaced, err = %v", err)
	}
}

func TestCounterThresholds(t *testing.T) {
	k := New()
	c := k.NewCounter("bytes")
	var wokeAt []Time
	for _, th := range []int64{100, 50, 150} {
		k.Spawn("w", func(p *Proc) {
			p.WaitGE(c, th)
			wokeAt = append(wokeAt, p.Now())
		})
	}
	k.At(Microsecond, func() { c.Add(60) })   // releases threshold 50
	k.At(2*Microsecond, func() { c.Add(40) }) // releases threshold 100
	k.At(3*Microsecond, func() { c.Add(50) }) // releases threshold 150
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Microsecond, 2 * Microsecond, 3 * Microsecond}
	if len(wokeAt) != len(want) {
		t.Fatalf("wokeAt = %v", wokeAt)
	}
	for i := range want {
		if wokeAt[i] != want[i] {
			t.Fatalf("wokeAt = %v, want %v", wokeAt, want)
		}
	}
}

func TestCounterWaitAlreadySatisfied(t *testing.T) {
	k := New()
	c := k.NewCounter("c")
	c.Add(10)
	done := false
	k.Spawn("w", func(p *Proc) {
		p.WaitGE(c, 5)
		done = true
		if p.Now() != 0 {
			t.Errorf("satisfied wait consumed time: %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter did not run")
	}
}

func TestCounterDecrementPanics(t *testing.T) {
	k := New()
	c := k.NewCounter("c")
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterResetWithWaitersPanics(t *testing.T) {
	k := New()
	c := k.NewCounter("c")
	c.OnGE(10, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Reset with waiters did not panic")
		}
	}()
	c.Reset()
}

func TestPipeSerialization(t *testing.T) {
	k := New()
	// 1 GB/s pipe: 1000 bytes take 1 us.
	pipe := k.NewPipe("link", 1e9, 0)
	var d1, d2 Time
	k.At(0, func() { d1 = pipe.Reserve(1000) })
	k.At(0, func() { d2 = pipe.Reserve(1000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 != Microsecond {
		t.Fatalf("first transfer done at %v, want 1us", d1)
	}
	if d2 != 2*Microsecond {
		t.Fatalf("second transfer done at %v, want 2us (queued)", d2)
	}
}

func TestPipeLatencyDoesNotOccupy(t *testing.T) {
	k := New()
	pipe := k.NewPipe("link", 1e9, 500*Nanosecond)
	var d1, d2 Time
	k.At(0, func() {
		d1 = pipe.Reserve(1000)
		d2 = pipe.Reserve(1000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d1 != Microsecond+500*Nanosecond {
		t.Fatalf("d1 = %v", d1)
	}
	// Second transfer starts when the wire frees (1us), not after latency.
	if d2 != 2*Microsecond+500*Nanosecond {
		t.Fatalf("d2 = %v", d2)
	}
}

func TestPipeIdleGap(t *testing.T) {
	k := New()
	pipe := k.NewPipe("link", 1e9, 0)
	var d Time
	k.At(0, func() { pipe.Reserve(1000) })
	k.At(10*Microsecond, func() { d = pipe.Reserve(1000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d != 11*Microsecond {
		t.Fatalf("post-idle transfer done at %v, want 11us", d)
	}
}

func TestPipeReserveFromChaining(t *testing.T) {
	k := New()
	a := k.NewPipe("a", 1e9, 100*Nanosecond)
	b := k.NewPipe("b", 1e9, 100*Nanosecond)
	var done Time
	k.At(0, func() {
		t1 := a.Reserve(1000)
		done = b.ReserveFrom(t1, 1000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1us on a + 100ns latency, then 1us on b + 100ns latency.
	if done != 2*Microsecond+200*Nanosecond {
		t.Fatalf("chained done = %v", done)
	}
}

func TestPipeStats(t *testing.T) {
	k := New()
	pipe := k.NewPipe("p", 1e9, 0)
	k.At(0, func() {
		pipe.Reserve(500)
		pipe.Reserve(1500)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bytes, busy, n := pipe.Stats()
	if bytes != 2000 || n != 2 {
		t.Fatalf("stats bytes=%d n=%d", bytes, n)
	}
	if busy != 2*Microsecond {
		t.Fatalf("busy = %v, want 2us", busy)
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1000, 1e9); got != Microsecond {
		t.Fatalf("TransferTime = %v", got)
	}
	if got := TransferTime(0, 1e9); got != 0 {
		t.Fatalf("TransferTime(0) = %v", got)
	}
}

func TestProcTransfer(t *testing.T) {
	k := New()
	pipe := k.NewPipe("p", 1e9, 0)
	var at Time
	k.Spawn("mover", func(p *Proc) {
		p.Transfer(pipe, 2000)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 2*Microsecond {
		t.Fatalf("transfer finished at %v", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := New()
		pipe := k.NewPipe("shared", 2e9, 50*Nanosecond)
		var finish []Time
		for i := 0; i < 8; i++ {
			k.Spawn("p", func(p *Proc) {
				p.Sleep(Time(i) * 10 * Nanosecond)
				p.Transfer(pipe, 4096)
				finish = append(finish, p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{5 * Microsecond, "5.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
