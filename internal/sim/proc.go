package sim

import (
	"fmt"
	"runtime/debug"
	"strconv"
)

// Proc is a simulated process: a coroutine backed by a pooled goroutine
// (see pool.go) and scheduled by its owning shard. Exactly one process body
// executes at a time per shard, so process code may freely touch the shard's
// simulation state without locking (on a sharded kernel, state in other
// shards is off limits — see epoch.go for the cross-shard post API). A
// process consumes virtual time only through Sleep, Wait, WaitGE, and
// Transfer.
type Proc struct {
	k    *Kernel
	sh   *Shard
	name string
	// nid is the flyweight name suffix (see Pipe.nid): SpawnIdx processes
	// share one prefix string ("rank") and render "rank<nid>" lazily in
	// Name(), so a million-rank world formats no per-process name unless a
	// failure actually reports one. -1 for plainly named processes.
	nid int32

	// self is the process's dense arena index (arena.go): the value queue
	// entries carry instead of a *Proc, and stable for the kernel's lifetime.
	// epoch stamps the lease the process belongs to; like events and
	// counters, a Proc handle must not be used across Kernel.Reset.
	self  uint32
	epoch uint32

	// gate receives the virtual-CPU token: the shard (or a directly
	// handing-off peer process) sends to resume the process. The channel is
	// owned by the backing pool worker and outlives the Proc; the Proc
	// itself is a single-use handle, so no per-spawn state can leak across
	// pool reuses. nil for inline program processes.
	gate chan struct{}

	// Blocked-on state for deadlock reporting. At most one is non-nil; the
	// reason string is built lazily only when a deadlock is actually
	// reported, keeping fmt off the wait hot path.
	waitEv *Event
	waitC  *Counter
	waitGE int64

	idx int // position in sh.procs, for O(1) removal on exit

	// plan is the reusable fused-step buffer (see plan.go). Its continuation
	// is scheduled as an eStep entry naming self — no pre-bound closure.
	plan Plan

	// Program-mode state (see program.go). inline marks a process with no
	// backing goroutine: its continuations run as queue callbacks (eCont and
	// eProg entries naming self). cont holds the continuation pending behind
	// the current sleep, wait, or plan; armed records that a resume is
	// pending somewhere in the queues or waiter lists, so the activation
	// wrapper can tell "parked" from "finished".
	inline bool
	armed  bool
	cont   func()

	// fpGen/fpID intern this process into a steady-state fingerprint walk
	// (steady.go): when fpGen equals the walking capture's generation the
	// process is already labelled fpID; any other value means unseen. The
	// stamp lives on the process so a rack-scale capture interns millions of
	// processes with two word writes instead of a map insert.
	fpGen uint64
	fpID  uint32
}

// check panics when the handle predates the kernel's current epoch: its slab
// slot belongs to the next lease now (or will shortly).
func (p *Proc) check() {
	if p.epoch != p.k.epoch {
		panic("sim: process handle (" + p.Name() + ") used across Kernel.Reset")
	}
}

// checkOwner guards wait registration on a sharded kernel: blocking on an
// event or counter of another shard would let that shard mutate this
// process's wait state mid-window.
func (p *Proc) checkOwner(sh *Shard) {
	if sh != p.sh {
		panic("sim: process " + p.Name() + " waiting on an object of another shard")
	}
}

// procPanicError formats a panic escaping process code — a process body or a
// fused plan step — as the simulation failure Run reports.
func procPanicError(name string, r any) error {
	return fmt.Errorf("sim: process %s panicked: %v\n%s", name, r, debug.Stack())
}

// Spawn creates a process running fn on the root shard and schedules its
// first execution at the current virtual time. fn runs to completion unless
// it panics, which aborts the whole simulation with an error from
// Kernel.Run. The backing goroutine comes from the shared worker pool, so
// repeated Kernel instances reuse parked goroutines (and their grown
// stacks) instead of spawning fresh ones.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc { return k.s0.Spawn(name, fn) }

// Spawn creates a process running fn on this shard; see Kernel.Spawn.
func (sh *Shard) Spawn(name string, fn func(p *Proc)) *Proc {
	return sh.SpawnIdx(name, -1, fn)
}

// SpawnIdx is Spawn for indexed process families: the process renders its
// name lazily as "<prefix><id>" (id >= 0), so spawning a million ranks
// formats no name strings. Scheduling is identical to Spawn.
func (sh *Shard) SpawnIdx(prefix string, id int32, fn func(p *Proc)) *Proc {
	p := sh.carveProc(prefix, id)
	w := getWorker()
	p.gate = w.gate
	w.p, w.fn = p, fn
	p.idx = len(sh.procs)
	sh.procs = append(sh.procs, p.self)
	sh.ring.push(entry{kind: eResume, idx: p.self})
	return p
}

// carveProc carves a process slot from the shard's arena and reinitializes
// every field a previous lease may have left behind (slots are reused after
// Kernel.Reset). The program frame is cleared in resetFrame (program.go),
// the one file allowed to touch those fields; the plan keeps its step-buffer
// capacity.
func (sh *Shard) carveProc(name string, nid int32) *Proc {
	p, self := sh.arena.newProc()
	p.k, p.sh, p.name, p.nid = sh.k, sh, name, nid
	p.self, p.epoch = self, sh.k.epoch
	p.gate = nil
	p.waitEv, p.waitC, p.waitGE = nil, nil, 0
	p.plan.p = p
	p.plan.steps = p.plan.steps[:0]
	p.plan.i = 0
	p.resetFrame()
	return p
}

// exec runs the process body on its pool worker, converting panics into a
// simulation failure and dropping the finished process from the deadlock-
// report set. The worker still holds the shard's virtual-CPU token
// throughout, so the shard's state is ours to touch; the token is passed on
// by the worker loop immediately after exec returns.
func (p *Proc) exec(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			p.sh.fail(procPanicError(p.Name(), r))
		}
		sh := p.sh
		last := len(sh.procs) - 1
		moved := sh.procs[last]
		sh.procs[p.idx] = moved
		sh.procAt(moved).idx = p.idx
		sh.procs = sh.procs[:last]
	}()
	fn(p)
}

// yield releases the virtual CPU and blocks the goroutine until the next
// resume. The yielding process first drives the shard's scheduler itself
// (handoff): callbacks due before the next process resume run right here,
// the clock advances if needed, and the token then goes straight to the next
// runnable process — one rendezvous, scheduler goroutine not involved. If
// that process is this one (e.g. a Sleep(0) queued behind nothing), yield
// keeps the CPU and returns immediately. Only when no process is runnable
// (queues drained, window edge, noHandoff mode, or failure) does the token
// return to the shard's scheduler loop.
func (p *Proc) yield() {
	if p.inline {
		panic("sim: blocking primitive called on program process " + p.Name())
	}
	q := p.sh.handoff()
	if q == p {
		return
	}
	if q != nil {
		q.gate <- struct{}{}
	} else {
		p.sh.sched <- struct{}{}
	}
	<-p.gate
}

// blockedOn describes what the process is waiting on, or "" if it is not
// blocked. Used only for deadlock reports.
func (p *Proc) blockedOn() string {
	switch {
	case p.waitEv != nil:
		return "event:" + p.waitEv.name
	case p.waitC != nil:
		return fmt.Sprintf("counter:%s>=%d", p.waitC.name, p.waitGE)
	}
	return ""
}

// Name returns the process name given at Spawn, or "<prefix><id>" for a
// SpawnIdx process (formatted on demand; see the nid field).
func (p *Proc) Name() string {
	if p.nid < 0 {
		return p.name
	}
	return p.name + strconv.Itoa(int(p.nid))
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Shard returns the owning shard (the root shard on a serial kernel).
func (p *Proc) Shard() *Shard { return p.sh }

// Now returns the owning shard's current virtual time.
func (p *Proc) Now() Time { return p.sh.now }

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Sleep(d Time) {
	p.check()
	if d < 0 {
		d = 0
	}
	p.sh.schedProc(p.sh.now+d, p)
	p.yield()
}

// SleepUntil blocks the process until absolute virtual time t. Times in the
// past return immediately.
func (p *Proc) SleepUntil(t Time) {
	p.check()
	if t <= p.sh.now {
		return
	}
	p.sh.schedProc(t, p)
	p.yield()
}

// Wait blocks the process until ev fires. If ev has already fired it returns
// immediately without consuming virtual time. ev must live on the process's
// own shard.
func (p *Proc) Wait(ev *Event) {
	p.check()
	ev.check()
	p.checkOwner(ev.sh)
	if ev.fired {
		return
	}
	p.waitEv = ev
	p.sh.blocked++
	ev.waiters = append(ev.waiters, entry{kind: eResume, idx: p.self})
	p.yield()
}

// WaitGE blocks the process until c reaches at least v. c must live on the
// process's own shard.
func (p *Proc) WaitGE(c *Counter, v int64) {
	p.check()
	c.check()
	p.checkOwner(c.sh)
	if c.v >= v {
		return
	}
	p.waitC, p.waitGE = c, v
	p.sh.blocked++
	c.wait(v, entry{kind: eResume, idx: p.self})
	p.yield()
}

// Transfer reserves n bytes on pipe and sleeps until the transfer (including
// the pipe's latency) completes. It returns the completion time.
func (p *Proc) Transfer(pipe *Pipe, n int) Time {
	done := pipe.Reserve(n)
	p.SleepUntil(done)
	return done
}
