package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process: a goroutine-backed coroutine scheduled by the
// kernel. Exactly one process body executes at a time, so process code may
// freely touch shared simulation state without locking. A process consumes
// virtual time only through Sleep, Wait, WaitGE, and Transfer.
type Proc struct {
	k    *Kernel
	name string

	// gate is the single rendezvous channel between the kernel and the
	// process goroutine. Ownership of the virtual CPU strictly alternates:
	// the kernel sends to hand the CPU to the process and then receives to
	// take it back; the process receives to start running and sends to
	// yield. With exactly one token in flight the unbuffered channel cannot
	// mismatch sides.
	gate chan struct{}

	// run and wake are bound once at Spawn so the hot scheduling paths
	// (Sleep, Wait, WaitGE and the kernel rendezvous itself) do not allocate
	// a fresh closure per call.
	run  func()
	wake func()

	// Blocked-on state for deadlock reporting. At most one is non-nil; the
	// reason string is built lazily only when a deadlock is actually
	// reported, keeping fmt off the wait hot path.
	waitEv *Event
	waitC  *Counter
	waitGE int64

	idx int // position in k.procs, for O(1) removal on exit
}

// Spawn creates a process running fn and schedules its first execution at the
// current virtual time. fn runs to completion unless it panics, which aborts
// the whole simulation with an error from Kernel.Run.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:    k,
		name: name,
		gate: make(chan struct{}),
	}
	p.run = func() {
		p.gate <- struct{}{}
		<-p.gate
	}
	p.wake = func() {
		p.k.blocked--
		p.waitEv, p.waitC = nil, nil
		p.run()
	}
	p.idx = len(k.procs)
	k.procs = append(k.procs, p)
	go func() {
		<-p.gate
		defer func() {
			if r := recover(); r != nil {
				k.fail(fmt.Errorf("sim: process %s panicked: %v\n%s", name, r, debug.Stack()))
			}
			// The kernel is parked in p.run here, so kernel state is ours to
			// touch: drop the finished process from the deadlock-report set.
			last := len(k.procs) - 1
			k.procs[p.idx] = k.procs[last]
			k.procs[p.idx].idx = p.idx
			k.procs[last] = nil
			k.procs = k.procs[:last]
			p.gate <- struct{}{}
		}()
		fn(p)
	}()
	k.ring.push(p.run)
	return p
}

// yield returns control to the kernel event loop and blocks the goroutine
// until the next p.run.
func (p *Proc) yield() {
	p.gate <- struct{}{}
	<-p.gate
}

// blockedOn describes what the process is waiting on, or "" if it is not
// blocked. Used only for deadlock reports.
func (p *Proc) blockedOn() string {
	switch {
	case p.waitEv != nil:
		return "event:" + p.waitEv.name
	case p.waitC != nil:
		return fmt.Sprintf("counter:%s>=%d", p.waitC.name, p.waitGE)
	}
	return ""
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.At(p.k.now+d, p.run)
	p.yield()
}

// SleepUntil blocks the process until absolute virtual time t. Times in the
// past return immediately.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.k.At(t, p.run)
	p.yield()
}

// Wait blocks the process until ev fires. If ev has already fired it returns
// immediately without consuming virtual time.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	p.waitEv = ev
	p.k.blocked++
	ev.waiters = append(ev.waiters, p.wake)
	p.yield()
}

// WaitGE blocks the process until c reaches at least v.
func (p *Proc) WaitGE(c *Counter, v int64) {
	if c.v >= v {
		return
	}
	p.waitC, p.waitGE = c, v
	p.k.blocked++
	c.wait(v, p.wake)
	p.yield()
}

// Transfer reserves n bytes on pipe and sleeps until the transfer (including
// the pipe's latency) completes. It returns the completion time.
func (p *Proc) Transfer(pipe *Pipe, n int) Time {
	done := pipe.Reserve(n)
	p.SleepUntil(done)
	return done
}
