package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a simulated process: a goroutine-backed coroutine scheduled by the
// kernel. Exactly one process body executes at a time, so process code may
// freely touch shared simulation state without locking. A process consumes
// virtual time only through Sleep, Wait, WaitGE, and Transfer.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{} // kernel -> proc: run
	parked chan struct{} // proc -> kernel: yielded or finished
}

// Spawn creates a process running fn and schedules its first execution at the
// current virtual time. fn runs to completion unless it panics, which aborts
// the whole simulation with an error from Kernel.Run.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	k.liveProcs++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				k.fail(fmt.Errorf("sim: process %s panicked: %v\n%s", name, r, debug.Stack()))
			}
			k.liveProcs--
			p.parked <- struct{}{}
		}()
		fn(p)
	}()
	k.At(k.now, p.run)
	return p
}

// run hands the virtual CPU to the process and blocks until it yields.
// It is always invoked from the kernel's event loop.
func (p *Proc) run() {
	p.resume <- struct{}{}
	<-p.parked
}

// yield returns control to the kernel event loop and blocks the goroutine
// until the next p.run.
func (p *Proc) yield() {
	p.parked <- struct{}{}
	<-p.resume
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.k.At(p.k.now+d, p.run)
	p.yield()
}

// SleepUntil blocks the process until absolute virtual time t. Times in the
// past return immediately.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.k.At(t, p.run)
	p.yield()
}

// Wait blocks the process until ev fires. If ev has already fired it returns
// immediately without consuming virtual time.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	p.k.blocked[p] = "event:" + ev.name
	ev.waiters = append(ev.waiters, func() {
		delete(p.k.blocked, p)
		p.run()
	})
	p.yield()
}

// WaitGE blocks the process until c reaches at least v.
func (p *Proc) WaitGE(c *Counter, v int64) {
	if c.v >= v {
		return
	}
	p.k.blocked[p] = fmt.Sprintf("counter:%s>=%d", c.name, v)
	c.wait(v, func() {
		delete(p.k.blocked, p)
		p.run()
	})
	p.yield()
}

// Transfer reserves n bytes on pipe and sleeps until the transfer (including
// the pipe's latency) completes. It returns the completion time.
func (p *Proc) Transfer(pipe *Pipe, n int) Time {
	done := pipe.Reserve(n)
	p.SleepUntil(done)
	return done
}
