// Shards: the kernel's scheduling state, partitioned for parallel
// conservative epochs.
//
// A Shard owns everything the serial kernel used to own globally: the clock,
// the 4-ary event heap, the same-instant run ring, the callback/add/hook
// entry tables, the process registry, and an arena. Every Event, Counter,
// Pipe, and Proc belongs to exactly one shard, and all of a shard's entries
// execute under a single virtual-CPU token, so intra-shard code is exactly
// as lock-free and deterministic as the serial kernel — a fresh kernel IS
// one shard (Kernel.s0), and the serial path runs unchanged through it.
//
// Cross-shard effects never touch another shard's structures directly: they
// are buffered into per-(src,dst) mailbox lanes (Post*, below) and merged at
// window boundaries by the epoch controller (epoch.go) in a deterministic
// (time, source shard, lane position) order. The conservative contract is
// enforced at post time: a message into a peer shard must land at least one
// lookahead after the sender's clock, so it can never arrive inside a window
// the destination is already executing.
//
// This file is a sanctioned goroutine launch site for the bgplint
// rawgoroutine rule: the shard window workers launched in startWorker only
// ever execute simulation code inside runWindow, between the controller's
// start/done channel rendezvous — each shard's state keeps a single-threaded
// happens-before chain through those channels, and no simulation state is
// shared between concurrently running shards except the mailbox lanes, which
// only the controller reads (after the rendezvous).
package sim

import "fmt"

// maxWindow is the open window bound of an unsharded run: no entry is ever
// scheduled this late, so bounded and unbounded execution share one loop.
const maxWindow = Time(1) << 62

// Shard is one partition of a kernel's scheduling state. A fresh kernel has
// exactly one (the root shard); NewShard/NewHubShard add more. All creation
// and scheduling methods mirror the Kernel-level API, which simply delegates
// to the root shard.
type Shard struct {
	k   *Kernel
	id  int32
	hub bool

	now Time
	// wend bounds the executing window: next() stops (leaving the clock put)
	// instead of advancing to an entry at or beyond it. maxWindow outside
	// sharded runs.
	wend  Time
	queue eventHeap
	ring  runRing

	// sched returns the virtual CPU to the shard's scheduler loop. Whichever
	// process ends a direct-handoff chain sends here; runWindow receives once
	// per process resume it initiated.
	sched chan struct{}

	// fused is a process whose plan just completed on an instant step: next()
	// resumes it before popping any further entry, preserving the queue
	// position its unfused slice would have occupied.
	fused *Proc

	// cbs is the callback table: eFn entries name a slot here instead of
	// carrying the func value, keeping queue memory pointer-free. Slots are
	// recycled through cbFree in LIFO order — a deterministic policy, so a
	// reused kernel assigns the same slot numbers as a fresh one.
	cbs    []func()
	cbFree []uint32

	// adds is the scheduled-add table: eAdd entries name a slot here holding
	// a (counter, amount) pair, so a deferred Counter.Add costs no closure.
	// Slots recycle LIFO through addFree, like cbs.
	adds    []addAt
	addFree []uint32

	// hooks is the delivered-post table: an eHook entry names a slot holding
	// a (handler, a, b) triple from a cross-shard PostHook — the pointer-lean
	// path for high-volume cross-shard traffic (e.g. one post per broadcast
	// chunk per node). Slots recycle LIFO like the other tables.
	hooks    []postHook
	hookFree []uint32

	// procs lists every live process by dense arena index; each tracks its
	// own registry position (Proc.idx) for O(1) removal. blocked counts
	// processes currently waiting on an Event or Counter threshold (not a
	// timed sleep). If all events drain everywhere while blocked > 0 the
	// simulation is deadlocked.
	procs   []uint32
	blocked int

	failure error

	// cbPanic holds the value of a callback panic captured on a process
	// goroutine (see handoff); Run re-panics with it so callback panics
	// crash Run exactly as they do when the scheduler goroutine runs them.
	cbPanic any

	// arena holds the shard's slab allocator for events, counters, and
	// processes (see arena.go). Everything carved from it lives exactly as
	// long as the kernel — or until Reset rewinds it.
	arena arena

	// out holds the outgoing mailbox lanes, indexed by destination shard id.
	// Lane order is the deterministic within-(src,dst) tiebreak of the epoch
	// merge; only the owning shard appends (during its window) and only the
	// controller drains (between windows).
	out [][]xmsg

	// start/done connect the shard to its window worker goroutine during a
	// parallel sharded Run; nil otherwise.
	start chan Time
	done  chan struct{}
}

func (sh *Shard) init(k *Kernel, id int32, hub bool) {
	sh.k = k
	sh.id = id
	sh.hub = hub
	sh.wend = maxWindow
	sh.sched = make(chan struct{})
}

// NewShard adds a peer shard: a partition that executes windows in parallel
// with every other peer shard. Shards must be created before the first Run;
// the partition persists across Reset.
func (k *Kernel) NewShard() *Shard { return k.addShard(false) }

// NewHubShard adds a hub shard: a partition that executes its window after
// every peer shard has finished theirs, within the same epoch. Hubs model
// globally shared resources (the collective-network channel, the barrier
// network): because they run strictly later in the epoch, peer shards may
// post into them at the current instant — no lookahead — and the hub still
// observes a complete, deterministically merged view of the window.
func (k *Kernel) NewHubShard() *Shard { return k.addShard(true) }

func (k *Kernel) addShard(hub bool) *Shard {
	if k.running {
		panic("sim: shard created during Run")
	}
	sh := &Shard{}
	sh.init(k, int32(len(k.shards)), hub)
	k.shards = append(k.shards, sh)
	return sh
}

// ID returns the shard's index in kernel creation order (the root shard
// is 0). Callers use it to key per-shard result slots.
func (sh *Shard) ID() int { return int(sh.id) }

// Hub reports whether the shard is a hub (runs after the peer phase).
func (sh *Shard) Hub() bool { return sh.hub }

// Kernel returns the owning kernel.
func (sh *Shard) Kernel() *Kernel { return sh.k }

// Now returns the shard's current virtual time.
func (sh *Shard) Now() Time { return sh.now }

// reset rewinds the shard for Kernel.Reset.
func (sh *Shard) reset() {
	sh.now = 0
	sh.wend = maxWindow
	sh.queue.reset()
	sh.ring.head, sh.ring.tail, sh.ring.n = 0, 0, 0
	sh.fused = nil
	sh.failure = nil
	sh.cbPanic = nil
	// Callback slots hold closures whose captures would otherwise keep the
	// previous run's garbage alive for the whole next lease.
	clear(sh.cbs)
	sh.cbs = sh.cbs[:0]
	sh.cbFree = sh.cbFree[:0]
	clear(sh.adds)
	sh.adds = sh.adds[:0]
	sh.addFree = sh.addFree[:0]
	clear(sh.hooks)
	sh.hooks = sh.hooks[:0]
	sh.hookFree = sh.hookFree[:0]
	for i := range sh.out {
		clear(sh.out[i])
		sh.out[i] = sh.out[i][:0]
	}
	sh.arena.reset()
}

// newCb stores fn in the callback table and returns its slot. Slots recycle
// LIFO so the mapping from schedule order to slot numbers is a pure function
// of the run, fresh or reused.
func (sh *Shard) newCb(fn func()) uint32 {
	if n := len(sh.cbFree); n > 0 {
		i := sh.cbFree[n-1]
		sh.cbFree = sh.cbFree[:n-1]
		sh.cbs[i] = fn
		return i
	}
	sh.cbs = append(sh.cbs, fn)
	return uint32(len(sh.cbs) - 1)
}

// runCb runs a callback slot, releasing it first so the table holds no
// reference while (and after) the callback executes.
func (sh *Shard) runCb(i uint32) {
	fn := sh.cbs[i]
	sh.cbs[i] = nil
	sh.cbFree = append(sh.cbFree, i)
	fn()
}

// procAt resolves a dense process index.
func (sh *Shard) procAt(i uint32) *Proc { return sh.arena.procAt(i) }

// At schedules fn to run on this shard at absolute virtual time t.
// Scheduling in the past panics: it indicates a broken cost model rather
// than a recoverable state.
func (sh *Shard) At(t Time, fn func()) {
	if t <= sh.now {
		if t < sh.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", t, sh.now))
		}
		sh.ring.push(entry{kind: eFn, idx: sh.newCb(fn)})
		return
	}
	sh.queue.push(t, entry{kind: eFn, idx: sh.newCb(fn)})
}

// After schedules fn to run d after the shard's current time.
func (sh *Shard) After(d Time, fn func()) { sh.At(sh.now+d, fn) }

// AddAt schedules c.Add(n) at absolute virtual time t, occupying exactly the
// (time, seq) position the equivalent At callback would. c must live on this
// shard; cross-shard adds go through PostAdd.
//
//bgplint:hot
func (sh *Shard) AddAt(t Time, c *Counter, n int64) {
	c.check()
	if c.sh != sh {
		panic("sim: AddAt on counter " + c.name + " of another shard; use PostAdd")
	}
	i := sh.newAdd(c, n)
	if t <= sh.now {
		if t < sh.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", t, sh.now))
		}
		sh.ring.push(entry{kind: eAdd, idx: i})
		return
	}
	sh.queue.push(t, entry{kind: eAdd, idx: i})
}

// newAdd carves an add-table slot (LIFO recycling, like newCb).
//
//bgplint:hot
func (sh *Shard) newAdd(c *Counter, n int64) uint32 {
	if m := len(sh.addFree); m > 0 {
		i := sh.addFree[m-1]
		sh.addFree = sh.addFree[:m-1]
		sh.adds[i] = addAt{c, n}
		return i
	}
	sh.adds = append(sh.adds, addAt{c, n})
	return uint32(len(sh.adds) - 1)
}

// runAdd applies a scheduled add, releasing its table slot first (mirroring
// runCb's discipline).
//
//bgplint:hot
func (sh *Shard) runAdd(i uint32) {
	a := sh.adds[i]
	sh.adds[i] = addAt{}
	sh.addFree = append(sh.addFree, i)
	a.c.Add(a.n)
}

// postHook is one delivered cross-shard PostHook: handler object plus two
// integer operands, so high-volume cross-shard traffic carries no closures.
type postHook struct {
	h    PostHandler
	a, b int64
}

// runHook dispatches a delivered PostHook, releasing its slot first.
//
//bgplint:hot
func (sh *Shard) runHook(i uint32) {
	hk := sh.hooks[i]
	sh.hooks[i] = postHook{}
	sh.hookFree = append(sh.hookFree, i)
	hk.h.RunPost(hk.a, hk.b)
}

// schedProc schedules p's next resume at absolute time t (>= now; timed
// sleeps clamp negative durations before calling).
//
//bgplint:hot
func (sh *Shard) schedProc(t Time, p *Proc) {
	if t <= sh.now {
		sh.ring.push(entry{kind: eResume, idx: p.self})
		return
	}
	sh.queue.push(t, entry{kind: eResume, idx: p.self})
}

// schedStep schedules the continuation of p's plan (see plan.go) at absolute
// time t, using the same now-vs-future placement rule as schedProc so the
// entry lands exactly where the process's own resume would have.
//
//bgplint:hot
func (sh *Shard) schedStep(t Time, p *Proc) {
	if t <= sh.now {
		sh.ring.push(entry{kind: eStep, idx: p.self})
		return
	}
	sh.queue.push(t, entry{kind: eStep, idx: p.self})
}

// wake makes a released waiter runnable at the current instant. For process
// waiters the blocked bookkeeping happens here, eagerly, so the queued entry
// is a bare resume that any token holder may execute; the caller (Event.Fire,
// Counter.release) always holds the token.
//
//bgplint:hot
func (sh *Shard) wake(w entry) {
	if w.kind != eFn {
		p := sh.procAt(w.idx)
		sh.blocked--
		p.waitEv, p.waitC = nil, nil
	}
	sh.ring.push(w)
}

// next drives the scheduler under the caller's virtual-CPU token: it pops
// entries in exact per-shard (time, seq) order, runs callbacks inline,
// advances the clock when the current instant is exhausted, and returns the
// first process resume it reaches. nil means no runnable work remains before
// the window bound (queues drained, or the simulation failed). Both the
// scheduler loop (runWindow) and a yielding process (handoff) use this one
// decision sequence, so who holds the token never changes what executes
// next.
//
//bgplint:hot
func (sh *Shard) next() *Proc {
	for sh.failure == nil {
		// Heap entries at the current instant predate (in seq order) every
		// ring entry, so they run first; otherwise the FIFO ring drains
		// before the clock may advance to the heap's next timestamp — and
		// never to or past the window bound.
		var e entry
		if n := len(sh.queue.s); n > 0 && sh.queue.s[0].t <= sh.now {
			e = sh.queue.pop()
		} else if !sh.ring.empty() {
			e = sh.ring.pop()
		} else if len(sh.queue.s) > 0 && sh.queue.s[0].t < sh.wend {
			sh.now = sh.queue.s[0].t
			e = sh.queue.pop()
		} else {
			break
		}
		switch e.kind {
		case eResume:
			return sh.procAt(e.idx)
		case eFn:
			sh.runCb(e.idx)
		case eStep:
			sh.procAt(e.idx).advance()
		case eCont:
			sh.procAt(e.idx).runCont()
		case eProg:
			sh.procAt(e.idx).runProg()
		case eAdd:
			sh.runAdd(e.idx)
		case eHook:
			sh.runHook(e.idx)
		}
		// A callback that completed a process's plan resumes that process
		// immediately: its slice belongs at this exact queue position.
		if p := sh.fused; p != nil {
			sh.fused = nil
			return p
		}
	}
	return nil
}

// handoff is next() as invoked by a process (or an exiting pool worker)
// still holding the token: one rendezvous hands the CPU straight to the
// returned process, and the scheduler goroutine stays parked. Disabled in
// noHandoff mode. A callback panic is captured here rather than allowed to
// unwind simulated process code (whose defers must not run for an unrelated
// callback's bug): the simulation fails, the token returns to the scheduler,
// and Run re-panics with the original value.
func (sh *Shard) handoff() (q *Proc) {
	if sh.k.noHandoff || sh.failure != nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			sh.cbPanic = r
			sh.fail(fmt.Errorf("sim: callback panicked: %v", r))
			q = nil
		}
	}()
	return sh.next()
}

// fail records a fatal simulation error (process panic) on this shard.
func (sh *Shard) fail(err error) {
	if sh.failure == nil {
		sh.failure = err
	}
}

// runWindow executes the shard's entries strictly before bound under the
// caller's goroutine: the exact loop the serial kernel runs, with the heap
// stopping at the window edge. The shard's ring is empty and its clock is
// below bound when runWindow returns (unless the run failed).
func (sh *Shard) runWindow(bound Time) {
	sh.wend = bound
	for {
		p := sh.next()
		if p == nil {
			return
		}
		// Hand the virtual CPU to the process and park until some process —
		// not necessarily this one, if the token travelled a direct-handoff
		// chain — returns it.
		p.gate <- struct{}{}
		<-sh.sched
		if sh.failure != nil {
			return
		}
	}
}
