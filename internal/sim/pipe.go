package sim

// Pipe models a serialized bandwidth resource: a torus link, the DMA engine,
// the collective tree channel, or a memory bus. Transfers occupy the pipe
// back to back in reservation order, so concurrent users automatically share
// the bandwidth and queueing delay emerges from contention.
//
// A reservation of n bytes made at time t completes at
//
//	start = max(t, free) ; done = start + n/bandwidth + latency
//
// and the pipe becomes free for the next reservation at start + n/bandwidth:
// the fixed latency models wire/forwarding delay that does not occupy the
// channel.
// A pipe belongs to the shard that created it: reservations read the owning
// shard's clock, so only that shard's code may reserve on it.
type Pipe struct {
	sh   *Shard
	name string
	ppb  float64 // picoseconds per byte
	lat  Time

	free Time

	// Statistics for utilization reporting.
	totalBytes int64
	busy       Time
	transfers  int64
}

// NewPipe creates a pipe owned by the root shard; see Shard.NewPipe.
func (k *Kernel) NewPipe(name string, bytesPerSecond float64, latency Time) *Pipe {
	return k.s0.NewPipe(name, bytesPerSecond, latency)
}

// NewPipe creates a pipe with the given bandwidth in bytes/second and fixed
// per-transfer latency. Unlike events and counters, pipes keep their identity
// across Kernel.Reset (the machine's networks hold them for the partition's
// lifetime); the kernel registers each pipe so Reset can rewind its
// reservation state and statistics along with the clock.
func (sh *Shard) NewPipe(name string, bytesPerSecond float64, latency Time) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe " + name + " with non-positive bandwidth")
	}
	p := &Pipe{sh: sh, name: name, ppb: float64(Second) / bytesPerSecond, lat: latency}
	sh.k.pipes = append(sh.k.pipes, p)
	return p
}

// Name returns the pipe's name.
func (p *Pipe) Name() string { return p.name }

// Reserve occupies the pipe for n bytes starting no earlier than now and
// returns the completion time (including latency).
func (p *Pipe) Reserve(n int) Time { return p.ReserveFrom(p.sh.now, n) }

// ReserveFrom occupies the pipe for n bytes starting no earlier than t
// (clamped to now) and returns the completion time. It is used to chain
// cut-through transfers across consecutive links, where the data cannot enter
// link i+1 before it left link i.
func (p *Pipe) ReserveFrom(t Time, n int) Time {
	_, done := p.ReserveAt(t, n)
	return done
}

// ReserveAt is ReserveFrom returning both the transfer's start time and its
// completion time (including latency). Cut-through chains use the start time
// of hop i to lower-bound the start of hop i+1 by one hop latency.
func (p *Pipe) ReserveAt(t Time, n int) (start, done Time) {
	if n < 0 {
		panic("sim: pipe " + p.name + " negative transfer")
	}
	start = maxTime(maxTime(t, p.sh.now), p.free)
	cost := Time(float64(n) * p.ppb)
	p.free = start + cost
	p.totalBytes += int64(n)
	p.busy += cost
	p.transfers++
	return start, p.free + p.lat
}

// NextFree returns the earliest time a new reservation could start.
func (p *Pipe) NextFree() Time { return maxTime(p.free, p.sh.now) }

// Latency returns the pipe's fixed per-transfer latency.
func (p *Pipe) Latency() Time { return p.lat }

// Stats reports cumulative bytes moved, busy time and transfer count since
// creation.
func (p *Pipe) Stats() (bytes int64, busy Time, transfers int64) {
	return p.totalBytes, p.busy, p.transfers
}
