package sim

import "fmt"

// Pipe models a serialized bandwidth resource: a torus link, the DMA engine,
// the collective tree channel, or a memory bus. Transfers occupy the pipe
// back to back in reservation order, so concurrent users automatically share
// the bandwidth and queueing delay emerges from contention.
//
// A reservation of n bytes made at time t completes at
//
//	start = max(t, free) ; done = start + n/bandwidth + latency
//
// and the pipe becomes free for the next reservation at start + n/bandwidth:
// the fixed latency models wire/forwarding delay that does not occupy the
// channel.
// A pipe belongs to the shard that created it: reservations read the owning
// shard's clock, so only that shard's code may reserve on it.
type Pipe struct {
	sh   *Shard
	name string
	// nid is the flyweight name suffix: a per-device index formatted into
	// Name() only when a name is actually rendered (panics, reports). -1
	// means the name is just the string. Worlds with 10^5..10^6 pipes pay
	// for one shared prefix string instead of a fmt.Sprintf per device.
	nid int32
	ppb float64 // picoseconds per byte
	lat Time

	free Time

	// Statistics for utilization reporting.
	totalBytes int64
	busy       Time
	transfers  int64

	// fpGen/fpID intern this object into a steady-state fingerprint walk
	// (steady.go): when fpGen equals the walking capture's generation the
	// object is already labelled fpID; any other value means unseen. The
	// stamp lives on the object so a rack-scale capture interns millions of
	// objects with two word writes instead of a map insert.
	fpGen uint64
	fpID  uint32
}

// NewPipe creates a pipe owned by the root shard; see Shard.NewPipe.
func (k *Kernel) NewPipe(name string, bytesPerSecond float64, latency Time) *Pipe {
	return k.s0.NewPipe(name, bytesPerSecond, latency)
}

// NewPipe creates a pipe with the given bandwidth in bytes/second and fixed
// per-transfer latency. Unlike events and counters, pipes keep their identity
// across Kernel.Reset (the machine's networks hold them for the partition's
// lifetime); the kernel registers each pipe so Reset can rewind its
// reservation state and statistics along with the clock.
func (sh *Shard) NewPipe(name string, bytesPerSecond float64, latency Time) *Pipe {
	p := &Pipe{}
	sh.InitPipe(p, name, -1, bytesPerSecond, latency)
	sh.k.AdoptPipe(p)
	return p
}

// InitPipe initializes a caller-allocated pipe in place without registering
// it with the kernel. It touches only the pipe itself, so disjoint pipes may
// be initialized concurrently (the machine layer builds node devices in
// parallel blocks); the caller must register every pipe with AdoptPipe from
// a single goroutine before the kernel runs, or Reset will not rewind it.
// nid >= 0 appends "[nid]" to the rendered name (see Pipe.nid).
func (sh *Shard) InitPipe(p *Pipe, name string, nid int32, bytesPerSecond float64, latency Time) {
	if bytesPerSecond <= 0 {
		panic("sim: pipe " + name + " with non-positive bandwidth")
	}
	*p = Pipe{sh: sh, name: name, nid: nid, ppb: float64(Second) / bytesPerSecond, lat: latency}
}

// AdoptPipe registers a pipe initialized with InitPipe so Reset rewinds its
// reservation state along with the clock. Registration order is irrelevant
// (Reset rewinds all pipes); calling it once per pipe is the caller's
// responsibility. Like NewPipe, it may run mid-simulation (lazily created
// torus links, per-operation protocol pipes) — but only from code holding
// the virtual-CPU token, never from a construction worker after Run starts.
func (k *Kernel) AdoptPipe(p *Pipe) {
	k.pipes = append(k.pipes, p)
}

// ReleasePipes forgets every registered pipe. It exists for capacity-aware
// reconfiguration (machine.Reconfigure): a partition that rebuilds its device
// graph on the same kernel must first drop the old generation's pipes or
// Reset would keep rewinding — and keep alive — devices nothing references.
// Callers must not reserve on a released pipe afterwards.
func (k *Kernel) ReleasePipes() {
	if k.running {
		panic("sim: ReleasePipes during Run")
	}
	clear(k.pipes)
	k.pipes = k.pipes[:0]
}

// Name returns the pipe's name.
func (p *Pipe) Name() string {
	if p.nid < 0 {
		return p.name
	}
	return fmt.Sprintf("%s[%d]", p.name, p.nid)
}

// Reserve occupies the pipe for n bytes starting no earlier than now and
// returns the completion time (including latency).
func (p *Pipe) Reserve(n int) Time { return p.ReserveFrom(p.sh.now, n) }

// ReserveFrom occupies the pipe for n bytes starting no earlier than t
// (clamped to now) and returns the completion time. It is used to chain
// cut-through transfers across consecutive links, where the data cannot enter
// link i+1 before it left link i.
func (p *Pipe) ReserveFrom(t Time, n int) Time {
	_, done := p.ReserveAt(t, n)
	return done
}

// ReserveAt is ReserveFrom returning both the transfer's start time and its
// completion time (including latency). Cut-through chains use the start time
// of hop i to lower-bound the start of hop i+1 by one hop latency.
func (p *Pipe) ReserveAt(t Time, n int) (start, done Time) {
	if n < 0 {
		panic("sim: pipe " + p.Name() + " negative transfer")
	}
	start = maxTime(maxTime(t, p.sh.now), p.free)
	cost := Time(float64(n) * p.ppb)
	p.free = start + cost
	p.totalBytes += int64(n)
	p.busy += cost
	p.transfers++
	return start, p.free + p.lat
}

// NextFree returns the earliest time a new reservation could start.
func (p *Pipe) NextFree() Time { return maxTime(p.free, p.sh.now) }

// Latency returns the pipe's fixed per-transfer latency.
func (p *Pipe) Latency() Time { return p.lat }

// Stats reports cumulative bytes moved, busy time and transfer count since
// creation.
func (p *Pipe) Stats() (bytes int64, busy Time, transfers int64) {
	return p.totalBytes, p.busy, p.transfers
}
