package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestProgramRunsWithoutGoroutine checks a pure-program workload completes
// through Run's callback loop alone and observes the same virtual clock as
// the blocking equivalent.
func TestProgramRunsWithoutGoroutine(t *testing.T) {
	k := New()
	var done Time
	k.SpawnProgram("prog", func(p *Proc) {
		p.SleepThen(3*Nanosecond, func() {
			p.SleepThen(0, func() {
				done = p.Now()
			})
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 3*Nanosecond {
		t.Fatalf("program finished at %v, want 3ns", done)
	}
	if len(k.s0.procs) != 0 {
		t.Fatalf("%d procs left registered after completion", len(k.s0.procs))
	}
}

// TestProgramZeroSleepQueuesBehindPending verifies SleepThen(0) schedules
// (never runs inline), exactly like Proc.Sleep(0): a callback already queued
// at the same instant runs first.
func TestProgramZeroSleepQueuesBehindPending(t *testing.T) {
	k := New()
	var order []string
	k.SpawnProgram("prog", func(p *Proc) {
		k.At(k.Now(), func() { order = append(order, "queued") })
		p.SleepThen(0, func() { order = append(order, "resumed") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "queued,resumed" {
		t.Fatalf("order %q, want queued,resumed", got)
	}
}

// TestProgramWaitFastPathsInline verifies the no-yield fast paths: a fired
// event and a satisfied counter continue synchronously, consuming no virtual
// time and no queue entry.
func TestProgramWaitFastPathsInline(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	ev.Fire()
	c := k.NewCounter("c")
	c.Add(5)
	ran := false
	k.SpawnProgram("prog", func(p *Proc) {
		p.WaitThen(ev, func() {
			p.WaitGEThen(c, 5, func() {
				p.SleepUntilThen(p.Now()-Nanosecond, func() { ran = true })
			})
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("fast-path continuations did not run")
	}
}

// TestProgramPanicFailsRun checks a panic in a continuation aborts the
// simulation with the same process-panic error a goroutine body produces.
func TestProgramPanicFailsRun(t *testing.T) {
	k := New()
	k.SpawnProgram("bad", func(p *Proc) {
		p.SleepThen(Nanosecond, func() { panic("boom") })
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "process bad panicked: boom") {
		t.Fatalf("got %v, want process-panic failure", err)
	}
}

// TestProgramTailCallViolationPanics checks the contract guard: arming two
// resumes from one activation is a transcription bug and must fail loudly.
func TestProgramTailCallViolationPanics(t *testing.T) {
	k := New()
	k.SpawnProgram("bad", func(p *Proc) {
		p.SleepThen(Nanosecond, func() {})
		p.SleepThen(Nanosecond, func() {}) // second arm in the same activation
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "resume already pending") {
		t.Fatalf("got %v, want tail-call contract panic", err)
	}
}

// TestProgramBlockingPrimitivePanics checks a blocking primitive on an
// inline process fails loudly instead of corrupting the token protocol.
func TestProgramBlockingPrimitivePanics(t *testing.T) {
	k := New()
	k.SpawnProgram("bad", func(p *Proc) { p.Sleep(Nanosecond) })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "blocking primitive called on program process") {
		t.Fatalf("got %v, want blocking-primitive panic", err)
	}
}

// TestProgramReferenceModeUsesGoroutines checks noProgram routes the same
// body through Spawn and produces the same result.
func TestProgramReferenceModeUsesGoroutines(t *testing.T) {
	for _, noProgram := range []bool{false, true} {
		k := New()
		k.SetNoProgram(noProgram)
		var at Time
		p := k.SpawnProgram("prog", func(p *Proc) {
			p.SleepThen(2*Nanosecond, func() { at = p.Now() })
		})
		if p.Inline() == noProgram {
			t.Fatalf("noProgram=%v: Inline()=%v", noProgram, p.Inline())
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if at != 2*Nanosecond {
			t.Fatalf("noProgram=%v: finished at %v", noProgram, at)
		}
	}
}

// TestBatchedWakeOrder fires an event and crosses a counter threshold with
// many waiters each (program, plan, and goroutine procs mixed) and checks
// release order is registration order — the batched ring append must be
// byte-for-byte the order N individual wakes would have produced.
func TestBatchedWakeOrder(t *testing.T) {
	k := New()
	ev := k.NewEvent("ev")
	c := k.NewCounter("c")
	var order []string
	for i := 0; i < 9; i++ {
		name := fmt.Sprintf("w%d", i)
		switch i % 3 {
		case 0:
			k.Spawn(name, func(p *Proc) {
				p.Wait(ev)
				p.WaitGE(c, 1)
				order = append(order, name)
			})
		case 1:
			k.SpawnProgram(name, func(p *Proc) {
				p.WaitThen(ev, func() {
					p.WaitGEThen(c, 1, func() { order = append(order, name) })
				})
			})
		case 2:
			// Registered via At(now) so the subscription lands at the same
			// t=0 ring position the neighboring procs' first activations do.
			k.At(k.Now(), func() {
				ev.OnFire(func() { c.OnGE(1, func() { order = append(order, name) }) })
			})
		}
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(Nanosecond)
		ev.Fire()
		p.Sleep(Nanosecond)
		c.Add(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "w0,w1,w2,w3,w4,w5,w6,w7,w8"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("wake order %q, want %q", got, want)
	}
}
