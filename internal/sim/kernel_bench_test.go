package sim

import "testing"

// Kernel microbenchmarks. These measure the raw event-scheduling machinery —
// the denominator of every figure regeneration — in events (or yields) per
// second. CI runs them as a smoke test; the numbers recorded in BENCH_SIM.json
// and DESIGN.md §9 come from -benchtime=2s runs.

// BenchmarkAtNow measures the dominant scheduling case: an event scheduled at
// the current virtual time (Event.Fire fan-out, counter wakeups, Proc.run
// rendezvous all take this path).
func BenchmarkAtNow(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	// Schedule-and-drain in batches so the queue stays small (as it does in
	// real collectives) rather than growing to b.N.
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		m := batch
		if b.N-n < m {
			m = b.N - n
		}
		for i := 0; i < m; i++ {
			k.At(k.Now(), fn)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAtFuture measures heap-path scheduling: every event lands at a
// distinct future timestamp, so nothing can take a same-time fast path.
func BenchmarkAtFuture(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	const batch = 1024
	for n := 0; n < b.N; n += batch {
		m := batch
		if b.N-n < m {
			m = b.N - n
		}
		base := k.Now()
		for i := 0; i < m; i++ {
			k.At(base+Time(i+1)*Nanosecond, fn)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAtMixed interleaves same-time and future scheduling the way a
// pipelined collective does: each popped event reschedules one future hop and
// fans out two same-time wakeups.
func BenchmarkAtMixed(b *testing.B) {
	k := New()
	b.ReportAllocs()
	nop := func() {}
	left := b.N
	var step func()
	step = func() {
		if left <= 0 {
			return
		}
		left--
		k.At(k.Now(), nop)
		k.At(k.Now(), nop)
		k.After(10*Nanosecond, step)
	}
	step()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventFire measures one-shot event fan-out: W waiters parked on an
// event, released by a single Fire.
func BenchmarkEventFire(b *testing.B) {
	const waiters = 16
	k := New()
	nop := func() {}
	b.ReportAllocs()
	for n := 0; n < b.N; n += waiters {
		ev := k.NewEvent("e")
		for i := 0; i < waiters; i++ {
			ev.OnFire(nop)
		}
		ev.Fire()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCounterWake measures the counter threshold wake path: a producer
// Add releasing one waiter per iteration.
func BenchmarkCounterWake(b *testing.B) {
	k := New()
	c := k.NewCounter("bytes")
	nop := func() {}
	b.ReportAllocs()
	const batch = 1024
	total := int64(0)
	for n := 0; n < b.N; n += batch {
		m := batch
		if b.N-n < m {
			m = b.N - n
		}
		for i := 0; i < m; i++ {
			c.OnGE(total+int64(i)+1, nop)
		}
		for i := 0; i < m; i++ {
			c.Add(1)
		}
		total += int64(m)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcYield measures the coroutine handoff: one process sleeping
// zero-duration b.N times, i.e. two kernel<->process control transfers per
// iteration.
func BenchmarkProcYield(b *testing.B) {
	k := New()
	b.ReportAllocs()
	k.Spawn("yielder", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(0)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcWaitGE measures the blocking-wait hot path used by the DMA
// byte counters: a consumer WaitGE released by a producer Add, ping-pong.
func BenchmarkProcWaitGE(b *testing.B) {
	k := New()
	c := k.NewCounter("dma")
	b.ReportAllocs()
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.WaitGE(c, int64(i+1))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Add(1)
			p.Sleep(0)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawn measures process creation + first schedule + exit.
func BenchmarkSpawn(b *testing.B) {
	k := New()
	b.ReportAllocs()
	const batch = 256
	for n := 0; n < b.N; n += batch {
		m := batch
		if b.N-n < m {
			m = b.N - n
		}
		for i := 0; i < m; i++ {
			k.Spawn("w", func(p *Proc) {})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramYield is BenchmarkProcYield for an inline program: b.N
// zero-duration sleeps executed as queue callbacks, no goroutine involved.
// The gap between this and BenchmarkProcYield is the per-park saving of
// program mode.
func BenchmarkProgramYield(b *testing.B) {
	k := New()
	b.ReportAllocs()
	k.SpawnProgram("yielder", func(p *Proc) {
		var step func(i int)
		step = func(i int) {
			if i == b.N {
				return
			}
			p.SleepThen(0, func() { step(i + 1) })
		}
		step(0)
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProgramWaitGE is BenchmarkProcWaitGE with the consumer as an
// inline program: the producer's Add releases a stored continuation instead
// of a parked goroutine.
func BenchmarkProgramWaitGE(b *testing.B) {
	k := New()
	c := k.NewCounter("dma")
	b.ReportAllocs()
	k.SpawnProgram("consumer", func(p *Proc) {
		var step func(i int)
		step = func(i int) {
			if i == b.N {
				return
			}
			p.WaitGEThen(c, int64(i+1), func() { step(i + 1) })
		}
		step(0)
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Add(1)
			p.Sleep(0)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpawnProgram measures inline program creation + first activation +
// exit: no worker checkout, the Proc comes from the kernel arena.
func BenchmarkSpawnProgram(b *testing.B) {
	k := New()
	b.ReportAllocs()
	const batch = 256
	for n := 0; n < b.N; n += batch {
		m := batch
		if b.N-n < m {
			m = b.N - n
		}
		for i := 0; i < m; i++ {
			k.SpawnProgram("w", func(p *Proc) {})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArenaAlloc measures slab allocation of the kernel-lifetime
// objects (event + counter per iteration) — the path every collective state
// constructor takes.
func BenchmarkArenaAlloc(b *testing.B) {
	k := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.NewEvent("e")
		_ = k.NewCounter("c")
	}
}

// BenchmarkBatchedCounterWake measures a threshold crossing that releases 32
// waiters at one instant: the bookkeeping pass plus one bulk ring append.
func BenchmarkBatchedCounterWake(b *testing.B) {
	const waiters = 32
	k := New()
	nop := func() {}
	b.ReportAllocs()
	for n := 0; n < b.N; n += waiters {
		c := k.NewCounter("bytes")
		for i := 0; i < waiters; i++ {
			c.OnGE(1, nop)
		}
		c.Add(1)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
