package sim

// Steady-state iteration extrapolation.
//
// The paper's methodology times each collective over an ITERS loop; in a
// bit-deterministic simulator every post-warmup iteration is identical, so
// executing them all recomputes numbers the kernel already proved. This file
// detects the per-iteration fixpoint and replays the remaining iterations
// analytically.
//
// The mechanism is a canonical fingerprint of the kernel's observable state,
// taken at a caller-chosen iteration boundary (the measure loop's
// barrier-release instant). The fingerprint is a byte stream over everything
// that can influence future execution — pending ring and heap entries,
// parked processes and their waits and plans, event and counter waiter
// lists, live pipe reservations, plus caller-supplied layer state — with
// every virtual time encoded relative to the boundary instant, so two
// iterations that differ only by a constant time shift produce identical
// streams. Objects (events, counters, pipes, processes) are interned in
// first-appearance order, so per-iteration objects at different slab slots
// compare equal when their contents do. State that is *not* observable in a
// clean run is deliberately excluded: arena carve counts, free-list stacks,
// table lengths, the heap's tie-break sequence counter, and names are all
// invisible to simulation code, and hashing them would make warmup churn
// (which permanently grows tables) look like perpetual change.
//
// Induction argument: the kernel is a deterministic transition function of
// its observable state. If the states at boundaries k-p and k are isomorphic
// up to a uniform time shift Δ (equal fingerprints), then the execution from
// boundary k reproduces the execution from boundary k-p shifted by Δ —
// including reaching boundary k+p in the same state shifted by another Δ.
// Therefore the remaining iterations repeat that p-iteration cycle, and
// Forward may apply the shift `whole-periods × Δ` at once: advance the
// clock, shift every pending heap entry and live pipe reservation, and
// replay each registered monotone accumulator (per-iteration elapsed sums,
// syscall counters, pipe statistics) by `whole-periods × its per-period
// delta`. The in-flight iterations — fewer than one period — then execute
// live and land the kernel in the exact observable state a full run would
// have reached. p == 1 is the classic fixpoint; small p > 1 shows up when a
// collective rotates buffers or pipelined chunks across iterations.
//
// Anything the fingerprint cannot canonicalize — pending closures (eFn/eHook
// entries), unknown layer state — refuses the capture; after a few refused
// or unequal attempts the detector gives up and the run simply executes
// every iteration, bit-identical to the noExtrap reference mode.

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"
	"sync/atomic"
)

// Hasher is implemented by layer state (collective-op entries, process
// residue) that knows how to canonicalize itself into a fingerprint.
type Hasher interface {
	SteadyState(f *FP)
}

// FP accumulates one canonical fingerprint: a byte stream of
// boundary-relative observable state plus a positional list of monotone
// accumulator samples. A walk that encounters state it cannot canonicalize
// calls Refuse, which voids the capture. The same visitor, switched to
// forward mode by Steady.Forward, re-runs the walk to apply extrapolated
// deltas to the registered monotone accumulators; in forward mode all
// stream-building methods are no-ops.
type FP struct {
	buf   []byte
	lanes []int64

	now     Time
	refused bool
	reason  string

	// Forward mode: Mono* calls consume the shared laneDelta positionally
	// instead of sampling, and everything else is a no-op.
	forward bool
	laneIdx int

	nBasePipes int

	// in is working state shared by every FP in the owning detector's
	// capture window: it is live only during one walk (a comparison needs
	// just buf and lanes), so a single instance serves the whole window.
	in *fpIntern
}

// fpIntern is the per-walk working state shared across a detector's capture
// window. Interning labels objects in first-appearance order, so
// structurally identical states hash identically regardless of which arena
// slots or heap objects they occupy. Labels are assigned before contents
// are walked, so mutually referential states (a counter whose waiter is a
// process parked on that counter) terminate. There is no seen-table: each
// walk draws a process-unique generation from fpGenSource and stamps it
// onto every object it labels (Event/Counter/Pipe/Proc fpGen+fpID fields),
// so membership is two word reads and a rack-scale capture allocates
// nothing per object — the map variant spent hundreds of megabytes (and
// the GC scans of pointer-keyed tables) per million-rank detector.
type fpIntern struct {
	gen    uint64
	nextID uint32

	scratch   []scheduled
	laneDelta []int64
}

// fpGenSource hands out process-unique walk generations. A plain counter
// per detector would collide across detectors sharing a kernel's objects;
// a process-wide atomic never repeats within any realistic run.
var fpGenSource atomic.Uint64

func newFPIntern() *fpIntern {
	return &fpIntern{}
}

// Stream-element markers. The walk's structure is deterministic, so these
// exist only to keep reference and first-appearance encodings from aliasing.
const (
	fpRef   = 0xE0
	fpNew   = 0xE1
	fpNil   = 0x00
	fpSome  = 0x01
	fpFalse = 0x00
	fpTrue  = 0x01
)

func newFP(nBasePipes int, in *fpIntern) *FP {
	return &FP{nBasePipes: nBasePipes, in: in}
}

func (f *FP) reset(now Time) {
	f.buf = f.buf[:0]
	f.lanes = f.lanes[:0]
	f.in.gen = fpGenSource.Add(1)
	f.in.nextID = 0
	f.now = now
	f.refused = false
	f.reason = ""
	f.forward = false
	f.laneIdx = 0
}

// Refuse voids the capture: the walk hit state that cannot be canonicalized
// (a pending closure, an unknown op type, residue in a mailbox). The first
// reason sticks.
func (f *FP) Refuse(reason string) {
	if f.refused || f.forward {
		return
	}
	f.refused = true
	f.reason = reason
}

// Refused reports whether this capture was voided.
func (f *FP) Refused() bool { return f.refused }

func (f *FP) raw8(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	f.buf = append(f.buf, b[:]...)
}

// I64 appends an absolute integer to the stream.
func (f *FP) I64(v int64) {
	if f.refused || f.forward {
		return
	}
	f.raw8(uint64(v))
}

// Bool appends a flag to the stream.
func (f *FP) Bool(v bool) {
	if f.refused || f.forward {
		return
	}
	if v {
		f.buf = append(f.buf, fpTrue)
	} else {
		f.buf = append(f.buf, fpFalse)
	}
}

// Time appends a virtual instant, normalized to the boundary: two captures
// whose instants differ by exactly the boundary shift hash identically.
func (f *FP) Time(t Time) { f.I64(int64(t - f.now)) }

// Dur appends a duration (shift-invariant already).
func (f *FP) Dur(d Time) { f.I64(int64(d)) }

// Str appends a length-prefixed string.
func (f *FP) Str(s string) {
	if f.refused || f.forward {
		return
	}
	f.raw8(uint64(len(s)))
	f.buf = append(f.buf, s...)
}

// MonoI64 registers a monotone accumulator: in capture mode its value is
// sampled positionally (outside the equality stream — accumulators grow
// between iterations by construction); in forward mode the extrapolated
// delta is added in place.
func (f *FP) MonoI64(p *int64) {
	if f.refused {
		return
	}
	if f.forward {
		*p += f.in.laneDelta[f.laneIdx]
		f.laneIdx++
		return
	}
	f.lanes = append(f.lanes, *p)
}

// MonoInt is MonoI64 for int accumulators.
func (f *FP) MonoInt(p *int) {
	if f.refused {
		return
	}
	if f.forward {
		*p += int(f.in.laneDelta[f.laneIdx])
		f.laneIdx++
		return
	}
	f.lanes = append(f.lanes, int64(*p))
}

// MonoTime is MonoI64 for virtual-time accumulators.
func (f *FP) MonoTime(p *Time) {
	if f.refused {
		return
	}
	if f.forward {
		*p += Time(f.in.laneDelta[f.laneIdx])
		f.laneIdx++
		return
	}
	f.lanes = append(f.lanes, int64(*p))
}

// Event interns e and, on first appearance, hashes its observable content:
// fired flag and waiter list.
func (f *FP) Event(e *Event) {
	if f.refused || f.forward {
		return
	}
	if e.fpGen == f.in.gen {
		f.buf = append(f.buf, fpRef)
		f.raw8(uint64(e.fpID))
		return
	}
	e.fpGen, e.fpID = f.in.gen, f.in.nextID
	f.in.nextID++
	f.buf = append(f.buf, fpNew)
	f.Bool(e.fired)
	f.raw8(uint64(len(e.waiters)))
	for _, w := range e.waiters {
		f.entryCanon(e.sh, w)
	}
}

// Counter interns c and, on first appearance, hashes its value and waiter
// thresholds. Values are hashed absolute: every counter reachable at a
// steady boundary is per-operation state that restarts each iteration, and
// a genuinely monotone counter soundly (if conservatively) prevents
// steadiness rather than corrupting it.
func (f *FP) Counter(c *Counter) {
	if f.refused || f.forward {
		return
	}
	if c.fpGen == f.in.gen {
		f.buf = append(f.buf, fpRef)
		f.raw8(uint64(c.fpID))
		return
	}
	c.fpGen, c.fpID = f.in.gen, f.in.nextID
	f.in.nextID++
	f.buf = append(f.buf, fpNew)
	f.raw8(uint64(c.v))
	f.raw8(uint64(len(c.waiters)))
	for _, w := range c.waiters {
		f.raw8(uint64(w.threshold))
		f.entryCanon(c.sh, w.e)
	}
}

// PipeRef interns p and, on first appearance, hashes its rate, latency and
// boundary-relative next-free instant (an idle pipe hashes as free-now).
func (f *FP) PipeRef(p *Pipe) {
	if f.refused || f.forward {
		return
	}
	if p.fpGen == f.in.gen {
		f.buf = append(f.buf, fpRef)
		f.raw8(uint64(p.fpID))
		return
	}
	p.fpGen, p.fpID = f.in.gen, f.in.nextID
	f.in.nextID++
	f.buf = append(f.buf, fpNew)
	f.raw8(math.Float64bits(p.ppb))
	f.raw8(uint64(p.lat))
	rel := p.free - f.now
	if rel < 0 {
		rel = 0
	}
	f.raw8(uint64(rel))
}

// procRef interns a process index and, on first appearance, hashes the
// process's schedulable content: mode flags, what it waits on, and its plan
// position and steps. The continuation closure itself is not hashable; the
// program contract (a continuation is a pure function of the process's
// reached state) makes the reached state a sufficient proxy.
func (f *FP) procRef(sh *Shard, pi uint32) {
	if f.refused || f.forward {
		return
	}
	p := sh.procAt(pi)
	if p.fpGen == f.in.gen {
		f.buf = append(f.buf, fpRef)
		f.raw8(uint64(p.fpID))
		return
	}
	p.fpGen, p.fpID = f.in.gen, f.in.nextID
	f.in.nextID++
	f.buf = append(f.buf, fpNew)
	f.Bool(p.inline)
	f.Bool(p.armed)
	if p.waitEv != nil {
		f.buf = append(f.buf, fpSome)
		f.Event(p.waitEv)
	} else {
		f.buf = append(f.buf, fpNil)
	}
	if p.waitC != nil {
		f.buf = append(f.buf, fpSome)
		f.Counter(p.waitC)
		f.raw8(uint64(p.waitGE))
	} else {
		f.buf = append(f.buf, fpNil)
	}
	f.raw8(uint64(p.plan.i))
	f.raw8(uint64(len(p.plan.steps)))
	for i := range p.plan.steps {
		st := &p.plan.steps[i]
		f.buf = append(f.buf, st.kind)
		f.raw8(uint64(st.d))
		f.raw8(uint64(st.bytes))
		f.raw8(uint64(st.n))
		if st.pipe != nil {
			f.buf = append(f.buf, fpSome)
			f.PipeRef(st.pipe)
		} else {
			f.buf = append(f.buf, fpNil)
		}
		if st.c != nil {
			f.buf = append(f.buf, fpSome)
			f.Counter(st.c)
		} else {
			f.buf = append(f.buf, fpNil)
		}
	}
}

// entryCanon hashes one pending queue/ring/waiter entry. Process-routed
// kinds hash by interned process; scheduled adds hash by counter and
// increment. Callback and hook entries hold closures the fingerprint cannot
// see through, so they refuse the capture.
func (f *FP) entryCanon(sh *Shard, e entry) {
	if f.refused || f.forward {
		return
	}
	f.buf = append(f.buf, e.kind)
	switch e.kind {
	case eResume, eStep, eCont, eProg:
		f.procRef(sh, e.idx)
	case eAdd:
		a := sh.adds[e.idx]
		f.Counter(a.c)
		f.raw8(uint64(a.n))
	default: // eFn, eHook, eNone
		f.Refuse("pending callback entry")
	}
}

// steadyWalk hashes the kernel's observable scheduling state: pending ring
// entries in FIFO order, pending heap entries in (time, seq) order with
// boundary-relative times, every registered process, and the machine's base
// pipes. Sharded kernels, failed shards and in-flight fused resumes refuse.
func (k *Kernel) steadyWalk(f *FP) {
	if k.noExtrap {
		f.Refuse("noExtrap reference mode")
		return
	}
	if len(k.shards) > 1 {
		f.Refuse("sharded kernel")
		return
	}
	sh := &k.s0
	if sh.fused != nil {
		f.Refuse("fused resume pending")
		return
	}
	if sh.failure != nil {
		f.Refuse("failed shard")
		return
	}
	f.now = sh.now
	f.raw8(uint64(sh.blocked))

	f.raw8(uint64(sh.ring.n))
	for i := 0; i < sh.ring.n; i++ {
		f.entryCanon(sh, sh.ring.buf[(sh.ring.head+i)&(len(sh.ring.buf)-1)])
		if f.refused {
			return
		}
	}

	f.in.scratch = append(f.in.scratch[:0], sh.queue.s...)
	sort.Slice(f.in.scratch, func(i, j int) bool {
		a, b := &f.in.scratch[i], &f.in.scratch[j]
		if a.t != b.t {
			return a.t < b.t
		}
		return a.seq < b.seq
	})
	// Expand each node's batch in (t, seq) order, which is the heap's exact
	// drain order, so the stream is independent of how entries happen to be
	// grouped into batches. The root node may be mid-drain (the boundary
	// callback itself came out of it): its already-consumed prefix is gone
	// from the observable state and is skipped. The root is the heap minimum,
	// so after sorting it is scratch[0].
	skip := sh.queue.pos
	total := -skip
	for i := range f.in.scratch {
		total += len(sh.queue.buckets[f.in.scratch[i].bi])
	}
	f.raw8(uint64(total))
	for i := range f.in.scratch {
		sc := &f.in.scratch[i]
		b := sh.queue.buckets[sc.bi]
		if i == 0 {
			b = b[skip:]
		}
		for _, ent := range b {
			f.Time(sc.t)
			f.entryCanon(sh, ent)
			if f.refused {
				return
			}
		}
	}

	f.raw8(uint64(len(sh.procs)))
	for _, pi := range sh.procs {
		f.procRef(sh, pi)
		if f.refused {
			return
		}
	}

	k.steadyPipes(f)
}

// steadyPipes registers the base pipes' cumulative statistics as monotone
// lanes and hashes every live reservation. Base pipes are the first
// nBasePipes registrations — the permanent machine devices present when the
// detector was created; pipes adopted later (per-operation protocol pipes)
// are reached through whatever pending state references them, but their
// cumulative statistics are not extrapolated (they are diagnostics of
// already-released objects). This walk runs in forward mode too, so its
// Mono* sequence must stay positionally identical between modes.
func (k *Kernel) steadyPipes(f *FP) {
	n := f.nBasePipes
	if n > len(k.pipes) {
		n = len(k.pipes)
	}
	for i := 0; i < n; i++ {
		p := k.pipes[i]
		f.MonoI64(&p.totalBytes)
		f.MonoTime(&p.busy)
		f.MonoI64(&p.transfers)
	}
	if f.forward || f.refused {
		return
	}
	// Live reservations: pipes still occupied past the boundary instant.
	live := 0
	for _, p := range k.pipes {
		if p.free > f.now {
			live++
		}
	}
	f.raw8(uint64(live))
	for _, p := range k.pipes {
		if p.free > f.now {
			f.PipeRef(p)
		}
	}
}

// Steady is the per-run steady-state detector. The measure-loop harness
// calls Capture at each iteration boundary; when the current capture's
// fingerprint equals one taken p boundaries earlier (p up to
// maxSteadyPeriod), the workload is periodic with period p, Capture returns
// true, and the harness may call Forward to extrapolate whole periods.
// Classic steady state is the p == 1 case. A capture that is refused or
// matches nothing counts as an attempt; after maxSteadyAttempts the detector
// stops fingerprinting so a workload that never becomes periodic pays
// nothing further.
type Steady struct {
	k     *Kernel
	extra func(*FP)

	// hist is a rolling window of the most recent captures, newest first:
	// hist[0] is the current capture, hist[p] the one p boundaries back.
	// histN counts the valid older entries; a refused capture empties the
	// window, since a comparison across it would span unobserved state.
	hist  [maxSteadyPeriod + 1]*FP
	histN int

	delta   Time // virtual time of one period (valid after a match)
	period  int  // matched period in boundaries (valid after a match)
	matched *FP  // the earlier capture the current one equals

	attempts int
}

// maxSteadyPeriod bounds the cycle length the detector recognizes. Not
// every measure loop contracts to a fixed point: torus collectives that
// rotate pipelined chunks settle into short cycles (periods 2 and 3 are
// both observed in the Table 1 allreduce sweep), which consecutive-capture
// comparison would never match, and independent sub-cycles compose into
// their LCM (the Fig. 10 FIFO broadcast at one size runs a 3-cycle of
// rotating queue slots against a 2-cycle of alternating back-pressure
// phases: period 6). A small window of retained fingerprints catches them;
// a window slot only allocates its buffers if a capture actually reaches
// it, so fast-settling runs pay for two or three slots regardless of the
// bound.
const maxSteadyPeriod = 6

// maxSteadyAttempts bounds fingerprint work on never-periodic workloads.
// Detecting period p needs roughly warmup + 2p boundaries, so the budget
// leaves room for a late-settling period-6 cycle.
const maxSteadyAttempts = 16

// NewSteady returns a detector for k. extra, if non-nil, is invoked on every
// capture (and every forward replay) to walk layer state above the kernel —
// collective-op entries, per-rank residue, measure-loop accumulators. The
// base-pipe set whose statistics are extrapolated is snapshotted here, so
// create the detector after the machine's permanent devices are adopted.
func NewSteady(k *Kernel, extra func(*FP)) *Steady {
	n := len(k.pipes)
	s := &Steady{k: k, extra: extra}
	in := newFPIntern()
	for i := range s.hist {
		s.hist[i] = newFP(n, in)
	}
	return s
}

// Capture fingerprints the current state and reports whether it matches a
// capture from 1..maxSteadyPeriod boundaries back (periodic steady state
// detected; the smallest period wins). On a match, Delta reports the
// period's virtual-time length and Period the period in boundaries.
func (s *Steady) Capture() bool {
	if s.attempts >= maxSteadyAttempts {
		return false
	}
	// Rotate: the oldest capture's FP is recycled as the new current, so
	// buffer and interning-map capacity settle after the first few rounds.
	last := len(s.hist) - 1
	f := s.hist[last]
	copy(s.hist[1:], s.hist[:last])
	s.hist[0] = f
	f.reset(s.k.s0.now)
	// Size this capture off the previous one: consecutive fingerprints of
	// the same loop are near-identical in length, and growing a rack-scale
	// buffer through append doublings would fault roughly twice the final
	// footprint in throwaway pages.
	if s.histN > 0 {
		prev := s.hist[1]
		if cap(f.buf) < len(prev.buf) {
			f.buf = make([]byte, 0, len(prev.buf)+len(prev.buf)/16)
		}
		if cap(f.lanes) < len(prev.lanes) {
			f.lanes = make([]int64, 0, len(prev.lanes))
		}
	}
	s.k.steadyWalk(f)
	if s.extra != nil && !f.refused {
		s.extra(f)
	}
	if f.refused {
		s.histN = 0
		s.attempts++
		return false
	}
	valid := s.histN
	if s.histN < last {
		s.histN++
	}
	for p := 1; p <= valid; p++ {
		prev := s.hist[p]
		if f.now > prev.now && len(f.lanes) == len(prev.lanes) && bytes.Equal(f.buf, prev.buf) {
			s.delta = f.now - prev.now
			s.period = p
			s.matched = prev
			return true
		}
	}
	s.attempts++
	return false
}

// GaveUp reports that the detector exhausted its attempt budget without
// detecting a period; callers should stop invoking Capture.
func (s *Steady) GaveUp() bool { return s.attempts >= maxSteadyAttempts }

// LastRefusal returns the most recent capture's refusal reason ("" if the
// capture completed).
func (s *Steady) LastRefusal() string { return s.hist[0].reason }

// Delta returns the detected period's virtual-time length (valid after
// Capture returned true).
func (s *Steady) Delta() Time { return s.delta }

// Period returns the detected period in iteration boundaries (valid after
// Capture returned true). Callers must extrapolate whole periods: skipping
// a non-multiple would land the run at the wrong phase of the cycle.
func (s *Steady) Period() int { return s.period }

// Forward extrapolates reps whole periods after a successful Capture: the
// clock, every pending heap entry and every live pipe reservation advance by
// reps × Delta, and every monotone accumulator registered by the walk grows
// by reps × its per-period delta. The caller's in-flight iterations — fewer
// than one period of them — then execute live, landing the run in the exact
// observable state full execution would have reached.
//
// Forward runs inside a scheduled callback, which is safe precisely because
// the shift is uniform: every pending entry moves with the clock, so no
// entry's relative order or past/future classification changes.
func (s *Steady) Forward(reps int64) {
	if reps <= 0 {
		return
	}
	k := s.k
	sh := &k.s0
	shift := Time(reps) * s.delta
	sh.queue.shiftAll(shift)
	for _, p := range k.pipes {
		if p.free > sh.now {
			p.free += shift
		}
	}
	sh.now += shift

	// Replay the monotone accumulators through the same walk in forward
	// mode: each lane grows by reps × (current − matched) — its growth
	// across one full cycle of the detected period.
	f := s.hist[0]
	if len(f.in.laneDelta) < len(f.lanes) {
		f.in.laneDelta = make([]int64, len(f.lanes))
	}
	f.in.laneDelta = f.in.laneDelta[:len(f.lanes)]
	for i := range f.lanes {
		f.in.laneDelta[i] = reps * (f.lanes[i] - s.matched.lanes[i])
	}
	f.forward = true
	f.laneIdx = 0
	k.steadyPipes(f)
	if s.extra != nil {
		s.extra(f)
	}
	f.forward = false
	if f.laneIdx != len(f.in.laneDelta) {
		panic("sim: steady forward walk visited a different lane count than capture")
	}
}
