package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The stress tests generate a randomized pipeline workload from a seed and
// run it under every scheduling mode the kernel supports:
//
//   - direct handoff + fused plans + inline programs (the production
//     configuration)
//   - noHandoff: every yield through the kernel goroutine (two rendezvous)
//   - noFuse: plan-attached waits run through the ordinary primitives
//   - noProgram: SpawnProgram bodies run on goroutine-backed processes
//   - every combination of the three reference modes
//
// The modes are pure transport/fusion/execution changes; the (time, seq)
// event order must be bit-identical, so the recorded traces must match
// exactly.

type stressRec struct {
	proc  int
	round int
	at    Time
}

// stressMode names one kernel scheduling configuration.
type stressMode struct {
	name      string
	noHandoff bool
	noFuse    bool
	noProgram bool
	noShard   bool
	noExtrap  bool
}

// stressModes is the full {handoff, fuse, program, extrap} matrix; the
// production configuration comes first and is the comparison base. In the
// extrap modes a live Steady detector fingerprints the kernel every round
// (the workload is aperiodic, so it never matches): the matrix pins that
// fingerprint captures are observably side-effect-free, since the noextrap
// modes run without any detector and every trace must stay bit-identical.
var stressModes = func() []stressMode {
	var ms []stressMode
	for _, noExtrap := range []bool{false, true} {
		for _, noProgram := range []bool{false, true} {
			for _, noFuse := range []bool{false, true} {
				for _, noHandoff := range []bool{false, true} {
					name := "handoff"
					if noHandoff {
						name = "kernel-mediated"
					}
					if noFuse {
						name += "+unfused"
					} else {
						name += "+fuse"
					}
					if noProgram {
						name += "+goroutine-programs"
					} else {
						name += "+program"
					}
					if noExtrap {
						name += "+noextrap"
					} else {
						name += "+extrap"
					}
					ms = append(ms, stressMode{name: name, noHandoff: noHandoff, noFuse: noFuse, noProgram: noProgram, noExtrap: noExtrap})
				}
			}
		}
	}
	return ms
}()

// stressWorkload builds a deterministic random pipeline: proc 0 produces one
// token per round (with random sleeps and pipe transfers in between), and
// each later proc waits for its predecessor's token — randomly via a counter
// threshold or a per-round event, randomly with a fused plan of random steps
// or via the plain primitives — then performs its own random body and signals
// its successor. Every random choice is drawn up-front from the seeded
// source, so all modes execute the same program.
func stressTrace(t *testing.T, seed int64, mode stressMode) []stressRec {
	t.Helper()
	return stressTraceOn(t, seed, mode, New())
}

// stressTraceOn runs the stress workload on a caller-supplied kernel, so the
// reset tests can replay the identical program on a reused kernel.
func stressTraceOn(t *testing.T, seed int64, mode stressMode, k *Kernel) []stressRec {
	t.Helper()
	const (
		procs  = 12
		rounds = 20
	)
	rng := rand.New(rand.NewSource(seed))
	k.noHandoff, k.noFuse, k.noProgram, k.noExtrap = mode.noHandoff, mode.noFuse, mode.noProgram, mode.noExtrap
	// In extrap modes, fingerprint the kernel at every round boundary of
	// proc 0. The aperiodic workload never matches, so nothing is ever
	// extrapolated; the capture itself must leave no observable trace.
	var det *Steady
	if !mode.noExtrap {
		det = NewSteady(k, nil)
	}

	pipes := []*Pipe{
		k.NewPipe("busA", 2e9, 10*Nanosecond),
		k.NewPipe("busB", 6.8e9, 0),
	}
	scratch := k.NewCounter("scratch")
	tokens := make([]*Counter, procs)
	evs := make([][]*Event, procs)
	for i := range tokens {
		tokens[i] = k.NewCounter(fmt.Sprintf("tok%d", i))
		evs[i] = make([]*Event, rounds)
		for r := range evs[i] {
			evs[i][r] = k.NewEvent(fmt.Sprintf("ev%d.%d", i, r))
		}
	}

	// Per-(proc, round) program, generated before any proc runs.
	type roundProg struct {
		useEvent  bool // wait on evs[i][r] instead of tokens[i-1] >= r+1
		usePlan   bool // attach the steps as a fused plan
		signalEv  bool // successor waits on an event this round
		steps     []planStep
		bodySleep Time
		bodyPipe  int // -1: no transfer
		bodyBytes int
	}
	prog := make([][]roundProg, procs)
	for i := 0; i < procs; i++ {
		prog[i] = make([]roundProg, rounds)
		for r := 0; r < rounds; r++ {
			p := &prog[i][r]
			p.useEvent = rng.Intn(3) == 0
			p.usePlan = rng.Intn(2) == 0
			nsteps := rng.Intn(4)
			for s := 0; s < nsteps; s++ {
				switch rng.Intn(3) {
				case 0:
					p.steps = append(p.steps, planStep{kind: stepSleep, d: Time(rng.Intn(50)) * Nanosecond})
				case 1:
					p.steps = append(p.steps, planStep{
						kind: stepBusy, pipe: pipes[rng.Intn(len(pipes))],
						bytes: 256 + rng.Intn(8192), d: Time(rng.Intn(30)) * Nanosecond,
					})
				case 2:
					// A fused Add to a side counter: exercises stepAdd (and
					// its waiter release path) without perturbing the token
					// protocol.
					p.steps = append(p.steps, planStep{kind: stepAdd, c: scratch, n: 1})
				}
			}
			p.bodySleep = Time(rng.Intn(40)) * Nanosecond
			p.bodyPipe = rng.Intn(len(pipes)+1) - 1
			p.bodyBytes = 512 + rng.Intn(4096)
		}
	}
	// A proc's wait mode must agree with its predecessor's signal mode.
	for i := 1; i < procs; i++ {
		for r := 0; r < rounds; r++ {
			prog[i-1][r].signalEv = prog[i][r].useEvent
		}
	}
	// A seeded subset of procs runs as explicit-resume programs (SpawnProgram)
	// instead of blocking goroutine bodies, so the matrix exercises program
	// procs interleaved with goroutine procs in every mode.
	useProgram := make([]bool, procs)
	for i := range useProgram {
		useProgram[i] = rng.Intn(2) == 0
	}

	var trace []stressRec
	for i := 0; i < procs; i++ {
		// blockingBody is the original transcription: ordinary blocking
		// primitives on a goroutine-backed process.
		blockingBody := func(p *Proc) {
			for r := 0; r < rounds; r++ {
				pr := &prog[i][r]
				if i > 0 {
					if pr.usePlan {
						pl := p.NewPlan()
						pl.steps = append(pl.steps, pr.steps...)
						if pr.useEvent {
							p.WaitPlan(evs[i][r], pl)
						} else {
							p.WaitGEPlan(tokens[i-1], int64(r+1), pl)
						}
					} else {
						if pr.useEvent {
							p.Wait(evs[i][r])
						} else {
							p.WaitGE(tokens[i-1], int64(r+1))
						}
						for s := range pr.steps {
							st := &pr.steps[s]
							switch st.kind {
							case stepSleep:
								p.Sleep(st.d)
							case stepBusy:
								done := st.pipe.Reserve(st.bytes)
								if c := p.Now() + st.d; c > done {
									done = c
								}
								p.SleepUntil(done)
							case stepAdd:
								st.c.Add(st.n)
							}
						}
					}
				}
				p.Sleep(pr.bodySleep)
				if pr.bodyPipe >= 0 {
					p.Transfer(pipes[pr.bodyPipe], pr.bodyBytes)
				}
				if i == 0 && det != nil && det.Capture() {
					t.Fatalf("seed %d mode %s: aperiodic workload fingerprinted as steady", seed, mode.name)
				}
				trace = append(trace, stressRec{proc: i, round: r, at: p.Now()})
				if i < procs-1 {
					if pr.signalEv {
						evs[i+1][r].Fire()
					}
					// The token always advances so counter-mode rounds after
					// event-mode rounds still see threshold r+1.
					tokens[i].Add(1)
				}
			}
		}
		// programBody is the identical protocol in explicit-resume form.
		programBody := func(p *Proc) {
			var round func(r int)
			var runSteps func(r, s int)
			var runBody func(r int)
			finishRound := func(r int) {
				pr := &prog[i][r]
				if i == 0 && det != nil && det.Capture() {
					t.Fatalf("seed %d mode %s: aperiodic workload fingerprinted as steady", seed, mode.name)
				}
				trace = append(trace, stressRec{proc: i, round: r, at: p.Now()})
				if i < procs-1 {
					if pr.signalEv {
						evs[i+1][r].Fire()
					}
					tokens[i].Add(1)
				}
				round(r + 1)
			}
			runBody = func(r int) {
				pr := &prog[i][r]
				p.SleepThen(pr.bodySleep, func() {
					if pr.bodyPipe >= 0 {
						p.BusyThen(pipes[pr.bodyPipe], pr.bodyBytes, 0, func() { finishRound(r) })
					} else {
						finishRound(r)
					}
				})
			}
			runSteps = func(r, s int) {
				pr := &prog[i][r]
				if s == len(pr.steps) {
					runBody(r)
					return
				}
				st := &pr.steps[s]
				switch st.kind {
				case stepSleep:
					p.SleepThen(st.d, func() { runSteps(r, s+1) })
				case stepBusy:
					p.BusyThen(st.pipe, st.bytes, st.d, func() { runSteps(r, s+1) })
				case stepAdd:
					st.c.Add(st.n)
					runSteps(r, s+1)
				}
			}
			round = func(r int) {
				if r == rounds {
					return
				}
				pr := &prog[i][r]
				if i == 0 {
					runBody(r)
					return
				}
				if pr.usePlan {
					pl := p.NewPlan()
					pl.steps = append(pl.steps, pr.steps...)
					if pr.useEvent {
						p.WaitPlanThen(evs[i][r], pl, func() { runBody(r) })
					} else {
						p.WaitGEPlanThen(tokens[i-1], int64(r+1), pl, func() { runBody(r) })
					}
					return
				}
				if pr.useEvent {
					p.WaitThen(evs[i][r], func() { runSteps(r, 0) })
				} else {
					p.WaitGEThen(tokens[i-1], int64(r+1), func() { runSteps(r, 0) })
				}
			}
			round(0)
		}
		if useProgram[i] {
			k.SpawnProgram(fmt.Sprintf("p%d", i), programBody)
		} else {
			k.Spawn(fmt.Sprintf("p%d", i), blockingBody)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatalf("seed %d mode %s: %v", seed, mode.name, err)
	}
	return trace
}

// TestStressModeEquivalence is the scheduler's determinism obligation: the
// direct-handoff fast path and fused plans must not change what executes
// when, only which goroutine drives it.
func TestStressModeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		base := stressTrace(t, seed, stressModes[0])
		if len(base) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for _, mode := range stressModes[1:] {
			got := stressTrace(t, seed, mode)
			if len(got) != len(base) {
				t.Fatalf("seed %d: %s trace has %d records, %s has %d",
					seed, mode.name, len(got), stressModes[0].name, len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d: %s diverges from %s at record %d: %+v vs %+v",
						seed, mode.name, stressModes[0].name, i, got[i], base[i])
				}
			}
		}
	}
}

// TestStressRerunStable re-runs one workload in the production mode and
// requires identical traces: pooled goroutine reuse across kernels must not
// leak state into scheduling decisions.
func TestStressRerunStable(t *testing.T) {
	const seed = 42
	a := stressTrace(t, seed, stressModes[0])
	for rerun := 0; rerun < 3; rerun++ {
		b := stressTrace(t, seed, stressModes[0])
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rerun %d diverges at record %d: %+v vs %+v", rerun, i, a[i], b[i])
			}
		}
	}
}

// TestDeadlockReportIdenticalAcrossModes deadlocks the same workload under
// every mode: the report (which names each blocked process and what it waits
// on) is part of the deterministic surface too.
func TestDeadlockReportIdenticalAcrossModes(t *testing.T) {
	build := func(mode stressMode) error {
		k := New()
		k.noHandoff, k.noFuse, k.noProgram, k.noExtrap =
			mode.noHandoff, mode.noFuse, mode.noProgram, mode.noExtrap
		c := k.NewCounter("starved")
		ev := k.NewEvent("missing")
		k.Spawn("waiter.ev", func(p *Proc) {
			p.Sleep(Nanosecond)
			p.Wait(ev)
		})
		k.Spawn("waiter.ge", func(p *Proc) { p.WaitGE(c, 7) })
		k.Spawn("waiter.plan", func(p *Proc) {
			pl := p.NewPlan()
			pl.Sleep(Nanosecond)
			p.WaitGEPlan(c, 9, pl)
		})
		k.SpawnProgram("waiter.prog", func(p *Proc) {
			p.SleepThen(Nanosecond, func() {
				p.WaitThen(ev, func() { t.Error("waiter.prog resumed") })
			})
		})
		k.SpawnProgram("waiter.progplan", func(p *Proc) {
			pl := p.NewPlan()
			pl.Sleep(Nanosecond)
			p.WaitGEPlanThen(c, 11, pl, func() { t.Error("waiter.progplan resumed") })
		})
		k.Spawn("finisher", func(p *Proc) {
			p.Sleep(5 * Nanosecond)
			c.Add(1)
		})
		return k.Run()
	}
	base := build(stressModes[0])
	if base == nil {
		t.Fatal("expected deadlock")
	}
	for _, want := range []string{
		"waiter.ev(event:missing)", "waiter.ge(counter:starved>=7)", "waiter.plan(counter:starved>=9)",
		"waiter.prog(event:missing)", "waiter.progplan(counter:starved>=11)",
	} {
		if !strings.Contains(base.Error(), want) {
			t.Fatalf("deadlock report %q missing %q", base, want)
		}
	}
	for _, mode := range stressModes[1:] {
		if err := build(mode); err == nil || err.Error() != base.Error() {
			t.Fatalf("%s deadlock report %q != %q", mode.name, err, base)
		}
	}
}

// TestPooledProcReuseAcrossKernels spins many short kernels so procs reuse
// parked pool workers, then deadlocks one: stale worker state must neither
// corrupt scheduling nor the deadlock report.
func TestPooledProcReuseAcrossKernels(t *testing.T) {
	for i := 0; i < 50; i++ {
		k := New()
		c := k.NewCounter("c")
		for j := 0; j < 20; j++ {
			k.Spawn(fmt.Sprintf("s%d", j), func(p *Proc) {
				p.Sleep(Time(j) * Nanosecond)
				c.Add(1)
			})
		}
		k.Spawn("sink", func(p *Proc) { p.WaitGE(c, 20) })
		if err := k.Run(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	if n := pooledWorkers(); n == 0 {
		t.Fatal("no workers parked in the pool after repeated kernels")
	}
	k := New()
	ev := k.NewEvent("nope")
	k.Spawn("reused.stuck", func(p *Proc) { p.Wait(ev) })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "reused.stuck(event:nope)") {
		t.Fatalf("deadlock on a pooled proc misreported: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Sharded stress matrix: the same kind of randomized pipeline workload, laid
// out across three peer shards and a hub, run under the full 16-mode
// {handoff, fuse, program, shard} matrix. The shard dimension compares the
// parallel epoch execution against the noShard sequential reference — the
// two run the identical window/mailbox algorithm, so every trace and every
// deadlock report must be bit-identical.

const shardStressLookahead = 100 * Nanosecond

// shardStressModes is the full 32-mode matrix over the sharded workload.
var shardStressModes = func() []stressMode {
	var ms []stressMode
	for _, m := range stressModes {
		par := m
		par.name += "+parallel-shards"
		ms = append(ms, par)
		seq := m
		seq.noShard = true
		seq.name += "+sequential-shards"
		ms = append(ms, seq)
	}
	return ms
}()

// newShardStressKernel builds the partition the sharded workload runs on:
// three peer shards (the root plus two) and one hub.
func newShardStressKernel() (k *Kernel, peers []*Shard, hub *Shard) {
	k = New()
	peers = []*Shard{k.RootShard(), k.NewShard(), k.NewShard()}
	hub = k.NewHubShard()
	k.SetLookahead(shardStressLookahead)
	return k, peers, hub
}

// shardStressTraceOn runs the sharded pipeline workload: 12 procs in blocks
// of 4 per peer shard, each proc's pipes and wait objects local to its own
// shard, tokens and events crossing shard boundaries through PostAdd and
// PostFire one lookahead in the future, and every proc reporting completion
// into a hub counter at its own finish instant (the peer-to-hub same-window
// post). Each proc appends only to its own trace slice (under its shard's
// token), and the slices are concatenated in proc order afterwards, so the
// recording itself is identical under parallel and sequential execution.
func shardStressTraceOn(t *testing.T, seed int64, mode stressMode, k *Kernel, peers []*Shard, hub *Shard) []stressRec {
	t.Helper()
	const (
		procs      = 12
		perShard   = 4
		rounds     = 12
		crossDelay = shardStressLookahead
	)
	shardOf := func(i int) *Shard { return peers[i/perShard] }
	rng := rand.New(rand.NewSource(seed))
	k.noHandoff, k.noFuse, k.noProgram, k.noShard, k.noExtrap =
		mode.noHandoff, mode.noFuse, mode.noProgram, mode.noShard, mode.noExtrap

	// Per-shard pipe pairs: pipes are shard-owned resources.
	pipes := make([][]*Pipe, len(peers))
	for s, sh := range peers {
		pipes[s] = []*Pipe{
			sh.NewPipe(fmt.Sprintf("busA.%d", s), 2e9, 10*Nanosecond),
			sh.NewPipe(fmt.Sprintf("busB.%d", s), 6.8e9, 0),
		}
	}
	// tokens[i] is what proc i+1 waits on, so it lives on proc i+1's shard;
	// evs[i][r] is waited on by proc i, so it lives on proc i's shard.
	scratch := make([]*Counter, len(peers))
	for s, sh := range peers {
		scratch[s] = sh.NewCounter(fmt.Sprintf("scratch.%d", s))
	}
	tokens := make([]*Counter, procs)
	evs := make([][]*Event, procs)
	for i := 0; i < procs; i++ {
		if i+1 < procs {
			tokens[i] = shardOf(i + 1).NewCounter(fmt.Sprintf("tok%d", i))
		}
		evs[i] = make([]*Event, rounds)
		for r := range evs[i] {
			evs[i][r] = shardOf(i).NewEvent(fmt.Sprintf("ev%d.%d", i, r))
		}
	}
	hubDone := hub.NewCounter("hub.done")

	type roundProg struct {
		useEvent  bool
		usePlan   bool
		signalEv  bool
		steps     []planStep
		bodySleep Time
		bodyPipe  int
		bodyBytes int
	}
	prog := make([][]roundProg, procs)
	for i := 0; i < procs; i++ {
		sp := pipes[i/perShard]
		prog[i] = make([]roundProg, rounds)
		for r := 0; r < rounds; r++ {
			p := &prog[i][r]
			p.useEvent = rng.Intn(3) == 0
			p.usePlan = rng.Intn(2) == 0
			nsteps := rng.Intn(4)
			for s := 0; s < nsteps; s++ {
				switch rng.Intn(3) {
				case 0:
					p.steps = append(p.steps, planStep{kind: stepSleep, d: Time(rng.Intn(50)) * Nanosecond})
				case 1:
					p.steps = append(p.steps, planStep{
						kind: stepBusy, pipe: sp[rng.Intn(len(sp))],
						bytes: 256 + rng.Intn(8192), d: Time(rng.Intn(30)) * Nanosecond,
					})
				case 2:
					p.steps = append(p.steps, planStep{kind: stepAdd, c: scratch[i/perShard], n: 1})
				}
			}
			p.bodySleep = Time(rng.Intn(40)) * Nanosecond
			p.bodyPipe = rng.Intn(len(sp)+1) - 1
			p.bodyBytes = 512 + rng.Intn(4096)
		}
	}
	for i := 1; i < procs; i++ {
		for r := 0; r < rounds; r++ {
			prog[i-1][r].signalEv = prog[i][r].useEvent
		}
	}
	useProgram := make([]bool, procs)
	for i := range useProgram {
		useProgram[i] = rng.Intn(2) == 0
	}

	// Per-proc trace slices: each is appended only under its owning shard's
	// virtual-CPU token, so parallel windows never race on the recording.
	traces := make([][]stressRec, procs+1)
	signal := func(p *Proc, i, r int) {
		if i >= procs-1 {
			return
		}
		pr := &prog[i][r]
		sameShard := i/perShard == (i+1)/perShard
		if pr.signalEv {
			if sameShard {
				evs[i+1][r].Fire()
			} else {
				p.Shard().PostFire(p.Now()+crossDelay, evs[i+1][r])
			}
		}
		if sameShard {
			tokens[i].Add(1)
		} else {
			p.Shard().PostAdd(p.Now()+crossDelay, tokens[i], 1)
		}
	}
	finish := func(p *Proc) {
		// Peer-to-hub posts carry the sender's current instant: the hub runs
		// after the peer phase of the same window, so it still sees a
		// complete merged view of every finish time.
		p.Shard().PostAdd(p.Now(), hubDone, 1)
	}

	for i := 0; i < procs; i++ {
		sh := shardOf(i)
		blockingBody := func(p *Proc) {
			for r := 0; r < rounds; r++ {
				pr := &prog[i][r]
				if i > 0 {
					if pr.usePlan {
						pl := p.NewPlan()
						pl.steps = append(pl.steps, pr.steps...)
						if pr.useEvent {
							p.WaitPlan(evs[i][r], pl)
						} else {
							p.WaitGEPlan(tokens[i-1], int64(r+1), pl)
						}
					} else {
						if pr.useEvent {
							p.Wait(evs[i][r])
						} else {
							p.WaitGE(tokens[i-1], int64(r+1))
						}
						for s := range pr.steps {
							st := &pr.steps[s]
							switch st.kind {
							case stepSleep:
								p.Sleep(st.d)
							case stepBusy:
								done := st.pipe.Reserve(st.bytes)
								if c := p.Now() + st.d; c > done {
									done = c
								}
								p.SleepUntil(done)
							case stepAdd:
								st.c.Add(st.n)
							}
						}
					}
				}
				p.Sleep(pr.bodySleep)
				if pr.bodyPipe >= 0 {
					p.Transfer(pipes[i/perShard][pr.bodyPipe], pr.bodyBytes)
				}
				traces[i] = append(traces[i], stressRec{proc: i, round: r, at: p.Now()})
				signal(p, i, r)
			}
			finish(p)
		}
		programBody := func(p *Proc) {
			var round func(r int)
			var runSteps func(r, s int)
			var runBody func(r int)
			finishRound := func(r int) {
				traces[i] = append(traces[i], stressRec{proc: i, round: r, at: p.Now()})
				signal(p, i, r)
				round(r + 1)
			}
			runBody = func(r int) {
				pr := &prog[i][r]
				p.SleepThen(pr.bodySleep, func() {
					if pr.bodyPipe >= 0 {
						p.BusyThen(pipes[i/perShard][pr.bodyPipe], pr.bodyBytes, 0, func() { finishRound(r) })
					} else {
						finishRound(r)
					}
				})
			}
			runSteps = func(r, s int) {
				pr := &prog[i][r]
				if s == len(pr.steps) {
					runBody(r)
					return
				}
				st := &pr.steps[s]
				switch st.kind {
				case stepSleep:
					p.SleepThen(st.d, func() { runSteps(r, s+1) })
				case stepBusy:
					p.BusyThen(st.pipe, st.bytes, st.d, func() { runSteps(r, s+1) })
				case stepAdd:
					st.c.Add(st.n)
					runSteps(r, s+1)
				}
			}
			round = func(r int) {
				if r == rounds {
					finish(p)
					return
				}
				pr := &prog[i][r]
				if i == 0 {
					runBody(r)
					return
				}
				if pr.usePlan {
					pl := p.NewPlan()
					pl.steps = append(pl.steps, pr.steps...)
					if pr.useEvent {
						p.WaitPlanThen(evs[i][r], pl, func() { runBody(r) })
					} else {
						p.WaitGEPlanThen(tokens[i-1], int64(r+1), pl, func() { runBody(r) })
					}
					return
				}
				if pr.useEvent {
					p.WaitThen(evs[i][r], func() { runSteps(r, 0) })
				} else {
					p.WaitGEThen(tokens[i-1], int64(r+1), func() { runSteps(r, 0) })
				}
			}
			round(0)
		}
		if useProgram[i] {
			sh.SpawnProgram(fmt.Sprintf("p%d", i), programBody)
		} else {
			sh.Spawn(fmt.Sprintf("p%d", i), blockingBody)
		}
	}
	hub.Spawn("hub.sink", func(p *Proc) {
		p.WaitGE(hubDone, procs)
		traces[procs] = append(traces[procs], stressRec{proc: procs, round: 0, at: p.Now()})
	})
	if err := k.Run(); err != nil {
		t.Fatalf("seed %d mode %s: %v", seed, mode.name, err)
	}
	var trace []stressRec
	for _, tr := range traces {
		trace = append(trace, tr...)
	}
	return trace
}

func shardStressTrace(t *testing.T, seed int64, mode stressMode) []stressRec {
	t.Helper()
	k, peers, hub := newShardStressKernel()
	return shardStressTraceOn(t, seed, mode, k, peers, hub)
}

// TestShardStressModeEquivalence is the sharded kernel's determinism
// obligation: all 16 {handoff, fuse, program, shard} modes — parallel
// windows included — must produce bit-identical traces.
func TestShardStressModeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		base := shardStressTrace(t, seed, shardStressModes[0])
		if len(base) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		for _, mode := range shardStressModes[1:] {
			got := shardStressTrace(t, seed, mode)
			if len(got) != len(base) {
				t.Fatalf("seed %d: %s trace has %d records, %s has %d",
					seed, mode.name, len(got), shardStressModes[0].name, len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d: %s diverges from %s at record %d: %+v vs %+v",
						seed, mode.name, shardStressModes[0].name, i, got[i], base[i])
				}
			}
		}
	}
}

// TestShardStressResetReuse replays the sharded workload on a Reset-reused
// kernel (the shard partition persists across Reset) in both the parallel
// and the sequential vehicle: reuse must not perturb the committed order.
func TestShardStressResetReuse(t *testing.T) {
	const seed = 7
	for _, mode := range []stressMode{shardStressModes[0], shardStressModes[1]} {
		k, peers, hub := newShardStressKernel()
		first := shardStressTraceOn(t, seed, mode, k, peers, hub)
		for rerun := 0; rerun < 2; rerun++ {
			k.Reset()
			again := shardStressTraceOn(t, seed, mode, k, peers, hub)
			if len(again) != len(first) {
				t.Fatalf("%s rerun %d: %d records vs %d", mode.name, rerun, len(again), len(first))
			}
			for i := range first {
				if again[i] != first[i] {
					t.Fatalf("%s rerun %d diverges at record %d: %+v vs %+v",
						mode.name, rerun, i, again[i], first[i])
				}
			}
		}
	}
}

// TestShardDeadlockReportIdenticalAcrossModes deadlocks procs on three
// different shards plus the hub: the merged, sorted report must be identical
// across all 32 modes.
func TestShardDeadlockReportIdenticalAcrossModes(t *testing.T) {
	build := func(mode stressMode) error {
		k, peers, hub := newShardStressKernel()
		k.noHandoff, k.noFuse, k.noProgram, k.noShard, k.noExtrap =
			mode.noHandoff, mode.noFuse, mode.noProgram, mode.noShard, mode.noExtrap
		c1 := peers[1].NewCounter("starved1")
		ev0 := peers[0].NewEvent("missing0")
		ch := hub.NewCounter("hub.never")
		peers[0].Spawn("waiter.ev", func(p *Proc) {
			p.Sleep(Nanosecond)
			p.Wait(ev0)
		})
		peers[1].Spawn("waiter.ge", func(p *Proc) { p.WaitGE(c1, 7) })
		peers[2].SpawnProgram("waiter.prog", func(p *Proc) {
			tok := p.Shard().NewCounter("tok2")
			p.WaitGEThen(tok, 3, func() { t.Error("waiter.prog resumed") })
		})
		hub.Spawn("waiter.hub", func(p *Proc) { p.WaitGE(ch, 1) })
		peers[1].Spawn("finisher", func(p *Proc) {
			p.Sleep(5 * Nanosecond)
			c1.Add(1)
		})
		return k.Run()
	}
	base := build(shardStressModes[0])
	if base == nil {
		t.Fatal("expected deadlock")
	}
	for _, want := range []string{
		"waiter.ev(event:missing0)", "waiter.ge(counter:starved1>=7)",
		"waiter.prog(counter:tok2>=3)", "waiter.hub(counter:hub.never>=1)",
	} {
		if !strings.Contains(base.Error(), want) {
			t.Fatalf("deadlock report %q missing %q", base, want)
		}
	}
	for _, mode := range shardStressModes[1:] {
		if err := build(mode); err == nil || err.Error() != base.Error() {
			t.Fatalf("%s deadlock report %q != %q", mode.name, err, base)
		}
	}
}
