package sim

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			msg = r.(error).Error()
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q, want one containing %q", msg, want)
		}
	}()
	fn()
}

// TestShardedPostOrdering pins the two core delivery guarantees: messages
// merge per destination in (time, source shard, lane position) order, and
// peer-to-hub posts at the sender's current instant arrive within the same
// window.
func TestShardedPostOrdering(t *testing.T) {
	const L = 10 * Nanosecond
	for _, noShard := range []bool{false, true} {
		k := New()
		s0 := k.RootShard()
		s1 := k.NewShard()
		s2 := k.NewShard()
		hub := k.NewHubShard()
		k.SetLookahead(L)
		k.SetNoShard(noShard)

		var order []string
		rec := func(tag string) func() {
			return func() { order = append(order, tag) }
		}
		// Same destination, same instant, posted from two different sources:
		// source-shard order must win regardless of post order (s2 posts
		// before s1 here).
		s2.PostCall(2*L, s0, rec("s2@2L"))
		s1.PostCall(2*L, s0, rec("s1@2L"))
		// An earlier timestamp posted later still sorts first.
		s1.PostCall(L, s0, rec("s1@L"))
		// Two messages from one source to one destination at one instant keep
		// their lane (FIFO) order.
		s2.PostCall(3*L, s0, rec("s2@3L.a"))
		s2.PostCall(3*L, s0, rec("s2@3L.b"))

		// Peer-to-hub at the sender's current instant: the hub's window runs
		// after the peers', so it observes the full merged set for [0, L).
		done := hub.NewCounter("hub.done")
		s1.Spawn("sender1", func(p *Proc) {
			p.Sleep(Nanosecond)
			p.Shard().PostAdd(p.Now(), done, 1)
		})
		s2.Spawn("sender2", func(p *Proc) {
			p.Sleep(2 * Nanosecond)
			p.Shard().PostAdd(p.Now(), done, 2)
		})
		var hubAt Time
		var hubVal int64
		hub.Spawn("hub.sink", func(p *Proc) {
			p.WaitGE(done, 3)
			hubAt, hubVal = p.Now(), done.Value()
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		want := []string{"s1@L", "s1@2L", "s2@2L", "s2@3L.a", "s2@3L.b"}
		if len(order) != len(want) {
			t.Fatalf("noShard=%v: got %v, want %v", noShard, order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("noShard=%v: delivery order %v, want %v", noShard, order, want)
			}
		}
		if hubAt != 2*Nanosecond || hubVal != 3 {
			t.Fatalf("noShard=%v: hub released at %v with %d, want 2ns with 3", noShard, hubAt, hubVal)
		}
	}
}

// TestShardedNowIsHorizon verifies Kernel.Now on a sharded kernel reports
// the maximum shard clock.
func TestShardedNowIsHorizon(t *testing.T) {
	k := New()
	s1 := k.NewShard()
	k.SetLookahead(Microsecond)
	k.Spawn("short", func(p *Proc) { p.Sleep(3 * Nanosecond) })
	s1.Spawn("long", func(p *Proc) { p.Sleep(9 * Nanosecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 9*Nanosecond {
		t.Fatalf("Now() = %v, want 9ns", k.Now())
	}
}

// TestPostLookaheadViolation: a peer-to-peer post closer than the lookahead
// must panic — it would land inside a window the destination may already be
// executing.
func TestPostLookaheadViolation(t *testing.T) {
	k := New()
	s1 := k.NewShard()
	k.SetLookahead(100 * Nanosecond)
	c := k.NewCounter("c")
	mustPanic(t, "violates lookahead", func() {
		s1.PostAdd(50*Nanosecond, c, 1)
	})
	// Posting into one's own shard is a local schedule, not a post.
	c1 := s1.NewCounter("c1")
	mustPanic(t, "own shard", func() {
		s1.PostAdd(Microsecond, c1, 1)
	})
	// Hub-to-peer is a cross-phase post and needs the full lookahead even
	// though the hub runs later in the window.
	hub := k.NewHubShard()
	mustPanic(t, "violates lookahead", func() {
		hub.PostAdd(50*Nanosecond, c, 1)
	})
}

// TestCrossShardWaitPanics: blocking on another shard's objects would let
// two goroutines mutate one process's wait state.
func TestCrossShardWaitPanics(t *testing.T) {
	k := New()
	s1 := k.NewShard()
	k.SetLookahead(Microsecond)
	ev := s1.NewEvent("far")
	c := s1.NewCounter("farc")
	k.Spawn("crosswaiter", func(p *Proc) { p.Wait(ev) })
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "another shard") {
		t.Fatalf("cross-shard Wait: %v", err)
	}
	k2 := New()
	s := k2.NewShard()
	k2.SetLookahead(Microsecond)
	_ = s
	k2.Spawn("crossge", func(p *Proc) { p.WaitGE(c, 1) })
	if err := k2.Run(); err == nil || !strings.Contains(err.Error(), "Reset") && !strings.Contains(err.Error(), "another shard") {
		// c belongs to the first kernel; either the epoch check or the owner
		// check must reject it.
		t.Fatalf("foreign-counter WaitGE: %v", err)
	}
}

// TestShardedRunRequiresLookahead: a sharded kernel with no declared
// lookahead cannot define a window width.
func TestShardedRunRequiresLookahead(t *testing.T) {
	k := New()
	k.NewShard()
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("got %v, want lookahead error", err)
	}
	mustPanic(t, "non-positive lookahead", func() { k.SetLookahead(0) })
}

// TestShardCreationDuringRunPanics: the partition is fixed at Run time.
func TestShardCreationDuringRunPanics(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		mustPanic(t, "during Run", func() { k.NewShard() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPostHookDelivery covers the pointer-lean cross-shard call: the handler
// runs on the destination shard at the posted instant with both operands.
type testHook struct {
	got []int64
	at  []Time
	sh  *Shard
}

func (h *testHook) RunPost(a, b int64) {
	h.got = append(h.got, a, b)
	h.at = append(h.at, h.sh.Now())
}

func TestPostHookDelivery(t *testing.T) {
	const L = 10 * Nanosecond
	for _, noShard := range []bool{false, true} {
		k := New()
		s0 := k.RootShard()
		s1 := k.NewShard()
		k.SetLookahead(L)
		k.SetNoShard(noShard)
		h := &testHook{sh: s0}
		s1.Spawn("poster", func(p *Proc) {
			p.Sleep(Nanosecond)
			p.Shard().PostHook(p.Now()+L, s0, h, 7, 9)
		})
		// Keep s0 alive past the delivery instant so the hook's timestamp is
		// observable on its clock.
		k.Spawn("lingerer", func(p *Proc) { p.Sleep(5 * L) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if len(h.got) != 2 || h.got[0] != 7 || h.got[1] != 9 {
			t.Fatalf("noShard=%v: hook got %v", noShard, h.got)
		}
		if h.at[0] != Nanosecond+L {
			t.Fatalf("noShard=%v: hook ran at %v, want %v", noShard, h.at[0], Nanosecond+L)
		}
	}
}

// TestShardedResetStaleHandles: every shard's handles go stale across Reset,
// and a reused sharded kernel starts from a clean slate (clocks, mailboxes).
func TestShardedResetStaleHandles(t *testing.T) {
	k := New()
	s1 := k.NewShard()
	k.SetLookahead(Microsecond)
	ev := s1.NewEvent("pre")
	c := s1.NewCounter("cpre")
	s1.Spawn("worker", func(p *Proc) { p.Sleep(Nanosecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Reset()
	if k.Now() != 0 || s1.Now() != 0 {
		t.Fatalf("clocks not rewound: k=%v s1=%v", k.Now(), s1.Now())
	}
	mustPanic(t, "used across Kernel.Reset", func() { ev.Fire() })
	mustPanic(t, "used across Kernel.Reset", func() { c.Add(1) })
	// The partition survives and the kernel runs again.
	var ran bool
	s1.Spawn("again", func(p *Proc) { p.Sleep(Nanosecond); ran = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("reused sharded kernel did not run")
	}
}

// TestShardedResetClearsPendingMail: lanes posted before a Run that never
// happened must not leak into the next epoch.
func TestShardedResetClearsPendingMail(t *testing.T) {
	k := New()
	s0 := k.RootShard()
	s1 := k.NewShard()
	k.SetLookahead(Microsecond)
	fired := 0
	s1.PostCall(Microsecond, s0, func() { fired++ })
	k.Reset()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("pre-Reset mail delivered after Reset")
	}
}

// TestShardedFailurePropagation: a panic inside one shard's window aborts
// the whole run with that process's failure, in parallel and sequential
// vehicles alike.
func TestShardedFailurePropagation(t *testing.T) {
	for _, noShard := range []bool{false, true} {
		k := New()
		s1 := k.NewShard()
		k.SetLookahead(Microsecond)
		k.SetNoShard(noShard)
		s1.Spawn("bomber", func(p *Proc) {
			p.Sleep(Nanosecond)
			panic("boom")
		})
		k.Spawn("bystander", func(p *Proc) { p.Sleep(Microsecond) })
		err := k.Run()
		if err == nil || !strings.Contains(err.Error(), "bomber panicked: boom") {
			t.Fatalf("noShard=%v: %v", noShard, err)
		}
	}
}
