package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Kernel is a deterministic discrete-event scheduler. The zero value is not
// usable; create kernels with New.
//
// Pending events live in two structures chosen by timestamp at schedule
// time. Events for the current instant (the dominant case: Event.Fire
// fan-out, counter wakeups, process rendezvous) go to ring, a FIFO ring
// buffer popped in constant time. Events for a future instant go to queue, a
// monomorphic 4-ary min-heap ordered by (time, seq). Because At(now) never
// inserts into the heap and the ring fully drains before the clock advances,
// every ring entry's seq is greater than that of any heap entry at the same
// timestamp, so popping heap-at-now entries before ring entries reproduces
// exactly the global (time, seq) order of a single priority queue.
type Kernel struct {
	now     Time
	queue   eventHeap
	ring    runRing
	running bool

	// procs lists every spawned process; each tracks its own blocked state.
	// blocked counts processes currently waiting on an Event or Counter
	// threshold (not a timed sleep). If all events drain while blocked > 0
	// the simulation is deadlocked.
	procs   []*Proc
	blocked int

	failure error
}

// New returns a kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a broken cost model rather than a recoverable state.
func (k *Kernel) At(t Time, fn func()) {
	if t <= k.now {
		if t < k.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
		}
		k.ring.push(fn)
		return
	}
	k.queue.push(t, fn)
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Run executes events until the queue drains or a process fails. It returns
// an error if a process panicked or if processes remain blocked with no
// pending events (virtual deadlock).
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	for {
		// Heap entries at the current instant predate (in seq order) every
		// ring entry, so they run first; otherwise the FIFO ring drains
		// before the clock may advance to the heap's next timestamp.
		var fn func()
		if n := len(k.queue.s); n > 0 && k.queue.s[0].t <= k.now {
			fn = k.queue.pop()
		} else if !k.ring.empty() {
			fn = k.ring.pop()
		} else if n > 0 {
			k.now = k.queue.s[0].t
			fn = k.queue.pop()
		} else {
			break
		}
		fn()
		if k.failure != nil {
			return k.failure
		}
	}
	if k.blocked > 0 {
		return k.deadlockError()
	}
	return nil
}

func (k *Kernel) deadlockError() error {
	// Sort the report so the error text does not depend on discovery order
	// (determinism tests compare failure output too).
	var blocked []string
	for _, p := range k.procs {
		if what := p.blockedOn(); what != "" {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, what))
		}
	}
	sort.Strings(blocked)
	return fmt.Errorf("sim: deadlock, blocked processes: %s", strings.Join(blocked, " "))
}

// fail records a fatal simulation error (process panic).
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
}

// runRing is a growable FIFO ring buffer of same-instant callbacks. Push and
// pop are a mask and an index increment; growth doubles and relinks the two
// halves so FIFO order is preserved.
type runRing struct {
	buf  []func()
	head int
	tail int // one past the last element; buf is full when len == cap-1 slots used
	n    int
}

func (r *runRing) empty() bool { return r.n == 0 }

func (r *runRing) push(fn func()) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = fn
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *runRing) pop() func() {
	fn := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return fn
}

func (r *runRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	next := make([]func(), size)
	m := copy(next, r.buf[r.head:])
	copy(next[m:], r.buf[:r.head])
	r.buf, r.head, r.tail = next, 0, r.n
}

// scheduled is one future event: its firing time, a global sequence number
// breaking same-time ties FIFO, and the callback.
type scheduled struct {
	t   Time
	seq int64
	fn  func()
}

// eventHeap is a monomorphic 4-ary min-heap of scheduled entries ordered by
// (t, seq). A 4-ary layout halves the tree depth of a binary heap, and the
// concrete element type avoids the interface boxing and indirect calls of
// container/heap: push and pop allocate nothing beyond slice growth.
type eventHeap struct {
	s   []scheduled
	seq int64
}

func (h *eventHeap) push(t Time, fn func()) {
	h.seq++
	h.s = append(h.s, scheduled{t: t, seq: h.seq, fn: fn})
	// Sift up.
	s := h.s
	i := len(s) - 1
	e := s[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s[parent]
		if e.t > p.t || (e.t == p.t && e.seq > p.seq) {
			break
		}
		s[i] = p
		i = parent
	}
	s[i] = e
}

func (h *eventHeap) pop() func() {
	s := h.s
	fn := s[0].fn
	n := len(s) - 1
	e := s[n]
	s[n] = scheduled{} // release the callback for GC
	h.s = s[:n]
	if n == 0 {
		return fn
	}
	// Sift down from the root.
	s = h.s
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		m := s[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			x := s[c]
			if x.t < m.t || (x.t == m.t && x.seq < m.seq) {
				min, m = c, x
			}
		}
		if e.t < m.t || (e.t == m.t && e.seq < m.seq) {
			break
		}
		s[i] = m
		i = min
	}
	s[i] = e
	return fn
}
