package sim

import (
	"fmt"
	"sort"
	"strings"
)

// entry is one schedulable unit, encoded without pointers so the run ring,
// the event heap, and every waiter list are memory the GC never has to scan.
// kind selects the dispatch and idx names the target: a slot in the kernel's
// callback table (eFn) or a process's dense arena index (everything else).
//
// In a waiter list (Event.waiters, Counter.waiters) every kind other than eFn
// identifies a parked process, so Kernel.wake and the batch-wake loops do the
// blocked bookkeeping exactly for those kinds — the same split the old
// (fn, p) pair expressed with p != nil.
type entry struct {
	kind uint8
	idx  uint32
}

// entry kinds. The zero value (eNone) is never scheduled; popping one would
// indicate ring/heap corruption.
const (
	eNone   uint8 = iota
	eFn           // run callback-table slot idx
	eResume       // resume goroutine-backed process idx (returned by next)
	eStep         // advance process idx's fused plan (plan.go)
	eCont         // run process idx's program continuation (program.go)
	eProg         // step process idx's program-mode plan (program.go)
	eAdd          // apply add-table slot idx: a scheduled Counter.Add (AddAt)
)

// Kernel is a deterministic discrete-event scheduler. The zero value is not
// usable; create kernels with New.
//
// Pending events live in two structures chosen by timestamp at schedule
// time. Events for the current instant (the dominant case: Event.Fire
// fan-out, counter wakeups, process rendezvous) go to ring, a FIFO ring
// buffer popped in constant time. Events for a future instant go to queue, a
// monomorphic 4-ary min-heap ordered by (time, seq). Because At(now) never
// inserts into the heap and the ring fully drains before the clock advances,
// every ring entry's seq is greater than that of any heap entry at the same
// timestamp, so popping heap-at-now entries before ring entries reproduces
// exactly the global (time, seq) order of a single priority queue.
//
// Exactly one goroutine executes simulation code at any moment: the holder
// of the virtual-CPU token, passed by unbuffered channel sends. The kernel
// goroutine holds it while popping entries and running callbacks; a process
// holds it while its body runs. A yielding process that can see the next
// runnable process (handoffTarget) passes the token directly — one channel
// rendezvous instead of two — and the kernel goroutine is only woken (via
// sched) when the clock must advance, a callback must run, the run ring is
// empty, or the simulation failed. A token sender must not touch kernel
// state after the send: the receiver owns it from that point on.
type Kernel struct {
	now     Time
	queue   eventHeap
	ring    runRing
	running bool

	// sched returns the virtual CPU to the kernel goroutine. Whichever
	// process ends a direct-handoff chain sends here; Run receives once per
	// process resume it initiated.
	sched chan struct{}

	// noHandoff forces every yield through the kernel goroutine (the
	// pre-handoff two-rendezvous protocol). It exists for the determinism
	// stress tests, which compare event orderings with and without the
	// direct-handoff fast path.
	noHandoff bool

	// noFuse makes plan-attached waits run their steps through the ordinary
	// process primitives instead of fused callbacks (see plan.go) — the
	// reference semantics the determinism stress tests compare against.
	noFuse bool

	// noProgram makes SpawnProgram fall back to goroutine-backed processes
	// (see program.go): the same process bodies run through the blocking
	// primitives instead of inline continuations — the reference mode the
	// determinism stress tests and the CI program-vs-reference bench compare
	// against.
	noProgram bool

	// fused is a process whose plan just completed on an instant step: next()
	// resumes it before popping any further entry, preserving the queue
	// position its unfused slice would have occupied.
	fused *Proc

	// cbs is the callback table: eFn entries name a slot here instead of
	// carrying the func value, keeping queue memory pointer-free. Slots are
	// recycled through cbFree in LIFO order — a deterministic policy, so a
	// reused kernel assigns the same slot numbers as a fresh one.
	cbs    []func()
	cbFree []uint32

	// adds is the scheduled-add table: eAdd entries name a slot here holding
	// a (counter, amount) pair, so a deferred Counter.Add costs no closure.
	// Slots recycle LIFO through addFree, like cbs.
	adds    []addAt
	addFree []uint32

	// procs lists every live process by dense arena index; each tracks its
	// own registry position (Proc.idx) for O(1) removal. blocked counts
	// processes currently waiting on an Event or Counter threshold (not a
	// timed sleep). If all events drain while blocked > 0 the simulation is
	// deadlocked.
	procs   []uint32
	blocked int

	failure error

	// cbPanic holds the value of a callback panic captured on a process
	// goroutine (see handoff); Run re-panics with it so callback panics
	// crash Run exactly as they do when the kernel goroutine runs them.
	cbPanic any

	// pipes registers every pipe created on this kernel so Reset can rewind
	// their reservation state along with the clock.
	pipes []*Pipe

	// epoch counts Resets. Events, counters, and processes are stamped with
	// the epoch they were carved in; using a handle from a previous epoch
	// panics deterministically instead of corrupting the next run (the slab
	// slot may already belong to someone else).
	epoch uint32

	// arena holds the kernel's slab allocator for events, counters, and
	// processes (see arena.go). Everything carved from it lives exactly as
	// long as the kernel — or until Reset rewinds it.
	arena arena
}

// New returns a kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{sched: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetNoProgram toggles the goroutine-backed reference mode for SpawnProgram
// (see program.go). It must be called before any process is spawned; the two
// modes produce bit-identical event orderings, so this exists for the
// determinism stress tests and the program-vs-reference benchmark runs.
func (k *Kernel) SetNoProgram(v bool) { k.noProgram = v }

// Reset returns the kernel to its post-New state while keeping every
// allocation it has accumulated: arena slabs, queue and ring capacity, the
// callback table, grown waiter lists, and the pipes created on it. Pipes
// survive with their identity intact (their reservation state rewinds to
// zero); events, counters, and processes do not — their slab slots will be
// recarved, so handles from before the Reset are poison, and the epoch stamp
// makes using one panic deterministically.
//
// Reset panics if called during Run or while processes are still live: a
// failed run (deadlock, process panic) leaves parked processes behind, and
// reusing such a kernel would replay unrelated state into the next run. Only
// kernels whose last Run completed cleanly are resettable; drop the rest.
func (k *Kernel) Reset() {
	if k.running {
		panic("sim: Reset during Run")
	}
	if len(k.procs) > 0 || k.blocked != 0 {
		panic("sim: Reset with live processes; only a cleanly finished kernel can be reset")
	}
	k.now = 0
	k.queue.s = k.queue.s[:0]
	k.queue.seq = 0
	k.ring.head, k.ring.tail, k.ring.n = 0, 0, 0
	k.fused = nil
	k.failure = nil
	k.cbPanic = nil
	// Callback slots hold closures whose captures would otherwise keep the
	// previous run's garbage alive for the whole next lease.
	clear(k.cbs)
	k.cbs = k.cbs[:0]
	k.cbFree = k.cbFree[:0]
	clear(k.adds)
	k.adds = k.adds[:0]
	k.addFree = k.addFree[:0]
	for _, p := range k.pipes {
		p.free, p.totalBytes, p.busy, p.transfers = 0, 0, 0, 0
	}
	k.arena.reset()
	k.epoch++
}

// newCb stores fn in the callback table and returns its slot. Slots recycle
// LIFO so the mapping from schedule order to slot numbers is a pure function
// of the run, fresh or reused.
func (k *Kernel) newCb(fn func()) uint32 {
	if n := len(k.cbFree); n > 0 {
		i := k.cbFree[n-1]
		k.cbFree = k.cbFree[:n-1]
		k.cbs[i] = fn
		return i
	}
	k.cbs = append(k.cbs, fn)
	return uint32(len(k.cbs) - 1)
}

// runCb runs a callback slot, releasing it first so the table holds no
// reference while (and after) the callback executes.
func (k *Kernel) runCb(i uint32) {
	fn := k.cbs[i]
	k.cbs[i] = nil
	k.cbFree = append(k.cbFree, i)
	fn()
}

// procAt resolves a dense process index.
func (k *Kernel) procAt(i uint32) *Proc { return k.arena.procAt(i) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a broken cost model rather than a recoverable state.
func (k *Kernel) At(t Time, fn func()) {
	if t <= k.now {
		if t < k.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
		}
		k.ring.push(entry{kind: eFn, idx: k.newCb(fn)})
		return
	}
	k.queue.push(t, entry{kind: eFn, idx: k.newCb(fn)})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// addAt is one scheduled counter add: the pointer-lean form of
// At(t, func() { c.Add(n) }), stored in the kernel's add table so the hot
// DMA-completion paths schedule no closures.
type addAt struct {
	c *Counter
	n int64
}

// AddAt schedules c.Add(n) at absolute virtual time t, occupying exactly the
// (time, seq) position the equivalent At callback would. Like At, scheduling
// in the past panics; like every counter operation, a handle from before a
// Reset panics at registration.
//
//bgplint:hot
func (k *Kernel) AddAt(t Time, c *Counter, n int64) {
	c.check()
	var i uint32
	if m := len(k.addFree); m > 0 {
		i = k.addFree[m-1]
		k.addFree = k.addFree[:m-1]
		k.adds[i] = addAt{c, n}
	} else {
		k.adds = append(k.adds, addAt{c, n})
		i = uint32(len(k.adds) - 1)
	}
	if t <= k.now {
		if t < k.now {
			panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
		}
		k.ring.push(entry{kind: eAdd, idx: i})
		return
	}
	k.queue.push(t, entry{kind: eAdd, idx: i})
}

// runAdd applies a scheduled add, releasing its table slot first (mirroring
// runCb's discipline).
//
//bgplint:hot
func (k *Kernel) runAdd(i uint32) {
	a := k.adds[i]
	k.adds[i] = addAt{}
	k.addFree = append(k.addFree, i)
	a.c.Add(a.n)
}

// schedProc schedules p's next resume at absolute time t (>= now; timed
// sleeps clamp negative durations before calling).
//
//bgplint:hot
func (k *Kernel) schedProc(t Time, p *Proc) {
	if t <= k.now {
		k.ring.push(entry{kind: eResume, idx: p.self})
		return
	}
	k.queue.push(t, entry{kind: eResume, idx: p.self})
}

// schedStep schedules the continuation of p's plan (see plan.go) at absolute
// time t, using the same now-vs-future placement rule as schedProc so the
// entry lands exactly where the process's own resume would have.
//
//bgplint:hot
func (k *Kernel) schedStep(t Time, p *Proc) {
	if t <= k.now {
		k.ring.push(entry{kind: eStep, idx: p.self})
		return
	}
	k.queue.push(t, entry{kind: eStep, idx: p.self})
}

// wake makes a released waiter runnable at the current instant. For process
// waiters the blocked bookkeeping happens here, eagerly, so the queued entry
// is a bare resume that any token holder may execute; the caller (Event.Fire,
// Counter.release) always holds the token.
//
//bgplint:hot
func (k *Kernel) wake(w entry) {
	if w.kind != eFn {
		p := k.procAt(w.idx)
		k.blocked--
		p.waitEv, p.waitC = nil, nil
	}
	k.ring.push(w)
}

// next drives the scheduler under the caller's virtual-CPU token: it pops
// entries in exact global (time, seq) order, runs callbacks inline, advances
// the clock when the current instant is exhausted, and returns the first
// process resume it reaches. nil means no runnable work remains (queues
// drained, or the simulation failed). Both the kernel goroutine (Run) and a
// yielding process (handoff) use this one decision sequence, so who holds
// the token never changes what executes next.
//
//bgplint:hot
func (k *Kernel) next() *Proc {
	for k.failure == nil {
		// Heap entries at the current instant predate (in seq order) every
		// ring entry, so they run first; otherwise the FIFO ring drains
		// before the clock may advance to the heap's next timestamp.
		var e entry
		if n := len(k.queue.s); n > 0 && k.queue.s[0].t <= k.now {
			e = k.queue.pop()
		} else if !k.ring.empty() {
			e = k.ring.pop()
		} else if len(k.queue.s) > 0 {
			k.now = k.queue.s[0].t
			e = k.queue.pop()
		} else {
			break
		}
		switch e.kind {
		case eResume:
			return k.procAt(e.idx)
		case eFn:
			k.runCb(e.idx)
		case eStep:
			k.procAt(e.idx).advance()
		case eCont:
			k.procAt(e.idx).runCont()
		case eProg:
			k.procAt(e.idx).runProg()
		case eAdd:
			k.runAdd(e.idx)
		}
		// A callback that completed a process's plan resumes that process
		// immediately: its slice belongs at this exact queue position.
		if p := k.fused; p != nil {
			k.fused = nil
			return p
		}
	}
	return nil
}

// handoff is next() as invoked by a process (or an exiting pool worker)
// still holding the token: one rendezvous hands the CPU straight to the
// returned process, and the kernel goroutine stays parked. Disabled in
// noHandoff mode. A callback panic is captured here rather than allowed to
// unwind simulated process code (whose defers must not run for an unrelated
// callback's bug): the simulation fails, the token returns to the kernel,
// and Run re-panics with the original value.
func (k *Kernel) handoff() (q *Proc) {
	if k.noHandoff || k.failure != nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			k.cbPanic = r
			k.fail(fmt.Errorf("sim: callback panicked: %v", r))
			q = nil
		}
	}()
	return k.next()
}

// abort surfaces a recorded failure: callback panics re-panic (they must
// crash Run, as they do when the kernel goroutine runs the callback), and
// process panics return as errors.
func (k *Kernel) abort() error {
	if r := k.cbPanic; r != nil {
		k.cbPanic = nil
		panic(r)
	}
	return k.failure
}

// Run executes events until the queue drains or a process fails. It returns
// an error if a process panicked or if processes remain blocked with no
// pending events (virtual deadlock).
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	for {
		p := k.next()
		if k.failure != nil {
			return k.abort()
		}
		if p == nil {
			break
		}
		// Hand the virtual CPU to the process and park until some process —
		// not necessarily this one, if the token travelled a direct-handoff
		// chain — returns it.
		p.gate <- struct{}{}
		<-k.sched
		if k.failure != nil {
			return k.abort()
		}
	}
	if k.blocked > 0 {
		return k.deadlockError()
	}
	return nil
}

func (k *Kernel) deadlockError() error {
	// Sort the report so the error text does not depend on discovery order
	// (determinism tests compare failure output too).
	var blocked []string
	for _, pi := range k.procs {
		p := k.procAt(pi)
		if what := p.blockedOn(); what != "" {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, what))
		}
	}
	sort.Strings(blocked)
	return fmt.Errorf("sim: deadlock, blocked processes: %s", strings.Join(blocked, " "))
}

// fail records a fatal simulation error (process panic).
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
}

// runRing is a growable FIFO ring buffer of same-instant entries. Push and
// pop are a mask and an index increment; growth doubles and relinks the two
// halves so FIFO order is preserved. Entries are pointer-free, so popped
// slots need no clearing and the buffer is invisible to the GC scanner.
type runRing struct {
	buf  []entry
	head int
	tail int // one past the last element; buf is full when len == cap-1 slots used
	n    int
}

func (r *runRing) empty() bool { return r.n == 0 }

//bgplint:hot
func (r *runRing) push(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = e
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

// pushBatch appends a slice of entries in order with a single capacity check
// and at most two copies (wraparound). Event fan-out and multi-waiter counter
// crossings use it to wake N parties as one batch instead of N pushes.
//
//bgplint:hot
func (r *runRing) pushBatch(es []entry) {
	for r.n+len(es) > len(r.buf) {
		r.grow()
	}
	m := copy(r.buf[r.tail:], es)
	copy(r.buf, es[m:])
	r.tail = (r.tail + len(es)) & (len(r.buf) - 1)
	r.n += len(es)
}

//bgplint:hot
func (r *runRing) pop() entry {
	e := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

func (r *runRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	next := make([]entry, size)
	m := copy(next, r.buf[r.head:])
	copy(next[m:], r.buf[:r.head])
	r.buf, r.head, r.tail = next, 0, r.n
}

// scheduled is one future event: its firing time, a global sequence number
// breaking same-time ties FIFO, and the entry to run. Fully pointer-free: a
// megabyte-scale heap of these contributes nothing to a GC mark phase.
type scheduled struct {
	t   Time
	seq int64
	e   entry
}

// eventHeap is a monomorphic 4-ary min-heap of scheduled entries ordered by
// (t, seq). A 4-ary layout halves the tree depth of a binary heap, and the
// concrete element type avoids the interface boxing and indirect calls of
// container/heap: push and pop allocate nothing beyond slice growth.
type eventHeap struct {
	s   []scheduled
	seq int64
}

//bgplint:hot
func (h *eventHeap) push(t Time, ent entry) {
	h.seq++
	h.s = append(h.s, scheduled{t: t, seq: h.seq, e: ent})
	// Sift up.
	s := h.s
	i := len(s) - 1
	e := s[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s[parent]
		if e.t > p.t || (e.t == p.t && e.seq > p.seq) {
			break
		}
		s[i] = p
		i = parent
	}
	s[i] = e
}

//bgplint:hot
func (h *eventHeap) pop() entry {
	s := h.s
	top := s[0].e
	n := len(s) - 1
	e := s[n]
	h.s = s[:n]
	if n == 0 {
		return top
	}
	// Sift down from the root.
	s = h.s
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		m := s[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			x := s[c]
			if x.t < m.t || (x.t == m.t && x.seq < m.seq) {
				min, m = c, x
			}
		}
		if e.t < m.t || (e.t == m.t && e.seq < m.seq) {
			break
		}
		s[i] = m
		i = min
	}
	s[i] = e
	return top
}
