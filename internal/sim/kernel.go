package sim

import (
	"fmt"
	"sort"
	"strings"
)

// entry is one schedulable unit, encoded without pointers so the run ring,
// the event heap, and every waiter list are memory the GC never has to scan.
// kind selects the dispatch and idx names the target: a slot in the shard's
// callback table (eFn), hook table (eHook), add table (eAdd), or a process's
// dense arena index (everything else).
//
// In a waiter list (Event.waiters, Counter.waiters) every kind other than eFn
// identifies a parked process, so Shard.wake and the batch-wake loops do the
// blocked bookkeeping exactly for those kinds — the same split the old
// (fn, p) pair expressed with p != nil.
type entry struct {
	kind uint8
	idx  uint32
}

// entry kinds. The zero value (eNone) is never scheduled; popping one would
// indicate ring/heap corruption.
const (
	eNone   uint8 = iota
	eFn           // run callback-table slot idx
	eResume       // resume goroutine-backed process idx (returned by next)
	eStep         // advance process idx's fused plan (plan.go)
	eCont         // run process idx's program continuation (program.go)
	eProg         // step process idx's program-mode plan (program.go)
	eAdd          // apply add-table slot idx: a scheduled Counter.Add (AddAt)
	eHook         // run hook-table slot idx: a delivered cross-shard PostHook
)

// Kernel is a deterministic discrete-event scheduler. The zero value is not
// usable; create kernels with New.
//
// All scheduling state lives in shards (see shard.go). A fresh kernel has
// exactly one — the root shard, embedded by value so the serial path pays no
// extra indirection — and every Kernel-level scheduling method delegates to
// it. NewShard/NewHubShard partition the simulation for parallel conservative
// epochs (see epoch.go); with more than one shard Run becomes the epoch
// controller instead of the single-queue loop.
type Kernel struct {
	s0     Shard
	shards []*Shard

	// lookahead is the conservative-PDES window width: the minimum virtual
	// latency of any cross-shard interaction. Cross-shard posts destined for
	// a peer shard must land at least this far in the future (see
	// Shard.postTo); posts into a hub shard only need t >= now, because hubs
	// run strictly after the peer phase within each window.
	lookahead Time

	running bool

	// noHandoff forces every yield through the shard's scheduler loop (the
	// pre-handoff two-rendezvous protocol). It exists for the determinism
	// stress tests, which compare event orderings with and without the
	// direct-handoff fast path.
	noHandoff bool

	// noFuse makes plan-attached waits run their steps through the ordinary
	// process primitives instead of fused callbacks (see plan.go) — the
	// reference semantics the determinism stress tests compare against.
	noFuse bool

	// noProgram makes SpawnProgram fall back to goroutine-backed processes
	// (see program.go): the same process bodies run through the blocking
	// primitives instead of inline continuations — the reference mode the
	// determinism stress tests and the CI program-vs-reference bench compare
	// against.
	noProgram bool

	// noShard runs a sharded kernel's epochs sequentially on the calling
	// goroutine — same windows, same mailbox merges, same committed order,
	// no worker goroutines. It is the reference vehicle the determinism
	// stress tests compare the parallel execution against, mirroring
	// noHandoff/noFuse/noProgram.
	noShard bool

	// noExtrap disables steady-state iteration extrapolation (steady.go):
	// Steady.Capture refuses on a noExtrap kernel, so every measure-loop
	// iteration executes. The full-execution reference vehicle, mirroring
	// the flags above.
	noExtrap bool

	// pipes registers every pipe created on this kernel so Reset can rewind
	// their reservation state along with the clock.
	pipes []*Pipe

	// epoch counts Resets. Events, counters, and processes are stamped with
	// the epoch they were carved in; using a handle from a previous epoch
	// panics deterministically instead of corrupting the next run (the slab
	// slot may already belong to someone else).
	epoch uint32

	// mergeBuf is the epoch controller's reusable mailbox merge scratch.
	mergeBuf []xmsg
}

// New returns a kernel with the clock at zero and a single root shard.
func New() *Kernel {
	k := &Kernel{}
	k.s0.init(k, 0, false)
	k.shards = append(k.shards, &k.s0)
	return k
}

// Now returns the current virtual time: the root shard's clock, or — on a
// sharded kernel, where shards advance independently inside a window — the
// maximum over all shards (the horizon every committed event is behind).
func (k *Kernel) Now() Time {
	if len(k.shards) == 1 {
		return k.s0.now
	}
	var t Time
	for _, sh := range k.shards {
		if sh.now > t {
			t = sh.now
		}
	}
	return t
}

// SetNoProgram toggles the goroutine-backed reference mode for SpawnProgram
// (see program.go). It must be called before any process is spawned; the two
// modes produce bit-identical event orderings, so this exists for the
// determinism stress tests and the program-vs-reference benchmark runs.
func (k *Kernel) SetNoProgram(v bool) { k.noProgram = v }

// SetNoShard toggles the sequential-epoch reference vehicle for sharded
// kernels (see epoch.go). It may be set any time before Run; both vehicles
// execute the identical window/mailbox algorithm, so every trace, failure,
// and deadlock report is bit-identical between them.
func (k *Kernel) SetNoShard(v bool) { k.noShard = v }

// SetNoExtrap toggles the full-execution reference vehicle for the steady-
// state extrapolation detector (steady.go): captures on a noExtrap kernel
// refuse, so every iteration executes. Extrapolated and full runs are
// bit-identical by construction; the flag exists for the equivalence tests
// and the -noextrap benchmark runs.
func (k *Kernel) SetNoExtrap(v bool) { k.noExtrap = v }

// NoExtrap reports whether steady-state extrapolation is disabled.
func (k *Kernel) NoExtrap() bool { return k.noExtrap }

// SetLookahead declares the conservative window width for sharded runs: no
// cross-shard interaction may take effect sooner than this after it is
// posted. The machine layer computes it as the minimum cross-node latency of
// the networks in play. Sharded Run panics without a positive lookahead.
func (k *Kernel) SetLookahead(d Time) {
	if d <= 0 {
		panic("sim: non-positive lookahead")
	}
	k.lookahead = d
}

// Lookahead returns the configured conservative window width.
func (k *Kernel) Lookahead() Time { return k.lookahead }

// Sharded reports whether the kernel has more than one shard.
func (k *Kernel) Sharded() bool { return len(k.shards) > 1 }

// ShardCount returns the number of shards (1 for a fresh kernel).
func (k *Kernel) ShardCount() int { return len(k.shards) }

// RootShard returns the kernel's always-present shard 0, the one every
// Kernel-level scheduling method operates on.
func (k *Kernel) RootShard() *Shard { return &k.s0 }

// Reset returns the kernel to its post-New state while keeping every
// allocation it has accumulated: arena slabs, queue and ring capacity, the
// callback tables, grown waiter lists, the shard partition, and the pipes
// created on it. Pipes survive with their identity intact (their reservation
// state rewinds to zero); events, counters, and processes do not — their
// slab slots will be recarved, so handles from before the Reset are poison,
// and the epoch stamp makes using one panic deterministically.
//
// Reset panics if called during Run or while processes are still live: a
// failed run (deadlock, process panic) leaves parked processes behind, and
// reusing such a kernel would replay unrelated state into the next run. Only
// kernels whose last Run completed cleanly are resettable; drop the rest.
func (k *Kernel) Reset() {
	if k.running {
		panic("sim: Reset during Run")
	}
	for _, sh := range k.shards {
		if len(sh.procs) > 0 || sh.blocked != 0 {
			panic("sim: Reset with live processes; only a cleanly finished kernel can be reset")
		}
	}
	for _, sh := range k.shards {
		sh.reset()
	}
	for _, p := range k.pipes {
		p.free, p.totalBytes, p.busy, p.transfers = 0, 0, 0, 0
	}
	k.epoch++
}

// At schedules fn to run on the root shard at absolute virtual time t.
// Scheduling in the past panics: it indicates a broken cost model rather
// than a recoverable state. Code running inside a peer shard of a sharded
// kernel must use Shard.At (or the object-routed AddAt) instead.
func (k *Kernel) At(t Time, fn func()) { k.s0.At(t, fn) }

// After schedules fn to run d after the root shard's current time.
func (k *Kernel) After(d Time, fn func()) { k.s0.After(d, fn) }

// addAt is one scheduled counter add: the pointer-lean form of
// At(t, func() { c.Add(n) }), stored in the shard's add table so the hot
// DMA-completion paths schedule no closures.
type addAt struct {
	c *Counter
	n int64
}

// AddAt schedules c.Add(n) at absolute virtual time t, occupying exactly the
// (time, seq) position the equivalent At callback would. The entry lands on
// the counter's own shard, which on a sharded kernel must also be the
// calling shard; cross-shard adds go through Shard.PostAdd. Like At,
// scheduling in the past panics; like every counter operation, a handle from
// before a Reset panics at registration.
//
//bgplint:hot
func (k *Kernel) AddAt(t Time, c *Counter, n int64) { c.sh.AddAt(t, c, n) }

// Run executes events until the queues drain or a process fails. It returns
// an error if a process panicked or if processes remain blocked with no
// pending events (virtual deadlock). On a sharded kernel Run is the
// conservative epoch controller (epoch.go).
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	if len(k.shards) > 1 {
		return k.runSharded()
	}
	s := &k.s0
	s.runWindow(maxWindow)
	if err := k.checkFailure(); err != nil {
		return err
	}
	if s.blocked > 0 {
		return k.deadlockError()
	}
	return nil
}

// checkFailure surfaces the first recorded failure in shard order: callback
// panics re-panic (they must crash Run, as they do when the scheduler loop
// runs the callback), and process panics return as errors. Shard order makes
// the choice deterministic when a parallel phase fails in several shards at
// once.
func (k *Kernel) checkFailure() error {
	for _, sh := range k.shards {
		if sh.failure != nil {
			if r := sh.cbPanic; r != nil {
				sh.cbPanic = nil
				panic(r)
			}
			return sh.failure
		}
	}
	return nil
}

func (k *Kernel) deadlockError() error {
	// Sort the report so the error text depends neither on discovery order
	// nor on the shard partition (determinism tests compare failure output
	// across all kernel modes, sharded included).
	var blocked []string
	for _, sh := range k.shards {
		for _, pi := range sh.procs {
			p := sh.procAt(pi)
			if what := p.blockedOn(); what != "" {
				blocked = append(blocked, fmt.Sprintf("%s(%s)", p.Name(), what))
			}
		}
	}
	sort.Strings(blocked)
	return fmt.Errorf("sim: deadlock, blocked processes: %s", strings.Join(blocked, " "))
}

// runRing is a growable FIFO ring buffer of same-instant entries. Push and
// pop are a mask and an index increment; growth doubles and relinks the two
// halves so FIFO order is preserved. Entries are pointer-free, so popped
// slots need no clearing and the buffer is invisible to the GC scanner.
type runRing struct {
	buf  []entry
	head int
	tail int // one past the last element; buf is full when len == cap-1 slots used
	n    int
}

func (r *runRing) empty() bool { return r.n == 0 }

//bgplint:hot
func (r *runRing) push(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = e
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

// pushBatch appends a slice of entries in order with a single capacity check
// and at most two copies (wraparound). Event fan-out and multi-waiter counter
// crossings use it to wake N parties as one batch instead of N pushes.
//
//bgplint:hot
func (r *runRing) pushBatch(es []entry) {
	for r.n+len(es) > len(r.buf) {
		r.grow()
	}
	m := copy(r.buf[r.tail:], es)
	copy(r.buf, es[m:])
	r.tail = (r.tail + len(es)) & (len(r.buf) - 1)
	r.n += len(es)
}

//bgplint:hot
func (r *runRing) pop() entry {
	e := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

func (r *runRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 64
	}
	next := make([]entry, size)
	m := copy(next, r.buf[r.head:])
	copy(next[m:], r.buf[:r.head])
	r.buf, r.head, r.tail = next, 0, r.n
}

// scheduled is one future timestamp in the event heap: its firing time, the
// sequence number of the first entry batched at that node (the same-time
// FIFO tiebreak), and the index of the batch holding the entries themselves.
// Pointer-free: a megabyte-scale heap of these contributes nothing to a GC
// mark phase (the batch table's slice spines are the only headers scanned).
type scheduled struct {
	t   Time
	seq int64
	bi  int32
}

// eventHeap is a monomorphic 4-ary min-heap of entry batches ordered by
// (t, seq). A 4-ary layout halves the tree depth of a binary heap, and the
// concrete element type avoids the interface boxing and indirect calls of
// container/heap.
//
// Entries scheduled at the same instant are batched into one heap node:
// collective phases wake whole tree levels at one timestamp, so roughly half
// of all pushes in a full sweep land at the time of an immediately preceding
// push. Batching turns those pushes into a plain append (no sift-up) and —
// the real win — pays the pop's full-depth sift-down once per distinct
// timestamp instead of once per entry, on a heap with proportionally fewer
// nodes.
//
// The batch a push may join is tracked by a two-slot (time, batch) cache of
// the most recently created batches. The cache only ever routes a push to
// the *newest* batch at its timestamp: a hit appends (monotonically growing
// seq), and a miss creates a fresh batch that supersedes any older one at
// that time, whose node then drains first by (t, firstSeq) order. Batch
// membership therefore never reorders entries — global execution order stays
// exactly the per-shard (t, seq) FIFO of the unbatched heap — and the cache
// influences only where entries are stored, never when they run.
type eventHeap struct {
	s   []scheduled
	seq int64

	// pos is the drain cursor into the root's batch: pop returns
	// buckets[s[0].bi][pos] and removes the root node only once its batch is
	// exhausted. A push may append to the root's batch mid-drain (it holds
	// the newest seq and there is no younger batch at that time while the
	// cache points there), which simply extends the current drain.
	pos int

	// buckets is the batch table; bfree recycles slots LIFO so a reused
	// kernel assigns the same slot numbers as a fresh one.
	buckets [][]entry
	bfree   []int32

	// The batch cache: up to two distinct (time, batch) pairs, LRU-evicted.
	// Two slots cover the ping-pong of a transfer-completion time interleaved
	// with same-instant wakeups that a single slot would thrash on.
	cacheT   [2]Time
	cacheB   [2]int32
	cacheOK  [2]bool
	cacheLRU uint8
}

//bgplint:hot
func (h *eventHeap) push(t Time, ent entry) {
	h.seq++
	if h.cacheOK[0] && h.cacheT[0] == t {
		bi := h.cacheB[0]
		h.buckets[bi] = append(h.buckets[bi], ent)
		h.cacheLRU = 1
		return
	}
	if h.cacheOK[1] && h.cacheT[1] == t {
		bi := h.cacheB[1]
		h.buckets[bi] = append(h.buckets[bi], ent)
		h.cacheLRU = 0
		return
	}
	// New batch at t.
	var bi int32
	if n := len(h.bfree); n > 0 {
		bi = h.bfree[n-1]
		h.bfree = h.bfree[:n-1]
		h.buckets[bi] = append(h.buckets[bi][:0], ent)
	} else {
		bi = int32(len(h.buckets))
		//bgplint:allow hotalloc -- one-time bucket-table growth; slots recycle through bfree across Reset, so a warmed kernel never reaches this branch
		b := make([]entry, 1, 4)
		b[0] = ent
		h.buckets = append(h.buckets, b)
	}
	v := h.cacheLRU
	h.cacheT[v], h.cacheB[v], h.cacheOK[v] = t, bi, true
	h.cacheLRU = 1 - v
	h.s = append(h.s, scheduled{t: t, seq: h.seq, bi: bi})
	// Sift up.
	s := h.s
	i := len(s) - 1
	e := s[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := s[parent]
		if e.t > p.t || (e.t == p.t && e.seq > p.seq) {
			break
		}
		s[i] = p
		i = parent
	}
	s[i] = e
}

//bgplint:hot
func (h *eventHeap) pop() entry {
	s := h.s
	bi := s[0].bi
	b := h.buckets[bi]
	ent := b[h.pos]
	if h.pos++; h.pos < len(b) {
		return ent
	}
	// Batch exhausted: recycle its slot (dropping it from the cache) and
	// remove the root node.
	h.pos = 0
	h.bfree = append(h.bfree, bi)
	if h.cacheOK[0] && h.cacheB[0] == bi {
		h.cacheOK[0] = false
	}
	if h.cacheOK[1] && h.cacheB[1] == bi {
		h.cacheOK[1] = false
	}
	n := len(s) - 1
	e := s[n]
	h.s = s[:n]
	if n == 0 {
		return ent
	}
	// Sift down from the root.
	s = h.s
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		m := s[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			x := s[c]
			if x.t < m.t || (x.t == m.t && x.seq < m.seq) {
				min, m = c, x
			}
		}
		if e.t < m.t || (e.t == m.t && e.seq < m.seq) {
			break
		}
		s[i] = m
		i = min
	}
	s[i] = e
	return ent
}

// reset rewinds the heap for kernel reuse, rebuilding the batch freelist so
// a reused heap assigns batch slots in the same order a fresh one would.
func (h *eventHeap) reset() {
	h.s = h.s[:0]
	h.seq = 0
	h.pos = 0
	h.cacheOK[0], h.cacheOK[1] = false, false
	h.cacheLRU = 0
	h.bfree = h.bfree[:0]
	for i := len(h.buckets) - 1; i >= 0; i-- {
		h.buckets[i] = h.buckets[i][:0]
		h.bfree = append(h.bfree, int32(i))
	}
}

// shiftAll moves every pending node (and the batch cache's timestamps) by d:
// the uniform time shift of a steady-state Forward. Relative order is
// untouched.
func (h *eventHeap) shiftAll(d Time) {
	s := h.s
	for i := range s {
		s[i].t += d
	}
	if h.cacheOK[0] {
		h.cacheT[0] += d
	}
	if h.cacheOK[1] {
		h.cacheT[1] += d
	}
}
