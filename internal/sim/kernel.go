package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Kernel is a deterministic discrete-event scheduler. The zero value is not
// usable; create kernels with New.
type Kernel struct {
	now     Time
	seq     int64
	queue   eventHeap
	running bool

	// liveProcs counts spawned processes that have not finished. blocked
	// counts processes currently waiting on an Event or Counter threshold
	// (not a timed sleep). If the event queue drains while blocked > 0 the
	// simulation is deadlocked.
	liveProcs int
	blocked   map[*Proc]string

	failure error
}

// New returns a kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{blocked: make(map[*Proc]string)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a broken cost model rather than a recoverable state.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, scheduled{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Run executes events until the queue drains or a process fails. It returns
// an error if a process panicked or if processes remain blocked with no
// pending events (virtual deadlock).
func (k *Kernel) Run() error {
	if k.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(scheduled)
		k.now = ev.t
		ev.fn()
		if k.failure != nil {
			return k.failure
		}
	}
	if len(k.blocked) > 0 {
		return k.deadlockError()
	}
	return nil
}

func (k *Kernel) deadlockError() error {
	// Sort the report so the error text does not depend on map iteration
	// order (determinism tests compare failure output too).
	blocked := make([]string, 0, len(k.blocked))
	for p, what := range k.blocked {
		blocked = append(blocked, fmt.Sprintf("%s(%s)", p.name, what))
	}
	sort.Strings(blocked)
	return fmt.Errorf("sim: deadlock, blocked processes: %s", strings.Join(blocked, " "))
}

// fail records a fatal simulation error (process panic).
func (k *Kernel) fail(err error) {
	if k.failure == nil {
		k.failure = err
	}
}

type scheduled struct {
	t   Time
	seq int64
	fn  func()
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduled)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
