// Per-kernel slab allocation. A figure cell allocates one Event per tree
// chunk per rank, one Counter per protocol stage per rank, and one Proc per
// rank — hundreds of thousands of small objects whose lifetimes are all
// exactly the kernel's. Allocating them individually makes the allocator and
// the GC scan hot on the sweep path; carving them out of kernel-owned slabs
// makes allocation a slice index and lets the whole population die with the
// kernel in one sweep (nothing is freed piecemeal; dropping the Kernel drops
// every slab).
//
// Slabs are safe without locking for the same reason all kernel state is:
// NewEvent/NewCounter/Spawn only run under the virtual-CPU token (or before
// Run starts), so a kernel's arena is single-threaded even when multiple
// kernels run on parallel OS threads.
package sim

// slab sizes: large enough to amortize the make, small enough that a tiny
// unit-test kernel does not waste visible memory.
const (
	eventSlabSize   = 512
	counterSlabSize = 256
	procSlabSize    = 256
)

// arena holds the kernel's current partially-consumed slabs plus the
// reusable wake batch buffer (see Counter.release).
type arena struct {
	events   []Event
	counters []Counter
	procs    []Proc
	wakeBuf  []entry
}

func (a *arena) newEvent() *Event {
	if len(a.events) == 0 {
		a.events = make([]Event, eventSlabSize)
	}
	e := &a.events[0]
	a.events = a.events[1:]
	return e
}

func (a *arena) newCounter() *Counter {
	if len(a.counters) == 0 {
		a.counters = make([]Counter, counterSlabSize)
	}
	c := &a.counters[0]
	a.counters = a.counters[1:]
	return c
}

func (a *arena) newProc() *Proc {
	if len(a.procs) == 0 {
		a.procs = make([]Proc, procSlabSize)
	}
	p := &a.procs[0]
	a.procs = a.procs[1:]
	return p
}
