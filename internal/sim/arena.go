// Per-kernel slab allocation. A figure cell allocates one Event per tree
// chunk per rank, one Counter per protocol stage per rank, and one Proc per
// rank — hundreds of thousands of small objects whose lifetimes are all
// exactly the kernel's. Allocating them individually makes the allocator and
// the GC scan hot on the sweep path; carving them out of kernel-owned slabs
// makes allocation a slice index and lets the whole population die with the
// kernel in one sweep (nothing is freed piecemeal; dropping the Kernel drops
// every slab).
//
// Slabs are retained, not consumed: the arena keeps every slab it has ever
// made and tracks only a high-water count per kind. Two things depend on
// that. First, Kernel.Reset rewinds the counts to zero and the next run
// re-carves the same memory — a reused world allocates nothing on the carve
// path. Second, an object's position is stable for the kernel's lifetime, so
// a Proc is addressable by its dense uint32 index (slab number in the high
// bits, slot in the low bits) and the scheduler's queue entries can reference
// processes without holding pointers the GC would have to trace (see entry in
// kernel.go).
//
// Constructors must fully reinitialize every field of a carved object: after
// a Reset the slot still holds the previous run's state.
//
// Slabs are safe without locking for the same reason all kernel state is:
// NewEvent/NewCounter/Spawn only run under the virtual-CPU token (or before
// Run starts), so a kernel's arena is single-threaded even when multiple
// kernels run on parallel OS threads.
package sim

// slab sizes: large enough to amortize the make, small enough that a tiny
// unit-test kernel does not waste visible memory. Proc slabs are sized by the
// shift because proc indices pack (slab, slot) into a uint32.
const (
	eventSlabSize   = 512
	counterSlabSize = 256

	procSlabShift = 8
	procSlabSize  = 1 << procSlabShift
	procSlotMask  = procSlabSize - 1
)

// arena holds the kernel's slabs plus the reusable wake batch buffer (see
// Counter.release). nEvents/nCounters/nProcs count the objects carved since
// the last reset; the corresponding slab slices only ever grow.
type arena struct {
	events    [][]Event
	nEvents   int
	counters  [][]Counter
	nCounters int
	procs     [][]Proc
	nProcs    int
	wakeBuf   []entry
}

// reset rewinds the carve counts so the next run reuses the same slabs. The
// stale contents are harmless: constructors reinitialize every field, and
// anything a stale slot still references belongs to this same kernel's object
// graph (which stays live regardless).
func (a *arena) reset() {
	a.nEvents, a.nCounters, a.nProcs = 0, 0, 0
}

func (a *arena) newEvent() *Event {
	slab, slot := a.nEvents/eventSlabSize, a.nEvents%eventSlabSize
	if slab == len(a.events) {
		a.events = append(a.events, make([]Event, eventSlabSize))
	}
	a.nEvents++
	return &a.events[slab][slot]
}

func (a *arena) newCounter() *Counter {
	slab, slot := a.nCounters/counterSlabSize, a.nCounters%counterSlabSize
	if slab == len(a.counters) {
		a.counters = append(a.counters, make([]Counter, counterSlabSize))
	}
	a.nCounters++
	return &a.counters[slab][slot]
}

// newProc carves the next process slot and returns it with its dense index
// (the value of Proc.self and of every queue entry that references it).
func (a *arena) newProc() (*Proc, uint32) {
	self := uint32(a.nProcs)
	slab, slot := a.nProcs>>procSlabShift, a.nProcs&procSlotMask
	if slab == len(a.procs) {
		a.procs = append(a.procs, make([]Proc, procSlabSize))
	}
	a.nProcs++
	return &a.procs[slab][slot], self
}

// procAt resolves a dense process index to its slab slot.
func (a *arena) procAt(i uint32) *Proc {
	return &a.procs[i>>procSlabShift][i&procSlotMask]
}
