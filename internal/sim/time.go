package sim

import "fmt"

// Time is a virtual-time instant or duration in picoseconds. Picosecond
// resolution keeps sub-nanosecond costs (an 850 MHz cycle is 1176 ps) exact
// while still representing over 100 days of virtual time in an int64.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < 10*Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < 10*Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < 10*Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// Microseconds converts a duration in microseconds to Time.
func Microseconds(us float64) Time { return Time(us * float64(Microsecond)) }

// Nanoseconds converts a duration in nanoseconds to Time.
func Nanoseconds(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// Seconds converts a duration in seconds to Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// TransferTime returns the time to move n bytes at rate bytes/second.
// A non-positive rate panics: it would mean an infinitely slow resource and
// always indicates a configuration bug.
func TransferTime(n int, bytesPerSecond float64) Time {
	if bytesPerSecond <= 0 {
		panic(fmt.Sprintf("sim: non-positive transfer rate %v", bytesPerSecond))
	}
	if n <= 0 {
		return 0
	}
	return Time(float64(n) / bytesPerSecond * float64(Second))
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
