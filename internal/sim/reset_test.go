package sim

import (
	"fmt"
	"strings"
	"testing"
)

// expectPanic runs fn and requires it to panic with a message containing
// want.
func expectPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

// TestResetReplaysIdentically is the reuse half of the determinism
// guarantee: the stress workload replayed on a Reset kernel must produce a
// trace bit-identical to the fresh kernel's, in every execution mode. Two
// reuses per mode also cover reuse-of-a-reuse.
func TestResetReplaysIdentically(t *testing.T) {
	const seed = 17
	for _, mode := range stressModes {
		k := New()
		fresh := stressTraceOn(t, seed, mode, k)
		if len(fresh) == 0 {
			t.Fatalf("%s: empty trace", mode.name)
		}
		for reuse := 1; reuse <= 2; reuse++ {
			k.Reset()
			got := stressTraceOn(t, seed, mode, k)
			if len(got) != len(fresh) {
				t.Fatalf("%s reuse %d: %d records, fresh has %d",
					mode.name, reuse, len(got), len(fresh))
			}
			for i := range fresh {
				if got[i] != fresh[i] {
					t.Fatalf("%s reuse %d diverges from fresh at record %d: %+v vs %+v",
						mode.name, reuse, i, got[i], fresh[i])
				}
			}
		}
	}
}

// TestResetDeadlockReportMatchesFresh checks the failure surface survives
// reuse too: a deadlock on a reused kernel names the same processes, waits,
// and times as on a fresh one.
func TestResetDeadlockReportMatchesFresh(t *testing.T) {
	deadlock := func(k *Kernel) error {
		ev := k.NewEvent("missing")
		c := k.NewCounter("starved")
		k.Spawn("waiter.ev", func(p *Proc) {
			p.Sleep(Nanosecond)
			p.Wait(ev)
		})
		k.Spawn("waiter.ge", func(p *Proc) { p.WaitGE(c, 3) })
		k.SpawnProgram("waiter.prog", func(p *Proc) {
			p.WaitThen(ev, func() { t.Error("waiter.prog resumed") })
		})
		return k.Run()
	}
	fresh := New()
	base := deadlock(fresh)
	if base == nil {
		t.Fatal("expected deadlock")
	}

	reused := New()
	c := reused.NewCounter("warmup")
	reused.Spawn("warm", func(p *Proc) {
		p.Sleep(Nanosecond)
		c.Add(1)
	})
	if err := reused.Run(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	reused.Reset()
	if err := deadlock(reused); err == nil || err.Error() != base.Error() {
		t.Fatalf("reused kernel deadlock report %q != fresh %q", err, base)
	}
}

// TestResetStaleHandlesPanic: events, counters, and procs are carved from
// the kernel arena, so a handle kept across Reset points into recycled
// storage. Every use must fail loudly and deterministically instead of
// corrupting the next run.
func TestResetStaleHandlesPanic(t *testing.T) {
	k := New()
	ev := k.NewEvent("stale.ev")
	c := k.NewCounter("stale.c")
	var p *Proc
	k.SpawnProgram("stale.p", func(q *Proc) { p = q })
	k.Spawn("fire", func(q *Proc) {
		q.Sleep(Nanosecond)
		ev.Fire()
		c.Add(1)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	k.Reset()

	expectPanic(t, "event handle (stale.ev) used across Kernel.Reset", func() { ev.Fire() })
	expectPanic(t, "counter handle (stale.c) used across Kernel.Reset", func() { c.Add(1) })
	expectPanic(t, "counter handle (stale.c) used across Kernel.Reset", func() { k.AddAt(0, c, 1) })
	expectPanic(t, "process handle (stale.p) used across Kernel.Reset", func() {
		p.SleepThen(Nanosecond, func() {})
	})

	// Fresh handles carved after the Reset work normally.
	ev2 := k.NewEvent("fresh.ev")
	k.Spawn("fresh", func(q *Proc) { ev2.Fire() })
	if err := k.Run(); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
	if !ev2.Fired() {
		t.Fatal("fresh event did not fire")
	}
}

// TestResetStaleShardHandlesPanic extends the stale-handle guarantee to a
// sharded kernel: handles carved from any peer shard's or the hub shard's
// arena must fail loudly after Reset, and fresh handles on every shard must
// work, so pooled sharded worlds inherit the same safety net as classic
// ones.
func TestResetStaleShardHandlesPanic(t *testing.T) {
	k, peers, hub := newShardStressKernel()
	ev1 := peers[1].NewEvent("stale.s1.ev")
	c2 := peers[2].NewCounter("stale.s2.c")
	ch := hub.NewCounter("stale.hub.c")
	peers[1].Spawn("fire1", func(p *Proc) { ev1.Fire() })
	peers[2].Spawn("fire2", func(p *Proc) { c2.Add(1) })
	peers[0].Spawn("tohub", func(p *Proc) {
		p.Shard().PostAdd(p.Now(), ch, 1)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	k.Reset()

	expectPanic(t, "event handle (stale.s1.ev) used across Kernel.Reset", func() { ev1.Fire() })
	expectPanic(t, "counter handle (stale.s2.c) used across Kernel.Reset", func() { c2.Add(1) })
	expectPanic(t, "counter handle (stale.hub.c) used across Kernel.Reset", func() {
		peers[0].PostAdd(0, ch, 1)
	})

	// The shard partition survives Reset: fresh handles on each shard work.
	done := hub.NewCounter("fresh.done")
	for i, sh := range peers {
		sh.Spawn(fmt.Sprintf("fresh%d", i), func(p *Proc) {
			p.Shard().PostAdd(p.Now(), done, 1)
		})
	}
	hub.Spawn("sink", func(p *Proc) { p.WaitGE(done, int64(len(peers))) })
	if err := k.Run(); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
}

// TestResetRefusesLiveProcs: a deadlocked kernel still owns parked process
// goroutines whose stacks reference arena storage; Reset must refuse to pull
// the arena out from under them.
func TestResetRefusesLiveProcs(t *testing.T) {
	k := New()
	ev := k.NewEvent("never")
	k.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	if err := k.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	expectPanic(t, "Reset with live processes", func() { k.Reset() })
}

// TestResetDuringRunPanics: Reset from inside a callback would rewind the
// clock mid-simulation.
func TestResetDuringRunPanics(t *testing.T) {
	k := New()
	k.At(Nanosecond, func() { k.Reset() })
	expectPanic(t, "Reset during Run", func() { _ = k.Run() })
}
