package sim

// A Plan is a short program of timed steps — fixed sleeps, serialized
// resource occupations, counter additions — that a process attaches to a
// Wait or WaitGE so the whole sequence runs while the process stays parked.
// Without a plan, a per-chunk protocol body like "wait for the counter, poll,
// copy" costs one goroutine switch per blocking step; with one, the kernel
// executes the intermediate steps as inline callbacks under whichever
// goroutine holds the virtual-CPU token and resumes the process only after
// the final step. On partitions with thousands of processes each switch is a
// cache-cold goroutine wakeup, so fusing the steps is the sim's single
// biggest scheduling win.
//
// Determinism: a plan is a mechanical transcription of the process slices it
// replaces. Each step performs its kernel-visible actions (Pipe.Reserve,
// Counter.Add) at the same virtual instant the process would have, and
// schedules its successor at the moment the process would have pushed its own
// resume, so every queue entry keeps the exact (time, seq) position of the
// unfused execution. The final timed step schedules a plain process resume;
// a plan that ends on an instant step instead resumes the process via
// Kernel.fused, which next() returns before popping further entries — again
// the exact position the process slice would have occupied. The noFuse kernel
// flag makes WaitPlan/WaitGEPlan fall back to the literal unfused sequence,
// which the determinism stress tests compare against.
//
// Plans are built through the owning process's reusable buffer (NewPlan) and
// are single-shot: attaching one to a wait consumes it.
type Plan struct {
	p     *Proc
	steps []planStep
	i     int
}

type planStep struct {
	kind  uint8
	d     Time // stepSleep: duration; stepBusy: concurrent fixed cost
	pipe  *Pipe
	bytes int
	c     *Counter
	n     int64
}

const (
	stepSleep = iota
	stepBusy
	stepAdd
)

// NewPlan clears and returns p's plan buffer. The returned plan may only be
// attached to waits of p, and only the most recently built plan is valid.
//
//bgplint:hot
func (p *Proc) NewPlan() *Plan {
	p.plan.p = p
	p.plan.steps = p.plan.steps[:0]
	p.plan.i = 0
	return &p.plan
}

// Sleep appends a fixed delay, the fused equivalent of Proc.Sleep(d).
//
//bgplint:hot
func (pl *Plan) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	pl.steps = append(pl.steps, planStep{kind: stepSleep, d: d})
}

// Busy appends a serialized resource occupation, the fused equivalent of
//
//	done := pipe.Reserve(bytes); p.SleepUntil(max(done, now+concurrent))
//
// — the pattern hw uses for core-driven memory operations, where the same
// bytes occupy both the core and the shared bus.
//
//bgplint:hot
func (pl *Plan) Busy(pipe *Pipe, bytes int, concurrent Time) {
	pl.steps = append(pl.steps, planStep{kind: stepBusy, pipe: pipe, bytes: bytes, d: concurrent})
}

// Add appends a counter addition executed at the instant the preceding step
// completes, the fused equivalent of c.Add(n) between two blocking steps.
//
//bgplint:hot
func (pl *Plan) Add(c *Counter, n int64) {
	pl.steps = append(pl.steps, planStep{kind: stepAdd, c: c, n: n})
}

// WaitPlan blocks on ev and then runs pl while p stays parked, returning
// after the plan's last step. With no plan steps it is exactly Wait.
//
//bgplint:hot
func (p *Proc) WaitPlan(ev *Event, pl *Plan) {
	if len(pl.steps) == 0 {
		p.Wait(ev)
		return
	}
	if ev.fired || p.k.noFuse {
		p.Wait(ev)
		pl.runInline(p)
		return
	}
	p.check()
	ev.check()
	p.checkOwner(ev.sh)
	p.waitEv = ev
	p.sh.blocked++
	ev.waiters = append(ev.waiters, entry{kind: eStep, idx: p.self})
	p.yield()
}

// WaitGEPlan blocks until c reaches at least v and then runs pl while p
// stays parked, returning after the plan's last step. With no plan steps it
// is exactly WaitGE.
//
//bgplint:hot
func (p *Proc) WaitGEPlan(c *Counter, v int64, pl *Plan) {
	if len(pl.steps) == 0 {
		p.WaitGE(c, v)
		return
	}
	if c.v >= v || p.k.noFuse {
		p.WaitGE(c, v)
		pl.runInline(p)
		return
	}
	p.check()
	c.check()
	p.checkOwner(c.sh)
	p.waitC, p.waitGE = c, v
	p.sh.blocked++
	c.wait(v, entry{kind: eStep, idx: p.self})
	p.yield()
}

// advance runs plan steps from the current position: instant steps execute
// in place, a timed step schedules the plan's continuation — or, if it is the
// last step, the process's resume itself — at its completion time. It runs as
// a queue callback under the current token holder; a panicking step fails the
// simulation like a process panic (the process stays parked).
//
//bgplint:hot
func (p *Proc) advance() {
	defer p.recoverStep()
	sh := p.sh
	pl := &p.plan
	for pl.i < len(pl.steps) {
		s := &pl.steps[pl.i]
		pl.i++
		var done Time
		switch s.kind {
		case stepSleep:
			done = sh.now + s.d
		case stepBusy:
			done = s.pipe.Reserve(s.bytes)
			if c := sh.now + s.d; c > done {
				done = c
			}
			if done <= sh.now {
				continue // mirrors the unfused SleepUntil fast path
			}
		case stepAdd:
			s.c.Add(s.n)
			continue
		}
		if pl.i == len(pl.steps) {
			sh.schedProc(done, p)
		} else {
			sh.schedStep(done, p)
		}
		return
	}
	// Exhausted on instant steps: the process must continue at exactly this
	// queue position, before any other pending entry.
	sh.fused = p
}

// runInline executes the plan through the ordinary process primitives — the
// literal sequence the fused path transcribes. Used when the blocking
// condition is already satisfied and in noFuse reference mode.
//
//bgplint:hot
func (pl *Plan) runInline(p *Proc) {
	for i := range pl.steps {
		s := &pl.steps[i]
		switch s.kind {
		case stepSleep:
			p.Sleep(s.d)
		case stepBusy:
			done := s.pipe.Reserve(s.bytes)
			if c := p.sh.now + s.d; c > done {
				done = c
			}
			p.SleepUntil(done)
		case stepAdd:
			s.c.Add(s.n)
		}
	}
	pl.i = len(pl.steps)
}

func (p *Proc) recoverStep() {
	if r := recover(); r != nil {
		p.sh.fail(procPanicError(p.Name(), r))
	}
}
