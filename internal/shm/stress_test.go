package shm

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// Race-targeted stress tests for the lock-free FIFOs: many producers and
// contended consumers hammering small FIFOs across several GOMAXPROCS
// settings, so `go test -race ./internal/shm/...` exercises the
// publication (seq store) and reclamation (reader countdown / head CAS)
// edges under real preemption. Skipped in -short mode to keep quick runs
// fast; CI runs them with the race detector enabled.

var stressProcs = []int{1, 2, 4, 8}

// TestBcastFIFORaceStress drives one producer against the full reader set:
// every reader must see every item exactly once, in order, with intact
// payload bytes, while slots are recycled under contention.
func TestBcastFIFORaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		items    = 400
		nReaders = 4
		slots    = 8
	)
	for _, procs := range stressProcs {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			f := NewBcastFIFO(slots, 8, nReaders)
			var wg sync.WaitGroup
			errs := make(chan error, nReaders)
			for r := 0; r < nReaders; r++ {
				rd := f.NewReader()
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					buf := make([]byte, f.SlotBytes())
					for i := 0; i < items; i++ {
						n, conn, ok := 0, 0, false
						for !ok {
							n, conn, ok = rd.TryReadInto(buf)
							if !ok {
								runtime.Gosched()
							}
						}
						if conn != i {
							errs <- fmt.Errorf("reader %d: item %d arrived as connection %d", id, i, conn)
							return
						}
						if n != 8 || binary.LittleEndian.Uint64(buf) != uint64(i) {
							errs <- fmt.Errorf("reader %d: item %d payload corrupted", id, i)
							return
						}
					}
				}(r)
			}
			payload := make([]byte, 8)
			for i := 0; i < items; i++ {
				binary.LittleEndian.PutUint64(payload, uint64(i))
				f.Enqueue(payload, i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestPtPFIFORaceStress drives several producers against several contended
// consumers: the union of everything dequeued must be exactly the multiset
// enqueued (each item exactly once), regardless of interleaving.
func TestPtPFIFORaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		producers   = 4
		consumers   = 4
		perProducer = 250
		slots       = 8
		totalItems  = producers * perProducer
	)
	for _, procs := range stressProcs {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			f := NewPtPFIFO(slots)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						f.Enqueue(Message{Connection: p*perProducer + i})
					}
				}(p)
			}
			got := make([][]int, consumers)
			var cwg sync.WaitGroup
			var claimed [totalItems]int32 // how many consumers saw each item
			var taken counterT
			for cidx := 0; cidx < consumers; cidx++ {
				cwg.Add(1)
				go func(cidx int) {
					defer cwg.Done()
					for {
						if taken.add(1) > totalItems {
							return
						}
						msg := f.Dequeue()
						got[cidx] = append(got[cidx], msg.Connection)
					}
				}(cidx)
			}
			wg.Wait()
			cwg.Wait()
			for cidx, items := range got {
				for _, conn := range items {
					if conn < 0 || conn >= totalItems {
						t.Fatalf("consumer %d: out-of-range item %d", cidx, conn)
					}
					claimed[conn]++
				}
			}
			for conn, n := range claimed {
				if n != 1 {
					t.Errorf("item %d consumed %d times, want exactly once", conn, n)
				}
			}
		})
	}
}

// counterT is a tiny atomic ticket counter for the consumer side of the
// stress test (kept local to avoid polluting the package API).
type counterT struct{ c MsgCounter }

func (t *counterT) add(n int) int64 {
	t.c.Publish(n)
	return t.c.Loaded()
}
