package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// BcastFIFO is the concurrent broadcast FIFO of §IV-B and Fig. 1. A producer
// reserves a slot with an atomic fetch-and-increment of the tail and copies
// its data (plus metadata) into the slot; every one of the nReaders consumer
// processes must read the item before the slot is reclaimed. An atomic
// per-slot counter initialized to nReaders counts the readers down; the last
// arriving reader completes the dequeue by advancing the head.
//
// Unlike PtPFIFO, the Bcast FIFO stages data through its own slot storage:
// Enqueue copies in, ReadInto copies out, mirroring the shared-memory
// staging-buffer design the paper describes.
type BcastFIFO struct {
	size      uint64
	slotBytes int
	nReaders  int32

	head atomic.Uint64 // count of fully consumed items
	tail atomic.Uint64 // count of reserved slots

	slots []bslot
}

type bslot struct {
	seq       atomic.Uint64 // item+1 once published
	remaining atomic.Int32  // readers still to consume this item
	length    int
	conn      int
	data      []byte
	_         [64]byte // avoid false sharing between adjacent slots
}

// NewBcastFIFO creates a FIFO with the given slot count, per-slot payload
// capacity, and fixed reader count.
func NewBcastFIFO(slots, slotBytes, nReaders int) *BcastFIFO {
	if slots < 1 || slotBytes < 1 || nReaders < 1 {
		panic("shm: invalid BcastFIFO geometry")
	}
	f := &BcastFIFO{
		size:      uint64(slots),
		slotBytes: slotBytes,
		nReaders:  int32(nReaders),
		slots:     make([]bslot, slots),
	}
	for i := range f.slots {
		f.slots[i].data = make([]byte, slotBytes)
	}
	return f
}

// SlotBytes returns the per-slot payload capacity. Larger messages must be
// packetized by the caller, as the broadcast algorithms do.
func (f *BcastFIFO) SlotBytes() int { return f.slotBytes }

// Cap returns the slot count.
func (f *BcastFIFO) Cap() int { return int(f.size) }

// Readers returns the fixed consumer count.
func (f *BcastFIFO) Readers() int { return int(f.nReaders) }

// Enqueue reserves the next slot (waiting while the FIFO is full), copies
// data and the connection id into it, arms the reader countdown, and
// publishes. It returns the item's global index. data must fit in one slot.
func (f *BcastFIFO) Enqueue(data []byte, connection int) uint64 {
	if len(data) > f.slotBytes {
		panic(fmt.Sprintf("shm: %d-byte enqueue exceeds %d-byte slot", len(data), f.slotBytes))
	}
	item := f.tail.Add(1) - 1
	// Space check: proceed only once (item - head) < fifoSize, i.e. the
	// slot's previous occupant has been read by everyone.
	for item-f.head.Load() >= f.size {
		runtime.Gosched()
	}
	s := &f.slots[item%f.size]
	copy(s.data, data)
	s.length = len(data)
	s.conn = connection
	s.remaining.Store(f.nReaders)
	s.seq.Store(item + 1) // write completion: publish to readers
	return item
}

// Reader is one consumer's cursor. Every reader sees every item exactly
// once, in enqueue order. Create exactly Readers() readers.
type Reader struct {
	f    *BcastFIFO
	next uint64
}

// NewReader returns a cursor starting at the oldest unconsumed item.
func (f *BcastFIFO) NewReader() *Reader { return &Reader{f: f} }

// TryReadInto copies the next item's payload into dst if it is available,
// returning the payload length, connection id, and true. It returns false
// when the producer has not yet published the reader's next item.
func (r *Reader) TryReadInto(dst []byte) (n, connection int, ok bool) {
	s := &r.f.slots[r.next%r.f.size]
	if s.seq.Load() != r.next+1 {
		return 0, 0, false
	}
	n = copy(dst, s.data[:s.length])
	connection = s.conn
	// Count this reader's consumption; the last arriving reader removes
	// the message from the FIFO by advancing the head.
	if s.remaining.Add(-1) == 0 {
		r.f.head.Add(1)
	}
	r.next++
	return n, connection, true
}

// ReadInto blocks (spinning) until the next item is available and copies it
// into dst.
func (r *Reader) ReadInto(dst []byte) (n, connection int) {
	for {
		if n, conn, ok := r.TryReadInto(dst); ok {
			return n, conn
		}
		runtime.Gosched()
	}
}

func (f *BcastFIFO) String() string {
	return fmt.Sprintf("BcastFIFO{cap=%d slot=%dB readers=%d head=%d tail=%d}",
		f.size, f.slotBytes, f.nReaders, f.head.Load(), f.tail.Load())
}
