// Package shm implements the paper's intra-node shared-memory communication
// structures (§IV) as real concurrent data structures built only on atomic
// fetch-and-increment (Go's atomic Add), exactly as the paper proposes for
// "any platform supporting a basic atomic fetch and increment operation":
//
//   - PtPFIFO: a bounded multi-producer FIFO where each enqueued item is
//     dequeued by exactly one consumer (§IV-A).
//   - BcastFIFO: a bounded FIFO where every enqueued item must be read by
//     all n-1 peer processes before its slot is reclaimed; the per-slot
//     reader countdown and head advance follow Fig. 1 (§IV-B).
//   - MsgCounter: the software message counter used for direct-copy
//     pipelining (§IV-C): a producer publishes cumulative byte counts,
//     consumers wait for thresholds.
//   - Completion: the atomic completion counter the master polls to learn
//     all peers finished copying out of its buffer.
//
// These types are used with real goroutines (race-tested; see the lockfree
// example). The simulator re-expresses the same protocols against virtual
// time in the collective algorithms, charging the costs of the operations
// these structures perform.
package shm
