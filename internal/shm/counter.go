package shm

import (
	"runtime"
	"sync/atomic"
)

// MsgCounter is the software message counter of §IV-C: the master process
// publishes the cumulative number of bytes that have arrived in its buffer
// (mirroring the DMA's hardware byte counters), and peer processes wait for
// thresholds before copying the newly arrived range directly out of the
// master's buffer.
type MsgCounter struct {
	bytes atomic.Int64
}

// Publish adds n newly arrived bytes to the counter.
func (c *MsgCounter) Publish(n int) {
	if n < 0 {
		panic("shm: negative publish")
	}
	c.bytes.Add(int64(n))
}

// Loaded returns the current cumulative byte count.
func (c *MsgCounter) Loaded() int64 { return c.bytes.Load() }

// Wait spins until at least min bytes have been published, returning the
// observed count (which may exceed min: the consumer then copies everything
// available, the paper's pipelining behaviour).
func (c *MsgCounter) Wait(min int64) int64 {
	for {
		if v := c.bytes.Load(); v >= min {
			return v
		}
		runtime.Gosched()
	}
}

// Reset rearms the counter for the next operation. The caller must ensure no
// peer is still waiting (use a Completion).
func (c *MsgCounter) Reset() { c.bytes.Store(0) }

// Completion is the atomic completion counter the master initializes to zero
// and each peer increments after it has finished copying; once it reaches
// n-1 the master may reuse its buffer.
type Completion struct {
	done atomic.Int32
}

// Signal records that one peer finished.
func (c *Completion) Signal() { c.done.Add(1) }

// Wait spins until n peers have signalled.
func (c *Completion) Wait(n int) {
	for c.done.Load() < int32(n) {
		runtime.Gosched()
	}
}

// Reset rearms the completion for the next operation.
func (c *Completion) Reset() { c.done.Store(0) }
