package shm

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestPtPSingleThreadOrder(t *testing.T) {
	f := NewPtPFIFO(4)
	for i := 0; i < 10; i++ {
		f.Enqueue(Message{Connection: i})
		got := f.Dequeue()
		if got.Connection != i {
			t.Fatalf("item %d dequeued as %d", i, got.Connection)
		}
	}
}

func TestPtPFillThenDrain(t *testing.T) {
	f := NewPtPFIFO(8)
	for i := 0; i < 8; i++ {
		f.Enqueue(Message{Connection: i})
	}
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
	for i := 0; i < 8; i++ {
		if got := f.Dequeue(); got.Connection != i {
			t.Fatalf("drain order broken at %d: %d", i, got.Connection)
		}
	}
	if _, ok := f.TryDequeue(); ok {
		t.Fatal("empty FIFO dequeued")
	}
}

func TestPtPTryDequeueEmpty(t *testing.T) {
	f := NewPtPFIFO(2)
	if _, ok := f.TryDequeue(); ok {
		t.Fatal("dequeue from fresh FIFO succeeded")
	}
}

func TestPtPWrapAround(t *testing.T) {
	f := NewPtPFIFO(2)
	for i := 0; i < 100; i++ {
		f.Enqueue(Message{Connection: i})
		if got := f.Dequeue(); got.Connection != i {
			t.Fatalf("wrap-around broke at %d", i)
		}
	}
}

func TestPtPBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-slot FIFO accepted")
		}
	}()
	NewPtPFIFO(0)
}

// TestPtPConcurrentMPMC drives multiple producers and consumers with real
// goroutines: every enqueued item must be dequeued exactly once.
func TestPtPConcurrentMPMC(t *testing.T) {
	const producers, consumers, perProducer = 3, 3, 400
	f := NewPtPFIFO(16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				f.Enqueue(Message{Connection: p*perProducer + i})
			}
		}(p)
	}
	results := make(chan int, producers*perProducer)
	producersDone := done(&wg)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				msg, ok := f.TryDequeue()
				if !ok {
					select {
					case <-producersDone:
						if msg, ok = f.TryDequeue(); !ok {
							return
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				results <- msg.Connection
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	close(results)
	seen := make(map[int]bool)
	for v := range results {
		if seen[v] {
			t.Fatalf("item %d consumed twice", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d of %d items", len(seen), producers*perProducer)
	}
}

// done adapts a WaitGroup to a closable channel for select.
func done(wg *sync.WaitGroup) <-chan struct{} {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	return ch
}

func TestBcastFIFOSingleThread(t *testing.T) {
	f := NewBcastFIFO(4, 16, 3)
	readers := []*Reader{f.NewReader(), f.NewReader(), f.NewReader()}
	payload := []byte("hello")
	f.Enqueue(payload, 7)
	for i, r := range readers {
		dst := make([]byte, 16)
		n, conn, ok := r.TryReadInto(dst)
		if !ok {
			t.Fatalf("reader %d saw no item", i)
		}
		if n != len(payload) || conn != 7 || !bytes.Equal(dst[:n], payload) {
			t.Fatalf("reader %d got %q conn %d", i, dst[:n], conn)
		}
	}
	// All readers consumed: slot reclaimed, head advanced.
	if f.head.Load() != 1 {
		t.Fatalf("head = %d after full consumption", f.head.Load())
	}
}

func TestBcastFIFOSlotNotReclaimedEarly(t *testing.T) {
	f := NewBcastFIFO(2, 8, 2)
	r0, r1 := f.NewReader(), f.NewReader()
	f.Enqueue([]byte{1}, 0)
	dst := make([]byte, 8)
	r0.TryReadInto(dst)
	if f.head.Load() != 0 {
		t.Fatal("slot reclaimed before all readers consumed")
	}
	r1.TryReadInto(dst)
	if f.head.Load() != 1 {
		t.Fatal("slot not reclaimed after all readers consumed")
	}
}

func TestBcastFIFOReaderSeesNothingBeforePublish(t *testing.T) {
	f := NewBcastFIFO(2, 8, 1)
	r := f.NewReader()
	if _, _, ok := r.TryReadInto(make([]byte, 8)); ok {
		t.Fatal("read from empty FIFO")
	}
}

func TestBcastFIFOOversizePanics(t *testing.T) {
	f := NewBcastFIFO(2, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("oversize enqueue accepted")
		}
	}()
	f.Enqueue(make([]byte, 5), 0)
}

func TestBcastFIFOMetadataMultiplexing(t *testing.T) {
	// Streams from multiple connections multiplex through one FIFO and are
	// distinguished by the connection id metadata (§V-A).
	f := NewBcastFIFO(8, 8, 1)
	r := f.NewReader()
	for conn := 0; conn < 6; conn++ {
		f.Enqueue([]byte{byte(conn)}, conn)
	}
	for conn := 0; conn < 6; conn++ {
		dst := make([]byte, 8)
		n, got, _ := r.TryReadInto(dst)
		if got != conn || n != 1 || dst[0] != byte(conn) {
			t.Fatalf("conn %d read as %d (%v)", conn, got, dst[:n])
		}
	}
}

// TestBcastFIFOConcurrent runs a producer and three consumers over a small
// FIFO, forcing wrap-around and slot-reuse races.
func TestBcastFIFOConcurrent(t *testing.T) {
	const items = 400
	const nReaders = 3
	f := NewBcastFIFO(4, 8, nReaders)
	var wg sync.WaitGroup
	for rr := 0; rr < nReaders; rr++ {
		r := f.NewReader()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			dst := make([]byte, 8)
			for i := 0; i < items; i++ {
				n, conn := r.ReadInto(dst)
				if n != 4 {
					t.Errorf("reader %d item %d: n=%d", id, i, n)
					return
				}
				want := byte(i % 251)
				if dst[0] != want || conn != i {
					t.Errorf("reader %d item %d: got data %d conn %d", id, i, dst[0], conn)
					return
				}
			}
		}(rr)
	}
	for i := 0; i < items; i++ {
		b := byte(i % 251)
		f.Enqueue([]byte{b, b, b, b}, i)
	}
	wg.Wait()
}

func TestBcastFIFOOrderProperty(t *testing.T) {
	// Property: for any payload sequence, a reader observes exactly the
	// enqueue sequence.
	f := func(payloads [][]byte) bool {
		fifo := NewBcastFIFO(4, 32, 1)
		r := fifo.NewReader()
		for i, p := range payloads {
			if len(p) > 32 {
				p = p[:32]
			}
			fifo.Enqueue(p, i)
			dst := make([]byte, 32)
			n, conn, ok := r.TryReadInto(dst)
			if !ok || conn != i || !bytes.Equal(dst[:n], p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMsgCounterPublishWait(t *testing.T) {
	var c MsgCounter
	c.Publish(100)
	if got := c.Wait(50); got != 100 {
		t.Fatalf("Wait returned %d", got)
	}
	c.Publish(28)
	if c.Loaded() != 128 {
		t.Fatalf("Loaded = %d", c.Loaded())
	}
	c.Reset()
	if c.Loaded() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMsgCounterNegativePanics(t *testing.T) {
	var c MsgCounter
	defer func() {
		if recover() == nil {
			t.Error("negative publish accepted")
		}
	}()
	c.Publish(-1)
}

func TestMsgCounterConcurrentPipeline(t *testing.T) {
	// A producer publishes chunks; consumers wait on increasing
	// thresholds. Every consumer must observe monotonically increasing
	// counts that cover the whole message.
	const total, chunk = 1 << 16, 1 << 10
	var c MsgCounter
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var seen int64
			for seen < total {
				got := c.Wait(seen + 1)
				if got <= seen {
					t.Error("counter went backwards")
					return
				}
				seen = got
			}
		}()
	}
	for off := 0; off < total; off += chunk {
		c.Publish(chunk)
	}
	wg.Wait()
	if c.Loaded() != total {
		t.Fatalf("final count %d", c.Loaded())
	}
}

func TestCompletion(t *testing.T) {
	var c Completion
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.Signal() }()
	}
	c.Wait(3)
	wg.Wait()
	c.Reset()
	c.Signal()
	c.Wait(1)
}

func TestStringers(t *testing.T) {
	p := NewPtPFIFO(2)
	b := NewBcastFIFO(2, 8, 3)
	for _, s := range []fmt.Stringer{p, b} {
		if s.String() == "" {
			t.Error("empty String()")
		}
	}
}
