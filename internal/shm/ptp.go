package shm

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Message is one Bcast/PtP FIFO slot payload: the data bytes plus the
// metadata the paper stores alongside them (byte count and the connection id
// of the global flow, so several broadcast streams can be multiplexed into
// one FIFO).
type Message struct {
	Data       []byte
	Connection int
}

// PtPFIFO is the point-to-point FIFO of §IV-A: a bounded queue where
// producers reserve unique slots by atomically incrementing the tail, and
// each item is consumed by exactly one process, in enqueue order. Both
// enqueue and dequeue sides may have multiple concurrent processes.
type PtPFIFO struct {
	size uint64
	head atomic.Uint64 // count of dequeued items
	tail atomic.Uint64 // count of reserved slots

	slots []ptpSlot
}

type ptpSlot struct {
	// seq is the slot's publication sequence: slot i in epoch e (item
	// index i = e*size + idx) is ready for readers when seq == i+1, and
	// free for the next producer epoch when seq == i+size (set by the
	// consumer after reading).
	seq atomic.Uint64
	msg Message
	// pad the slot to its own cache line group to avoid false sharing.
	_ [104]byte
}

// NewPtPFIFO creates a FIFO with the given slot count.
func NewPtPFIFO(slots int) *PtPFIFO {
	if slots < 1 {
		panic("shm: FIFO needs at least one slot")
	}
	f := &PtPFIFO{size: uint64(slots), slots: make([]ptpSlot, slots)}
	for i := range f.slots {
		// Slot i is initially free for item i: mark with seq == i,
		// meaning "writable by the producer of item i".
		f.slots[i].seq.Store(uint64(i))
	}
	return f
}

// Enqueue reserves the next slot, waiting while the FIFO is full, and
// publishes msg. It returns the item's global index.
func (f *PtPFIFO) Enqueue(msg Message) uint64 {
	item := f.tail.Add(1) - 1 // fetch-and-increment reserves a unique slot
	s := &f.slots[item%f.size]
	// Wait for the slot's previous occupant to be consumed: the space
	// check (myslot - head < fifoSize) of the paper, expressed through the
	// slot's sequence so the producer also orders with the consumer's
	// reads.
	for s.seq.Load() != item {
		runtime.Gosched()
	}
	s.msg = msg
	s.seq.Store(item + 1) // write-completion step: publish
	return item
}

// TryDequeue removes the oldest item if one is ready. It returns the message
// and true, or a zero Message and false when the FIFO is momentarily empty.
func (f *PtPFIFO) TryDequeue() (Message, bool) {
	for {
		h := f.head.Load()
		s := &f.slots[h%f.size]
		if s.seq.Load() != h+1 {
			return Message{}, false // head item not published yet
		}
		// Claim item h. CompareAndSwap keeps exactly-once consumption
		// among concurrent consumers.
		if !f.head.CompareAndSwap(h, h+1) {
			continue
		}
		msg := s.msg
		s.msg = Message{}
		s.seq.Store(h + f.size) // free the slot for epoch h+size
		return msg, true
	}
}

// Dequeue removes the oldest item, spinning while the FIFO is empty.
func (f *PtPFIFO) Dequeue() Message {
	for {
		if msg, ok := f.TryDequeue(); ok {
			return msg
		}
		runtime.Gosched()
	}
}

// Len returns the number of published-but-unconsumed items (approximate
// under concurrency).
func (f *PtPFIFO) Len() int {
	t, h := f.tail.Load(), f.head.Load()
	if t < h {
		return 0
	}
	n := t - h
	if n > f.size {
		n = f.size
	}
	return int(n)
}

// Cap returns the slot count.
func (f *PtPFIFO) Cap() int { return int(f.size) }

func (f *PtPFIFO) String() string {
	return fmt.Sprintf("PtPFIFO{cap=%d head=%d tail=%d}", f.size, f.head.Load(), f.tail.Load())
}
