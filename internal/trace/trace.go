// Package trace records simulation events for post-mortem inspection: what
// the network schedules, DMA engines, and rank protocols did, and when, in
// virtual time. Tracing is off by default (a nil *Log records nothing at
// zero cost) and bounded: the log keeps the first events up to its capacity
// and counts the rest, so a multi-megabyte broadcast cannot exhaust memory.
package trace

import (
	"fmt"
	"io"

	"bgpcoll/internal/sim"
)

// Category classifies an event source.
type Category uint8

// Event categories.
const (
	Net   Category = iota // torus line broadcasts, unicasts, tree combines
	DMA                   // engine injections, receptions, local puts
	Copy                  // core-driven copies and reductions
	Sync                  // counters, barriers, completion signalling
	Proto                 // protocol decisions (pump, forward, chain hops)
	numCategories
)

func (c Category) String() string {
	switch c {
	case Net:
		return "net"
	case DMA:
		return "dma"
	case Copy:
		return "copy"
	case Sync:
		return "sync"
	case Proto:
		return "proto"
	}
	return fmt.Sprintf("cat(%d)", uint8(c))
}

// Event is one recorded occurrence.
type Event struct {
	T     sim.Time
	Cat   Category
	Node  int
	Label string
}

func (e Event) String() string {
	return fmt.Sprintf("%-12v %-5s node %-4d %s", e.T, e.Cat, e.Node, e.Label)
}

// Log is a bounded event recorder. A nil *Log is valid and records nothing,
// so call sites need no nil checks beyond the method call itself.
type Log struct {
	events  []Event
	cap     int
	dropped int64
	counts  [numCategories]int64
}

// New creates a log retaining up to capacity events (further events are
// counted but not stored).
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{cap: capacity}
}

// Enabled reports whether events will be recorded.
func (l *Log) Enabled() bool { return l != nil }

// Add records an event. Safe on a nil log.
func (l *Log) Add(t sim.Time, cat Category, node int, label string) {
	if l == nil {
		return
	}
	l.counts[cat]++
	if len(l.events) >= l.cap {
		l.dropped++
		return
	}
	l.events = append(l.events, Event{T: t, Cat: cat, Node: node, Label: label})
}

// Addf records a formatted event. Safe on a nil log; arguments are not
// formatted when the log is nil or full beyond counting.
func (l *Log) Addf(t sim.Time, cat Category, node int, format string, args ...any) {
	if l == nil {
		return
	}
	l.counts[cat]++
	if len(l.events) >= l.cap {
		l.dropped++
		return
	}
	l.events = append(l.events, Event{T: t, Cat: cat, Node: node, Label: fmt.Sprintf(format, args...)})
}

// Events returns the retained events in record order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Count returns the total events seen in a category, including dropped ones.
func (l *Log) Count(cat Category) int64 {
	if l == nil {
		return 0
	}
	return l.counts[cat]
}

// Dropped returns how many events exceeded the capacity.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Dump writes up to max retained events plus a per-category summary.
func (l *Log) Dump(w io.Writer, max int) {
	if l == nil {
		fmt.Fprintln(w, "trace: disabled")
		return
	}
	n := len(l.events)
	if max > 0 && max < n {
		n = max
	}
	for _, e := range l.events[:n] {
		fmt.Fprintln(w, e)
	}
	if len(l.events) > n {
		fmt.Fprintf(w, "... %d more retained events\n", len(l.events)-n)
	}
	if l.dropped > 0 {
		fmt.Fprintf(w, "... %d events dropped beyond capacity\n", l.dropped)
	}
	fmt.Fprintf(w, "totals:")
	for c := Category(0); c < numCategories; c++ {
		if l.counts[c] > 0 {
			fmt.Fprintf(w, " %s=%d", c, l.counts[c])
		}
	}
	fmt.Fprintln(w)
}
