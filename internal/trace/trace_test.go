package trace

import (
	"strings"
	"testing"

	"bgpcoll/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, Net, 0, "x")
	l.Addf(0, DMA, 1, "y %d", 2)
	if l.Enabled() {
		t.Error("nil log enabled")
	}
	if l.Count(Net) != 0 || l.Dropped() != 0 || l.Events() != nil {
		t.Error("nil log not empty")
	}
	var sb strings.Builder
	l.Dump(&sb, 10)
	if !strings.Contains(sb.String(), "disabled") {
		t.Error("nil dump missing notice")
	}
}

func TestRecordAndCount(t *testing.T) {
	l := New(4)
	l.Add(sim.Microsecond, Net, 3, "arrive")
	l.Addf(2*sim.Microsecond, Copy, 1, "copy %d bytes", 64)
	if got := len(l.Events()); got != 2 {
		t.Fatalf("events = %d", got)
	}
	if l.Count(Net) != 1 || l.Count(Copy) != 1 || l.Count(DMA) != 0 {
		t.Fatal("counts wrong")
	}
	if l.Events()[1].Label != "copy 64 bytes" {
		t.Fatalf("label = %q", l.Events()[1].Label)
	}
}

func TestCapacityBound(t *testing.T) {
	l := New(3)
	for i := 0; i < 10; i++ {
		l.Add(sim.Time(i), Sync, i, "e")
	}
	if len(l.Events()) != 3 {
		t.Fatalf("retained %d", len(l.Events()))
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
	if l.Count(Sync) != 10 {
		t.Fatalf("count = %d", l.Count(Sync))
	}
}

func TestDumpFormat(t *testing.T) {
	l := New(10)
	l.Add(sim.Microsecond, Proto, 7, "pump chunk")
	l.Add(2*sim.Microsecond, Net, 8, "delivered")
	var sb strings.Builder
	l.Dump(&sb, 1)
	out := sb.String()
	for _, frag := range []string{"proto", "node 7", "pump chunk", "1 more retained", "totals:", "net=1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("dump missing %q:\n%s", frag, out)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for c, want := range map[Category]string{Net: "net", DMA: "dma", Copy: "copy", Sync: "sync", Proto: "proto"} {
		if c.String() != want {
			t.Errorf("%d -> %q", c, c.String())
		}
	}
}
