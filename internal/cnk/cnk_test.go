package cnk

import (
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

func newProc(t *testing.T, params hw.Params) (*sim.Kernel, *hw.Node) {
	t.Helper()
	k := sim.New()
	return k, hw.NewNode(k, 0, geometry.Coord{}, params)
}

// run executes fn as a simulated process and returns the virtual time it
// consumed.
func run(t *testing.T, k *sim.Kernel, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	var elapsed sim.Time
	k.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		fn(p)
		elapsed = p.Now() - start
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestFirstMapPaysTwoSyscalls(t *testing.T) {
	params := hw.DefaultParams()
	k, node := newProc(t, params)
	w := NewProcess(node, 0)
	key := BufferKey{OwnerLocalRank: 1, Tag: 7}
	elapsed := run(t, k, func(p *sim.Proc) {
		if calls := w.Map(p, key, 4096); calls != 2 {
			t.Errorf("first map issued %d syscalls, want 2", calls)
		}
	})
	if want := 2 * params.SyscallTime; elapsed != want {
		t.Errorf("first map took %v, want %v", elapsed, want)
	}
}

func TestMappingCacheHitIsFree(t *testing.T) {
	k, node := newProc(t, hw.DefaultParams())
	w := NewProcess(node, 0)
	key := BufferKey{OwnerLocalRank: 1, Tag: 7}
	elapsed := run(t, k, func(p *sim.Proc) {
		w.Map(p, key, 4096)
		mark := p.Now()
		if calls := w.Map(p, key, 4096); calls != 0 {
			t.Errorf("cached map issued %d syscalls", calls)
		}
		if p.Now() != mark {
			t.Error("cached map consumed time")
		}
	})
	_ = elapsed
	if w.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", w.CacheHits)
	}
}

func TestNoCachingAlwaysPays(t *testing.T) {
	params := hw.DefaultParams()
	params.MapCacheEnabled = false
	k, node := newProc(t, params)
	w := NewProcess(node, 0)
	key := BufferKey{OwnerLocalRank: 1, Tag: 7}
	elapsed := run(t, k, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if calls := w.Map(p, key, 4096); calls != 2 {
				t.Fatalf("iteration %d issued %d syscalls, want 2", i, calls)
			}
		}
	})
	if want := 10 * params.SyscallTime; elapsed != want {
		t.Errorf("5 uncached maps took %v, want %v", elapsed, want)
	}
}

func TestOwnMemoryNeedsNoWindow(t *testing.T) {
	k, node := newProc(t, hw.DefaultParams())
	w := NewProcess(node, 2)
	run(t, k, func(p *sim.Proc) {
		if calls := w.Map(p, BufferKey{OwnerLocalRank: 2, Tag: 1}, 1<<20); calls != 0 {
			t.Errorf("self map issued %d syscalls", calls)
		}
	})
	if w.Syscalls != 0 {
		t.Error("self map recorded syscalls")
	}
}

func TestLargeBufferSpansRegions(t *testing.T) {
	params := hw.DefaultParams()
	params.TLBSlotBytes = 1 << 20 // 1 MB slots
	params.TLBSlots = 4
	k, node := newProc(t, params)
	w := NewProcess(node, 0)
	run(t, k, func(p *sim.Proc) {
		// 2.5 MB buffer needs 3 regions -> 6 syscalls.
		if calls := w.Map(p, BufferKey{OwnerLocalRank: 1, Tag: 1}, 5<<19); calls != 6 {
			t.Errorf("spanning map issued %d syscalls, want 6", calls)
		}
	})
	if w.Resident() != 3 {
		t.Errorf("resident = %d, want 3", w.Resident())
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	params := hw.DefaultParams() // 3 slots
	k, node := newProc(t, params)
	w := NewProcess(node, 0)
	keys := []BufferKey{
		{OwnerLocalRank: 1, Tag: 1},
		{OwnerLocalRank: 2, Tag: 1},
		{OwnerLocalRank: 3, Tag: 1},
		{OwnerLocalRank: 1, Tag: 2}, // fourth region forces an eviction
	}
	run(t, k, func(p *sim.Proc) {
		for _, key := range keys {
			w.Map(p, key, 4096)
		}
		if w.Evictions != 1 {
			t.Errorf("evictions = %d, want 1", w.Evictions)
		}
		// keys[0] was least recently used and must have been evicted:
		// remapping it costs syscalls again.
		if calls := w.Map(p, keys[0], 4096); calls != 2 {
			t.Errorf("remap after eviction issued %d syscalls, want 2", calls)
		}
		// keys[2] stayed resident.
		if calls := w.Map(p, keys[2], 4096); calls != 0 {
			t.Errorf("resident map issued %d syscalls", calls)
		}
	})
}

func TestTouchRefreshesLRU(t *testing.T) {
	k, node := newProc(t, hw.DefaultParams())
	w := NewProcess(node, 0)
	a := BufferKey{OwnerLocalRank: 1, Tag: 1}
	b := BufferKey{OwnerLocalRank: 2, Tag: 1}
	c := BufferKey{OwnerLocalRank: 3, Tag: 1}
	d := BufferKey{OwnerLocalRank: 3, Tag: 2}
	run(t, k, func(p *sim.Proc) {
		w.Map(p, a, 64)
		w.Map(p, b, 64)
		w.Map(p, c, 64)
		w.Map(p, a, 64) // touch a: b becomes LRU
		w.Map(p, d, 64) // evicts b
		if calls := w.Map(p, a, 64); calls != 0 {
			t.Error("touched mapping was evicted")
		}
		if calls := w.Map(p, b, 64); calls == 0 {
			t.Error("LRU mapping survived eviction")
		}
	})
}

func TestStatsString(t *testing.T) {
	k, node := newProc(t, hw.DefaultParams())
	w := NewProcess(node, 1)
	run(t, k, func(p *sim.Proc) {
		w.Map(p, BufferKey{OwnerLocalRank: 0, Tag: 1}, 64)
	})
	if s := w.String(); s == "" {
		t.Error("empty String")
	}
	if w.MapCalls != 1 || w.Syscalls != 2 {
		t.Errorf("stats: %+v", w)
	}
}
