// Package cnk models the Compute Node Kernel's process-window support
// (paper §III-B): the system-call interface that lets a process map a peer
// process's memory into its own address space, enabling the shared-address
// communication schemes.
//
// Mapping a peer buffer costs two system calls per TLB-slot-sized region
// (translate VA to PA on the owner, then map the PA locally). Each process
// has N TLB slots reserved for process windows (default three, one per peer
// in quad mode); mapping more distinct regions than slots evicts the least
// recently used mapping, which must then be re-established on next use.
// Repeatedly used buffers are looked up in a mapping cache, the optimization
// evaluated in the paper's Fig. 8.
package cnk

import (
	"fmt"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// BufferKey identifies an application buffer of a peer process for mapping
// purposes: the owner's local rank and an application-chosen buffer tag.
type BufferKey struct {
	OwnerLocalRank int
	Tag            uint64
}

// Process is the per-process process-window state.
type Process struct {
	node      *hw.Node
	localRank int

	// mapped holds the buffer regions currently resident in TLB slots, in
	// least-recently-used order (front = coldest).
	mapped []regionKey

	// Stats.
	Syscalls  int64 // total system calls issued
	MapCalls  int64 // Map invocations
	CacheHits int64 // Map invocations fully served by resident mappings
	Evictions int64 // TLB slot evictions
}

type regionKey struct {
	buf    BufferKey
	region int // index of the TLB-slot-sized region within the buffer
}

// NewProcess creates process-window state for the process with the given
// local rank on node n.
func NewProcess(n *hw.Node, localRank int) *Process {
	w := &Process{}
	Init(w, n, localRank)
	return w
}

// Init initializes caller-allocated process-window state in place: the hot
// rank-construction path (mpi.Rank embeds a Process by value). It allocates
// nothing — the TLB-slot list stays nil until the first mapping — and fully
// overwrites w, so reused rank slabs need no separate Reset.
//
//bgplint:hot
func Init(w *Process, n *hw.Node, localRank int) {
	*w = Process{node: n, localRank: localRank}
}

// SteadyState canonicalizes the process-window residue for steady-state
// iteration extrapolation (sim.Steady): the resident TLB-slot list in LRU
// order — buffer keys are iteration-stable (the measure loops reuse one
// buffer), so the raw keys hash directly — and the four statistics counters
// as monotone lanes, extrapolated rather than hashed.
func (w *Process) SteadyState(f *sim.FP) {
	f.I64(int64(len(w.mapped)))
	for i := range w.mapped {
		m := &w.mapped[i]
		f.I64(int64(m.buf.OwnerLocalRank))
		f.I64(int64(m.buf.Tag))
		f.I64(int64(m.region))
	}
	f.MonoI64(&w.Syscalls)
	f.MonoI64(&w.MapCalls)
	f.MonoI64(&w.CacheHits)
	f.MonoI64(&w.Evictions)
}

// Map establishes (or refreshes) the process windows needed for this process
// to access `bytes` bytes of the peer buffer identified by key, advancing p
// by the system-call cost of any regions that are not already resident. It
// returns the number of system calls issued.
//
// With the mapping cache disabled (Params.MapCacheEnabled == false), every
// call pays the full system-call cost again, reproducing the "nocaching"
// curve of Fig. 8.
func (w *Process) Map(p *sim.Proc, key BufferKey, bytes int) int {
	calls := w.mapRegions(key, bytes)
	if calls > 0 {
		p.Sleep(sim.Time(calls) * w.node.P.SyscallTime)
	}
	return calls
}

// MapThen is the explicit-resume form of Map: cont runs after the system-call
// cost (immediately when every region is already resident).
func (w *Process) MapThen(p *sim.Proc, key BufferKey, bytes int, cont func()) {
	calls := w.mapRegions(key, bytes)
	if calls > 0 {
		p.SleepThen(sim.Time(calls)*w.node.P.SyscallTime, cont)
		return
	}
	cont()
}

// mapRegions performs the TLB-slot bookkeeping of Map — residency checks,
// LRU updates, insertions, statistics — and returns the system calls issued,
// without consuming the virtual time they cost.
func (w *Process) mapRegions(key BufferKey, bytes int) int {
	if key.OwnerLocalRank == w.localRank {
		return 0 // own memory needs no window
	}
	w.MapCalls++
	params := w.node.P
	regions := 1
	if bytes > params.TLBSlotBytes {
		regions = (bytes + params.TLBSlotBytes - 1) / params.TLBSlotBytes
	}
	calls := 0
	hit := true
	for r := 0; r < regions; r++ {
		rk := regionKey{buf: key, region: r}
		if params.MapCacheEnabled && w.resident(rk) {
			w.touch(rk)
			continue
		}
		hit = false
		calls += params.MapSyscalls
		w.insert(rk)
	}
	if hit {
		w.CacheHits++
	}
	w.Syscalls += int64(calls)
	return calls
}

// resident reports whether rk occupies a TLB slot.
func (w *Process) resident(rk regionKey) bool {
	for _, m := range w.mapped {
		if m == rk {
			return true
		}
	}
	return false
}

// touch moves rk to the most-recently-used position.
func (w *Process) touch(rk regionKey) {
	for i, m := range w.mapped {
		if m == rk {
			copy(w.mapped[i:], w.mapped[i+1:])
			w.mapped[len(w.mapped)-1] = rk
			return
		}
	}
}

// insert adds rk, evicting the least recently used mapping if all TLB slots
// are occupied.
func (w *Process) insert(rk regionKey) {
	slots := w.node.P.TLBSlots
	if slots <= 0 {
		panic("cnk: process windows with zero TLB slots")
	}
	if len(w.mapped) >= slots {
		w.Evictions++
		copy(w.mapped, w.mapped[1:])
		w.mapped = w.mapped[:len(w.mapped)-1]
	}
	w.mapped = append(w.mapped, rk)
}

// Reset evicts every resident mapping and zeroes the statistics, returning
// the process-window state to its post-NewProcess condition. A reused
// partition (mpi.World.Reset) must start with cold TLB slots: a warm map
// cache would skip system calls a fresh world pays, changing virtual times.
func (w *Process) Reset() {
	w.mapped = w.mapped[:0]
	w.Syscalls, w.MapCalls, w.CacheHits, w.Evictions = 0, 0, 0, 0
}

// Resident returns the number of occupied TLB slots.
func (w *Process) Resident() int { return len(w.mapped) }

// String summarizes mapping statistics.
func (w *Process) String() string {
	return fmt.Sprintf("cnk.Process{lrank=%d maps=%d hits=%d syscalls=%d evictions=%d}",
		w.localRank, w.MapCalls, w.CacheHits, w.Syscalls, w.Evictions)
}
