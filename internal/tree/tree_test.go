package tree

import (
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

func newNet(t *testing.T, dx, dy, dz int) (*sim.Kernel, *Network, hw.Params) {
	t.Helper()
	k := sim.New()
	geom, err := geometry.NewTorus(dx, dy, dz)
	if err != nil {
		t.Fatal(err)
	}
	p := hw.DefaultParams()
	return k, New(k.RootShard(), geom, p), p
}

func TestDepthAndLatency(t *testing.T) {
	_, n, p := newNet(t, 8, 8, 16)
	if n.Depth() != 32 {
		t.Fatalf("depth = %d, want 32", n.Depth())
	}
	if n.Latency() != 32*p.TreeHopLatency {
		t.Fatalf("latency = %v", n.Latency())
	}
}

func TestOpWaitsForAllInjections(t *testing.T) {
	k, n, p := newNet(t, 2, 1, 1) // two nodes
	op := n.NewOp(256)
	var deliveredAt sim.Time = -1
	op.Delivered().OnFire(func() { deliveredAt = k.Now() })

	k.At(sim.Microsecond, op.Inject)
	k.At(5*sim.Microsecond, op.Inject) // straggler gates the combine
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := 5*sim.Microsecond + sim.TransferTime(256, p.TreeBps) + n.Latency()
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestOpOverInjectionPanics(t *testing.T) {
	k, n, _ := newNet(t, 1, 1, 1)
	op := n.NewOp(16)
	k.At(0, func() {
		op.Inject()
		defer func() {
			if recover() == nil {
				t.Error("extra injection did not panic")
			}
		}()
		op.Inject()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveredAtBeforeFirePanics(t *testing.T) {
	_, n, _ := newNet(t, 2, 1, 1)
	op := n.NewOp(16)
	defer func() {
		if recover() == nil {
			t.Error("DeliveredAt before delivery did not panic")
		}
	}()
	op.DeliveredAt()
}

func TestChunksPipelineOnChannel(t *testing.T) {
	// Two back-to-back chunk ops injected at time zero by a single node:
	// the second chunk's channel occupancy queues behind the first, so
	// deliveries are one wire time apart — the channel is the steady-state
	// bottleneck, not the latency.
	k, n, p := newNet(t, 1, 1, 1)
	payload := 16 << 10
	op1 := n.NewOp(payload)
	op2 := n.NewOp(payload)
	var d1, d2 sim.Time
	op1.Delivered().OnFire(func() { d1 = k.Now() })
	op2.Delivered().OnFire(func() { d2 = k.Now() })
	k.At(0, op1.Inject)
	k.At(0, op2.Inject)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	wire := p.TreeWireBytes(payload)
	per := sim.TransferTime(wire, p.TreeBps)
	if d2-d1 != per {
		t.Fatalf("delivery spacing %v, want %v", d2-d1, per)
	}
}

func TestTouchTime(t *testing.T) {
	_, n, p := newNet(t, 4, 4, 4)
	got := n.TouchTime(256)
	want := sim.TransferTime(256, p.TreeCoreTouchBps)
	if got != want {
		t.Fatalf("touch = %v, want %v", got, want)
	}
	// A core handling both injection and reception cannot keep up with the
	// tree: 2x touch time per payload must exceed the wire time.
	if 2*n.TouchTime(4096) <= sim.TransferTime(n.WireBytes(4096), p.TreeBps) {
		t.Fatal("single core could saturate inject+receive; contradicts paper §V-B")
	}
	// But a dedicated core for each direction can.
	if n.TouchTime(4096) > sim.TransferTime(n.WireBytes(4096), p.TreeBps) {
		t.Fatal("dedicated core cannot keep up with the tree; contradicts paper §V-B")
	}
}

func TestFullPartitionOp(t *testing.T) {
	k, n, _ := newNet(t, 4, 4, 2) // 32 nodes
	op := n.NewOp(1024)
	fired := false
	op.Delivered().OnFire(func() { fired = true })
	for i := 0; i < 32; i++ {
		k.At(sim.Time(i)*sim.Nanosecond, op.Inject)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("op never delivered")
	}
}
