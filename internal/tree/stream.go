// Sharded-mode broadcast streams: the collective network as a hub-shard
// service.
//
// On a sharded partition (hw.Config.Shards > 1) the per-chunk Op/Event
// protocol of tree.go cannot work: every node would wait on events owned by
// whichever shard created them, and the combine state would be mutated from
// many shards at once. Instead the network lives on the kernel's hub shard
// and each node opens a Stream per broadcast:
//
//   - Opening a stream creates a per-node delivered-chunk counter on the
//     node's shard and registers it with the hub (a PostCall at the opening
//     instant — hubs run after the peer phase of the same window, so the
//     registration is processed before any same-or-later-time injection).
//   - Inject posts a pointer-lean PostHook carrying (stream key, chunk) and
//     the payload size. The hub counts injections exactly like Op.Inject
//     and, on the last one, reserves the shared channel at the injection
//     instant — the hub's clock equals the posted time when the hook runs —
//     so the chunk's wire occupancy and delivery time reproduce the serial
//     protocol's arithmetic.
//   - Delivery is a PostAdd of one chunk to every member counter at the
//     delivery instant. Chunks of one stream complete in index order (each
//     node injects in order and the channel serializes), so "chunk i
//     delivered" is exactly "counter >= i+1", and waiters use WaitGE where
//     the serial protocol waits on the chunk's event.
//
// Delivery timing: at = reserve-done + traversal latency >= now + Latency(),
// and the kernel lookahead of a sharded machine is min(BarrierLatency,
// Latency()) (see machine.New), so the hub-to-peer post always satisfies the
// conservative contract.
package tree

import (
	"fmt"

	"bgpcoll/internal/sim"
)

// streamChunkBits encodes (stream key, chunk index) into one PostHook
// operand; a stream may carry up to 2^20 chunks.
const streamChunkBits = 20

// Stream is one node's handle on one sharded-mode broadcast: the injection
// side posts chunks to the hub, the reception side waits on the node-local
// delivered-chunk counter.
type Stream struct {
	net       *Network
	sh        *sim.Shard
	key       int64
	delivered *sim.Counter
}

// NewStream opens the per-node stream for the broadcast identified by key
// (the collective sequence number — identical on every node of one
// broadcast). sh is the opening node's shard; every node participating in
// the broadcast must open its stream before its first Inject.
func (n *Network) NewStream(sh *sim.Shard, key int64, chunks int) *Stream {
	s := &Stream{
		net:       n,
		sh:        sh,
		key:       key,
		delivered: sh.NewCounter(fmt.Sprintf("tree.bc%d.delivered", key)),
	}
	c := s.delivered
	sh.PostCall(sh.Now(), n.sh, func() { n.join(key, c, chunks) })
	return s
}

// Delivered returns the node-local counter of fully delivered chunks: chunk
// i has reached this node once the counter is at least i+1.
func (s *Stream) Delivered() *sim.Counter { return s.delivered }

// Inject records this node's contribution to one chunk at the caller's
// current instant (the caller has already consumed the injecting core's
// time), the sharded analog of Op.Inject.
//
//bgplint:hot
func (s *Stream) Inject(chunk, payload int) {
	s.sh.PostHook(s.sh.Now(), s.net.sh, s.net,
		s.key<<streamChunkBits|int64(chunk), int64(payload))
}

// hubBcast is the hub-side state of one broadcast: the member counters in
// registration (merge) order and the per-chunk injection counts.
type hubBcast struct {
	members []*sim.Counter
	chunks  int
	fired   int
	ops     []hubOp
}

type hubOp struct {
	injected int
}

// join registers one node's delivered counter; runs on the hub shard.
func (n *Network) join(key int64, delivered *sim.Counter, chunks int) {
	b := n.bcasts[key]
	if b == nil {
		if n.bcasts == nil {
			n.bcasts = make(map[int64]*hubBcast)
		}
		b = &hubBcast{chunks: chunks}
		n.bcasts[key] = b
	}
	if b.chunks != chunks {
		panic(fmt.Sprintf("tree: stream %d opened with %d chunks, joined with %d",
			key, b.chunks, chunks))
	}
	b.members = append(b.members, delivered)
}

// RunPost implements sim.PostHandler: one node's injection of one chunk,
// running on the hub shard at the injection instant. The last injection
// reserves the shared channel and posts the delivery to every member.
//
//bgplint:hot
func (n *Network) RunPost(a, b int64) {
	key, chunk := a>>streamChunkBits, int(a&(1<<streamChunkBits-1))
	bc := n.bcasts[key]
	if bc == nil {
		panic(fmt.Sprintf("tree: injection into unknown stream %d", key))
	}
	for chunk >= len(bc.ops) {
		bc.ops = append(bc.ops, hubOp{})
	}
	op := &bc.ops[chunk]
	op.injected++
	if op.injected > n.nodes {
		panic(fmt.Sprintf("tree: stream %d chunk %d: more injections than nodes", key, chunk))
	}
	if op.injected < n.nodes {
		return
	}
	done := n.pipe.Reserve(n.WireBytes(int(b)))
	at := done + n.Latency()
	for _, c := range bc.members {
		n.sh.PostAdd(at, c, 1)
	}
	bc.fired++
	if bc.fired == bc.chunks {
		delete(n.bcasts, key)
	}
}
