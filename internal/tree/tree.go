// Package tree models the BG/P collective network (paper §III-A): a tree
// topology spanning all compute nodes with an integer ALU at each hop,
// supporting reliable combine/broadcast at 850 MB/s.
//
// Broadcast on this network uses the hardware allreduce feature: the root
// injects data while every other node injects zeros into a global OR; the
// combined result is routed back down to all leaves. Two consequences shape
// the paper's algorithms and are modeled here:
//
//   - There is no DMA on this network: packet injection and reception are
//     performed by processor cores, so core time is consumed proportionally
//     to the data moved (charged by the callers via hw.Params.TreeCoreTouchBps).
//   - A combine for a chunk cannot complete until every node has injected
//     its contribution, and the result reaches the leaves one tree traversal
//     later.
//
// The shared channel is a single bandwidth pipe (one chunk occupies the whole
// tree for its wire time, up and down phases being hardware-pipelined); the
// traversal latency is proportional to the partition's tree depth.
package tree

import (
	"fmt"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// Network is the collective network of one partition.
type Network struct {
	sh    *sim.Shard
	p     hw.Params
	pipe  *sim.Pipe
	depth int
	nodes int
	ops   int64

	// bcasts is the hub-side combine state of sharded-mode broadcast
	// streams, keyed by the collective sequence number. Touched only under
	// the owning shard's token: by hub callbacks during a run, by the
	// controller in Reset.
	bcasts map[int64]*hubBcast
}

// New creates the collective network on the given shard: the root shard of a
// single-shard kernel, or the hub shard of a sharded partition, whose windows
// then serialize every combine the way the physical tree serializes chunks.
// The tree's traversal depth follows the physical wiring along the torus
// dimensions: DX+DY+DZ hops.
func New(sh *sim.Shard, geom geometry.Torus, p hw.Params) *Network {
	return &Network{
		sh:    sh,
		p:     p,
		pipe:  sh.NewPipe("tree.channel", p.TreeBps, 0),
		depth: geom.DX + geom.DY + geom.DZ,
		nodes: geom.Nodes(),
	}
}

// Reset rewinds the network's operation counter for a fresh run on a reused
// partition (machine.Machine.Reset). The counter names every Op and its
// delivered event ("tree.opN"), so a reused world must restart it at zero to
// reproduce a fresh world's names — deadlock reports and traces compare
// them. The channel pipe itself is rewound by the kernel. Hub-side stream
// state is dropped too: an interrupted run may leave partially combined
// chunks behind.
func (n *Network) Reset() {
	n.ops = 0
	clear(n.bcasts)
}

// Depth returns the traversal hop count of the tree.
func (n *Network) Depth() int { return n.depth }

// Latency returns the full traversal latency: depth x per-hop latency.
func (n *Network) Latency() sim.Time { return sim.Time(n.depth) * n.p.TreeHopLatency }

// Nodes returns the participating node count.
func (n *Network) Nodes() int { return n.nodes }

// WireBytes returns the on-wire size of a payload on this network.
func (n *Network) WireBytes(payload int) int { return n.p.TreeWireBytes(payload) }

// TouchTime returns the core time needed to inject or receive a payload of
// the given size (packet handling is done by cores on this network).
func (n *Network) TouchTime(payload int) sim.Time {
	return sim.TransferTime(n.WireBytes(payload), n.p.TreeCoreTouchBps)
}

// Op is one chunk's global combine: every node injects once, then the
// combined result is delivered to all nodes. Create one Op per chunk; the
// per-chunk Ops of a pipelined stream share the channel in order.
type Op struct {
	net       *Network
	name      string
	wire      int
	expected  int
	injected  int
	delivered *sim.Event
	at        sim.Time
}

// NewOp creates a combine operation for one chunk of the given payload size.
func (n *Network) NewOp(payload int) *Op {
	n.ops++
	return &Op{
		net:       n,
		name:      fmt.Sprintf("tree.op%d", n.ops),
		wire:      n.WireBytes(payload),
		expected:  n.nodes,
		delivered: n.sh.NewEvent(fmt.Sprintf("tree.op%d.delivered", n.ops)),
	}
}

// Inject records one node's contribution as complete at the current virtual
// time (the caller has already consumed the injecting core's time). When the
// last node injects, the chunk reserves the tree channel and the result is
// delivered one traversal latency later.
func (op *Op) Inject() {
	op.injected++
	if op.injected > op.expected {
		panic(op.name + ": more injections than nodes")
	}
	if op.injected < op.expected {
		return
	}
	done := op.net.pipe.Reserve(op.wire)
	op.at = done + op.net.Latency()
	op.net.sh.At(op.at, op.delivered.Fire)
}

// Delivered returns the event fired when the combined result has reached all
// leaves.
func (op *Op) Delivered() *sim.Event { return op.delivered }

// DeliveredAt returns the delivery time; valid once Delivered has fired.
func (op *Op) DeliveredAt() sim.Time {
	if !op.delivered.Fired() {
		panic(op.name + ": DeliveredAt before delivery")
	}
	return op.at
}

// Stats exposes the tree channel's utilization counters.
func (n *Network) Stats() (bytes int64, busy sim.Time, transfers int64) {
	return n.pipe.Stats()
}
