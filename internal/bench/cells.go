// Cell-level experiment decomposition. Every figure of the paper is a grid
// of (series, size) cells, and every cell is one self-contained deterministic
// kernel run whose virtual-time answer depends only on (hw.Config, algorithm,
// payload, iterations) — never on the execution vehicle or on what ran
// before it. This file makes that grid a first-class, externally drivable
// unit: the serving layer (internal/serve) canonicalizes a Cell into a cache
// key, answers repeats from its content-addressed store, and runs misses
// through Cell.Run on its worker pool; the in-process figure runners below
// (Fig6..Table1) are now thin wrappers over the same plans.
package bench

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// CellKind selects the collective a cell measures.
type CellKind uint8

const (
	// CellBcast measures the Fig. 5 broadcast micro-benchmark; Arg is the
	// message size in bytes.
	CellBcast CellKind = iota
	// CellAllreduce measures the allreduce micro-benchmark; Arg is the
	// operand length in doubles (the Table I axis).
	CellAllreduce
)

// String names the kind for canonical cache keys and diagnostics.
func (k CellKind) String() string {
	switch k {
	case CellBcast:
		return "bcast"
	case CellAllreduce:
		return "allreduce"
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// Cell is one independently runnable, independently cacheable measurement:
// the micro-benchmark loop for one (partition, algorithm, payload,
// iterations) tuple. Two cells with equal fields produce bit-identical
// virtual times forever — the property the serving layer's cache is built
// on. Experiment and Series are labels (which figure/curve the cell belongs
// to); they never influence the measured value.
type Cell struct {
	Experiment string // experiment id ("fig7", "table1"; "adhoc" for free-form requests)
	Series     string // curve label within the experiment
	Cfg        hw.Config
	Kind       CellKind
	Algo       string
	Arg        int // bytes (bcast) or doubles (allreduce)
	Iters      int
}

// Bytes returns the payload size in bytes (doubles are 8 bytes each).
func (c Cell) Bytes() int {
	if c.Kind == CellAllreduce {
		return c.Arg * data.Float64Len
	}
	return c.Arg
}

// Run measures the cell under the given execution vehicle. The world comes
// from the pool (worldpool.go), so repeated misses on one partition shape
// pay construction once; the virtual-time result is vehicle-independent.
func (c Cell) Run(mode RunMode) (sim.Time, error) {
	switch c.Kind {
	case CellBcast:
		return MeasureBcastRun(c.Cfg, c.Algo, c.Arg, c.Iters, mode)
	case CellAllreduce:
		return MeasureAllreduceRun(c.Cfg, c.Algo, c.Arg, c.Iters, mode)
	}
	return 0, fmt.Errorf("bench: unknown cell kind %d", c.Kind)
}

// FigurePlan is one figure decomposed into its cells before anything runs:
// the figure's metadata (Series carry labels only, no values), the row-major
// cell grid (cell i covers series i/len(Sizes) at size index i%len(Sizes)),
// and the figure's value conversion (latency vs bandwidth).
type FigurePlan struct {
	Fig   Figure
	Cells []Cell
	value func(c Cell, t sim.Time) float64
}

// Value converts one cell's measured virtual time into the figure's y-axis
// metric. The conversion is a pure function, so cached virtual times rebuild
// byte-identical figures.
func (p *FigurePlan) Value(c Cell, t sim.Time) float64 { return p.value(c, t) }

// Assemble builds the finished figure from per-cell virtual times in plan
// cell order.
func (p *FigurePlan) Assemble(times []sim.Time) *Figure {
	fig := p.Fig
	ns := len(fig.Sizes)
	fig.Series = make([]Series, len(p.Fig.Series))
	for r := range fig.Series {
		fig.Series[r] = Series{Label: p.Fig.Series[r].Label, Values: make([]float64, ns)}
		for s := 0; s < ns; s++ {
			i := r*ns + s
			fig.Series[r].Values[s] = p.value(p.Cells[i], times[i])
		}
	}
	return &fig
}

// planners maps servable experiment ids to their plan builders, in paper
// order. figS and the ablations are absent deliberately: the capacity sweep
// measures construction cost itself (a cell cache would measure nothing) and
// the ablations mutate tunables mid-run, so neither decomposes into
// independently cacheable cells.
func planners() []struct {
	ID   string
	Plan func(Options) (*FigurePlan, error)
} {
	return []struct {
		ID   string
		Plan func(Options) (*FigurePlan, error)
	}{
		{"fig6", planFig6},
		{"fig7", planFig7},
		{"fig8", planFig8},
		{"fig9", planFig9},
		{"fig10", planFig10},
		{"table1", planTable1},
	}
}

// PlannableExperiments lists the experiment ids PlanExperiment accepts.
func PlannableExperiments() []string {
	ps := planners()
	ids := make([]string, len(ps))
	for i, p := range ps {
		ids[i] = p.ID
	}
	return ids
}

// PlanExperiment decomposes one named experiment into its cell grid without
// running anything. Unknown or non-decomposable ids (figs, ablations) error.
func PlanExperiment(id string, o Options) (*FigurePlan, error) {
	for _, p := range planners() {
		if p.ID == id {
			return p.Plan(o)
		}
	}
	return nil, fmt.Errorf("bench: experiment %q is not cell-decomposable (servable: %v)", id, PlannableExperiments())
}

// runPlan executes a plan's cells across the sweep worker pool and assembles
// the figure; values land in fixed (series, size) slots regardless of
// completion order.
func runPlan(o Options, p *FigurePlan) (*Figure, error) {
	mode := RunMode{Reference: o.Reference, NoShard: o.NoShard, NoExtrap: o.NoExtrap}
	times := make([]sim.Time, len(p.Cells))
	err := parallelEach(o.Workers, len(p.Cells), func(i int) error {
		t, err := p.Cells[i].Run(mode)
		if err != nil {
			return fmt.Errorf("%s @ %s: %w", p.Cells[i].Series, SizeLabel(p.Cells[i].Bytes()), err)
		}
		times[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p.Assemble(times), nil
}
