package bench

import (
	"runtime"
	"testing"
)

// TestHeapSamplerJoins is the leak check for the sampler shutdown protocol:
// after Peak returns, the sampling goroutine has been joined, so repeated
// start/stop cycles leave the process goroutine count where it started. A
// signal-without-join bug shows up here as +cycles goroutines.
func TestHeapSamplerJoins(t *testing.T) {
	const cycles = 50
	before := runtime.NumGoroutine()
	for i := 0; i < cycles; i++ {
		s := StartHeapSampler()
		first := s.Peak()
		if again := s.Peak(); again != first {
			t.Fatalf("Peak not idempotent: first %d, repeat %d", first, again)
		}
		if first == 0 {
			t.Fatal("Peak reported a zero heap; the final fold-in reading is missing")
		}
	}
	// Peak joins on s.done, but the goroutine closes that channel in a defer
	// and may still be unwinding when Peak returns; yield until the runtime
	// has retired it rather than sleeping.
	for i := 0; i < 10000 && runtime.NumGoroutine() > before; i++ {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked across %d sampler cycles: %d before, %d after", cycles, before, after)
	}
}
