//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build. The
// capacity tests skip under it: instrumentation multiplies their footprint
// and wall time without adding coverage the small-geometry pool and
// equivalence tests (which do run under -race) lack.
const raceEnabled = false
