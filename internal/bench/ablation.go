package bench

import (
	"fmt"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// Ablation studies for the design choices DESIGN.md calls out. They are not
// figures from the paper; they quantify why the paper's parameters are what
// they are.

// ablationMsg is the message size the ablations probe (the paper's headline
// large-message point).
const ablationMsg = 2 << 20

// measureTorusBcast is a helper running one quad torus broadcast on a pooled
// world (worldpool.go).
func measureTorusBcast(cfg hw.Config, algo string, colors int) (sim.Time, error) {
	w, err := leaseWorld(cfg)
	if err != nil {
		return 0, err
	}
	w.Tunables.Bcast = algo
	w.Tunables.TorusColors = colors
	var worst sim.Time
	_, err = w.Run(func(r *mpi.Rank) {
		buf := r.NewBuf(ablationMsg)
		r.Barrier()
		start := r.Now()
		r.Bcast(buf, 0)
		if d := r.Now() - start; d > worst {
			worst = d
		}
	})
	releaseWorld(cfg, w, err)
	return worst, err
}

// AblationColors sweeps the number of edge-disjoint routes used by the
// torus shared-address broadcast: bandwidth should scale nearly linearly
// with the color count until another resource saturates, justifying the
// six-color design.
func AblationColors(o Options) (*Figure, error) {
	cfg, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	counts := []int{1, 2, 3, 4, 5, 6}
	if o.Quick {
		counts = []int{1, 3, 6}
	}
	fig := &Figure{
		ID:     "AblationColors",
		Title:  fmt.Sprintf("Torus+Shaddr 2M broadcast vs color count, %d ranks", cfg.Ranks()),
		XLabel: "colors",
		YLabel: "bandwidth (MB/s)",
		Ranks:  cfg.Ranks(),
		Iters:  1,
		Sizes:  counts,
	}
	s := Series{Label: "Torus+Shaddr(2M)", Values: make([]float64, len(counts))}
	err = parallelEach(o.Workers, len(counts), func(i int) error {
		t, err := measureTorusBcast(cfg, mpi.BcastTorusShaddr, counts[i])
		if err != nil {
			return err
		}
		s.Values[i] = BandwidthMBs(ablationMsg, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationChunk sweeps the software pipeline width (the paper's Pwidth):
// small chunks expose per-chunk overheads, huge chunks stall the
// network/intra-node overlap the message counters exist to create.
func AblationChunk(o Options) (*Figure, error) {
	widths := []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	if o.Quick {
		widths = []int{2 << 10, 16 << 10, 256 << 10}
	}
	base, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "AblationChunk",
		Title:  fmt.Sprintf("Torus+Shaddr 2M broadcast vs pipeline width, %d ranks", base.Ranks()),
		XLabel: "Pwidth",
		YLabel: "bandwidth (MB/s)",
		Ranks:  base.Ranks(),
		Iters:  1,
		Sizes:  widths,
	}
	s := Series{Label: "Torus+Shaddr(2M)", Values: make([]float64, len(widths))}
	err = parallelEach(o.Workers, len(widths), func(i int) error {
		cfg := base
		cfg.Params.MinChunk = widths[i]
		cfg.Params.MaxChunk = widths[i]
		t, err := measureTorusBcast(cfg, mpi.BcastTorusShaddr, 0)
		if err != nil {
			return err
		}
		s.Values[i] = BandwidthMBs(ablationMsg, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationFIFO sweeps the Bcast FIFO capacity (slot count at the default
// slot size): a shallow FIFO back-pressures the master's enqueue against
// the slowest reader, a deep one approaches the shared-address pipeline.
func AblationFIFO(o Options) (*Figure, error) {
	slotCounts := []int{2, 4, 8, 16, 32, 64}
	if o.Quick {
		slotCounts = []int{2, 16, 64}
	}
	base, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "AblationFIFO",
		Title:  fmt.Sprintf("Torus+FIFO 2M broadcast vs FIFO depth (%d B slots), %d ranks", base.Params.FIFOSlotBytes, base.Ranks()),
		XLabel: "slots",
		YLabel: "bandwidth (MB/s)",
		Ranks:  base.Ranks(),
		Iters:  1,
		Sizes:  slotCounts,
	}
	s := Series{Label: "Torus+FIFO(2M)", Values: make([]float64, len(slotCounts))}
	err = parallelEach(o.Workers, len(slotCounts), func(i int) error {
		cfg := base
		cfg.Params.FIFOSlots = slotCounts[i]
		t, err := measureTorusBcast(cfg, mpi.BcastTorusFIFO, 0)
		if err != nil {
			return err
		}
		s.Values[i] = BandwidthMBs(ablationMsg, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Ablations lists the ablation experiments.
func Ablations() []namedExperiment {
	return []namedExperiment{
		{"ablation.colors", AblationColors},
		{"ablation.chunk", AblationChunk},
		{"ablation.fifo", AblationFIFO},
	}
}
