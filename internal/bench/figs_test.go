package bench

import (
	"os"
	"runtime"
	"testing"
	"time"

	"bgpcoll/internal/analytic"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// scaleBcastTolerance bounds how far above the analytic lower bound the
// simulated small-message broadcast may land in the figS sweep: the bound
// models only the tree channel and the rank-2 double copy, while the
// simulator adds the software path the paper measures (window system calls,
// DMA descriptor handling, polling) — at 8 KB those overheads are the same
// order as the stream time. DESIGN.md §14 states this tolerance.
const scaleBcastTolerance = 4.0

// measureScaleOps runs the figS pair of measurements on a fresh-or-grown
// world: the small-message shared-address tree broadcast, then (after a
// reset) the barrier.
func measureScaleOps(t *testing.T, w *mpi.World, iters int) (bcast, barrier sim.Time) {
	t.Helper()
	bcast, err := measureBcastOn(w, mpi.BcastTreeShaddr, ScaleBcastMsg, iters, RunMode{})
	if err != nil {
		t.Fatalf("bcast: %v", err)
	}
	w.Reset()
	barrier, err = measureBarrierOn(w, iters, RunMode{})
	if err != nil {
		t.Fatalf("barrier: %v", err)
	}
	w.Reset()
	return bcast, barrier
}

// TestScaleMatchesAnalytic cross-validates the figS measurements against the
// closed-form models at the two smallest sweep points: the barrier must
// equal the interrupt-network latency exactly (every rank reaches the timed
// barrier at the same instant), and the broadcast must land at or above the
// analytic bound but within the stated tolerance of it.
func TestScaleMatchesAnalytic(t *testing.T) {
	for _, pt := range scalePoints(true)[:2] {
		cfg := scaleConfig(pt)
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bcast, barrier := measureScaleOps(t, w, 2)
		if want := analytic.TreeBarrier(cfg).T; barrier != want {
			t.Errorf("%d ranks: barrier = %v, want exactly %v (%s)",
				pt.ranks, barrier, want, analytic.TreeBarrier(cfg).Bottleneck)
		}
		bound, err := analytic.BcastBound(cfg, mpi.BcastTreeShaddr, ScaleBcastMsg)
		if err != nil {
			t.Fatal(err)
		}
		if bcast < bound.T {
			t.Errorf("%d ranks: bcast %v beats the %s bound %v", pt.ranks, bcast, bound.Bottleneck, bound.T)
		}
		if lim := sim.Time(scaleBcastTolerance * float64(bound.T)); bcast > lim {
			t.Errorf("%d ranks: bcast %v exceeds %gx the analytic bound %v",
				pt.ranks, bcast, scaleBcastTolerance, bound.T)
		}
	}
}

// TestGrownWorldMatchesFresh pins Reconfigure's contract: a world grown (or
// shrunk) to a new configuration measures bit-identically to one built fresh
// for it, even after the donor has been dirtied by a full measurement run.
func TestGrownWorldMatchesFresh(t *testing.T) {
	small := scaleConfig(scalePoints(true)[0]) // 256 ranks
	big := scaleConfig(scalePoints(true)[1])   // 4096 ranks

	freshSmall, err := mpi.NewWorld(small)
	if err != nil {
		t.Fatal(err)
	}
	smallBcast, smallBarrier := measureScaleOps(t, freshSmall, 2)
	freshBig, err := mpi.NewWorld(big)
	if err != nil {
		t.Fatal(err)
	}
	bigBcast, bigBarrier := measureScaleOps(t, freshBig, 2)

	// Grow: dirty a small world with a run, then reconfigure it up.
	grown, err := mpi.NewWorld(small)
	if err != nil {
		t.Fatal(err)
	}
	measureScaleOps(t, grown, 2)
	if err := grown.Reconfigure(big); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if b, br := measureScaleOps(t, grown, 2); b != bigBcast || br != bigBarrier {
		t.Fatalf("grown world measured (%v, %v), fresh (%v, %v)", b, br, bigBcast, bigBarrier)
	}

	// Shrink: the same world back down; the slab tail must be fully cold.
	if err := grown.Reconfigure(small); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if b, br := measureScaleOps(t, grown, 2); b != smallBcast || br != smallBarrier {
		t.Fatalf("shrunk world measured (%v, %v), fresh (%v, %v)", b, br, smallBcast, smallBarrier)
	}
}

// TestParallelConstructionMatchesSerial pins the build.go determinism
// argument end to end: a world built with one construction worker and a
// world built with many measure bit-identical virtual times. The 16,384-rank
// point is the smallest sweep geometry whose node slab clears the
// per-worker block minimum, so the parallel path genuinely fans out.
func TestParallelConstructionMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("16K-rank construction in -short mode")
	}
	cfg := scaleConfig(scalePoints(false)[3]) // 16384 ranks, 4096 nodes
	defer func(old int) { machine.BuildWorkers = old }(machine.BuildWorkers)

	machine.BuildWorkers = 1
	serial, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sBcast, sBarrier := measureScaleOps(t, serial, 1)

	machine.BuildWorkers = 8
	par, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pBcast, pBarrier := measureScaleOps(t, par, 1)

	if sBcast != pBcast || sBarrier != pBarrier {
		t.Fatalf("parallel construction measured (%v, %v), serial (%v, %v)",
			pBcast, pBarrier, sBcast, sBarrier)
	}
}

// capacityBudgetBytesPerRank is the committed per-rank footprint ceiling at
// the 65,536-rank capacity point: 40% under the 464 B/rank the pre-flyweight
// representation cost (the flyweight layout measures ~201 B/rank; the slack
// absorbs allocator and geometry noise without letting the old layout back
// in).
const capacityBudgetBytesPerRank = 278.0

// TestCapacitySmoke65k is the CI capacity gate: a 65,536-rank world must
// construct, fit the per-rank budget, and complete a small broadcast and a
// barrier. CI runs it under GOMEMLIMIT so a footprint regression fails fast
// instead of thrashing.
func TestCapacitySmoke65k(t *testing.T) {
	if testing.Short() {
		t.Skip("65K-rank world in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates the footprint this test budgets")
	}
	cfg := scaleConfig(scalePoints(true)[2]) // 65536 ranks
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	construct := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	perRank := float64(after.HeapInuse-before.HeapInuse) / float64(cfg.Ranks())
	t.Logf("65536 ranks: construct=%v perRank=%.1fB", construct, perRank)
	if perRank > capacityBudgetBytesPerRank {
		t.Fatalf("per-rank footprint %.1f B exceeds the %.0f B budget", perRank, capacityBudgetBytesPerRank)
	}
	_, barrier := measureScaleOps(t, w, 1)
	if want := analytic.TreeBarrier(cfg).T; barrier != want {
		t.Fatalf("barrier = %v, want %v", barrier, want)
	}
}

// TestRackScale1M is the headline capacity claim: a 1,048,576-rank world
// constructs and completes a small broadcast plus a barrier. It allocates
// several hundred MB and runs for tens of seconds, so it only runs when
// asked for by name:
//
//	BGPCOLL_RACK_SCALE=1 go test ./internal/bench/ -run TestRackScale1M -v
func TestRackScale1M(t *testing.T) {
	if os.Getenv("BGPCOLL_RACK_SCALE") == "" {
		t.Skip("set BGPCOLL_RACK_SCALE=1 to run the 1M-rank capacity test")
	}
	if testing.Short() {
		t.Skip("1M-rank world in -short mode")
	}
	pts := scalePoints(false)
	cfg := scaleConfig(pts[len(pts)-1]) // 1048576 ranks
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	construct := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	perRank := float64(after.HeapInuse-before.HeapInuse) / float64(cfg.Ranks())
	bcast, barrier := measureScaleOps(t, w, 1)
	t.Logf("1048576 ranks: construct=%v perRank=%.1fB bcast=%v barrier=%v",
		construct, perRank, bcast, barrier)
	if want := analytic.TreeBarrier(cfg).T; barrier != want {
		t.Fatalf("barrier = %v, want %v", barrier, want)
	}
	if bcast <= 0 {
		t.Fatal("bcast did not advance virtual time")
	}
}
