package bench

import (
	"errors"
	"fmt"
	"testing"

	"bgpcoll/internal/mpi"
)

func TestParallelEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 37
		hit := make([]int, n)
		err := parallelEach(workers, n, func(i int) error {
			hit[i]++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range hit {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelEachZeroJobs(t *testing.T) {
	if err := parallelEach(4, 0, func(int) error { return errors.New("ran") }); err != nil {
		t.Fatal(err)
	}
}

// parallelEach must report the same error a serial loop stopping at the first
// failure would: the lowest-index one, regardless of completion order.
func TestParallelEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := parallelEach(workers, 20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("workers=%d: err = %v, want job 7's", workers, err)
		}
	}
}

// TestParallelSweepDeterminism is the determinism argument for the sweep
// runner, executed: a grid of (algorithm, size) cells measured serially and
// with a contended pool must produce bit-identical values, because every
// cell is a self-contained kernel run.
func TestParallelSweepDeterminism(t *testing.T) {
	cfg := tinyConfig()
	rows := []bcastRow{
		{"shaddr", cfg, mpi.BcastTorusShaddr},
		{"fifo", cfg, mpi.BcastTorusFIFO},
	}
	sizes := []int{4 << 10, 64 << 10}
	grid := func(workers int) []Series {
		p := bcastPlan("adhoc", Figure{Sizes: sizes}, rows, 1, bandwidth)
		fig, err := runPlan(Options{Workers: workers}, p)
		if err != nil {
			t.Fatal(err)
		}
		return fig.Series
	}
	serial := grid(1)
	parallel := grid(8)
	for r := range serial {
		for i := range serial[r].Values {
			if serial[r].Values[i] != parallel[r].Values[i] {
				t.Fatalf("cell (%s, %d): serial %v != parallel %v",
					serial[r].Label, sizes[i], serial[r].Values[i], parallel[r].Values[i])
			}
		}
	}
}
