// Steady-state iteration extrapolation for the measure loops (the bench
// side of internal/sim/steady.go): post-warmup iterations of the Fig. 5
// loop are periodic in a deterministic simulator — usually a fixpoint,
// sometimes a short cycle when a collective rotates pipelined chunks — so
// once a boundary fingerprint matches one from a few boundaries back, the
// remaining whole periods are replayed analytically: the clock jumps, the
// per-rank elapsed/iteration accumulators grow by their per-period deltas,
// and the final partial period runs live to land the world in the exact
// state full execution reaches.
package bench

import (
	"sync/atomic"
	"time"

	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// extrapolator coordinates one measurement run's steady-state detection. It
// observes every rank's barrier-release instant (measureLoop calls boundary
// at the top of its after-barrier continuation) and fingerprints the world
// exactly once per iteration — at the first rank's release, the instant the
// loop state is most uniform: the remaining ranks' continuations are queued
// same-instant entries and every loop's counters agree.
type extrapolator struct {
	det   *sim.Steady
	iters int
	loops []*measureLoop
	calls int
	k     int // boundaries seen; boundary k starts iteration k (1-based)
	done  bool
}

// newExtrapolator returns a controller for one measurement on w, or nil when
// extrapolation cannot apply: the reference mode asked for full execution,
// the loop is too short to amortize a fingerprint, the kernel is sharded, or
// a trace is attached (extrapolated iterations emit no trace records, so
// tracing runs execute fully).
//
// The iteration floor is an economics gate, not a correctness one. A
// detection needs two matching boundaries, and the first iteration is warmed
// up differently (cold window caches) so the earliest realistic match is
// boundary 3 — at iters == 3 that leaves zero iterations to skip while every
// boundary still pays a full-world fingerprint, a guaranteed net loss at
// rack scale. iters >= 4 is the first count where the common
// warmup-then-periodic shape profits; short default loops execute fully and
// the -iters-scale fidelity mode clears the gate everywhere.
func newExtrapolator(w *mpi.World, iters int, noExtrap bool) *extrapolator {
	if noExtrap || iters < 4 || w.M.K.Sharded() || w.M.Trace != nil {
		return nil
	}
	x := &extrapolator{iters: iters}
	x.det = sim.NewSteady(w.M.K, func(f *sim.FP) {
		w.SteadyState(f)
		f.I64(int64(len(x.loops)))
		for _, l := range x.loops {
			f.MonoTime(&l.elapsed)
			f.MonoInt(&l.i)
		}
	})
	return x
}

// attach registers one rank's measure loop. Loops are registered in
// RunProgram spawn order — deterministic — and all of them exist before the
// first barrier releases, so the lane layout is fixed by the first capture.
func (x *extrapolator) attach(l *measureLoop) {
	if x == nil {
		return
	}
	l.ext = x
	x.loops = append(x.loops, l)
}

// boundary runs at the top of every rank's after-barrier continuation. The
// first release of each iteration's barrier — call counts are per-iteration
// uniform, so that is every len(loops)-th call — captures a fingerprint;
// when it matches a capture Period() boundaries back, all remaining whole
// periods collapse into one Forward and the in-flight iteration leads the
// final (possibly partial) period, which executes live.
//
//bgplint:hot
func (x *extrapolator) boundary() {
	if x.done {
		return
	}
	x.calls++
	if (x.calls-1)%len(x.loops) != 0 {
		return
	}
	if x.det.GaveUp() {
		x.done = true
		return
	}
	x.k++
	start := time.Now() //bgplint:allow simdeterminism -- wall-clock fingerprint cost feeds the serve histogram; never read back into scheduling
	steady := x.det.Capture()
	observeFingerprint(time.Since(start)) //bgplint:allow simdeterminism -- wall-clock fingerprint cost feeds the serve histogram; never read back into scheduling
	if !steady {
		return
	}
	p := x.det.Period()
	if skip := int64(x.iters-x.k) / int64(p) * int64(p); skip > 0 {
		x.det.Forward(skip / int64(p))
		extrapolatedIters.Add(skip)
	}
	x.done = true
}

// extrapolatedIters counts iterations skipped by extrapolation across the
// process, for the serve /metrics endpoint.
var extrapolatedIters atomic.Int64

// ExtrapolatedIters returns the cumulative number of measure-loop iterations
// that were extrapolated instead of executed.
func ExtrapolatedIters() int64 { return extrapolatedIters.Load() }

// fingerprintObserver, when set, receives the wall-clock duration of every
// fingerprint capture (the serve layer feeds its latency histogram with it).
var fingerprintObserver atomic.Value // func(time.Duration)

// SetFingerprintObserver installs fn as the process-wide fingerprint-time
// observer. Pass nil-safe fast functions only: it runs inside the measure
// loop's barrier continuation.
func SetFingerprintObserver(fn func(time.Duration)) {
	fingerprintObserver.Store(fn)
}

func observeFingerprint(d time.Duration) {
	if fn, ok := fingerprintObserver.Load().(func(time.Duration)); ok && fn != nil {
		fn(d)
	}
}
