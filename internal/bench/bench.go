// Package bench regenerates every figure and table of the paper's
// performance study (§VI) on the simulated machine: the micro-benchmark loop
// of Fig. 5 drives the collective under test, and each experiment sweeps the
// paper's message sizes and algorithm set.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// Options control experiment scale and effort.
type Options struct {
	// Racks selects the partition for the collective-network experiments:
	// 1 or 2 (the paper used 2 = 8192 ranks). Zero means each experiment's
	// default.
	Racks int
	// Iters is the micro-benchmark repetition count (Fig. 5's ITERS).
	// Zero means each experiment's default.
	Iters int
	// Quick trims the message-size sweeps for fast smoke runs.
	Quick bool
	// Workers bounds the sweep runner's pool: every (series, size) cell is
	// an independent deterministic kernel run, fanned across this many
	// goroutines and merged in fixed cell order. 0 means GOMAXPROCS; 1
	// forces the serial path.
	Workers int
	// Reference runs every kernel in noProgram reference mode: rank bodies
	// execute on pooled goroutines instead of as inline programs. Virtual
	// times are bit-identical either way; only wall-clock differs.
	Reference bool
	// Shards splits each collective-network partition into this many kernel
	// shards whose epochs run in parallel (0 or 1 = classic single-shard
	// runs). Virtual times are bit-identical either way; only wall-clock
	// differs. The torus experiments ignore it: their collectives coordinate
	// through job-wide shared state and are not shard-capable.
	Shards int
	// NoShard runs sharded kernels in the sequential-epoch reference vehicle
	// (same window/mailbox algorithm, no goroutines). Meaningful only with
	// Shards > 1; exists for overhead attribution and race-free baselines.
	NoShard bool
	// NoExtrap disables steady-state iteration extrapolation: every measure
	// loop executes all of its iterations literally (the reference mode the
	// extrapolation equivalence gates compare against). Results are
	// bit-identical either way; only wall-clock differs.
	NoExtrap bool
	// ItersScale multiplies every experiment's resolved iteration count
	// (values < 2 mean no scaling): the high-fidelity mode matching the
	// paper-style hundreds-of-repetitions methodology, affordable because
	// post-steady iterations are extrapolated rather than executed.
	ItersScale int
}

func (o Options) iters(def int) int {
	it := o.Iters
	if it <= 0 {
		it = def
	}
	if o.ItersScale > 1 {
		it *= o.ItersScale
	}
	return it
}

// Figure is one reproduced figure or table: a set of series over message
// sizes.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Ranks and Iters are the resolved experiment scale — the values actually
	// used after per-experiment defaults are applied to Options — so a run
	// report stays attributable without re-deriving option defaults. For
	// scaling sweeps Ranks is the largest partition measured.
	Ranks  int
	Iters  int
	Sizes  []int
	Series []Series
}

// Series is one curve: a label and one value per Figure.Sizes entry.
type Series struct {
	Label  string
	Values []float64
}

// CSV renders the figure as comma-separated values for plotting.
func (f *Figure) CSV(w io.Writer) {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, f.XLabel)
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	fmt.Fprintf(w, "# %s: %s (%s)\n", f.ID, f.Title, f.YLabel)
	fmt.Fprintln(w, strings.Join(cols, ","))
	for i, size := range f.Sizes {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, fmt.Sprintf("%d", size))
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.3f", s.Values[i]))
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
	fmt.Fprintln(w)
}

// Print renders the figure as an aligned text table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "(x: %s, y: %s)\n", f.XLabel, f.YLabel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	head := make([]string, 0, len(f.Series)+1)
	head = append(head, f.XLabel)
	for _, s := range f.Series {
		head = append(head, s.Label)
	}
	fmt.Fprintln(tw, strings.Join(head, "\t"))
	for i, size := range f.Sizes {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, SizeLabel(size))
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.2f", s.Values[i]))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Value returns the measurement for (series label, size), for EXPERIMENTS
// cross-checks.
func (f *Figure) Value(label string, size int) (float64, bool) {
	si := -1
	for i, s := range f.Sizes {
		if s == size {
			si = i
		}
	}
	if si < 0 {
		return 0, false
	}
	for _, s := range f.Series {
		if s.Label == label {
			return s.Values[si], true
		}
	}
	return 0, false
}

// SizeLabel formats a byte count the way the paper's axes do.
func SizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// MeasureBcast runs the Fig. 5 micro-benchmark for one broadcast
// configuration and returns the average per-iteration time (the slowest
// rank's, as a wall-clock observer would see).
//
//	elapsed_time = 0
//	for i < ITERS { MPI_Barrier; start = MPI_Wtime; MPI_Bcast; elapsed += ... }
//	elapsed_time /= ITERS
func MeasureBcast(cfg hw.Config, algo string, msg, iters int) (sim.Time, error) {
	return MeasureBcastRun(cfg, algo, msg, iters, RunMode{})
}

// RunMode selects the execution vehicle of one measurement. Every vehicle
// produces bit-identical virtual times; the fields trade wall-clock for
// reference simplicity and exist for overhead attribution and determinism
// cross-checks.
type RunMode struct {
	// Reference puts the kernel in noProgram mode: rank bodies run on
	// pooled goroutines instead of as inline programs.
	Reference bool
	// NoShard runs a sharded kernel's epochs sequentially on the calling
	// goroutine instead of on per-shard workers. Ignored on single-shard
	// configs.
	NoShard bool
	// NoExtrap runs every measure-loop iteration literally instead of
	// extrapolating from the detected steady state (see extrap.go).
	NoExtrap bool
}

// MeasureBcastMode is MeasureBcast with an explicit reference toggle, kept
// for older callers; MeasureBcastRun is the full-mode form.
func MeasureBcastMode(cfg hw.Config, algo string, msg, iters int, reference bool) (sim.Time, error) {
	return MeasureBcastRun(cfg, algo, msg, iters, RunMode{Reference: reference})
}

// MeasureBcastRun is MeasureBcast with an explicit execution vehicle. The
// world comes from the pool (worldpool.go) and returns to it reset, so a
// sweep constructs one partition per distinct config rather than per cell;
// the kernel mode flags are (re)applied on every lease.
func MeasureBcastRun(cfg hw.Config, algo string, msg, iters int, mode RunMode) (sim.Time, error) {
	w, err := leaseWorld(cfg)
	if err != nil {
		return 0, err
	}
	w.Tunables.Bcast = algo
	w.M.K.SetNoProgram(mode.Reference || !mpi.HasProgBcast(algo))
	w.M.K.SetNoShard(mode.NoShard)
	w.M.K.SetNoExtrap(mode.NoExtrap)
	ext := newExtrapolator(w, iters, mode.NoExtrap)
	worsts := make([]sim.Time, w.M.K.ShardCount())
	loops := make([]measureLoop, w.Size())
	_, err = w.RunProgram(func(r *mpi.Rank) {
		l := &loops[r.Rank()]
		l.r, l.buf, l.iters, l.worst = r, r.NewBuf(msg), iters, &worsts[r.Shard().ID()]
		l.afterBarrierFn = l.bcastAfterBarrier
		l.afterOpFn = l.afterOp
		ext.attach(l)
		l.iter()
	})
	releaseWorld(cfg, w, err)
	return maxTime(worsts), err
}

// maxTime folds per-shard worst-rank slots into the global worst. Each slot
// is written only under its shard's token during the run; the fold happens
// after Run returns, when every worker has quiesced.
func maxTime(ts []sim.Time) sim.Time {
	var worst sim.Time
	for _, t := range ts {
		if t > worst {
			worst = t
		}
	}
	return worst
}

// measureLoop is the Fig. 5 micro-benchmark loop (barrier; time one
// collective; repeat) as a state machine: its continuations are method
// values bound once per rank, where the closure form allocated two per
// iteration per rank — the dominant bench-side entry in the sweep
// allocation profile. Loops are carved from one per-measurement slab
// (indexed by rank) rather than allocated individually: at rack scale a
// million tiny pointer-bearing objects per measurement is real GC mark and
// sweep work.
type measureLoop struct {
	r          *mpi.Rank
	buf        data.Buf // bcast payload
	send, recv data.Buf // allreduce operands
	iters      int
	i          int
	elapsed    sim.Time
	start      sim.Time
	worst      *sim.Time     // this shard's slot, shared across its ranks; the shard token serializes access
	ext        *extrapolator // steady-state detector, nil when extrapolation is off

	afterBarrierFn func()
	afterOpFn      func()
}

//bgplint:hot
func (l *measureLoop) iter() {
	if l.i == l.iters {
		avg := l.elapsed / sim.Time(l.iters)
		if avg > *l.worst {
			*l.worst = avg
		}
		return
	}
	l.r.BarrierThen(l.afterBarrierFn)
}

// The after-barrier continuations consult the extrapolator before reading
// the clock: the boundary hook may fast-forward virtual time, in which case
// this iteration proceeds live as the final one.

//bgplint:hot
func (l *measureLoop) bcastAfterBarrier() {
	if l.ext != nil {
		l.ext.boundary()
	}
	l.start = l.r.Now()
	l.r.BcastThen(l.buf, 0, l.afterOpFn)
}

//bgplint:hot
func (l *measureLoop) barrierAfterBarrier() {
	if l.ext != nil {
		l.ext.boundary()
	}
	l.start = l.r.Now()
	l.r.BarrierThen(l.afterOpFn)
}

//bgplint:hot
func (l *measureLoop) allreduceAfterBarrier() {
	if l.ext != nil {
		l.ext.boundary()
	}
	l.start = l.r.Now()
	l.r.AllreduceSumThen(l.send, l.recv, l.afterOpFn)
}

//bgplint:hot
func (l *measureLoop) afterOp() {
	l.elapsed += l.r.Now() - l.start
	l.i++
	l.iter()
}

// MeasureAllreduce runs the micro-benchmark for one allreduce configuration.
func MeasureAllreduce(cfg hw.Config, algo string, doubles, iters int) (sim.Time, error) {
	return MeasureAllreduceRun(cfg, algo, doubles, iters, RunMode{})
}

// MeasureAllreduceMode is MeasureAllreduce with an explicit reference
// toggle, kept for older callers; MeasureAllreduceRun is the full-mode form.
func MeasureAllreduceMode(cfg hw.Config, algo string, doubles, iters int, reference bool) (sim.Time, error) {
	return MeasureAllreduceRun(cfg, algo, doubles, iters, RunMode{Reference: reference})
}

// MeasureAllreduceRun is MeasureAllreduce with an explicit execution vehicle
// (see MeasureBcastRun); the world is pooled the same way.
func MeasureAllreduceRun(cfg hw.Config, algo string, doubles, iters int, mode RunMode) (sim.Time, error) {
	w, err := leaseWorld(cfg)
	if err != nil {
		return 0, err
	}
	w.Tunables.Allreduce = algo
	w.M.K.SetNoProgram(mode.Reference || !mpi.HasProgAllreduce(algo))
	w.M.K.SetNoShard(mode.NoShard)
	w.M.K.SetNoExtrap(mode.NoExtrap)
	ext := newExtrapolator(w, iters, mode.NoExtrap)
	bytes := doubles * data.Float64Len
	worsts := make([]sim.Time, w.M.K.ShardCount())
	loops := make([]measureLoop, w.Size())
	_, err = w.RunProgram(func(r *mpi.Rank) {
		l := &loops[r.Rank()]
		l.r, l.send, l.recv, l.iters, l.worst = r, r.NewBuf(bytes), r.NewBuf(bytes), iters, &worsts[r.Shard().ID()]
		l.afterBarrierFn = l.allreduceAfterBarrier
		l.afterOpFn = l.afterOp
		ext.attach(l)
		l.iter()
	})
	releaseWorld(cfg, w, err)
	return maxTime(worsts), err
}

// BandwidthMBs converts a message size and per-operation time to the
// figures' MB/s metric.
func BandwidthMBs(msg int, t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	return float64(msg) / t.Seconds() / 1e6
}

// treeConfig returns the collective-network experiment partition, sharded
// per Options (the tree broadcast family is shard-capable).
func treeConfig(o Options, mode hw.Mode) (hw.Config, error) {
	racks := o.Racks
	if racks == 0 {
		racks = 2 // the paper's 8192-rank system
	}
	cfg, err := hw.RackConfig(racks)
	if err != nil {
		return cfg, err
	}
	cfg.Mode = mode
	cfg.Shards = o.Shards
	return cfg, nil
}

// torusConfig returns the torus experiment partition: a 512-node midplane by
// default (steady-state torus bandwidth is scale-insensitive; see DESIGN.md),
// or full racks when requested. Torus collectives coordinate through
// job-wide shared state and are not shard-capable, so the partition is
// always single-shard regardless of Options.Shards.
func torusConfig(o Options, mode hw.Mode) (hw.Config, error) {
	if o.Racks == 0 {
		cfg := hw.MidplaneConfig()
		cfg.Mode = mode
		return cfg, nil
	}
	cfg, err := treeConfig(o, mode)
	cfg.Shards = 0
	return cfg, err
}

// sweep trims a full message-size list for quick runs, always retaining the
// first and last sizes and the headline sizes the paper quotes.
func sweep(quick bool, full []int, keep ...int) []int {
	if !quick {
		return full
	}
	want := map[int]bool{full[0]: true, full[len(full)-1]: true}
	for i := 3; i < len(full); i += 3 {
		want[full[i]] = true
	}
	for _, k := range keep {
		want[k] = true
	}
	out := make([]int, 0, len(want))
	for _, v := range full {
		if want[v] {
			out = append(out, v)
		}
	}
	return out
}
