// World pool: the sweep runner's lease/release layer over mpi.World.Reset.
//
// Every (series, size) cell of a figure is one deterministic kernel run, and
// most cells of one figure share a partition shape (hw.Config). Building an
// 8192-rank world per cell — nodes, DMA engines, torus and tree networks,
// mailboxes — used to dominate the allocation profile of a sweep. The pool
// keeps finished worlds keyed by their exact Config; a worker leases one,
// runs its cell, and releases it reset, so a 44-cell figure constructs as
// many worlds as it has distinct configs (typically one or two) times the
// number of concurrently running workers.
//
// Determinism: World.Reset returns a world to a state bit-identical (in
// every kernel-observable way) to a fresh NewWorld, so leasing instead of
// constructing cannot change any measured virtual time — the fresh-vs-reused
// stress tests pin this. Worlds whose run failed are never pooled: a failed
// kernel still holds parked processes, and sim.Kernel.Reset refuses them.
//
// This file is the sanctioned lease/reset site for the bgplint worldreuse
// rule; bench code must go through leaseWorld/releaseWorld rather than
// calling Reset (or retaining kernel handles) itself.
package bench

import (
	"sync"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

// worldPool holds reset worlds by exact partition configuration. hw.Config
// is comparable (scalar fields only), so it keys the map directly; two cells
// differing in any parameter — mode, geometry, even one ablation knob —
// never share a world. The mutex only guards the map: a leased world is
// owned exclusively by its worker, and Reset runs before the world rejoins
// the free list.
var worldPool struct {
	mu   sync.Mutex
	free map[hw.Config][]*mpi.World

	// order records each config's first insertion into free, so the
	// cross-config growth path below scans candidates in a deterministic,
	// map-iteration-free order (the bgplint maporder rule would rightly
	// reject ranging over free here).
	order []hw.Config
}

// leaseWorld returns a pooled world for cfg, or constructs one when the pool
// has none. The caller owns the world until releaseWorld.
//
// A miss prefers growing over building: single-shard worlds parked under a
// *different* config are reconfigured in place (mpi.World.Reconfigure),
// reusing the kernel's accumulated slabs and the node/rank backing arrays.
// Sharded worlds cannot change shape and are left for their exact config.
func leaseWorld(cfg hw.Config) (*mpi.World, error) {
	worldPool.mu.Lock()
	if ws := worldPool.free[cfg]; len(ws) > 0 {
		w := ws[len(ws)-1]
		ws[len(ws)-1] = nil
		worldPool.free[cfg] = ws[:len(ws)-1]
		worldPool.mu.Unlock()
		return w, nil
	}
	var donor *mpi.World
	if cfg.Shards <= 1 {
		for _, c := range worldPool.order {
			if c.Shards > 1 {
				continue
			}
			if ws := worldPool.free[c]; len(ws) > 0 {
				donor = ws[len(ws)-1]
				ws[len(ws)-1] = nil
				worldPool.free[c] = ws[:len(ws)-1]
				break
			}
		}
	}
	worldPool.mu.Unlock()
	if donor != nil {
		if err := donor.Reconfigure(cfg); err == nil {
			return donor, nil
		}
		// A donor that cannot take this shape (or a config that fails
		// validation) is dropped; fall through to plain construction, which
		// reports any real config error.
	}
	return mpi.NewWorld(cfg)
}

// releaseWorld resets w and returns it to the pool. Worlds whose run failed
// are dropped instead: their kernels hold parked processes that Reset
// (correctly) refuses to reuse, and an errored measurement is rare enough
// that rebuilding is the simple safe policy.
func releaseWorld(cfg hw.Config, w *mpi.World, runErr error) {
	if runErr != nil {
		return
	}
	w.Reset()
	worldPool.mu.Lock()
	if worldPool.free == nil {
		worldPool.free = make(map[hw.Config][]*mpi.World)
	}
	if _, seen := worldPool.free[cfg]; !seen {
		worldPool.order = append(worldPool.order, cfg)
	}
	worldPool.free[cfg] = append(worldPool.free[cfg], w)
	worldPool.mu.Unlock()
}

// DrainWorldPool drops every pooled world. cmd/bgpbench calls it between
// experiments so each experiment's memstats attribute construction costs to
// the run that paid them and a full-scale sweep never holds more partitions
// than one experiment needs; tests use it to force fresh construction.
func DrainWorldPool() {
	worldPool.mu.Lock()
	worldPool.free = nil
	worldPool.order = nil
	worldPool.mu.Unlock()
}

// PooledWorlds reports how many worlds are parked in the pool (tests and
// diagnostics).
func PooledWorlds() int {
	worldPool.mu.Lock()
	defer worldPool.mu.Unlock()
	n := 0
	for _, ws := range worldPool.free {
		n += len(ws)
	}
	return n
}

// resetBetweenRuns re-arms a world figS owns privately between its paired
// measurement runs (broadcast, then barrier). The capacity sweep bypasses
// the pool — construction cost is part of its measurement — so its resets
// forward through this sanctioned site instead of a lease/release cycle.
func resetBetweenRuns(w *mpi.World) { w.Reset() }
