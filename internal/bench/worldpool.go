// World pool: the sweep runner's lease/release layer over mpi.World.Reset.
//
// Every (series, size) cell of a figure is one deterministic kernel run, and
// most cells of one figure share a partition shape (hw.Config). Building an
// 8192-rank world per cell — nodes, DMA engines, torus and tree networks,
// mailboxes — used to dominate the allocation profile of a sweep. The pool
// keeps finished worlds keyed by their exact Config; a worker leases one,
// runs its cell, and releases it reset, so a 44-cell figure constructs as
// many worlds as it has distinct configs (typically one or two) times the
// number of concurrently running workers.
//
// Determinism: World.Reset returns a world to a state bit-identical (in
// every kernel-observable way) to a fresh NewWorld, so leasing instead of
// constructing cannot change any measured virtual time — the fresh-vs-reused
// stress tests pin this. Worlds whose run failed are never pooled: a failed
// kernel still holds parked processes, and sim.Kernel.Reset refuses them.
//
// This file is the sanctioned lease/reset site for the bgplint worldreuse
// rule; bench code must go through leaseWorld/releaseWorld rather than
// calling Reset (or retaining kernel handles) itself.
package bench

import (
	"sync"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

// worldPool holds reset worlds by exact partition configuration. hw.Config
// is comparable (scalar fields only), so it keys the map directly; two cells
// differing in any parameter — mode, geometry, even one ablation knob —
// never share a world. The mutex only guards the map: a leased world is
// owned exclusively by its worker, and Reset runs before the world rejoins
// the free list.
var worldPool struct {
	mu   sync.Mutex
	free map[hw.Config][]*mpi.World
}

// leaseWorld returns a pooled world for cfg, or constructs one when the pool
// has none. The caller owns the world until releaseWorld.
func leaseWorld(cfg hw.Config) (*mpi.World, error) {
	worldPool.mu.Lock()
	if ws := worldPool.free[cfg]; len(ws) > 0 {
		w := ws[len(ws)-1]
		ws[len(ws)-1] = nil
		worldPool.free[cfg] = ws[:len(ws)-1]
		worldPool.mu.Unlock()
		return w, nil
	}
	worldPool.mu.Unlock()
	return mpi.NewWorld(cfg)
}

// releaseWorld resets w and returns it to the pool. Worlds whose run failed
// are dropped instead: their kernels hold parked processes that Reset
// (correctly) refuses to reuse, and an errored measurement is rare enough
// that rebuilding is the simple safe policy.
func releaseWorld(cfg hw.Config, w *mpi.World, runErr error) {
	if runErr != nil {
		return
	}
	w.Reset()
	worldPool.mu.Lock()
	if worldPool.free == nil {
		worldPool.free = make(map[hw.Config][]*mpi.World)
	}
	worldPool.free[cfg] = append(worldPool.free[cfg], w)
	worldPool.mu.Unlock()
}

// DrainWorldPool drops every pooled world. cmd/bgpbench calls it between
// experiments so each experiment's memstats attribute construction costs to
// the run that paid them and a full-scale sweep never holds more partitions
// than one experiment needs; tests use it to force fresh construction.
func DrainWorldPool() {
	worldPool.mu.Lock()
	worldPool.free = nil
	worldPool.mu.Unlock()
}

// PooledWorlds reports how many worlds are parked in the pool (tests and
// diagnostics).
func PooledWorlds() int {
	worldPool.mu.Lock()
	defer worldPool.mu.Unlock()
	n := 0
	for _, ws := range worldPool.free {
		n += len(ws)
	}
	return n
}
