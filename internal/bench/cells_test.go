package bench

import (
	"testing"

	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// TestPlanExperimentGrids pins the plan decomposition: every servable
// experiment plans into a row-major grid whose cell count, labels, and sizes
// match the figure metadata, without running anything.
func TestPlanExperimentGrids(t *testing.T) {
	for _, id := range PlannableExperiments() {
		p, err := PlanExperiment(id, Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		nr, ns := len(p.Fig.Series), len(p.Fig.Sizes)
		if nr == 0 || ns == 0 {
			t.Fatalf("%s: empty plan (%d series, %d sizes)", id, nr, ns)
		}
		if len(p.Cells) != nr*ns {
			t.Fatalf("%s: %d cells, want %d series x %d sizes", id, len(p.Cells), nr, ns)
		}
		for i, c := range p.Cells {
			r, s := i/ns, i%ns
			if c.Experiment != id {
				t.Fatalf("%s cell %d: experiment %q", id, i, c.Experiment)
			}
			if c.Series != p.Fig.Series[r].Label {
				t.Fatalf("%s cell %d: series %q, want %q", id, i, c.Series, p.Fig.Series[r].Label)
			}
			if c.Arg != p.Fig.Sizes[s] {
				t.Fatalf("%s cell %d: arg %d, want size %d", id, i, c.Arg, p.Fig.Sizes[s])
			}
			if c.Iters != p.Fig.Iters {
				t.Fatalf("%s cell %d: iters %d, want %d", id, i, c.Iters, p.Fig.Iters)
			}
			if err := c.Cfg.Validate(); err != nil {
				t.Fatalf("%s cell %d: invalid config: %v", id, i, err)
			}
		}
	}
}

func TestPlanExperimentUnknown(t *testing.T) {
	for _, id := range []string{"figs", "ablation.colors", "nope"} {
		if _, err := PlanExperiment(id, Options{}); err == nil {
			t.Fatalf("PlanExperiment(%q) succeeded; want not-cell-decomposable error", id)
		}
	}
}

// TestCellRunMatchesMeasure pins that the exported cell entry point is the
// same measurement the figure runners use.
func TestCellRunMatchesMeasure(t *testing.T) {
	cfg := tinyConfig()
	c := Cell{Experiment: "adhoc", Series: "x", Cfg: cfg, Kind: CellBcast, Algo: mpi.BcastTorusShaddr, Arg: 64 << 10, Iters: 2}
	got, err := c.Run(RunMode{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := MeasureBcastRun(cfg, mpi.BcastTorusShaddr, 64<<10, 2, RunMode{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Cell.Run %d ps, MeasureBcastRun %d ps", int64(got), int64(want))
	}

	a := Cell{Experiment: "adhoc", Series: "x", Cfg: cfg, Kind: CellAllreduce, Algo: mpi.AllreduceTorusNew, Arg: 4096, Iters: 1}
	gotA, err := a.Run(RunMode{})
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := MeasureAllreduceRun(cfg, mpi.AllreduceTorusNew, 4096, 1, RunMode{})
	if err != nil {
		t.Fatal(err)
	}
	if gotA != wantA {
		t.Fatalf("allreduce Cell.Run %d ps, MeasureAllreduceRun %d ps", int64(gotA), int64(wantA))
	}
	if a.Bytes() != 4096*8 {
		t.Fatalf("allreduce Bytes() = %d, want %d", a.Bytes(), 4096*8)
	}
}

// TestAssembleFillsRowMajor checks the times-to-figure mapping and that
// value conversion happens per cell.
func TestAssembleFillsRowMajor(t *testing.T) {
	p, err := PlanExperiment("fig6", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	times := make([]sim.Time, len(p.Cells))
	for i := range times {
		times[i] = sim.Time(i+1) * 1000
	}
	fig := p.Assemble(times)
	ns := len(fig.Sizes)
	for r := range fig.Series {
		for s := range fig.Series[r].Values {
			want := p.Value(p.Cells[r*ns+s], times[r*ns+s])
			if fig.Series[r].Values[s] != want {
				t.Fatalf("series %d size %d: %v, want %v", r, s, fig.Series[r].Values[s], want)
			}
		}
	}
}
