// Heap-footprint sampling for experiment reports. This lives in bench (not
// cmd/bgpbench) so the shutdown protocol is testable: the sampler goroutine
// must be provably gone between experiments — joined, not just signalled —
// or a long sweep accumulates one ticker goroutine per experiment, each
// calling ReadMemStats (a stop-the-world point) forever.
//
// This file is a bgplint-sanctioned goroutine launch site and wall-clock
// site: the sampler only reads runtime statistics on a real-time ticker and
// never touches simulation state, so it can shape no virtual-time event
// ordering; the kernel runs on the caller's goroutine while the sampler
// polls.
package bench

import (
	"runtime"
	"sync"
	"time"
)

// heapSampleInterval is the polling resolution. Sampling is best-effort — a
// spike between polls is missed — but at 10 ms the construction and
// measurement plateaus that matter dwarf the interval.
const heapSampleInterval = 10 * time.Millisecond

// HeapSampler polls runtime.MemStats.HeapInuse while one experiment runs and
// remembers the high water. Create with StartHeapSampler, collect with Peak.
type HeapSampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
	peak uint64
}

// StartHeapSampler launches the sampling goroutine.
func StartHeapSampler() *HeapSampler {
	s := &HeapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		t := time.NewTicker(heapSampleInterval)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > s.peak {
					s.peak = ms.HeapInuse
				}
			}
		}
	}()
	return s
}

// Peak shuts the sampler down — signalling the goroutine AND joining it, so
// no sampling outlives the experiment it was attributed to — folds in a
// final reading (short experiments that finish between ticks still report
// their end-state heap), and returns the high water. Peak is idempotent:
// repeated calls return the same value without touching the channels again.
func (s *HeapSampler) Peak() uint64 {
	s.once.Do(func() {
		close(s.stop)
		<-s.done
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > s.peak {
			s.peak = ms.HeapInuse
		}
	})
	return s.peak
}
