package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_digests.json from the current kernel")

// The golden determinism test pins the simulator's virtual-time outputs.
// Each figure of the paper is represented by a small-geometry slice of its
// algorithm set; every cell's exact virtual time (picoseconds) is committed
// in testdata/golden_digests.json. Any kernel or scheduling change that
// alters event ordering shows up as a digest mismatch — the file was
// generated with the seed (container/heap, two-channel coroutine) kernel and
// must stay bit-for-bit identical under every rewrite.

type goldenCell struct {
	Fig  string // figure the cell stands in for
	Name string // "algo/mode/size[xiters]"
	Run  func() (sim.Time, error)
}

func goldenConfig(mode hw.Mode) hw.Config {
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: 2, DY: 2, DZ: 2}
	cfg.Mode = mode
	cfg.Functional = false
	return cfg
}

// goldenCells mirrors each figure's algorithm set at a 2x2x2 geometry. Sizes
// are one short and one pipelined message so both the latency and the
// chunked paths are pinned.
func goldenCells() []goldenCell {
	var cells []goldenCell
	bcast := func(fig, algo string, mode hw.Mode, msg, iters int) {
		cfg := goldenConfig(mode)
		cells = append(cells, goldenCell{
			Fig:  fig,
			Name: fmt.Sprintf("%s/%v/%d x%d", algo, mode, msg, iters),
			Run:  func() (sim.Time, error) { return MeasureBcast(cfg, algo, msg, iters) },
		})
	}
	// Fig6: short-message tree-network latency.
	for _, algo := range []string{mpi.BcastTreeShmem, mpi.BcastTreeDMAFIFO} {
		bcast("fig6", algo, hw.Quad, 256, 2)
	}
	bcast("fig6", mpi.BcastTreeSMP, hw.SMP, 256, 2)
	// Fig7: tree-network bandwidth, pipelined sizes.
	for _, algo := range []string{mpi.BcastTreeShaddr, mpi.BcastTreeDMAFIFO, mpi.BcastTreeDMADirect} {
		bcast("fig7", algo, hw.Quad, 64<<10, 2)
	}
	bcast("fig7", mpi.BcastTreeSMP, hw.SMP, 64<<10, 2)
	// Fig8: map-cache on/off.
	bcast("fig8", mpi.BcastTreeShaddr, hw.Quad, 16<<10, 3)
	{
		cfg := goldenConfig(hw.Quad)
		cfg.Params.MapCacheEnabled = false
		cells = append(cells, goldenCell{
			Fig:  "fig8",
			Name: fmt.Sprintf("%s/nocache/%d x%d", mpi.BcastTreeShaddr, 16<<10, 3),
			Run:  func() (sim.Time, error) { return MeasureBcast(cfg, mpi.BcastTreeShaddr, 16<<10, 3) },
		})
	}
	// Fig9: scaling — a second, non-cubic geometry.
	{
		cfg := goldenConfig(hw.Quad)
		cfg.Torus = geometry.Torus{DX: 2, DY: 2, DZ: 4}
		cells = append(cells, goldenCell{
			Fig:  "fig9",
			Name: fmt.Sprintf("%s/2x2x4/%d x%d", mpi.BcastTreeShaddr, 64<<10, 1),
			Run:  func() (sim.Time, error) { return MeasureBcast(cfg, mpi.BcastTreeShaddr, 64<<10, 1) },
		})
	}
	// Fig10: torus broadcasts.
	for _, algo := range []string{mpi.BcastTorusShaddr, mpi.BcastTorusFIFO, mpi.BcastTorusDirectPut} {
		bcast("fig10", algo, hw.Quad, 128<<10, 1)
	}
	bcast("fig10", mpi.BcastTorusDirectPut, hw.SMP, 128<<10, 1)
	// Table I: allreduce.
	for _, algo := range []string{mpi.AllreduceTorusNew, mpi.AllreduceTorusCurrent} {
		algo := algo
		cfg := goldenConfig(hw.Quad)
		cells = append(cells, goldenCell{
			Fig:  "table1",
			Name: fmt.Sprintf("%s/%v/4096 doubles x1", algo, hw.Quad),
			Run:  func() (sim.Time, error) { return MeasureAllreduce(cfg, algo, 4096, 1) },
		})
	}
	return cells
}

// goldenFile is the committed digest format: per-figure FNV-1a digests over
// the cells' exact virtual times, plus the raw times for debuggability.
type goldenFile struct {
	Digests map[string]string `json:"digests"` // figure -> fnv64a hex
	Cells   map[string]int64  `json:"cells"`   // figure/cell -> picoseconds
}

func computeGolden(t *testing.T) goldenFile {
	t.Helper()
	out := goldenFile{Digests: map[string]string{}, Cells: map[string]int64{}}
	perFig := map[string][]string{}
	for _, c := range goldenCells() {
		d, err := c.Run()
		if err != nil {
			t.Fatalf("golden cell %s/%s: %v", c.Fig, c.Name, err)
		}
		key := c.Fig + "/" + c.Name
		out.Cells[key] = int64(d)
		perFig[c.Fig] = append(perFig[c.Fig], fmt.Sprintf("%s=%d", c.Name, int64(d)))
	}
	for _, fig := range sortedKeys(perFig) {
		// Cell order within a figure is the fixed goldenCells order, but be
		// explicit: sort so the digest never depends on construction order.
		lines := perFig[fig]
		sort.Strings(lines)
		h := fnv.New64a()
		for _, l := range lines {
			fmt.Fprintln(h, l)
		}
		out.Digests[fig] = fmt.Sprintf("%016x", h.Sum64())
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

const goldenPath = "testdata/golden_digests.json"

func TestGoldenDigests(t *testing.T) {
	got := computeGolden(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden digests rewritten: %s", goldenPath)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, key := range sortedKeys(want.Cells) {
		if got.Cells[key] != want.Cells[key] {
			t.Errorf("cell %s: virtual time %d ps, golden %d ps", key, got.Cells[key], want.Cells[key])
		}
	}
	for _, key := range sortedKeys(got.Cells) {
		if _, ok := want.Cells[key]; !ok {
			t.Errorf("cell %s not in golden file (regenerate with -update-golden)", key)
		}
	}
	for _, fig := range sortedKeys(want.Digests) {
		if got.Digests[fig] != want.Digests[fig] {
			t.Errorf("figure %s: digest %s, golden %s — virtual-time behaviour changed", fig, got.Digests[fig], want.Digests[fig])
		}
	}
}

// TestGoldenProgramReferenceAgree pins the tentpole equivalence at the bench
// layer: every golden algorithm must measure the identical virtual time
// whether its ranks run as inline programs or as pooled goroutines
// (reference mode). Wall-clock is the only permitted difference.
func TestGoldenProgramReferenceAgree(t *testing.T) {
	cfg := goldenConfig(hw.Quad)
	smp := goldenConfig(hw.SMP)
	for _, algo := range []string{
		mpi.BcastTreeShmem, mpi.BcastTreeSMP, mpi.BcastTreeDMAFIFO,
		mpi.BcastTreeDMADirect, mpi.BcastTreeShaddr,
		mpi.BcastTorusShaddr, mpi.BcastTorusFIFO, mpi.BcastTorusDirectPut,
	} {
		c := cfg
		if algo == mpi.BcastTreeSMP {
			c = smp
		}
		prog, err := MeasureBcastMode(c, algo, 64<<10, 2, false)
		if err != nil {
			t.Fatalf("%s program mode: %v", algo, err)
		}
		ref, err := MeasureBcastMode(c, algo, 64<<10, 2, true)
		if err != nil {
			t.Fatalf("%s reference mode: %v", algo, err)
		}
		if prog != ref {
			t.Errorf("%s: program %d ps, reference %d ps", algo, int64(prog), int64(ref))
		}
	}
	for _, algo := range []string{mpi.AllreduceTorusNew, mpi.AllreduceTorusCurrent} {
		prog, err := MeasureAllreduceMode(cfg, algo, 4096, 1, false)
		if err != nil {
			t.Fatalf("%s program mode: %v", algo, err)
		}
		ref, err := MeasureAllreduceMode(cfg, algo, 4096, 1, true)
		if err != nil {
			t.Fatalf("%s reference mode: %v", algo, err)
		}
		if prog != ref {
			t.Errorf("%s: program %d ps, reference %d ps", algo, int64(prog), int64(ref))
		}
	}
}

// TestGoldenRerunStable guards the digest harness itself: two in-process
// computations must agree, independent of the committed file.
func TestGoldenRerunStable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a, b := computeGolden(t), computeGolden(t)
	for _, k := range sortedKeys(a.Cells) {
		if b.Cells[k] != a.Cells[k] {
			t.Fatalf("cell %s unstable across reruns: %d vs %d", k, a.Cells[k], b.Cells[k])
		}
	}
}
