package bench

import (
	"fmt"
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// poolCell is one measurement whose result must not depend on whether its
// world was freshly constructed or leased from the pool.
type poolCell struct {
	name string
	cfg  hw.Config
	run  func() (sim.Time, error)
}

// poolCells covers every tree broadcast family plus an allreduce, in both
// the production and the reference kernel modes, at golden (2x2x2) scale.
func poolCells() []poolCell {
	var cells []poolCell
	add := func(name string, cfg hw.Config, run func() (sim.Time, error)) {
		cells = append(cells, poolCell{name: name, cfg: cfg, run: run})
	}
	for _, reference := range []bool{false, true} {
		reference := reference
		tag := "prod"
		if reference {
			tag = "ref"
		}
		quad := goldenConfig(hw.Quad)
		for _, algo := range []string{mpi.BcastTreeShaddr, mpi.BcastTreeDMAFIFO, mpi.BcastTreeDMADirect} {
			algo := algo
			add(fmt.Sprintf("%s/%s", algo, tag), quad, func() (sim.Time, error) {
				return MeasureBcastMode(quad, algo, 64<<10, 2, reference)
			})
		}
		smp := goldenConfig(hw.SMP)
		add(fmt.Sprintf("%s/%s", mpi.BcastTreeSMP, tag), smp, func() (sim.Time, error) {
			return MeasureBcastMode(smp, mpi.BcastTreeSMP, 64<<10, 2, reference)
		})
		add(fmt.Sprintf("%s/%s", mpi.AllreduceTorusNew, tag), quad, func() (sim.Time, error) {
			return MeasureAllreduceMode(quad, mpi.AllreduceTorusNew, 1024, 1, reference)
		})
	}
	return cells
}

// TestPooledWorldMeasuresIdentically runs each cell twice: the first run
// constructs its world (the pool is drained), the second leases the world
// the first released. The virtual time must be bit-identical — the pooled
// world is indistinguishable from a fresh one.
func TestPooledWorldMeasuresIdentically(t *testing.T) {
	for _, c := range poolCells() {
		DrainWorldPool()
		fresh, err := c.run()
		if err != nil {
			t.Fatalf("%s fresh: %v", c.name, err)
		}
		if n := PooledWorlds(); n != 1 {
			t.Fatalf("%s: %d pooled worlds after fresh run, want 1", c.name, n)
		}
		reused, err := c.run()
		if err != nil {
			t.Fatalf("%s reused: %v", c.name, err)
		}
		if reused != fresh {
			t.Fatalf("%s: pooled world measured %v, fresh world %v", c.name, reused, fresh)
		}
		if n := PooledWorlds(); n != 1 {
			t.Fatalf("%s: %d pooled worlds after reuse, want 1 (lease must pop, release must push)", c.name, n)
		}
	}
	DrainWorldPool()
	if n := PooledWorlds(); n != 0 {
		t.Fatalf("%d pooled worlds after drain", n)
	}
}

// TestFailedRunsAreNotPooled drives the two failure paths releaseWorld
// guards against: a run whose rank body panics mid-measurement (the kernel
// converts the panic into a failed Run) and a run that deadlocks. Both
// leave the kernel holding parked or aborted processes, so the world must
// be dropped from the pool, and the next lease must construct fresh — a
// fresh world that measures exactly what an undisturbed one measures. Run
// under -race this also checks that dropping a failed world cannot race a
// concurrent lease.
func TestFailedRunsAreNotPooled(t *testing.T) {
	cfg := goldenConfig(hw.Quad)

	// Baseline: the cell's answer starting from a pristine pool.
	DrainWorldPool()
	want, err := MeasureBcastMode(cfg, mpi.BcastTreeShaddr, 64<<10, 2, false)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		body func(r *mpi.Rank)
	}{
		{"panic", func(r *mpi.Rank) {
			if r.Rank() == 0 {
				r.BarrierThen(func() { panic("mid-measurement failure") })
			} else {
				r.BarrierThen(func() {})
			}
		}},
		{"deadlock", func(r *mpi.Rank) {
			if r.Rank() == 0 {
				r.BarrierThen(func() {}) // nobody else joins; parked forever
			}
		}},
	}
	for _, tc := range cases {
		DrainWorldPool()
		w, err := leaseWorld(cfg)
		if err != nil {
			t.Fatalf("%s: lease: %v", tc.name, err)
		}
		_, runErr := w.RunProgram(tc.body)
		if runErr == nil {
			t.Fatalf("%s: run succeeded; the fixture must fail", tc.name)
		}
		releaseWorld(cfg, w, runErr)
		if n := PooledWorlds(); n != 0 {
			t.Fatalf("%s: %d pooled worlds after a failed run, want 0 (failed kernels hold parked processes)", tc.name, n)
		}

		got, err := MeasureBcastMode(cfg, mpi.BcastTreeShaddr, 64<<10, 2, false)
		if err != nil {
			t.Fatalf("%s: measurement after the failed run: %v", tc.name, err)
		}
		if got != want {
			t.Fatalf("%s: fresh world after failure measured %v, want %v", tc.name, got, want)
		}
		if n := PooledWorlds(); n != 1 {
			t.Fatalf("%s: %d pooled worlds after the recovery run, want 1", tc.name, n)
		}
	}
	DrainWorldPool()
}

// TestWorldPoolParallelSweep drives the pool from concurrent workers, the
// way `bgpbench -par` does: each cell is measured several times in parallel
// and every result must match the serial answer. Run under -race this also
// checks the lease/release locking.
func TestWorldPoolParallelSweep(t *testing.T) {
	cells := poolCells()
	serial := make([]sim.Time, len(cells))
	DrainWorldPool()
	for i, c := range cells {
		v, err := c.run()
		if err != nil {
			t.Fatalf("%s serial: %v", c.name, err)
		}
		serial[i] = v
	}

	const repeats = 3
	DrainWorldPool()
	got := make([]sim.Time, len(cells)*repeats)
	err := parallelEach(4, len(got), func(i int) error {
		v, err := cells[i%len(cells)].run()
		got[i] = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		c := cells[i%len(cells)]
		if v != serial[i%len(cells)] {
			t.Errorf("%s (parallel job %d): got %v, serial %v", c.name, i, v, serial[i%len(cells)])
		}
	}
	// The pool never holds more worlds per config than workers that ran one.
	if n := PooledWorlds(); n == 0 || n > 4*len(cells) {
		t.Fatalf("%d pooled worlds after parallel sweep", n)
	}
	DrainWorldPool()
}

// TestPoolCrossConfigLeasing interleaves measurements over distinct
// single-shard configurations through the shared pool on the sweep runner's
// workers. Every lease resolves one of three ways — an exact hit, a donor of
// a different configuration grown in place with Reconfigure, or a fresh
// construction — and all three must measure bit-identically to a world built
// on a pristine pool. Under -race this also exercises the pool lock around
// donor removal and the unlocked Reconfigure that follows it.
func TestPoolCrossConfigLeasing(t *testing.T) {
	big := goldenConfig(hw.Quad)
	big.Torus = geometry.Torus{DX: 2, DY: 2, DZ: 4}
	cells := []struct {
		name string
		run  func() (sim.Time, error)
	}{
		{"quad 2x2x2", func() (sim.Time, error) {
			return MeasureBcast(goldenConfig(hw.Quad), mpi.BcastTreeShaddr, 8<<10, 2)
		}},
		{"smp 2x2x2", func() (sim.Time, error) {
			return MeasureBcast(goldenConfig(hw.SMP), mpi.BcastTreeSMP, 8<<10, 2)
		}},
		{"quad 2x2x4", func() (sim.Time, error) {
			return MeasureBcast(big, mpi.BcastTreeShaddr, 8<<10, 2)
		}},
	}

	base := make([]sim.Time, len(cells))
	for i, c := range cells {
		DrainWorldPool()
		v, err := c.run()
		if err != nil {
			t.Fatalf("%s baseline: %v", c.name, err)
		}
		base[i] = v
	}

	// Sequential interleave starting from a pool seeded with a mismatched
	// config: every lease after the first must grow a donor or hit exactly.
	DrainWorldPool()
	for round := 0; round < 3; round++ {
		for i, c := range cells {
			v, err := c.run()
			if err != nil {
				t.Fatalf("%s round %d: %v", c.name, round, err)
			}
			if v != base[i] {
				t.Errorf("%s round %d: got %v, pristine-pool baseline %v", c.name, round, v, base[i])
			}
		}
	}

	// Concurrent interleave: mixed configs in flight at once.
	DrainWorldPool()
	const jobs = 12
	got := make([]sim.Time, jobs)
	err := parallelEach(4, jobs, func(i int) error {
		v, err := cells[i%len(cells)].run()
		got[i] = v
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != base[i%len(cells)] {
			t.Errorf("%s (parallel job %d): got %v, baseline %v", cells[i%len(cells)].name, i, v, base[i%len(cells)])
		}
	}
	DrainWorldPool()
}
