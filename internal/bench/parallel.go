// Parallel sweep runner. Every figure is a grid of (series, size) cells and
// every cell is one self-contained, deterministic sim.Kernel run: a fresh
// World on a fresh kernel, writing only to its own result slot. Cells
// therefore parallelize freely — fan-out order cannot change any value, only
// the wall-clock — and results are merged in fixed cell-index order.
//
// This file is the second bgplint-sanctioned goroutine launch site (after
// sim.Kernel.Spawn's coroutine wrapper): the pool workers below run whole
// simulations to completion and never share simulation state, so the
// determinism argument of DESIGN.md §9 is preserved.

package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelEach runs job(0..n-1) across min(workers, n) pool goroutines and
// returns the lowest-index error, matching what a serial loop that stops at
// the first failure would report. workers <= 0 means GOMAXPROCS; workers == 1
// degenerates to the serial loop on the caller's goroutine.
func parallelEach(workers, n int, job func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
