package bench

import (
	"testing"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// extrapCases is the cross-section the extrapolation equivalence tests run:
// one representative of each measure-loop family (tree bcast in both
// window-based and DMA protocols, torus allreduce) at iteration counts long
// enough for the detector to engage.
func extrapCases() []struct {
	name string
	run  func(mode RunMode) (sim.Time, error)
} {
	quad := goldenConfig(hw.Quad)
	smp := goldenConfig(hw.SMP)
	return []struct {
		name string
		run  func(mode RunMode) (sim.Time, error)
	}{
		{"bcast/shaddr/16K x8", func(m RunMode) (sim.Time, error) {
			return MeasureBcastRun(quad, mpi.BcastTreeShaddr, 16<<10, 8, m)
		}},
		{"bcast/shmem/256 x8", func(m RunMode) (sim.Time, error) {
			return MeasureBcastRun(quad, mpi.BcastTreeShmem, 256, 8, m)
		}},
		{"bcast/dmafifo/64K x8", func(m RunMode) (sim.Time, error) {
			return MeasureBcastRun(quad, mpi.BcastTreeDMAFIFO, 64<<10, 8, m)
		}},
		{"bcast/smp/4K x8", func(m RunMode) (sim.Time, error) {
			return MeasureBcastRun(smp, mpi.BcastTreeSMP, 4<<10, 8, m)
		}},
		{"allreduce/shaddr/512 x8", func(m RunMode) (sim.Time, error) {
			return MeasureAllreduceRun(quad, mpi.AllreduceTorusNew, 512, 8, m)
		}},
		{"allreduce/current/512 x8", func(m RunMode) (sim.Time, error) {
			return MeasureAllreduceRun(quad, mpi.AllreduceTorusCurrent, 512, 8, m)
		}},
	}
}

// TestExtrapolationMatchesFullExecution pins the tentpole contract: an
// extrapolated measurement is bit-identical to full execution, in both
// program and goroutine-reference modes — and the test fails if the detector
// never actually engaged, so the equality cannot pass vacuously.
func TestExtrapolationMatchesFullExecution(t *testing.T) {
	for _, tc := range extrapCases() {
		for _, reference := range []bool{false, true} {
			name := tc.name
			if reference {
				name += "/reference"
			}
			before := ExtrapolatedIters()
			got, err := tc.run(RunMode{Reference: reference})
			if err != nil {
				t.Fatalf("%s: extrap run: %v", name, err)
			}
			skipped := ExtrapolatedIters() - before
			want, err := tc.run(RunMode{Reference: reference, NoExtrap: true})
			if err != nil {
				t.Fatalf("%s: full run: %v", name, err)
			}
			if got != want {
				t.Errorf("%s: extrapolated %v != full execution %v", name, got, want)
			}
			if skipped == 0 {
				t.Errorf("%s: extrapolation never engaged (0 iterations skipped)", name)
			}
		}
	}
}

// TestExtrapolationPooledReuse leases the same pooled world alternately for
// extrapolated and full runs: extrapolation must land the kernel in a state
// Reset rewinds exactly like a fully executed run's, so every lease agrees.
func TestExtrapolationPooledReuse(t *testing.T) {
	cfg := goldenConfig(hw.Quad)
	run := func(m RunMode) sim.Time {
		t.Helper()
		got, err := MeasureBcastRun(cfg, mpi.BcastTreeShaddr, 16<<10, 6, m)
		if err != nil {
			t.Fatalf("measure: %v", err)
		}
		return got
	}
	want := run(RunMode{NoExtrap: true})
	for i := 0; i < 3; i++ {
		if got := run(RunMode{}); got != want {
			t.Fatalf("lease %d (extrap): got %v, want %v", i, got, want)
		}
		if got := run(RunMode{NoExtrap: true}); got != want {
			t.Fatalf("lease %d (full): got %v, want %v", i, got, want)
		}
	}
}

// TestExtrapolationItersScaleFidelity pins the high-iters mode: a 32×-scaled
// iteration count must produce exactly the value full execution of all 128
// iterations produces, with the tail extrapolated rather than executed —
// at least 120 of the 128 iterations must have been skipped (detection is
// allowed a warmup transient plus the attempt budget, nothing more).
func TestExtrapolationItersScaleFidelity(t *testing.T) {
	cfg := goldenConfig(hw.Quad)
	const iters = 4 * 32
	want, err := MeasureBcastRun(cfg, mpi.BcastTreeShaddr, 16<<10, iters, RunMode{NoExtrap: true})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	before := ExtrapolatedIters()
	got, err := MeasureBcastRun(cfg, mpi.BcastTreeShaddr, 16<<10, iters, RunMode{})
	if err != nil {
		t.Fatalf("scaled: %v", err)
	}
	if got != want {
		t.Fatalf("32x-iters extrapolated average %v != full execution %v", got, want)
	}
	if skipped := ExtrapolatedIters() - before; skipped < iters-8 {
		t.Fatalf("32x-iters run skipped only %d of %d iterations", skipped, iters)
	}
}
