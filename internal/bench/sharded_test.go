package bench

import (
	"testing"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

// shardedGolden returns the golden 2x2x2 phantom partition split into the
// given number of kernel shards.
func shardedGolden(mode hw.Mode, shards int) hw.Config {
	cfg := goldenConfig(mode)
	cfg.Shards = shards
	return cfg
}

// TestShardedMeasureMatchesSerial pins the bench harness's half of the
// sharding contract: a measurement on a sharded partition — parallel or in
// the sequential noShard vehicle — returns the exact virtual time of the
// single-shard run, per-shard worst-rank folding included. The serial run
// is measured both extrapolated and fully executed (sharded kernels refuse
// extrapolation at construction), so the pin covers the whole vehicle
// matrix: serial-extrap == serial-full == parallel-shards == noShard.
func TestShardedMeasureMatchesSerial(t *testing.T) {
	DrainWorldPool()
	defer DrainWorldPool()
	serialCfg := goldenConfig(hw.Quad)
	shardCfg := shardedGolden(hw.Quad, 4)
	const iters = 8 // long enough for the serial run's extrapolator to engage
	for _, algo := range []string{mpi.BcastTreeShaddr, mpi.BcastTreeDMAFIFO, mpi.BcastTreeDMADirect, mpi.BcastTreeShmem} {
		serial, err := MeasureBcastRun(serialCfg, algo, 64<<10, iters, RunMode{})
		if err != nil {
			t.Fatalf("%s serial: %v", algo, err)
		}
		full, err := MeasureBcastRun(serialCfg, algo, 64<<10, iters, RunMode{NoExtrap: true})
		if err != nil {
			t.Fatalf("%s serial full: %v", algo, err)
		}
		if full != serial {
			t.Errorf("%s: fully executed time %v != extrapolated serial %v", algo, full, serial)
		}
		parallel, err := MeasureBcastRun(shardCfg, algo, 64<<10, iters, RunMode{})
		if err != nil {
			t.Fatalf("%s sharded: %v", algo, err)
		}
		if parallel != serial {
			t.Errorf("%s: sharded time %v != serial %v", algo, parallel, serial)
		}
		sequential, err := MeasureBcastRun(shardCfg, algo, 64<<10, iters, RunMode{NoShard: true})
		if err != nil {
			t.Fatalf("%s noShard: %v", algo, err)
		}
		if sequential != serial {
			t.Errorf("%s: noShard time %v != serial %v", algo, sequential, serial)
		}
	}
}

// TestShardedWorldsPooledSeparately pins the pool's lease-key behavior:
// configs differing only in shard count never share a world (hw.Config keys
// the pool, and Shards is part of it), and a pooled sharded world leases
// back sharded. The noShard vehicle is kernel state, not config — it reuses
// the sharded world and must be (re)applied on every lease, which the
// vehicle-equality test above exercises on a pooled world.
func TestShardedWorldsPooledSeparately(t *testing.T) {
	DrainWorldPool()
	defer DrainWorldPool()
	serialCfg := goldenConfig(hw.Quad)
	shardCfg := shardedGolden(hw.Quad, 2)
	if _, err := MeasureBcastRun(serialCfg, mpi.BcastTreeShaddr, 16<<10, 1, RunMode{}); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureBcastRun(shardCfg, mpi.BcastTreeShaddr, 16<<10, 1, RunMode{}); err != nil {
		t.Fatal(err)
	}
	if n := PooledWorlds(); n != 2 {
		t.Fatalf("%d pooled worlds, want 2 (serial and sharded configs must not share)", n)
	}
	ws, err := leaseWorld(shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ws.Sharded() {
		t.Error("world leased for the sharded config is not sharded")
	}
	wc, err := leaseWorld(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Sharded() {
		t.Error("world leased for the single-shard config is sharded")
	}
	releaseWorld(shardCfg, ws, nil)
	releaseWorld(serialCfg, wc, nil)
}

// TestShardedFig7Quick runs the quick Fig. 7 sweep sharded and serial: the
// whole figure — every series and size — must be value-identical, pooled
// worlds, parallel workers and all.
func TestShardedFig7Quick(t *testing.T) {
	DrainWorldPool()
	defer DrainWorldPool()
	base := Options{Racks: 1, Iters: 1, Quick: true}
	serial, err := Fig7(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	got, err := Fig7(sharded)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range serial.Series {
		for vi, v := range s.Values {
			if got.Series[si].Values[vi] != v {
				t.Errorf("%s @ %s: sharded %v != serial %v",
					s.Label, SizeLabel(serial.Sizes[vi]), got.Series[si].Values[vi], v)
			}
		}
	}
}
