package bench

import (
	"strings"
	"testing"

	"bgpcoll/internal/coll"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

func init() { coll.Register() }

func tinyConfig() hw.Config {
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: 2, DY: 2, DZ: 2}
	cfg.Functional = false
	return cfg
}

func TestMeasureBcastMatchesFig5Loop(t *testing.T) {
	cfg := tinyConfig()
	one, err := MeasureBcast(cfg, mpi.BcastTorusShaddr, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := MeasureBcast(cfg, mpi.BcastTorusShaddr, 64<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if one <= 0 || three <= 0 {
		t.Fatal("non-positive measurement")
	}
	// Averaging over iterations must not blow up: repeated operations cost
	// about the same (mapping amortizes, so later iterations are cheaper).
	if three > one {
		t.Fatalf("3-iteration average %v exceeds first-iteration time %v", three, one)
	}
}

func TestMeasureAllreduce(t *testing.T) {
	cfg := tinyConfig()
	el, err := MeasureAllreduce(cfg, mpi.AllreduceTorusNew, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if el <= 0 {
		t.Fatal("non-positive measurement")
	}
}

func TestBandwidthMBs(t *testing.T) {
	if got := BandwidthMBs(1<<20, sim.Millisecond); got < 1048 || got > 1049 {
		t.Fatalf("1MB/ms = %v MB/s", got)
	}
	if BandwidthMBs(100, 0) != 0 {
		t.Fatal("zero time should yield zero bandwidth")
	}
}

func TestSizeLabel(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{{8, "8"}, {1 << 10, "1K"}, {128 << 10, "128K"}, {2 << 20, "2M"}, {1500, "1500"}}
	for _, c := range cases {
		if got := SizeLabel(c.n); got != c.want {
			t.Errorf("SizeLabel(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSweepKeepsHeadlines(t *testing.T) {
	full := []int{1, 2, 3, 4, 5, 6, 7}
	q := sweep(true, full, 5)
	want := map[int]bool{1: true, 4: true, 5: true, 7: true}
	for _, v := range q {
		if !want[v] {
			t.Fatalf("unexpected size %d in %v", v, q)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("missing sizes %v", want)
	}
	if got := sweep(false, full); len(got) != len(full) {
		t.Fatal("non-quick sweep trimmed")
	}
}

func TestFigureValueAndPrint(t *testing.T) {
	fig := &Figure{
		ID: "T", Title: "test", XLabel: "size", YLabel: "MB/s",
		Sizes:  []int{1 << 10, 2 << 10},
		Series: []Series{{Label: "a", Values: []float64{1, 2}}},
	}
	v, ok := fig.Value("a", 2<<10)
	if !ok || v != 2 {
		t.Fatalf("Value = %v %v", v, ok)
	}
	if _, ok := fig.Value("b", 1<<10); ok {
		t.Fatal("unknown series found")
	}
	if _, ok := fig.Value("a", 3<<10); ok {
		t.Fatal("unknown size found")
	}
	var sb strings.Builder
	fig.Print(&sb)
	out := sb.String()
	for _, frag := range []string{"T: test", "1K", "2K", "a", "2.00"} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed table missing %q:\n%s", frag, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.iters(3) != 3 {
		t.Error("default iters ignored")
	}
	o.Iters = 7
	if o.iters(3) != 7 {
		t.Error("explicit iters ignored")
	}
}

// TestExperimentsRegistry ensures the experiment list stays paper-complete.
func TestExperimentsRegistry(t *testing.T) {
	want := []string{"fig6", "fig7", "fig8", "fig9", "fig10", "table1", "figs"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Run == nil {
			t.Errorf("experiment %s has no runner", e.ID)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	fig := &Figure{
		ID: "T", Title: "t", XLabel: "size", YLabel: "MB/s",
		Sizes:  []int{1024},
		Series: []Series{{Label: "a", Values: []float64{1.5}}},
	}
	var sb strings.Builder
	fig.CSV(&sb)
	out := sb.String()
	for _, frag := range []string{"size,a", "1024,1.500", "# T: t (MB/s)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("CSV missing %q:\n%s", frag, out)
		}
	}
}
