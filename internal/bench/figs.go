// figS is the rack-scale capacity experiment layered on top of the paper's
// figures: quad-mode partitions from 256 to 1,048,576 ranks running the
// small-message core-specialized tree broadcast and MPI_Barrier. Unlike the
// paper figures, which report only virtual time, figS also records what the
// simulator itself costs at each scale — wall-clock construction time,
// incremental growth time (Reconfigure from the previous point), measurement
// wall time, per-rank resident bytes, and peak heap — so capacity regressions
// show up in the committed benchmark record, not just in OOM kills.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// ScaleBcastMsg is the figS broadcast payload: 8 KB keeps the run in the
// small-message regime where per-rank software overheads — exactly the costs
// the flyweight layout targets — dominate over stream time.
const ScaleBcastMsg = 8 << 10

// scalePoint is one partition of the capacity sweep.
type scalePoint struct {
	ranks int
	torus [3]int
}

// scalePoints lists the sweep geometries: quad-mode partitions from 256
// ranks (a 64-node board) to 1,048,576 ranks (262,144 nodes, a 256-rack
// class machine — beyond any built BG/P, which is the point of a capacity
// experiment). Quick mode keeps three decades including the 65,536-rank
// point the CI capacity smoke budget is written against.
func scalePoints(quick bool) []scalePoint {
	pts := []scalePoint{
		{256, [3]int{4, 4, 4}},
		{1024, [3]int{8, 8, 4}},
		{4096, [3]int{16, 8, 8}},
		{16384, [3]int{16, 16, 16}},
		{65536, [3]int{32, 32, 16}},
		{262144, [3]int{64, 32, 32}},
		{1048576, [3]int{64, 64, 64}},
	}
	if quick {
		return []scalePoint{pts[0], pts[2], pts[4]}
	}
	return pts
}

// scaleConfig is the partition for one capacity point: quad mode, phantom
// buffers, single shard. The sweep always runs single-shard because growth
// is measured through Reconfigure, which only single-shard worlds support
// (the shard partition is fixed at kernel construction); Options.Shards is
// ignored like the torus experiments ignore it.
func scaleConfig(p scalePoint) hw.Config {
	cfg := hw.DefaultConfig()
	cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = p.torus[0], p.torus[1], p.torus[2]
	cfg.Mode = hw.Quad
	cfg.Functional = false
	return cfg
}

// measureBcastOn runs the Fig. 5 loop for one broadcast on an already-built
// world, bypassing the world pool: figS owns its worlds so that construction
// and footprint are attributable per point.
func measureBcastOn(w *mpi.World, algo string, msg, iters int, mode RunMode) (sim.Time, error) {
	w.Tunables.Bcast = algo
	w.M.K.SetNoProgram(mode.Reference || !mpi.HasProgBcast(algo))
	w.M.K.SetNoExtrap(mode.NoExtrap)
	ext := newExtrapolator(w, iters, mode.NoExtrap)
	worsts := make([]sim.Time, w.M.K.ShardCount())
	loops := make([]measureLoop, w.Size())
	_, err := w.RunProgram(func(r *mpi.Rank) {
		l := &loops[r.Rank()]
		l.r, l.buf, l.iters, l.worst = r, r.NewBuf(msg), iters, &worsts[r.Shard().ID()]
		l.afterBarrierFn = l.bcastAfterBarrier
		l.afterOpFn = l.afterOp
		ext.attach(l)
		l.iter()
	})
	return maxTime(worsts), err
}

// measureBarrierOn runs the loop with MPI_Barrier itself as the timed
// operation: one untimed barrier aligns the ranks, then the timed barrier's
// release arrives one interrupt-network latency later, so the per-iteration
// time equals Params.BarrierLatency exactly (analytic.TreeBarrier).
func measureBarrierOn(w *mpi.World, iters int, mode RunMode) (sim.Time, error) {
	w.M.K.SetNoProgram(mode.Reference)
	w.M.K.SetNoExtrap(mode.NoExtrap)
	ext := newExtrapolator(w, iters, mode.NoExtrap)
	worsts := make([]sim.Time, w.M.K.ShardCount())
	loops := make([]measureLoop, w.Size())
	_, err := w.RunProgram(func(r *mpi.Rank) {
		l := &loops[r.Rank()]
		l.r, l.iters, l.worst = r, iters, &worsts[r.Shard().ID()]
		l.afterBarrierFn = l.barrierAfterBarrier
		l.afterOpFn = l.afterOp
		ext.attach(l)
		l.iter()
	})
	return maxTime(worsts), err
}

// scaleCell is everything figS reports about one partition size.
type scaleCell struct {
	bcast, barrier           sim.Time
	construct, grow, runWall time.Duration
	perRankBytes             float64
	peakHeapMB               float64
}

// measureScalePoint builds a fresh world for cfg and measures it. Heap
// accounting brackets construction with GC'd HeapInuse snapshots, which is
// why the sweep runs its points serially on the calling goroutine —
// concurrent kernel runs would pollute the deltas (Options.Workers is
// ignored). The world is returned still live so the caller can use it as the
// growth donor for the next point.
func measureScalePoint(cfg hw.Config, msg, iters int, mode RunMode) (scaleCell, *mpi.World, error) {
	runtime.GC()
	var before, settled, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return scaleCell{}, nil, err
	}
	cell := scaleCell{construct: time.Since(t0)}
	runtime.GC()
	runtime.ReadMemStats(&settled)
	if settled.HeapInuse > before.HeapInuse {
		cell.perRankBytes = float64(settled.HeapInuse-before.HeapInuse) / float64(cfg.Ranks())
	}
	t0 = time.Now()
	cell.bcast, err = measureBcastOn(w, mpi.BcastTreeShaddr, msg, iters, mode)
	if err != nil {
		return cell, nil, err
	}
	resetBetweenRuns(w)
	cell.barrier, err = measureBarrierOn(w, iters, mode)
	if err != nil {
		return cell, nil, err
	}
	cell.runWall = time.Since(t0)
	runtime.ReadMemStats(&after) // no GC: capture the run's high-water spans
	cell.peakHeapMB = float64(maxU64(settled.HeapInuse, after.HeapInuse)) / float64(1<<20)
	resetBetweenRuns(w)
	return cell, w, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// FigScale runs the capacity sweep. The Sizes axis is the rank count; the
// series mix units (labelled per series): virtual-time latencies for the two
// collectives, wall-clock construction/growth/run times, and footprint.
//
// The "Grow" series measures incremental construction: the previous point's
// world is grown in place with Reconfigure instead of being rebuilt, so the
// column is the marginal cost of capacity the partition already mostly owns.
// The first point has no predecessor; its grow cost is its cold build.
//
// Each point grows the donor first, drops it, and only then builds the fresh
// world it measures. The order matters for footprint, not semantics: growing
// after the build would hold two full-size worlds live at once at the top
// point (~2x peak RSS), and on a THP-less fault path the extra gigabytes of
// first-touch page zeroing dominate the sweep's wall clock. Dropping the
// grown donor before measureScalePoint's leading GC lets the fresh build
// reuse its freed spans instead of faulting new ones.
//
// Reference mode is honoured but inadvisable at the full scale: the top
// point would park a goroutine per rank (2^20 of them). The quick sweep caps
// at 65,536 ranks and runs fine in either mode.
func FigScale(o Options) (*Figure, error) {
	pts := scalePoints(o.Quick)
	iters := o.iters(2)
	sizes := make([]int, len(pts))
	for i, p := range pts {
		sizes[i] = p.ranks
	}
	fig := &Figure{
		ID:     "FigS",
		Title:  "Rack-scale capacity: small-message collectives and simulator footprint",
		XLabel: "ranks",
		YLabel: "mixed (per series label)",
		Ranks:  pts[len(pts)-1].ranks,
		Iters:  iters,
		Sizes:  sizes,
	}
	labels := []string{
		"Bcast 8K (us)",
		"Barrier (us)",
		"Construct (ms)",
		"Grow (ms)",
		"Run wall (ms)",
		"Per-rank (bytes)",
		"Peak heap (MB)",
	}
	fig.Series = make([]Series, len(labels))
	for i, l := range labels {
		fig.Series[i] = Series{Label: l, Values: make([]float64, len(pts))}
	}
	var donor *mpi.World
	for i, pt := range pts {
		cfg := scaleConfig(pt)
		var grow time.Duration
		if donor != nil {
			t0 := time.Now()
			if err := donor.Reconfigure(cfg); err != nil {
				return nil, fmt.Errorf("figS grow to %d ranks: %w", pt.ranks, err)
			}
			grow = time.Since(t0)
			donor = nil // grown world becomes garbage before the fresh build
		}
		cell, w, err := measureScalePoint(cfg, ScaleBcastMsg, iters, RunMode{Reference: o.Reference, NoExtrap: o.NoExtrap})
		if err != nil {
			return nil, fmt.Errorf("figS @ %d ranks: %w", pt.ranks, err)
		}
		if i == 0 {
			cell.grow = cell.construct
		} else {
			cell.grow = grow
		}
		donor = w // the fresh, measured world seeds the next point's growth
		for s, v := range []float64{
			cell.bcast.Microseconds(),
			cell.barrier.Microseconds(),
			float64(cell.construct) / float64(time.Millisecond),
			float64(cell.grow) / float64(time.Millisecond),
			float64(cell.runWall) / float64(time.Millisecond),
			cell.perRankBytes,
			cell.peakHeapMB,
		} {
			fig.Series[s].Values[i] = v
		}
	}
	return fig, nil
}
