package bench

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// bcastRow is one curve of a broadcast figure: a label, the partition it
// runs on, and the algorithm under test.
type bcastRow struct {
	Label string
	Cfg   hw.Config
	Algo  string
}

// bcastGrid measures every (row, size) cell of a broadcast figure. Each cell
// is an independent deterministic kernel run, so the grid fans across the
// sweep runner's worker pool; values land in fixed (row, size) slots
// regardless of completion order.
func bcastGrid(o Options, rows []bcastRow, sizes []int, iters int, toValue func(msg int, t sim.Time) float64) ([]Series, error) {
	series := make([]Series, len(rows))
	for r := range series {
		series[r] = Series{Label: rows[r].Label, Values: make([]float64, len(sizes))}
	}
	err := parallelEach(o.Workers, len(rows)*len(sizes), func(i int) error {
		r, s := i/len(sizes), i%len(sizes)
		t, err := MeasureBcastRun(rows[r].Cfg, rows[r].Algo, sizes[s], iters, RunMode{Reference: o.Reference, NoShard: o.NoShard})
		if err != nil {
			return fmt.Errorf("%s @ %s: %w", rows[r].Label, SizeLabel(sizes[s]), err)
		}
		series[r].Values[s] = toValue(sizes[s], t)
		return nil
	})
	return series, err
}

func latencyUS(_ int, t sim.Time) float64 { return t.Microseconds() }

// Fig6 reproduces "Latency of MPI Bcast" over the collective network: short
// messages, quad mode, comparing the shared-memory algorithm, the DMA FIFO
// algorithm, and the SMP-mode hardware reference.
func Fig6(o Options) (*Figure, error) {
	sizes := sweep(o.Quick, []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, 8)
	iters := o.iters(3)
	quad, err := treeConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	smp, err := treeConfig(o, hw.SMP)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig6",
		Title:  fmt.Sprintf("Latency of MPI_Bcast, collective network, %d ranks", quad.Ranks()),
		XLabel: "size",
		YLabel: "latency (us)",
		Ranks:  quad.Ranks(),
		Iters:  iters,
		Sizes:  sizes,
	}
	fig.Series, err = bcastGrid(o, []bcastRow{
		{"CollectiveNetwork+Shmem", quad, mpi.BcastTreeShmem},
		{"CollectiveNetwork+DMA FIFO", quad, mpi.BcastTreeDMAFIFO},
		{"CollectiveNetwork (SMP)", smp, mpi.BcastTreeSMP},
	}, sizes, iters, latencyUS)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig7 reproduces "Bandwidth of MPI Bcast" over the collective network:
// medium and large messages, comparing the shared-address algorithm against
// the DMA-based quad algorithms and the SMP reference.
func Fig7(o Options) (*Figure, error) {
	sizes := sweep(o.Quick, []int{
		1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10,
		256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
	}, 128<<10)
	iters := o.iters(3) // amortize one-time window mappings, like the paper's ITERS loop
	quad, err := treeConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	smp, err := treeConfig(o, hw.SMP)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig7",
		Title:  fmt.Sprintf("Bandwidth of MPI_Bcast, collective network, %d ranks", quad.Ranks()),
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  quad.Ranks(),
		Iters:  iters,
		Sizes:  sizes,
	}
	fig.Series, err = bcastGrid(o, []bcastRow{
		{"CollectiveNetwork+Shaddr", quad, mpi.BcastTreeShaddr},
		{"CollectiveNetwork+DMA FIFO", quad, mpi.BcastTreeDMAFIFO},
		{"CollectiveNetwork+DMA Direct Put", quad, mpi.BcastTreeDMADirect},
		{"CollectiveNetwork (SMP)", smp, mpi.BcastTreeSMP},
	}, sizes, iters, BandwidthMBs)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig8 reproduces the system-call overhead study: the shared-address tree
// broadcast with and without the buffer-mapping cache. Multiple iterations
// with the same buffers amortize the process-window system calls only when
// caching is enabled.
func Fig8(o Options) (*Figure, error) {
	sizes := sweep(o.Quick, []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10,
		256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
	}, 1<<10)
	iters := o.iters(4)
	cached, err := treeConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	nocache := cached
	nocache.Params.MapCacheEnabled = false
	fig := &Figure{
		ID:     "Fig8",
		Title:  fmt.Sprintf("Overhead of system calls, %d ranks", cached.Ranks()),
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  cached.Ranks(),
		Iters:  iters,
		Sizes:  sizes,
	}
	fig.Series, err = bcastGrid(o, []bcastRow{
		{"CollectiveNetwork+Shaddr+caching", cached, mpi.BcastTreeShaddr},
		{"CollectiveNetwork+Shaddr+nocaching", nocache, mpi.BcastTreeShaddr},
	}, sizes, iters, BandwidthMBs)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig9 reproduces the scaling study: the shared-address tree broadcast at
// 1024, 2048, 4096 and 8192 ranks. The collective network's bandwidth is
// scale-invariant; only the traversal latency grows.
func Fig9(o Options) (*Figure, error) {
	sizes := sweep(o.Quick, []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
	}, 4<<20)
	iters := o.iters(3)
	geoms := []struct {
		ranks int
		torus [3]int
	}{
		{1024, [3]int{8, 8, 4}},
		{2048, [3]int{8, 8, 8}},
		{4096, [3]int{8, 8, 16}},
		{8192, [3]int{16, 8, 16}},
	}
	fig := &Figure{
		ID:     "Fig9",
		Title:  "Performance with increasing scale (CollectiveNetwork+Shaddr)",
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  geoms[len(geoms)-1].ranks,
		Iters:  iters,
		Sizes:  sizes,
	}
	rows := make([]bcastRow, len(geoms))
	for i, g := range geoms {
		cfg := hw.DefaultConfig()
		cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = g.torus[0], g.torus[1], g.torus[2]
		cfg.Mode = hw.Quad
		cfg.Functional = false
		cfg.Shards = o.Shards
		rows[i] = bcastRow{fmt.Sprintf("CollectiveNetwork+Shaddr(%d)", g.ranks), cfg, mpi.BcastTreeShaddr}
	}
	var err error
	fig.Series, err = bcastGrid(o, rows, sizes, iters, BandwidthMBs)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig10 reproduces "Bandwidth of MPI Bcast" over the torus: large messages,
// comparing the shared-address and Bcast-FIFO algorithms against the DMA
// direct-put broadcast in quad and SMP modes.
func Fig10(o Options) (*Figure, error) {
	sizes := sweep(o.Quick, []int{
		64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
	}, 2<<20, 4<<20)
	iters := o.iters(1)
	quad, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	smp, err := torusConfig(o, hw.SMP)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig10",
		Title:  fmt.Sprintf("Bandwidth of MPI_Bcast, 3D torus, %d ranks", quad.Ranks()),
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  quad.Ranks(),
		Iters:  iters,
		Sizes:  sizes,
	}
	fig.Series, err = bcastGrid(o, []bcastRow{
		{"Torus+Shaddr", quad, mpi.BcastTorusShaddr},
		{"Torus+FIFO", quad, mpi.BcastTorusFIFO},
		{"Torus Direct Put", quad, mpi.BcastTorusDirectPut},
		{"Torus Direct Put(SMP)", smp, mpi.BcastTorusDirectPut},
	}, sizes, iters, BandwidthMBs)
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Table1 reproduces "Allreduce throughput": doubles counts from 16K to 512K,
// the proposed core-specialized algorithm against the current DMA-based one.
func Table1(o Options) (*Figure, error) {
	doubleCounts := sweep(o.Quick, []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}, 512<<10)
	iters := o.iters(1)
	cfg, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "TableI",
		Title:  fmt.Sprintf("Allreduce throughput (doubles), 3D torus, %d ranks", cfg.Ranks()),
		XLabel: "doubles",
		YLabel: "throughput (MB/s)",
		Ranks:  cfg.Ranks(),
		Iters:  iters,
		Sizes:  doubleCounts,
	}
	rows := []struct {
		label string
		algo  string
	}{
		{"New (MB/s)", mpi.AllreduceTorusNew},
		{"Current (MB/s)", mpi.AllreduceTorusCurrent},
	}
	fig.Series = make([]Series, len(rows))
	for r := range rows {
		fig.Series[r] = Series{Label: rows[r].label, Values: make([]float64, len(doubleCounts))}
	}
	err = parallelEach(o.Workers, len(rows)*len(doubleCounts), func(i int) error {
		r, s := i/len(doubleCounts), i%len(doubleCounts)
		doubles := doubleCounts[s]
		t, err := MeasureAllreduceRun(cfg, rows[r].algo, doubles, iters, RunMode{Reference: o.Reference, NoShard: o.NoShard})
		if err != nil {
			return err
		}
		fig.Series[r].Values[s] = BandwidthMBs(doubles*data.Float64Len, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// namedExperiment binds an experiment id to its runner.
type namedExperiment struct {
	ID  string
	Run func(Options) (*Figure, error)
}

// Experiments lists every reproducible artifact in paper order.
func Experiments() []namedExperiment {
	return []namedExperiment{
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"table1", Table1},
		{"figs", FigScale},
	}
}
