package bench

import (
	"fmt"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// bcastRow is one curve of a broadcast figure: a label, the partition it
// runs on, and the algorithm under test.
type bcastRow struct {
	Label string
	Cfg   hw.Config
	Algo  string
}

// bcastPlan builds the row-major cell grid for a broadcast figure. fig
// arrives with metadata and Sizes set; the series labels are derived from
// the rows and the values stay empty until Assemble.
func bcastPlan(id string, fig Figure, rows []bcastRow, iters int, value func(c Cell, t sim.Time) float64) *FigurePlan {
	fig.Iters = iters
	fig.Series = make([]Series, len(rows))
	cells := make([]Cell, 0, len(rows)*len(fig.Sizes))
	for r, row := range rows {
		fig.Series[r] = Series{Label: row.Label}
		for _, size := range fig.Sizes {
			cells = append(cells, Cell{
				Experiment: id,
				Series:     row.Label,
				Cfg:        row.Cfg,
				Kind:       CellBcast,
				Algo:       row.Algo,
				Arg:        size,
				Iters:      iters,
			})
		}
	}
	return &FigurePlan{Fig: fig, Cells: cells, value: value}
}

func latencyUS(_ Cell, t sim.Time) float64 { return t.Microseconds() }

// bandwidth is the MB/s conversion shared by every throughput figure; it
// works for allreduce cells too because Cell.Bytes already accounts for the
// doubles axis.
func bandwidth(c Cell, t sim.Time) float64 { return BandwidthMBs(c.Bytes(), t) }

// planFig6 decomposes "Latency of MPI Bcast" over the collective network:
// short messages, quad mode, comparing the shared-memory algorithm, the DMA
// FIFO algorithm, and the SMP-mode hardware reference.
func planFig6(o Options) (*FigurePlan, error) {
	sizes := sweep(o.Quick, []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, 8)
	quad, err := treeConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	smp, err := treeConfig(o, hw.SMP)
	if err != nil {
		return nil, err
	}
	return bcastPlan("fig6", Figure{
		ID:     "Fig6",
		Title:  fmt.Sprintf("Latency of MPI_Bcast, collective network, %d ranks", quad.Ranks()),
		XLabel: "size",
		YLabel: "latency (us)",
		Ranks:  quad.Ranks(),
		Sizes:  sizes,
	}, []bcastRow{
		{"CollectiveNetwork+Shmem", quad, mpi.BcastTreeShmem},
		{"CollectiveNetwork+DMA FIFO", quad, mpi.BcastTreeDMAFIFO},
		{"CollectiveNetwork (SMP)", smp, mpi.BcastTreeSMP},
	}, o.iters(3), latencyUS), nil
}

// Fig6 reproduces planFig6's figure in-process.
func Fig6(o Options) (*Figure, error) {
	return runPlanned(o, planFig6)
}

// planFig7 decomposes "Bandwidth of MPI Bcast" over the collective network:
// medium and large messages, comparing the shared-address algorithm against
// the DMA-based quad algorithms and the SMP reference.
func planFig7(o Options) (*FigurePlan, error) {
	sizes := sweep(o.Quick, []int{
		1 << 10, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10,
		256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
	}, 128<<10)
	quad, err := treeConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	smp, err := treeConfig(o, hw.SMP)
	if err != nil {
		return nil, err
	}
	// iters amortizes one-time window mappings, like the paper's ITERS loop.
	return bcastPlan("fig7", Figure{
		ID:     "Fig7",
		Title:  fmt.Sprintf("Bandwidth of MPI_Bcast, collective network, %d ranks", quad.Ranks()),
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  quad.Ranks(),
		Sizes:  sizes,
	}, []bcastRow{
		{"CollectiveNetwork+Shaddr", quad, mpi.BcastTreeShaddr},
		{"CollectiveNetwork+DMA FIFO", quad, mpi.BcastTreeDMAFIFO},
		{"CollectiveNetwork+DMA Direct Put", quad, mpi.BcastTreeDMADirect},
		{"CollectiveNetwork (SMP)", smp, mpi.BcastTreeSMP},
	}, o.iters(3), bandwidth), nil
}

// Fig7 reproduces planFig7's figure in-process.
func Fig7(o Options) (*Figure, error) {
	return runPlanned(o, planFig7)
}

// planFig8 decomposes the system-call overhead study: the shared-address
// tree broadcast with and without the buffer-mapping cache. Multiple
// iterations with the same buffers amortize the process-window system calls
// only when caching is enabled.
func planFig8(o Options) (*FigurePlan, error) {
	sizes := sweep(o.Quick, []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10,
		256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
	}, 1<<10)
	cached, err := treeConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	nocache := cached
	nocache.Params.MapCacheEnabled = false
	return bcastPlan("fig8", Figure{
		ID:     "Fig8",
		Title:  fmt.Sprintf("Overhead of system calls, %d ranks", cached.Ranks()),
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  cached.Ranks(),
		Sizes:  sizes,
	}, []bcastRow{
		{"CollectiveNetwork+Shaddr+caching", cached, mpi.BcastTreeShaddr},
		{"CollectiveNetwork+Shaddr+nocaching", nocache, mpi.BcastTreeShaddr},
	}, o.iters(4), bandwidth), nil
}

// Fig8 reproduces planFig8's figure in-process.
func Fig8(o Options) (*Figure, error) {
	return runPlanned(o, planFig8)
}

// planFig9 decomposes the scaling study: the shared-address tree broadcast
// at 1024, 2048, 4096 and 8192 ranks. The collective network's bandwidth is
// scale-invariant; only the traversal latency grows.
func planFig9(o Options) (*FigurePlan, error) {
	sizes := sweep(o.Quick, []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20,
	}, 4<<20)
	geoms := []struct {
		ranks int
		torus [3]int
	}{
		{1024, [3]int{8, 8, 4}},
		{2048, [3]int{8, 8, 8}},
		{4096, [3]int{8, 8, 16}},
		{8192, [3]int{16, 8, 16}},
	}
	rows := make([]bcastRow, len(geoms))
	for i, g := range geoms {
		cfg := hw.DefaultConfig()
		cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = g.torus[0], g.torus[1], g.torus[2]
		cfg.Mode = hw.Quad
		cfg.Functional = false
		cfg.Shards = o.Shards
		rows[i] = bcastRow{fmt.Sprintf("CollectiveNetwork+Shaddr(%d)", g.ranks), cfg, mpi.BcastTreeShaddr}
	}
	return bcastPlan("fig9", Figure{
		ID:     "Fig9",
		Title:  "Performance with increasing scale (CollectiveNetwork+Shaddr)",
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  geoms[len(geoms)-1].ranks,
		Sizes:  sizes,
	}, rows, o.iters(3), bandwidth), nil
}

// Fig9 reproduces planFig9's figure in-process.
func Fig9(o Options) (*Figure, error) {
	return runPlanned(o, planFig9)
}

// planFig10 decomposes "Bandwidth of MPI Bcast" over the torus: large
// messages, comparing the shared-address and Bcast-FIFO algorithms against
// the DMA direct-put broadcast in quad and SMP modes.
func planFig10(o Options) (*FigurePlan, error) {
	sizes := sweep(o.Quick, []int{
		64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20,
	}, 2<<20, 4<<20)
	quad, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	smp, err := torusConfig(o, hw.SMP)
	if err != nil {
		return nil, err
	}
	return bcastPlan("fig10", Figure{
		ID:     "Fig10",
		Title:  fmt.Sprintf("Bandwidth of MPI_Bcast, 3D torus, %d ranks", quad.Ranks()),
		XLabel: "size",
		YLabel: "bandwidth (MB/s)",
		Ranks:  quad.Ranks(),
		Sizes:  sizes,
	}, []bcastRow{
		{"Torus+Shaddr", quad, mpi.BcastTorusShaddr},
		{"Torus+FIFO", quad, mpi.BcastTorusFIFO},
		{"Torus Direct Put", quad, mpi.BcastTorusDirectPut},
		{"Torus Direct Put(SMP)", smp, mpi.BcastTorusDirectPut},
	}, o.iters(1), bandwidth), nil
}

// Fig10 reproduces planFig10's figure in-process.
func Fig10(o Options) (*Figure, error) {
	return runPlanned(o, planFig10)
}

// planTable1 decomposes "Allreduce throughput": doubles counts from 16K to
// 512K, the proposed core-specialized algorithm against the current
// DMA-based one.
func planTable1(o Options) (*FigurePlan, error) {
	doubleCounts := sweep(o.Quick, []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}, 512<<10)
	iters := o.iters(1)
	cfg, err := torusConfig(o, hw.Quad)
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "TableI",
		Title:  fmt.Sprintf("Allreduce throughput (doubles), 3D torus, %d ranks", cfg.Ranks()),
		XLabel: "doubles",
		YLabel: "throughput (MB/s)",
		Ranks:  cfg.Ranks(),
		Iters:  iters,
		Sizes:  doubleCounts,
	}
	rows := []struct {
		label string
		algo  string
	}{
		{"New (MB/s)", mpi.AllreduceTorusNew},
		{"Current (MB/s)", mpi.AllreduceTorusCurrent},
	}
	fig.Series = make([]Series, len(rows))
	cells := make([]Cell, 0, len(rows)*len(doubleCounts))
	for r, row := range rows {
		fig.Series[r] = Series{Label: row.label}
		for _, doubles := range doubleCounts {
			cells = append(cells, Cell{
				Experiment: "table1",
				Series:     row.label,
				Cfg:        cfg,
				Kind:       CellAllreduce,
				Algo:       row.algo,
				Arg:        doubles,
				Iters:      iters,
			})
		}
	}
	return &FigurePlan{Fig: fig, Cells: cells, value: bandwidth}, nil
}

// Table1 reproduces planTable1's figure in-process.
func Table1(o Options) (*Figure, error) {
	return runPlanned(o, planTable1)
}

// runPlanned plans and runs one figure on the in-process sweep runner.
func runPlanned(o Options, plan func(Options) (*FigurePlan, error)) (*Figure, error) {
	p, err := plan(o)
	if err != nil {
		return nil, err
	}
	return runPlan(o, p)
}

// namedExperiment binds an experiment id to its runner.
type namedExperiment struct {
	ID  string
	Run func(Options) (*Figure, error)
}

// Experiments lists every reproducible artifact in paper order.
func Experiments() []namedExperiment {
	return []namedExperiment{
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"table1", Table1},
		{"figs", FigScale},
	}
}
