// Package analytic provides closed-form bottleneck models for the
// collective algorithms: for each algorithm it computes the largest
// per-resource service demand (links, DMA engine, cores, memory bus, tree
// channel) plus the pipeline-fill latency floor. The models serve two
// purposes:
//
//   - Cross-validation: tests assert that simulated times are never below
//     the bound (the simulator cannot beat physics) and, for large
//     messages, land within a small factor of it (the simulator does not
//     invent overheads the model cannot explain).
//   - Explanation: the dominant term names the bottleneck the paper
//     attributes each algorithm's behaviour to.
//
// All models describe a broadcast/allreduce from rank 0 in steady state.
package analytic

import (
	"fmt"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// Bound is a lower bound on an operation's duration, with the name of the
// binding resource.
type Bound struct {
	T          sim.Time
	Bottleneck string
}

func pick(cands map[string]sim.Time) Bound {
	var b Bound
	for name, t := range cands {
		if t > b.T {
			b = Bound{T: t, Bottleneck: name}
		}
	}
	return b
}

// torusColorDepth returns the maximum hop distance of a color route: the
// pipeline depth of the rectangle broadcast.
func torusColorDepth(t geometry.Torus) int {
	return (t.DX - 1) + (t.DY - 1) + (t.DZ - 1)
}

// copyRate returns the single-core copy rate for a working set of the given
// footprint.
func copyRate(p hw.Params, footprint int) float64 {
	if footprint <= p.CacheBytes {
		return p.CopyCachedBps
	}
	return p.CopyDRAMBps
}

// colorBytes is the per-color payload share of an n-byte message over six
// colors (the largest share, which gates completion).
func colorBytes(n int) int {
	offs, lens := geometry.SplitColors(n, 6)
	_ = offs
	max := 0
	for _, l := range lens {
		if l > max {
			max = l
		}
	}
	return max
}

// TorusBcastSMP bounds the SMP-mode direct-put broadcast: each color's
// partition streams through the root's injection link once; delivery ends
// one tree depth after the stream.
func TorusBcastSMP(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	part := p.TorusWireBytes(colorBytes(msg))
	depth := torusColorDepth(cfg.Torus)
	link := sim.TransferTime(part, p.TorusLinkBps) + sim.Time(depth)*p.TorusHopLatency
	dma := sim.TransferTime(p.TorusWireBytes(msg), p.DMABps) // root injects the whole message
	return pick(map[string]sim.Time{
		"color link stream": link,
		"root DMA inject":   dma,
	})
}

// TorusBcastDirectPut bounds the quad-mode direct-put broadcast: on every
// node the DMA engine must receive the full wire stream and additionally
// move it to the peers (read+write per local copy).
func TorusBcastDirectPut(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	peers := cfg.Mode.ProcsPerNode() - 1
	dmaBytes := p.TorusWireBytes(msg) + 2*peers*msg
	return pick(map[string]sim.Time{
		"node DMA (rx + local puts)": sim.TransferTime(dmaBytes, p.DMABps),
		"network":                    TorusBcastSMP(cfg, msg).T,
	})
}

// TorusBcastShaddr bounds the quad-mode shared-address broadcast: the
// network stream as in SMP mode, each peer core copying the full message,
// and the node memory bus serving all peer copies (the bus is accounted in
// operation bytes, matching hw.Node: BusBps is effective copy throughput).
func TorusBcastShaddr(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	peers := cfg.Mode.ProcsPerNode() - 1
	footprint := cfg.Mode.ProcsPerNode() * msg
	peerCopy := sim.TransferTime(msg, copyRate(p, footprint))
	return pick(map[string]sim.Time{
		"network":         TorusBcastSMP(cfg, msg).T,
		"peer core copy":  peerCopy,
		"node memory bus": sim.TransferTime(peers*msg, p.BusBps),
	})
}

// TorusBcastFIFO bounds the Bcast-FIFO broadcast: the shared-address terms
// plus the master's staging copy-in, with the doubled working set.
func TorusBcastFIFO(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	peers := cfg.Mode.ProcsPerNode() - 1
	footprint := 2 * cfg.Mode.ProcsPerNode() * msg
	rate := copyRate(p, footprint)
	stage := sim.TransferTime(msg, rate) // master copy-in; peers copy out in parallel
	return pick(map[string]sim.Time{
		"network":           TorusBcastSMP(cfg, msg).T,
		"FIFO staging copy": stage,
		"node memory bus":   sim.TransferTime((1+peers)*msg, p.BusBps),
	})
}

// TreeBcastSMP bounds the SMP-mode collective-network broadcast: the tree
// channel carries the wire stream once; injection and reception each run on
// their own thread.
func TreeBcastSMP(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	wire := p.TreeWireBytes(msg)
	depth := cfg.Torus.DX + cfg.Torus.DY + cfg.Torus.DZ
	return pick(map[string]sim.Time{
		"tree channel": sim.TransferTime(wire, p.TreeBps) + sim.Time(depth)*p.TreeHopLatency,
		"core touch":   sim.TransferTime(wire, p.TreeCoreTouchBps),
	})
}

// TreeBcastOneCore bounds the quad-mode algorithms whose master core both
// injects and receives (shmem and the DMA variants): two byte-touches per
// payload byte on one core.
func TreeBcastOneCore(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	wire := p.TreeWireBytes(msg)
	return pick(map[string]sim.Time{
		"master core inject+receive": sim.TransferTime(2*wire, p.TreeCoreTouchBps),
		"tree channel":               TreeBcastSMP(cfg, msg).T,
	})
}

// TreeBcastShaddr bounds the core-specialized quad algorithm: injection and
// reception on separate cores, so the tree channel binds, unless rank 2's
// double copy (own buffer plus the injector's) outpaces it.
func TreeBcastShaddr(cfg hw.Config, msg int) Bound {
	p := cfg.Params
	footprint := cfg.Mode.ProcsPerNode() * msg
	doubleCopy := sim.TransferTime(2*msg, copyRate(p, footprint))
	return pick(map[string]sim.Time{
		"tree channel":      TreeBcastSMP(cfg, msg).T,
		"rank2 double copy": doubleCopy,
	})
}

// TreeBarrier bounds MPI_Barrier: the global interrupt network releases all
// nodes one BarrierLatency after the last arrival, independent of scale —
// the asymptote the figS capacity sweep validates out to 10^6 ranks. In the
// simulator's steady state (every rank arriving at the same instant), the
// bound is exact.
func TreeBarrier(cfg hw.Config) Bound {
	return Bound{T: cfg.Params.BarrierLatency, Bottleneck: "interrupt network"}
}

// AllreduceNew bounds the proposed allreduce: per color, the partition
// streams up the reversed links and down the forward links (overlapped);
// each reducing core performs a fused multi-operand pass (2 accumulate
// equivalents per byte) over its partition; each peer core copies the full
// result out.
func AllreduceNew(cfg hw.Config, bytes int) Bound {
	p := cfg.Params
	_, lens := geometry.SplitAligned(bytes, 3, 8)
	part := 0
	for _, l := range lens {
		if l > part {
			part = l
		}
	}
	footprint := (2*cfg.Mode.ProcsPerNode() + 2) * bytes
	reduceRate := p.ReduceBps
	if footprint > p.CacheBytes {
		reduceRate = p.ReduceDRAMBps
	}
	depth := torusColorDepth(cfg.Torus)
	linkStream := sim.TransferTime(p.TorusWireBytes(part), p.TorusLinkBps) +
		sim.Time(2*depth)*p.TorusHopLatency
	return pick(map[string]sim.Time{
		"color link stream": linkStream,
		"local reduce":      sim.TransferTime(2*part, reduceRate),
		"result copy-out":   sim.TransferTime(bytes, copyRate(p, footprint)),
	})
}

// BcastBound dispatches to the model for a registered broadcast algorithm
// name (the mpi registry names).
func BcastBound(cfg hw.Config, algo string, msg int) (Bound, error) {
	switch algo {
	case "torus.directput":
		if cfg.Mode == hw.SMP {
			return TorusBcastSMP(cfg, msg), nil
		}
		return TorusBcastDirectPut(cfg, msg), nil
	case "torus.shaddr":
		return TorusBcastShaddr(cfg, msg), nil
	case "torus.fifo":
		return TorusBcastFIFO(cfg, msg), nil
	case "tree.smp":
		return TreeBcastSMP(cfg, msg), nil
	case "tree.shmem", "tree.dmafifo", "tree.dmadirect":
		return TreeBcastOneCore(cfg, msg), nil
	case "tree.shaddr":
		return TreeBcastShaddr(cfg, msg), nil
	}
	return Bound{}, fmt.Errorf("analytic: no model for algorithm %q", algo)
}
