package analytic

import (
	"testing"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/coll"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

func init() { coll.Register() }

func crossConfig(mode hw.Mode) hw.Config {
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: 4, DY: 4, DZ: 4}
	cfg.Mode = mode
	cfg.Functional = false
	return cfg
}

// TestSimulatorRespectsBounds cross-validates the simulator against the
// bottleneck models: for every modeled algorithm and a range of large
// messages, the simulated time must be at least the analytic lower bound
// and within a pipelining/fill slack factor of it.
func TestSimulatorRespectsBounds(t *testing.T) {
	cases := []struct {
		algo  string
		mode  hw.Mode
		slack float64 // allowed sim/bound ratio at large sizes
	}{
		{"torus.directput", hw.SMP, 1.5},
		{"torus.directput", hw.Quad, 1.5},
		{"torus.shaddr", hw.Quad, 1.6},
		{"torus.fifo", hw.Quad, 1.8},
		{"tree.smp", hw.SMP, 1.5},
		{"tree.shmem", hw.Quad, 1.8},
		{"tree.dmafifo", hw.Quad, 1.8},
		{"tree.dmadirect", hw.Quad, 1.8},
		{"tree.shaddr", hw.Quad, 1.6},
	}
	for _, c := range cases {
		cfg := crossConfig(c.mode)
		for _, msg := range []int{512 << 10, 2 << 20} {
			bound, err := BcastBound(cfg, c.algo, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bench.MeasureBcast(cfg, c.algo, msg, 2)
			if err != nil {
				t.Fatalf("%s: %v", c.algo, err)
			}
			if got < bound.T {
				t.Errorf("%s/%s @ %s: simulated %v beats physical bound %v (%s)",
					c.algo, c.mode, bench.SizeLabel(msg), got, bound.T, bound.Bottleneck)
			}
			if ratio := float64(got) / float64(bound.T); ratio > c.slack {
				t.Errorf("%s/%s @ %s: simulated %v is %.2fx the bound %v (%s); slack limit %.2f",
					c.algo, c.mode, bench.SizeLabel(msg), got, ratio, bound.T, bound.Bottleneck, c.slack)
			}
		}
	}
}

// TestAllreduceRespectsBound does the same for the proposed allreduce.
func TestAllreduceRespectsBound(t *testing.T) {
	cfg := crossConfig(hw.Quad)
	for _, doubles := range []int{64 << 10, 256 << 10} {
		bytes := doubles * data.Float64Len
		bound := AllreduceNew(cfg, bytes)
		got, err := bench.MeasureAllreduce(cfg, mpi.AllreduceTorusNew, doubles, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got < bound.T {
			t.Errorf("allreduce @ %d doubles: %v beats bound %v (%s)", doubles, got, bound.T, bound.Bottleneck)
		}
		if ratio := float64(got) / float64(bound.T); ratio > 3.0 {
			t.Errorf("allreduce @ %d doubles: %v is %.2fx bound %v (%s)",
				doubles, got, ratio, bound.T, bound.Bottleneck)
		}
	}
}

// TestBottleneckIdentification checks the models name the bottlenecks the
// paper attributes each design's behaviour to.
func TestBottleneckIdentification(t *testing.T) {
	quad := crossConfig(hw.Quad)
	const big = 2 << 20

	if b := TorusBcastDirectPut(quad, big); b.Bottleneck != "node DMA (rx + local puts)" {
		t.Errorf("quad direct put bottleneck = %s, want the DMA (paper §V-A)", b.Bottleneck)
	}
	if b := TorusBcastSMP(quad, big); b.Bottleneck != "color link stream" {
		t.Errorf("SMP torus bottleneck = %s, want the links", b.Bottleneck)
	}
	if b := TreeBcastOneCore(quad, big); b.Bottleneck != "master core inject+receive" {
		t.Errorf("one-core tree bottleneck = %s, want the master core (paper §V-B)", b.Bottleneck)
	}
	if b := TreeBcastShaddr(quad, 128<<10); b.Bottleneck != "tree channel" {
		t.Errorf("shaddr tree bottleneck = %s, want the tree channel", b.Bottleneck)
	}
}

// TestBoundsMonotone checks bounds grow with message size.
func TestBoundsMonotone(t *testing.T) {
	cfg := crossConfig(hw.Quad)
	for _, algo := range []string{"torus.directput", "torus.shaddr", "torus.fifo", "tree.shmem", "tree.shaddr"} {
		var prev sim.Time
		for _, msg := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
			b, err := BcastBound(cfg, algo, msg)
			if err != nil {
				t.Fatal(err)
			}
			if b.T <= prev {
				t.Errorf("%s: bound not increasing at %s", algo, bench.SizeLabel(msg))
			}
			prev = b.T
		}
	}
}

// TestShaddrAdvantagePredicted checks the models predict the paper's
// ordering before any simulation runs: the quad direct-put bound must
// exceed the shared-address bound by a large factor at 2 MB.
func TestShaddrAdvantagePredicted(t *testing.T) {
	cfg := crossConfig(hw.Quad)
	const msg = 2 << 20
	direct := TorusBcastDirectPut(cfg, msg).T
	shaddr := TorusBcastShaddr(cfg, msg).T
	if ratio := float64(direct) / float64(shaddr); ratio < 2.0 {
		t.Errorf("model predicts only %.2fx for shaddr vs direct put; paper says ~2.9x", ratio)
	}
	one := TreeBcastOneCore(cfg, 128<<10).T
	spec := TreeBcastShaddr(cfg, 128<<10).T
	if ratio := float64(one) / float64(spec); ratio < 1.2 {
		t.Errorf("model predicts only %.2fx for tree core specialization; paper says ~1.45x", ratio)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := BcastBound(crossConfig(hw.Quad), "nonsense", 1024); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
