package torus

import (
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

func newNet(t *testing.T, dx, dy, dz int) (*sim.Kernel, *Network, hw.Params) {
	t.Helper()
	k := sim.New()
	geom, err := geometry.NewTorus(dx, dy, dz)
	if err != nil {
		t.Fatal(err)
	}
	p := hw.DefaultParams()
	return k, New(k, geom, p), p
}

func TestLinkIdentity(t *testing.T) {
	_, net, _ := newNet(t, 4, 4, 4)
	a := net.Link(geometry.XYZ(1, 2, 3), geometry.X, geometry.Plus, 0)
	b := net.Link(geometry.XYZ(1, 2, 3), geometry.X, geometry.Plus, 0)
	if a != b {
		t.Fatal("same link not memoized")
	}
	c := net.Link(geometry.XYZ(1, 2, 3), geometry.X, geometry.Plus, 1)
	if a == c {
		t.Fatal("different lanes share a pipe")
	}
	d := net.Link(geometry.XYZ(1, 2, 3), geometry.X, geometry.Minus, 0)
	if a == d {
		t.Fatal("different directions share a pipe")
	}
}

func TestLineBcastArrivals(t *testing.T) {
	k, net, p := newNet(t, 8, 4, 4)
	from := geometry.XYZ(0, 0, 0)
	arr, _ := net.LineBcast(0, from, geometry.X, geometry.Plus, 0, 240)
	if len(arr) != 7 {
		t.Fatalf("arrivals = %d, want 7", len(arr))
	}
	wire := p.TorusWireBytes(240) // one 256-byte packet
	per := sim.TransferTime(wire, p.TorusLinkBps)
	for i, a := range arr {
		if a.Node.X != i+1 || a.Node.Y != 0 || a.Node.Z != 0 {
			t.Fatalf("arrival %d at wrong node %v", i, a.Node)
		}
		// Cut-through: hop k starts k*hopLat after injection and takes
		// one wire time, arriving after one more hop latency.
		want := sim.Time(i)*p.TorusHopLatency + per + p.TorusHopLatency
		if a.At != want {
			t.Fatalf("arrival %d at %v, want %v", i, a.At, want)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLineBcastBackToBackChunksPipeline(t *testing.T) {
	// Two chunks on the same line: the second chunk's first hop starts when
	// the first chunk has left the first link, so steady-state throughput is
	// one wire time per chunk.
	_, net, p := newNet(t, 8, 2, 2)
	from := geometry.XYZ(0, 0, 0)
	a1, _ := net.LineBcast(0, from, geometry.X, geometry.Plus, 0, 240)
	a2, _ := net.LineBcast(0, from, geometry.X, geometry.Plus, 0, 240)
	per := sim.TransferTime(p.TorusWireBytes(240), p.TorusLinkBps)
	last1 := a1[len(a1)-1].At
	last2 := a2[len(a2)-1].At
	if got := last2 - last1; got != per {
		t.Fatalf("chunk spacing at tail = %v, want %v", got, per)
	}
}

func TestLineBcastWraps(t *testing.T) {
	_, net, _ := newNet(t, 4, 2, 2)
	arr, _ := net.LineBcast(0, geometry.XYZ(2, 0, 0), geometry.X, geometry.Plus, 0, 100)
	wantX := []int{3, 0, 1}
	for i, a := range arr {
		if a.Node.X != wantX[i] {
			t.Fatalf("wrap order %v", arr)
		}
	}
}

func TestUnicastMatchesRouteLength(t *testing.T) {
	_, net, p := newNet(t, 4, 4, 4)
	src := geometry.XYZ(0, 0, 0)
	dst := geometry.XYZ(2, 1, 0)
	at := net.Unicast(0, src, dst, 0, 240)
	per := sim.TransferTime(p.TorusWireBytes(240), p.TorusLinkBps)
	// 3 hops cut-through: head advances 2 extra hop latencies, plus wire
	// time, plus final hop latency.
	want := 2*p.TorusHopLatency + per + p.TorusHopLatency
	if at != want {
		t.Fatalf("unicast arrival %v, want %v", at, want)
	}
}

func TestUnicastSelfIsFree(t *testing.T) {
	_, net, _ := newNet(t, 4, 4, 4)
	c := geometry.XYZ(1, 1, 1)
	if at := net.Unicast(7*sim.Microsecond, c, c, 0, 1024); at != 7*sim.Microsecond {
		t.Fatalf("self unicast at %v", at)
	}
}

func TestNeighborSend(t *testing.T) {
	_, net, p := newNet(t, 4, 4, 4)
	to, at := net.NeighborSend(0, geometry.XYZ(3, 0, 0), geometry.X, geometry.Plus, 0, 240)
	if to != (geometry.XYZ(0, 0, 0)) {
		t.Fatalf("neighbor = %v", to)
	}
	want := sim.TransferTime(p.TorusWireBytes(240), p.TorusLinkBps) + p.TorusHopLatency
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	_, net, p := newNet(t, 4, 2, 2)
	from := geometry.XYZ(0, 0, 0)
	// Two unicasts over the same first link, same lane.
	a1 := net.Unicast(0, from, geometry.XYZ(1, 0, 0), 0, 240)
	a2 := net.Unicast(0, from, geometry.XYZ(1, 0, 0), 0, 240)
	per := sim.TransferTime(p.TorusWireBytes(240), p.TorusLinkBps)
	if a2-a1 != per {
		t.Fatalf("second transfer not queued: %v then %v", a1, a2)
	}
	// Different lanes do not contend.
	b1 := net.Unicast(0, from, geometry.XYZ(0, 1, 0), 1, 240)
	b2 := net.Unicast(0, from, geometry.XYZ(0, 1, 0), 2, 240)
	if b1 != b2 {
		t.Fatalf("different lanes contended: %v vs %v", b1, b2)
	}
}

func TestBandwidthSteadyState(t *testing.T) {
	// Streaming many chunks along a line approaches link bandwidth
	// (divided by the wire/payload overhead).
	_, net, p := newNet(t, 8, 2, 2)
	from := geometry.XYZ(0, 0, 0)
	const chunks = 100
	const payload = 16 << 10
	var last sim.Time
	for i := 0; i < chunks; i++ {
		arr, _ := net.LineBcast(0, from, geometry.X, geometry.Plus, 0, payload)
		last = arr[len(arr)-1].At
	}
	bytes := float64(chunks * payload)
	gbps := bytes / last.Seconds()
	wireRatio := float64(payload) / float64(p.TorusWireBytes(payload))
	wantMin := p.TorusLinkBps * wireRatio * 0.98
	if gbps < wantMin || gbps > p.TorusLinkBps {
		t.Fatalf("steady-state line bandwidth %.1f MB/s, want ~%.1f", gbps/1e6, p.TorusLinkBps*wireRatio/1e6)
	}
}
