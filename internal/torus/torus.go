// Package torus models the BG/P 3D torus interconnect: six 425 MB/s links
// per node, cut-through dimension-ordered routing, and the deposit-bit line
// broadcast that the multi-color rectangle collectives are built on
// (paper §III-A).
//
// Links are modeled as serialized bandwidth pipes. A transfer over several
// hops is cut-through: the head of the message enters hop i+1 one hop
// latency after it entered hop i, and every link along the path is occupied
// for the message's full wire time. Following the paper's multi-color
// construction, links are virtualized per color lane: the rectangle
// algorithm's spanning trees are edge-disjoint by construction, so traffic
// of different colors never contends for a physical link, while traffic
// within one color serializes on its lane exactly as it would on the
// physical link.
package torus

import (
	"fmt"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// Network is the torus of one partition.
type Network struct {
	k    *sim.Kernel
	geom geometry.Torus
	p    hw.Params

	links map[linkKey]*sim.Pipe
}

type linkKey struct {
	node int
	dim  geometry.Dim
	dir  geometry.Dir
	lane int
}

// New creates the torus network for the given geometry and parameters.
func New(k *sim.Kernel, geom geometry.Torus, p hw.Params) *Network {
	return &Network{k: k, geom: geom, p: p, links: make(map[linkKey]*sim.Pipe)}
}

// Geometry returns the torus dimensions.
func (n *Network) Geometry() geometry.Torus { return n.geom }

// Link returns the directed link leaving `from` along (dim, dir) on the given
// color lane, creating it on first use.
func (n *Network) Link(from geometry.Coord, dim geometry.Dim, dir geometry.Dir, lane int) *sim.Pipe {
	key := linkKey{node: n.geom.NodeID(from), dim: dim, dir: dir, lane: lane}
	if l, ok := n.links[key]; ok {
		return l
	}
	l := n.k.NewPipe(
		fmt.Sprintf("torus.%d.%v%v.l%d", key.node, dim, dir, lane),
		n.p.TorusLinkBps, 0,
	)
	n.links[key] = l
	return l
}

// WireBytes returns the on-wire size of a payload, including packet headers.
func (n *Network) WireBytes(payload int) int { return n.p.TorusWireBytes(payload) }

// Arrival describes one node's reception of a line broadcast or unicast.
type Arrival struct {
	Node geometry.Coord
	At   sim.Time // when the last byte has arrived at the node's torus port
}

// LineBcast injects one chunk at node `from` no earlier than `start`, with
// the deposit bit set, along dimension d in direction dir: every other node
// on the line receives the chunk (paper §III-A). The returned arrivals are in
// hop order; firstStart is when the chunk actually entered the first link
// (used by callers to pace injection against link drain). Cut-through: the
// transfer on hop k starts one hop latency after hop k-1's start and each
// link is occupied for the full wire time.
func (n *Network) LineBcast(start sim.Time, from geometry.Coord, d geometry.Dim, dir geometry.Dir, lane, payload int) (arrivals []Arrival, firstStart sim.Time) {
	wire := n.WireBytes(payload)
	size := n.geom.Size(d)
	arrivals = make([]Arrival, 0, size-1)
	cur := from
	hopStart := start
	firstStart = start
	for hop := 1; hop < size; hop++ {
		link := n.Link(cur, d, dir, lane)
		var done sim.Time
		hopStart, done = link.ReserveAt(hopStart, wire)
		if hop == 1 {
			firstStart = hopStart
		}
		done += n.p.TorusHopLatency
		cur = n.geom.Neighbor(cur, d, dir)
		arrivals = append(arrivals, Arrival{Node: cur, At: done})
		hopStart += n.p.TorusHopLatency
	}
	return arrivals, firstStart
}

// Unicast sends one chunk from src to dst along the dimension-ordered route
// (no deposit bit), starting no earlier than start, and returns the arrival
// time at dst. Zero-hop transfers (src == dst) complete immediately at start.
func (n *Network) Unicast(start sim.Time, src, dst geometry.Coord, lane, payload int) sim.Time {
	wire := n.WireBytes(payload)
	hops := n.geom.Route(src, dst)
	if len(hops) == 0 {
		return maxTime(start, n.k.Now())
	}
	hopStart := start
	var done sim.Time
	for _, h := range hops {
		link := n.Link(h.From, h.Dim, h.Dir, lane)
		hopStart, done = link.ReserveAt(hopStart, wire)
		done += n.p.TorusHopLatency
		hopStart += n.p.TorusHopLatency
	}
	return done
}

// NeighborSend sends one chunk to the adjacent node along (d, dir): the
// single-hop special case used by chain reduce schedules.
func (n *Network) NeighborSend(start sim.Time, from geometry.Coord, d geometry.Dim, dir geometry.Dir, lane, payload int) (to geometry.Coord, at sim.Time) {
	wire := n.WireBytes(payload)
	link := n.Link(from, d, dir, lane)
	_, done := link.ReserveAt(start, wire)
	return n.geom.Neighbor(from, d, dir), done + n.p.TorusHopLatency
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// Stats aggregates all link pipes: count, total bytes carried, and summed
// busy time. Used by utilization reports.
func (n *Network) Stats() (links int, bytes int64, busy sim.Time) {
	//bgplint:allow maporder -- integer sums of a pure per-link getter commute
	for _, l := range n.links {
		b, bu, _ := l.Stats()
		bytes += b
		//bgplint:allow vtime -- report-only utilization sum; commutative and never fed back into scheduling
		busy += bu
		links++
	}
	return links, bytes, busy
}
