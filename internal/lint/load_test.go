package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader tests and returns its
// root directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// The loader includes every .go file it finds, so a file carrying a build
// constraint it cannot honor must fail with an error naming the file and
// the reason — not a baffling redeclaration or type error.
func TestLoaderRejectsBuildConstrainedFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"a.go":   "package a\n\nfunc A() int { return 1 }\n",
		"gen.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load([]string{"./..."})
	if err == nil {
		t.Fatal("loading a build-constrained file succeeded; want a clear error")
	}
	for _, want := range []string{"gen.go", "build-constrained", "//go:build ignore"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// Legacy // +build constraints are caught the same way.
func TestLoaderRejectsLegacyBuildTag(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"old.go": "// +build linux\n\npackage a\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load([]string{"./..."})
	if err == nil || !strings.Contains(err.Error(), "build-constrained") {
		t.Fatalf("got %v, want a build-constrained error", err)
	}
}

// A cgo file cannot be type-checked by the source loader; the error must
// say so rather than failing on the fake "C" import.
func TestLoaderRejectsCgoFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"c.go":   "package a\n\nimport \"C\"\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load([]string{"./..."})
	if err == nil {
		t.Fatal("loading a cgo file succeeded; want a clear error")
	}
	for _, want := range []string{"c.go", "cgo"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// Build-constrained files in a module-internal dependency fail with the
// importing chain in the message.
func TestLoaderRejectsConstrainedDependency(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module scratchmod\n\ngo 1.22\n",
		"app/main.go":   "package app\n\nimport \"scratchmod/dep\"\n\nvar _ = dep.D\n",
		"dep/dep.go":    "package dep\n\nvar D = 1\n",
		"dep/native.go": "//go:build cgo\n\npackage dep\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load([]string{"./app"})
	if err == nil {
		t.Fatal("loading against a build-constrained dependency succeeded; want a clear error")
	}
	for _, want := range []string{"scratchmod/dep", "native.go", "build-constrained"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
