package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader tests and returns its
// root directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// The loader compiles for one fixed configuration (host OS/arch, gc, no
// optional tags), so it applies build constraints the way a default
// `go build` does: an excluded file — //go:build ignore here — is skipped,
// not mis-merged into the package as a redeclaration.
func TestLoaderSkipsExcludedFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"a.go":   "package a\n\nfunc A() int { return 1 }\n",
		"gen.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("loading with an excluded file: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "a" || len(pkgs[0].Files) != 1 {
		t.Fatalf("got %d packages, want just package a from a.go", len(pkgs))
	}
}

// The race/!race pair is the motivating case: the !race half belongs to the
// tagless build and must be type-checked (the rest of the package depends on
// its declarations); the race half must be skipped, or the pair would be a
// redeclaration.
func TestLoaderResolvesRacePair(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      "module scratchmod\n\ngo 1.22\n",
		"a.go":        "package a\n\nvar _ = raceEnabled\n",
		"race_off.go": "//go:build !race\n\npackage a\n\nconst raceEnabled = false\n",
		"race_on.go":  "//go:build race\n\npackage a\n\nconst raceEnabled = true\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("loading a race-constrained pair: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 2 {
		t.Fatalf("got %d files, want a.go and race_off.go", len(pkgs[0].Files))
	}
}

// Legacy // +build constraints evaluate under the same configuration: a
// matching tag keeps the file, a foreign GOOS drops it.
func TestLoaderEvaluatesLegacyBuildTag(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module scratchmod\n\ngo 1.22\n",
		"a.go":    "package a\n",
		"old.go":  "// +build linux darwin\n\npackage a\n\nvar Old = 1\n",
		"none.go": "// +build plan9\n\npackage a\n\nvar Old = 2\n", // would redeclare if kept
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{"./..."})
	if err != nil {
		t.Fatalf("loading legacy-constrained files: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 2 {
		t.Fatalf("got %d files, want a.go and old.go", len(pkgs[0].Files))
	}
}

// A malformed constraint still fails with an error naming the file: silently
// including or dropping the file could change the package.
func TestLoaderRejectsMalformedConstraint(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"bad.go": "//go:build race &&\n\npackage a\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load([]string{"./..."})
	if err == nil {
		t.Fatal("loading a malformed constraint succeeded; want a clear error")
	}
	for _, want := range []string{"bad.go", "build-constrained"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// A cgo file cannot be type-checked by the source loader; the error must
// say so rather than failing on the fake "C" import.
func TestLoaderRejectsCgoFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"c.go":   "package a\n\nimport \"C\"\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Load([]string{"./..."})
	if err == nil {
		t.Fatal("loading a cgo file succeeded; want a clear error")
	}
	for _, want := range []string{"c.go", "cgo"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// Excluded files in a module-internal dependency are skipped the same way:
// the import resolves against the files the default build would compile.
func TestLoaderSkipsExcludedDependencyFile(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module scratchmod\n\ngo 1.22\n",
		"app/main.go":   "package app\n\nimport \"scratchmod/dep\"\n\nvar _ = dep.D\n",
		"dep/dep.go":    "package dep\n\nvar D = 1\n",
		"dep/native.go": "//go:build cgo\n\npackage dep\n\nvar D = 2\n", // would redeclare if kept
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = l.Load([]string{"./app"}); err != nil {
		t.Fatalf("loading against an excluded dependency file: %v", err)
	}
}
