package lint

import (
	"go/ast"
	"path/filepath"
	"slices"
)

// sanctionedGoFiles maps a simulator-driven package to the files in it
// allowed to launch goroutines:
//
//   - internal/sim/pool.go: the process worker pool launches the goroutines
//     backing sim.Kernel.Spawn coroutines; a pooled worker only executes
//     simulation code while holding the virtual-CPU token, and the kernel
//     hands that token to exactly one goroutine at a time.
//   - internal/sim/epoch.go: the sharded-kernel window workers run one
//     shard's window per start-channel receive; the start send happens-
//     before the window and the done receive happens-after it, so each
//     shard's state stays single-threaded along the start/done chain.
//   - internal/bench/parallel.go: the sweep runner fans whole, independent
//     simulations (one kernel per cell, results merged in fixed cell order)
//     across a worker pool; no simulation state crosses goroutines.
//   - internal/bench/heapsampler.go: the heap sampler polls runtime memory
//     statistics on a real-time ticker and is joined (not just signalled)
//     before its experiment reports; it never touches simulation state.
//   - internal/machine/build.go: world construction fills disjoint blocks of
//     the per-node slabs before the kernel runs; the workers are joined
//     before New returns, so none overlaps the event loop.
//   - internal/serve/pool.go: the bgpsimd worker pool runs whole,
//     independent cell simulations (each on one goroutine at a time, worlds
//     leased from the bench pool) and joins its workers in Close; it also
//     hosts the package's one test fan-out helper, so serve tests need no
//     raw go statements.
var sanctionedGoFiles = map[string][]string{
	"bgpcoll/internal/sim":     {"pool.go", "epoch.go"},
	"bgpcoll/internal/bench":   {"parallel.go", "heapsampler.go"},
	"bgpcoll/internal/machine": {"build.go"},
	"bgpcoll/internal/serve":   {"pool.go"},
}

// RawGoroutine forbids `go` statements in simulator-driven packages outside
// the sanctioned launch sites. A raw goroutine runs concurrently with the
// event loop on the real scheduler, so its effects land at wall-clock-
// dependent points in virtual time — the definition of a determinism bug.
//
// The serving layer is in scope too, though it is not simulator-driven in
// the full sense (it may read the wall clock for latency metrics): it
// launches whole kernel runs, so an unsanctioned goroutine there could race
// a simulation exactly like one in bench.
var RawGoroutine = &Analyzer{
	Name:    "rawgoroutine",
	Doc:     "forbid go statements in simulator-driven packages outside the sanctioned launch sites; use Kernel.Spawn (or the bench sweep runner)",
	Applies: func(path string) bool { return isSimDriven(path) || path == "bgpcoll/internal/serve" },
	Run:     runRawGoroutine,
}

func runRawGoroutine(pass *Pass) error {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if slices.Contains(sanctionedGoFiles[pass.Path], name) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement in a simulator-driven package; simulated concurrency must be a sim process (Kernel.Spawn)")
			}
			return true
		})
	}
	return nil
}
