package lint

import (
	"go/ast"
	"path/filepath"
	"slices"
)

// sanctionedGoFiles maps a simulator-driven package to the files in it
// allowed to launch goroutines:
//
//   - internal/sim/pool.go: the process worker pool launches the goroutines
//     backing sim.Kernel.Spawn coroutines; a pooled worker only executes
//     simulation code while holding the virtual-CPU token, and the kernel
//     hands that token to exactly one goroutine at a time.
//   - internal/sim/epoch.go: the sharded-kernel window workers run one
//     shard's window per start-channel receive; the start send happens-
//     before the window and the done receive happens-after it, so each
//     shard's state stays single-threaded along the start/done chain.
//   - internal/bench/parallel.go: the sweep runner fans whole, independent
//     simulations (one kernel per cell, results merged in fixed cell order)
//     across a worker pool; no simulation state crosses goroutines.
//   - internal/machine/build.go: world construction fills disjoint blocks of
//     the per-node slabs before the kernel runs; the workers are joined
//     before New returns, so none overlaps the event loop.
var sanctionedGoFiles = map[string][]string{
	"bgpcoll/internal/sim":     {"pool.go", "epoch.go"},
	"bgpcoll/internal/bench":   {"parallel.go"},
	"bgpcoll/internal/machine": {"build.go"},
}

// RawGoroutine forbids `go` statements in simulator-driven packages outside
// the sanctioned launch sites. A raw goroutine runs concurrently with the
// event loop on the real scheduler, so its effects land at wall-clock-
// dependent points in virtual time — the definition of a determinism bug.
var RawGoroutine = &Analyzer{
	Name:    "rawgoroutine",
	Doc:     "forbid go statements in simulator-driven packages outside the sanctioned launch sites; use Kernel.Spawn (or the bench sweep runner)",
	Applies: isSimDriven,
	Run:     runRawGoroutine,
}

func runRawGoroutine(pass *Pass) error {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if slices.Contains(sanctionedGoFiles[pass.Path], name) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement in a simulator-driven package; simulated concurrency must be a sim process (Kernel.Spawn)")
			}
			return true
		})
	}
	return nil
}
