package lint

import (
	"go/ast"
	"path/filepath"
)

// sanctionedGoFile is the one file allowed to launch goroutines in
// simulator-driven packages: sim.Kernel.Spawn wraps each simulated process
// in a goroutine-backed coroutine there, and the kernel hands the virtual
// CPU to exactly one of them at a time.
const (
	sanctionedGoPkg  = "bgpcoll/internal/sim"
	sanctionedGoFile = "proc.go"
)

// RawGoroutine forbids `go` statements in simulator-driven packages outside
// the sanctioned launch site. A raw goroutine runs concurrently with the
// event loop on the real scheduler, so its effects land at wall-clock-
// dependent points in virtual time — the definition of a determinism bug.
var RawGoroutine = &Analyzer{
	Name:    "rawgoroutine",
	Doc:     "forbid go statements in simulator-driven packages outside sim's sanctioned process launch site; use Kernel.Spawn",
	Applies: isSimDriven,
	Run:     runRawGoroutine,
}

func runRawGoroutine(pass *Pass) error {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if pass.Path == sanctionedGoPkg && name == sanctionedGoFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement in a simulator-driven package; simulated concurrency must be a sim process (Kernel.Spawn)")
			}
			return true
		})
	}
	return nil
}
