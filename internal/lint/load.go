package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one type-checked compilation unit ready for analysis. For a
// directory containing external test files (package foo_test) the loader
// produces two Packages sharing the same Path, so analyzer scoping applies
// to both.
type Package struct {
	Path  string // import path analyzers match against
	Name  string // package clause name (may end in _test)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of the enclosing module without
// any network or module-cache access: module-internal imports are resolved
// recursively from source, and standard-library imports go through the
// compiler's source importer (GOROOT only).
type Loader struct {
	Root    string // module root directory (contains go.mod)
	Module  string // module path from go.mod
	start   string // directory patterns are resolved relative to
	fset    *token.FileSet
	std     types.Importer
	imports map[string]*types.Package // module-internal import cache
}

// NewLoader locates the enclosing module starting at dir. Patterns passed to
// Load resolve relative to dir, matching the go tool's behavior ("./..."
// from a subdirectory covers that subtree only).
func NewLoader(dir string) (*Loader, error) {
	start, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := start
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod above %s", dir)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  mod,
		start:   start,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		imports: map[string]*types.Package{},
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns ("./...", "./internal/shm", import paths)
// into analysis-ready packages, test files included.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// Dirs resolves patterns to the package directories Load would visit, in
// the same order. The caching driver uses it to hash a directory before
// deciding whether to load it at all.
func (l *Loader) Dirs(patterns []string) ([]string, error) {
	return l.expand(patterns)
}

// LoadDir loads one package directory (both its base and external-test
// units), as Load does for each directory a pattern expands to.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	return l.loadDir(dir)
}

// expand turns patterns into a sorted list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			err := filepath.WalkDir(l.start, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != l.start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			var dir string
			if rest, ok := strings.CutPrefix(pat, l.Module); ok {
				// Import-path pattern: resolve against the module root.
				dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
			} else {
				// Relative directory pattern: resolve against the cwd.
				dir = filepath.Join(l.start, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
			}
			if ok, err := hasGoFiles(dir); err != nil {
				return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
			} else if !ok {
				return nil, fmt.Errorf("lint: pattern %q: no Go files in %s", pat, dir)
			}
			add(dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// importPath maps a package directory to its module import path.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// loadDir parses and checks one directory, producing one unit for the
// package plus its in-package tests and, if present, one for the external
// test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path := l.importPath(dir)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var base, xtest []*ast.File
	var baseName, xtestName string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		ok, err := fileIncluded(l.fset, f)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
			xtestName = f.Name.Name
		} else {
			base = append(base, f)
			baseName = f.Name.Name
		}
	}
	var units []*Package
	if len(base) > 0 {
		pkg, err := l.check(path, base)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: path, Name: baseName, Dir: dir,
			Fset: l.fset, Files: base, Types: pkg.pkg, Info: pkg.info,
		})
	}
	if len(xtest) > 0 {
		pkg, err := l.check(path+"_test", xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{
			Path: path, Name: xtestName, Dir: dir,
			Fset: l.fset, Files: xtest, Types: pkg.pkg, Info: pkg.info,
		})
	}
	return units, nil
}

// loaderTag is the build configuration the source loader compiles for: the
// host OS and architecture, the gc toolchain, and the release tags — and no
// optional tags, so race, ignore, cgo and foreign-GOOS constraints evaluate
// false exactly as they do in a default `go build`.
func loaderTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return runtime.GOOS == "linux" || runtime.GOOS == "darwin"
	}
	return strings.HasPrefix(tag, "go1.")
}

// buildIncluded evaluates f's build constraint, if any, under the loader's
// fixed tag set. Only comments above the package clause can constrain the
// build; a //go:build line is authoritative, otherwise legacy // +build
// lines AND together.
func buildIncluded(f *ast.File) (bool, error) {
	var legacy []constraint.Expr
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			switch {
			case constraint.IsGoBuild(text):
				expr, err := constraint.Parse(text)
				if err != nil {
					return false, fmt.Errorf("build-constrained file: parsing %q: %w", text, err)
				}
				return expr.Eval(loaderTag), nil
			case constraint.IsPlusBuild(text):
				expr, err := constraint.Parse(text)
				if err != nil {
					return false, fmt.Errorf("build-constrained file: parsing %q: %w", text, err)
				}
				legacy = append(legacy, expr)
			}
		}
	}
	for _, e := range legacy {
		if !e.Eval(loaderTag) {
			return false, nil
		}
	}
	return true, nil
}

// fileIncluded reports whether the source loader should type-check f. The
// loader compiles for one fixed configuration (loaderTag), so it applies
// build constraints the way `go build` does: a file excluded under that
// configuration — //go:build race, ignore, a foreign GOOS — is skipped
// rather than mis-merged into the package as a redeclaration. A file that
// is included must still be checkable: a cgo file has no C toolchain behind
// the type-checker and fails up front with an error naming the file.
func fileIncluded(fset *token.FileSet, f *ast.File) (bool, error) {
	ok, err := buildIncluded(f)
	if err != nil {
		pos := fset.Position(f.Package)
		return false, fmt.Errorf("lint: %s: %w", pos.Filename, err)
	}
	if !ok {
		return false, nil
	}
	for _, imp := range f.Imports {
		if imp.Path.Value == `"C"` {
			pos := fset.Position(f.Package)
			return false, fmt.Errorf("lint: %s: file imports \"C\": cgo packages cannot be type-checked by the source loader; exclude the file from the lint tree", pos.Filename)
		}
	}
	return true, nil
}

type checked struct {
	pkg  *types.Package
	info *types.Info
}

// check type-checks one file set as the package named by path.
func (l *Loader) check(path string, files []*ast.File) (checked, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return checked{}, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return checked{pkg: pkg, info: info}, nil
}

// Import implements types.Importer: module-internal paths are resolved from
// the module tree (non-test files only, mirroring what importing compilers
// see), everything else from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		ok, err := fileIncluded(l.fset, f)
		if err != nil {
			return nil, fmt.Errorf("lint: import %q: %w", path, err)
		}
		if !ok {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: import %q: no Go files in %s", path, dir)
	}
	c, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.imports[path] = c.pkg
	return c.pkg, nil
}

// LoadFixture type-checks a single testdata directory as if it were the
// package imported at importPath, so analyzer scoping rules (and sanctioned
// file names) apply exactly as they do on the real tree. Used by the
// analysistest-style fixture tests.
func (l *Loader) LoadFixture(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		name = f.Name.Name
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: fixture %s: no Go files", dir)
	}
	c, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path: importPath, Name: name, Dir: dir,
		Fset: l.fset, Files: files, Types: c.pkg, Info: c.info,
	}, nil
}
