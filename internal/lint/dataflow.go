// Dataflow analyses over the CFG: reaching definitions and a forward taint
// lattice. Both are may-analyses solved by a standard worklist with set-union
// join; facts are keyed by *types.Var, so they are flow-sensitive per
// function and ignore aliasing through the heap (fields and indexed elements
// get weak updates). That is precise enough for the contracts bgplint
// proves: the tracked values — continuation funcs, wall-clock reads,
// map-iteration variables — live in locals in the code under analysis.
//
// Nested FuncLit bodies are opaque: they have their own CFGs and their own
// analyses, and an expression whose only function-typed content is a closure
// literal is neither a definition nor a taint carrier here.
package lint

import (
	"go/ast"
	"go/types"
)

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// nested function literals.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x == nil {
			return true
		}
		return fn(x)
	})
}

// defFact maps each variable to the set of definition nodes that may have
// produced its current value.
type defFact map[*types.Var]map[ast.Node]bool

func (f defFact) clone() defFact {
	g := make(defFact, len(f))
	for v, defs := range f {
		d := make(map[ast.Node]bool, len(defs))
		for n := range defs {
			d[n] = true
		}
		g[v] = d
	}
	return g
}

// merge unions other into f, reporting whether f changed.
func (f defFact) merge(other defFact) bool {
	changed := false
	for v, defs := range other {
		dst := f[v]
		if dst == nil {
			dst = map[ast.Node]bool{}
			f[v] = dst
		}
		for n := range defs {
			if !dst[n] {
				dst[n] = true
				changed = true
			}
		}
	}
	return changed
}

// ReachingDefs holds, for each block, the definitions reaching its entry.
type ReachingDefs struct {
	g    *CFG
	info *types.Info
	in   map[*Block]defFact
}

// NewReachingDefs solves reaching definitions over g. params are the
// function's parameter (and receiver) identifiers; each is its own
// definition at entry.
func NewReachingDefs(g *CFG, info *types.Info, params []*ast.Ident) *ReachingDefs {
	rd := &ReachingDefs{g: g, info: info, in: map[*Block]defFact{}}
	entry := defFact{}
	for _, id := range params {
		if v, ok := info.Defs[id].(*types.Var); ok {
			entry[v] = map[ast.Node]bool{id: true}
		}
	}
	rd.in[g.Entry] = entry
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := rd.in[b].clone()
		for _, n := range b.Nodes {
			rd.transfer(out, n)
		}
		for _, s := range b.Succs {
			sin := rd.in[s]
			if sin == nil {
				rd.in[s] = out.clone()
				work = append(work, s)
				continue
			}
			if sin.merge(out) {
				work = append(work, s)
			}
		}
	}
	return rd
}

// transfer applies one node's definitions to the fact in place: each defined
// variable's previous definitions are killed and replaced by this node.
func (rd *ReachingDefs) transfer(f defFact, n ast.Node) {
	def := func(id *ast.Ident, site ast.Node) {
		if id.Name == "_" {
			return
		}
		v := rd.objOf(id)
		if v == nil {
			return
		}
		f[v] = map[ast.Node]bool{site: true}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				def(id, n)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			def(id, n)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				def(id, vs)
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				def(id, n)
			}
		}
	}
}

// objOf resolves an identifier to its variable object, whether the
// identifier defines or uses it.
func (rd *ReachingDefs) objOf(id *ast.Ident) *types.Var {
	if v, ok := rd.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := rd.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// Reaching returns the definition nodes of v that may reach block b's i-th
// node (i == len(b.Nodes) queries the block's exit).
func (rd *ReachingDefs) Reaching(b *Block, i int, v *types.Var) []ast.Node {
	f := rd.in[b]
	if f == nil {
		return nil // unreachable block
	}
	f = f.clone()
	for j := 0; j < i && j < len(b.Nodes); j++ {
		rd.transfer(f, b.Nodes[j])
	}
	var out []ast.Node
	for n := range f[v] {
		out = append(out, n)
	}
	return out
}

// A TaintSpec configures the forward taint analysis.
type TaintSpec struct {
	// Source reports whether the expression introduces taint by itself,
	// e.g. a call to time.Now. It is consulted on every sub-expression.
	Source func(e ast.Expr) bool
	// RangeSource reports whether ranging over x taints the iteration
	// variables regardless of x's own taint, e.g. any map operand
	// (iteration order is nondeterministic even over untainted maps).
	RangeSource func(x ast.Expr) bool
}

// taintFact is the set of variables that may hold a tainted value.
type taintFact map[*types.Var]bool

func (f taintFact) clone() taintFact {
	g := make(taintFact, len(f))
	for v := range f {
		g[v] = true
	}
	return g
}

func (f taintFact) merge(other taintFact) bool {
	changed := false
	for v := range other {
		if !f[v] {
			f[v] = true
			changed = true
		}
	}
	return changed
}

// Taint holds a solved forward taint analysis over one CFG.
type Taint struct {
	g    *CFG
	info *types.Info
	spec TaintSpec
	in   map[*Block]taintFact
}

// NewTaint solves the taint lattice over g.
func NewTaint(g *CFG, info *types.Info, spec TaintSpec) *Taint {
	t := &Taint{g: g, info: info, spec: spec, in: map[*Block]taintFact{}}
	t.in[g.Entry] = taintFact{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := t.in[b].clone()
		for _, n := range b.Nodes {
			t.transfer(out, n)
		}
		for _, s := range b.Succs {
			sin := t.in[s]
			if sin == nil {
				t.in[s] = out.clone()
				work = append(work, s)
				continue
			}
			if sin.merge(out) {
				work = append(work, s)
			}
		}
	}
	return t
}

// transfer applies one node's effect on the tainted-variable set. Plain
// identifier targets get strong updates; assignments through selectors or
// indices weakly taint the root variable and never clean it.
func (t *Taint) transfer(f taintFact, n ast.Node) {
	set := func(e ast.Expr, tainted bool) {
		switch e := e.(type) {
		case *ast.Ident:
			v := t.varOf(e)
			if v == nil {
				return
			}
			if tainted {
				f[v] = true
			} else {
				delete(f, v)
			}
		default:
			if !tainted {
				return
			}
			if root := rootIdent(e); root != nil {
				if v := t.varOf(root); v != nil {
					f[v] = true
				}
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Evaluate RHS taint under the pre-state, then update.
		taints := make([]bool, len(n.Lhs))
		for i := range n.Lhs {
			rhs := n.Rhs[0]
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			}
			taints[i] = t.exprTainted(f, rhs)
		}
		for i, lhs := range n.Lhs {
			set(lhs, taints[i])
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				tainted := false
				if len(vs.Values) == 1 {
					tainted = t.exprTainted(f, vs.Values[0])
				} else if i < len(vs.Values) {
					tainted = t.exprTainted(f, vs.Values[i])
				}
				set(id, tainted)
			}
		}
	case *ast.RangeStmt:
		tainted := t.spec.RangeSource != nil && t.spec.RangeSource(n.X) ||
			t.exprTainted(f, n.X)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e != nil {
				set(e, tainted)
			}
		}
	}
}

// varOf resolves an identifier to its variable object.
func (t *Taint) varOf(id *ast.Ident) *types.Var {
	if v, ok := t.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := t.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// rootIdent returns the base identifier of a selector/index/star/paren
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprTainted reports whether e may evaluate to a tainted value under fact
// f: it mentions a tainted variable or contains a source expression.
// A call with a tainted argument is tainted (the conservative "contains"
// rule), which is how taint survives conversions like int64(t.UnixNano()).
func (t *Taint) exprTainted(f taintFact, e ast.Expr) bool {
	tainted := false
	inspectNoFuncLit(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		if expr, ok := n.(ast.Expr); ok && t.spec.Source != nil && t.spec.Source(expr) {
			tainted = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := t.varOf(id); v != nil && f[v] {
				tainted = true
				return false
			}
		}
		return true
	})
	return tainted
}

// Walk visits every node of every reachable block in order, passing a
// tainted predicate evaluated under the state holding just before that
// node. Sink checks use it to scan for tainted expressions in flow order.
func (t *Taint) Walk(fn func(n ast.Node, tainted func(e ast.Expr) bool)) {
	reach := t.g.Reachable()
	for _, b := range t.g.Blocks {
		if !reach[b] || t.in[b] == nil {
			continue
		}
		f := t.in[b].clone()
		for _, n := range b.Nodes {
			cur := f
			fn(n, func(e ast.Expr) bool { return t.exprTainted(cur, e) })
			t.transfer(f, n)
		}
	}
}
