package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ProgFrame verifies the explicit-resume (CPS) contract that program-mode
// collectives are written against, using the CFG engine:
//
//   - Tail calls: a parking operation (a *Then op, or a helper ending in
//     Then with a final func() continuation) and an invocation of a stored
//     func() continuation must be the last action on every CFG path of
//     their caller — the continuation carries the rest of the body. Code
//     after an arming call runs concurrently with the armed resume and
//     panics at runtime ("resume already pending"); this check catches it
//     statically.
//   - Armed frames: once a frame is armed (armed = true or schedContAt),
//     no program-frame field may be written until it is disarmed. This is
//     the flow-sensitive complement to simdeterminism's file scoping: it
//     holds inside sim/program.go too.
//   - Bound-once continuations: a continuation closure or method value
//     constructed per loop iteration or per recursive activation allocates
//     once per chunk; continuations must be method values bound once per
//     rank on a reusable state struct.
//   - Single transcription: RegisterProg* takes a named package-level
//     function (the one transcription serving both modes), and collective
//     bodies never branch on Proc.Inline().
//
// sim/program.go is exempt from the tail and bound-once checks: it is the
// implementation the contract is written against (runCont legitimately
// runs retirement code after invoking the continuation). Test files are
// exempt entirely — the runtime checkIdle guard covers them, and contract
// tests violate the rules on purpose to assert the panic.
var ProgFrame = &Analyzer{
	Name:     "progframe",
	Doc:      "verify the explicit-resume program contract: tail-positioned parking ops and continuations, no armed-frame writes, continuations bound once per rank, named RegisterProg* transcriptions",
	Severity: SevError,
	Applies: func(path string) bool {
		switch path {
		case "bgpcoll/internal/coll", "bgpcoll/internal/mpi", "bgpcoll/internal/sim":
			return true
		}
		return false
	},
	Run: runProgFrame,
}

func runProgFrame(pass *Pass) error {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		trusted := pass.Path == progFramePkg && name == progFrameFile
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkProgDecl(pass, fd, trusted)
		}
		if pass.Path == "bgpcoll/internal/coll" {
			checkRegisterProg(pass, file)
		}
	}
	return nil
}

// checkProgDecl analyzes one top-level function and every function literal
// nested in it. Literal bodies get their own CFGs; the recursion structure
// of the literals (which literal is bound to which local variable, and
// which re-enter themselves) is computed once over the whole declaration.
func checkProgDecl(pass *Pass, fd *ast.FuncDecl, trusted bool) {
	litBound := boundLits(pass, fd)
	selfRec := selfRecursive(pass, fd, litBound)

	var walk func(body *ast.BlockStmt, encl []*ast.FuncLit)
	walk = func(body *ast.BlockStmt, encl []*ast.FuncLit) {
		u := newProgUnit(pass, body)
		if !trusted {
			u.checkTails()
			u.checkBoundOnce(encl, selfRec)
		}
		u.checkArmed()
		// Descend into literals that are direct children of this body (not
		// through deeper literals — those recurse on their own turn).
		for _, lit := range directLits(body) {
			walk(lit.Body, append(encl, lit))
		}
	}
	walk(fd.Body, nil)
}

// directLits returns the function literals in body that are not nested
// inside another literal within body.
func directLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

// boundLits maps each function literal in fd to the local variable it is
// assigned to, if any (the `var step func(); step = func() {...}` idiom).
func boundLits(pass *Pass, fd *ast.FuncDecl) map[*ast.FuncLit]*types.Var {
	bound := map[*ast.FuncLit]*types.Var{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if v := identVar(pass.Info, id); v != nil {
			bound[lit] = v
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return bound
}

// selfRecursive reports which bound literals reference their own variable
// somewhere inside their body (directly or through a nested literal): each
// activation of such a literal re-runs its allocation sites.
func selfRecursive(pass *Pass, fd *ast.FuncDecl, bound map[*ast.FuncLit]*types.Var) map[*ast.FuncLit]bool {
	rec := map[*ast.FuncLit]bool{}
	for lit, v := range bound {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && identVar(pass.Info, id) == v {
				rec[lit] = true
			}
			return true
		})
	}
	return rec
}

// identVar resolves an identifier to its variable object.
func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// A progUnit is one function body under the progframe checks: its CFG plus
// memoized path facts.
type progUnit struct {
	pass     *Pass
	body     *ast.BlockStmt
	g        *CFG
	pureExit map[*Block]int // memo: 0 unknown, 1 yes, 2 no, 3 in progress
	cycles   map[*Block]bool
	nodeBlk  map[ast.Node]*Block
}

func newProgUnit(pass *Pass, body *ast.BlockStmt) *progUnit {
	u := &progUnit{pass: pass, body: body, g: NewCFG(body)}
	u.pureExit = map[*Block]int{}
	u.cycles = blocksOnCycles(u.g)
	u.nodeBlk = map[ast.Node]*Block{}
	for _, b := range u.g.Blocks {
		for _, n := range b.Nodes {
			u.nodeBlk[n] = b
		}
	}
	return u
}

// blocksOnCycles returns the blocks that can reach themselves.
func blocksOnCycles(g *CFG) map[*Block]bool {
	on := map[*Block]bool{}
	for _, b := range g.Blocks {
		seen := map[*Block]bool{}
		stack := append([]*Block(nil), b.Succs...)
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s == b {
				on[b] = true
				break
			}
			if seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s.Succs...)
		}
	}
	return on
}

// isPureExit reports whether every path from b executes nothing but bare
// returns before reaching Exit.
func (u *progUnit) isPureExit(b *Block) bool {
	switch u.pureExit[b] {
	case 1:
		return true
	case 2:
		return false
	case 3:
		return true // cycle of empty blocks; treat as exiting
	}
	u.pureExit[b] = 3
	ok := true
	if b != u.g.Exit {
		for _, n := range b.Nodes {
			if _, isRet := n.(*ast.ReturnStmt); !isRet {
				ok = false
				break
			}
		}
		if ok && len(b.Succs) == 0 {
			// A node-free dead end that is not Exit is a panic terminator or
			// an unreachable stub; nothing runs after the call on that path.
			ok = true
		}
		if ok {
			for _, s := range b.Succs {
				if !u.isPureExit(s) {
					ok = false
					break
				}
			}
		}
	}
	if ok {
		u.pureExit[b] = 1
	} else {
		u.pureExit[b] = 2
	}
	return ok
}

// inTail reports whether node i of block b is followed only by bare
// returns on every path to Exit.
func (u *progUnit) inTail(b *Block, i int) bool {
	for _, n := range b.Nodes[i+1:] {
		if _, ok := n.(*ast.ReturnStmt); !ok {
			return false
		}
	}
	for _, s := range b.Succs {
		if !u.isPureExit(s) {
			return false
		}
	}
	return true
}

// checkTails flags parking operations and continuation invocations that are
// not in tail position.
func (u *progUnit) checkTails() {
	reach := u.g.Reachable()
	for _, b := range u.g.Blocks {
		if !reach[b] {
			continue
		}
		for i, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if name, _, ok := parkingCall(u.pass, call); ok {
				if !u.inTail(b, i) {
					u.pass.Reportf(call.Pos(),
						"parking operation %s must be the last action on every path: code after it races the armed resume (CPS tail-call contract)", name)
				}
			} else if name, ok := contVarCall(u.pass, call); ok {
				if !u.inTail(b, i) {
					u.pass.Reportf(call.Pos(),
						"continuation %s() must be invoked in tail position: it resumes the rest of the body, so nothing may follow it", name)
				}
			}
		}
	}
}

// checkBoundOnce flags continuation arguments allocated per chunk: closure
// literals (or method values) passed to a parking op inside a loop or a
// self-recursive closure, and locals whose reaching definition is a closure
// built inside the loop.
func (u *progUnit) checkBoundOnce(encl []*ast.FuncLit, selfRec map[*ast.FuncLit]bool) {
	inRecursion := false
	for _, lit := range encl {
		if selfRec[lit] {
			inRecursion = true
			break
		}
	}
	var rd *ReachingDefs // built lazily; most units have no ident continuations
	reach := u.g.Reachable()
	for _, b := range u.g.Blocks {
		if !reach[b] {
			continue
		}
		for i, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			name, cont, ok := parkingCall(u.pass, call)
			if !ok {
				continue
			}
			perChunk := u.cycles[b] || inRecursion
			switch arg := cont.(type) {
			case *ast.FuncLit:
				if perChunk {
					u.pass.Reportf(arg.Pos(),
						"continuation closure for %s is allocated per chunk; bind it once per rank as a method value on the loop's state struct", name)
				}
			case *ast.SelectorExpr:
				if sel, ok := u.pass.Info.Selections[arg]; ok && sel.Kind() == types.MethodVal && perChunk {
					u.pass.Reportf(arg.Pos(),
						"method value %s for %s is allocated per chunk; store it once in a field and pass the field", arg.Sel.Name, name)
				}
			case *ast.Ident:
				v := identVar(u.pass.Info, arg)
				if v == nil {
					break
				}
				if rd == nil {
					rd = NewReachingDefs(u.g, u.pass.Info, nil)
				}
				for _, def := range rd.Reaching(b, i, v) {
					lit := defFuncLit(def, v, u.pass.Info)
					if lit == nil {
						continue
					}
					if within(lit, call) {
						continue // the closure is its own handle, allocated once
					}
					if db := u.nodeBlk[def]; db != nil && u.cycles[db] {
						u.pass.Reportf(arg.Pos(),
							"continuation %s passed to %s is rebuilt every iteration (defined at %s); bind it once per rank", arg.Name, name, u.pass.Fset.Position(def.Pos()))
					}
				}
			}
		}
	}
}

// defFuncLit extracts the closure literal a definition node assigns to v.
func defFuncLit(def ast.Node, v *types.Var, info *types.Info) *ast.FuncLit {
	pick := func(lhs, rhs []ast.Expr) *ast.FuncLit {
		if len(lhs) != len(rhs) {
			return nil
		}
		for i := range lhs {
			if id, ok := lhs[i].(*ast.Ident); ok && identVar(info, id) == v {
				if lit, ok := rhs[i].(*ast.FuncLit); ok {
					return lit
				}
			}
		}
		return nil
	}
	switch def := def.(type) {
	case *ast.AssignStmt:
		return pick(def.Lhs, def.Rhs)
	case *ast.ValueSpec:
		var lhs []ast.Expr
		for _, n := range def.Names {
			lhs = append(lhs, n)
		}
		return pick(lhs, def.Values)
	}
	return nil
}

// within reports whether inner's position lies inside outer.
func within(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// checkArmed runs a forward may-analysis of armed frames: after a receiver
// is armed on a path, writing any of its program-frame fields (or re-arming)
// before a disarm is a contract violation.
func (u *progUnit) checkArmed() {
	type fact = map[*types.Var]bool
	in := map[*Block]fact{u.g.Entry: {}}
	clone := func(f fact) fact {
		g := make(fact, len(f))
		for v := range f {
			g[v] = true
		}
		return g
	}

	// frameWrite classifies an assignment LHS: the armed receiver variable
	// and whether the write arms (armed = true), disarms (armed = false), or
	// mutates another frame field.
	type writeKind int
	const (
		wNone writeKind = iota
		wArm
		wDisarm
		wField
	)
	classify := func(lhs, rhs ast.Expr) (*types.Var, writeKind, string) {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !isProcProgFrame(u.pass, sel) {
			return nil, wNone, ""
		}
		root := rootIdent(sel.X)
		if root == nil {
			return nil, wNone, ""
		}
		v := identVar(u.pass.Info, root)
		if v == nil {
			return nil, wNone, ""
		}
		if sel.Sel.Name == "armed" || sel.Sel.Name == "inline" {
			if id, ok := rhs.(*ast.Ident); ok && id.Name == "false" {
				return v, wDisarm, sel.Sel.Name
			}
			if sel.Sel.Name == "inline" {
				return v, wNone, ""
			}
			return v, wArm, sel.Sel.Name
		}
		return v, wField, sel.Sel.Name
	}

	report := func(pos ast.Node, field string) {
		u.pass.Reportf(pos.Pos(),
			"program frame field %s written while a resume is armed; the kernel owes the armed continuation its queue position", field)
	}

	transfer := func(f fact, n ast.Node, emit bool) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			rhs := func(i int) ast.Expr {
				if len(n.Rhs) == len(n.Lhs) {
					return n.Rhs[i]
				}
				return n.Rhs[0]
			}
			for i, lhs := range n.Lhs {
				v, kind, field := classify(lhs, rhs(i))
				switch kind {
				case wArm:
					if emit && f[v] {
						report(lhs, field)
					}
					f[v] = true
				case wDisarm:
					delete(f, v)
				case wField:
					if emit && f[v] {
						report(lhs, field)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "schedContAt" {
					if root := rootIdent(sel.X); root != nil {
						if v := identVar(u.pass.Info, root); v != nil {
							if emit && f[v] {
								report(n, "armed")
							}
							f[v] = true
						}
					}
				}
			}
		}
	}

	// Solve to fixpoint, then one emitting pass in block order.
	work := []*Block{u.g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := clone(in[b])
		for _, n := range b.Nodes {
			transfer(out, n, false)
		}
		for _, s := range b.Succs {
			sin := in[s]
			if sin == nil {
				in[s] = clone(out)
				work = append(work, s)
				continue
			}
			changed := false
			for v := range out {
				if !sin[v] {
					sin[v] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	for _, b := range u.g.Blocks {
		f := in[b]
		if f == nil {
			continue
		}
		f = clone(f)
		for _, n := range b.Nodes {
			transfer(f, n, true)
		}
	}
}

// parkingCall reports whether call is a parking explicit-resume operation:
// a function or method whose name ends in Then, declared in a sim-driven
// package, returning nothing, whose final parameter is the continuation
// func(). Returns the op name and the continuation argument.
func parkingCall(pass *Pass, call *ast.CallExpr) (string, ast.Expr, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return "", nil, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || !strings.HasSuffix(fn.Name(), "Then") {
		return "", nil, false
	}
	if fn.Pkg() == nil || !isSimDriven(fn.Pkg().Path()) {
		return "", nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 0 || sig.Variadic() {
		return "", nil, false
	}
	np := sig.Params().Len()
	if np == 0 || !isNullaryFunc(sig.Params().At(np-1).Type()) {
		return "", nil, false
	}
	if len(call.Args) != np {
		return "", nil, false
	}
	return fn.Name(), call.Args[np-1], true
}

// contVarCall reports whether call invokes a stored func() continuation: the
// callee is a variable (local, parameter, or struct field) of type func().
func contVarCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if v, ok := pass.Info.Uses[fun].(*types.Var); ok && isNullaryFunc(v.Type()) {
			return fun.Name, true
		}
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[fun]
		if !ok || sel.Kind() != types.FieldVal {
			return "", false
		}
		if isNullaryFunc(sel.Obj().Type()) {
			return fun.Sel.Name, true
		}
	}
	return "", false
}

// isNullaryFunc reports whether t is func() — no parameters, no results.
func isNullaryFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// checkRegisterProg enforces the single-transcription discipline at
// registration sites: RegisterProg* takes a named package-level function,
// and collective bodies do not branch on Proc.Inline().
func checkRegisterProg(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = pass.Info.Uses[fun]
		case *ast.SelectorExpr:
			obj = pass.Info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || !isSimDriven(fn.Pkg().Path()) {
			return true
		}
		if strings.HasPrefix(fn.Name(), "RegisterProg") && len(call.Args) >= 2 {
			if !isNamedFuncRef(pass, call.Args[1]) {
				pass.Reportf(call.Args[1].Pos(),
					"%s argument must be a named package-level function: the derived blocking form must reference the same single transcription", fn.Name())
			}
		}
		if fn.Name() == "Inline" {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				pass.Reportf(call.Pos(),
					"collective bodies must not branch on Proc.Inline(); the *Then operations are mode-agnostic by construction")
			}
		}
		return true
	})
}

// isNamedFuncRef reports whether e references a declared function (not a
// closure or a variable of function type).
func isNamedFuncRef(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		_, ok := pass.Info.Uses[e].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := pass.Info.Uses[e.Sel].(*types.Func)
		return ok
	}
	return false
}
