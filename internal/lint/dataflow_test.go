package lint

import (
	"go/ast"
	"go/types"
	"testing"
)

// lookupVar finds the unique local variable with the given name used or
// defined in the function.
func lookupVar(t *testing.T, info *types.Info, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	var found *types.Var
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			found = v
		} else if v, ok := info.Uses[id].(*types.Var); ok && found == nil {
			found = v
		}
		return true
	})
	if found == nil {
		t.Fatalf("no variable %q", name)
	}
	return found
}

func TestReachingDefsBranch(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func cond() bool
func use(int)
func f() {
	x := 1
	if cond() {
		x = 2
	}
	use(x)
}
`)
	fd := funcDecl(t, f, "f")
	g := NewCFG(fd.Body)
	rd := NewReachingDefs(g, info, nil)
	x := lookupVar(t, info, fd, "x")
	useBlk, useIdx := callBlock(t, g, "use")
	defs := rd.Reaching(useBlk, useIdx, x)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs of x at use(x), want 2 (initial + branch)", len(defs))
	}
}

func TestReachingDefsKill(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func use(int)
func f() {
	x := 1
	x = 2
	use(x)
}
`)
	fd := funcDecl(t, f, "f")
	g := NewCFG(fd.Body)
	rd := NewReachingDefs(g, info, nil)
	x := lookupVar(t, info, fd, "x")
	useBlk, useIdx := callBlock(t, g, "use")
	defs := rd.Reaching(useBlk, useIdx, x)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs, want 1 (x := 1 must be killed)", len(defs))
	}
	if as, ok := defs[0].(*ast.AssignStmt); !ok || len(as.Rhs) != 1 {
		t.Fatalf("surviving def is not the second assignment: %T", defs[0])
	}
}

func TestReachingDefsLoop(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func cond() bool
func use(int)
func f() {
	x := 0
	for cond() {
		use(x)
		x = 1
	}
}
`)
	fd := funcDecl(t, f, "f")
	g := NewCFG(fd.Body)
	rd := NewReachingDefs(g, info, nil)
	x := lookupVar(t, info, fd, "x")
	useBlk, useIdx := callBlock(t, g, "use")
	defs := rd.Reaching(useBlk, useIdx, x)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at use(x) in loop, want 2 (init + back edge)", len(defs))
	}
}

// taintSpec taints calls to source() and, optionally, all range operands.
func taintSpec(rangeAll bool) TaintSpec {
	return TaintSpec{
		Source: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "source"
		},
		RangeSource: func(x ast.Expr) bool { return rangeAll },
	}
}

// sinkArgTaint runs the taint walk and returns whether the first argument
// of each sink() call is tainted, in flow order.
func sinkArgTaint(g *CFG, info *types.Info, spec TaintSpec) []bool {
	tt := NewTaint(g, info, spec)
	var out []bool
	tt.Walk(func(n ast.Node, tainted func(ast.Expr) bool) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" && len(call.Args) > 0 {
			out = append(out, tainted(call.Args[0]))
		}
	})
	return out
}

func TestTaintFlowsThroughAssignment(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func source() int
func sink(int)
func f() {
	x := source()
	y := x + 1
	sink(y)
	y = 0
	sink(y)
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	got := sinkArgTaint(g, info, taintSpec(false))
	want := []bool{true, false}
	if len(got) != len(want) {
		t.Fatalf("got %d sink calls, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sink %d tainted=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestTaintJoinIsMay(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func source() int
func cond() bool
func sink(int)
func f() {
	x := 0
	if cond() {
		x = source()
	}
	sink(x)
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	got := sinkArgTaint(g, info, taintSpec(false))
	if len(got) != 1 || !got[0] {
		t.Fatalf("x tainted on one branch must be may-tainted at join, got %v", got)
	}
}

func TestTaintSurvivesConversion(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func source() int
func sink(int64)
func f() {
	x := source()
	sink(int64(x))
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	var got []bool
	tt := NewTaint(g, info, taintSpec(false))
	tt.Walk(func(n ast.Node, tainted func(ast.Expr) bool) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
			got = append(got, tainted(call.Args[0]))
		}
	})
	if len(got) != 1 || !got[0] {
		t.Fatalf("taint must survive the int64(x) conversion, got %v", got)
	}
}

func TestTaintRangeVars(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func sink(int)
func f(m map[int]int) {
	for k, v := range m {
		sink(k)
		sink(v)
	}
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	got := sinkArgTaint(g, info, taintSpec(true))
	if len(got) != 2 || !got[0] || !got[1] {
		t.Fatalf("range key/value must be tainted by RangeSource, got %v", got)
	}
}

func TestTaintClosureIsOpaque(t *testing.T) {
	_, f, info := typecheckSrc(t, `package p
func source() int
func sink(func() int)
func f() {
	g := func() int { return source() }
	sink(g)
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	tt := NewTaint(g, info, taintSpec(false))
	var got []bool
	tt.Walk(func(n ast.Node, tainted func(ast.Expr) bool) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
			got = append(got, tainted(call.Args[0]))
		}
	})
	if len(got) != 1 || got[0] {
		t.Fatalf("closure literal must not leak taint into the enclosing flow, got %v", got)
	}
}
