package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheckSrc parses and type-checks a self-contained snippet (no imports;
// declare bodyless stubs for helpers) and returns the file plus type info.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("t", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

// funcDecl finds the named function declaration.
func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// callBlock finds the block and node index of the statement calling the
// named function.
func callBlock(t *testing.T, g *CFG, name string) (*Block, int) {
	t.Helper()
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				return b, i
			}
		}
	}
	t.Fatalf("no call to %q in CFG", name)
	return nil, 0
}

const cfgStubs = `
func a()
func b()
func c()
func d()
func cond() bool
`

func TestCFGIfJoin(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f() {
	if cond() {
		a()
	} else {
		b()
	}
	c()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	reach := g.Reachable()
	for _, name := range []string{"a", "b", "c"} {
		blk, _ := callBlock(t, g, name)
		if !reach[blk] {
			t.Errorf("block of %s() not reachable", name)
		}
	}
	aBlk, _ := callBlock(t, g, "a")
	cBlk, _ := callBlock(t, g, "c")
	// a's branch must flow into the join holding c.
	onPath := false
	for _, s := range aBlk.Succs {
		if s == cBlk {
			onPath = true
		}
	}
	if !onPath {
		t.Errorf("then-branch does not flow into join block")
	}
	if !g.ReachesExit()[cBlk] {
		t.Errorf("join block cannot reach exit")
	}
}

func TestCFGReturnMakesFollowingUnreachable(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f() {
	a()
	return
	b()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	reach := g.Reachable()
	aBlk, _ := callBlock(t, g, "a")
	bBlk, _ := callBlock(t, g, "b")
	if !reach[aBlk] {
		t.Errorf("a() unreachable")
	}
	if reach[bBlk] {
		t.Errorf("b() after return should be unreachable")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f() {
	if cond() {
		a()
		panic("boom")
	}
	b()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	exits := g.ReachesExit()
	aBlk, _ := callBlock(t, g, "a")
	bBlk, _ := callBlock(t, g, "b")
	if exits[aBlk] {
		t.Errorf("panic-terminated block should not reach exit")
	}
	if !exits[bBlk] {
		t.Errorf("fallthrough block should reach exit")
	}
	if !g.Reachable()[aBlk] {
		t.Errorf("panic block should still be reachable from entry")
	}
}

func TestCFGLoopEdges(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f(n int) {
	for i := 0; i < n; i++ {
		if cond() {
			continue
		}
		a()
		if cond() {
			break
		}
	}
	b()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	reach := g.Reachable()
	aBlk, _ := callBlock(t, g, "a")
	bBlk, _ := callBlock(t, g, "b")
	if !reach[aBlk] || !reach[bBlk] {
		t.Fatalf("loop body or after-loop unreachable")
	}
	// The loop body must be able to iterate: a() reaches itself.
	seen := map[*Block]bool{}
	var visit func(*Block) bool
	visit = func(blk *Block) bool {
		if blk == aBlk {
			return true
		}
		if seen[blk] {
			return false
		}
		seen[blk] = true
		for _, s := range blk.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	again := false
	for _, s := range aBlk.Succs {
		if visit(s) {
			again = true
		}
	}
	if !again {
		t.Errorf("loop body does not iterate back to itself")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cond() {
				break outer
			}
			a()
		}
	}
	b()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	if !g.Reachable()[first(t, g, "b")] {
		t.Errorf("after-loop block unreachable through labeled break")
	}
	if !g.Reachable()[first(t, g, "a")] {
		t.Errorf("inner loop body unreachable")
	}
}

func first(t *testing.T, g *CFG, name string) *Block {
	t.Helper()
	b, _ := callBlock(t, g, name)
	return b
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f(x int) {
	switch x {
	case 0:
		a()
		fallthrough
	case 1:
		b()
	default:
		c()
	}
	d()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	aBlk, _ := callBlock(t, g, "a")
	bBlk, _ := callBlock(t, g, "b")
	linked := false
	for _, s := range aBlk.Succs {
		if s == bBlk {
			linked = true
		}
	}
	if !linked {
		t.Errorf("fallthrough case not linked to next case body")
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if !g.Reachable()[first(t, g, name)] {
			t.Errorf("switch arm %s unreachable", name)
		}
	}
}

func TestCFGRangeAndGoto(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f(xs []int) {
	for _, x := range xs {
		if x < 0 {
			goto done
		}
		a()
	}
	b()
done:
	c()
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	for _, name := range []string{"a", "b", "c"} {
		if !g.Reachable()[first(t, g, name)] {
			t.Errorf("%s() unreachable", name)
		}
	}
	// The goto must bypass b(): some predecessor of c's block is the goto
	// block inside the loop, i.e. c is reachable without passing b.
	cBlk, _ := callBlock(t, g, "c")
	bBlk, _ := callBlock(t, g, "b")
	direct := false
	for _, p := range cBlk.Preds {
		if p != bBlk && !strings.Contains(blockCalls(p), "b") {
			direct = true
		}
	}
	if !direct {
		t.Errorf("goto edge to label not built")
	}
}

// blockCalls summarizes the function names called in a block (test aid).
func blockCalls(b *Block) string {
	var names []string
	for _, n := range b.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					names = append(names, id.Name)
				}
			}
			return true
		})
	}
	return strings.Join(names, ",")
}

func TestCFGInfiniteLoopDoesNotReachExit(t *testing.T) {
	_, f, _ := typecheckSrc(t, `package p
`+cfgStubs+`
func f() {
	for {
		a()
	}
}
`)
	g := NewCFG(funcDecl(t, f, "f").Body)
	aBlk, _ := callBlock(t, g, "a")
	if g.ReachesExit()[aBlk] {
		t.Errorf("body of for{} without break should not reach exit")
	}
}
