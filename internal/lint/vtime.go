package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// VTime is the flow-aware complement to simdeterminism: instead of banning
// nondeterministic sources outright, it tracks where their values go. A
// taint lattice (dataflow.go) marks values derived from the wall clock, the
// unseeded global math/rand source, runtime scheduling queries, or map
// iteration variables, and reports when a tainted value reaches a virtual-
// time scheduling input: a conversion or assignment to a sim-driven Time
// type, a Time-typed call argument, or a counter Add on a sim-driven type.
// Event order must be a pure function of the simulated program; one host-
// dependent nanosecond in a Sleep duration silently forks the (time, seq)
// stream between runs.
//
// Sanctioned files (vtimeSanctioned) are the designated host-facing edge
// and are skipped entirely.
var VTime = &Analyzer{
	Name:     "vtime",
	Doc:      "forbid wall-clock, unseeded-rand, runtime-query, and map-iteration values from flowing into virtual-time scheduling inputs",
	Severity: SevError,
	Applies:  isSimDriven,
	Run:      runVTime,
}

// vtimeSanctioned maps package path to the files allowed to read host state:
// bench/parallel.go sizes its worker pool from runtime.GOMAXPROCS, which
// never feeds virtual time.
var vtimeSanctioned = map[string]map[string]bool{
	"bgpcoll/internal/bench": {"parallel.go": true},
}

// runtimeQueryFuncs are the runtime package functions whose results depend
// on host scheduling or load.
var runtimeQueryFuncs = map[string]bool{
	"NumCPU":       true,
	"NumGoroutine": true,
	"GOMAXPROCS":   true,
	"ReadMemStats": true,
	"NumCgoCall":   true,
}

func runVTime(pass *Pass) error {
	spec := TaintSpec{
		Source: func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = pass.Info.Uses[fun]
			case *ast.SelectorExpr:
				obj = pass.Info.Uses[fun.Sel]
			default:
				return false
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return false
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return false
			}
			switch fn.Pkg().Path() {
			case "time":
				return bannedTimeFuncs[fn.Name()]
			case "math/rand", "math/rand/v2":
				return !seededRandConstructors[fn.Name()]
			case "runtime":
				return runtimeQueryFuncs[fn.Name()]
			}
			return false
		},
		RangeSource: func(x ast.Expr) bool {
			tv, ok := pass.Info.Types[x]
			if !ok || tv.Type == nil {
				return false
			}
			_, isMap := tv.Type.Underlying().(*types.Map)
			return isMap
		},
	}

	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if vtimeSanctioned[pass.Path][name] {
			continue
		}
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
		for _, body := range bodies {
			g := NewCFG(body)
			tt := NewTaint(g, pass.Info, spec)
			tt.Walk(func(n ast.Node, tainted func(ast.Expr) bool) {
				vtimeSinks(pass, n, tainted)
			})
		}
	}
	return nil
}

// vtimeSinks scans one CFG node for tainted values reaching scheduling
// inputs.
func vtimeSinks(pass *Pass, n ast.Node, tainted func(ast.Expr) bool) {
	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(),
			"nondeterministic value (wall clock, global rand, runtime query, or map iteration) reaches %s; virtual time must derive only from the simulated program", what)
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if isSimTimeType(pass.typeOf(lhs)) && tainted(rhs) {
				report(rhs, "a virtual-time assignment")
			}
		}
	}
	inspectNoFuncLit(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Conversion to a sim Time type.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			if isSimTimeType(tv.Type) && len(call.Args) == 1 && tainted(call.Args[0]) {
				report(call.Args[0], "a sim.Time conversion")
			}
			return true
		}
		sig := callSig(pass, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break // variadic tail; scheduling inputs are never variadic
			}
			if isSimTimeType(sig.Params().At(i).Type()) && tainted(arg) {
				report(arg, "a virtual-time parameter")
			}
		}
		// Counter-style Add on a sim-driven receiver: the added quantity
		// decides when waiters wake, so it is a scheduling input too.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && isSimDriven(fn.Pkg().Path()) {
				for _, arg := range call.Args {
					if tainted(arg) {
						report(arg, "a counter Add")
					}
				}
			}
		}
		return true
	})
}

// typeOf returns the static type of e, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isSimTimeType reports whether t is a named type Time declared in a
// sim-driven package (the real sim.Time, or a fixture's stand-in).
func isSimTimeType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && isSimDriven(obj.Pkg().Path())
}

// callSig resolves the signature of a (non-conversion) call, or nil.
func callSig(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.typeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}
