package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// WorldReuse enforces the world-pool lease discipline introduced with
// resettable partitions (DESIGN.md §12). Reset rewinds a kernel's arenas, so
// every event, counter, and process handle carved before it is poison
// afterwards: the slab slot will be recarved for someone else. Two
// mechanically checkable rules keep that boundary safe:
//
//  1. Reset on a world-holding type (sim.Kernel, machine.Machine, mpi.World,
//     cnk.Process, tree.Network) may only be called from the sanctioned
//     reset/lease sites — the sim package itself, the Reset cascades in
//     machine/reset.go and mpi/reset.go, and the bench pool in
//     bench/worldpool.go. Everyone else leases through the pool, which is the
//     only place that can prove the world finished cleanly first.
//
//  2. No package-level variable in a simulator-driven package may hold (or
//     reach, through any composite type) a *sim.Event, *sim.Counter, or
//     *sim.Proc: such a variable outlives the run that carved the handle, and
//     the first use after a Reset is a stale-epoch panic at best and silent
//     cross-run corruption at worst. Per-run state belongs on the world
//     (WorldShared) or in locals.
//
// Test files are exempt: exercising Reset and stale handles directly is
// exactly what the reuse tests do. sim.Counter.Reset (rewinding one counter's
// count mid-run) is an ordinary simulation operation and is not matched.
var WorldReuse = &Analyzer{
	Name:    "worldreuse",
	Doc:     "restrict world Reset calls to the sanctioned pool/reset sites and forbid package-level sim handle retention in simulator-driven packages",
	Applies: isSimDriven,
	Run:     runWorldReuse,
}

// worldResetReceivers names the types whose Reset rewinds a whole partition
// (or a per-world slice of one). Matching is by type name within a
// simulator-driven package, like the program-frame rule, so fixtures can
// stand in for the real types.
var worldResetReceivers = map[string]bool{
	"Kernel":  true, // sim.Kernel
	"Machine": true, // machine.Machine
	"World":   true, // mpi.World
	"Process": true, // cnk.Process
	"Network": true, // tree.Network
}

// worldResetSanctioned lists, per import path, the one file allowed to call
// (or forward) a world Reset. The sim package is exempt wholesale: the kernel
// owns its own lifecycle.
var worldResetSanctioned = map[string]string{
	"bgpcoll/internal/machine": "reset.go",
	"bgpcoll/internal/mpi":     "reset.go",
	"bgpcoll/internal/bench":   "worldpool.go",
}

// kernelHandleTypes are the arena-carved sim types whose handles go stale at
// Reset.
var kernelHandleTypes = map[string]bool{
	"Event":   true,
	"Counter": true,
	"Proc":    true,
}

// isWorldReset reports whether obj is the Reset method of a world-holding
// type declared in a simulator-driven package.
func isWorldReset(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Reset" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	return worldResetReceivers[o.Name()] && o.Pkg() != nil && isSimDriven(o.Pkg().Path())
}

// reachesKernelHandle walks a type's structure (pointers, slices, arrays,
// maps, channels, struct fields) looking for an arena-carved sim handle.
// Function types are opaque: a closure's captures are not visible to the
// type checker. seen breaks cycles through recursive types.
func reachesKernelHandle(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		o := t.Obj()
		if kernelHandleTypes[o.Name()] && o.Pkg() != nil && isSimDriven(o.Pkg().Path()) {
			return true
		}
		return reachesKernelHandle(t.Underlying(), seen)
	case *types.Pointer:
		return reachesKernelHandle(t.Elem(), seen)
	case *types.Slice:
		return reachesKernelHandle(t.Elem(), seen)
	case *types.Array:
		return reachesKernelHandle(t.Elem(), seen)
	case *types.Chan:
		return reachesKernelHandle(t.Elem(), seen)
	case *types.Map:
		return reachesKernelHandle(t.Key(), seen) || reachesKernelHandle(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if reachesKernelHandle(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// worldReuseExemptFile reports whether findings in the named file are
// sanctioned: the file designated for this import path, any file of the sim
// package, or a test file.
func worldReuseExemptFile(pkgPath, base string) bool {
	if pkgPath == "bgpcoll/internal/sim" {
		return true
	}
	if strings.HasSuffix(base, "_test.go") {
		return true
	}
	return worldResetSanctioned[pkgPath] == base
}

func runWorldReuse(pass *Pass) error {
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if worldReuseExemptFile(pass.Path, base) {
			continue
		}
		// Reset-call siting: anywhere in the file, including nested closures.
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if obj, ok := pass.Info.Uses[sel.Sel]; ok && isWorldReset(obj) {
					pass.Reportf(sel.Sel.Pos(),
						"world Reset outside a sanctioned reset/lease site; lease through the bench world pool (internal/bench/worldpool.go) instead of resetting in place")
				}
			}
			return true
		})
		// Handle retention: package-level vars only; locals die with the run.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if reachesKernelHandle(obj.Type(), map[types.Type]bool{}) {
						pass.Reportf(name.Pos(),
							"package-level variable %s can retain an arena-carved sim handle across a world Reset; keep per-run handles on the world (WorldShared) or in locals", name.Name)
					}
				}
			}
		}
	}
	return nil
}
