package coll

// A parking operation must be the last action on every path: the
// bookkeeping after it races the armed resume.
func flaggedAfterPark(p *Proc, c *Counter, done func()) int {
	i := 0
	p.WaitThen(c, done) // want `parking operation WaitThen must be the last action on every path`
	i++
	return i
}

// A stored continuation must likewise be invoked in tail position.
func flaggedAfterCont(fin func()) int {
	n := 1
	fin() // want `continuation fin\(\) must be invoked in tail position`
	n++
	return n
}

// Allocating the continuation closure per chunk is the per-iteration cost
// the state-struct style exists to avoid; inside a loop the parking call is
// also never in tail position.
func flaggedClosurePerChunk(p *Proc, c *Counter, spans []int) {
	for range spans {
		p.WaitThen(c, func() {}) // want `allocated per chunk` `must be the last action on every path`
	}
}

// A method value rebuilt per iteration allocates just the same.
func flaggedMethodPerChunk(p *Proc, c *Counter, l *chunkLoop, spans []int) {
	for range spans {
		p.WaitThen(c, l.step) // want `method value step for WaitThen is allocated per chunk` `must be the last action on every path`
	}
}

// So does a closure that travels through a local rebuilt each iteration.
func flaggedRebuiltLocal(p *Proc, c *Counter, spans []int) {
	for i := range spans {
		after := func() { _ = i }
		p.WaitThen(c, after) // want `rebuilt every iteration` `must be the last action on every path`
	}
}

// A self-recursive closure re-runs its allocation sites once per
// activation even without a syntactic loop.
func flaggedRecursive(p *Proc, c *Counter, n int) {
	var step func(int)
	step = func(i int) {
		if i == n {
			return
		}
		p.WaitThen(c, func() { step(i + 1) }) // want `allocated per chunk`
	}
	step(0)
}

// Writing a frame field while a resume is armed hands the kernel a torn
// frame.
func flaggedArmedWrite(p *Proc, fn func()) {
	p.cont = fn
	p.armed = true
	p.cont = fn // want `program frame field cont written while a resume is armed`
}

// Re-arming an armed frame loses the pending resume.
func flaggedRearm(p *Proc) {
	p.armed = true
	p.armed = true // want `program frame field armed written while a resume is armed`
}

// Registration must reference the single named transcription serving both
// modes, not an inline closure.
func flaggedRegistration() {
	RegisterProgBcast("scratch", func(p *Proc) {}) // want `RegisterProgBcast argument must be a named package-level function`
}

// Collective bodies never branch on the execution mode.
func flaggedModeBranch(p *Proc, c *Counter, done func()) {
	if p.Inline() { // want `collective bodies must not branch on Proc.Inline`
		done()
		return
	}
	p.WaitThen(c, done)
}
