package coll

// Fixture stand-ins for the sim program-mode API: a Counter, a Proc carrying
// a resumable program frame, and a parking WaitThen operation. They are
// declared locally so the package type-checks standalone; the analyzer
// recognizes them because the fixture is loaded under a simulator-driven
// import path and the shapes match (a *Then op with a trailing func()
// continuation, a Proc type with program-frame fields).

// Counter is the fixture's completion counter.
type Counter struct{ v int64 }

// Add bumps the counter.
func (c *Counter) Add(n int64) { c.v += n }

// Proc carries the resumable program frame.
type Proc struct {
	cont   func()
	armed  bool
	inline bool
}

// WaitThen parks the program until c changes, then resumes fn.
func (p *Proc) WaitThen(c *Counter, fn func()) {
	p.cont = fn
	p.armed = true
}

// Inline reports which execution mode the proc runs in.
func (p *Proc) Inline() bool { return p.inline }

// RegisterProgBcast registers a program-mode transcription.
func RegisterProgBcast(name string, fn func(*Proc)) { _, _ = name, fn }
