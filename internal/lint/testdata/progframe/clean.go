package coll

// The house pattern, which the analyzer must accept: a per-rank state
// struct binds its continuations once, and every parking operation and
// continuation invocation sits in tail position.

// chunkLoop walks a span list one parked step at a time.
type chunkLoop struct {
	p      *Proc
	c      *Counter
	n, i   int
	cont   func()
	stepFn func()
}

func (l *chunkLoop) step() {
	if l.i == l.n {
		l.cont()
		return
	}
	l.i++
	l.p.WaitThen(l.c, l.stepFn)
}

// runChunkLoop seeds the loop; binding stepFn here is the once-per-rank
// allocation the per-chunk checks push code toward.
func runChunkLoop(p *Proc, c *Counter, n int, fin func()) {
	l := &chunkLoop{p: p, c: c, n: n, cont: fin}
	l.stepFn = l.step
	l.step()
}

// A parking op may end each branch separately: tail position is judged on
// every path, not on the last textual statement.
func cleanBranchTail(p *Proc, c *Counter, l *chunkLoop) {
	if l.i == 0 {
		p.WaitThen(c, l.stepFn)
		return
	}
	p.WaitThen(c, l.stepFn)
}

// Disarming first makes later frame writes legal again.
func cleanDisarmedWrite(p *Proc, fn func()) {
	p.armed = true
	p.armed = false
	p.cont = fn
}

// Registration with the named transcription is the sanctioned form.
func cleanRegistration() {
	RegisterProgBcast("bcast", progBody)
}

// progBody is the single named transcription both modes share.
func progBody(p *Proc) { _ = p }
