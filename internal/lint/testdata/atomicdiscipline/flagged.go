package shm

import (
	"sync"
	"sync/atomic"
)

// Locks are forbidden: the paper's structures coordinate exclusively through
// atomic fetch-and-increment.
var flaggedGlobalMu sync.Mutex // want `sync\.Mutex variable in shm`

type lockedCounter struct {
	mu sync.Mutex // want `sync\.Mutex field in shm`
	n  int64
}

func (c *lockedCounter) bump() {
	c.mu.Lock() // want `sync Lock call in shm`
	c.n++
	c.mu.Unlock() // want `sync Unlock call in shm`
}

// Copying a struct that embeds atomic state forks the counter: the two
// copies silently diverge.
type counter struct{ v atomic.Int64 }

func flaggedValueParam(c counter) int64 { // want `value parameter .*counter copies atomic state by value`
	return c.v.Load()
}

func flaggedAssignCopy(c *counter) {
	snapshot := *c // want `assignment copies .*counter by value`
	snapshot.v.Add(1)
}

func flaggedRangeCopy(cs []counter) int64 {
	var total int64
	for _, c := range cs { // want `range value copies .*counter per element`
		total += c.v.Load()
	}
	return total
}

// Mixing the sync/atomic function API with plain accesses of the same field
// is a data race.
type word struct{ n int64 }

func flaggedMixed(w *word) int64 {
	atomic.AddInt64(&w.n, 1)
	return w.n // want `plain access to field n`
}
