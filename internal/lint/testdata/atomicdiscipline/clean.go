package shm

import "sync/atomic"

// Pointer receivers and pointer passing never copy the atomic state.
type cleanCounter struct{ v atomic.Int64 }

func (c *cleanCounter) inc() int64 { return c.v.Add(1) }

func readThrough(c *cleanCounter) int64 { return c.v.Load() }

// A fresh composite literal is initialization, not a copy.
func newCleanCounter() *cleanCounter {
	c := cleanCounter{}
	return &c
}

// Index-and-address iteration keeps slot state shared, the FIFO pattern.
type cleanFIFO struct{ slots []cleanCounter }

func (f *cleanFIFO) slot(i int) *cleanCounter { return &f.slots[i] }

func (f *cleanFIFO) reset() {
	for i := range f.slots {
		f.slots[i].v.Store(0)
	}
}

// Uniformly atomic access through the function API is the old-style (pre
// atomic.Int64) discipline and stays legal.
type cleanWord struct{ n int64 }

func allAtomic(w *cleanWord) int64 {
	atomic.AddInt64(&w.n, 1)
	return atomic.LoadInt64(&w.n)
}
