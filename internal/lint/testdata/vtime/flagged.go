package coll

import (
	"math/rand"
	"runtime"
	"time"
)

// The wall clock flowing into virtual time forks the event stream between
// hosts: the taint survives the UnixNano conversion and the local.
func flaggedWallClock(k *kernel) {
	d := Time(time.Now().UnixNano()) // want `a sim.Time conversion`
	k.now = d                        // want `a virtual-time assignment`
}

// The global rand source draws from process-wide state; its value must not
// become a schedule time.
func flaggedGlobalRand(k *kernel) {
	j := rand.Int63n(100)
	k.At(Time(j), nil) // want `a sim.Time conversion` `a virtual-time parameter`
}

// Host-load queries are nondeterministic inputs too.
func flaggedRuntimeQuery(c *vCounter) {
	n := runtime.NumCPU()
	c.Add(int64(n)) // want `a counter Add`
}

// Map iteration order taints every value derived from the loop variables.
func flaggedMapOrder(k *kernel, m map[int]int64) {
	var last int64
	for _, v := range m {
		last = v
	}
	k.now = Time(last) // want `a sim.Time conversion` `a virtual-time assignment`
}
