package coll

// Time is the fixture's stand-in for sim.Time; the analyzer keys on the
// name and the simulator-driven package path, so the sinks below behave
// exactly like the real scheduling inputs.
type Time int64

// vCounter mimics sim.Counter: Add decides when waiters wake, so its
// argument is a scheduling input.
type vCounter struct{ v int64 }

func (c *vCounter) Add(n int64) { c.v += n }

// kernel mimics the event kernel's schedule-at entry point.
type kernel struct{ now Time }

func (k *kernel) At(t Time, fn func()) { _, _ = t, fn }
