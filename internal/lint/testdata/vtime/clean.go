package coll

import (
	"math/rand"
	"time"
)

// Host elapsed time measured for reporting only never reaches virtual time;
// vtime (unlike simdeterminism) accepts it because the taint dies here.
func cleanHostMetric(work func()) int64 {
	start := time.Now()
	work()
	return time.Since(start).Nanoseconds()
}

// An explicitly seeded generator is reproducible, so its draws may feed
// virtual time.
func cleanSeededJitter(k *kernel, seed int64) {
	r := rand.New(rand.NewSource(seed))
	k.At(Time(r.Int63n(8)), nil)
}

// Map iteration feeding a commutative reduction that never becomes a Time
// is order-free.
func cleanMapCount(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Values computed purely from the simulated program are the sanctioned
// schedule inputs.
func cleanProgramTime(k *kernel, spans []int) {
	var total Time
	for _, s := range spans {
		total += Time(s)
	}
	k.At(total, nil)
}
