package serve

// This file mirrors the sanctioned launch site internal/serve/pool.go: the
// bgpsimd worker pool runs whole, independent cell simulations and joins
// its workers on Close, so the analyzer exempts go statements here (and
// only here) within bgpcoll/internal/serve.
func sanctionedPoolWorker(work <-chan func()) {
	go func() {
		for job := range work {
			job()
		}
	}()
}
