package serve

// Goroutines anywhere else in the serving layer still race the simulations
// the pool launches; handlers and tests must go through the pool (or its
// runConcurrently helper).
func flaggedHandlerHelper(done chan<- struct{}) {
	go func() { // want `raw go statement in a simulator-driven package`
		done <- struct{}{}
	}()
}
