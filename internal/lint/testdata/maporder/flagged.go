package mpi

import "fmt"

// String building leaks iteration order straight into the output.
func flaggedConcat(m map[string]int) string {
	msg := ""
	for k, v := range m { // want `iteration over map m has an order-sensitive body`
		msg += fmt.Sprintf("%s=%d ", k, v)
	}
	return msg
}

// Float accumulation is order-sensitive in the bits: float addition is not
// associative, so a randomized order changes the last ulp.
func flaggedFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `iteration over map m has an order-sensitive body`
		sum += v
	}
	return sum
}

// Collecting keys without sorting them hands callers a randomized slice.
func flaggedUnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into slice "keys"`
		keys = append(keys, k)
	}
	return keys
}

// Function calls in the body may observe order (here: the send ordering on
// the channel).
func flaggedSend(m map[string]int, out chan<- string) {
	for k := range m { // want `iteration over map m has an order-sensitive body`
		out <- k
	}
}
