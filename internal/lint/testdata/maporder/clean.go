package mpi

import "sort"

// Building another map is commutative: writes land keyed, order-free.
func cleanInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Integer accumulation commutes exactly.
func cleanCount(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// The collect-keys-then-sort idiom: the slice is sorted after the loop.
func cleanSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Deleting by key is a set operation; per-iteration locals are fine too.
func cleanFilter(m map[string]int, drop map[string]bool) {
	for k := range m {
		doomed := drop[k]
		if doomed {
			delete(m, k)
		}
	}
}

// A reviewed order-free exception uses the allow annotation: the analyzer
// cannot see through the method call, the human can.
func cleanAllowed(m map[string]fmtStringer) int {
	total := 0
	//bgplint:allow maporder -- pure getters, integer sum commutes
	for _, v := range m {
		total += len(v.String())
	}
	return total
}

type fmtStringer interface{ String() string }
