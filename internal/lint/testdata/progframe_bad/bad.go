package coll

// A scratch chain-allreduce transcription with the CPS contract broken on
// purpose: the parking operation is followed by loop bookkeeping that would
// race the armed resume. CI runs bgplint over this package (analyzed as a
// collective package via -as) and asserts the run FAILS — proving the gate
// itself still gates. Do not fix this file.

type progCounter struct{ v int64 }

type progProc struct{ cont func() }

// WaitGEThen parks the program until c reaches n, then resumes fn.
func (p *progProc) WaitGEThen(c *progCounter, n int64, fn func()) {
	_, _ = c, n
	p.cont = fn
}

// chainLink forwards one chunk per parked step, middle-rank style.
type chainLink struct {
	p      *progProc
	stage  *progCounter
	got    int64
	chunk  int64
	n, j   int
	doneFn func()
	stepFn func()
}

func (l *chainLink) step() {
	if l.j == l.n {
		l.doneFn()
		return
	}
	l.got += l.chunk
	l.p.WaitGEThen(l.stage, l.got, l.stepFn)
	l.j++ // BROKEN: runs concurrently with the armed resume
}
