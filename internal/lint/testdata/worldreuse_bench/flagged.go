package bench

// The worldpool.go exemption is file-specific: the same operations in any
// sibling file of the bench package are flagged.

func sneakyReset(w *World) {
	w.Reset() // want `world Reset outside a sanctioned reset/lease site`
}

var escapedProc *Proc // want `package-level variable escapedProc can retain an arena-carved sim handle`
