package bench

// This file mirrors the sanctioned lease/reset site
// internal/bench/worldpool.go: under bgpcoll/internal/bench, and only in
// this file, the pool may reset worlds in place and park them in
// package-level state (the pool map reaches *sim.Proc through the worlds'
// rank registries).

type World struct{ generation int }

func (w *World) Reset() { w.generation++ }

type Proc struct{ idx uint32 }

// pooledWorld reaches a handle type, as the real pool map does.
type pooledWorld struct {
	w    *World
	proc *Proc
}

var pool []pooledWorld

func release(w *World) {
	w.Reset()
	pool = append(pool, pooledWorld{w: w})
}
