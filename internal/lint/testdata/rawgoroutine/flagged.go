package sim

// Raw goroutines anywhere else in a simulator-driven package race the event
// loop on the real scheduler.
func flaggedSpawn(fn func()) {
	go fn() // want `raw go statement in a simulator-driven package`
}

func flaggedClosure(results chan<- int) {
	go func() { // want `raw go statement in a simulator-driven package`
		results <- 1
	}()
}
