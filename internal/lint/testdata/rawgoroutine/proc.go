package sim

// The sanctioned launch site moved from proc.go to pool.go when process
// goroutines became pooled: Spawn now checks a worker out of the pool instead
// of launching one, so a go statement reappearing here must be flagged.
func spawnOutsidePool(fn func()) {
	go fn() // want `raw go statement in a simulator-driven package`
}
