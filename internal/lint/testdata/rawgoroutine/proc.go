package sim

// This file mirrors the sanctioned launch site internal/sim/proc.go: the
// analyzer exempts go statements here (and only here), because Kernel.Spawn
// wraps every simulated process in a goroutine-backed coroutine.
func sanctionedSpawn(fn func()) {
	go fn()
}
