package sim

// Program-mode execution is the whole point of goroutine-free ranks: inline
// programs resume as queue callbacks on the kernel's own stack. The surviving
// sanctioned launch sites are exactly pool.go and epoch.go (here) and parallel.go (bench);
// kernel execution code gaining a go statement must be flagged.
func spawnFromProgramCode(fn func()) {
	go fn() // want `raw go statement in a simulator-driven package`
}
