package sim

// This file mirrors the second sanctioned launch site internal/sim/epoch.go:
// the sharded kernel's window workers execute exactly one window per
// start-channel receive, with the start send happening-before the window and
// the done receive happening-after it, so the shard's state never crosses
// goroutines unsynchronized. The exemption is per-file and per-path: the
// identical code outside bgpcoll/internal/sim is flagged.
type windowWorker struct {
	start chan int64
	done  chan struct{}
}

func sanctionedWindowWorkerLaunch(run func(bound int64)) *windowWorker {
	w := &windowWorker{start: make(chan int64), done: make(chan struct{})}
	go func() {
		for bound := range w.start {
			run(bound)
			w.done <- struct{}{}
		}
	}()
	return w
}
