package sim

// This file mirrors the sanctioned launch site internal/sim/pool.go: the
// analyzer exempts go statements here (and only here), because the process
// worker pool launches the goroutines backing Kernel.Spawn coroutines and a
// pooled worker only executes simulation code while holding the virtual-CPU
// token.
type poolWorker struct {
	gate chan struct{}
}

func sanctionedPoolLaunch() *poolWorker {
	w := &poolWorker{gate: make(chan struct{})}
	go func() {
		for range w.gate {
		}
	}()
	return w
}
