package coll

// Proc stands in for sim.Proc: the analyzer recognizes the program frame by
// field name on any Proc type declared in a simulator-driven package, so the
// fixture does not need to import the real kernel.
type Proc struct {
	cont   func()
	contFn func()
	progFn func()
	armed  bool
	inline bool
}

// Reading frame state is fine — the kernel's own Inline() accessor does.
func cleanFrameRead(p *Proc) bool { return p.inline && p.armed }

// Writing it outside sim/program.go detaches a pending resume from the queue
// position the kernel owes it.
func flaggedFrameWrites(p *Proc, k func()) {
	p.cont = k      // want `direct mutation of Proc program frame field cont outside kernel execution`
	p.contFn = k    // want `direct mutation of Proc program frame field contFn outside kernel execution`
	p.progFn = k    // want `direct mutation of Proc program frame field progFn outside kernel execution`
	p.armed = true  // want `direct mutation of Proc program frame field armed outside kernel execution`
	p.inline = true // want `direct mutation of Proc program frame field inline outside kernel execution`
}
