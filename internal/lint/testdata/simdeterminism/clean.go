package coll

import (
	"math/rand"
	"time"
)

// Pure time types and constants never observe the wall clock.
const tick = 10 * time.Millisecond

// An explicitly seeded generator is reproducible and therefore allowed.
func cleanSeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(42)
}

// Methods on a seeded *rand.Rand are fine; only the global source is banned.
func cleanPerm(r *rand.Rand) []int { return r.Perm(8) }

// A reviewed exception is silenced with an allow annotation.
func allowedException() int64 {
	return time.Now().UnixNano() //bgplint:allow simdeterminism -- demo of the escape hatch
}
