package coll

import (
	"math/rand"
	"time"
)

// Wall-clock reads in a simulator-driven package: every one of these makes
// event timing depend on the host machine instead of sim.Time.
func flaggedWallClock() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	var zero time.Time
	_ = time.Since(zero)     // want `time\.Since reads the wall clock`
	return time.Until(start) // want `time\.Until reads the wall clock`
}

// The process-global rand source: its sequence depends on everything else
// that has consumed it, so two runs diverge.
func flaggedGlobalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the unseeded process-global source`
	return rand.Intn(42)               // want `rand\.Intn draws from the unseeded process-global source`
}
