package coll

import "time"

// The allow-audit fixture is exercised by a direct test (not the // want
// convention): audit findings land on the annotation's own line, which is a
// comment and cannot also carry a want comment.

// auditGood is the well-formed case: rule-scoped, justified, and actually
// suppressing a finding. It must produce no audit output.
func auditGood() int64 {
	return time.Now().UnixNano() //bgplint:allow simdeterminism -- fixture: reviewed exception
}

// auditNoRule names no rule at all.
func auditNoRule() int {
	//bgplint:allow
	return 1
}

// auditNoReason names a rule but omits the mandatory justification; the
// suppression still applies, so the only finding is the audit one.
func auditNoReason() int64 {
	return time.Now().UnixNano() //bgplint:allow simdeterminism
}

// auditUnknownRule names a rule that does not exist.
func auditUnknownRule() int {
	//bgplint:allow nosuchrule -- rule name is a typo
	return 1
}

// auditUnused names a rule that ran but suppresses nothing.
func auditUnused() int {
	//bgplint:allow simdeterminism -- stale: the flagged call was removed
	return 1
}

// auditNotRun names a real rule the test's pass does not run; its
// unused-ness is unjudgeable then, so it must produce no finding.
func auditNotRun() int {
	//bgplint:allow maporder -- judged only when maporder runs
	return 1
}
