package bench

// This file mirrors the second sanctioned launch site
// internal/bench/parallel.go: the sweep runner's pool workers each execute
// whole, independent simulations and merge results in fixed cell order, so
// the analyzer exempts go statements here (and only here) within
// bgpcoll/internal/bench.
func sanctionedWorker(job func()) {
	go job()
}
