package bench

// This file mirrors the third sanctioned launch site
// internal/bench/heapsampler.go: the sampler goroutine polls runtime memory
// statistics only and is joined before its experiment reports, so the
// analyzer exempts go statements here (and only here) within
// bgpcoll/internal/bench.
func sanctionedSampler(stop <-chan struct{}, done chan<- struct{}) {
	go func() {
		<-stop
		close(done)
	}()
}
