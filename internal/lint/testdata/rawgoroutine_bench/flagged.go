package bench

// Goroutines anywhere else in the bench package still race the simulations
// they share memory with.
func flaggedHelper(done chan<- struct{}) {
	go func() { // want `raw go statement in a simulator-driven package`
		done <- struct{}{}
	}()
}
