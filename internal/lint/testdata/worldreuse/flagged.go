package coll

// Stand-ins for the world-holding types: the analyzer matches Reset by
// receiver type name within a simulator-driven package, exactly like the
// program-frame rule, so the fixture needs no imports.

type Kernel struct{ epoch uint32 }

func (k *Kernel) Reset() { k.epoch++ }

type Machine struct{ K *Kernel }

// The real Machine.Reset forwards to K.Reset from the sanctioned
// machine/reset.go; here the forwarding call would itself be flagged, so the
// stand-ins rewind directly.
func (m *Machine) Reset() { m.K = nil }

type World struct{ M *Machine }

func (w *World) Reset() { w.M = nil }

type Process struct{ mapped int }

func (p *Process) Reset() { p.mapped = 0 }

type Network struct{ ops int }

func (n *Network) Reset() { n.ops = 0 }

// Stand-ins for the arena-carved handle types.
type Event struct{ fired bool }
type Counter struct{ n int64 }
type Proc struct{ idx uint32 }

// Calling Reset on any world-holding type outside a sanctioned site is
// flagged: this package must lease worlds through the bench pool.
func resetEverything(k *Kernel, m *Machine, w *World, p *Process, n *Network) {
	k.Reset() // want `world Reset outside a sanctioned reset/lease site`
	m.Reset() // want `world Reset outside a sanctioned reset/lease site`
	w.Reset() // want `world Reset outside a sanctioned reset/lease site`
	p.Reset() // want `world Reset outside a sanctioned reset/lease site`
	n.Reset() // want `world Reset outside a sanctioned reset/lease site`
}

// Nested closures are not a loophole.
func resetInClosure(w *World) func() {
	return func() {
		w.Reset() // want `world Reset outside a sanctioned reset/lease site`
	}
}

// Package-level variables reaching a handle type are flagged: they outlive
// the run that carved the handle.
var staleEvent *Event                 // want `package-level variable staleEvent can retain an arena-carved sim handle`
var staleCounters []*Counter          // want `package-level variable staleCounters can retain an arena-carved sim handle`
var staleProcByRank map[int]*Proc     // want `package-level variable staleProcByRank can retain an arena-carved sim handle`
var staleValue Counter                // want `package-level variable staleValue can retain an arena-carved sim handle`
var staleNested struct{ done *Event } // want `package-level variable staleNested can retain an arena-carved sim handle`
var staleCache = map[string][]*Proc{} // want `package-level variable staleCache can retain an arena-carved sim handle`
