package coll

// A Reset method on a type outside the world-holding set is an ordinary
// simulation operation: sim.Counter.Reset rewinds one counter mid-run, and
// any algorithm may call it.
type PumpCounter struct{ n int64 }

func (c *PumpCounter) Reset() { c.n = 0 }

func rewindCounter(c *PumpCounter) {
	c.Reset() // ok: not a world-holding type
}

// Declaring a Reset method is not calling one: the receiver's own file
// defines the rewind, the lint restricts who invokes it.

// Locals die with the run, so holding handles in them is fine.
func localHandles(e *Event, c *Counter) int64 {
	pending := []*Event{e}
	_ = pending
	return c.n
}

// Package-level state without sim handles is fine: registries of algorithm
// functions, thresholds, labels.
var algorithmNames = map[string]string{"shaddr": "CollectiveNetwork+Shaddr"}

var chunkThreshold = 1 << 16

// Function-typed state is opaque to the checker (captures are invisible);
// the runtime epoch check is the backstop there.
var defaultDone func()
