package sim

// This file mirrors the sanctioned frame-mutation site internal/sim/program.go:
// the program ops and the kernel activation wrappers own the resume state, so
// the analyzer exempts assignments here (and only here).
type Proc struct {
	cont   func()
	armed  bool
	inline bool
}

func sanctionedArm(p *Proc, k func()) {
	p.cont = k
	p.armed = true
}
