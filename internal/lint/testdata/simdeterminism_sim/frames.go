package sim

// Any other file in the sim package — tests included — must go through the
// program ops instead of poking the frame.
func flaggedArmElsewhere(p *Proc, k func()) {
	p.cont = k     // want `direct mutation of Proc program frame field cont outside kernel execution`
	p.armed = true // want `direct mutation of Proc program frame field armed outside kernel execution`
}
