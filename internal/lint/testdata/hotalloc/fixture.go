package coll

// entry is a pointer-free queue element: by-value composites like it never
// touch the heap and stay legal in hot code.
type entry struct{ seq, val int64 }

// ring is the reusable hot structure; its buffers survive Reset.
type ring struct {
	buf []entry
	tmp []int64
	fn  func()
}

func (r *ring) grow() {}

//bgplint:hot
func (r *ring) flaggedClosure(v int64) {
	r.fn = func() { _ = v } // want `closure allocated in //bgplint:hot function flaggedClosure`
}

//bgplint:hot
func (r *ring) flaggedMake(n int) {
	r.tmp = make([]int64, n) // want `make allocates in //bgplint:hot function flaggedMake`
}

//bgplint:hot
func flaggedSliceLit() []int64 {
	return []int64{1, 2, 3} // want `slice literal allocates in //bgplint:hot function flaggedSliceLit`
}

//bgplint:hot
func flaggedMapLit() map[int]int64 {
	return map[int]int64{1: 1} // want `map literal allocates in //bgplint:hot function flaggedMapLit`
}

//bgplint:hot
func flaggedPtrLit() *entry {
	return &entry{seq: 1} // want `&composite literal heap-allocates in //bgplint:hot function flaggedPtrLit`
}

//bgplint:hot
func (r *ring) flaggedMethodValue() {
	r.fn = r.grow // want `method value grow bound in //bgplint:hot function flaggedMethodValue`
}

// Appending into a buffer kept warm across Reset is amortized-free, the
// sanctioned growth idiom for hot structures.
//
//bgplint:hot
func (r *ring) cleanPush(e entry) {
	r.buf = append(r.buf, e)
}

// A by-value struct literal is stack-only.
//
//bgplint:hot
func cleanValueLit(seq, val int64) entry {
	return entry{seq: seq, val: val}
}

// Paths that can only end in panic are exempt: formatting the failure is
// not a hot path.
//
//bgplint:hot
func (r *ring) cleanPanicPath(i int) entry {
	if i < 0 || i >= len(r.buf) {
		msg := make([]byte, 0, 32)
		_ = msg
		panic("ring: index out of range")
	}
	return r.buf[i]
}

// bgplint:hot — near miss: a space after // is not the marker, so this
// function is not annotated and may allocate freely.
func cleanNotAnnotated(n int) []int64 {
	return make([]int64, n)
}
