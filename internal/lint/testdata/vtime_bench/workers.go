package bench

import "runtime"

// Time stands in for sim.Time, as in the vtime fixture.
type Time int64

func warm(t Time) { _ = t }

// Sibling files get no exemption: the identical flow parallel.go is allowed
// is flagged here.
func flaggedWorkerBudget() {
	n := runtime.NumCPU()
	warm(Time(int64(n))) // want `a sim.Time conversion` `a virtual-time parameter`
}
