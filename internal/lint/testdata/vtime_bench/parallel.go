package bench

import "runtime"

// parallel.go is the sanctioned host-facing edge under
// bgpcoll/internal/bench: the sweep runner there legitimately sizes its
// worker pool from the host, so vtime skips this file entirely — but only
// under that import path (the path-specificity test reloads this fixture
// as a collective package and expects both sinks below to fire).
func poolSize() int {
	n := runtime.GOMAXPROCS(0)
	warm(Time(int64(n)))
	return n
}
