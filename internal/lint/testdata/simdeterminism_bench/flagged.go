package bench

import "time"

// Any sibling file reading the wall clock is still flagged: the sanction is
// per file, not per package.
func flaggedTiming() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}
