package bench

import "time"

// heapsampler.go is a sanctioned wall-clock site under
// bgpcoll/internal/bench: the heap sampler polls runtime statistics on a
// real-time ticker, bracketing whole kernel runs without shaping any event
// ordering.
func sanctionedSamplerTicker() (time.Time, *time.Ticker) {
	return time.Now(), time.NewTicker(10 * time.Millisecond)
}
