package bench

import "time"

// figs.go is a sanctioned wall-clock site under bgpcoll/internal/bench: the
// capacity sweep times the simulator itself (construction, growth), which
// no virtual-clock read can express.
func sanctionedConstructTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}
