package machine

// Goroutines anywhere else in the machine package run concurrently with the
// simulations the partition hosts.
func flaggedHelper(done chan<- struct{}) {
	go func() { // want `raw go statement in a simulator-driven package`
		done <- struct{}{}
	}()
}
