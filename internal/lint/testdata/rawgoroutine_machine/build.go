package machine

// This file mirrors the third sanctioned launch site
// internal/machine/build.go: world construction fans contiguous slab blocks
// across joined workers before the kernel ever runs, so the analyzer exempts
// go statements here (and only here) within bgpcoll/internal/machine.
func sanctionedFill(fill func(lo, hi int)) {
	go fill(0, 1)
}
