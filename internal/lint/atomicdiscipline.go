package lint

import (
	"go/ast"
	"go/types"
)

// AtomicDiscipline enforces the paper's fetch-and-increment-only discipline
// on the shared-memory structures in internal/shm (DESIGN.md §2, §7):
//
//   - no sync.Mutex / sync.RWMutex / Lock-Unlock calls — the FIFOs and
//     counters are lock-free by construction, and a lock would serialize
//     exactly the contention the paper's design removes;
//   - no by-value copies of structs holding atomic state (a copy forks the
//     counter and both halves silently diverge);
//   - no plain reads or writes of fields that are accessed through the
//     sync/atomic function API elsewhere (mixed access is a data race).
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "enforce fetch-and-increment-only atomics in internal/shm: no locks, no by-value copies of atomic-bearing structs, no mixed atomic/plain field access",
	Applies: func(path string) bool {
		return path == "bgpcoll/internal/shm"
	},
	Run: runAtomicDiscipline,
}

// atomicFuncs are the sync/atomic package-level functions whose first
// argument addresses the shared word.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func runAtomicDiscipline(pass *Pass) error {
	checkLocks(pass)
	checkAtomicCopies(pass)
	checkMixedAccess(pass)
	return nil
}

// checkLocks flags sync mutex types and their Lock/Unlock call sites.
func checkLocks(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if t := pass.Info.Types[n.Type].Type; t != nil && mutexType(t) {
					pass.Reportf(n.Pos(), "%s field in shm: the paper's structures are fetch-and-increment only, locks are forbidden", t)
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if t := pass.Info.Types[n.Type].Type; t != nil && mutexType(t) {
						pass.Reportf(n.Pos(), "%s variable in shm: the paper's structures are fetch-and-increment only, locks are forbidden", t)
					}
				}
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.MethodVal {
					return true
				}
				m := sel.Obj()
				if m.Pkg() != nil && m.Pkg().Path() == "sync" {
					switch m.Name() {
					case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
						pass.Reportf(n.Sel.Pos(), "sync %s call in shm: the paper's structures are fetch-and-increment only, locks are forbidden", m.Name())
					}
				}
			}
			return true
		})
	}
}

// mutexType reports whether t is (or points to, or embeds at the top level)
// sync.Mutex or sync.RWMutex.
func mutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// containsAtomic reports whether t transitively holds a sync/atomic type (or
// a field-style atomic) by value.
func containsAtomic(t types.Type) bool {
	return containsAtomic1(t, map[types.Type]bool{})
}

func containsAtomic1(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic1(u.Elem(), seen)
	}
	return false
}

// checkAtomicCopies flags by-value uses of structs that hold atomic state:
// value parameters/results/receivers, assignments from existing values,
// value-typed call arguments, and range value variables. Fresh composite
// literals are initialization, not copies, and stay legal.
func checkAtomicCopies(pass *Pass) {
	atomicStruct := func(e ast.Expr) (types.Type, bool) {
		var t types.Type
		if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
			t = tv.Type
		} else if id, ok := e.(*ast.Ident); ok {
			// Range key/value idents are definitions, not expressions.
			if obj := pass.Info.ObjectOf(id); obj != nil {
				t = obj.Type()
			}
		}
		if t == nil {
			return nil, false
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return nil, false
		}
		if !containsAtomic(t) {
			return nil, false
		}
		return t, true
	}
	isFresh := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.ParenExpr:
			_, lit := e.X.(*ast.CompositeLit)
			return lit
		}
		return false
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.Info.Types[f.Type].Type
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsAtomic(t) {
				pass.Reportf(f.Type.Pos(), "%s %s copies atomic state by value; pass *%s", what, t, t)
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "value receiver")
				checkFieldList(n.Type.Params, "value parameter")
				checkFieldList(n.Type.Results, "value result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "value parameter")
				checkFieldList(n.Type.Results, "value result")
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if isFresh(rhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue // discarded, nothing diverges
					}
					if t, ok := atomicStruct(rhs); ok {
						pass.Reportf(rhs.Pos(), "assignment copies %s by value; take a pointer instead", t)
					}
				}
			case *ast.CallExpr:
				if tv, ok := pass.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					if isFresh(arg) {
						continue
					}
					if t, ok := atomicStruct(arg); ok {
						pass.Reportf(arg.Pos(), "call passes %s by value; pass *%s", t, t)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t, ok := atomicStruct(n.Value); ok {
					pass.Reportf(n.Value.Pos(), "range value copies %s per element; range over indices and take &s[i]", t)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isFresh(res) {
						continue
					}
					if t, ok := atomicStruct(res); ok {
						pass.Reportf(res.Pos(), "return copies %s by value; return *%s", t, t)
					}
				}
			}
			return true
		})
	}
}

// checkMixedAccess flags plain selector reads/writes of struct fields that
// are elsewhere passed to the sync/atomic function API (&x.f in
// atomic.AddInt64 etc.): every access to such a field must be atomic.
func checkMixedAccess(pass *Pass) {
	// Pass 1: find fields used through the atomic function API, and
	// remember the selector nodes inside those calls so they are not
	// re-flagged as plain accesses.
	atomicFields := map[*types.Var]bool{}
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.ObjectOf(pkgID).(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			if !hasAtomicPrefix(fun.Sel.Name) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
					if v, ok := s.Obj().(*types.Var); ok {
						atomicFields[v] = true
						inAtomicCall[sel] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Pass 2: flag the same fields accessed outside the atomic API.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok || !atomicFields[v] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"plain access to field %s, which is accessed atomically elsewhere; every access must go through sync/atomic", v.Name())
			return true
		})
	}
}

func hasAtomicPrefix(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}
