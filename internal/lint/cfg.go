// Control-flow graph construction: the flow-aware half of the bgplint
// engine. A CFG is built per function body (FuncDecl or FuncLit — nested
// literals get their own graphs) and decomposes the body into basic blocks
// whose nodes are statements and control expressions in evaluation order.
//
// The graph distinguishes three ways a path can end:
//
//   - Exit: the synthetic block every return and every fall-off-the-end
//     reaches. "Tail position" checks ask what runs between a node and Exit.
//   - a panic-terminated block: no successors and not Exit. Paths that only
//     panic never complete the function, so allocation and tail rules may
//     exempt them (failure formatting is not a hot path).
//   - an unreachable block: no predecessors; produced after returns and
//     branches so the builder always has a current block.
//
// The builder handles if/for/range/switch/type-switch/select, labeled
// break/continue, goto, fallthrough, and treats a call to the predeclared
// panic as terminating. It needs no type information; analyses on top
// (dataflow.go) take *types.Info.
package lint

import (
	"go/ast"
	"go/token"
)

// A Block is a basic block: nodes execute in order, then control transfers
// to exactly one of Succs (zero Succs on panic-terminated blocks and Exit).
type Block struct {
	Nodes []ast.Node // statements and control expressions in evaluation order
	Succs []*Block
	Preds []*Block
	Index int // position in CFG.Blocks, entry is 0
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // synthetic; holds no nodes
	Blocks []*Block
}

// NewCFG builds the control-flow graph of one function body. Nested FuncLit
// bodies are not traversed; build separate graphs for them.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.labels = map[string]*Block{}
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	for name, srcs := range b.pendingGotos {
		if dst := b.labels[name]; dst != nil {
			for _, src := range srcs {
				b.edge(src, dst)
			}
		}
	}
	return b.g
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

// ReachesExit returns the set of blocks from which Exit is reachable.
// Blocks outside the set can only end in panic (or loop forever).
func (g *CFG) ReachesExit() map[*Block]bool {
	seen := map[*Block]bool{}
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			visit(p)
		}
	}
	visit(g.Exit)
	return seen
}

type cfgBuilder struct {
	g            *CFG
	cur          *Block
	scopes       []cfgScope
	labels       map[string]*Block
	pendingGotos map[string][]*Block
	curLabel     string // label attached to the next loop/switch statement
}

// A cfgScope is a break/continue target pair for an enclosing loop, switch,
// or select (continueTo is nil for non-loops).
type cfgScope struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the label recorded by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then, after := b.newBlock(), b.newBlock()
		b.edge(b.cur, then)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(b.cur, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(b.cur, after)
		}
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body, after := b.newBlock(), b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		contTo := head
		if s.Post != nil {
			contTo = b.newBlock()
			contTo.Nodes = append(contTo.Nodes, s.Post)
			b.edge(contTo, head)
		}
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, contTo)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // carries X and the key/value assignment
		body, after := b.newBlock(), b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
		head := b.cur
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.labels[s.Label.Name] = lb
		b.cur = lb
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(s.Label, false); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findScope(s.Label, true); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			if dst := b.labels[s.Label.Name]; dst != nil {
				b.edge(b.cur, dst)
			} else {
				if b.pendingGotos == nil {
					b.pendingGotos = map[string][]*Block{}
				}
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], b.cur)
			}
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// handled by caseClauses; ignore here
		}

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// Terminates the function: no successor, and not Exit.
			b.cur = b.newBlock()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Decl, assignment, inc/dec, defer, go, send: straight-line nodes.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch clause structure.
// allowFallthrough is true for expression switches.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, allowFallthrough bool) {
	after := b.newBlock()
	head := b.cur
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if len(c.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fellThrough := false
		if allowFallthrough && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:len(stmts)-1]
				fellThrough = true
			}
		}
		b.stmtList(stmts)
		if fellThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// findScope resolves a break (needContinue=false) or continue target.
func (b *cfgBuilder) findScope(label *ast.Ident, needContinue bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != nil && sc.label != label.Name {
			continue
		}
		if needContinue {
			if sc.continueTo != nil {
				return sc.continueTo
			}
			if label != nil {
				return nil
			}
			continue
		}
		return sc.breakTo
	}
	return nil
}

// isPanicCall reports whether e is a call to the predeclared panic. The
// identifier is never shadowed in this module, so a name check suffices and
// keeps the builder independent of type information.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
