// Package lint implements bgplint, a static-analysis suite that mechanically
// enforces the two invariants the reproduction rests on: the discrete-event
// simulator must be bit-for-bit deterministic, and the internal/shm
// structures must keep the paper's fetch-and-increment-only atomic
// discipline (DESIGN.md, "Determinism & concurrency rules").
//
// The package is a self-contained miniature of golang.org/x/tools/go/analysis
// (which is unavailable here: the module has no external dependencies), built
// on the standard library's go/ast and go/types. Each check is an *Analyzer
// with the familiar Name/Doc/Run shape; cmd/bgplint is the multichecker
// driver and analysistest_test.go runs the testdata fixtures.
//
// Diagnostics can be suppressed with an explicit annotation on the offending
// line or the line directly above it:
//
//	//bgplint:allow <rule>[,<rule>...] -- <justification>
//
// The justification is mandatory and suppressions are themselves audited:
// unknown rule names, missing justifications, and annotations that no longer
// suppress anything are reported as allowaudit findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Severity classifies how a finding gates the build: SevError findings
// fail CI, SevAdvisory findings are reported but do not.
type Severity string

const (
	SevError    Severity = "error"
	SevAdvisory Severity = "advisory"
)

// An Analyzer describes one bgplint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow-comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Severity classifies the analyzer's findings; zero value means SevError.
	Severity Severity
	// Applies reports whether the analyzer runs over the package with the
	// given import path. Analyzers outside their scope are silently skipped.
	Applies func(pkgPath string) bool
	// Run inspects one type-checked package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// severity resolves the analyzer's effective severity.
func (a *Analyzer) severity() Severity {
	if a.Severity == "" {
		return SevError
	}
	return a.Severity
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path the package is analyzed as
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.severity(),
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Analyzers returns the full bgplint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism, RawGoroutine, MapOrder, AtomicDiscipline, WorldReuse,
		ProgFrame, VTime, HotAlloc,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies each analyzer whose Applies accepts pkg's path, filters
// diagnostics through the //bgplint:allow annotations found in the package's
// files, and returns the surviving findings sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var applied []*Analyzer // analyzers that actually ran on this package
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		applied = append(applied, a)
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags = suppress(pkg, diags, applied)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// simDriven lists the packages whose code executes under the discrete-event
// simulator: all timing must flow through sim.Time and all concurrency must
// be a sim process, so wall-clock calls, raw goroutines, and map-iteration
// order leaking into event scheduling are all determinism bugs there.
var simDriven = map[string]bool{
	"bgpcoll/internal/sim":     true,
	"bgpcoll/internal/hw":      true,
	"bgpcoll/internal/coll":    true,
	"bgpcoll/internal/ccmi":    true,
	"bgpcoll/internal/mpi":     true,
	"bgpcoll/internal/torus":   true,
	"bgpcoll/internal/dma":     true,
	"bgpcoll/internal/tree":    true,
	"bgpcoll/internal/cnk":     true,
	"bgpcoll/internal/bench":   true,
	"bgpcoll/internal/machine": true,
}

func isSimDriven(path string) bool { return simDriven[path] }
