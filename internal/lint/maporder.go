package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map in simulator-driven packages unless the
// loop body is provably order-insensitive. Go randomizes map iteration
// order, so any order that leaks into event scheduling, buffer contents, or
// error text breaks the bit-for-bit determinism the benchmarks rely on.
//
// A body counts as order-insensitive when every statement is one of:
//   - a write to a map (or blank), i.e. a commutative set/map build;
//   - delete(m, k);
//   - an integer accumulation (n++, total += v — float accumulation is NOT
//     exempt: float addition is not associative, so iteration order changes
//     the bits);
//   - an assignment or ++/-- on a variable declared inside the loop body
//     (per-iteration state cannot escape the iteration);
//   - s = append(s, ...) where s is passed to a sort.* / slices.Sort* call
//     later in the same function (the collect-keys-then-sort idiom);
//   - an if/for/switch/block/continue composed only of the above.
//
// Everything else is flagged; genuinely order-free exceptions carry a
// //bgplint:allow maporder annotation.
var MapOrder = &Analyzer{
	Name:    "maporder",
	Doc:     "flag range over a map in simulator-driven packages unless the loop body is order-insensitive",
	Applies: isSimDriven,
	Run:     runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMapRanges(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkMapRanges(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges examines the map-range statements directly inside one
// function body (nested function literals are visited as their own bodies).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, ok := tv.Type.Underlying().(*types.Map); !ok {
			return true
		}
		c := &orderChecker{pass: pass, rng: rs}
		if !c.stmtsOK(rs.Body.List) {
			pass.Reportf(rs.Pos(),
				"iteration over map %s has an order-sensitive body; iterate sorted keys instead (map order is randomized and breaks determinism)",
				types.ExprString(rs.X))
			return true
		}
		for _, ap := range c.appended {
			if !sortedAfter(pass, body, rs, ap) {
				pass.Reportf(rs.Pos(),
					"map iteration order leaks into slice %q; sort it after the loop (or iterate sorted keys)", ap.Name())
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// orderChecker decides whether one map-range body is order-insensitive.
type orderChecker struct {
	pass *Pass
	rng  *ast.RangeStmt
	// appended collects slice variables grown with s = append(s, ...);
	// the loop is only accepted if each is sorted later in the function.
	appended []*types.Var
}

func (c *orderChecker) stmtsOK(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *orderChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IncDecStmt:
		return c.loopLocal(s.X) || c.isInteger(s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && c.isBuiltin(call, "delete")
	case *ast.IfStmt:
		return c.stmtOK(s.Init) && c.stmtsOK(s.Body.List) && c.stmtOK(s.Else)
	case *ast.BlockStmt:
		return c.stmtsOK(s.List)
	case *ast.RangeStmt:
		return c.stmtsOK(s.Body.List)
	case *ast.ForStmt:
		return c.stmtOK(s.Init) && c.stmtOK(s.Post) && c.stmtsOK(s.Body.List)
	case *ast.SwitchStmt:
		if !c.stmtOK(s.Init) {
			return false
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); !ok || !c.stmtsOK(cc.Body) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !c.pureish(v) {
					return false
				}
			}
		}
		return true
	default:
		// break, return, send, call, defer, goto, ... : the loop's effect
		// (or which iteration reaches the statement) depends on order.
		return false
	}
}

func (c *orderChecker) assignOK(s *ast.AssignStmt) bool {
	// s = append(s, ...): defer the verdict to the sorted-later check.
	if s.Tok == token.ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && c.isBuiltin(call, "append") && len(call.Args) > 0 && c.pureish(s.Rhs[0]) {
				if arg, ok := call.Args[0].(*ast.Ident); ok && arg.Name == id.Name {
					if v, ok := c.pass.Info.ObjectOf(id).(*types.Var); ok {
						if c.loopLocal(id) {
							return true // per-iteration slice, any order fine
						}
						c.appended = append(c.appended, v)
						return true
					}
				}
			}
		}
	}
	// Computing the assigned value must itself be side-effect free, or the
	// calls in it could observe iteration order.
	for _, rhs := range s.Rhs {
		if !c.pureish(rhs) {
			return false
		}
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for _, lhs := range s.Lhs {
			if !c.lhsOK(lhs, s.Tok) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative-associative accumulation — for integers only: float
		// addition is order-sensitive in the bits, string += builds
		// order-dependent text.
		if len(s.Lhs) != 1 {
			return false
		}
		return c.loopLocal(s.Lhs[0]) || c.isInteger(s.Lhs[0])
	default:
		return false
	}
}

// lhsOK accepts assignment targets that cannot leak iteration order: blank,
// writes into a map, or variables scoped to the loop body.
func (c *orderChecker) lhsOK(lhs ast.Expr, tok token.Token) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		if tok == token.DEFINE {
			return true // freshly declared inside the body
		}
		return c.loopLocal(lhs)
	case *ast.IndexExpr:
		tv, ok := c.pass.Info.Types[lhs.X]
		if !ok || tv.Type == nil {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	default:
		return false
	}
}

// loopLocal reports whether expr is a variable declared inside the range
// body (per-iteration state that cannot carry order between iterations).
func (c *orderChecker) loopLocal(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= c.rng.Body.Pos() && obj.Pos() <= c.rng.Body.End()
}

func (c *orderChecker) isInteger(expr ast.Expr) bool {
	tv, ok := c.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isBuiltin reports whether call invokes the named builtin.
func (c *orderChecker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = c.pass.Info.ObjectOf(id).(*types.Builtin)
	return ok
}

// pureish reports whether evaluating expr has no side effects: no function
// calls except a few known-pure ones (builtins, conversions, and the
// formatting helpers of fmt/strconv/strings/math).
func (c *orderChecker) pureish(expr ast.Expr) bool {
	pure := true
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch c.pass.Info.ObjectOf(id).(type) {
			case *types.Builtin:
				switch id.Name {
				case "len", "cap", "min", "max", "append":
					return true
				}
			case *types.TypeName:
				return true // conversion
			}
		}
		if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion through a non-ident type expr
		}
		if c.pureStdlibCall(call) {
			return true
		}
		pure = false
		return false
	})
	return pure
}

// pureStdlibCall recognizes package-level calls into stdlib packages whose
// exported functions are pure: formatting and math helpers commonly used
// while building sorted-later slices (fmt.Sprintf in particular).
func (c *orderChecker) pureStdlibCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := c.pass.Info.ObjectOf(pkgID).(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "fmt":
		switch sel.Sel.Name {
		case "Sprint", "Sprintf", "Sprintln":
			return true
		}
		return false
	case "strconv", "strings", "math", "math/bits", "sort":
		// sort.Search-style helpers and all of strconv/strings/math are
		// side-effect free at package level. (sort.Slice etc. sort their
		// argument, but sorting commutes with iteration order anyway.)
		return true
	}
	return false
}

// sortedAfter reports whether slice sl is passed to a sort.*/slices.Sort*
// call somewhere after the range statement in the enclosing function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, sl *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "sort":
			// any sort.X(...) mentioning the slice
		case "slices":
			if len(sel.Sel.Name) < 4 || sel.Sel.Name[:4] != "Sort" {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.ObjectOf(id) == sl {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
