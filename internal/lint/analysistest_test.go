package lint

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture tests follow the x/tools analysistest convention: every line
// in testdata that should be flagged carries a trailing
//
//	// want `regexp`
//
// comment, and the test fails on any unexpected or missing diagnostic. Each
// fixture is analyzed under the import path of a real in-scope package so
// analyzer scoping and sanctioned-file rules apply as they do on the tree.

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// testLoader shares one Loader (and so one type-checked stdlib) across tests.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

var wantPatRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func runFixture(t *testing.T, a *Analyzer, importPath, dir string) {
	t.Helper()
	pkg, err := testLoader(t).LoadFixture(dir, importPath)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantPatRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, rest)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	runFixture(t, SimDeterminism, "bgpcoll/internal/coll", "testdata/simdeterminism")
}

func TestRawGoroutine(t *testing.T) {
	runFixture(t, RawGoroutine, "bgpcoll/internal/sim", "testdata/rawgoroutine")
}

func TestRawGoroutineBenchSite(t *testing.T) {
	runFixture(t, RawGoroutine, "bgpcoll/internal/bench", "testdata/rawgoroutine_bench")
}

func TestRawGoroutineMachineSite(t *testing.T) {
	runFixture(t, RawGoroutine, "bgpcoll/internal/machine", "testdata/rawgoroutine_machine")
}

// TestRawGoroutineServeSite checks the bgpsimd worker-pool sanction: pool.go
// under bgpcoll/internal/serve may launch workers, any sibling file may not.
func TestRawGoroutineServeSite(t *testing.T) {
	runFixture(t, RawGoroutine, "bgpcoll/internal/serve", "testdata/rawgoroutine_serve")
}

// TestRawGoroutineServeSiteIsPathSpecific reloads the serve fixture under a
// collective import path: pool.go loses its exemption there, adding its go
// statement to the one always-flagged site.
func TestRawGoroutineServeSiteIsPathSpecific(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/rawgoroutine_serve", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{RawGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2 (pool.go exemption must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestSimDeterminismProgramFrameSite checks the frame-mutation exemption is
// file-specific: the identical assignments are clean in program.go under
// bgpcoll/internal/sim and flagged in any sibling file.
func TestSimDeterminismProgramFrameSite(t *testing.T) {
	runFixture(t, SimDeterminism, "bgpcoll/internal/sim", "testdata/simdeterminism_sim")
}

// TestSimDeterminismWallClockSite checks the wall-clock sanction is
// file-specific: figs.go under bgpcoll/internal/bench may time the simulator
// itself, any sibling file is still flagged.
func TestSimDeterminismWallClockSite(t *testing.T) {
	runFixture(t, SimDeterminism, "bgpcoll/internal/bench", "testdata/simdeterminism_bench")
}

// TestWallClockSanctionIsPathSpecific loads the same fixture under another
// import path: figs.go and heapsampler.go lose their exemptions and all
// five wall-clock reads are flagged.
func TestWallClockSanctionIsPathSpecific(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/simdeterminism_bench", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{SimDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 5 {
		t.Errorf("got %d diagnostics, want 5 (figs.go/heapsampler.go exemptions must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

func TestWorldReuse(t *testing.T) {
	runFixture(t, WorldReuse, "bgpcoll/internal/coll", "testdata/worldreuse")
}

// TestWorldReuseBenchSite checks the pool-file exemption is file-specific:
// worldpool.go under bgpcoll/internal/bench may reset and retain, any
// sibling file may not.
func TestWorldReuseBenchSite(t *testing.T) {
	runFixture(t, WorldReuse, "bgpcoll/internal/bench", "testdata/worldreuse_bench")
}

// TestWorldReusePoolFileIsPathSpecific loads the bench fixture under a
// different sim-driven import path: worldpool.go loses its exemption there,
// adding its Reset call and its pool variable to the two always-flagged
// sites.
func TestWorldReusePoolFileIsPathSpecific(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/worldreuse_bench", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{WorldReuse})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4 (worldpool.go exemption must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

func TestMapOrder(t *testing.T) {
	runFixture(t, MapOrder, "bgpcoll/internal/mpi", "testdata/maporder")
}

func TestAtomicDiscipline(t *testing.T) {
	runFixture(t, AtomicDiscipline, "bgpcoll/internal/shm", "testdata/atomicdiscipline")
}

// TestScopingExemptsOtherPackages checks that the same offending code is
// ignored when the package is outside an analyzer's scope (examples and cmd
// legitimately read the wall clock).
func TestScopingExemptsOtherPackages(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/simdeterminism", "bgpcoll/examples/demo")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("out-of-scope package was flagged: %s", d)
	}
}

// TestSanctionedGoFileIsExactlyOne ensures the rawgoroutine exemption only
// covers pool.go and epoch.go in the real sim package: the identical files
// under another path are flagged.
func TestSanctionedGoFileIsExactlyOne(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/rawgoroutine", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{RawGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	// pool.go's and epoch.go's go statements lose their exemptions outside
	// bgpcoll/internal/sim, joining the four always-flagged sites (the
	// retired proc.go launch site and the program-execution file among them).
	if len(diags) != 6 {
		t.Errorf("got %d diagnostics, want 6 (pool.go/epoch.go exemptions must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}

	// Same for the bench sites: parallel.go and heapsampler.go are only
	// exempt under bgpcoll/internal/bench, so their two go statements join
	// the one always-flagged site.
	pkg, err = testLoader(t).LoadFixture("testdata/rawgoroutine_bench", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err = Run(pkg, []*Analyzer{RawGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3 (parallel.go/heapsampler.go exemptions must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}

	// And the machine construction site: build.go is only exempt under
	// bgpcoll/internal/machine.
	pkg, err = testLoader(t).LoadFixture("testdata/rawgoroutine_machine", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err = Run(pkg, []*Analyzer{RawGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2 (build.go exemption must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

func TestProgFrame(t *testing.T) {
	runFixture(t, ProgFrame, "bgpcoll/internal/coll", "testdata/progframe")
}

// TestProgFrameBadFixture pins the CI gate-gate: the deliberately broken
// scratch collective must fail the full suite with exactly the planted
// tail-position diagnostic, proving the gate itself still gates.
func TestProgFrameBadFixture(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/progframe_bad", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the planted one: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "progframe" || !strings.Contains(d.Message, "must be the last action") {
		t.Errorf("planted bug not caught as a progframe tail violation: %s", d)
	}
	if d.Severity != SevError {
		t.Errorf("planted bug reported as %s, want %s", d.Severity, SevError)
	}
}

func TestVTime(t *testing.T) {
	runFixture(t, VTime, "bgpcoll/internal/coll", "testdata/vtime")
}

// TestVTimeBenchSanctionedFile checks the host-facing exemption is
// file-specific: parallel.go under bgpcoll/internal/bench may read host
// state, any sibling file may not.
func TestVTimeBenchSanctionedFile(t *testing.T) {
	runFixture(t, VTime, "bgpcoll/internal/bench", "testdata/vtime_bench")
}

// TestVTimeSanctionedFileIsPathSpecific reloads the bench fixture under a
// collective import path: parallel.go loses its exemption there, adding its
// conversion and parameter sinks to the two always-flagged ones.
func TestVTimeSanctionedFileIsPathSpecific(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/vtime_bench", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{VTime})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Errorf("got %d diagnostics, want 4 (parallel.go exemption must be path-specific):", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

func TestHotAlloc(t *testing.T) {
	runFixture(t, HotAlloc, "bgpcoll/internal/coll", "testdata/hotalloc")
}

// TestHotAllocSeverity pins the advisory classification: hotalloc findings
// report but must not fail the error gate.
func TestHotAllocSeverity(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/hotalloc", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{HotAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("hotalloc fixture produced no diagnostics")
	}
	for _, d := range diags {
		if d.Severity != SevAdvisory {
			t.Errorf("hotalloc finding has severity %s, want %s: %s", d.Severity, SevAdvisory, d)
		}
	}
}

// TestAllowAudit exercises the suppression audit directly (audit findings
// land on the annotation's own comment line, which cannot also carry a
// want comment).
func TestAllowAudit(t *testing.T) {
	pkg, err := testLoader(t).LoadFixture("testdata/allowaudit", "bgpcoll/internal/coll")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{SimDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := []string{
		"names no rule",
		"no justification",
		`unknown rule "nosuchrule"`,
		"suppresses no simdeterminism finding",
	}
	for _, want := range wantMsgs {
		found := false
		for _, d := range diags {
			if d.Analyzer == allowAuditName && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no allowaudit finding containing %q", want)
		}
	}
	if len(diags) != len(wantMsgs) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(wantMsgs))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}

// TestRepoClean runs the full suite over the whole module: the tree must
// stay lint-clean, making the determinism guarantee mechanical. This is the
// same gate CI applies via `go run ./cmd/bgplint ./...`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	loader := testLoader(t)
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
