package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newTestCache(t *testing.T, l *Loader) *Cache {
	t.Helper()
	c, err := NewCache(t.TempDir(), l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The key must change when the package's own files change, when a
// module-internal dependency changes, and when the analyzer set changes —
// and must not change otherwise.
func TestCacheKeySensitivity(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      "module scratchmod\n\ngo 1.22\n",
		"app/app.go":  "package app\n\nimport \"scratchmod/dep\"\n\nvar _ = dep.D\n",
		"dep/dep.go":  "package dep\n\nvar D = 1\n",
		"other/o.go":  "package other\n\nvar O = 1\n",
		"app/util.go": "package app\n\nfunc util() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	appDir := filepath.Join(root, "app")
	c := newTestCache(t, l)
	base, err := c.Key(appDir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}

	again, err := newTestCache(t, l).Key(appDir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Error("key not deterministic across cache instances")
	}

	touch := func(rel, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, filepath.FromSlash(rel)), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	touch("app/util.go", "package app\n\nfunc util() { _ = 2 }\n")
	afterOwn, err := newTestCache(t, l).Key(appDir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if afterOwn == base {
		t.Error("key unchanged after editing a package file")
	}

	touch("dep/dep.go", "package dep\n\nvar D = 2\n")
	afterDep, err := newTestCache(t, l).Key(appDir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if afterDep == afterOwn {
		t.Error("key unchanged after editing a dependency")
	}

	touch("other/o.go", "package other\n\nvar O = 2\n")
	afterOther, err := newTestCache(t, l).Key(appDir, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if afterOther != afterDep {
		t.Error("key changed after editing an unrelated package")
	}

	fewer, err := newTestCache(t, l).Key(appDir, []*Analyzer{MapOrder})
	if err != nil {
		t.Fatal(err)
	}
	if fewer == afterDep {
		t.Error("key unchanged after changing the analyzer set")
	}
}

// Get must replay exactly what Put stored, and reject entries from another
// schema generation.
func TestCacheRoundTrip(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"a.go":   "package a\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCache(t, l)
	diags := []Diagnostic{{
		Analyzer: "simdeterminism",
		Severity: SevError,
		Position: token.Position{Filename: "a.go", Line: 3, Column: 9},
		Message:  "stored finding",
	}}
	if err := c.Put("deadbeef", diags); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("deadbeef")
	if !ok {
		t.Fatal("cache miss after Put")
	}
	if len(got) != 1 || got[0] != diags[0] {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if _, ok := c.Get("cafef00d"); ok {
		t.Error("hit for a key never stored")
	}

	stale, _ := json.Marshal(cacheEntry{Schema: "bgplint-cache-v0", Diags: diags})
	if err := os.WriteFile(filepath.Join(c.Dir, "stale.json"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("stale"); ok {
		t.Error("hit for an entry from another schema generation")
	}
}

// The JSON and SARIF encoders carry analyzer, severity, position, and
// message through, with module-relative paths.
func TestOutputEncodings(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "progframe",
			Severity: SevError,
			Position: token.Position{Filename: "/mod/internal/coll/x.go", Line: 12, Column: 3},
			Message:  "parking operation WaitThen must be the last action on every path",
		},
		{
			Analyzer: "hotalloc",
			Severity: SevAdvisory,
			Position: token.Position{Filename: "/mod/internal/sim/k.go", Line: 7, Column: 2},
			Message:  "make allocates in //bgplint:hot function push",
		},
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags, "/mod"); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, buf.String())
	}
	if len(arr) != 2 {
		t.Fatalf("got %d JSON findings, want 2", len(arr))
	}
	if arr[0]["file"] != "internal/coll/x.go" || arr[0]["severity"] != "error" {
		t.Errorf("first JSON finding wrong: %v", arr[0])
	}
	if arr[1]["severity"] != "advisory" {
		t.Errorf("advisory severity lost: %v", arr[1])
	}

	buf.Reset()
	if err := WriteSARIF(&buf, diags, "/mod"); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("bad SARIF output: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad SARIF skeleton: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bgplint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	// Rules cover the full suite plus the allow audit.
	if want := len(Analyzers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	if run.Results[0].Level != "error" || run.Results[1].Level != "note" {
		t.Errorf("levels %q/%q, want error/note", run.Results[0].Level, run.Results[1].Level)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/coll/x.go" || loc.Region.StartLine != 12 {
		t.Errorf("bad location: %+v", loc)
	}
	if !strings.Contains(buf.String(), "sarif-2.1.0.json") {
		t.Error("SARIF $schema missing")
	}
}
