package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc guards the steady-state zero-allocation property of the kernel
// inner loops (the 83% allocation win from the pooled-world work). A
// function annotated
//
//	//bgplint:hot
//
// in its doc comment may not allocate on any CFG path that completes
// normally: no closure literals, no make/new, no slice or map literals, no
// &T{} pointer literals, no method-value bindings. Plain struct value
// literals (the pointer-free queue entry{...} values) stay legal — they
// never touch the heap. Paths that can only end in panic are exempt —
// formatting a failure message is not a hot path. append is deliberately
// allowed: the hot structures grow amortized into reusable buffers (plan
// steps, the run ring) that Reset keeps warm.
//
// Advisory severity: a flagged allocation is a performance regression, not
// a correctness bug, so it reports without failing the build gate.
var HotAlloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "forbid closure, make/new, composite-literal, and method-value allocations in functions annotated //bgplint:hot, except on panic-only paths",
	Severity: SevAdvisory,
	Applies:  isSimDriven,
	Run:      runHotAlloc,
}

// hotMarker is the annotation naming a function whose steady-state paths
// must not allocate.
const hotMarker = "bgplint:hot"

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotAnnotated(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// isHotAnnotated reports whether the declaration's doc comment carries the
// hot marker.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), hotMarker) {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	g := NewCFG(fd.Body)
	reach := g.Reachable()
	exits := g.ReachesExit()
	for _, b := range g.Blocks {
		if !reach[b] || !exits[b] {
			continue // unreachable, or a panic-only failure path
		}
		for _, n := range b.Nodes {
			scanHotAllocs(pass, fd.Name.Name, n)
		}
	}
}

// litKind names a composite literal's shape for diagnostics.
func litKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// scanHotAllocs reports allocation sites inside one CFG node. Nested
// function literals are themselves the allocation; their bodies are not
// entered.
func scanHotAllocs(pass *Pass, fn string, n ast.Node) {
	// Selectors appearing as a call's callee are invocations, not
	// method-value bindings.
	callees := map[ast.Expr]bool{}
	inspectNoFuncLit(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			callees[call.Fun] = true
		}
		return true
	})
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocated in //bgplint:hot function %s; bind it once outside the hot path", fn)
			return false
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "make" || id.Name == "new") {
					pass.Reportf(x.Pos(), "%s allocates in //bgplint:hot function %s; reuse a buffer kept across Reset", id.Name, fn)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal heap-allocates in //bgplint:hot function %s; reuse pooled state", fn)
					return false
				}
			}
		case *ast.CompositeLit:
			if t := pass.typeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(), "%s literal allocates in //bgplint:hot function %s; reuse a buffer kept across Reset", litKind(t), fn)
					return false
				}
			}
		case *ast.SelectorExpr:
			if callees[x] {
				return true
			}
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				pass.Reportf(x.Pos(), "method value %s bound in //bgplint:hot function %s; store it in a field once", x.Sel.Name, fn)
			}
		}
		return true
	})
}
