package lint

import (
	"go/types"
)

// SimDeterminism forbids wall-clock time and the unseeded global math/rand
// source in simulator-driven packages. Event ordering there must depend only
// on virtual time (sim.Time) and explicitly seeded randomness; one stray
// time.Now() silently corrupts every benchmark figure without failing a
// test.
var SimDeterminism = &Analyzer{
	Name:    "simdeterminism",
	Doc:     "forbid wall-clock time and unseeded math/rand in simulator-driven packages; all timing must flow through sim.Time",
	Applies: isSimDriven,
	Run:     runSimDeterminism,
}

// bannedTimeFuncs are the package time functions that read or wait on the
// wall clock. Pure types and constants (time.Duration, time.Millisecond)
// stay legal: they do not observe real time.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// seededRandConstructors are the math/rand (and v2) package-level functions
// that build an explicitly seeded generator; everything else at package
// level draws from the process-global source, whose sequence depends on what
// else has consumed it (and, in rand/v2, on a per-process random seed).
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSimDeterminism(pass *Pass) error {
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods (e.g. (*rand.Rand).Intn) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(ident.Pos(),
					"time.%s reads the wall clock; simulator-driven code must use the kernel's virtual clock (sim.Time)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededRandConstructors[fn.Name()] {
				pass.Reportf(ident.Pos(),
					"rand.%s draws from the unseeded process-global source; use rand.New(rand.NewSource(seed)) so runs are reproducible", fn.Name())
			}
		}
	}
	// Uses iteration order is nondeterministic, but diagnostics are sorted
	// by position in Run, so output order is stable.
	return nil
}
