package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// SimDeterminism forbids wall-clock time and the unseeded global math/rand
// source in simulator-driven packages, and — since program-mode ranks were
// introduced — direct mutation of a Proc's program frame outside the kernel's
// own execution file. Event ordering there must depend only on virtual time
// (sim.Time) and explicitly seeded randomness; one stray time.Now() silently
// corrupts every benchmark figure without failing a test, and one stray
// `p.cont = ...` detaches a resume from the queue position the kernel owes
// it.
var SimDeterminism = &Analyzer{
	Name:    "simdeterminism",
	Doc:     "forbid wall-clock time, unseeded math/rand, and out-of-kernel Proc program-frame mutation in simulator-driven packages",
	Applies: isSimDriven,
	Run:     runSimDeterminism,
}

// progFrameFields is the resumable-program state of sim.Proc: the pending
// continuation, its pre-bound trampolines, and the armed/inline markers. The
// kernel maintains the invariant that exactly one resume is in flight per
// armed frame; any assignment outside sim/program.go breaks it silently.
var progFrameFields = map[string]bool{
	"cont":   true,
	"contFn": true,
	"progFn": true,
	"armed":  true,
	"inline": true,
}

// progFrameFile is the one file allowed to mutate program frames: the program
// ops and the kernel activation wrappers live there.
const (
	progFramePkg  = "bgpcoll/internal/sim"
	progFrameFile = "program.go"
)

// isProcProgFrame reports whether sel selects a program-frame field of a Proc
// type declared in a simulator-driven package (the real sim.Proc, or a
// fixture's stand-in).
func isProcProgFrame(pass *Pass, sel *ast.SelectorExpr) bool {
	if !progFrameFields[sel.Sel.Name] {
		return false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && isSimDriven(obj.Pkg().Path())
}

// wallClockSanctioned lists, per simulator-driven import path, the files
// allowed to read the wall clock: meta-measurement sites that time the
// simulator itself — world construction cost, the figS capacity sweep's
// wall-clock columns, the heap sampler's real-time polling ticker — rather
// than anything the virtual clock observes. Reads there bracket whole
// kernel runs and can shape no event ordering.
var wallClockSanctioned = map[string]map[string]bool{
	"bgpcoll/internal/bench": {"figs.go": true, "figs_test.go": true, "heapsampler.go": true},
}

// bannedTimeFuncs are the package time functions that read or wait on the
// wall clock. Pure types and constants (time.Duration, time.Millisecond)
// stay legal: they do not observe real time.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// seededRandConstructors are the math/rand (and v2) package-level functions
// that build an explicitly seeded generator; everything else at package
// level draws from the process-global source, whose sequence depends on what
// else has consumed it (and, in rand/v2, on a per-process random seed).
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runSimDeterminism(pass *Pass) error {
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods (e.g. (*rand.Rand).Intn) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				base := filepath.Base(pass.Fset.Position(ident.Pos()).Filename)
				if wallClockSanctioned[pass.Path][base] {
					continue
				}
				pass.Reportf(ident.Pos(),
					"time.%s reads the wall clock; simulator-driven code must use the kernel's virtual clock (sim.Time)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededRandConstructors[fn.Name()] {
				pass.Reportf(ident.Pos(),
					"rand.%s draws from the unseeded process-global source; use rand.New(rand.NewSource(seed)) so runs are reproducible", fn.Name())
			}
		}
	}
	// Uses iteration order is nondeterministic, but diagnostics are sorted
	// by position in Run, so output order is stable.

	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if pass.Path == progFramePkg && name == progFrameFile {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok && isProcProgFrame(pass, sel) {
					pass.Reportf(sel.Pos(),
						"direct mutation of Proc program frame field %s outside kernel execution; resume state may only change through the program ops in sim/program.go", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
