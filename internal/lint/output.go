package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Machine-readable output for the driver: a flat JSON array for scripting
// (`bgplint -json`) and a minimal SARIF 2.1.0 log for code-scanning upload
// (`bgplint -sarif`). Both live here rather than in cmd/bgplint so the
// encodings are unit-testable.

// jsonDiagnostic is the -json element shape.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON writes diags as a JSON array. File paths are made relative to
// root (module root) when possible, so output is stable across checkouts.
func WriteJSON(w io.Writer, diags []Diagnostic, root string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			Severity: string(d.Severity),
			File:     relPath(root, d.Position.Filename),
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton, just the fields code-scanning consumers require.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifText    `json:"shortDescription"`
	DefaultConfig    sarifRuleCfg `json:"defaultConfiguration"`
}

type sarifRuleCfg struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps bgplint severities onto the SARIF level vocabulary.
func sarifLevel(s Severity) string {
	if s == SevAdvisory {
		return "note"
	}
	return "error"
}

// WriteSARIF writes diags as a single-run SARIF 2.1.0 log. The rules table
// lists the full analyzer suite plus the allow-audit pseudo-rule, whether or
// not they fired, so consumers can render suppressed-to-zero runs.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	var rules []sarifRule
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			DefaultConfig:    sarifRuleCfg{Level: sarifLevel(a.severity())},
		})
	}
	rules = append(rules, sarifRule{
		ID:               allowAuditName,
		ShortDescription: sarifText{Text: "audit //bgplint:allow suppressions: rule-scoped, justified, and still suppressing something"},
		DefaultConfig:    sarifRuleCfg{Level: "error"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   sarifLevel(d.Severity),
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(root, d.Position.Filename)},
					Region: sarifRegion{
						StartLine:   d.Position.Line,
						StartColumn: d.Position.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bgplint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath makes path relative to root with forward slashes; on failure the
// input is returned unchanged.
func relPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
