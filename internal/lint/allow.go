package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// allowMarker is the prefix of a suppression annotation:
//
//	//bgplint:allow <rule>[,<rule>...] -- <justification>
//
// The annotation suppresses matching diagnostics on its own line (trailing
// comment) and on the line immediately below it (standalone comment above
// the flagged statement). The rule list must name analyzers explicitly —
// there is no wildcard — and the justification after the " -- " separator is
// mandatory: a suppression without a recorded reason is unreviewable.
const allowMarker = "bgplint:allow"

// allowAuditName is the pseudo-analyzer the allow audit reports under:
// malformed annotations, unknown rule names, and annotations that suppress
// nothing are themselves findings, so stale suppressions cannot accumulate.
const allowAuditName = "allowaudit"

// allowSep separates the rule list from the mandatory justification.
const allowSep = " -- "

// An allowAnnot is one parsed //bgplint:allow comment.
type allowAnnot struct {
	pos    token.Position
	rules  []string
	reason string
	used   bool
}

func (a *allowAnnot) matches(analyzer string) bool {
	for _, r := range a.rules {
		if r == analyzer {
			return true
		}
	}
	return false
}

// suppress drops diagnostics covered by allow annotations in pkg's files,
// then appends audit findings for the annotations themselves. ran is the
// analyzer set this Run executed: an annotation is only reported as unused
// when every rule it names actually ran (running -only maporder must not
// condemn a simdeterminism allow).
func suppress(pkg *Package, diags []Diagnostic, ran []*Analyzer) []Diagnostic {
	var annots []*allowAnnot
	// allowed[file][line] -> annotations in effect on that line.
	allowed := map[string]map[int][]*allowAnnot{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, allowMarker)
				if !ok {
					continue
				}
				a := &allowAnnot{pos: pkg.Fset.Position(c.Pos())}
				spec, reason, hasSep := strings.Cut(rest, allowSep)
				if hasSep {
					a.reason = strings.TrimSpace(reason)
				}
				if fields := strings.Fields(spec); len(fields) > 0 {
					a.rules = strings.Split(fields[0], ",")
				}
				annots = append(annots, a)
				byLine := allowed[a.pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowAnnot{}
					allowed[a.pos.Filename] = byLine
				}
				for _, line := range []int{a.pos.Line, a.pos.Line + 1} {
					byLine[line] = append(byLine[line], a)
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, a := range allowed[d.Position.Filename][d.Position.Line] {
			if a.matches(d.Analyzer) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}

	ranSet := map[string]bool{}
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	for _, a := range annots {
		audit := func(format string, args ...any) {
			kept = append(kept, Diagnostic{
				Analyzer: allowAuditName,
				Severity: SevError,
				Position: a.pos,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if len(a.rules) == 0 {
			audit("allow annotation names no rule; write //bgplint:allow <rule> -- <justification>")
			continue
		}
		if a.reason == "" {
			audit("allow annotation has no justification; append %q and the reason the finding is safe", strings.TrimSpace(allowSep))
		}
		allRan := true
		for _, r := range a.rules {
			if ByName(r) == nil {
				audit("allow annotation names unknown rule %q (see bgplint -list)", r)
				allRan = false
			} else if !ranSet[r] {
				allRan = false
			}
		}
		if allRan && !a.used {
			audit("allow annotation suppresses no %s finding; remove it", strings.Join(a.rules, "/"))
		}
	}
	return kept
}
