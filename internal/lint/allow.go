package lint

import (
	"strings"
)

// allowMarker is the prefix of a suppression annotation:
//
//	//bgplint:allow <analyzer>[,<analyzer>...] [reason]
//
// The annotation suppresses matching diagnostics on its own line (trailing
// comment) and on the line immediately below it (standalone comment above
// the flagged statement).
const allowMarker = "bgplint:allow"

// suppress drops diagnostics covered by allow annotations in pkg's files.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	// allowed[file][line] -> set of analyzer names (or "*" for all).
	allowed := map[string]map[int]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowMarker)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := allowed[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					allowed[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = map[string]bool{}
						byLine[line] = set
					}
					for _, name := range strings.Split(fields[0], ",") {
						set[name] = true
					}
				}
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		set := allowed[d.Position.Filename][d.Position.Line]
		if set[d.Analyzer] || set["*"] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
