package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// cacheSchema versions the cached diagnostic format and the analysis
// semantics baked into a key. Bump it whenever an analyzer's behavior
// changes in a way its Name+Doc string does not capture.
const cacheSchema = "bgplint-cache-v1"

// A Cache memoizes per-package diagnostics on disk, keyed by a content hash
// of the package directory, its transitive module-internal imports, and the
// analyzer set. A hit replays the stored diagnostics without parsing or
// type-checking anything, which is what makes the CI lint gate cheap on
// unchanged trees; any edit to a package or one of its dependencies changes
// the key and forces a fresh run.
type Cache struct {
	Dir    string // storage directory, one JSON file per key
	loader *Loader

	dirHashes map[string]string   // package dir -> hash of its .go files
	dirDeps   map[string][]string // package dir -> module-internal import dirs
}

// NewCache opens (creating if needed) a cache rooted at dir. An empty dir
// selects the default location: $BGPLINT_CACHE, or bgplint/ under the
// user cache directory.
func NewCache(dir string, l *Loader) (*Cache, error) {
	if dir == "" {
		if env := os.Getenv("BGPLINT_CACHE"); env != "" {
			dir = env
		} else {
			base, err := os.UserCacheDir()
			if err != nil {
				return nil, fmt.Errorf("lint: no cache dir: %w (set BGPLINT_CACHE)", err)
			}
			dir = filepath.Join(base, "bgplint")
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{
		Dir:       dir,
		loader:    l,
		dirHashes: map[string]string{},
		dirDeps:   map[string][]string{},
	}, nil
}

// Key computes the cache key for analyzing pkgDir with the given analyzer
// set. The hash covers every .go file in the directory and, transitively,
// in each module-internal import (discovered with an imports-only parse, no
// type-checking), so a dependency edit invalidates its dependents.
func (c *Cache) Key(pkgDir string, analyzers []*Analyzer) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s %s %s\n", a.Name, a.severity(), a.Doc)
	}

	seen := map[string]bool{}
	var visit func(dir string) error
	visit = func(dir string) error {
		if seen[dir] {
			return nil
		}
		seen[dir] = true
		dh, err := c.hashDir(dir)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(c.loader.Root, dir)
		if err != nil {
			rel = dir
		}
		fmt.Fprintf(h, "dir %s %s\n", filepath.ToSlash(rel), dh)
		deps, err := c.depDirs(dir)
		if err != nil {
			return err
		}
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(pkgDir); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashDir hashes the names, sizes, and contents of the directory's .go
// files.
func (c *Cache) hashDir(dir string) (string, error) {
	if h, ok := c.dirHashes[dir]; ok {
		return h, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	c.dirHashes[dir] = sum
	return sum, nil
}

// depDirs returns the directories of dir's module-internal imports (test
// files included: a test-only dependency edit can change diagnostics too).
func (c *Cache) depDirs(dir string) ([]string, error) {
	if deps, ok := c.dirDeps[dir]; ok {
		return deps, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	depSet := map[string]bool{}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			mod := c.loader.Module
			if path != mod && !strings.HasPrefix(path, mod+"/") {
				continue
			}
			sub := strings.TrimPrefix(strings.TrimPrefix(path, mod), "/")
			depSet[filepath.Join(c.loader.Root, filepath.FromSlash(sub))] = true
		}
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	c.dirDeps[dir] = deps
	return deps, nil
}

// cacheEntry is the on-disk value: the diagnostics one package produced.
type cacheEntry struct {
	Schema string
	Diags  []Diagnostic
}

// Get returns the cached diagnostics for key, if present and well-formed.
func (c *Cache) Get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.Dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil || ent.Schema != cacheSchema {
		return nil, false
	}
	return ent.Diags, true
}

// Put stores the diagnostics for key. A corrupt or unwritable cache is not
// an analysis failure, so callers may ignore the error.
func (c *Cache) Put(key string, diags []Diagnostic) error {
	data, err := json.Marshal(cacheEntry{Schema: cacheSchema, Diags: diags})
	if err != nil {
		return err
	}
	tmp := filepath.Join(c.Dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.Dir, key+".json"))
}
