package hw

import (
	"fmt"

	"bgpcoll/internal/geometry"
)

// Config describes one simulated BG/P partition.
type Config struct {
	Torus  geometry.Torus
	Mode   Mode
	Params Params

	// Functional selects whether rank buffers hold real bytes (tests,
	// examples) or are phantom metadata (large benchmark runs where
	// allocating ranks x megabytes of real data would be prohibitive).
	// Timing is identical either way.
	Functional bool

	// Shards partitions the simulation kernel: values above one split the
	// nodes into that many contiguous blocks, each simulated by its own
	// shard running conservative parallel epochs, with the collective
	// network on a hub shard (see sim/epoch.go). Zero or one means the
	// classic single-shard kernel. Sharded partitions are a benchmark
	// vehicle: they require phantom buffers and support the collective-
	// network broadcast family only.
	Shards int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if _, err := geometry.NewTorus(c.Torus.DX, c.Torus.DY, c.Torus.DZ); err != nil {
		return err
	}
	switch c.Mode {
	case SMP, Dual, Quad:
	default:
		return fmt.Errorf("hw: invalid mode %d", c.Mode)
	}
	if c.Params.TLBSlots < c.Mode.ProcsPerNode()-1 {
		return fmt.Errorf("hw: %d TLB slots cannot map %d peers",
			c.Params.TLBSlots, c.Mode.ProcsPerNode()-1)
	}
	if c.Shards < 0 {
		return fmt.Errorf("hw: negative shard count %d", c.Shards)
	}
	if c.Shards > 1 {
		if c.Functional {
			return fmt.Errorf("hw: sharded partitions require phantom buffers (Functional=false)")
		}
		if c.Shards > c.Nodes() {
			return fmt.Errorf("hw: %d shards exceed %d nodes", c.Shards, c.Nodes())
		}
	}
	return nil
}

// Nodes returns the node count of the partition.
func (c Config) Nodes() int { return c.Torus.Nodes() }

// Ranks returns the MPI rank count (nodes x processes per node).
func (c Config) Ranks() int { return c.Nodes() * c.Mode.ProcsPerNode() }

// DefaultConfig returns a small quad-mode partition suitable for tests and
// examples: an 4x4x2 torus (32 nodes, 128 ranks) with real data buffers.
func DefaultConfig() Config {
	return Config{
		Torus:      geometry.Torus{DX: 4, DY: 4, DZ: 2},
		Mode:       Quad,
		Params:     DefaultParams(),
		Functional: true,
	}
}

// RackConfig returns the paper's evaluation geometries: one BG/P rack is
// 1024 nodes (8x8x16); two racks, the paper's 8192-rank quad-mode system,
// form a 16x8x16 torus. Buffers are phantom because these runs exist for
// timing only.
func RackConfig(racks int) (Config, error) {
	var t geometry.Torus
	switch racks {
	case 1:
		t = geometry.Torus{DX: 8, DY: 8, DZ: 16}
	case 2:
		t = geometry.Torus{DX: 16, DY: 8, DZ: 16}
	case 4:
		t = geometry.Torus{DX: 16, DY: 16, DZ: 16}
	default:
		return Config{}, fmt.Errorf("hw: no preset for %d racks", racks)
	}
	return Config{Torus: t, Mode: Quad, Params: DefaultParams()}, nil
}

// MidplaneConfig returns a half-rack 8x8x8 partition (512 nodes, 2048 quad
// ranks): the default geometry for torus bandwidth benchmarks, where
// steady-state behaviour is scale-insensitive (DESIGN.md §4).
func MidplaneConfig() Config {
	return Config{
		Torus:  geometry.Torus{DX: 8, DY: 8, DZ: 8},
		Mode:   Quad,
		Params: DefaultParams(),
	}
}
