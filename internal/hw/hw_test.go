package hw

import (
	"testing"
	"testing/quick"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/sim"
)

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.CopyCachedBps <= p.CopyDRAMBps {
		t.Error("cached copy not faster than DRAM copy")
	}
	if p.ReduceBps <= p.ReduceDRAMBps {
		t.Error("cached reduce not faster than DRAM reduce")
	}
	if p.DMABps < 12*p.TorusLinkBps {
		t.Error("DMA cannot sustain six torus links in and out simultaneously (paper §III)")
	}
	if p.TreeBps <= p.TorusLinkBps {
		t.Error("tree slower than one torus link")
	}
	if 2*p.TorusLinkBps >= p.TreeBps+p.TorusLinkBps {
		t.Error("unexpected rate relation")
	}
	if p.TLBSlots != 3 {
		t.Errorf("default TLB slots = %d, want 3 (paper §III-B)", p.TLBSlots)
	}
	if p.CacheBytes != 8<<20 {
		t.Errorf("cache = %d, want 8 MB", p.CacheBytes)
	}
}

func TestWireBytes(t *testing.T) {
	p := DefaultParams()
	if got := p.TorusWireBytes(240); got != 256 {
		t.Errorf("TorusWireBytes(240) = %d", got)
	}
	if got := p.TorusWireBytes(241); got != 512 {
		t.Errorf("TorusWireBytes(241) = %d", got)
	}
	if got := p.TorusWireBytes(0); got != 0 {
		t.Errorf("TorusWireBytes(0) = %d", got)
	}
	if got := p.TreeWireBytes(256); got != 256 {
		t.Errorf("TreeWireBytes(256) = %d", got)
	}
	if got := p.TreeWireBytes(257); got != 512 {
		t.Errorf("TreeWireBytes(257) = %d", got)
	}
}

func TestWireBytesMonotone(t *testing.T) {
	p := DefaultParams()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.TorusWireBytes(x) <= p.TorusWireBytes(y) && p.TorusWireBytes(y) >= y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkBounds(t *testing.T) {
	p := DefaultParams()
	cases := []struct{ n, want int }{
		{0, 0},
		{100, 100}, // tiny message: one chunk
		{p.MinChunk, p.MinChunk},
		{1 << 20, 32 << 10},    // 1M/32 = 32K within bounds
		{64 << 20, p.MaxChunk}, // clamped high
		{8 << 10, 4 << 10},     // small message: clamped up to MinChunk
	}
	for _, c := range cases {
		if got := p.Chunk(c.n); got != c.want {
			t.Errorf("Chunk(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestChunksTile(t *testing.T) {
	p := DefaultParams()
	f := func(n uint32) bool {
		size := int(n % (8 << 20))
		spans := p.Chunks(size)
		off := 0
		for _, s := range spans {
			if s.Off != off || s.Len <= 0 {
				return false
			}
			off += s.Len
		}
		return off == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if SMP.String() != "SMP" || Dual.String() != "DUAL" || Quad.String() != "QUAD" {
		t.Error("mode strings wrong")
	}
	if Quad.ProcsPerNode() != 4 {
		t.Error("quad procs != 4")
	}
}

func TestConfigValidate(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c.Mode = Mode(3)
	if err := c.Validate(); err == nil {
		t.Error("invalid mode accepted")
	}
	c = DefaultConfig()
	c.Params.TLBSlots = 2
	if err := c.Validate(); err == nil {
		t.Error("too few TLB slots for quad mode accepted")
	}
	c.Mode = Dual // 1 peer in dual mode needs only 1 slot... 2 is fine
	if err := c.Validate(); err != nil {
		t.Errorf("dual mode with 2 slots rejected: %v", err)
	}
}

func TestConfigCounts(t *testing.T) {
	c := DefaultConfig()
	if c.Nodes() != 32 || c.Ranks() != 128 {
		t.Fatalf("default config %d nodes %d ranks", c.Nodes(), c.Ranks())
	}
}

func TestRackConfigs(t *testing.T) {
	for _, rc := range []struct{ racks, nodes int }{{1, 1024}, {2, 2048}, {4, 4096}} {
		racks, nodes := rc.racks, rc.nodes
		c, err := RackConfig(racks)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nodes() != nodes {
			t.Errorf("%d racks: %d nodes, want %d", racks, c.Nodes(), nodes)
		}
		if c.Ranks() != 4*nodes {
			t.Errorf("%d racks: %d ranks", racks, c.Ranks())
		}
	}
	if _, err := RackConfig(3); err == nil {
		t.Error("RackConfig(3) accepted")
	}
	if c := MidplaneConfig(); c.Nodes() != 512 {
		t.Errorf("midplane nodes = %d", c.Nodes())
	}
}

func TestNodeCopyCosts(t *testing.T) {
	k := sim.New()
	n := NewNode(k, 0, geometry.Coord{}, DefaultParams())
	if !n.Cached(8 << 20) {
		t.Error("8 MB should fit the cache")
	}
	if n.Cached(8<<20 + 1) {
		t.Error("8 MB + 1 should not fit")
	}
	cached := n.CopyTime(1<<20, true)
	dram := n.CopyTime(1<<20, false)
	if cached >= dram {
		t.Errorf("cached copy %v not faster than dram %v", cached, dram)
	}
	if n.ReduceTime(1<<20, true) <= cached {
		t.Error("reduce should be slower than copy")
	}
}

func TestNodeCopyAdvancesProcess(t *testing.T) {
	k := sim.New()
	n := NewNode(k, 0, geometry.Coord{}, DefaultParams())
	var done sim.Time
	k.Spawn("copier", func(p *sim.Proc) {
		n.Copy(p, 1<<20, true)
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := n.CopyTime(1<<20, true)
	if done != want {
		t.Fatalf("copy took %v, want %v (bus should not dominate a single copy)", done, want)
	}
}

func TestConcurrentCopiesShareBus(t *testing.T) {
	k := sim.New()
	p := DefaultParams()
	// Make the bus the bottleneck: slower than one core's copy rate.
	p.BusBps = p.CopyCachedBps / 2
	n := NewNode(k, 0, geometry.Coord{}, p)
	var last sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("copier", func(pr *sim.Proc) {
			n.Copy(pr, 1<<20, true)
			if pr.Now() > last {
				last = pr.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two 1 MB copies over a bus at CopyCachedBps/2 serialize: total 4x a
	// single cached copy.
	want := 4 * n.CopyTime(1<<20, true)
	if diff := last - want; diff < -sim.Nanosecond || diff > sim.Nanosecond {
		t.Fatalf("bus-bound copies finished at %v, want %v", last, want)
	}
}

func TestZeroByteOpsFree(t *testing.T) {
	k := sim.New()
	n := NewNode(k, 0, geometry.Coord{}, DefaultParams())
	k.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, 0, true)
		n.Reduce(p, 0, true)
		if p.Now() != 0 {
			t.Errorf("zero-byte ops consumed %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
