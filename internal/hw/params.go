// Package hw models the Blue Gene/P node and machine hardware parameters:
// core and memory cost model, network bandwidths and latencies, DMA and
// collective-network characteristics, and CNK-related constants. All numbers
// are calibration knobs of the simulator; defaults follow the published BG/P
// figures (850 MHz PowerPC 450 quad-core nodes, 425 MB/s torus links, 850
// MB/s collective network, 8 MB shared L2/L3).
package hw

import "bgpcoll/internal/sim"

// Params holds every hardware calibration constant of the machine model.
type Params struct {
	// CoreClockHz is the core frequency (informational; costs below are
	// expressed as rates and latencies directly).
	CoreClockHz float64

	// Memory subsystem.
	BusBps        float64 // aggregate DRAM bandwidth shared by the node
	CopyCachedBps float64 // single-core memcpy rate, working set in L2/L3
	CopyDRAMBps   float64 // single-core memcpy rate, working set in DRAM
	ReduceBps     float64 // single-core streaming double-sum rate (cached)
	ReduceDRAMBps float64 // same, working set in DRAM
	CacheBytes    int     // shared L2/L3 capacity (paper: 8 MB)

	// Torus network.
	TorusLinkBps      float64  // per link per direction, raw
	TorusHopLatency   sim.Time // per-hop forwarding latency
	TorusPacketBytes  int      // wire size of one packet
	TorusPayloadBytes int      // payload per packet

	// DMA engine.
	DMABps     float64  // aggregate engine throughput (injection+reception+local)
	DMAStartup sim.Time // per-descriptor startup cost

	// Collective (tree) network.
	TreeBps          float64  // channel rate up/down
	TreeHopLatency   sim.Time // per tree hop
	TreeCoreTouchBps float64  // core rate to inject or receive tree packets
	TreePacketBytes  int      // wire size of one tree packet
	TreePayloadBytes int      // payload per tree packet

	// CNK / process windows.
	SyscallTime     sim.Time // one system call
	MapSyscalls     int      // syscalls per new process-window mapping
	TLBSlots        int      // process-window TLB slots per process
	TLBSlotBytes    int      // span of one slot (1, 16 or 256 MB)
	MapCacheEnabled bool     // cache repeated buffer mappings

	// Intra-node synchronization.
	PollLatency    sim.Time // shared counter/flag propagation between cores
	BarrierLatency sim.Time // global interrupt network barrier

	// Software pipelining and staging.
	FIFOSlotBytes int // Bcast FIFO slot payload size
	FIFOSlots     int // slots per Bcast FIFO
	MinChunk      int // smallest pipeline chunk
	MaxChunk      int // largest pipeline chunk
	ChunkDivisor  int // target chunks per message (bounded by Min/MaxChunk)
}

// DefaultParams returns the calibrated BG/P parameter set used by all
// benchmarks (see DESIGN.md §5).
func DefaultParams() Params {
	return Params{
		CoreClockHz: 850e6,

		BusBps:        13.6e9,
		CopyCachedBps: 2.3e9,
		CopyDRAMBps:   1.1e9,
		ReduceBps:     1.7e9,
		ReduceDRAMBps: 0.9e9,
		CacheBytes:    8 << 20,

		TorusLinkBps:      425e6,
		TorusHopLatency:   sim.Nanoseconds(100),
		TorusPacketBytes:  256,
		TorusPayloadBytes: 240,

		DMABps:     5.5e9,
		DMAStartup: sim.Nanoseconds(300),

		TreeBps:          850e6,
		TreeHopLatency:   sim.Nanoseconds(130),
		TreeCoreTouchBps: 1.1e9,
		TreePacketBytes:  256,
		TreePayloadBytes: 256,

		SyscallTime:     sim.Microseconds(1.5),
		MapSyscalls:     2,
		TLBSlots:        3,
		TLBSlotBytes:    256 << 20,
		MapCacheEnabled: true,

		PollLatency:    sim.Nanoseconds(250),
		BarrierLatency: sim.Microseconds(1.3),

		FIFOSlotBytes: 8 << 10,
		FIFOSlots:     16,
		MinChunk:      4 << 10,
		MaxChunk:      64 << 10,
		ChunkDivisor:  32,
	}
}

// TorusWireBytes returns the on-wire byte count for n payload bytes on the
// torus, accounting for packetization overhead.
func (p Params) TorusWireBytes(n int) int {
	if n <= 0 {
		return 0
	}
	packets := (n + p.TorusPayloadBytes - 1) / p.TorusPayloadBytes
	return packets * p.TorusPacketBytes
}

// TreeWireBytes returns the on-wire byte count for n payload bytes on the
// collective network.
func (p Params) TreeWireBytes(n int) int {
	if n <= 0 {
		return 0
	}
	packets := (n + p.TreePayloadBytes - 1) / p.TreePayloadBytes
	return packets * p.TreePacketBytes
}

// Chunk returns the software pipelining chunk size for an n-byte message:
// roughly n/ChunkDivisor clamped to [MinChunk, MaxChunk], and never larger
// than the message itself.
func (p Params) Chunk(n int) int {
	if n <= 0 {
		return 0
	}
	c := n / p.ChunkDivisor
	c -= c % 512 // keep chunk boundaries element- and packet-aligned
	if c < p.MinChunk {
		c = p.MinChunk
	}
	if c > p.MaxChunk {
		c = p.MaxChunk
	}
	if c > n {
		c = n
	}
	return c
}

// Chunks splits n bytes into pipeline chunks and returns the chunk
// boundaries as (offset, length) pairs.
func (p Params) Chunks(n int) []Span {
	if n <= 0 {
		return nil
	}
	c := p.Chunk(n)
	out := make([]Span, 0, (n+c-1)/c)
	for off := 0; off < n; off += c {
		l := c
		if off+l > n {
			l = n - off
		}
		out = append(out, Span{Off: off, Len: l})
	}
	return out
}

// Span is a contiguous byte range of a message buffer.
type Span struct{ Off, Len int }
