package hw

import (
	"fmt"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/sim"
)

// Mode is the BG/P node operating mode: how many MPI processes run per node.
type Mode int

// Operating modes (paper §III).
const (
	SMP  Mode = 1 // one process (with a helper communication thread)
	Dual Mode = 2 // two processes
	Quad Mode = 4 // four processes, the mode this paper optimizes
)

func (m Mode) String() string {
	switch m {
	case SMP:
		return "SMP"
	case Dual:
		return "DUAL"
	case Quad:
		return "QUAD"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ProcsPerNode returns the MPI process count per node in this mode.
func (m Mode) ProcsPerNode() int { return int(m) }

// CoresPerNode is fixed on BG/P: four PowerPC 450 cores per node.
const CoresPerNode = 4

// Node models one BG/P compute node's shared resources: the memory bus and
// the cost model for core-driven copies and reductions. Network-side devices
// (DMA engine, torus router, tree interface) attach to the node from their
// own packages.
type Node struct {
	ID    int
	Coord geometry.Coord

	// P points at the partition's one shared, immutable parameter set
	// (machine.Machine owns it). Sharing it instead of embedding a copy is
	// the node-level flyweight: Params is ~280 bytes, and a rack-scale world
	// has hundreds of thousands of nodes.
	P *Params

	// Bus serializes DRAM traffic from all four cores and the DMA engine.
	// It points at the embedded bus below; the indirection survives from the
	// pointer-per-device era so call sites read n.Bus unchanged.
	Bus *sim.Pipe

	bus sim.Pipe
}

// NewNode creates a node with its memory bus on the kernel's root shard.
func NewNode(k *sim.Kernel, id int, c geometry.Coord, p Params) *Node {
	return NewNodeOn(k.RootShard(), id, c, p)
}

// NewNodeOn creates a node whose memory bus lives on the given shard, so the
// node's local traffic is simulated entirely within that shard's windows. On
// a single-shard kernel the root shard makes this identical to NewNode.
// Standalone construction (tests, single-node studies): the node owns a
// private copy of p and its bus pipe is registered immediately. Partitions
// use InitNode over a dense slab instead.
func NewNodeOn(sh *sim.Shard, id int, c geometry.Coord, p Params) *Node {
	n := &Node{}
	prm := p
	InitNode(n, sh, id, c, &prm)
	sh.Kernel().AdoptPipe(&n.bus)
	return n
}

// InitNode initializes a caller-allocated node in place: the hot
// world-construction path. It allocates nothing — the bus pipe is embedded,
// the parameter set is shared — and touches only n, so disjoint nodes may be
// initialized concurrently. The caller registers &n.bus (via Node.Bus) with
// Kernel.AdoptPipe afterwards, serially.
//
//bgplint:hot
func InitNode(n *Node, sh *sim.Shard, id int, c geometry.Coord, p *Params) {
	n.ID = id
	n.Coord = c
	n.P = p
	sh.InitPipe(&n.bus, "node.bus", int32(id), p.BusBps, 0)
	n.Bus = &n.bus
}

// Cached reports whether a working set of the given size fits the node's
// shared cache. Collective algorithms pass their total buffer footprint
// (e.g. four application buffers for a quad-mode shared-address broadcast);
// when it exceeds the 8 MB cache, copies run at DRAM rate — the effect behind
// the large-message dip in the paper's Fig. 10.
func (n *Node) Cached(footprint int) bool { return footprint <= n.P.CacheBytes }

// copyRate returns the single-core copy rate for the cache state.
func (n *Node) copyRate(cached bool) float64 {
	if cached {
		return n.P.CopyCachedBps
	}
	return n.P.CopyDRAMBps
}

// reduceRate returns the single-core streaming reduction rate.
func (n *Node) reduceRate(cached bool) float64 {
	if cached {
		return n.P.ReduceBps
	}
	return n.P.ReduceDRAMBps
}

// Copy advances p by the time one core needs to copy n bytes, also charging
// the node's memory bus. It returns the completion time.
func (n *Node) Copy(p *sim.Proc, bytes int, cached bool) sim.Time {
	return n.coreMemOp(p, bytes, n.copyRate(cached))
}

// Reduce advances p by the time one core needs to stream-sum n bytes of
// doubles from another buffer into its own, also charging the memory bus.
func (n *Node) Reduce(p *sim.Proc, bytes int, cached bool) sim.Time {
	return n.coreMemOp(p, bytes, n.reduceRate(cached))
}

// CopyTime returns the core-only cost of copying n bytes without executing
// it; used by analytic paths and tests.
func (n *Node) CopyTime(bytes int, cached bool) sim.Time {
	return sim.TransferTime(bytes, n.copyRate(cached))
}

// ReduceTime returns the core-only cost of reducing n bytes.
func (n *Node) ReduceTime(bytes int, cached bool) sim.Time {
	return sim.TransferTime(bytes, n.reduceRate(cached))
}

// coreMemOp models a core-driven streaming memory operation: the core is
// busy for bytes/rate, and the same bytes occupy the shared bus. The
// operation finishes at whichever is later.
func (n *Node) coreMemOp(p *sim.Proc, bytes int, rate float64) sim.Time {
	if bytes <= 0 {
		return p.Now()
	}
	busDone := n.Bus.Reserve(bytes)
	coreDone := p.Now() + sim.TransferTime(bytes, rate)
	done := busDone
	if coreDone > done {
		done = coreDone
	}
	p.SleepUntil(done)
	return done
}

// Poll advances p by the shared-memory poll/notify latency: the time for a
// flag or counter update by one core to become visible to another.
func (n *Node) Poll(p *sim.Proc) { p.Sleep(n.P.PollLatency) }

// CopyThen is the explicit-resume form of Copy: cont runs at the completion
// time Copy would have returned at.
func (n *Node) CopyThen(p *sim.Proc, bytes int, cached bool, cont func()) {
	n.coreMemOpThen(p, bytes, n.copyRate(cached), cont)
}

// ReduceThen is the explicit-resume form of Reduce.
func (n *Node) ReduceThen(p *sim.Proc, bytes int, cached bool, cont func()) {
	n.coreMemOpThen(p, bytes, n.reduceRate(cached), cont)
}

// coreMemOpThen mirrors coreMemOp: a non-positive size continues immediately
// without touching the bus; otherwise the bus reservation and the core
// occupation overlap, finishing at whichever is later.
func (n *Node) coreMemOpThen(p *sim.Proc, bytes int, rate float64, cont func()) {
	if bytes <= 0 {
		cont()
		return
	}
	p.BusyThen(n.Bus, bytes, sim.TransferTime(bytes, rate), cont)
}

// PollThen is the explicit-resume form of Poll.
func (n *Node) PollThen(p *sim.Proc, cont func()) { p.SleepThen(n.P.PollLatency, cont) }

// PlanCopy appends Copy to a fused step plan: the same bus reservation and
// core occupation, executed while the process stays parked.
func (n *Node) PlanCopy(pl *sim.Plan, bytes int, cached bool) {
	if bytes <= 0 {
		return
	}
	pl.Busy(n.Bus, bytes, sim.TransferTime(bytes, n.copyRate(cached)))
}

// PlanPoll appends Poll to a fused step plan.
func (n *Node) PlanPoll(pl *sim.Plan) { pl.Sleep(n.P.PollLatency) }
