// Package dma models the BG/P torus DMA engine (paper §III-A): the unit
// responsible for injecting packets into the torus, receiving packets from
// it, and performing local intra-node memory copies.
//
// The engine is a single shared bandwidth resource per node. It can keep all
// six torus links busy, but — the paper's central observation — it cannot
// additionally sustain the intra-node data movement of quad mode: when the
// same engine must also copy received data to three peer processes, network
// and local traffic queue behind one another and effective collective
// bandwidth collapses. That contention emerges naturally here because every
// operation reserves the same pipe.
//
// Direct put/get transfers complete into application buffers with no core
// involvement and update hardware byte counters that cores poll; memory-FIFO
// reception instead lands packets in a per-core FIFO that a core must copy
// out (the extra copy the shared-address schemes eliminate).
package dma

import (
	"fmt"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// Engine is one node's DMA engine. The pipe is embedded (not pointed to):
// machine slabs hold engines densely, so a rack-scale world pays one struct,
// not two allocations, per engine.
type Engine struct {
	node *hw.Node
	sh   *sim.Shard
	pipe sim.Pipe
}

// New creates the engine for node n on the kernel's root shard.
func New(k *sim.Kernel, n *hw.Node) *Engine {
	return NewOn(k.RootShard(), n)
}

// NewOn creates the engine for node n on the given shard, where its pipe,
// counters, and completion callbacks all live. On a single-shard kernel the
// root shard makes this identical to New. Standalone construction registers
// the pipe immediately; partitions use Init over a dense slab instead.
func NewOn(sh *sim.Shard, n *hw.Node) *Engine {
	e := &Engine{}
	Init(e, sh, n)
	sh.Kernel().AdoptPipe(&e.pipe)
	return e
}

// Init initializes a caller-allocated engine in place: the hot
// world-construction path. It allocates nothing and touches only e, so
// disjoint engines may be initialized concurrently; the caller registers
// Pipe() with Kernel.AdoptPipe afterwards, serially.
//
//bgplint:hot
func Init(e *Engine, sh *sim.Shard, n *hw.Node) {
	e.node = n
	e.sh = sh
	sh.InitPipe(&e.pipe, "node.dma", int32(n.ID), n.P.DMABps, 0)
}

// Pipe returns the engine's bandwidth pipe for kernel registration.
func (e *Engine) Pipe() *sim.Pipe { return &e.pipe }

// Node returns the owning node.
func (e *Engine) Node() *hw.Node { return e.node }

// Inject charges the engine for injecting wire bytes into the torus,
// starting no earlier than start (descriptor startup included), and returns
// the time the last byte has left the engine. The torus links are charged
// separately by the network layer.
func (e *Engine) Inject(start sim.Time, wire int) sim.Time {
	return e.pipe.ReserveFrom(start+e.node.P.DMAStartup, wire)
}

// Receive charges the engine for landing wire bytes that arrived from the
// torus at the given time, returning when the data is in memory.
func (e *Engine) Receive(arrived sim.Time, wire int) sim.Time {
	return e.pipe.ReserveFrom(arrived, wire)
}

// LocalCopy charges the engine for an intra-node memory-to-memory transfer
// of n bytes (a local direct put), starting no earlier than start. The
// engine both reads and writes memory, so the transfer occupies it for 2n
// bytes — the reason quad-mode algorithms that lean on the DMA for the
// intra-node dimension collapse (paper §V-A). The node's memory bus is
// charged as well.
func (e *Engine) LocalCopy(start sim.Time, n int) sim.Time {
	done := e.pipe.ReserveFrom(start+e.node.P.DMAStartup, 2*n)
	busDone := e.node.Bus.ReserveFrom(start, 2*n)
	if busDone > done {
		done = busDone
	}
	return done
}

// NewCounter allocates a hardware byte counter: the structure a core polls
// to track the progress of direct put/get operations. For every chunk of
// data written, the engine increments the counter by the chunk's byte count
// (the paper describes the mirror-image decrement formulation; counting up
// simplifies thresholds without changing behaviour).
func (e *Engine) NewCounter(name string) *sim.Counter {
	return e.sh.NewCounter(fmt.Sprintf("node%d.dmacnt.%s", e.node.ID, name))
}

// CompleteInto schedules counter.Add(payload) at time t: the engine's
// counter update when a chunk completes.
func (e *Engine) CompleteInto(counter *sim.Counter, t sim.Time, payload int) {
	e.sh.AddAt(t, counter, int64(payload))
}

// Stats exposes the engine pipe's utilization counters.
func (e *Engine) Stats() (bytes int64, busy sim.Time, transfers int64) {
	return e.pipe.Stats()
}
