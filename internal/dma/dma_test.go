package dma

import (
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

func newEngine(t *testing.T) (*sim.Kernel, *Engine, hw.Params) {
	t.Helper()
	k := sim.New()
	p := hw.DefaultParams()
	n := hw.NewNode(k, 0, geometry.XYZ(0, 0, 0), p)
	return k, New(k, n), p
}

func TestInjectCost(t *testing.T) {
	_, e, p := newEngine(t)
	done := e.Inject(0, 1<<20)
	want := p.DMAStartup + sim.TransferTime(1<<20, p.DMABps)
	if done != want {
		t.Fatalf("inject done %v, want %v", done, want)
	}
}

func TestEngineSharedBetweenNetworkAndLocal(t *testing.T) {
	// The paper's bottleneck: network reception and local copies queue on
	// the same engine.
	_, e, p := newEngine(t)
	const n = 1 << 20
	rx := e.Receive(0, n)
	local := e.LocalCopy(0, n)
	per := sim.TransferTime(n, p.DMABps)
	if rx != per {
		t.Fatalf("rx done %v, want %v", rx, per)
	}
	// A local copy occupies the engine for read+write (2n) and queues
	// behind the reception.
	if local < 3*per {
		t.Fatalf("local copy did not queue behind reception: %v < %v", local, 3*per)
	}
}

func TestLocalCopyChargesBus(t *testing.T) {
	k := sim.New()
	p := hw.DefaultParams()
	p.BusBps = p.DMABps / 4 // make the bus the bottleneck
	n := hw.NewNode(k, 0, geometry.XYZ(0, 0, 0), p)
	e := New(k, n)
	done := e.LocalCopy(0, 1<<20)
	busTime := sim.TransferTime(2<<20, p.BusBps)
	if done < busTime {
		t.Fatalf("local copy %v faster than bus alone %v", done, busTime)
	}
}

func TestReceiveFromArrivalTime(t *testing.T) {
	_, e, p := newEngine(t)
	at := 5 * sim.Microsecond
	done := e.Receive(at, 4096)
	want := at + sim.TransferTime(4096, p.DMABps)
	if done != want {
		t.Fatalf("receive done %v, want %v", done, want)
	}
}

func TestCounterCompletion(t *testing.T) {
	k, e, _ := newEngine(t)
	c := e.NewCounter("bcast")
	e.CompleteInto(c, 3*sim.Microsecond, 4096)
	e.CompleteInto(c, 7*sim.Microsecond, 4096)
	var sawAt sim.Time
	k.Spawn("poller", func(p *sim.Proc) {
		p.WaitGE(c, 8192)
		sawAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAt != 7*sim.Microsecond {
		t.Fatalf("counter reached threshold at %v", sawAt)
	}
}

func TestStats(t *testing.T) {
	_, e, _ := newEngine(t)
	e.Inject(0, 100)
	e.LocalCopy(0, 200)
	bytes, _, n := e.Stats()
	if bytes != 500 || n != 2 {
		t.Fatalf("stats bytes=%d n=%d", bytes, n)
	}
}
