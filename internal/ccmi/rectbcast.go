package ccmi

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/trace"
)

// Bcast executes the multi-color rectangle broadcast over the torus
// (paper §V-A). The message is split across the colors; each color pumps its
// partition chunk by chunk down its edge-disjoint spanning tree, pacing
// injection against the drain of the root's link. Every hop charges the
// forwarding node's DMA engine for injection and the receiving node's DMA
// engine for reception, so quad-mode algorithms that additionally use the
// DMA for intra-node copies contend exactly as on the real machine.
//
// Completion is observable per node through the Deliveries logs.
type Bcast struct {
	M          *machine.Machine
	Root       geometry.Coord
	Src        data.Buf    // the root's source buffer
	Bufs       []data.Buf  // per node: where delivered data lands (zero = timing only)
	Deliveries []*Delivery // per node: arrival logs (required)
	Colors     []geometry.Color
	Lane0      int // first link lane; color i uses lane Lane0+i

	// Hook, if set, observes every per-node delivery at its virtual time,
	// before the Delivery log records it. Algorithms use it to chain
	// DMA-driven intra-node distribution onto network arrivals.
	Hook func(node int, span hw.Span, t sim.Time)
}

// Run starts all color pumps at the current virtual time and returns
// immediately; progress continues event-driven.
func (b *Bcast) Run() {
	if len(b.Deliveries) != b.M.Geom.Nodes() {
		panic("ccmi: Bcast needs one Delivery per node")
	}
	offs, lens := geometry.SplitColors(b.Src.Len(), len(b.Colors))
	for i, color := range b.Colors {
		cr := newColorRun(b.M, b.Root, color, b.Lane0+i, b.M.Cfg.Params.Chunks(lens[i]), offs[i])
		cr.deliver = func(node int, span hw.Span, t sim.Time) {
			if b.Hook != nil {
				b.Hook(node, span, t)
			}
			if node != b.M.Geom.NodeID(b.Root) && b.Bufs[node].Len() > 0 && span.Len > 0 {
				dst, src := b.Bufs[node], b.Src
				b.M.K.At(t, func() {
					data.Copy(dst.Slice(span.Off, span.Len), src.Slice(span.Off, span.Len))
				})
			}
			b.Deliveries[node].Deliver(b.M.K, t, span)
		}
		cr.readyChunks = len(cr.spans) // plain broadcast: everything ready now
		cr.pump()
	}
}

// colorRun drives one color's spanning tree. It is shared between Bcast and
// the down-phase of Allreduce (which gates chunk injection on reduction
// completion via readyChunks).
type colorRun struct {
	m     *machine.Machine
	root  geometry.Coord
	color geometry.Color
	lane  int

	dims []geometry.Dim // color order restricted to dimensions of size > 1
	w    geometry.Coord // the root's d0 predecessor: owner of the mirror plane

	spans       []hw.Span // absolute chunk spans, in pump order
	next        int       // next chunk to inject
	readyChunks int       // chunks permitted to inject (monotone)
	gate        sim.Time  // pacing: next injection may not precede this
	pumping     bool

	deliver func(node int, span hw.Span, t sim.Time)
}

func newColorRun(m *machine.Machine, root geometry.Coord, color geometry.Color, lane int, chunks []hw.Span, baseOff int) *colorRun {
	cr := &colorRun{m: m, root: root, color: color, lane: lane}
	cr.spans = make([]hw.Span, len(chunks))
	for i, c := range chunks {
		cr.spans[i] = hw.Span{Off: baseOff + c.Off, Len: c.Len}
	}
	for _, d := range color.Order {
		if m.Geom.Size(d) > 1 {
			cr.dims = append(cr.dims, d)
		}
	}
	if len(cr.dims) > 0 {
		cr.w = m.Geom.Neighbor(root, cr.dims[0], -color.Dir)
	}
	return cr
}

// allowChunks raises the injection permit to n chunks and restarts the pump.
func (cr *colorRun) allowChunks(n int) {
	if n > cr.readyChunks {
		cr.readyChunks = n
	}
	cr.pump()
}

// pump injects the next permitted chunk. Re-entrant safe: only one injection
// chain is in flight at a time; pacing continues from the link drain.
func (cr *colorRun) pump() {
	if cr.pumping || cr.next >= len(cr.spans) || cr.next >= cr.readyChunks {
		return
	}
	cr.pumping = true
	span := cr.spans[cr.next]
	cr.next++
	k := cr.m.K

	start := cr.gate
	if now := k.Now(); now > start {
		start = now
	}
	cr.m.Trace.Addf(start, trace.Proto, cr.m.Geom.NodeID(cr.root),
		"bcast %v pump chunk [%d:%d)", cr.color, span.Off, span.Off+span.Len)
	// The root's master sees the chunk locally as it is injected, pacing
	// the root node's own intra-node pipeline with the network.
	cr.deliver(cr.m.Geom.NodeID(cr.root), span, start)

	if len(cr.dims) == 0 { // single-node partition: nothing to send
		cr.pumping = false
		k.At(start, cr.pump)
		return
	}

	wire := cr.m.Torus.WireBytes(span.Len)
	injDone := cr.m.NodeAt(cr.root).DMA.Inject(start, wire)
	k.At(injDone, func() {
		arrivals, firstStart := cr.m.Torus.LineBcast(k.Now(), cr.root, cr.dims[0], cr.color.Dir, cr.lane, span.Len)
		for _, a := range arrivals {
			cr.arrive(a.Node, span, a.At)
		}
		// Next chunk may inject once this one has entered the first link.
		cr.gate = firstStart
		cr.pumping = false
		k.At(maxTime(firstStart, k.Now()), cr.pump)
	})
}

// arrive processes the network arrival of span at node v: DMA reception,
// delivery, and the node's forwarding duties in the spanning tree.
func (cr *colorRun) arrive(v geometry.Coord, span hw.Span, netAt sim.Time) {
	k := cr.m.K
	wire := cr.m.Torus.WireBytes(span.Len)
	k.At(netAt, func() {
		rx := cr.m.NodeAt(v).DMA.Receive(k.Now(), wire)
		k.At(rx, func() {
			cr.m.Trace.Addf(k.Now(), trace.Net, cr.m.Geom.NodeID(v),
				"bcast %v chunk [%d:%d) delivered", cr.color, span.Off, span.Off+span.Len)
			cr.deliver(cr.m.Geom.NodeID(v), span, k.Now())
			cr.forward(v, span)
		})
	})
}

// forward executes v's spanning-tree duties for one chunk: an optional
// one-hop mirror patch toward the root column, then deposit-bit line
// broadcasts along each later dimension. Successive injections serialize on
// v's DMA engine.
func (cr *colorRun) forward(v geometry.Coord, span hw.Span) {
	lines, patch := cr.duties(v)
	k := cr.m.K
	wire := cr.m.Torus.WireBytes(span.Len)
	t := k.Now()
	dma := cr.m.NodeAt(v).DMA
	if patch {
		injDone := dma.Inject(t, wire)
		to, at := cr.m.Torus.NeighborSend(injDone, v, cr.dims[0], cr.color.Dir, cr.lane, span.Len)
		cr.arrive(to, span, at)
		t = injDone
	}
	for _, d := range lines {
		injDone := dma.Inject(t, wire)
		k.At(injDone, func() {
			arrivals, _ := cr.m.Torus.LineBcast(k.Now(), v, d, cr.color.Dir, cr.lane, span.Len)
			for _, a := range arrivals {
				cr.arrive(a.Node, span, a.At)
			}
		})
		t = injDone
	}
}

// duties returns the dimensions along which v must line-broadcast and
// whether v performs the one-hop mirror patch. See the package comment for
// the tree construction; TestBcastSpanningTree verifies single coverage.
func (cr *colorRun) duties(v geometry.Coord) (lines []geometry.Dim, patch bool) {
	if v == cr.root {
		panic("ccmi: duties of root")
	}
	d0 := cr.dims[0]
	if v.Get(d0) == cr.root.Get(d0) {
		return nil, false // patched column: subtree covered by mirrors
	}
	last := 0
	for i, d := range cr.dims {
		if v.Get(d) != cr.root.Get(d) {
			last = i
		}
	}
	return cr.dims[last+1:], v.Get(d0) == cr.w.Get(d0) && v != cr.w
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func (cr *colorRun) String() string {
	return fmt.Sprintf("colorRun{%v lane %d, %d chunks}", cr.color, cr.lane, len(cr.spans))
}
