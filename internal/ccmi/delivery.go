package ccmi

import (
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

// Delivery records what a collective schedule has delivered to one node: an
// ordered log of payload spans plus a byte counter that simulated processes
// wait on. It is the software-visible face of the DMA byte counters: rank
// protocols poll the counter and then process the newly logged spans.
type Delivery struct {
	Counter *sim.Counter
	Spans   []hw.Span
}

// NewDelivery creates an empty delivery log.
func NewDelivery(k *sim.Kernel, name string) *Delivery {
	return &Delivery{Counter: k.NewCounter(name)}
}

// Deliver schedules the arrival of span at time t: the span is appended to
// the log and the byte counter advances.
func (d *Delivery) Deliver(k *sim.Kernel, t sim.Time, span hw.Span) {
	k.At(t, func() {
		d.Spans = append(d.Spans, span)
		d.Counter.Add(int64(span.Len))
	})
}

// Drain returns the spans logged beyond *seen and advances *seen past them.
// Rank protocols call it after the counter moves to learn exactly which
// byte ranges arrived.
func (d *Delivery) Drain(seen *int) []hw.Span {
	spans := d.Spans[*seen:]
	*seen = len(d.Spans)
	return spans
}
