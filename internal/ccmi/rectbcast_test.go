package ccmi

import (
	"sort"
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/trace"
)

func newMachine(t *testing.T, dx, dy, dz int) *machine.Machine {
	t.Helper()
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: dx, DY: dy, DZ: dz}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runBcast executes a rectangle broadcast and returns per-node buffers and
// deliveries after the simulation drains.
func runBcast(t *testing.T, m *machine.Machine, root geometry.Coord, msg int, colors []geometry.Color) ([]data.Buf, []*Delivery, data.Buf) {
	t.Helper()
	src := data.New(msg, true)
	src.Fill(12345)
	nodes := m.Geom.Nodes()
	bufs := make([]data.Buf, nodes)
	dels := make([]*Delivery, nodes)
	for i := range bufs {
		bufs[i] = data.New(msg, true)
		dels[i] = NewDelivery(m.K, "del")
	}
	b := &Bcast{M: m, Root: root, Src: src, Bufs: bufs, Deliveries: dels, Colors: colors}
	m.K.At(0, b.Run)
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	return bufs, dels, src
}

func checkCoverage(t *testing.T, m *machine.Machine, dels []*Delivery, msg int) {
	t.Helper()
	for n, d := range dels {
		if got := d.Counter.Value(); got != int64(msg) {
			t.Fatalf("node %d delivered %d bytes, want %d", n, got, msg)
		}
		// Spans must tile [0, msg) exactly once.
		spans := append([]hw.Span(nil), d.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Off < spans[j].Off })
		off := 0
		for _, s := range spans {
			if s.Off != off {
				t.Fatalf("node %d: span gap/overlap at %d (span %+v)", n, off, s)
			}
			off += s.Len
		}
		if off != msg {
			t.Fatalf("node %d spans cover %d bytes", n, off)
		}
	}
}

func TestBcastSpanningTreeCoversOnce(t *testing.T) {
	for _, dims := range [][3]int{{4, 4, 4}, {4, 2, 3}, {2, 2, 2}, {1, 4, 2}, {5, 1, 1}, {1, 1, 1}} {
		m := newMachine(t, dims[0], dims[1], dims[2])
		_, dels, _ := runBcast(t, m, geometry.XYZ(0, 0, 0), 96<<10, m.Colors())
		checkCoverage(t, m, dels, 96<<10)
	}
}

func TestBcastDataIntegrity(t *testing.T) {
	m := newMachine(t, 4, 3, 2)
	bufs, _, src := runBcast(t, m, geometry.XYZ(1, 2, 1), 64<<10, m.Colors())
	rootID := m.Geom.NodeID(geometry.XYZ(1, 2, 1))
	for n, b := range bufs {
		if n == rootID {
			continue
		}
		if !data.Equal(b, src) {
			t.Fatalf("node %d received corrupted data", n)
		}
	}
}

func TestBcastNonCornerRoot(t *testing.T) {
	m := newMachine(t, 4, 4, 2)
	_, dels, _ := runBcast(t, m, geometry.XYZ(3, 1, 1), 32<<10, m.Colors())
	checkCoverage(t, m, dels, 32<<10)
}

func TestBcastSingleColor(t *testing.T) {
	m := newMachine(t, 4, 4, 2)
	_, dels, _ := runBcast(t, m, geometry.XYZ(0, 0, 0), 48<<10, geometry.Colors(1))
	checkCoverage(t, m, dels, 48<<10)
}

func TestBcastThreeColors(t *testing.T) {
	m := newMachine(t, 3, 3, 3)
	_, dels, _ := runBcast(t, m, geometry.XYZ(2, 2, 2), 30<<10, geometry.Colors(3))
	checkCoverage(t, m, dels, 30<<10)
}

func TestBcastTinyMessage(t *testing.T) {
	// Smaller than the color count: some colors carry nothing.
	m := newMachine(t, 2, 2, 2)
	_, dels, _ := runBcast(t, m, geometry.XYZ(0, 0, 0), 4, m.Colors())
	checkCoverage(t, m, dels, 4)
}

func TestBcastRootEgressIsSingleStream(t *testing.T) {
	// The root's DMA must inject each byte exactly once (plus wire
	// overhead): the mirror-patch construction keeps later phases off the
	// root. This is what lets six colors saturate six links.
	m := newMachine(t, 4, 4, 4)
	msg := 96 << 10
	root := geometry.XYZ(0, 0, 0)
	runBcast(t, m, root, msg, m.Colors())
	bytes, _, _ := m.NodeAt(root).DMA.Stats()
	// Expected: wire bytes of the message split into chunks, injected once.
	params := m.Cfg.Params
	offs, lens := geometry.SplitColors(msg, 6)
	_ = offs
	var want int64
	for _, l := range lens {
		for _, c := range params.Chunks(l) {
			want += int64(params.TorusWireBytes(c.Len))
		}
	}
	if bytes != want {
		t.Fatalf("root DMA moved %d bytes, want %d (single injection per byte)", bytes, want)
	}
}

func TestBcastSixColorAggregateBandwidth(t *testing.T) {
	// Large-message SMP-style broadcast should approach 6 links of payload
	// bandwidth (the paper's ~2.4 GB/s peak).
	m := newMachine(t, 4, 4, 4)
	msg := 4 << 20
	src := data.Phantom(msg)
	nodes := m.Geom.Nodes()
	dels := make([]*Delivery, nodes)
	for i := range dels {
		dels[i] = NewDelivery(m.K, "d")
	}
	b := &Bcast{M: m, Root: geometry.XYZ(0, 0, 0), Src: src, Bufs: make([]data.Buf, nodes), Deliveries: dels, Colors: m.Colors()}
	m.K.At(0, b.Run)
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	for n, d := range dels {
		if d.Counter.Value() != int64(msg) {
			t.Fatalf("node %d incomplete", n)
		}
		for range d.Spans {
		}
		_ = n
	}
	last = m.K.Now()
	rate := float64(msg) / last.Seconds()
	p := m.Cfg.Params
	payloadRatio := float64(p.TorusPayloadBytes) / float64(p.TorusPacketBytes)
	peak := 6 * p.TorusLinkBps * payloadRatio
	if rate < 0.75*peak {
		t.Fatalf("aggregate bcast rate %.0f MB/s, want >= 75%% of %.0f MB/s", rate/1e6, peak/1e6)
	}
	if rate > peak*1.01 {
		t.Fatalf("rate %.0f MB/s exceeds physical peak %.0f MB/s", rate/1e6, peak/1e6)
	}
}

func TestBcastDeterminism(t *testing.T) {
	run := func() sim.Time {
		m := newMachine(t, 3, 2, 4)
		runBcast(t, m, geometry.XYZ(1, 1, 1), 128<<10, m.Colors())
		return m.K.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestDeliveryDrain(t *testing.T) {
	k := sim.New()
	d := NewDelivery(k, "x")
	d.Deliver(k, 0, hw.Span{Off: 0, Len: 10})
	d.Deliver(k, sim.Microsecond, hw.Span{Off: 10, Len: 5})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	spans := d.Drain(&seen)
	if len(spans) != 2 || seen != 2 {
		t.Fatalf("drain = %v seen %d", spans, seen)
	}
	if len(d.Drain(&seen)) != 0 {
		t.Fatal("second drain not empty")
	}
}

func TestBcastTracing(t *testing.T) {
	m := newMachine(t, 2, 2, 1)
	m.Trace = trace.New(64)
	runBcast(t, m, geometry.XYZ(0, 0, 0), 16<<10, m.Colors())
	if m.Trace.Count(trace.Net) == 0 {
		t.Error("no network events traced")
	}
	if m.Trace.Count(trace.Proto) == 0 {
		t.Error("no protocol events traced")
	}
}
