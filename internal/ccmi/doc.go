// Package ccmi is the collective-framework layer of the stack (the analog of
// BG/P's CCMI framework the paper integrates with): it turns the raw torus
// and DMA substrates into reusable collective schedules.
//
//   - Bcast: the multi-color rectangle broadcast of §V-A. Each color owns an
//     edge-disjoint spanning tree built from deposit-bit line broadcasts:
//     the root sends its d0 line; d0-line nodes forward their d1 and d2
//     lines; plane nodes forward their d2 lines. The root's own d1/d2
//     subspace is covered without any extra root egress by the mirror rule:
//     every node in the d0-predecessor plane forwards one hop to its
//     root-column mirror. The root therefore injects each color's partition
//     exactly once, letting six colors sustain six links of aggregate
//     injection bandwidth (the paper's ~2.5 GB/s peak).
//
//   - Allreduce: the pipelined reduce+broadcast of §V-C. Per color, node
//     contributions flow along reversed-direction chain schedules (Z lines
//     into the root plane, Y lines into the root axis, the X line into the
//     root), each hop combining at the node's protocol core; reduced chunks
//     are then broadcast back down the color's forward tree. Reduce uses the
//     opposite-direction links from the broadcast, which is why the torus
//     supports three concurrent allreduce colors rather than six.
//
// Schedules execute event-driven against the simulation kernel: every hop
// charges the forwarding node's DMA engine and the links it crosses, and
// completed chunks are published to per-node Delivery logs that the rank
// protocols (package coll) consume.
package ccmi
