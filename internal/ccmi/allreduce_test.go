package ccmi

import (
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
)

// runAllreduce drives the network schedule with all contributions ready at
// time zero and returns the per-node result buffers.
func runAllreduce(t *testing.T, m *machine.Machine, root geometry.Coord, doubles int, colors []geometry.Color) ([]data.Buf, []*Delivery) {
	t.Helper()
	bytes := doubles * data.Float64Len
	nodes := m.Geom.Nodes()
	ar := &Allreduce{
		M:           m,
		Root:        root,
		Bytes:       bytes,
		Colors:      colors,
		Contrib:     make([][]*sim.Counter, nodes),
		ContribBufs: make([]data.Buf, nodes),
		ResultBufs:  make([]data.Buf, nodes),
		Deliveries:  make([]*Delivery, nodes),
		ProtoPipes:  make([]*sim.Pipe, nodes),
	}
	for n := 0; n < nodes; n++ {
		ar.Contrib[n] = contribCounters(m.K, len(colors))
		ar.ContribBufs[n] = data.New(bytes, true)
		vals := make([]float64, doubles)
		for i := range vals {
			vals[i] = float64(n + 1) // node n contributes n+1 everywhere
		}
		ar.ContribBufs[n].PutFloats(vals)
		ar.ResultBufs[n] = data.New(bytes, true)
		ar.Deliveries[n] = NewDelivery(m.K, "result")
		ar.ProtoPipes[n] = m.K.NewPipe("proto", m.Cfg.Params.ReduceBps, 0)
	}
	m.K.At(0, func() {
		ar.Run()
		for n := 0; n < nodes; n++ {
			for _, c := range ar.Contrib[n] {
				c.Add(int64(bytes)) // beyond any partition length: all ready
			}
		}
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	return ar.ResultBufs, ar.Deliveries
}

// contribCounters allocates one partition counter per color.
func contribCounters(k *sim.Kernel, colors int) []*sim.Counter {
	out := make([]*sim.Counter, colors)
	for i := range out {
		out[i] = k.NewCounter("contrib")
	}
	return out
}

func TestAllreduceSumCorrect(t *testing.T) {
	for _, dims := range [][3]int{{4, 3, 2}, {2, 2, 2}, {1, 4, 1}, {1, 1, 1}} {
		m := newMachine(t, dims[0], dims[1], dims[2])
		nodes := m.Geom.Nodes()
		doubles := 1024
		results, dels := runAllreduce(t, m, geometry.XYZ(0, 0, 0), doubles, geometry.Colors(3))
		// Sum over n of (n+1) = nodes*(nodes+1)/2.
		want := float64(nodes*(nodes+1)) / 2
		for n, res := range results {
			if got := dels[n].Counter.Value(); got != int64(doubles*data.Float64Len) {
				t.Fatalf("%v node %d delivered %d bytes", m.Geom, n, got)
			}
			vals := res.Floats()
			for i, v := range vals {
				if v != want {
					t.Fatalf("%v node %d element %d = %v, want %v", m.Geom, n, i, v, want)
				}
			}
		}
	}
}

func TestAllreduceNonZeroRoot(t *testing.T) {
	m := newMachine(t, 3, 2, 2)
	results, _ := runAllreduce(t, m, geometry.XYZ(2, 1, 1), 256, geometry.Colors(3))
	nodes := m.Geom.Nodes()
	want := float64(nodes*(nodes+1)) / 2
	for n, res := range results {
		if res.Floats()[0] != want {
			t.Fatalf("node %d = %v, want %v", n, res.Floats()[0], want)
		}
	}
}

func TestAllreducePipelinesReduceAndBroadcast(t *testing.T) {
	// The total time for a large allreduce must be well below the
	// unpipelined sum of a full reduce followed by a full broadcast:
	// with chunk pipelining it approaches one message time per phase
	// overlapped, i.e. ~1x the message stream time rather than 2x.
	m := newMachine(t, 4, 4, 4)
	doubles := 256 << 10 // 2 MB
	_, _ = runAllreduce(t, m, geometry.XYZ(0, 0, 0), doubles, geometry.Colors(3))
	elapsed := m.K.Now()
	bytes := doubles * data.Float64Len
	p := m.Cfg.Params
	payloadRatio := float64(p.TorusPayloadBytes) / float64(p.TorusPacketBytes)
	// One phase at 3 colors x link rate:
	onePhase := sim.TransferTime(bytes, 3*p.TorusLinkBps*payloadRatio)
	if elapsed > 2*onePhase {
		t.Fatalf("allreduce took %v, want < 2x one-phase time %v (pipelining broken)", elapsed, 2*onePhase)
	}
	if elapsed < onePhase {
		t.Fatalf("allreduce took %v, faster than physically possible %v", elapsed, onePhase)
	}
}

func TestAllreduceDeterminism(t *testing.T) {
	run := func() sim.Time {
		m := newMachine(t, 3, 3, 2)
		runAllreduce(t, m, geometry.XYZ(0, 0, 0), 4096, geometry.Colors(3))
		return m.K.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestAllreduceIncrementalContributions(t *testing.T) {
	// Contributions arriving late must gate the pipeline but still produce
	// the correct sum.
	m := newMachine(t, 2, 2, 1)
	nodes := m.Geom.Nodes()
	doubles := 512
	bytes := doubles * data.Float64Len
	ar := &Allreduce{
		M:           m,
		Root:        geometry.XYZ(0, 0, 0),
		Bytes:       bytes,
		Colors:      geometry.Colors(3),
		Contrib:     make([][]*sim.Counter, nodes),
		ContribBufs: make([]data.Buf, nodes),
		ResultBufs:  make([]data.Buf, nodes),
		Deliveries:  make([]*Delivery, nodes),
		ProtoPipes:  make([]*sim.Pipe, nodes),
	}
	for n := 0; n < nodes; n++ {
		ar.Contrib[n] = contribCounters(m.K, 3)
		ar.ContribBufs[n] = data.New(bytes, true)
		vals := make([]float64, doubles)
		for i := range vals {
			vals[i] = 2
		}
		ar.ContribBufs[n].PutFloats(vals)
		ar.ResultBufs[n] = data.New(bytes, true)
		ar.Deliveries[n] = NewDelivery(m.K, "result")
		ar.ProtoPipes[n] = m.K.NewPipe("proto", m.Cfg.Params.ReduceBps, 0)
	}
	m.K.At(0, ar.Run)
	// Feed contributions in two halves at different times.
	for n := 0; n < nodes; n++ {
		m.K.At(sim.Microsecond, func() {
			for _, c := range ar.Contrib[n] {
				c.Add(int64(bytes / 2))
			}
		})
		m.K.At(sim.Time(n+1)*50*sim.Microsecond, func() {
			for _, c := range ar.Contrib[n] {
				c.Add(int64(bytes - bytes/2))
			}
		})
	}
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		vals := ar.ResultBufs[n].Floats()
		for i, v := range vals {
			if v != float64(2*nodes) {
				t.Fatalf("node %d elem %d = %v, want %d", n, i, v, 2*nodes)
			}
		}
	}
}

// TestReduceTreeIsSpanning verifies the reduce routing forms a spanning tree
// rooted at the schedule root: every node's successor chain reaches the root
// without cycles, for every color and several roots.
func TestReduceTreeIsSpanning(t *testing.T) {
	m := newMachine(t, 4, 3, 2)
	for _, rootID := range []int{0, 7, 23} {
		root := m.Geom.CoordOf(rootID)
		for _, color := range geometry.Colors(3) {
			cr := &colorReduce{a: &Allreduce{M: m, Root: root}, color: color}
			for _, d := range color.Order {
				if m.Geom.Size(d) > 1 {
					cr.dims = append(cr.dims, d)
				}
			}
			for n := 0; n < m.Geom.Nodes(); n++ {
				v := m.Geom.CoordOf(n)
				steps := 0
				for v != root {
					next, _, ok := cr.succ(v)
					if !ok {
						t.Fatalf("root %v color %v: node %v has no successor but is not root", root, color, v)
					}
					v = next
					steps++
					if steps > m.Geom.Nodes() {
						t.Fatalf("root %v color %v: cycle from node %d", root, color, n)
					}
				}
			}
		}
	}
}
