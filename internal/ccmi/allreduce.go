package ccmi

import (
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/trace"
)

// Allreduce executes the pipelined torus allreduce network schedule of
// paper §V-C. The payload is split across Colors (three on a torus: the
// reduce phase travels on the reversed-direction links of each color's
// broadcast tree, so opposite-sign colors cannot run concurrently).
//
// Per color, each node's locally reduced contribution flows up a chain
// schedule: last-dimension lines chain into the root plane, middle-dimension
// lines into the root axis, and the first-dimension line into the root.
// Every hop combines at the node's protocol core (ProtoPipes) and charges
// DMA and links. As each chunk completes at the root it is broadcast back
// down the color's forward rectangle tree, overlapping with the reduction of
// later chunks — the paper's reduce/broadcast pipelining.
//
// Node contributions become available incrementally: rank protocols feed
// Contrib[node][color] with cumulative ready bytes within that color's
// partition, and ContribBufs[node] hold the locally reduced data in
// functional runs. Reduced results are copied into ResultBufs and published
// via Deliveries.
type Allreduce struct {
	M      *machine.Machine
	Root   geometry.Coord
	Bytes  int
	Colors []geometry.Color
	Lane0  int // reduce uses lanes Lane0+i, broadcast-down lanes Lane0+len(Colors)+i

	Contrib     [][]*sim.Counter // [node][color]: partition bytes locally reduced
	ContribBufs []data.Buf       // per node: locally-reduced vectors (may be phantom)
	ResultBufs  []data.Buf       // per node: where the reduced result lands
	Deliveries  []*Delivery      // per node: result arrival logs
	ProtoPipes  []*sim.Pipe      // per node: the protocol core performing hop combines

	// ReduceOnly skips the broadcast-down phase: reduced chunks are
	// delivered to the root node only (MPI_Reduce).
	ReduceOnly bool
}

// Run starts the network schedule; it returns immediately and progresses
// event-driven as contributions become ready.
func (a *Allreduce) Run() {
	offs, lens := geometry.SplitAligned(a.Bytes, len(a.Colors), data.Float64Len)
	for i, color := range a.Colors {
		chunks := a.M.Cfg.Params.Chunks(lens[i])
		ar := &colorReduce{
			a:        a,
			color:    color,
			colorIdx: i,
			lane:     a.Lane0 + i,
		}
		ar.init(chunks, offs[i])
		// The down phase reuses the rectangle broadcast machinery, gated
		// chunk by chunk on reduction completion at the root.
		ar.down = newColorRun(a.M, a.Root, color, a.Lane0+len(a.Colors)+i, chunks, offs[i])
		ar.down.deliver = func(node int, span hw.Span, t sim.Time) {
			rootID := a.M.Geom.NodeID(a.Root)
			if node != rootID && a.ResultBufs[node].Len() > 0 && span.Len > 0 {
				dst, src := a.ResultBufs[node], a.ResultBufs[rootID]
				a.M.K.At(t, func() {
					data.Copy(dst.Slice(span.Off, span.Len), src.Slice(span.Off, span.Len))
				})
			}
			a.Deliveries[node].Deliver(a.M.K, t, span)
		}
		ar.start()
	}
}

// colorReduce drives one color's reduce chains.
type colorReduce struct {
	a        *Allreduce
	color    geometry.Color
	colorIdx int
	lane     int
	dims     []geometry.Dim
	spans    []hw.Span
	baseOff  int

	// state[node][chunk] counts combined input streams; a chunk forwards
	// when all streams have arrived and its combines finished.
	state [][]chunkState
	need  []int // input streams per node (own contribution + chains ending here)

	down *colorRun
}

type chunkState struct {
	arrived int
	readyAt sim.Time // latest combine completion among arrived streams
}

func (cr *colorReduce) init(chunks []hw.Span, baseOff int) {
	m := cr.a.M
	cr.baseOff = baseOff
	cr.spans = make([]hw.Span, len(chunks))
	for i, c := range chunks {
		cr.spans[i] = hw.Span{Off: baseOff + c.Off, Len: c.Len}
	}
	for _, d := range cr.color.Order {
		if m.Geom.Size(d) > 1 {
			cr.dims = append(cr.dims, d)
		}
	}
	nodes := m.Geom.Nodes()
	cr.state = make([][]chunkState, nodes)
	cr.need = make([]int, nodes)
	for n := 0; n < nodes; n++ {
		cr.state[n] = make([]chunkState, len(cr.spans))
		cr.need[n] = 1 // own contribution
	}
	// The reduce tree is the exact reverse of the broadcast tree: each
	// node's combined partial flows to its successor. Count in-edges.
	for n := 0; n < nodes; n++ {
		if succ, _, ok := cr.succ(m.Geom.CoordOf(n)); ok {
			cr.need[m.Geom.NodeID(succ)]++
		}
	}
}

// lastDiffer returns the index in dims of the last dimension in which v
// differs from the root, or -1 for the root itself. It is the dimension
// along which v received in the broadcast tree, and along which v sends in
// the reduce chains.
func (cr *colorReduce) lastDiffer(v geometry.Coord) int {
	last := -1
	for i, d := range cr.dims {
		if v.Get(d) != cr.a.Root.Get(d) {
			last = i
		}
	}
	return last
}

// succ returns the node v forwards its combined partial to, the dimension of
// the hop, and ok=false for the root (the final accumulator). Mirroring the
// broadcast tree's patch rule, root-column nodes hand their partials to
// their mirror in the predecessor plane, so the root's ingress — and hence
// its protocol core's combine load — is a single stream per color.
func (cr *colorReduce) succ(v geometry.Coord) (geometry.Coord, geometry.Dim, bool) {
	root := cr.a.Root
	if v == root || len(cr.dims) == 0 {
		return geometry.Coord{}, 0, false
	}
	m := cr.a.M
	d0 := cr.dims[0]
	if v.Get(d0) == root.Get(d0) {
		// Root-column node: one hop into the mirror plane.
		return m.Geom.Neighbor(v, d0, -cr.color.Dir), d0, true
	}
	d := cr.dims[cr.lastDiffer(v)]
	return m.Geom.Neighbor(v, d, -cr.color.Dir), d, true
}

// start subscribes to every node's contribution counter, chunk by chunk.
func (cr *colorReduce) start() {
	m := cr.a.M
	for n := 0; n < m.Geom.Nodes(); n++ {
		coord := m.Geom.CoordOf(n)
		for c, span := range cr.spans {
			// Thresholds are relative to this color's partition.
			threshold := int64(span.Off + span.Len - cr.baseOff)
			cr.a.Contrib[n][cr.colorIdx].OnGE(threshold, func() {
				// The node's own contribution for this chunk is ready;
				// functionally, fold it into the root's accumulator once.
				cr.foldContribution(n, span)
				cr.streamArrived(coord, c, m.K.Now(), 0)
			})
		}
		_ = n
	}
	if len(cr.spans) == 0 {
		return
	}
}

// foldContribution adds node n's local vector for span into the root's
// result accumulator (real data only; combining is commutative, so folding
// at contribution time is equivalent to chain order for the integer-valued
// test vectors and documented as such).
func (cr *colorReduce) foldContribution(n int, span hw.Span) {
	rootID := cr.a.M.Geom.NodeID(cr.a.Root)
	res := cr.a.ResultBufs[rootID]
	contrib := cr.a.ContribBufs[n]
	if res.Len() == 0 || contrib.Len() == 0 || span.Len == 0 {
		return
	}
	data.AddFloats(res.Slice(span.Off, span.Len), contrib.Slice(span.Off, span.Len))
}

// streamArrived records one input stream's chunk at node v. combineCost is
// the payload size to charge the protocol core (zero for the node's own
// contribution, which seeds the accumulator).
func (cr *colorReduce) streamArrived(v geometry.Coord, chunk int, at sim.Time, combineCost int) {
	m := cr.a.M
	n := m.Geom.NodeID(v)
	st := &cr.state[n][chunk]
	ready := at
	if combineCost > 0 {
		ready = cr.a.ProtoPipes[n].ReserveFrom(at, combineCost)
	}
	if ready > st.readyAt {
		st.readyAt = ready
	}
	st.arrived++
	if st.arrived > cr.need[n] {
		panic("ccmi: allreduce stream overflow")
	}
	if st.arrived == cr.need[n] {
		cr.chunkReady(v, chunk, st.readyAt)
	}
}

// chunkReady fires when node v has fully combined chunk: it forwards the
// partial down its chain, or — at the root — releases the chunk for the
// broadcast-down phase.
func (cr *colorReduce) chunkReady(v geometry.Coord, chunk int, at sim.Time) {
	m := cr.a.M
	next, d, ok := cr.succ(v)
	if !ok { // root: reduction of this chunk complete
		m.Trace.Addf(at, trace.Proto, m.Geom.NodeID(v),
			"allreduce %v chunk %d reduced at root", cr.color, chunk)
		if cr.a.ReduceOnly {
			rootID := m.Geom.NodeID(cr.a.Root)
			cr.a.Deliveries[rootID].Deliver(m.K, at, cr.spans[chunk])
			return
		}
		m.K.At(at, func() {
			// Chunks complete in order along each chain, but guard anyway:
			// allow everything up to this chunk.
			cr.down.allowChunks(chunk + 1)
		})
		return
	}
	span := cr.spans[chunk]
	wire := m.Torus.WireBytes(span.Len)
	m.K.At(at, func() {
		injDone := m.NodeAt(v).DMA.Inject(m.K.Now(), wire)
		// The partial travels one hop toward the root on the
		// reversed-direction link.
		to, arriveAt := m.Torus.NeighborSend(injDone, v, d, -cr.color.Dir, cr.lane, span.Len)
		if to != next {
			panic("ccmi: reduce hop mismatch")
		}
		m.K.At(arriveAt, func() {
			rx := m.NodeAt(to).DMA.Receive(m.K.Now(), wire)
			m.K.At(rx, func() {
				cr.streamArrived(to, chunk, m.K.Now(), span.Len)
			})
		})
	})
}

func directedDistance(t geometry.Torus, from, to geometry.Coord, d geometry.Dim, dir geometry.Dir) int {
	n := t.Size(d)
	if dir == geometry.Plus {
		return ((to.Get(d)-from.Get(d))%n + n) % n
	}
	return ((from.Get(d)-to.Get(d))%n + n) % n
}
