// Package machine assembles a complete simulated BG/P partition from the
// hardware substrates: the nodes with their memory systems and DMA engines,
// the 3D torus, and the collective tree network, all driven by one
// simulation kernel.
package machine

import (
	"fmt"

	"bgpcoll/internal/dma"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/torus"
	"bgpcoll/internal/trace"
	"bgpcoll/internal/tree"
)

// Node bundles one compute node's devices.
type Node struct {
	HW  *hw.Node
	DMA *dma.Engine
}

// Machine is one simulated partition.
type Machine struct {
	K     *sim.Kernel
	Cfg   hw.Config
	Geom  geometry.Torus
	Nodes []*Node
	Torus *torus.Network
	Tree  *tree.Network

	// Trace, when non-nil, records schedule and protocol events.
	Trace *trace.Log
}

// New validates cfg and builds the partition.
func New(cfg hw.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	k := sim.New()
	m := &Machine{
		K:     k,
		Cfg:   cfg,
		Geom:  cfg.Torus,
		Torus: torus.New(k, cfg.Torus, cfg.Params),
		Tree:  tree.New(k, cfg.Torus, cfg.Params),
	}
	m.Nodes = make([]*Node, cfg.Nodes())
	for id := range m.Nodes {
		n := hw.NewNode(k, id, cfg.Torus.CoordOf(id), cfg.Params)
		m.Nodes[id] = &Node{HW: n, DMA: dma.New(k, n)}
	}
	return m, nil
}

// Node returns the node with the given id.
func (m *Machine) Node(id int) *Node { return m.Nodes[id] }

// NodeAt returns the node at coordinate c.
func (m *Machine) NodeAt(c geometry.Coord) *Node { return m.Nodes[m.Geom.NodeID(c)] }

// Colors returns the color set the torus collectives use: six edge-disjoint
// routes on a torus partition.
func (m *Machine) Colors() []geometry.Color { return geometry.TorusColors() }
