// Package machine assembles a complete simulated BG/P partition from the
// hardware substrates: the nodes with their memory systems and DMA engines,
// the 3D torus, and the collective tree network, all driven by one
// simulation kernel.
package machine

import (
	"fmt"

	"bgpcoll/internal/dma"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/torus"
	"bgpcoll/internal/trace"
	"bgpcoll/internal/tree"
)

// Node bundles one compute node's devices.
type Node struct {
	HW  *hw.Node
	DMA *dma.Engine
}

// Machine is one simulated partition.
type Machine struct {
	K     *sim.Kernel
	Cfg   hw.Config
	Geom  geometry.Torus
	Nodes []*Node
	Torus *torus.Network
	Tree  *tree.Network

	// Trace, when non-nil, records schedule and protocol events. Traces are
	// a single-shard facility: a sharded machine must run untraced.
	Trace *trace.Log

	// Sharded-partition state (nil/empty on a single-shard machine): the
	// peer shards, the hub shard carrying the collective network, and the
	// node-to-peer-shard map (contiguous blocks).
	shards    []*sim.Shard
	hub       *sim.Shard
	nodeShard []int
}

// New validates cfg and builds the partition. With cfg.Shards > 1 the nodes
// are split into that many contiguous blocks, each simulated by its own
// kernel shard; the collective network lives on a hub shard and the kernel
// lookahead — the parallel epoch width — is the smallest cross-shard
// latency, min(BarrierLatency, tree traversal latency).
func New(cfg hw.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	k := sim.New()
	m := &Machine{K: k, Cfg: cfg, Geom: cfg.Torus}
	treeShard := k.RootShard()
	if cfg.Shards > 1 {
		m.shards = make([]*sim.Shard, cfg.Shards)
		m.shards[0] = k.RootShard()
		for i := 1; i < cfg.Shards; i++ {
			m.shards[i] = k.NewShard()
		}
		m.hub = k.NewHubShard()
		treeShard = m.hub
		nodes := cfg.Nodes()
		m.nodeShard = make([]int, nodes)
		for id := range m.nodeShard {
			m.nodeShard[id] = id * cfg.Shards / nodes
		}
	}
	m.Torus = torus.New(k, cfg.Torus, cfg.Params)
	m.Tree = tree.New(treeShard, cfg.Torus, cfg.Params)
	if cfg.Shards > 1 {
		la := cfg.Params.BarrierLatency
		if tl := m.Tree.Latency(); tl < la {
			la = tl
		}
		k.SetLookahead(la)
	}
	m.Nodes = make([]*Node, cfg.Nodes())
	for id := range m.Nodes {
		sh := m.ShardOf(id)
		n := hw.NewNodeOn(sh, id, cfg.Torus.CoordOf(id), cfg.Params)
		m.Nodes[id] = &Node{HW: n, DMA: dma.NewOn(sh, n)}
	}
	return m, nil
}

// Sharded reports whether the partition runs on a sharded kernel.
func (m *Machine) Sharded() bool { return m.hub != nil }

// ShardOf returns the shard simulating the given node: the kernel's root
// shard on a single-shard machine.
func (m *Machine) ShardOf(node int) *sim.Shard {
	if m.nodeShard == nil {
		return m.K.RootShard()
	}
	return m.shards[m.nodeShard[node]]
}

// HubShard returns the hub shard carrying the shared networks of a sharded
// machine, nil on a single-shard one.
func (m *Machine) HubShard() *sim.Shard { return m.hub }

// Node returns the node with the given id.
func (m *Machine) Node(id int) *Node { return m.Nodes[id] }

// NodeAt returns the node at coordinate c.
func (m *Machine) NodeAt(c geometry.Coord) *Node { return m.Nodes[m.Geom.NodeID(c)] }

// Colors returns the color set the torus collectives use: six edge-disjoint
// routes on a torus partition.
func (m *Machine) Colors() []geometry.Color { return geometry.TorusColors() }
