// Package machine assembles a complete simulated BG/P partition from the
// hardware substrates: the nodes with their memory systems and DMA engines,
// the 3D torus, and the collective tree network, all driven by one
// simulation kernel.
package machine

import (
	"fmt"

	"bgpcoll/internal/dma"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/torus"
	"bgpcoll/internal/trace"
	"bgpcoll/internal/tree"
)

// Node bundles one compute node's devices. The pointers aim into the
// machine's dense slabs (hwNodes, engines below); the wrapper itself is two
// words, kept so the ~30 call sites reading m.Nodes[id].HW / .DMA survive
// the flyweight layout unchanged.
type Node struct {
	HW  *hw.Node
	DMA *dma.Engine
}

// Machine is one simulated partition.
type Machine struct {
	K     *sim.Kernel
	Cfg   hw.Config
	Geom  geometry.Torus
	Nodes []Node
	Torus *torus.Network
	Tree  *tree.Network

	// Trace, when non-nil, records schedule and protocol events. Traces are
	// a single-shard facility: a sharded machine must run untraced.
	Trace *trace.Log

	// prm is the partition's one shared, immutable parameter set; every
	// hw.Node points at it instead of embedding a ~280-byte copy.
	prm hw.Params

	// Per-node device slabs. Fixed length after build (never appended to),
	// so interior pointers — Node wrappers, embedded pipes registered with
	// the kernel — stay valid for the machine's lifetime. Reconfigure reuses
	// their capacity when the new geometry fits.
	hwNodes []hw.Node
	engines []dma.Engine

	// Sharded-partition state (nil/empty on a single-shard machine): the
	// peer shards, the hub shard carrying the collective network, and the
	// node-to-peer-shard map (contiguous blocks).
	shards    []*sim.Shard
	hub       *sim.Shard
	nodeShard []int
}

// New validates cfg and builds the partition. With cfg.Shards > 1 the nodes
// are split into that many contiguous blocks, each simulated by its own
// kernel shard; the collective network lives on a hub shard and the kernel
// lookahead — the parallel epoch width — is the smallest cross-shard
// latency, min(BarrierLatency, tree traversal latency).
func New(cfg hw.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	k := sim.New()
	m := &Machine{K: k, Cfg: cfg, Geom: cfg.Torus}
	treeShard := k.RootShard()
	if cfg.Shards > 1 {
		m.shards = make([]*sim.Shard, cfg.Shards)
		m.shards[0] = k.RootShard()
		for i := 1; i < cfg.Shards; i++ {
			m.shards[i] = k.NewShard()
		}
		m.hub = k.NewHubShard()
		treeShard = m.hub
		nodes := cfg.Nodes()
		m.nodeShard = make([]int, nodes)
		for id := range m.nodeShard {
			m.nodeShard[id] = id * cfg.Shards / nodes
		}
	}
	m.Torus = torus.New(k, cfg.Torus, cfg.Params)
	m.Tree = tree.New(treeShard, cfg.Torus, cfg.Params)
	if cfg.Shards > 1 {
		la := cfg.Params.BarrierLatency
		if tl := m.Tree.Latency(); tl < la {
			la = tl
		}
		k.SetLookahead(la)
	}
	m.prm = cfg.Params
	m.buildNodes()
	return m, nil
}

// buildNodes (re)fills the per-node device slabs for the current Cfg and
// registers every device pipe with the kernel. The fill fans out in
// contiguous blocks (build.go): element id's content depends only on
// (id, Cfg), so the result is bit-identical to a serial fill. Pipe adoption
// appends to shared kernel state, so it runs serially in id order after the
// join.
func (m *Machine) buildNodes() {
	n := m.Cfg.Nodes()
	m.hwNodes = growSlab(m.hwNodes, n)
	m.engines = growSlab(m.engines, n)
	m.Nodes = growSlab(m.Nodes, n)
	ParallelBlocks(n, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			m.initNode(id)
		}
	})
	for id := 0; id < n; id++ {
		m.K.AdoptPipe(m.Nodes[id].HW.Bus)
		m.K.AdoptPipe(m.Nodes[id].DMA.Pipe())
	}
}

// initNode fills node id's slab slots in place. Hot: one call per node on
// the construction path, allocation-free (shared params, embedded pipes).
//
//bgplint:hot
func (m *Machine) initNode(id int) {
	sh := m.ShardOf(id)
	hw.InitNode(&m.hwNodes[id], sh, id, m.Geom.CoordOf(id), &m.prm)
	dma.Init(&m.engines[id], sh, &m.hwNodes[id])
	m.Nodes[id] = Node{HW: &m.hwNodes[id], DMA: &m.engines[id]}
}

// growSlab returns a slab of length n, reusing s's backing array when it
// fits (Reconfigure) and clearing any shrunk-away tail so stale elements
// cannot pin memory.
func growSlab[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	if len(s) > n {
		clear(s[n:])
	}
	return s[:n]
}

// Sharded reports whether the partition runs on a sharded kernel.
func (m *Machine) Sharded() bool { return m.hub != nil }

// ShardOf returns the shard simulating the given node: the kernel's root
// shard on a single-shard machine.
func (m *Machine) ShardOf(node int) *sim.Shard {
	if m.nodeShard == nil {
		return m.K.RootShard()
	}
	return m.shards[m.nodeShard[node]]
}

// HubShard returns the hub shard carrying the shared networks of a sharded
// machine, nil on a single-shard one.
func (m *Machine) HubShard() *sim.Shard { return m.hub }

// Node returns the node with the given id.
func (m *Machine) Node(id int) *Node { return &m.Nodes[id] }

// NodeAt returns the node at coordinate c.
func (m *Machine) NodeAt(c geometry.Coord) *Node { return &m.Nodes[m.Geom.NodeID(c)] }

// Colors returns the color set the torus collectives use: six edge-disjoint
// routes on a torus partition.
func (m *Machine) Colors() []geometry.Color { return geometry.TorusColors() }
