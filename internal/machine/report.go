package machine

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"bgpcoll/internal/sim"
)

// Report summarizes how a run used the partition's hardware resources.
// Utilizations are averages over the given makespan; per-node figures
// average across nodes.
type Report struct {
	Makespan sim.Time

	TorusLinks    int
	TorusBytes    int64
	TorusLinkUtil float64 // mean busy fraction per active link
	DMABytes      int64
	DMAUtil       float64 // mean busy fraction per engine
	DMAPeakUtil   float64 // busiest engine
	TreeBytes     int64
	TreeUtil      float64
	BusBytes      int64
	BusUtil       float64
}

// Report gathers resource statistics over the elapsed makespan.
func (m *Machine) Report(makespan sim.Time) Report {
	r := Report{Makespan: makespan}
	if makespan <= 0 {
		return r
	}
	span := float64(makespan)

	links, lb, lbusy := m.Torus.Stats()
	r.TorusLinks = links
	r.TorusBytes = lb
	if links > 0 {
		r.TorusLinkUtil = float64(lbusy) / span / float64(links)
	}

	var dmaBusy sim.Time
	for _, n := range m.Nodes {
		b, busy, _ := n.DMA.Stats()
		r.DMABytes += b
		dmaBusy += busy
		if u := float64(busy) / span; u > r.DMAPeakUtil {
			r.DMAPeakUtil = u
		}
		bb, bbusy, _ := n.HW.Bus.Stats()
		r.BusBytes += bb
		r.BusUtil += float64(bbusy) / span
	}
	n := float64(len(m.Nodes))
	r.DMAUtil = float64(dmaBusy) / span / n
	r.BusUtil /= n

	tb, tbusy, _ := m.Tree.Stats()
	r.TreeBytes = tb
	r.TreeUtil = float64(tbusy) / span
	return r
}

// String renders the report as an aligned table.
func (r Report) String() string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "resource\tbytes moved\tutilization\n")
	fmt.Fprintf(tw, "torus links (%d active)\t%s\t%.0f%% mean\n",
		r.TorusLinks, fmtBytes(r.TorusBytes), 100*r.TorusLinkUtil)
	fmt.Fprintf(tw, "DMA engines\t%s\t%.0f%% mean, %.0f%% peak\n",
		fmtBytes(r.DMABytes), 100*r.DMAUtil, 100*r.DMAPeakUtil)
	fmt.Fprintf(tw, "collective tree\t%s\t%.0f%%\n", fmtBytes(r.TreeBytes), 100*r.TreeUtil)
	fmt.Fprintf(tw, "memory buses\t%s\t%.0f%% mean\n", fmtBytes(r.BusBytes), 100*r.BusUtil)
	tw.Flush()
	return sb.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
