package machine

import (
	"fmt"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/torus"
	"bgpcoll/internal/tree"
)

// Reset returns a partition whose last run completed cleanly to its
// post-New state without rebuilding anything: the kernel rewinds its clock,
// queues, arena, and every pipe (torus links, tree channel, node buses, DMA
// engines all reserve through kernel-registered pipes), and the tree network
// restarts its operation numbering so a reused partition names events
// exactly like a fresh one. The node/network object graph — 8192 hw.Nodes,
// DMA engines, lazily created torus links — is kept as is; none of it holds
// per-run state outside the kernel.
//
// Reset panics (from sim.Kernel.Reset) if the previous run failed: a
// deadlocked kernel still has parked processes that cannot be reclaimed.
// Callers pool only cleanly finished machines and drop the rest.
//
// This file is a sanctioned Reset site for the bgplint worldreuse rule:
// reset must stay a single choke point per layer so handles cannot silently
// survive a lease boundary.
func (m *Machine) Reset() {
	m.K.Reset()
	m.Tree.Reset()
	m.Trace = nil
}

// Reconfigure rebuilds the partition's device graph for a new configuration
// on the same kernel: the capacity-aware half of world reuse. The kernel
// keeps its accumulated allocations (arena slabs, queue capacity, parked
// pool workers) and the node slabs keep their backing arrays when the new
// geometry fits, so growing a pooled world costs a re-init, not a rebuild.
// The old generation's pipes are released and the torus/tree networks are
// built fresh — their identity is per-configuration.
//
// Only single-shard partitions can be reconfigured: the kernel's shard
// partition is fixed at New, so a sharded machine cannot change node-to-
// shard assignment. Reconfigure panics (from sim.Kernel.Reset) if the last
// run failed, exactly like Reset.
//
// A reconfigured machine is bit-identical, in every kernel-observable way,
// to a freshly built one: the bench equivalence tests pin grown-vs-fresh
// virtual times exactly.
func (m *Machine) Reconfigure(cfg hw.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("machine: %w", err)
	}
	if m.Sharded() || cfg.Shards > 1 {
		return fmt.Errorf("machine: cannot reconfigure a sharded partition (shard count is fixed at New)")
	}
	m.K.Reset()
	m.K.ReleasePipes()
	m.Cfg, m.Geom, m.prm = cfg, cfg.Torus, cfg.Params
	m.Torus = torus.New(m.K, cfg.Torus, cfg.Params)
	m.Tree = tree.New(m.K.RootShard(), cfg.Torus, cfg.Params)
	m.buildNodes()
	m.Trace = nil
	return nil
}
