package machine

// Reset returns a partition whose last run completed cleanly to its
// post-New state without rebuilding anything: the kernel rewinds its clock,
// queues, arena, and every pipe (torus links, tree channel, node buses, DMA
// engines all reserve through kernel-registered pipes), and the tree network
// restarts its operation numbering so a reused partition names events
// exactly like a fresh one. The node/network object graph — 8192 hw.Nodes,
// DMA engines, lazily created torus links — is kept as is; none of it holds
// per-run state outside the kernel.
//
// Reset panics (from sim.Kernel.Reset) if the previous run failed: a
// deadlocked kernel still has parked processes that cannot be reclaimed.
// Callers pool only cleanly finished machines and drop the rest.
//
// This file is a sanctioned Reset site for the bgplint worldreuse rule:
// reset must stay a single choke point per layer so handles cannot silently
// survive a lease boundary.
func (m *Machine) Reset() {
	m.K.Reset()
	m.Tree.Reset()
	m.Trace = nil
}
