package machine

import (
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
)

func TestNewBuildsAllDevices(t *testing.T) {
	cfg := hw.DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != cfg.Nodes() {
		t.Fatalf("nodes = %d, want %d", len(m.Nodes), cfg.Nodes())
	}
	for id, n := range m.Nodes {
		if n.HW == nil || n.DMA == nil {
			t.Fatalf("node %d missing devices", id)
		}
		if n.HW.ID != id {
			t.Fatalf("node %d has id %d", id, n.HW.ID)
		}
		if m.Geom.NodeID(n.HW.Coord) != id {
			t.Fatalf("node %d coordinate mismatch", id)
		}
	}
	if m.Torus == nil || m.Tree == nil || m.K == nil {
		t.Fatal("networks or kernel missing")
	}
	if m.Tree.Nodes() != cfg.Nodes() {
		t.Fatalf("tree spans %d nodes", m.Tree.Nodes())
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := hw.DefaultConfig()
	cfg.Mode = hw.Mode(7)
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: 0, DY: 1, DZ: 1}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid torus accepted")
	}
}

func TestNodeAccessors(t *testing.T) {
	m, err := New(hw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := geometry.XYZ(2, 3, 1)
	if m.NodeAt(c) != m.Node(m.Geom.NodeID(c)) {
		t.Fatal("NodeAt and Node disagree")
	}
	if len(m.Colors()) != 6 {
		t.Fatalf("colors = %d, want 6", len(m.Colors()))
	}
}
