// Parallel world construction. A partition's per-node state lives in dense
// slabs (machine.go) where element id's content is a pure function of
// (id, shared config): no element reads another, and no construction-order
// decision leaks into any element. Filling the slabs in contiguous blocks on
// a bounded worker pool therefore yields a world bit-identical to the serial
// fill — the merge is the slab itself, and the only serial steps left are
// the ones that append to shared kernel state (pipe adoption), which run in
// fixed id order after the fan-out. The equivalence tests in
// internal/bench pin parallel-vs-serial construction bit for bit.
//
// This file is a bgplint-sanctioned goroutine launch site (rawgoroutine.go):
// the workers run before the kernel does, touch disjoint slab ranges, and
// are joined before New returns, so no goroutine ever runs concurrently
// with the event loop.
package machine

import (
	"runtime"
	"sync"
)

// BuildWorkers bounds the construction worker pool: 0 (the default) means
// GOMAXPROCS. It is a pure wall-clock knob — the built world is bit-identical
// for every value — exposed for cmd/bgpbench's construction-scaling runs.
var BuildWorkers int

// buildBlockMin is the smallest per-worker block worth a goroutine; below
// workers*buildBlockMin elements the fill runs serially on the caller.
const buildBlockMin = 2048

// ParallelBlocks partitions 0..n-1 into one contiguous block per worker and
// runs fill(lo, hi) for each, joining before it returns. fill must write
// only state owned by elements lo..hi-1. Small n runs serially.
func ParallelBlocks(n int, fill func(lo, hi int)) {
	workers := BuildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n/buildBlockMin {
		workers = n / buildBlockMin
	}
	if workers <= 1 {
		fill(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func() {
			defer wg.Done()
			fill(lo, hi)
		}()
	}
	wg.Wait()
}
