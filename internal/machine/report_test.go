package machine

import (
	"strings"
	"testing"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

func TestReportZeroMakespan(t *testing.T) {
	m, err := New(hw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := m.Report(0)
	if r.DMAUtil != 0 || r.TorusLinks != 0 {
		t.Fatal("zero-makespan report not empty")
	}
}

func TestReportAccounting(t *testing.T) {
	m, err := New(hw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drive some traffic directly.
	m.K.At(0, func() {
		m.Node(0).DMA.Inject(0, 1<<20)
		m.Node(1).DMA.Receive(0, 1<<20)
		m.Node(0).HW.Bus.Reserve(1 << 20)
	})
	if err := m.K.Run(); err != nil {
		t.Fatal(err)
	}
	r := m.Report(sim.Millisecond)
	if r.DMABytes != 2<<20 {
		t.Fatalf("DMA bytes = %d", r.DMABytes)
	}
	if r.BusBytes != 1<<20 {
		t.Fatalf("bus bytes = %d", r.BusBytes)
	}
	if r.DMAPeakUtil < r.DMAUtil {
		t.Fatal("peak utilization below mean")
	}
	out := r.String()
	for _, frag := range []string{"DMA engines", "torus links", "collective tree", "memory buses"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2 << 10, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.n); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
