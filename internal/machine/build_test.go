package machine

import (
	"testing"

	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
)

// TestNewErrorPaths walks every Validate rejection through New: each invalid
// configuration must come back as an error, not a partially built partition.
func TestNewErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*hw.Config)
	}{
		{"invalid mode", func(c *hw.Config) { c.Mode = hw.Mode(7) }},
		{"zero torus dim", func(c *hw.Config) { c.Torus = geometry.Torus{DX: 0, DY: 1, DZ: 1} }},
		{"too few TLB slots", func(c *hw.Config) { c.Params.TLBSlots = 1 }},
		{"negative shards", func(c *hw.Config) { c.Shards = -1 }},
		{"sharded functional buffers", func(c *hw.Config) { c.Shards = 2 }},
		{"more shards than nodes", func(c *hw.Config) { c.Shards = 64; c.Functional = false }},
	}
	for _, tc := range cases {
		cfg := hw.DefaultConfig()
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
}

// TestParallelBlocksCovers checks the fan-out partition itself: every index
// is filled exactly once for worker counts that divide n unevenly, and small
// slabs fall back to the serial path.
func TestParallelBlocksCovers(t *testing.T) {
	defer func(old int) { BuildWorkers = old }(BuildWorkers)
	for _, workers := range []int{1, 3, 8} {
		BuildWorkers = workers
		for _, n := range []int{10, buildBlockMin - 1, 3*buildBlockMin + 17} {
			marks := make([]int, n)
			ParallelBlocks(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					marks[i]++
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d filled %d times", workers, n, i, m)
				}
			}
		}
	}
}

// TestParallelConstructionStructure compares a serially built partition
// against one built with a fanned-out worker pool, element by element: same
// IDs, coordinates, device identities, and shared parameter block. The
// kernel-observable half of the equivalence (bit-identical virtual times) is
// pinned in internal/bench.
func TestParallelConstructionStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-node partitions in -short mode")
	}
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: 16, DY: 16, DZ: 16} // 4096 nodes: clears buildBlockMin
	cfg.Functional = false
	defer func(old int) { BuildWorkers = old }(BuildWorkers)

	BuildWorkers = 1
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	BuildWorkers = 8
	par, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Nodes) != len(par.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(serial.Nodes), len(par.Nodes))
	}
	for id := range par.Nodes {
		s, p := serial.Nodes[id], par.Nodes[id]
		if s.HW.ID != p.HW.ID || s.HW.Coord != p.HW.Coord {
			t.Fatalf("node %d identity differs: %v vs %v", id, s.HW.Coord, p.HW.Coord)
		}
		if s.HW.Bus.Name() != p.HW.Bus.Name() || s.DMA.Pipe().Name() != p.DMA.Pipe().Name() {
			t.Fatalf("node %d device names differ", id)
		}
		if p.HW.P != par.Nodes[0].HW.P {
			t.Fatalf("node %d does not share the partition's parameter block", id)
		}
	}
}

// TestReconfigureErrorPaths: Reconfigure must reject invalid targets and any
// involvement of sharded partitions, and a rejected call must leave the
// machine untouched and still reconfigurable.
func TestReconfigureErrorPaths(t *testing.T) {
	m, err := New(hw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	bad := hw.DefaultConfig()
	bad.Mode = hw.Mode(7)
	if err := m.Reconfigure(bad); err == nil {
		t.Fatal("invalid target config accepted")
	}

	sharded := hw.DefaultConfig()
	sharded.Shards = 2
	sharded.Functional = false
	if err := m.Reconfigure(sharded); err == nil {
		t.Fatal("sharded target accepted on a single-shard machine")
	}

	// A rejected Reconfigure is a no-op: the machine still reconfigures to a
	// valid target afterwards.
	next := hw.DefaultConfig()
	next.Torus = geometry.Torus{DX: 2, DY: 2, DZ: 2}
	next.Functional = false
	if err := m.Reconfigure(next); err != nil {
		t.Fatalf("valid Reconfigure after rejected ones: %v", err)
	}
	if len(m.Nodes) != next.Nodes() {
		t.Fatalf("reconfigured to %d nodes, want %d", len(m.Nodes), next.Nodes())
	}

	sm, err := New(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Reconfigure(hw.DefaultConfig()); err == nil {
		t.Fatal("Reconfigure accepted on a sharded machine")
	}
}
