package mpi

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/sim"
)

// Point-to-point messaging over the torus DMA, the substrate role DCMF plays
// on the real machine. Two protocols, selected by Tunables.EagerLimit:
//
//   - Eager: the payload is injected immediately and lands in the receiver's
//     memory FIFO; the receiving core copies it into the application buffer
//     when the receive is matched.
//   - Rendezvous: a request-to-send control message travels first; once the
//     receive is posted, the payload is moved by DMA direct put straight
//     into the application buffer, with no core copy.
//
// Intra-node messages skip the torus and are copied by the receiving core
// through shared memory.

const ctrlBytes = 32 // control packet payload (RTS/CTS)

// ptpLane is the torus link lane used by point-to-point payload traffic
// (distinct from the collective color lanes 0..11).
const ptpLane = 12

// ctrlLane carries RTS/CTS control packets. On the real machine control
// packets interleave with bulk data at packet granularity (the torus
// multiplexes virtual channels); a separate lane approximates that a 32-byte
// control packet never waits behind a megabyte transfer.
const ctrlLane = 13

type matchKey struct {
	src, tag int
}

type mailbox struct {
	arrived map[matchKey][]*arrival
	posted  map[matchKey][]*recvReq
}

func newMailbox() *mailbox {
	return &mailbox{
		arrived: make(map[matchKey][]*arrival),
		posted:  make(map[matchKey][]*recvReq),
	}
}

type arrival struct {
	buf         data.Buf // sender-side payload view
	availableAt sim.Time
	rdv         *rendezvous // non-nil: this is a rendezvous RTS
	local       bool        // sender is on the same node
}

type recvReq struct {
	ev  *sim.Event
	arr *arrival
}

type rendezvous struct {
	src     *Rank
	cts     *sim.Event // receiver posted; carries dst buffer
	putDone *sim.Event
	dstBuf  data.Buf
}

// box returns the rank's mailbox, materializing it on first touch: ranks
// that never exchange point-to-point messages (most of a rack-scale
// collective-only job) never pay for the match maps.
func (r *Rank) box() *mailbox {
	if r.inbox == nil {
		r.inbox = newMailbox()
	}
	return r.inbox
}

// deliver hands an arrival to the destination rank's mailbox, matching a
// posted receive if one exists.
func (r *Rank) deliver(src, tag int, arr *arrival) {
	key := matchKey{src: src, tag: tag}
	box := r.box()
	if reqs := box.posted[key]; len(reqs) > 0 {
		req := reqs[0]
		box.posted[key] = reqs[1:]
		req.arr = arr
		req.ev.Fire()
		return
	}
	box.arrived[key] = append(box.arrived[key], arr)
}

// takeArrival removes a matching arrival or registers a posted receive.
func (r *Rank) takeArrival(src, tag int) *arrival {
	key := matchKey{src: src, tag: tag}
	box := r.box()
	if arrs := box.arrived[key]; len(arrs) > 0 {
		arr := arrs[0]
		box.arrived[key] = arrs[1:]
		return arr
	}
	req := &recvReq{ev: r.w.M.K.NewEvent(fmt.Sprintf("recv.%d.%d.%d", r.id, src, tag))}
	box.posted[key] = append(box.posted[key], req)
	r.proc.Wait(req.ev)
	return req.arr
}

// Send transmits buf to global rank dst with the given tag. Eager sends
// return once the payload is injected; rendezvous sends return when the
// direct put has completed.
func (r *Rank) Send(dst int, buf data.Buf, tag int) {
	if dst == r.id {
		panic("mpi: send to self")
	}
	to := &r.w.ranks[dst]
	k := r.w.M.K
	n := buf.Len()

	if to.nodeID == r.nodeID {
		// Intra-node: publish through shared memory; the receiver's core
		// performs the copy.
		r.node.HW.Poll(r.proc)
		to.deliver(r.id, tag, &arrival{buf: buf, availableAt: k.Now(), local: true})
		return
	}

	if n <= r.w.Tunables.EagerLimit {
		wire := r.w.M.Torus.WireBytes(n)
		injDone := r.node.DMA.Inject(k.Now(), wire)
		netAt := r.w.M.Torus.Unicast(injDone, r.Coord(), to.Coord(), ptpLane, n)
		// The destination engine is charged at arrival time so its
		// reservations stay in virtual-time order.
		k.At(netAt, func() {
			rxDone := to.node.DMA.Receive(k.Now(), wire)
			arr := &arrival{buf: buf, availableAt: rxDone}
			k.At(rxDone, func() { to.deliver(r.id, tag, arr) })
		})
		r.proc.SleepUntil(injDone)
		return
	}

	// Rendezvous: RTS control, wait for CTS, direct put into the posted
	// application buffer.
	rdv := &rendezvous{
		src:     r,
		cts:     k.NewEvent(fmt.Sprintf("cts.%d.%d", r.id, dst)),
		putDone: k.NewEvent(fmt.Sprintf("put.%d.%d", r.id, dst)),
	}
	rtsAt := r.w.M.Torus.Unicast(k.Now(), r.Coord(), to.Coord(), ctrlLane, ctrlBytes)
	k.At(rtsAt, func() {
		to.deliver(r.id, tag, &arrival{buf: buf, availableAt: rtsAt, rdv: rdv})
	})
	r.proc.Wait(rdv.cts)
	wire := r.w.M.Torus.WireBytes(n)
	injDone := r.node.DMA.Inject(k.Now(), wire)
	netAt := r.w.M.Torus.Unicast(injDone, r.Coord(), to.Coord(), ptpLane, n)
	dst2 := rdv.dstBuf
	k.At(netAt, func() {
		rxDone := to.node.DMA.Receive(k.Now(), wire)
		k.At(rxDone, func() {
			if dst2.Len() == buf.Len() {
				data.Copy(dst2, buf)
			}
			rdv.putDone.Fire()
		})
	})
	r.proc.Wait(rdv.putDone)
}

// Recv receives a message from global rank src with the given tag into buf,
// blocking until the payload is in place.
func (r *Rank) Recv(src int, buf data.Buf, tag int) {
	arr := r.takeArrival(src, tag)
	k := r.w.M.K

	if arr.rdv != nil {
		// Answer the RTS with a CTS carrying the destination buffer, then
		// wait for the direct put. No core copy: zero-copy reception.
		rdv := arr.rdv
		rdv.dstBuf = buf
		ctsAt := r.w.M.Torus.Unicast(k.Now(), r.Coord(), rdv.src.Coord(), ctrlLane, ctrlBytes)
		k.At(ctsAt, rdv.cts.Fire)
		r.proc.Wait(rdv.putDone)
		return
	}

	// Eager or intra-node: wait for the payload and copy it out with this
	// rank's core.
	r.proc.SleepUntil(arr.availableAt)
	if arr.local {
		r.node.HW.Poll(r.proc)
	}
	if buf.Len() != arr.buf.Len() {
		panic(fmt.Sprintf("mpi: recv buffer %d bytes, message %d bytes", buf.Len(), arr.buf.Len()))
	}
	cached := r.node.HW.Cached(2 * buf.Len())
	r.node.HW.Copy(r.proc, buf.Len(), cached)
	data.Copy(buf, arr.buf)
}
