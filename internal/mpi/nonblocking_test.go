package mpi

import (
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/sim"
)

func TestIsendIrecvEager(t *testing.T) {
	w := newWorld(t, smallConfig())
	const n = 512
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.NewBuf(n)
			buf.Fill(11)
			req := r.Isend(8, buf, 3)
			req.Wait()
		case 8:
			buf := r.NewBuf(n)
			req := r.Irecv(0, buf, 3)
			req.Wait()
			want := data.New(n, true)
			want.Fill(11)
			if !data.Equal(buf, want) {
				t.Error("eager isend payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvRendezvous(t *testing.T) {
	w := newWorld(t, smallConfig())
	const n = 128 << 10
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.NewBuf(n)
			buf.Fill(13)
			r.Isend(8, buf, 3).Wait()
		case 8:
			buf := r.NewBuf(n)
			r.Irecv(0, buf, 3).Wait()
			want := data.New(n, true)
			want.Fill(13)
			if !data.Equal(buf, want) {
				t.Error("rendezvous isend payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingOverlaps(t *testing.T) {
	// Two large rendezvous transfers in opposite directions must overlap:
	// Sendrecv time << 2x one-way time.
	w := newWorld(t, smallConfig())
	const n = 512 << 10
	var oneWay, exchange sim.Time
	_, err := w.Run(func(r *Rank) {
		if r.Rank() != 0 && r.Rank() != 12 {
			return
		}
		peer := 12 - r.Rank()
		// One-way first.
		start := r.Now()
		if r.Rank() == 0 {
			r.Send(peer, r.NewBuf(n), 1)
		} else {
			r.Recv(peer, r.NewBuf(n), 1)
		}
		r.Barrier2(peer) // see helper below: pairwise sync via message
		if r.Rank() == 0 {
			oneWay = r.Now() - start
		}
		// Now a simultaneous exchange.
		start = r.Now()
		r.Sendrecv(peer, r.NewBuf(n), 2, peer, r.NewBuf(n), 2)
		if r.Rank() == 0 {
			exchange = r.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if exchange <= 0 || oneWay <= 0 {
		t.Fatal("no timing recorded")
	}
	if exchange > oneWay*3/2 {
		t.Fatalf("exchange %v did not overlap (one-way %v)", exchange, oneWay)
	}
}

// Barrier2 synchronizes two ranks with a zero-byte-ish message pair, used
// only by tests (a global Barrier would need every rank's participation).
func (r *Rank) Barrier2(peer int) {
	if r.id < peer {
		r.Send(peer, data.Phantom(8), 999)
		r.Recv(peer, data.Phantom(8), 998)
	} else {
		r.Recv(peer, data.Phantom(8), 999)
		r.Send(peer, data.Phantom(8), 998)
	}
}

func TestSendrecvSelfPair(t *testing.T) {
	// A 2-cycle of Sendrecv between two ranks with rendezvous payloads: the
	// classic deadlock case blocking Send/Recv could not execute.
	w := newWorld(t, smallConfig())
	const n = 256 << 10
	_, err := w.Run(func(r *Rank) {
		if r.Rank() > 1 {
			return
		}
		peer := 1 - r.Rank()
		out := r.NewBuf(n)
		out.Fill(uint64(r.Rank()))
		in := r.NewBuf(n)
		r.Sendrecv(peer, out, 5, peer, in, 5)
		want := data.New(n, true)
		want.Fill(uint64(peer))
		if !data.Equal(in, want) {
			t.Errorf("rank %d exchange corrupted", r.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllForeignRequestPanics(t *testing.T) {
	w := newWorld(t, smallConfig())
	reqs := make(chan *Request, 1)
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			reqs <- r.Isend(4, r.NewBuf(8), 1)
		case 1:
			req := <-reqs
			r.WaitAll(req) // not ours: must panic -> simulation error
		case 4:
			r.Recv(0, r.NewBuf(8), 1)
		}
	})
	if err == nil {
		t.Fatal("foreign WaitAll not rejected")
	}
}

func TestIrecvPostedBeforeIsend(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.NewBuf(64)
			req := r.Irecv(4, buf, 9)
			req.Wait()
		case 4:
			r.Proc().Sleep(20 * sim.Microsecond)
			r.Isend(0, r.NewBuf(64), 9).Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeIsend(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 1:
			buf := r.NewBuf(1024)
			buf.Fill(3)
			r.Isend(2, buf, 0).Wait()
		case 2:
			buf := r.NewBuf(1024)
			r.Irecv(1, buf, 0).Wait()
			want := data.New(1024, true)
			want.Fill(3)
			if !data.Equal(buf, want) {
				t.Error("intra-node isend corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestDoneFlag(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			req := r.Irecv(4, r.NewBuf(64), 1)
			if req.Done() {
				t.Error("request done before any send")
			}
			req.Wait()
			if !req.Done() {
				t.Error("request not done after Wait")
			}
		case 4:
			r.Isend(0, r.NewBuf(64), 1).Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
