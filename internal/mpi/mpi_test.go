package mpi

import (
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/sim"
)

func newWorld(t *testing.T, cfg hw.Config) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallConfig() hw.Config {
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: 2, DY: 2, DZ: 1}
	return cfg
}

func TestWorldLayout(t *testing.T) {
	w := newWorld(t, smallConfig())
	if w.Size() != 16 {
		t.Fatalf("size = %d, want 16", w.Size())
	}
	r5 := w.Rank(5)
	if r5.NodeID() != 1 || r5.LocalRank() != 1 {
		t.Fatalf("rank 5: node %d lrank %d", r5.NodeID(), r5.LocalRank())
	}
	if !w.Rank(4).IsNodeMaster() {
		t.Fatal("rank 4 should be node master")
	}
	if got := r5.RankOf(1, 1); got != 5 {
		t.Fatalf("RankOf = %d", got)
	}
}

func TestRunAllRanks(t *testing.T) {
	w := newWorld(t, smallConfig())
	ran := make([]bool, w.Size())
	if _, err := w.Run(func(r *Rank) { ran[r.Rank()] = true }); err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("rank %d did not run", i)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newWorld(t, smallConfig())
	var exitTimes []sim.Time
	_, err := w.Run(func(r *Rank) {
		r.Proc().Sleep(sim.Time(r.Rank()) * sim.Microsecond) // staggered arrival
		r.Barrier()
		exitTimes = append(exitTimes, r.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	last := sim.Time(15) * sim.Microsecond
	want := last + w.M.Cfg.Params.BarrierLatency
	for _, et := range exitTimes {
		if et != want {
			t.Fatalf("barrier exit at %v, want %v", et, want)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	w := newWorld(t, smallConfig())
	if _, err := w.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(w.ops) != 0 {
		t.Fatalf("%d op entries leaked", len(w.ops))
	}
}

func TestEagerSendRecv(t *testing.T) {
	w := newWorld(t, smallConfig())
	const n = 1024 // below eager limit
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.NewBuf(n)
			buf.Fill(7)
			r.Send(12, buf, 42) // cross-node
		case 12:
			buf := r.NewBuf(n)
			r.Recv(0, buf, 42)
			want := data.New(n, true)
			want.Fill(7)
			if !data.Equal(buf, want) {
				t.Error("eager payload corrupted")
			}
			if r.Now() == 0 {
				t.Error("eager recv consumed no time")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	w := newWorld(t, smallConfig())
	const n = 256 << 10 // above eager limit
	var sendDone, recvDone sim.Time
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.NewBuf(n)
			buf.Fill(9)
			r.Send(12, buf, 1)
			sendDone = r.Now()
		case 12:
			buf := r.NewBuf(n)
			r.Recv(0, buf, 1)
			recvDone = r.Now()
			want := data.New(n, true)
			want.Fill(9)
			if !data.Equal(buf, want) {
				t.Error("rendezvous payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rendezvous completes both sides at the put completion.
	if sendDone != recvDone {
		t.Fatalf("send done %v != recv done %v", sendDone, recvDone)
	}
	// Sanity: transfer cannot beat one link.
	minTime := sim.TransferTime(n, w.M.Cfg.Params.TorusLinkBps)
	if recvDone < minTime {
		t.Fatalf("rendezvous %v faster than link %v", recvDone, minTime)
	}
}

func TestIntraNodeSendRecv(t *testing.T) {
	w := newWorld(t, smallConfig())
	const n = 32 << 10
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 1:
			buf := r.NewBuf(n)
			buf.Fill(3)
			r.Send(2, buf, 0) // same node (node 0 holds ranks 0..3)
		case 2:
			buf := r.NewBuf(n)
			r.Recv(1, buf, 0)
			want := data.New(n, true)
			want.Fill(3)
			if !data.Equal(buf, want) {
				t.Error("intra-node payload corrupted")
			}
			// Should cost roughly one core copy, far below a torus trip.
			copyTime := w.M.Nodes[0].HW.CopyTime(n, true)
			if r.Now() > 3*copyTime {
				t.Errorf("intra-node recv took %v, want about %v", r.Now(), copyTime)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			buf := r.NewBuf(64)
			r.Recv(4, buf, 5) // posted before the send happens
		case 4:
			r.Proc().Sleep(10 * sim.Microsecond)
			r.Send(0, r.NewBuf(64), 5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameKey(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			for i := 0; i < 4; i++ {
				buf := r.NewBuf(8)
				if buf.IsReal() {
					buf.Bytes()[0] = byte(i)
				}
				r.Send(4, buf, 9)
			}
		case 4:
			for i := 0; i < 4; i++ {
				buf := r.NewBuf(8)
				r.Recv(0, buf, 9)
				if buf.IsReal() && buf.Bytes()[0] != byte(i) {
					t.Errorf("message %d received out of order (%d)", i, buf.Bytes()[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedTagDeadlocks(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Recv(4, r.NewBuf(8), 123) // never sent
		}
	})
	if err == nil {
		t.Fatal("unmatched recv did not deadlock")
	}
}

func TestSendToSelfPanics(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(0, r.NewBuf(8), 0)
		}
	})
	if err == nil {
		t.Fatal("send-to-self not rejected")
	}
}

func TestSharedStateRendezvous(t *testing.T) {
	w := newWorld(t, smallConfig())
	_, err := w.Run(func(r *Rank) {
		seq := r.NextSeq()
		st := r.NodeShared(seq, "test", func() any { return new(int) }).(*int)
		*st++
		r.Proc().Sleep(sim.Microsecond)
		if r.LocalRank() == 0 && *st != r.LocalSize() {
			// All local ranks saw the same instance.
			t.Errorf("node %d shared state = %d", r.NodeID(), *st)
		}
		r.ReleaseNodeShared(seq, "test")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.ops) != 0 {
		t.Fatal("shared state leaked")
	}
}

func TestAutoBcastSelection(t *testing.T) {
	w := newWorld(t, smallConfig())
	r := w.Rank(0)
	if got := r.autoBcast(1 << 10); got != BcastTreeShmem {
		t.Errorf("1K -> %s", got)
	}
	if got := r.autoBcast(64 << 10); got != BcastTreeShaddr {
		t.Errorf("64K -> %s", got)
	}
	if got := r.autoBcast(1 << 20); got != BcastTorusShaddr {
		t.Errorf("1M -> %s", got)
	}
	cfg := smallConfig()
	cfg.Mode = hw.SMP
	cfg.Functional = false
	ws := newWorld(t, cfg)
	if got := ws.Rank(0).autoBcast(1 << 10); got != BcastTreeSMP {
		t.Errorf("SMP 1K -> %s", got)
	}
	if got := ws.Rank(0).autoBcast(1 << 20); got != BcastTorusDirectPut {
		t.Errorf("SMP 1M -> %s", got)
	}
}
