package mpi

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/sim"
)

// Nonblocking point-to-point operations. The network side of a transfer is
// driven by the DMA engine and needs no core, so Isend and Irecv issue their
// reservations event-driven and return a Request immediately. Core-side
// costs — the receiving core's copy-out for eager and intra-node messages —
// are charged when the owning rank waits on the request, which is where the
// MPI progress engine performs them on the real machine.

// Request tracks one outstanding nonblocking operation. It completes when
// its event fires; Wait additionally runs the deferred core-side work.
type Request struct {
	owner *Rank
	ev    *sim.Event
	// onWait runs in the waiting rank's process after ev fires, charging
	// any core-side completion cost.
	onWait func()
}

// Wait blocks the owning rank until the operation completes.
func (q *Request) Wait() {
	q.owner.proc.Wait(q.ev)
	if q.onWait != nil {
		// This hook only exists on the blocking path (Wait has no explicit-
		// resume form), so the call is deferred completion work, not a
		// parking continuation; the nil-out after it is deliberate.
		//bgplint:allow progframe -- blocking-only completion hook; clearing onWait afterwards prevents double-run
		q.onWait()
		q.onWait = nil
	}
}

// Done reports whether the operation has completed (Wait may still have
// deferred completion work to run).
func (q *Request) Done() bool { return q.ev.Fired() }

// WaitAll completes a set of requests.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		if q.owner != r {
			panic("mpi: WaitAll on another rank's request")
		}
		q.Wait()
	}
}

// Isend starts sending buf to dst and returns immediately. The request
// completes when the local buffer may be reused (eager: injected;
// rendezvous: the remote direct put finished).
func (r *Rank) Isend(dst int, buf data.Buf, tag int) *Request {
	if dst == r.id {
		panic("mpi: send to self")
	}
	to := &r.w.ranks[dst]
	k := r.w.M.K
	n := buf.Len()
	req := &Request{owner: r, ev: k.NewEvent(fmt.Sprintf("isend.%d.%d.%d", r.id, dst, tag))}

	if to.nodeID == r.nodeID {
		// Intra-node: publish through shared memory; complete after the
		// flag propagates.
		arr := &arrival{buf: buf, availableAt: k.Now() + r.node.HW.P.PollLatency, local: true}
		k.After(r.node.HW.P.PollLatency, func() {
			to.deliver(r.id, tag, arr)
			req.ev.Fire()
		})
		return req
	}

	if n <= r.w.Tunables.EagerLimit {
		wire := r.w.M.Torus.WireBytes(n)
		injDone := r.node.DMA.Inject(k.Now(), wire)
		netAt := r.w.M.Torus.Unicast(injDone, r.Coord(), to.Coord(), ptpLane, n)
		k.At(netAt, func() {
			rxDone := to.node.DMA.Receive(k.Now(), wire)
			arr := &arrival{buf: buf, availableAt: rxDone}
			k.At(rxDone, func() { to.deliver(r.id, tag, arr) })
		})
		k.At(injDone, req.ev.Fire)
		return req
	}

	// Rendezvous, event-driven: RTS now; once the receiver posts (CTS), the
	// DMA direct put is reserved and both sides complete at its end.
	rdv := &rendezvous{
		src:     r,
		cts:     k.NewEvent(fmt.Sprintf("icts.%d.%d", r.id, dst)),
		putDone: k.NewEvent(fmt.Sprintf("iput.%d.%d", r.id, dst)),
	}
	rtsAt := r.w.M.Torus.Unicast(k.Now(), r.Coord(), to.Coord(), ctrlLane, ctrlBytes)
	k.At(rtsAt, func() {
		to.deliver(r.id, tag, &arrival{buf: buf, availableAt: rtsAt, rdv: rdv})
	})
	rdv.cts.OnFire(func() {
		wire := r.w.M.Torus.WireBytes(n)
		injDone := r.node.DMA.Inject(k.Now(), wire)
		netAt := r.w.M.Torus.Unicast(injDone, r.Coord(), to.Coord(), ptpLane, n)
		dst2 := rdv.dstBuf
		k.At(netAt, func() {
			rxDone := to.node.DMA.Receive(k.Now(), wire)
			k.At(rxDone, func() {
				if dst2.Len() == buf.Len() {
					data.Copy(dst2, buf)
				}
				rdv.putDone.Fire()
			})
		})
	})
	rdv.putDone.OnFire(req.ev.Fire)
	return req
}

// Irecv starts receiving a message from src with the given tag into buf and
// returns immediately. The receiving core's copy (eager and intra-node
// paths) is charged when the request is waited on.
func (r *Rank) Irecv(src int, buf data.Buf, tag int) *Request {
	k := r.w.M.K
	req := &Request{owner: r, ev: k.NewEvent(fmt.Sprintf("irecv.%d.%d.%d", r.id, src, tag))}

	handle := func(arr *arrival) {
		if arr.rdv != nil {
			rdv := arr.rdv
			rdv.dstBuf = buf
			ctsAt := r.w.M.Torus.Unicast(k.Now(), r.Coord(), rdv.src.Coord(), ctrlLane, ctrlBytes)
			k.At(ctsAt, rdv.cts.Fire)
			rdv.putDone.OnFire(req.ev.Fire)
			return
		}
		local := arr.local
		payload := arr.buf
		finish := func() {
			if buf.Len() != payload.Len() {
				panic(fmt.Sprintf("mpi: irecv buffer %d bytes, message %d bytes", buf.Len(), payload.Len()))
			}
			req.onWait = func() {
				if local {
					r.node.HW.Poll(r.proc)
				}
				cached := r.node.HW.Cached(2 * buf.Len())
				r.node.HW.Copy(r.proc, buf.Len(), cached)
				data.Copy(buf, payload)
			}
			req.ev.Fire()
		}
		if arr.availableAt > k.Now() {
			k.At(arr.availableAt, finish)
		} else {
			finish()
		}
	}

	// Match an already-arrived message or register an event-driven posted
	// receive.
	key := matchKey{src: src, tag: tag}
	box := r.box()
	if arrs := box.arrived[key]; len(arrs) > 0 {
		arr := arrs[0]
		box.arrived[key] = arrs[1:]
		handle(arr)
		return req
	}
	pr := &recvReq{ev: k.NewEvent(fmt.Sprintf("ipost.%d.%d.%d", r.id, src, tag))}
	box.posted[key] = append(box.posted[key], pr)
	pr.ev.OnFire(func() { handle(pr.arr) })
	return req
}

// Sendrecv exchanges messages with two (possibly different) peers without
// deadlock: both transfers progress concurrently, as MPI_Sendrecv requires.
func (r *Rank) Sendrecv(dst int, sendBuf data.Buf, sendTag int, src int, recvBuf data.Buf, recvTag int) {
	rq := r.Irecv(src, recvBuf, recvTag)
	sq := r.Isend(dst, sendBuf, sendTag)
	r.WaitAll(rq, sq)
}
