package mpi

import "bgpcoll/internal/hw"

// Reset returns a world whose last run completed cleanly to its
// post-NewWorld state without rebuilding the partition: the machine resets
// (kernel clock/queues/arena/pipes, tree op numbering), every rank rewinds
// its collective sequence number, drops its process handle, empties its
// mailbox, and cools its CNK map cache, the shared-op registry is cleared,
// and the tunables return to the automatic defaults. A reused world is
// indistinguishable from a fresh one: the determinism stress tests compare
// their virtual times bit for bit.
//
// Reset panics (from sim.Kernel.Reset) if the previous run failed; callers
// pool only cleanly finished worlds and drop the rest.
//
// This file is a sanctioned Reset site for the bgplint worldreuse rule.
func (w *World) Reset() {
	w.M.Reset()
	w.Tunables = DefaultTunables()
	clear(w.ops)
	for _, m := range w.shardOps {
		clear(m)
	}
	w.hubBarrier.pending = w.hubBarrier.pending[:0]
	for id := range w.ranks {
		r := &w.ranks[id]
		r.proc = nil
		r.seq = 0
		if r.inbox != nil {
			r.inbox.reset()
		}
		r.cnk.Reset()
	}
}

// Reconfigure rebuilds the world for a new configuration on the same kernel:
// machine.Reconfigure rebuilds the device graph (reusing slab capacity), the
// rank slab is refilled in place, and the job-level state — tunables, the
// shared-op registry, any materialized mailboxes — returns to its
// post-NewWorld condition. Growing a pooled world this way costs a re-init
// instead of a rebuild; the result is bit-identical, in every
// kernel-observable way, to NewWorld(cfg) (pinned by the bench equivalence
// tests). Only single-shard worlds can be reconfigured; see
// machine.Reconfigure.
//
// This file is a sanctioned Reset site for the bgplint worldreuse rule;
// Reconfigure is Reset's capacity-aware sibling and lives at the same choke
// point.
func (w *World) Reconfigure(cfg hw.Config) error {
	if err := w.M.Reconfigure(cfg); err != nil {
		return err
	}
	w.Tunables = DefaultTunables()
	clear(w.ops)
	w.shardOps = nil
	w.hubBarrier.pending = w.hubBarrier.pending[:0]
	w.buildRanks()
	return nil
}

// reset empties the mailbox for a reused world. A clean run normally matches
// every arrival, but an algorithm may legitimately finish with stray eager
// arrivals it never received; none of them may leak into the next lease.
func (b *mailbox) reset() {
	clear(b.arrived)
	clear(b.posted)
}
