package mpi

// Reset returns a world whose last run completed cleanly to its
// post-NewWorld state without rebuilding the partition: the machine resets
// (kernel clock/queues/arena/pipes, tree op numbering), every rank rewinds
// its collective sequence number, drops its process handle, empties its
// mailbox, and cools its CNK map cache, the shared-op registry is cleared,
// and the tunables return to the automatic defaults. A reused world is
// indistinguishable from a fresh one: the determinism stress tests compare
// their virtual times bit for bit.
//
// Reset panics (from sim.Kernel.Reset) if the previous run failed; callers
// pool only cleanly finished worlds and drop the rest.
//
// This file is a sanctioned Reset site for the bgplint worldreuse rule.
func (w *World) Reset() {
	w.M.Reset()
	w.Tunables = DefaultTunables()
	clear(w.ops)
	for _, m := range w.shardOps {
		clear(m)
	}
	w.hubBarrier.pending = w.hubBarrier.pending[:0]
	for _, r := range w.ranks {
		r.proc = nil
		r.seq = 0
		r.inbox.reset()
		r.cnk.Reset()
	}
}

// reset empties the mailbox for a reused world. A clean run normally matches
// every arrival, but an algorithm may legitimately finish with stray eager
// arrivals it never received; none of them may leak into the next lease.
func (b *mailbox) reset() {
	clear(b.arrived)
	clear(b.posted)
}
