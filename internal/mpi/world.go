package mpi

import (
	"fmt"

	"bgpcoll/internal/cnk"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
)

// World is one MPI job on a simulated partition.
type World struct {
	M        *machine.Machine
	Tunables Tunables
	ranks    []*Rank

	ops map[opKey]*opEntry
}

// Tunables select collective algorithm implementations, mirroring the
// protocol registries of CCMI. Empty strings mean automatic selection by
// message size and mode.
type Tunables struct {
	Bcast     string
	Allreduce string
	Gather    string
	Allgather string

	// TreeCrossover is the largest Bcast payload routed to the collective
	// network in automatic mode; larger messages use the torus.
	TreeCrossover int

	// ShortBcast is the largest payload using the latency-optimized
	// shared-memory tree algorithm in automatic quad mode.
	ShortBcast int

	// EagerLimit is the largest point-to-point payload sent eagerly
	// through memory FIFOs; larger messages use a rendezvous direct put.
	EagerLimit int

	// TorusColors limits the edge-disjoint routes the torus broadcast
	// uses (1..6; 0 = all six). Exists for the color-count ablation.
	TorusColors int
}

// DefaultTunables returns the automatic-selection thresholds.
func DefaultTunables() Tunables {
	return Tunables{
		TreeCrossover: 256 << 10,
		ShortBcast:    2 << 10,
		EagerLimit:    4 << 10,
	}
}

// NewWorld builds a world over a fresh machine. To record schedule events,
// attach a log afterwards: w.M.Trace = trace.New(n).
func NewWorld(cfg hw.Config) (*World, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	w := &World{
		M:        m,
		Tunables: DefaultTunables(),
		ops:      make(map[opKey]*opEntry),
	}
	ppn := cfg.Mode.ProcsPerNode()
	w.ranks = make([]*Rank, cfg.Ranks())
	for id := range w.ranks {
		nodeID := id / ppn
		lrank := id % ppn
		node := m.Node(nodeID)
		w.ranks[id] = &Rank{
			w:      w,
			id:     id,
			name:   fmt.Sprintf("rank%d", id),
			nodeID: nodeID,
			lrank:  lrank,
			node:   node,
			cnk:    cnk.NewProcess(node.HW, lrank),
			inbox:  newMailbox(),
		}
	}
	return w, nil
}

// Size returns the rank count.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank id's handle (for inspection; rank code receives its own
// handle through Run).
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Run executes fn on every rank as a simulated process and drives the
// simulation until all ranks return. It returns the virtual time consumed.
func (w *World) Run(fn func(r *Rank)) (sim.Time, error) {
	for _, r := range w.ranks {
		r.proc = w.M.K.Spawn(r.name, func(p *sim.Proc) {
			fn(r)
		})
	}
	err := w.M.K.Run()
	return w.M.K.Now(), err
}

// RunProgram executes fn on every rank as a program process: the body must be
// written in explicit-resume style (BarrierThen, BcastThen, ...) and is done
// when its last continuation returns without arming another resume. In the
// kernel's default mode no rank gets a goroutine; in noProgram reference mode
// the identical bodies run on goroutine processes, where every *Then
// operation blocks — either way the schedule is the same one Run produces
// from the blocking transcription.
func (w *World) RunProgram(fn func(r *Rank)) (sim.Time, error) {
	for _, r := range w.ranks {
		r.proc = w.M.K.SpawnProgram(r.name, func(p *sim.Proc) {
			fn(r)
		})
	}
	err := w.M.K.Run()
	return w.M.K.Now(), err
}

// opKey identifies one collective operation instance at one coordination
// scope: a node (intra-node shared state) or the whole job (scope -1).
type opKey struct {
	scope int
	seq   int64
	kind  string
}

type opEntry struct {
	val  any
	refs int
}

const worldScope = -1

// shared returns the operation state for (scope, seq), creating it with
// create on first access. parties is the number of ranks that will acquire
// it; when all have released it, the entry is reclaimed.
func (w *World) shared(scope int, seq int64, kind string, parties int, create func() any) any {
	key := opKey{scope: scope, seq: seq, kind: kind}
	e, ok := w.ops[key]
	if !ok {
		e = &opEntry{val: create(), refs: parties}
		w.ops[key] = e
	}
	return e.val
}

// release drops one rank's reference to the operation state.
func (w *World) release(scope int, seq int64, kind string) {
	key := opKey{scope: scope, seq: seq, kind: kind}
	e, ok := w.ops[key]
	if !ok {
		panic(fmt.Sprintf("mpi: release of unknown op %+v", key))
	}
	e.refs--
	if e.refs == 0 {
		delete(w.ops, key)
	}
}
