package mpi

import (
	"fmt"

	"bgpcoll/internal/cnk"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
)

// World is one MPI job on a simulated partition.
type World struct {
	M        *machine.Machine
	Tunables Tunables

	// ranks is a dense slab: one Rank value per rank, CNK state embedded,
	// mailbox lazy. Handles are interior pointers (&ranks[id]); the slab is
	// never appended to after build, so they stay valid for the world's
	// lifetime. Reconfigure reuses the backing array when the new job fits.
	ranks []Rank

	ops map[opKey]*opEntry

	// shardOps partitions the shared-op registry by kernel shard on a
	// sharded world: node-scoped entries live in the owning node's shard's
	// map, touched only under that shard's token, so parallel windows never
	// race on one map. World-scoped entries are rejected outright — no
	// single shard could own them (Barrier has a dedicated sharded
	// protocol; see rank.go).
	shardOps []map[opKey]*opEntry

	// hubBarrier is the hub-side state of the sharded barrier protocol,
	// touched only by hub-shard callbacks during a run.
	hubBarrier struct {
		pending []*sim.Counter
	}
}

// Tunables select collective algorithm implementations, mirroring the
// protocol registries of CCMI. Empty strings mean automatic selection by
// message size and mode.
type Tunables struct {
	Bcast     string
	Allreduce string
	Gather    string
	Allgather string

	// TreeCrossover is the largest Bcast payload routed to the collective
	// network in automatic mode; larger messages use the torus.
	TreeCrossover int

	// ShortBcast is the largest payload using the latency-optimized
	// shared-memory tree algorithm in automatic quad mode.
	ShortBcast int

	// EagerLimit is the largest point-to-point payload sent eagerly
	// through memory FIFOs; larger messages use a rendezvous direct put.
	EagerLimit int

	// TorusColors limits the edge-disjoint routes the torus broadcast
	// uses (1..6; 0 = all six). Exists for the color-count ablation.
	TorusColors int
}

// DefaultTunables returns the automatic-selection thresholds.
func DefaultTunables() Tunables {
	return Tunables{
		TreeCrossover: 256 << 10,
		ShortBcast:    2 << 10,
		EagerLimit:    4 << 10,
	}
}

// NewWorld builds a world over a fresh machine. To record schedule events,
// attach a log afterwards: w.M.Trace = trace.New(n).
func NewWorld(cfg hw.Config) (*World, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	w := &World{
		M:        m,
		Tunables: DefaultTunables(),
		ops:      make(map[opKey]*opEntry),
	}
	if m.Sharded() {
		w.shardOps = make([]map[opKey]*opEntry, m.K.ShardCount())
		for i := range w.shardOps {
			w.shardOps[i] = make(map[opKey]*opEntry)
		}
	}
	w.buildRanks()
	return w, nil
}

// buildRanks (re)fills the rank slab for the machine's current Cfg. Like
// machine.buildNodes, the fill fans out in contiguous blocks: rank id's
// content is a pure function of (id, Cfg), so the parallel fill is
// bit-identical to a serial one.
func (w *World) buildRanks() {
	n := w.M.Cfg.Ranks()
	if cap(w.ranks) < n {
		w.ranks = make([]Rank, n)
	} else {
		if len(w.ranks) > n {
			clear(w.ranks[n:])
		}
		w.ranks = w.ranks[:n]
	}
	machine.ParallelBlocks(n, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			w.initRank(id)
		}
	})
}

// initRank fills rank id's slab slot in place. Hot: one call per rank on the
// construction path, allocation-free — the CNK state is embedded, the
// mailbox stays nil until the first point-to-point message, and the process
// name is synthesized lazily by the kernel (SpawnIdx).
//
//bgplint:hot
func (w *World) initRank(id int) {
	ppn := w.M.Cfg.Mode.ProcsPerNode()
	nodeID := id / ppn
	lrank := id % ppn
	r := &w.ranks[id]
	r.w = w
	r.id = id
	r.nodeID = nodeID
	r.lrank = lrank
	r.node = w.M.Node(nodeID)
	r.proc = nil
	r.inbox = nil
	r.seq = 0
	cnk.Init(&r.cnk, r.node.HW, lrank)
}

// Size returns the rank count.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank id's handle (for inspection; rank code receives its own
// handle through Run).
func (w *World) Rank(id int) *Rank { return &w.ranks[id] }

// Sharded reports whether the world runs on a sharded kernel.
func (w *World) Sharded() bool { return w.M.Sharded() }

// Run executes fn on every rank as a simulated process and drives the
// simulation until all ranks return. It returns the virtual time consumed.
// On a sharded world each rank's process is spawned on its node's shard.
func (w *World) Run(fn func(r *Rank)) (sim.Time, error) {
	for id := range w.ranks {
		r := &w.ranks[id]
		r.proc = r.Shard().SpawnIdx("rank", int32(r.id), func(p *sim.Proc) {
			fn(r)
		})
	}
	err := w.M.K.Run()
	return w.M.K.Now(), err
}

// RunProgram executes fn on every rank as a program process: the body must be
// written in explicit-resume style (BarrierThen, BcastThen, ...) and is done
// when its last continuation returns without arming another resume. In the
// kernel's default mode no rank gets a goroutine; in noProgram reference mode
// the identical bodies run on goroutine processes, where every *Then
// operation blocks — either way the schedule is the same one Run produces
// from the blocking transcription.
func (w *World) RunProgram(fn func(r *Rank)) (sim.Time, error) {
	for id := range w.ranks {
		r := &w.ranks[id]
		r.proc = r.Shard().SpawnProgramIdx("rank", int32(r.id), func(p *sim.Proc) {
			fn(r)
		})
	}
	err := w.M.K.Run()
	return w.M.K.Now(), err
}

// opKey identifies one collective operation instance at one coordination
// scope: a node (intra-node shared state) or the whole job (scope -1).
type opKey struct {
	scope int
	seq   int64
	kind  string
}

type opEntry struct {
	val  any
	refs int
}

const worldScope = -1

// opsFor returns the registry map owning the given scope: the single map on
// a classic world, the owning node's shard's map on a sharded one.
// World-scoped state is unavailable on a sharded world — no shard could own
// it — so collectives that need it (the torus and allreduce families) are
// single-shard only.
func (w *World) opsFor(scope int) map[opKey]*opEntry {
	if w.shardOps == nil {
		return w.ops
	}
	if scope == worldScope {
		panic("mpi: world-scoped shared state on a sharded world (collective not shard-capable)")
	}
	return w.shardOps[w.M.ShardOf(scope).ID()]
}

// shared returns the operation state for (scope, seq), creating it with
// create on first access. parties is the number of ranks that will acquire
// it; when all have released it, the entry is reclaimed.
func (w *World) shared(scope int, seq int64, kind string, parties int, create func() any) any {
	key := opKey{scope: scope, seq: seq, kind: kind}
	ops := w.opsFor(scope)
	e, ok := ops[key]
	if !ok {
		e = &opEntry{val: create(), refs: parties}
		ops[key] = e
	}
	return e.val
}

// release drops one rank's reference to the operation state.
func (w *World) release(scope int, seq int64, kind string) {
	key := opKey{scope: scope, seq: seq, kind: kind}
	ops := w.opsFor(scope)
	e, ok := ops[key]
	if !ok {
		panic(fmt.Sprintf("mpi: release of unknown op %+v", key))
	}
	e.refs--
	if e.refs == 0 {
		delete(ops, key)
	}
}

// hubBarrierArrive records one node's arrival at the current sharded
// barrier; it runs on the hub shard at the arriving node's last-local-rank
// instant. Barriers are totally ordered in virtual time (no node can arrive
// at barrier k+1 before every node was released from barrier k), so a plain
// count of pending nodes identifies the barrier. The last arrival releases
// every node one interrupt-network latency later — the same instant the
// single-shard protocol's event fires at.
func (w *World) hubBarrierArrive(release *sim.Counter) {
	hb := &w.hubBarrier
	hb.pending = append(hb.pending, release)
	if len(hb.pending) < w.M.Cfg.Nodes() {
		return
	}
	hub := w.M.HubShard()
	at := hub.Now() + w.M.Cfg.Params.BarrierLatency
	for _, c := range hb.pending {
		hub.PostAdd(at, c, 1)
	}
	hb.pending = hb.pending[:0]
}
