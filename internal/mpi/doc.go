// Package mpi is the MPI-like runtime and API of the simulated stack: it
// plays the role MPICH plays on the real machine, glued over the messaging
// substrates the way the paper's implementation is glued over DCMF/CCMI.
//
// A World launches one simulated process per MPI rank (quad mode: four ranks
// per node, each owning one PowerPC core). Rank programs are ordinary Go
// functions receiving a *Rank, whose methods provide the MPI surface:
// Bcast, AllreduceSum, Barrier, Send/Recv, Gather, Allgather.
//
// Collective algorithm implementations live in package coll and register
// themselves by name; Tunables select an algorithm explicitly or leave the
// runtime to choose by message size and operating mode, mirroring how CCMI
// registries select protocols on BG/P.
//
// Ranks of one node coordinate through shared per-node operation state
// (counters, FIFOs, events) obtained from the world's rendezvous registry,
// keyed by each rank's collective sequence number — the simulated equivalent
// of the pre-agreed shared-memory segments and process windows on a real
// node.
package mpi
