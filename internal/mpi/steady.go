package mpi

// Steady-state fingerprinting of the MPI layer (see internal/sim/steady.go
// for the mechanism and the induction argument). The kernel walk covers
// everything schedulable; this walk covers the layer state above it that can
// influence future execution: the shared-operation registry, per-rank
// sequence numbers, point-to-point mailboxes and process-window (CNK)
// residue. Everything time- or sequence-like is normalized so that two
// iterations differing only by the uniform per-iteration shift hash
// identically: virtual times are boundary-relative (sim.FP.Time) and
// collective sequence numbers are relative to rank 0's, which advances by
// the same per-iteration count as every key in a steady loop.
//
// Sequence numbers and the registry keys are deliberately NOT shifted by
// extrapolation: pending barrier-release continuations capture their seq by
// value (Rank.BarrierThen), so the final live iteration keeps running with
// the sequence numbers it was issued — the extrapolated run's observable
// results are bit-identical to full execution, while diagnostic-only values
// (sequence numbers reached, event names) may differ. The fingerprint never
// hashes those, so the induction stays sound.

import "bgpcoll/internal/sim"

// SteadyState canonicalizes the world's residual state into f. Sharded
// worlds, unknown operation types and pending point-to-point traffic refuse
// the capture (extrapolation then falls back to full execution).
func (w *World) SteadyState(f *sim.FP) {
	if w.shardOps != nil {
		f.Refuse("sharded world")
		return
	}
	if len(w.hubBarrier.pending) != 0 {
		f.Refuse("pending hub barrier")
		return
	}
	var baseSeq int64
	if len(w.ranks) > 0 {
		baseSeq = w.ranks[0].seq
	}

	// The shared-operation registry, in sorted key order. Go randomizes map
	// iteration, but the subsequent sort makes the walk deterministic.
	keys := make([]opKey, 0, len(w.ops))
	for k := range w.ops { //bgplint:allow maporder -- keys are sorted below before hashing
		keys = append(keys, k)
	}
	sortOpKeys(keys)
	f.I64(int64(len(keys)))
	for _, k := range keys {
		e := w.ops[k]
		f.I64(int64(k.scope))
		f.I64(k.seq - baseSeq)
		f.Str(k.kind)
		f.I64(int64(e.refs))
		h, ok := e.val.(sim.Hasher)
		if !ok {
			f.Refuse("op state " + k.kind + " is not fingerprintable")
			return
		}
		h.SteadyState(f)
		if f.Refused() {
			return
		}
	}

	f.I64(int64(len(w.ranks)))
	for i := range w.ranks {
		r := &w.ranks[i]
		f.I64(r.seq - baseSeq)
		if r.inbox != nil && !r.inbox.idle() {
			f.Refuse("pending point-to-point traffic")
			return
		}
		r.cnk.SteadyState(f)
	}
}

// sortOpKeys orders registry keys by (scope, seq, kind): insertion sort —
// the registry holds a handful of live entries at any boundary.
func sortOpKeys(keys []opKey) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && opKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func opKeyLess(a, b opKey) bool {
	if a.scope != b.scope {
		return a.scope < b.scope
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.kind < b.kind
}

// idle reports whether the mailbox holds no pending traffic. Consumed
// match-key entries keep empty slices in the maps, so emptiness is a per-key
// check, not a map-length check; iteration order is irrelevant to a boolean.
func (b *mailbox) idle() bool {
	for _, as := range b.arrived { //bgplint:allow maporder -- order-independent emptiness check
		if len(as) > 0 {
			return false
		}
	}
	for _, rs := range b.posted { //bgplint:allow maporder -- order-independent emptiness check
		if len(rs) > 0 {
			return false
		}
	}
	return true
}

// SteadyState canonicalizes the classic-world barrier op: the arrival count
// and the release event with its waiter list.
func (st *barrierState) SteadyState(f *sim.FP) {
	f.I64(int64(st.arrived))
	f.Event(st.ev)
}

// SteadyState canonicalizes the node-scoped sharded-barrier op. Sharded
// worlds refuse capture outright, so this exists for type completeness.
func (st *nodeBarrier) SteadyState(f *sim.FP) {
	f.I64(int64(st.arrived))
	f.Counter(st.release)
}
