package mpi

import (
	"fmt"
	"sort"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
)

// Well-known collective algorithm names. Implementations live in package
// coll and register under these names; Tunables select among them.
const (
	// Bcast over the collective (tree) network.
	BcastTreeSMP       = "tree.smp"       // SMP mode: main + helper thread
	BcastTreeShmem     = "tree.shmem"     // quad: shared-memory segment (latency)
	BcastTreeDMAFIFO   = "tree.dmafifo"   // quad: DMA to per-core memory FIFOs
	BcastTreeDMADirect = "tree.dmadirect" // quad: DMA direct put to peers
	BcastTreeShaddr    = "tree.shaddr"    // quad: shared address + core specialization

	// Bcast over the 3D torus.
	BcastTorusDirectPut = "torus.directput" // DMA for network and intra-node
	BcastTorusFIFO      = "torus.fifo"      // concurrent Bcast FIFO staging
	BcastTorusShaddr    = "torus.shaddr"    // shared address + message counters

	// Allreduce over the 3D torus.
	AllreduceTorusCurrent = "allreduce.current" // DMA-based intra-node phases
	AllreduceTorusNew     = "allreduce.shaddr"  // core specialization + windows

	// Extension collectives (the paper's future work).
	GatherTorus    = "gather.torus"
	AllgatherTorus = "allgather.torus"
	AllgatherRing  = "allgather.ring"
	ReduceTorus    = "reduce.torus"
	ScatterTorus   = "scatter.torus"
	AlltoallTorus  = "alltoall.torus"
)

// BcastFn broadcasts buf (the full message buffer on every rank; the root's
// holds the payload) from global rank root.
type BcastFn func(r *Rank, buf data.Buf, root int)

// AllreduceFn reduces send element-wise (float64 sum) across all ranks into
// recv on every rank.
type AllreduceFn func(r *Rank, send, recv data.Buf)

// ProgBcastFn is the explicit-resume (program) form of BcastFn: the body is
// written against the sim *Then operations and calls done when the collective
// completes on this rank. On a goroutine-backed rank the operations block, so
// the call is synchronous; on an inline program rank the body parks and the
// kernel resumes it — either way done runs exactly once, at the virtual-time
// position the blocking form would have returned.
type ProgBcastFn func(r *Rank, buf data.Buf, root int, done func())

// ProgAllreduceFn is the explicit-resume form of AllreduceFn.
type ProgAllreduceFn func(r *Rank, send, recv data.Buf, done func())

// GatherFn gathers each rank's send buffer into the root's recv buffer
// (rank i's data at offset i*send.Len()).
type GatherFn func(r *Rank, send, recv data.Buf, root int)

// AllgatherFn gathers each rank's send buffer into every rank's recv buffer.
type AllgatherFn func(r *Rank, send, recv data.Buf)

// ReduceFn reduces send element-wise (float64 sum) across all ranks into the
// root's recv buffer.
type ReduceFn func(r *Rank, send, recv data.Buf, root int)

// ScatterFn distributes the root's send buffer block-wise: rank i receives
// the i-th block into recv.
type ScatterFn func(r *Rank, send, recv data.Buf, root int)

// AlltoallFn exchanges blocks: rank i's j-th send block lands in rank j's
// i-th recv block.
type AlltoallFn func(r *Rank, send, recv data.Buf)

var (
	bcastAlgos         = map[string]BcastFn{}
	progBcastAlgos     = map[string]ProgBcastFn{}
	allreduceAlgos     = map[string]AllreduceFn{}
	progAllreduceAlgos = map[string]ProgAllreduceFn{}
	gatherAlgos        = map[string]GatherFn{}
	allgatherAlgos     = map[string]AllgatherFn{}
	reduceAlgos        = map[string]ReduceFn{}
	scatterAlgos       = map[string]ScatterFn{}
	alltoallAlgos      = map[string]AlltoallFn{}
)

// RegisterBcast installs a broadcast implementation under name.
func RegisterBcast(name string, fn BcastFn) { bcastAlgos[name] = fn }

// RegisterProgBcast installs a program-form broadcast under name, and derives
// the blocking BcastFn from it: with a goroutine-backed rank every *Then
// operation blocks, so calling the program body with a no-op continuation IS
// the blocking algorithm. One transcription serves both execution modes.
func RegisterProgBcast(name string, fn ProgBcastFn) {
	progBcastAlgos[name] = fn
	bcastAlgos[name] = func(r *Rank, buf data.Buf, root int) { fn(r, buf, root, func() {}) }
}

// RegisterAllreduce installs an allreduce implementation under name.
func RegisterAllreduce(name string, fn AllreduceFn) { allreduceAlgos[name] = fn }

// RegisterProgAllreduce installs a program-form allreduce under name and
// derives the blocking AllreduceFn from it (see RegisterProgBcast).
func RegisterProgAllreduce(name string, fn ProgAllreduceFn) {
	progAllreduceAlgos[name] = fn
	allreduceAlgos[name] = func(r *Rank, send, recv data.Buf) { fn(r, send, recv, func() {}) }
}

// HasProgBcast reports whether the named broadcast has a program form, i.e.
// whether ranks running it can execute without goroutines.
func HasProgBcast(name string) bool {
	_, ok := progBcastAlgos[name]
	return ok
}

// HasProgAllreduce reports whether the named allreduce has a program form.
func HasProgAllreduce(name string) bool {
	_, ok := progAllreduceAlgos[name]
	return ok
}

// RegisterGather installs a gather implementation under name.
func RegisterGather(name string, fn GatherFn) { gatherAlgos[name] = fn }

// RegisterAllgather installs an allgather implementation under name.
func RegisterAllgather(name string, fn AllgatherFn) { allgatherAlgos[name] = fn }

// RegisterReduce installs a reduce implementation under name.
func RegisterReduce(name string, fn ReduceFn) { reduceAlgos[name] = fn }

// RegisterScatter installs a scatter implementation under name.
func RegisterScatter(name string, fn ScatterFn) { scatterAlgos[name] = fn }

// RegisterAlltoall installs an alltoall implementation under name.
func RegisterAlltoall(name string, fn AlltoallFn) { alltoallAlgos[name] = fn }

// BcastAlgorithms lists the registered broadcast algorithm names.
func BcastAlgorithms() []string {
	names := make([]string, 0, len(bcastAlgos))
	for n := range bcastAlgos {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func lookupBcast(name string) BcastFn {
	fn, ok := bcastAlgos[name]
	if !ok {
		panic(fmt.Sprintf("mpi: no bcast algorithm %q registered (have %v)", name, BcastAlgorithms()))
	}
	return fn
}

func lookupAllreduce(name string) AllreduceFn {
	fn, ok := allreduceAlgos[name]
	if !ok {
		panic(fmt.Sprintf("mpi: no allreduce algorithm %q registered", name))
	}
	return fn
}

// Bcast broadcasts buf from the given root using the configured or
// automatically selected algorithm.
func (r *Rank) Bcast(buf data.Buf, root int) {
	name := r.w.Tunables.Bcast
	if name == "" {
		name = r.autoBcast(buf.Len())
	}
	lookupBcast(name)(r, buf, root)
}

// BcastThen is the explicit-resume form of Bcast: done runs when the
// collective completes on this rank. Algorithms without a program form fall
// back to the blocking implementation, which requires a goroutine-backed rank.
func (r *Rank) BcastThen(buf data.Buf, root int, done func()) {
	name := r.w.Tunables.Bcast
	if name == "" {
		name = r.autoBcast(buf.Len())
	}
	if fn, ok := progBcastAlgos[name]; ok {
		fn(r, buf, root, done)
		return
	}
	lookupBcast(name)(r, buf, root)
	done()
}

// autoBcast mirrors the production protocol selection: the collective
// network serves short and medium messages, the torus serves large ones; in
// quad mode the shared-memory tree algorithm serves the shortest messages
// and the shared-address algorithms the rest (the paper's best performers).
func (r *Rank) autoBcast(n int) string {
	t := r.w.Tunables
	if r.w.M.Cfg.Mode == hw.SMP {
		if n <= t.TreeCrossover {
			return BcastTreeSMP
		}
		return BcastTorusDirectPut
	}
	switch {
	case n <= t.ShortBcast:
		return BcastTreeShmem
	case n <= t.TreeCrossover:
		return BcastTreeShaddr
	default:
		return BcastTorusShaddr
	}
}

// AllreduceSum performs a float64 sum allreduce of send into recv.
func (r *Rank) AllreduceSum(send, recv data.Buf) {
	if send.Len() != recv.Len() {
		panic("mpi: allreduce buffer length mismatch")
	}
	if send.Len()%data.Float64Len != 0 {
		panic("mpi: allreduce payload is not whole float64 elements")
	}
	name := r.allreduceName()
	lookupAllreduce(name)(r, send, recv)
}

// AllreduceSumThen is the explicit-resume form of AllreduceSum.
func (r *Rank) AllreduceSumThen(send, recv data.Buf, done func()) {
	if send.Len() != recv.Len() {
		panic("mpi: allreduce buffer length mismatch")
	}
	if send.Len()%data.Float64Len != 0 {
		panic("mpi: allreduce payload is not whole float64 elements")
	}
	name := r.allreduceName()
	if fn, ok := progAllreduceAlgos[name]; ok {
		fn(r, send, recv, done)
		return
	}
	lookupAllreduce(name)(r, send, recv)
	done()
}

// allreduceName resolves the configured or default allreduce algorithm.
func (r *Rank) allreduceName() string {
	name := r.w.Tunables.Allreduce
	if name == "" {
		name = AllreduceTorusNew
		if r.w.M.Cfg.Mode == hw.SMP {
			name = AllreduceTorusCurrent
		}
	}
	return name
}

// Gather gathers each rank's send into the root's recv.
func (r *Rank) Gather(send, recv data.Buf, root int) {
	name := r.w.Tunables.Gather
	if name == "" {
		name = GatherTorus
	}
	fn, ok := gatherAlgos[name]
	if !ok {
		panic(fmt.Sprintf("mpi: no gather algorithm %q registered", name))
	}
	fn(r, send, recv, root)
}

// Allgather gathers every rank's send into every rank's recv.
func (r *Rank) Allgather(send, recv data.Buf) {
	name := r.w.Tunables.Allgather
	if name == "" {
		name = AllgatherTorus
	}
	fn, ok := allgatherAlgos[name]
	if !ok {
		panic(fmt.Sprintf("mpi: no allgather algorithm %q registered", name))
	}
	fn(r, send, recv)
}

// ReduceSum performs a float64 sum reduction of send into the root's recv.
func (r *Rank) ReduceSum(send, recv data.Buf, root int) {
	if send.Len()%data.Float64Len != 0 {
		panic("mpi: reduce payload is not whole float64 elements")
	}
	fn, ok := reduceAlgos[ReduceTorus]
	if !ok {
		panic("mpi: no reduce algorithm registered")
	}
	fn(r, send, recv, root)
}

// Scatter distributes the root's send buffer block-wise into every rank's
// recv buffer.
func (r *Rank) Scatter(send, recv data.Buf, root int) {
	fn, ok := scatterAlgos[ScatterTorus]
	if !ok {
		panic("mpi: no scatter algorithm registered")
	}
	fn(r, send, recv, root)
}

// Alltoall exchanges equal-size blocks among all ranks.
func (r *Rank) Alltoall(send, recv data.Buf) {
	fn, ok := alltoallAlgos[AlltoallTorus]
	if !ok {
		panic("mpi: no alltoall algorithm registered")
	}
	fn(r, send, recv)
}
