package mpi

import (
	"fmt"

	"bgpcoll/internal/cnk"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
)

// Rank is one MPI process: a simulated core of one node. The layout is the
// per-rank flyweight: the CNK process-window state is embedded (not a
// separate allocation), the mailbox is nil until the rank's first
// point-to-point message, and the process name ("rankN") is synthesized
// lazily by the kernel from the shared "rank" prefix and the id.
type Rank struct {
	w      *World
	id     int
	nodeID int
	lrank  int
	node   *machine.Node
	proc   *sim.Proc
	cnk    cnk.Process
	inbox  *mailbox // lazy; use box()
	seq    int64    // collective sequence number, advanced per collective call
}

// Rank returns the global rank id.
func (r *Rank) Rank() int { return r.id }

// Size returns the job's rank count.
func (r *Rank) Size() int { return r.w.Size() }

// NodeID returns the rank's node.
func (r *Rank) NodeID() int { return r.nodeID }

// LocalRank returns the rank's position within its node (0..ProcsPerNode-1).
func (r *Rank) LocalRank() int { return r.lrank }

// LocalSize returns the MPI processes per node.
func (r *Rank) LocalSize() int { return r.w.M.Cfg.Mode.ProcsPerNode() }

// IsNodeMaster reports whether this rank is its node's local rank 0.
func (r *Rank) IsNodeMaster() bool { return r.lrank == 0 }

// Coord returns the rank's node coordinate.
func (r *Rank) Coord() geometry.Coord { return r.node.HW.Coord }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// Machine returns the underlying machine.
func (r *Rank) Machine() *machine.Machine { return r.w.M }

// Sharded reports whether the world runs on a sharded kernel.
func (r *Rank) Sharded() bool { return r.w.M.Sharded() }

// Shard returns the kernel shard simulating this rank's node: the root shard
// on a single-shard world, where every shard-level operation is identical to
// its kernel-level counterpart.
func (r *Rank) Shard() *sim.Shard { return r.w.M.ShardOf(r.nodeID) }

// Node returns the rank's node devices.
func (r *Rank) Node() *machine.Node { return r.node }

// Proc returns the rank's simulated process. Algorithm implementations use
// it to consume core time.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// CNK returns the rank's process-window state.
func (r *Rank) CNK() *cnk.Process { return &r.cnk }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// RankOf returns the global rank of the process with the given local rank on
// node nodeID.
func (r *Rank) RankOf(nodeID, lrank int) int {
	return nodeID*r.LocalSize() + lrank
}

// LocalPeer returns this node's rank with the given local rank.
func (r *Rank) LocalPeer(lrank int) *Rank {
	return &r.w.ranks[r.RankOf(r.nodeID, lrank)]
}

// NewBuf allocates a message buffer honoring the world's functional mode.
func (r *Rank) NewBuf(n int) data.Buf { return data.New(n, r.w.M.Cfg.Functional) }

// NextSeq advances and returns the rank's collective sequence number. All
// ranks must issue collectives in the same order (an MPI requirement), so
// equal sequence numbers identify the same operation across ranks.
func (r *Rank) NextSeq() int64 {
	r.seq++
	return r.seq
}

// NodeShared returns this node's shared state for collective seq, created by
// the first arriving local rank. Every local rank must call ReleaseNodeShared
// when done with it.
func (r *Rank) NodeShared(seq int64, kind string, create func() any) any {
	return r.w.shared(r.nodeID, seq, kind, r.LocalSize(), create)
}

// ReleaseNodeShared drops the rank's reference from NodeShared state.
func (r *Rank) ReleaseNodeShared(seq int64, kind string) {
	r.w.release(r.nodeID, seq, kind)
}

// WorldShared returns job-wide shared state for collective seq; all ranks
// must release it.
func (r *Rank) WorldShared(seq int64, kind string, create func() any) any {
	return r.w.shared(worldScope, seq, kind, r.Size(), create)
}

// ReleaseWorldShared drops the rank's reference from WorldShared state.
func (r *Rank) ReleaseWorldShared(seq int64, kind string) {
	r.w.release(worldScope, seq, kind)
}

// Barrier synchronizes all ranks over the global interrupt network.
func (r *Rank) Barrier() {
	if r.Sharded() {
		st, seq := r.shardedBarrierArrive()
		r.proc.WaitGE(st.release, 1)
		r.ReleaseNodeShared(seq, "barrier")
		return
	}
	seq := r.NextSeq()
	st := r.WorldShared(seq, "barrier", func() any {
		return &barrierState{ev: r.w.M.K.NewEvent(fmt.Sprintf("barrier%d", seq))}
	}).(*barrierState)
	st.arrived++
	if st.arrived == r.Size() {
		r.w.M.K.After(r.w.M.Cfg.Params.BarrierLatency, st.ev.Fire)
	}
	r.proc.Wait(st.ev)
	r.ReleaseWorldShared(seq, "barrier")
}

// BarrierThen is the explicit-resume form of Barrier: done runs once all
// ranks have arrived and the interrupt-network latency has elapsed.
//
// The shared arrival state is released at arrival rather than at release
// time: the op registry refcounts a fixed party count, so arrive/release
// order is immaterial, and releasing here lets done pass straight to the
// wait — the wrapper closure this used to allocate per rank per barrier was
// the largest single bench-side entry in the rack-scale sweep's allocation
// profile.
func (r *Rank) BarrierThen(done func()) {
	if r.Sharded() {
		st, seq := r.shardedBarrierArrive()
		r.ReleaseNodeShared(seq, "barrier")
		r.proc.WaitGEThen(st.release, 1, done)
		return
	}
	seq := r.NextSeq()
	st := r.WorldShared(seq, "barrier", func() any {
		ev := r.w.M.K.NewEvent(fmt.Sprintf("barrier%d", seq))
		ev.Reserve(r.Size())
		return &barrierState{ev: ev}
	}).(*barrierState)
	st.arrived++
	if st.arrived == r.Size() {
		r.w.M.K.After(r.w.M.Cfg.Params.BarrierLatency, st.ev.Fire)
	}
	ev := st.ev
	r.ReleaseWorldShared(seq, "barrier")
	r.proc.WaitThen(ev, done)
}

type barrierState struct {
	arrived int
	ev      *sim.Event
}

// nodeBarrier is the node-local side of the sharded barrier: an arrival
// count among the node's ranks and the release counter the hub bumps.
type nodeBarrier struct {
	arrived int
	release *sim.Counter
}

// shardedBarrierArrive is the arrival half of the sharded barrier protocol:
// count local arrivals on node-shared state, and let the node's last
// arriving rank announce the node to the hub at its current instant
// (peer-to-hub posts carry no lookahead, so the hub observes every node's
// exact arrival time). The hub releases all nodes BarrierLatency after the
// last arrival — the identical release instant to the single-shard
// protocol, computed on the hub instead of the last rank's shard.
func (r *Rank) shardedBarrierArrive() (*nodeBarrier, int64) {
	seq := r.NextSeq()
	st := r.NodeShared(seq, "barrier", func() any {
		return &nodeBarrier{
			release: r.Shard().NewCounter(fmt.Sprintf("barrier%d.node%d", seq, r.nodeID)),
		}
	}).(*nodeBarrier)
	st.arrived++
	if st.arrived == r.LocalSize() {
		w := r.w
		rel := st.release
		r.Shard().PostCall(r.Now(), w.M.HubShard(), func() { w.hubBarrierArrive(rel) })
	}
	return st, seq
}
