package mpi

import (
	"fmt"

	"bgpcoll/internal/cnk"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/machine"
	"bgpcoll/internal/sim"
)

// Rank is one MPI process: a simulated core of one node.
type Rank struct {
	w      *World
	id     int
	name   string // process name ("rankN"), formatted once at NewWorld
	nodeID int
	lrank  int
	node   *machine.Node
	proc   *sim.Proc
	cnk    *cnk.Process
	inbox  *mailbox
	seq    int64 // collective sequence number, advanced per collective call
}

// Rank returns the global rank id.
func (r *Rank) Rank() int { return r.id }

// Size returns the job's rank count.
func (r *Rank) Size() int { return r.w.Size() }

// NodeID returns the rank's node.
func (r *Rank) NodeID() int { return r.nodeID }

// LocalRank returns the rank's position within its node (0..ProcsPerNode-1).
func (r *Rank) LocalRank() int { return r.lrank }

// LocalSize returns the MPI processes per node.
func (r *Rank) LocalSize() int { return r.w.M.Cfg.Mode.ProcsPerNode() }

// IsNodeMaster reports whether this rank is its node's local rank 0.
func (r *Rank) IsNodeMaster() bool { return r.lrank == 0 }

// Coord returns the rank's node coordinate.
func (r *Rank) Coord() geometry.Coord { return r.node.HW.Coord }

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// Machine returns the underlying machine.
func (r *Rank) Machine() *machine.Machine { return r.w.M }

// Node returns the rank's node devices.
func (r *Rank) Node() *machine.Node { return r.node }

// Proc returns the rank's simulated process. Algorithm implementations use
// it to consume core time.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// CNK returns the rank's process-window state.
func (r *Rank) CNK() *cnk.Process { return r.cnk }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// RankOf returns the global rank of the process with the given local rank on
// node nodeID.
func (r *Rank) RankOf(nodeID, lrank int) int {
	return nodeID*r.LocalSize() + lrank
}

// LocalPeer returns this node's rank with the given local rank.
func (r *Rank) LocalPeer(lrank int) *Rank {
	return r.w.ranks[r.RankOf(r.nodeID, lrank)]
}

// NewBuf allocates a message buffer honoring the world's functional mode.
func (r *Rank) NewBuf(n int) data.Buf { return data.New(n, r.w.M.Cfg.Functional) }

// NextSeq advances and returns the rank's collective sequence number. All
// ranks must issue collectives in the same order (an MPI requirement), so
// equal sequence numbers identify the same operation across ranks.
func (r *Rank) NextSeq() int64 {
	r.seq++
	return r.seq
}

// NodeShared returns this node's shared state for collective seq, created by
// the first arriving local rank. Every local rank must call ReleaseNodeShared
// when done with it.
func (r *Rank) NodeShared(seq int64, kind string, create func() any) any {
	return r.w.shared(r.nodeID, seq, kind, r.LocalSize(), create)
}

// ReleaseNodeShared drops the rank's reference from NodeShared state.
func (r *Rank) ReleaseNodeShared(seq int64, kind string) {
	r.w.release(r.nodeID, seq, kind)
}

// WorldShared returns job-wide shared state for collective seq; all ranks
// must release it.
func (r *Rank) WorldShared(seq int64, kind string, create func() any) any {
	return r.w.shared(worldScope, seq, kind, r.Size(), create)
}

// ReleaseWorldShared drops the rank's reference from WorldShared state.
func (r *Rank) ReleaseWorldShared(seq int64, kind string) {
	r.w.release(worldScope, seq, kind)
}

// Barrier synchronizes all ranks over the global interrupt network.
func (r *Rank) Barrier() {
	seq := r.NextSeq()
	st := r.WorldShared(seq, "barrier", func() any {
		return &barrierState{ev: r.w.M.K.NewEvent(fmt.Sprintf("barrier%d", seq))}
	}).(*barrierState)
	st.arrived++
	if st.arrived == r.Size() {
		r.w.M.K.After(r.w.M.Cfg.Params.BarrierLatency, st.ev.Fire)
	}
	r.proc.Wait(st.ev)
	r.ReleaseWorldShared(seq, "barrier")
}

// BarrierThen is the explicit-resume form of Barrier: done runs once all
// ranks have arrived and the interrupt-network latency has elapsed.
func (r *Rank) BarrierThen(done func()) {
	seq := r.NextSeq()
	st := r.WorldShared(seq, "barrier", func() any {
		return &barrierState{ev: r.w.M.K.NewEvent(fmt.Sprintf("barrier%d", seq))}
	}).(*barrierState)
	st.arrived++
	if st.arrived == r.Size() {
		r.w.M.K.After(r.w.M.Cfg.Params.BarrierLatency, st.ev.Fire)
	}
	r.proc.WaitThen(st.ev, func() {
		r.ReleaseWorldShared(seq, "barrier")
		done()
	})
}

type barrierState struct {
	arrived int
	ev      *sim.Event
}
