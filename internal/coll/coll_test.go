package coll

import (
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

func init() { Register() }

func testConfig(dx, dy, dz int, mode hw.Mode) hw.Config {
	cfg := hw.DefaultConfig()
	cfg.Torus = geometry.Torus{DX: dx, DY: dy, DZ: dz}
	cfg.Mode = mode
	return cfg
}

// runBcast broadcasts a filled buffer from root with the given algorithm and
// verifies every rank ends up with the payload. Returns the virtual time.
func runBcast(t *testing.T, cfg hw.Config, algo string, msg, root int) sim.Time {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Bcast = algo
	want := data.New(msg, true)
	want.Fill(uint64(msg) + 1)
	elapsed, err := w.Run(func(r *mpi.Rank) {
		buf := r.NewBuf(msg)
		if r.Rank() == root {
			buf.Fill(uint64(msg) + 1)
		}
		r.Bcast(buf, root)
		if cfg.Functional && !data.Equal(buf, want) {
			t.Errorf("algo %s: rank %d has wrong payload", algo, r.Rank())
		}
	})
	if err != nil {
		t.Fatalf("algo %s: %v", algo, err)
	}
	return elapsed
}

var quadBcastAlgos = []string{
	mpi.BcastTorusDirectPut,
	mpi.BcastTorusShaddr,
	mpi.BcastTorusFIFO,
	mpi.BcastTreeShmem,
	mpi.BcastTreeDMAFIFO,
	mpi.BcastTreeDMADirect,
	mpi.BcastTreeShaddr,
}

func TestBcastAllAlgorithmsQuadCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	for _, algo := range quadBcastAlgos {
		for _, msg := range []int{64, 8 << 10, 200 << 10} {
			runBcast(t, cfg, algo, msg, 0)
		}
	}
}

func TestBcastSMPAlgorithmsCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.SMP)
	for _, algo := range []string{mpi.BcastTreeSMP, mpi.BcastTorusDirectPut} {
		for _, msg := range []int{64, 128 << 10} {
			runBcast(t, cfg, algo, msg, 0)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	for _, algo := range quadBcastAlgos {
		runBcast(t, cfg, algo, 32<<10, 9) // node 2, local rank 1
	}
}

func TestBcastAutoSelection(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	runBcast(t, cfg, "", 512, 0)     // tree.shmem range
	runBcast(t, cfg, "", 32<<10, 0)  // tree.shaddr range
	runBcast(t, cfg, "", 512<<10, 0) // torus.shaddr range
}

func TestBcastRepeatedCallsIndependent(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Bcast = mpi.BcastTorusShaddr
	if _, err := w.Run(func(r *mpi.Rank) {
		buf := r.NewBuf(16 << 10)
		for iter := 0; iter < 3; iter++ {
			if r.Rank() == 0 {
				buf.Fill(uint64(iter))
			}
			r.Bcast(buf, 0)
			want := data.New(16<<10, true)
			want.Fill(uint64(iter))
			if !data.Equal(buf, want) {
				t.Errorf("iteration %d: rank %d corrupted", iter, r.Rank())
			}
			r.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusShaddrBeatsDirectPutLarge(t *testing.T) {
	// The paper's headline: quad-mode shared-address broadcast is ~2.9x the
	// DMA-only broadcast at 2 MB. At this small test scale we only require
	// a clear win; the benchmark harness checks the factor at paper scale.
	cfg := testConfig(4, 4, 2, hw.Quad)
	cfg.Functional = false
	msg := 2 << 20
	direct := runBcast(t, cfg, mpi.BcastTorusDirectPut, msg, 0)
	shaddr := runBcast(t, cfg, mpi.BcastTorusShaddr, msg, 0)
	if shaddr >= direct {
		t.Fatalf("shaddr %v not faster than direct put %v", shaddr, direct)
	}
	if ratio := float64(direct) / float64(shaddr); ratio < 1.5 {
		t.Fatalf("shaddr speedup %.2fx, want > 1.5x", ratio)
	}
}

func TestTorusFIFOBetweenShaddrAndDirectPut(t *testing.T) {
	cfg := testConfig(4, 4, 2, hw.Quad)
	cfg.Functional = false
	msg := 2 << 20
	direct := runBcast(t, cfg, mpi.BcastTorusDirectPut, msg, 0)
	fifo := runBcast(t, cfg, mpi.BcastTorusFIFO, msg, 0)
	shaddr := runBcast(t, cfg, mpi.BcastTorusShaddr, msg, 0)
	if !(shaddr <= fifo && fifo < direct) {
		t.Fatalf("expected shaddr <= fifo < directput, got %v, %v, %v", shaddr, fifo, direct)
	}
}

func TestTreeShaddrBeatsDMAVariantsMedium(t *testing.T) {
	cfg := testConfig(4, 4, 2, hw.Quad)
	cfg.Functional = false
	msg := 128 << 10
	shaddr := runBcast(t, cfg, mpi.BcastTreeShaddr, msg, 0)
	fifo := runBcast(t, cfg, mpi.BcastTreeDMAFIFO, msg, 0)
	direct := runBcast(t, cfg, mpi.BcastTreeDMADirect, msg, 0)
	shmem := runBcast(t, cfg, mpi.BcastTreeShmem, msg, 0)
	if shaddr >= fifo || shaddr >= direct || shaddr >= shmem {
		t.Fatalf("tree shaddr %v not fastest (fifo %v direct %v shmem %v)",
			shaddr, fifo, direct, shmem)
	}
	// Direct put avoids the peers' FIFO copy, so it should not lose.
	if direct > fifo {
		t.Fatalf("dma direct %v slower than dma fifo %v", direct, fifo)
	}
}

func TestTreeShmemBestLatency(t *testing.T) {
	// For short messages the shared-memory segment algorithm beats the DMA
	// variants (Fig. 6) because it avoids DMA startup on the critical path.
	cfg := testConfig(4, 4, 2, hw.Quad)
	cfg.Functional = false
	msg := 64
	shmem := runBcast(t, cfg, mpi.BcastTreeShmem, msg, 0)
	fifo := runBcast(t, cfg, mpi.BcastTreeDMAFIFO, msg, 0)
	if shmem >= fifo {
		t.Fatalf("tree shmem latency %v not below dma fifo %v", shmem, fifo)
	}
	// SMP-mode reference: quad shmem should cost well under a microsecond
	// extra (paper: +0.4 us).
	cfgSMP := testConfig(4, 4, 2, hw.SMP)
	cfgSMP.Functional = false
	smp := runBcast(t, cfgSMP, mpi.BcastTreeSMP, msg, 0)
	overhead := shmem - smp
	if overhead <= 0 || overhead > sim.Microseconds(1.0) {
		t.Fatalf("quad shmem overhead over SMP = %v, want (0, 1us]", overhead)
	}
}

// runAllreduce checks a float64 sum allreduce with the given algorithm.
func runAllreduce(t *testing.T, cfg hw.Config, algo string, doubles int) sim.Time {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Allreduce = algo
	size := cfg.Ranks()
	elapsed, err := w.Run(func(r *mpi.Rank) {
		send := r.NewBuf(doubles * data.Float64Len)
		recv := r.NewBuf(doubles * data.Float64Len)
		if send.IsReal() {
			vals := make([]float64, doubles)
			for i := range vals {
				vals[i] = float64(r.Rank() + 1)
			}
			send.PutFloats(vals)
		}
		r.AllreduceSum(send, recv)
		if recv.IsReal() {
			want := float64(size*(size+1)) / 2
			for i, v := range recv.Floats() {
				if v != want {
					t.Errorf("algo %s rank %d elem %d = %v, want %v", algo, r.Rank(), i, v, want)
					break
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("algo %s: %v", algo, err)
	}
	return elapsed
}

func TestAllreduceBothAlgorithmsCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	for _, algo := range []string{mpi.AllreduceTorusNew, mpi.AllreduceTorusCurrent} {
		for _, doubles := range []int{8, 1024, 16 << 10} {
			runAllreduce(t, cfg, algo, doubles)
		}
	}
}

func TestAllreduceSMPCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.SMP)
	runAllreduce(t, cfg, mpi.AllreduceTorusCurrent, 2048)
	runAllreduce(t, cfg, mpi.AllreduceTorusNew, 2048)
}

func TestAllreduceNewBeatsCurrent(t *testing.T) {
	// Table I: the shared-address core-specialized allreduce wins for large
	// messages (~33% at 512K doubles at paper scale).
	cfg := testConfig(4, 4, 2, hw.Quad)
	cfg.Functional = false
	doubles := 128 << 10
	current := runAllreduce(t, cfg, mpi.AllreduceTorusCurrent, doubles)
	new_ := runAllreduce(t, cfg, mpi.AllreduceTorusNew, doubles)
	if new_ >= current {
		t.Fatalf("new %v not faster than current %v", new_, current)
	}
}

func TestGatherCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const block = 512
	root := 3
	if _, err := w.Run(func(r *mpi.Rank) {
		send := r.NewBuf(block)
		send.Fill(uint64(r.Rank()))
		var recv data.Buf
		if r.Rank() == root {
			recv = r.NewBuf(block * r.Size())
		}
		r.Gather(send, recv, root)
		if r.Rank() == root {
			for src := 0; src < r.Size(); src++ {
				want := data.New(block, true)
				want.Fill(uint64(src))
				if !data.Equal(recv.Slice(src*block, block), want) {
					t.Errorf("gather block %d corrupted", src)
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const block = 256
	if _, err := w.Run(func(r *mpi.Rank) {
		send := r.NewBuf(block)
		send.Fill(uint64(r.Rank()))
		recv := r.NewBuf(block * r.Size())
		r.Allgather(send, recv)
		for src := 0; src < r.Size(); src++ {
			want := data.New(block, true)
			want.Fill(uint64(src))
			if !data.Equal(recv.Slice(src*block, block), want) {
				t.Errorf("rank %d: allgather block %d corrupted", r.Rank(), src)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBcastDeterministic(t *testing.T) {
	cfg := testConfig(3, 2, 2, hw.Quad)
	cfg.Functional = false
	for _, algo := range quadBcastAlgos {
		a := runBcast(t, cfg, algo, 96<<10, 0)
		b := runBcast(t, cfg, algo, 96<<10, 0)
		if a != b {
			t.Errorf("algo %s not deterministic: %v vs %v", algo, a, b)
		}
	}
}

func TestBcastTimeMonotoneInSize(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	cfg.Functional = false
	for _, algo := range quadBcastAlgos {
		var prev sim.Time
		for _, msg := range []int{8 << 10, 64 << 10, 512 << 10} {
			el := runBcast(t, cfg, algo, msg, 0)
			if el <= prev {
				t.Errorf("algo %s: time not increasing with size (%v then %v)", algo, prev, el)
			}
			prev = el
		}
	}
}

func TestShaddrMappingCacheAcrossIterations(t *testing.T) {
	// Repeated broadcasts with the same buffer must hit the process-window
	// mapping cache after the first iteration (Fig. 8 "caching").
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Bcast = mpi.BcastTorusShaddr
	if _, err := w.Run(func(r *mpi.Rank) {
		buf := r.NewBuf(32 << 10)
		for i := 0; i < 4; i++ {
			r.Bcast(buf, 0)
			r.Barrier()
		}
		if r.LocalRank() != 0 && r.Rank() != 0 {
			if r.CNK().Syscalls != 2 {
				t.Errorf("rank %d issued %d syscalls, want 2 (mapped once)", r.Rank(), r.CNK().Syscalls)
			}
			if r.CNK().CacheHits != 3 {
				t.Errorf("rank %d cache hits = %d, want 3", r.Rank(), r.CNK().CacheHits)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
