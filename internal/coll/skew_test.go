package coll

import (
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// skew returns a deterministic pseudo-random entry delay for a rank, up to
// maxUS microseconds. Collectives must tolerate ranks arriving at different
// times (no barrier inside MPI_Bcast/MPI_Allreduce semantics).
func skew(rank, round int, maxUS int64) sim.Time {
	x := uint64(rank*2654435761) ^ uint64(round*40503)
	x ^= x >> 13
	x *= 2685821657736338717
	x ^= x >> 37
	return sim.Time(int64(x%uint64(maxUS))) * sim.Microsecond
}

func TestBcastWithArrivalSkew(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	for _, algo := range quadBcastAlgos {
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Tunables.Bcast = algo
		const msg = 48 << 10
		if _, err := w.Run(func(r *mpi.Rank) {
			for round := 0; round < 3; round++ {
				r.Proc().Sleep(skew(r.Rank(), round, 200))
				buf := r.NewBuf(msg)
				if r.Rank() == 0 {
					buf.Fill(uint64(round) + 11)
				}
				r.Bcast(buf, 0)
				want := data.New(msg, true)
				want.Fill(uint64(round) + 11)
				if !data.Equal(buf, want) {
					t.Errorf("%s round %d: rank %d corrupted under skew", algo, round, r.Rank())
				}
				r.Barrier()
			}
		}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestAllreduceWithArrivalSkew(t *testing.T) {
	cfg := testConfig(2, 2, 2, hw.Quad)
	for _, algo := range []string{mpi.AllreduceTorusNew, mpi.AllreduceTorusCurrent} {
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Tunables.Allreduce = algo
		const doubles = 512
		size := cfg.Ranks()
		if _, err := w.Run(func(r *mpi.Rank) {
			r.Proc().Sleep(skew(r.Rank(), 7, 300))
			send := r.NewBuf(doubles * data.Float64Len)
			recv := r.NewBuf(doubles * data.Float64Len)
			vals := make([]float64, doubles)
			for i := range vals {
				vals[i] = float64(r.Rank() + 1)
			}
			send.PutFloats(vals)
			r.AllreduceSum(send, recv)
			want := float64(size*(size+1)) / 2
			if got := recv.Floats()[0]; got != want {
				t.Errorf("%s: rank %d sum %v under skew, want %v", algo, r.Rank(), got, want)
			}
		}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

// TestSkewExtendsLatencyNotCorrupts: a single extreme straggler delays
// completion by roughly its lateness (collectives gate on all participants)
// without deadlock or data corruption.
func TestStragglerDominatesLatency(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	cfg.Functional = false
	const late = 10 * sim.Millisecond
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Allreduce = mpi.AllreduceTorusNew
	elapsed, err := w.Run(func(r *mpi.Rank) {
		if r.Rank() == 5 {
			r.Proc().Sleep(late)
		}
		send := r.NewBuf(1024 * data.Float64Len)
		recv := r.NewBuf(1024 * data.Float64Len)
		r.AllreduceSum(send, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < late {
		t.Fatalf("allreduce finished at %v, before the straggler arrived", elapsed)
	}
	if elapsed > late+5*sim.Millisecond {
		t.Fatalf("straggler cost %v beyond its lateness", elapsed-late)
	}
}
