package coll

import (
	"fmt"

	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// Both allreduce algorithms are written in explicit-resume (program) style:
// recursive continuation closures replace the blocking chunk loops, so
// program-mode ranks run them without goroutines while goroutine-backed
// ranks execute the identical bodies synchronously.

// allreduceColors is the color count of the torus allreduce: the reduce
// phase runs on the reversed-direction links of each color's broadcast tree,
// so only the three positive-direction colors can run concurrently (§V-C).
const allreduceColors = 3

// allreduceState is the job-wide shared state of one torus allreduce.
type allreduceState struct {
	exec *ccmi.Allreduce

	// Per node.
	contrib [][]*sim.Counter // [node][color]: locally reduced bytes ready
	scratch []data.Buf       // node contribution vector (master-owned)
	result  []data.Buf       // master's receive buffer (the network target)
	dels    []*ccmi.Delivery
	proto   []*sim.Pipe    // the master core as protocol processor
	ready   []*sim.Counter // local ranks that registered their send buffers
	peer    [][]*sim.Counter
	stage   [][]*sim.Counter // [node][lrank]: staged bytes DMA-delivered to that core

	sends []data.Buf // per rank: registered send buffers
}

const allreduceKind = "allreduce"

// getAllreduceState builds the shared state. protoCores scales the protocol
// pipe: the current algorithm spreads network combining over the node's MPI
// progress engines, while the proposed design dedicates exactly one core
// ("a dedicated core performs allreduce protocol processing").
func getAllreduceState(r *mpi.Rank, seq int64, bytes int, protoCores float64) *allreduceState {
	return r.WorldShared(seq, allreduceKind, func() any {
		return newAllreduceShared(r, seq, bytes, protoCores)
	}).(*allreduceState)
}

// newAllreduceShared allocates the per-node counters, buffers, deliveries
// and protocol pipes shared by the allreduce-family collectives.
func newAllreduceShared(r *mpi.Rank, seq int64, bytes int, protoCores float64) *allreduceState {
	{
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		functional := m.Cfg.Functional
		cached := m.Nodes[0].HW.Cached((2*ppn + 2) * bytes)
		rate := m.Cfg.Params.ReduceBps
		if !cached {
			rate = m.Cfg.Params.ReduceDRAMBps
		}
		rate *= protoCores
		st := &allreduceState{
			contrib: make([][]*sim.Counter, nodes),
			scratch: make([]data.Buf, nodes),
			result:  make([]data.Buf, nodes),
			dels:    make([]*ccmi.Delivery, nodes),
			proto:   make([]*sim.Pipe, nodes),
			ready:   make([]*sim.Counter, nodes),
			peer:    make([][]*sim.Counter, nodes),
			stage:   make([][]*sim.Counter, nodes),
			sends:   make([]data.Buf, m.Cfg.Ranks()),
		}
		for n := 0; n < nodes; n++ {
			st.contrib[n] = make([]*sim.Counter, allreduceColors)
			for c := range st.contrib[n] {
				st.contrib[n][c] = m.K.NewCounter(fmt.Sprintf("ar%d.contrib%d.%d", seq, n, c))
			}
			st.scratch[n] = data.New(bytes, functional)
			st.result[n] = data.New(bytes, functional)
			st.dels[n] = ccmi.NewDelivery(m.K, fmt.Sprintf("ar%d.del%d", seq, n))
			st.proto[n] = m.K.NewPipe(fmt.Sprintf("ar%d.proto%d", seq, n), rate, 0)
			st.ready[n] = m.K.NewCounter("ready")
			st.peer[n] = make([]*sim.Counter, ppn)
			st.stage[n] = make([]*sim.Counter, ppn)
			for p := 0; p < ppn; p++ {
				if p > 0 {
					st.peer[n][p] = m.K.NewCounter("ardone")
				}
				st.stage[n][p] = m.K.NewCounter("arstage")
			}
		}
		return st
	}
}

// startAllreduceNetwork launches the network schedule. Exactly one rank
// (global rank 0, the schedule root's master) starts it.
func startAllreduceNetwork(r *mpi.Rank, st *allreduceState, bytes int) {
	m := r.Machine()
	st.exec = &ccmi.Allreduce{
		M:           m,
		Root:        m.Geom.CoordOf(0),
		Bytes:       bytes,
		Colors:      geometry.Colors(allreduceColors),
		Lane0:       6,
		Contrib:     st.contrib,
		ContribBufs: st.scratch,
		ResultBufs:  st.result,
		Deliveries:  st.dels,
		ProtoPipes:  st.proto,
	}
	st.exec.Run()
}

// allreduceFinish builds the completion continuation both algorithms end
// with: install the reduced result, release the shared state (the position
// the blocking form's defer ran at), then continue.
func allreduceFinish(r *mpi.Rank, st *allreduceState, seq int64, recv data.Buf, done func()) func() {
	return func() {
		installPayload(recv, st.result[r.NodeID()])
		r.ReleaseWorldShared(seq, allreduceKind)
		done()
	}
}

// allreduceShaddr is the proposed algorithm (paper §V-C): core 0 runs the
// network protocol; cores 1..3 each locally reduce one color partition of
// the four application buffers through process windows, feeding the network
// pipeline chunk by chunk, and later copy the full result into their own
// buffers.
func allreduceShaddr(r *mpi.Rank, send, recv data.Buf, done func()) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := getAllreduceState(r, seq, bytes, 1)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)
	finish := allreduceFinish(r, st, seq, recv, done)

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == 0 {
		startAllreduceNetwork(r, st, bytes)
	}

	if ppn == 1 {
		allreduceSMPRankThen(r, st, bytes, send, finish)
		return
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	del := st.dels[node]

	switch lr := r.LocalRank(); lr {
	case 0:
		// Protocol core: the ccmi schedule charges its combine work to
		// st.proto[node]; the rank just owns the result buffer and waits.
		r.Proc().WaitGEThen(del.Counter, int64(bytes), finish)

	default:
		color := lr - 1
		if color >= allreduceColors {
			color = allreduceColors - 1 // quad mode has exactly 3 peers
		}
		part := lens[color]
		p := r.Proc()

		// Phase closures, innermost first. drainCopy copies the full
		// reduced result from the master's receive buffer into this rank's
		// buffer as it arrives.
		drainCopy := func() {
			spanIdx := 0
			var outer func(seen int)
			outer = func(seen int) {
				if seen >= bytes {
					finish()
					return
				}
				p.WaitGEThen(del.Counter, int64(seen)+1, func() {
					r.Node().HW.PollThen(p, func() {
						spans := del.Drain(&spanIdx)
						var copyNext func(j, seen int)
						copyNext = func(j, seen int) {
							if j == len(spans) {
								outer(seen)
								return
							}
							r.Node().HW.CopyThen(p, spans[j].Len, cached, func() {
								copyNext(j+1, seen+spans[j].Len)
							})
						}
						copyNext(0, seen)
					})
				})
			}
			outer(0)
		}
		// reduceColor pipelines one color partition chunk by chunk into the
		// network schedule: sum the four application buffers (three
		// accumulation passes).
		reduceColor := func(c, part int, k func()) {
			chunks := m.Cfg.Params.Chunks(part)
			var step func(j int)
			step = func(j int) {
				if j == len(chunks) {
					k()
					return
				}
				chunk := chunks[j]
				r.Node().HW.ReduceThen(p, (ppn-1)*chunk.Len, cached, func() {
					foldLocal(st, r, node, offs[c]+chunk.Off, chunk.Len)
					st.contrib[node][c].Add(int64(chunk.Len))
					step(j + 1)
				})
			}
			step(0)
		}
		// Feed any colors without an owning core (fewer peers than colors
		// cannot happen in quad mode; guard for dual).
		extraColors := func(k func()) {
			if lr != ppn-1 {
				k()
				return
			}
			var next func(c int)
			next = func(c int) {
				if c >= allreduceColors {
					k()
					return
				}
				reduceColor(c, lens[c], func() { next(c + 1) })
			}
			next(ppn - 1)
		}

		// Wait for all local ranks to enter (their buffers must be
		// readable) and map the three peer send buffers.
		p.WaitGEThen(st.ready[node], int64(ppn), func() {
			var mapNext func(pi int)
			mapNext = func(pi int) {
				if pi >= ppn {
					reduceColor(color, part, func() { extraColors(drainCopy) })
					return
				}
				if pi == lr {
					mapNext(pi + 1)
					return
				}
				r.CNK().MapThen(p, windowKey(pi, st.sends[r.RankOf(node, pi)]), bytes, func() {
					mapNext(pi + 1)
				})
			}
			mapNext(0)
		})
	}
}

// foldLocal installs the functional node-local sum for one byte range of the
// scratch buffer: scratch[range] = sum over local ranks of send[range].
func foldLocal(st *allreduceState, r *mpi.Rank, node, off, n int) {
	scratch := st.scratch[node]
	if scratch.Len() == 0 || n == 0 || !scratch.IsReal() {
		return
	}
	first := true
	for p := 0; p < r.LocalSize(); p++ {
		send := st.sends[r.RankOf(node, p)]
		if send.Len() == 0 {
			continue
		}
		if first {
			data.Copy(scratch.Slice(off, n), send.Slice(off, n))
			first = false
		} else {
			data.AddFloats(scratch.Slice(off, n), send.Slice(off, n))
		}
	}
}

// allreduceCurrent is the production algorithm (paper §V-C): the intra-node
// reduce and broadcast phases move every buffer through the DMA, and the
// master core performs both the local reduction and the network protocol —
// the two contention points the shared-address design removes.
func allreduceCurrent(r *mpi.Rank, send, recv data.Buf, done func()) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := getAllreduceState(r, seq, bytes, 2)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()
	finish := allreduceFinish(r, st, seq, recv, done)

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == 0 {
		startAllreduceNetwork(r, st, bytes)
	}

	if ppn == 1 {
		allreduceSMPRankThen(r, st, bytes, send, finish)
		return
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	del := st.dels[node]
	chunks := m.Cfg.Params.Chunks(bytes)
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)
	p := r.Proc()

	// Local reduce: a pipelined chain through the cores. Rank ppn-1's data
	// is DMA-copied into rank ppn-2's staging, that core adds its own data
	// and the DMA forwards the partial, until the accumulated partial lands
	// at the master. Every byte crosses the DMA ppn-1 times — the redundant
	// copies the paper calls out — and the final accumulation runs on the
	// master core, which is simultaneously the network protocol core.
	lr := r.LocalRank()
	if lr == ppn-1 {
		// Chain head: ship own chunks to the next core.
		p.WaitGEThen(st.ready[node], int64(ppn), func() {
			var step func(j int)
			step = func(j int) {
				if j == len(chunks) {
					p.WaitGEThen(st.peer[node][lr], int64(bytes), finish)
					return
				}
				chunk := chunks[j]
				putDone := r.Node().DMA.LocalCopy(r.Now(), chunk.Len)
				cnt := st.stage[node][lr-1]
				n := int64(chunk.Len)
				m.K.At(putDone, func() { cnt.Add(n) })
				p.SleepUntilThen(putDone, func() { step(j + 1) })
			}
			step(0)
		})
	} else if lr > 0 {
		// Chain middle: combine the inbound partial with own data and
		// forward.
		var step func(j int, got int64)
		step = func(j int, got int64) {
			if j == len(chunks) {
				p.WaitGEThen(st.peer[node][lr], int64(bytes), finish)
				return
			}
			chunk := chunks[j]
			g := got + int64(chunk.Len)
			p.WaitGEThen(st.stage[node][lr], g, func() {
				r.Node().HW.ReduceThen(p, chunk.Len, cached, func() {
					putDone := r.Node().DMA.LocalCopy(r.Now(), chunk.Len)
					cnt := st.stage[node][lr-1]
					n := int64(chunk.Len)
					m.K.At(putDone, func() { cnt.Add(n) })
					step(j+1, g)
				})
			})
		}
		step(0, 0)
	} else {
		// Master: final accumulation on the protocol core, then the DMA
		// distributes arriving results to the peers.
		distribute := func() {
			spanIdx := 0
			var outer func(seen int)
			outer = func(seen int) {
				if seen >= bytes {
					finish()
					return
				}
				p.WaitGEThen(del.Counter, int64(seen)+1, func() {
					for _, span := range del.Drain(&spanIdx) {
						for pi := 1; pi < ppn; pi++ {
							putDone := r.Node().DMA.LocalCopy(r.Now(), span.Len)
							cnt := st.peer[node][pi]
							n := int64(span.Len)
							m.K.At(putDone, func() { cnt.Add(n) })
						}
						seen += span.Len
					}
					outer(seen)
				})
			}
			outer(0)
		}
		var step func(j int, got int64, acc int)
		step = func(j int, got int64, acc int) {
			if j == len(chunks) {
				distribute()
				return
			}
			chunk := chunks[j]
			g := got + int64(chunk.Len)
			p.WaitGEThen(st.stage[node][0], g, func() {
				reduceDone := st.proto[node].Reserve(chunk.Len)
				p.SleepUntilThen(reduceDone, func() {
					foldLocal(st, r, node, chunk.Off, chunk.Len)
					a := acc + chunk.Len
					feedContribAbsolute(st, node, a, offs, lens)
					step(j+1, g, a)
				})
			})
		}
		step(0, 0, 0)
	}
}

// feedContribAbsolute translates linear local-reduce progress (bytes from
// offset zero) into the per-color contribution counters.
func feedContribAbsolute(st *allreduceState, node, done int, offs, lens []int) {
	for c := 0; c < allreduceColors; c++ {
		have := done - offs[c]
		if have < 0 {
			have = 0
		}
		if have > lens[c] {
			have = lens[c]
		}
		if delta := int64(have) - st.contrib[node][c].Value(); delta > 0 {
			st.contrib[node][c].Add(delta)
		}
	}
}

// allreduceSMPRankThen is the SMP-mode path shared by both algorithms: one
// rank per node contributes its buffer directly and waits for the result.
// finish installs the payload and releases the shared state.
func allreduceSMPRankThen(r *mpi.Rank, st *allreduceState, bytes int, send data.Buf, finish func()) {
	node := r.NodeID()
	_, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	// The node contribution is the send buffer itself; install it and
	// declare every color ready.
	if st.scratch[node].IsReal() && send.IsReal() && st.scratch[node].Len() == send.Len() {
		data.Copy(st.scratch[node], send)
	}
	for c := 0; c < allreduceColors; c++ {
		st.contrib[node][c].Add(int64(lens[c]))
	}
	r.Proc().WaitGEThen(st.dels[node].Counter, int64(bytes), finish)
}
