package coll

import (
	"fmt"

	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// allreduceColors is the color count of the torus allreduce: the reduce
// phase runs on the reversed-direction links of each color's broadcast tree,
// so only the three positive-direction colors can run concurrently (§V-C).
const allreduceColors = 3

// allreduceState is the job-wide shared state of one torus allreduce.
type allreduceState struct {
	exec *ccmi.Allreduce

	// Per node.
	contrib [][]*sim.Counter // [node][color]: locally reduced bytes ready
	scratch []data.Buf       // node contribution vector (master-owned)
	result  []data.Buf       // master's receive buffer (the network target)
	dels    []*ccmi.Delivery
	proto   []*sim.Pipe    // the master core as protocol processor
	ready   []*sim.Counter // local ranks that registered their send buffers
	peer    [][]*sim.Counter
	stage   [][]*sim.Counter // [node][lrank]: staged bytes DMA-delivered to that core

	sends []data.Buf // per rank: registered send buffers
}

const allreduceKind = "allreduce"

// getAllreduceState builds the shared state. protoCores scales the protocol
// pipe: the current algorithm spreads network combining over the node's MPI
// progress engines, while the proposed design dedicates exactly one core
// ("a dedicated core performs allreduce protocol processing").
func getAllreduceState(r *mpi.Rank, seq int64, bytes int, protoCores float64) *allreduceState {
	return r.WorldShared(seq, allreduceKind, func() any {
		return newAllreduceShared(r, seq, bytes, protoCores)
	}).(*allreduceState)
}

// newAllreduceShared allocates the per-node counters, buffers, deliveries
// and protocol pipes shared by the allreduce-family collectives.
func newAllreduceShared(r *mpi.Rank, seq int64, bytes int, protoCores float64) *allreduceState {
	{
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		functional := m.Cfg.Functional
		cached := m.Nodes[0].HW.Cached((2*ppn + 2) * bytes)
		rate := m.Cfg.Params.ReduceBps
		if !cached {
			rate = m.Cfg.Params.ReduceDRAMBps
		}
		rate *= protoCores
		st := &allreduceState{
			contrib: make([][]*sim.Counter, nodes),
			scratch: make([]data.Buf, nodes),
			result:  make([]data.Buf, nodes),
			dels:    make([]*ccmi.Delivery, nodes),
			proto:   make([]*sim.Pipe, nodes),
			ready:   make([]*sim.Counter, nodes),
			peer:    make([][]*sim.Counter, nodes),
			stage:   make([][]*sim.Counter, nodes),
			sends:   make([]data.Buf, m.Cfg.Ranks()),
		}
		for n := 0; n < nodes; n++ {
			st.contrib[n] = make([]*sim.Counter, allreduceColors)
			for c := range st.contrib[n] {
				st.contrib[n][c] = m.K.NewCounter(fmt.Sprintf("ar%d.contrib%d.%d", seq, n, c))
			}
			st.scratch[n] = data.New(bytes, functional)
			st.result[n] = data.New(bytes, functional)
			st.dels[n] = ccmi.NewDelivery(m.K, fmt.Sprintf("ar%d.del%d", seq, n))
			st.proto[n] = m.K.NewPipe(fmt.Sprintf("ar%d.proto%d", seq, n), rate, 0)
			st.ready[n] = m.K.NewCounter("ready")
			st.peer[n] = make([]*sim.Counter, ppn)
			st.stage[n] = make([]*sim.Counter, ppn)
			for p := 0; p < ppn; p++ {
				if p > 0 {
					st.peer[n][p] = m.K.NewCounter("ardone")
				}
				st.stage[n][p] = m.K.NewCounter("arstage")
			}
		}
		return st
	}
}

// startAllreduceNetwork launches the network schedule. Exactly one rank
// (global rank 0, the schedule root's master) starts it.
func startAllreduceNetwork(r *mpi.Rank, st *allreduceState, bytes int) {
	m := r.Machine()
	st.exec = &ccmi.Allreduce{
		M:           m,
		Root:        m.Geom.CoordOf(0),
		Bytes:       bytes,
		Colors:      geometry.Colors(allreduceColors),
		Lane0:       6,
		Contrib:     st.contrib,
		ContribBufs: st.scratch,
		ResultBufs:  st.result,
		Deliveries:  st.dels,
		ProtoPipes:  st.proto,
	}
	st.exec.Run()
}

// allreduceShaddr is the proposed algorithm (paper §V-C): core 0 runs the
// network protocol; cores 1..3 each locally reduce one color partition of
// the four application buffers through process windows, feeding the network
// pipeline chunk by chunk, and later copy the full result into their own
// buffers.
func allreduceShaddr(r *mpi.Rank, send, recv data.Buf) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := getAllreduceState(r, seq, bytes, 1)
	defer r.ReleaseWorldShared(seq, allreduceKind)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == 0 {
		startAllreduceNetwork(r, st, bytes)
	}

	if ppn == 1 {
		allreduceSMPRank(r, st, bytes, send, recv)
		return
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	del := st.dels[node]

	switch lr := r.LocalRank(); lr {
	case 0:
		// Protocol core: the ccmi schedule charges its combine work to
		// st.proto[node]; the rank just owns the result buffer and waits.
		r.Proc().WaitGE(del.Counter, int64(bytes))

	default:
		color := lr - 1
		if color >= allreduceColors {
			color = allreduceColors - 1 // quad mode has exactly 3 peers
		}
		part := lens[color]
		// Wait for all local ranks to enter (their buffers must be
		// readable) and map the three peer send buffers.
		r.Proc().WaitGE(st.ready[node], int64(ppn))
		for p := 0; p < ppn; p++ {
			if p != lr {
				r.CNK().Map(r.Proc(), windowKey(p, st.sends[r.RankOf(node, p)]), bytes)
			}
		}
		// Local reduce of this color's partition, pipelined chunk by
		// chunk into the network schedule: sum the four application
		// buffers (three accumulation passes).
		for _, chunk := range m.Cfg.Params.Chunks(part) {
			r.Node().HW.Reduce(r.Proc(), (ppn-1)*chunk.Len, cached)
			foldLocal(st, r, node, offs[color]+chunk.Off, chunk.Len)
			st.contrib[node][color].Add(int64(chunk.Len))
		}
		// Feed any colors without an owning core (fewer peers than
		// colors cannot happen in quad mode; guard for dual).
		if lr == ppn-1 {
			for c := ppn - 1; c < allreduceColors; c++ {
				for _, chunk := range m.Cfg.Params.Chunks(lens[c]) {
					r.Node().HW.Reduce(r.Proc(), (ppn-1)*chunk.Len, cached)
					foldLocal(st, r, node, offs[c]+chunk.Off, chunk.Len)
					st.contrib[node][c].Add(int64(chunk.Len))
				}
			}
		}
		// Copy the full reduced result from the master's receive buffer
		// into this rank's buffer as it arrives.
		spanIdx := 0
		for seen := 0; seen < bytes; {
			r.Proc().WaitGE(del.Counter, int64(seen)+1)
			r.Node().HW.Poll(r.Proc())
			for _, span := range del.Drain(&spanIdx) {
				r.Node().HW.Copy(r.Proc(), span.Len, cached)
				seen += span.Len
			}
		}
	}
	installPayload(recv, st.result[node])
}

// foldLocal installs the functional node-local sum for one byte range of the
// scratch buffer: scratch[range] = sum over local ranks of send[range].
func foldLocal(st *allreduceState, r *mpi.Rank, node, off, n int) {
	scratch := st.scratch[node]
	if scratch.Len() == 0 || n == 0 || !scratch.IsReal() {
		return
	}
	first := true
	for p := 0; p < r.LocalSize(); p++ {
		send := st.sends[r.RankOf(node, p)]
		if send.Len() == 0 {
			continue
		}
		if first {
			data.Copy(scratch.Slice(off, n), send.Slice(off, n))
			first = false
		} else {
			data.AddFloats(scratch.Slice(off, n), send.Slice(off, n))
		}
	}
}

// allreduceCurrent is the production algorithm (paper §V-C): the intra-node
// reduce and broadcast phases move every buffer through the DMA, and the
// master core performs both the local reduction and the network protocol —
// the two contention points the shared-address design removes.
func allreduceCurrent(r *mpi.Rank, send, recv data.Buf) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := getAllreduceState(r, seq, bytes, 2)
	defer r.ReleaseWorldShared(seq, allreduceKind)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == 0 {
		startAllreduceNetwork(r, st, bytes)
	}

	if ppn == 1 {
		allreduceSMPRank(r, st, bytes, send, recv)
		return
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	del := st.dels[node]
	chunks := m.Cfg.Params.Chunks(bytes)
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)

	// Local reduce: a pipelined chain through the cores. Rank ppn-1's data
	// is DMA-copied into rank ppn-2's staging, that core adds its own data
	// and the DMA forwards the partial, until the accumulated partial lands
	// at the master. Every byte crosses the DMA ppn-1 times — the redundant
	// copies the paper calls out — and the final accumulation runs on the
	// master core, which is simultaneously the network protocol core.
	lr := r.LocalRank()
	if lr == ppn-1 {
		// Chain head: ship own chunks to the next core.
		r.Proc().WaitGE(st.ready[node], int64(ppn))
		for _, chunk := range chunks {
			putDone := r.Node().DMA.LocalCopy(r.Now(), chunk.Len)
			cnt := st.stage[node][lr-1]
			n := int64(chunk.Len)
			m.K.At(putDone, func() { cnt.Add(n) })
			r.Proc().SleepUntil(putDone)
		}
		r.Proc().WaitGE(st.peer[node][lr], int64(bytes))
	} else if lr > 0 {
		// Chain middle: combine the inbound partial with own data and
		// forward.
		got := int64(0)
		for _, chunk := range chunks {
			got += int64(chunk.Len)
			r.Proc().WaitGE(st.stage[node][lr], got)
			r.Node().HW.Reduce(r.Proc(), chunk.Len, cached)
			putDone := r.Node().DMA.LocalCopy(r.Now(), chunk.Len)
			cnt := st.stage[node][lr-1]
			n := int64(chunk.Len)
			m.K.At(putDone, func() { cnt.Add(n) })
		}
		r.Proc().WaitGE(st.peer[node][lr], int64(bytes))
	} else {
		// Master: final accumulation on the protocol core, then the DMA
		// distributes arriving results to the peers.
		got := int64(0)
		done := 0
		for _, chunk := range chunks {
			got += int64(chunk.Len)
			r.Proc().WaitGE(st.stage[node][0], got)
			reduceDone := st.proto[node].Reserve(chunk.Len)
			r.Proc().SleepUntil(reduceDone)
			foldLocal(st, r, node, chunk.Off, chunk.Len)
			done += chunk.Len
			feedContribAbsolute(st, node, done, offs, lens)
		}
		spanIdx := 0
		for seen := 0; seen < bytes; {
			r.Proc().WaitGE(del.Counter, int64(seen)+1)
			for _, span := range del.Drain(&spanIdx) {
				for p := 1; p < ppn; p++ {
					putDone := r.Node().DMA.LocalCopy(r.Now(), span.Len)
					cnt := st.peer[node][p]
					n := int64(span.Len)
					m.K.At(putDone, func() { cnt.Add(n) })
				}
				seen += span.Len
			}
		}
	}
	installPayload(recv, st.result[node])
}

// feedContribAbsolute translates linear local-reduce progress (bytes from
// offset zero) into the per-color contribution counters.
func feedContribAbsolute(st *allreduceState, node, done int, offs, lens []int) {
	for c := 0; c < allreduceColors; c++ {
		have := done - offs[c]
		if have < 0 {
			have = 0
		}
		if have > lens[c] {
			have = lens[c]
		}
		if delta := int64(have) - st.contrib[node][c].Value(); delta > 0 {
			st.contrib[node][c].Add(delta)
		}
	}
}

// allreduceSMPRank is the SMP-mode path shared by both algorithms: one rank
// per node contributes its buffer directly and waits for the result.
func allreduceSMPRank(r *mpi.Rank, st *allreduceState, bytes int, send, recv data.Buf) {
	node := r.NodeID()
	_, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	// The node contribution is the send buffer itself; install it and
	// declare every color ready.
	if st.scratch[node].IsReal() && send.IsReal() && st.scratch[node].Len() == send.Len() {
		data.Copy(st.scratch[node], send)
	}
	for c := 0; c < allreduceColors; c++ {
		st.contrib[node][c].Add(int64(lens[c]))
	}
	r.Proc().WaitGE(st.dels[node].Counter, int64(bytes))
	installPayload(recv, st.result[node])
}
