package coll

import (
	"fmt"

	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// Both allreduce algorithms are written in explicit-resume (program) style:
// each chunk loop is a small state machine whose continuations are method
// values bound once per rank per operation (see the note in bcast_tree.go),
// so program-mode ranks run them without goroutines or per-chunk closure
// garbage while goroutine-backed ranks execute the identical bodies
// synchronously.

// allreduceColors is the color count of the torus allreduce: the reduce
// phase runs on the reversed-direction links of each color's broadcast tree,
// so only the three positive-direction colors can run concurrently (§V-C).
const allreduceColors = 3

// allreduceState is the job-wide shared state of one torus allreduce.
type allreduceState struct {
	exec *ccmi.Allreduce

	// Per node.
	contrib [][]*sim.Counter // [node][color]: locally reduced bytes ready
	scratch []data.Buf       // node contribution vector (master-owned)
	result  []data.Buf       // master's receive buffer (the network target)
	dels    []*ccmi.Delivery
	proto   []*sim.Pipe    // the master core as protocol processor
	ready   []*sim.Counter // local ranks that registered their send buffers
	peer    [][]*sim.Counter
	stage   [][]*sim.Counter // [node][lrank]: staged bytes DMA-delivered to that core

	sends []data.Buf // per rank: registered send buffers
}

const allreduceKind = "allreduce"

// getAllreduceState builds the shared state. protoCores scales the protocol
// pipe: the current algorithm spreads network combining over the node's MPI
// progress engines, while the proposed design dedicates exactly one core
// ("a dedicated core performs allreduce protocol processing").
func getAllreduceState(r *mpi.Rank, seq int64, bytes int, protoCores float64) *allreduceState {
	return r.WorldShared(seq, allreduceKind, func() any {
		return newAllreduceShared(r, seq, bytes, protoCores)
	}).(*allreduceState)
}

// newAllreduceShared allocates the per-node counters, buffers, deliveries
// and protocol pipes shared by the allreduce-family collectives.
func newAllreduceShared(r *mpi.Rank, seq int64, bytes int, protoCores float64) *allreduceState {
	{
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		functional := m.Cfg.Functional
		cached := m.Nodes[0].HW.Cached((2*ppn + 2) * bytes)
		rate := m.Cfg.Params.ReduceBps
		if !cached {
			rate = m.Cfg.Params.ReduceDRAMBps
		}
		rate *= protoCores
		st := &allreduceState{
			contrib: make([][]*sim.Counter, nodes),
			scratch: make([]data.Buf, nodes),
			result:  make([]data.Buf, nodes),
			dels:    make([]*ccmi.Delivery, nodes),
			proto:   make([]*sim.Pipe, nodes),
			ready:   make([]*sim.Counter, nodes),
			peer:    make([][]*sim.Counter, nodes),
			stage:   make([][]*sim.Counter, nodes),
			sends:   make([]data.Buf, m.Cfg.Ranks()),
		}
		for n := 0; n < nodes; n++ {
			st.contrib[n] = make([]*sim.Counter, allreduceColors)
			for c := range st.contrib[n] {
				st.contrib[n][c] = m.K.NewCounter(fmt.Sprintf("ar%d.contrib%d.%d", seq, n, c))
			}
			st.scratch[n] = data.New(bytes, functional)
			st.result[n] = data.New(bytes, functional)
			st.dels[n] = ccmi.NewDelivery(m.K, fmt.Sprintf("ar%d.del%d", seq, n))
			st.proto[n] = m.K.NewPipe(fmt.Sprintf("ar%d.proto%d", seq, n), rate, 0)
			st.ready[n] = m.K.NewCounter("ready")
			st.peer[n] = make([]*sim.Counter, ppn)
			st.stage[n] = make([]*sim.Counter, ppn)
			for p := 0; p < ppn; p++ {
				if p > 0 {
					st.peer[n][p] = m.K.NewCounter("ardone")
				}
				st.stage[n][p] = m.K.NewCounter("arstage")
			}
		}
		return st
	}
}

// startAllreduceNetwork launches the network schedule. Exactly one rank
// (global rank 0, the schedule root's master) starts it.
func startAllreduceNetwork(r *mpi.Rank, st *allreduceState, bytes int) {
	m := r.Machine()
	st.exec = &ccmi.Allreduce{
		M:           m,
		Root:        m.Geom.CoordOf(0),
		Bytes:       bytes,
		Colors:      geometry.Colors(allreduceColors),
		Lane0:       6,
		Contrib:     st.contrib,
		ContribBufs: st.scratch,
		ResultBufs:  st.result,
		Deliveries:  st.dels,
		ProtoPipes:  st.proto,
	}
	st.exec.Run()
}

// allreduceFinish builds the completion continuation both algorithms end
// with: install the reduced result, release the shared state (the position
// the blocking form's defer ran at), then continue.
func allreduceFinish(r *mpi.Rank, st *allreduceState, seq int64, recv data.Buf, done func()) func() {
	return func() {
		installPayload(recv, st.result[r.NodeID()])
		r.ReleaseWorldShared(seq, allreduceKind)
		done()
	}
}

// allreduceShaddr is the proposed algorithm (paper §V-C): core 0 runs the
// network protocol; cores 1..3 each locally reduce one color partition of
// the four application buffers through process windows, feeding the network
// pipeline chunk by chunk, and later copy the full result into their own
// buffers.
func allreduceShaddr(r *mpi.Rank, send, recv data.Buf, done func()) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := getAllreduceState(r, seq, bytes, 1)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)
	finish := allreduceFinish(r, st, seq, recv, done)

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == 0 {
		startAllreduceNetwork(r, st, bytes)
	}

	if ppn == 1 {
		allreduceSMPRankThen(r, st, bytes, send, finish)
		return
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	del := st.dels[node]

	switch lr := r.LocalRank(); lr {
	case 0:
		// Protocol core: the ccmi schedule charges its combine work to
		// st.proto[node]; the rank just owns the result buffer and waits.
		r.Proc().WaitGEThen(del.Counter, int64(bytes), finish)

	default:
		color := lr - 1
		if color >= allreduceColors {
			color = allreduceColors - 1 // quad mode has exactly 3 peers
		}
		l := &shaddrReduceLoop{
			st: st, r: r, p: r.Proc(), node: node, hwNode: r.Node().HW,
			params: m.Cfg.Params, del: del, lr: lr, ppn: ppn, bytes: bytes,
			cached: cached, offs: offs, lens: lens, ownColor: color,
			cont: finish,
		}
		l.mapFn = l.mapNext
		l.reducedFn = l.reduced
		l.arriveFn = l.arrive
		l.polledFn = l.polled
		l.copiedFn = l.copied
		// Wait for all local ranks to enter (their buffers must be
		// readable), then map the three peer send buffers.
		l.p.WaitGEThen(st.ready[node], int64(ppn), l.mapFn)
	}
}

// shaddrReduceLoop drives one non-protocol core of the shaddr allreduce
// (paper §V-C) through its three phases: map the peer send buffers through
// process windows, pipeline the owned color partition(s) chunk by chunk into
// the network schedule, then copy the full reduced result out of the
// master's receive buffer as it arrives.
type shaddrReduceLoop struct {
	st       *allreduceState
	r        *mpi.Rank
	p        *sim.Proc
	hwNode   *hw.Node
	params   hw.Params
	del      *ccmi.Delivery
	node     int
	lr       int
	ppn      int
	bytes    int
	cached   bool
	offs     []int
	lens     []int
	ownColor int
	cont     func()

	mapIdx int

	color    int
	chunks   []hw.Span
	chunkIdx int

	spanIdx int
	seen    int
	spans   []hw.Span
	spanJ   int

	mapFn     func()
	reducedFn func()
	arriveFn  func()
	polledFn  func()
	copiedFn  func()
}

// mapNext maps the next peer's registered send buffer; once all are mapped,
// the local reduction of the owned color starts.
//
//bgplint:hot
func (l *shaddrReduceLoop) mapNext() {
	for l.mapIdx == l.lr {
		l.mapIdx++
	}
	if l.mapIdx >= l.ppn {
		l.startColor(l.ownColor)
		return
	}
	pi := l.mapIdx
	l.mapIdx++
	l.r.CNK().MapThen(l.p, windowKey(pi, l.st.sends[l.r.RankOf(l.node, pi)]), l.bytes, l.mapFn)
}

// startColor begins pipelining one color partition chunk by chunk into the
// network schedule: sum the four application buffers (three accumulation
// passes).
//
//bgplint:hot
func (l *shaddrReduceLoop) startColor(c int) {
	l.color = c
	l.chunks = l.params.Chunks(l.lens[c])
	l.chunkIdx = 0
	l.reduceStep()
}

//bgplint:hot
func (l *shaddrReduceLoop) reduceStep() {
	if l.chunkIdx == len(l.chunks) {
		l.colorDone()
		return
	}
	l.hwNode.ReduceThen(l.p, (l.ppn-1)*l.chunks[l.chunkIdx].Len, l.cached, l.reducedFn)
}

//bgplint:hot
func (l *shaddrReduceLoop) reduced() {
	chunk := l.chunks[l.chunkIdx]
	foldLocal(l.st, l.r, l.node, l.offs[l.color]+chunk.Off, chunk.Len)
	l.st.contrib[l.node][l.color].Add(int64(chunk.Len))
	l.chunkIdx++
	l.reduceStep()
}

// colorDone advances to the next color the last peer must feed: colors
// without an owning core (fewer peers than colors cannot happen in quad
// mode; guard for dual). Everyone else goes straight to the drain phase.
//
//bgplint:hot
func (l *shaddrReduceLoop) colorDone() {
	if l.lr != l.ppn-1 {
		l.drainOuter()
		return
	}
	c := l.color + 1
	if c < l.ppn-1 {
		c = l.ppn - 1
	}
	if c >= allreduceColors {
		l.drainOuter()
		return
	}
	l.startColor(c)
}

// drainOuter copies the full reduced result from the master's receive
// buffer into this rank's buffer as it arrives.
//
//bgplint:hot
func (l *shaddrReduceLoop) drainOuter() {
	if l.seen >= l.bytes {
		l.cont()
		return
	}
	l.p.WaitGEThen(l.del.Counter, int64(l.seen)+1, l.arriveFn)
}

//bgplint:hot
func (l *shaddrReduceLoop) arrive() {
	l.hwNode.PollThen(l.p, l.polledFn)
}

//bgplint:hot
func (l *shaddrReduceLoop) polled() {
	l.spans = l.del.Drain(&l.spanIdx)
	l.spanJ = 0
	l.copyNext()
}

//bgplint:hot
func (l *shaddrReduceLoop) copyNext() {
	if l.spanJ == len(l.spans) {
		l.drainOuter()
		return
	}
	l.hwNode.CopyThen(l.p, l.spans[l.spanJ].Len, l.cached, l.copiedFn)
}

//bgplint:hot
func (l *shaddrReduceLoop) copied() {
	l.seen += l.spans[l.spanJ].Len
	l.spanJ++
	l.copyNext()
}

// foldLocal installs the functional node-local sum for one byte range of the
// scratch buffer: scratch[range] = sum over local ranks of send[range].
func foldLocal(st *allreduceState, r *mpi.Rank, node, off, n int) {
	scratch := st.scratch[node]
	if scratch.Len() == 0 || n == 0 || !scratch.IsReal() {
		return
	}
	first := true
	for p := 0; p < r.LocalSize(); p++ {
		send := st.sends[r.RankOf(node, p)]
		if send.Len() == 0 {
			continue
		}
		if first {
			data.Copy(scratch.Slice(off, n), send.Slice(off, n))
			first = false
		} else {
			data.AddFloats(scratch.Slice(off, n), send.Slice(off, n))
		}
	}
}

// allreduceCurrent is the production algorithm (paper §V-C): the intra-node
// reduce and broadcast phases move every buffer through the DMA, and the
// master core performs both the local reduction and the network protocol —
// the two contention points the shared-address design removes.
func allreduceCurrent(r *mpi.Rank, send, recv data.Buf, done func()) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := getAllreduceState(r, seq, bytes, 2)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()
	finish := allreduceFinish(r, st, seq, recv, done)

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == 0 {
		startAllreduceNetwork(r, st, bytes)
	}

	if ppn == 1 {
		allreduceSMPRankThen(r, st, bytes, send, finish)
		return
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	del := st.dels[node]
	chunks := m.Cfg.Params.Chunks(bytes)
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)
	p := r.Proc()

	// Local reduce: a pipelined chain through the cores. Rank ppn-1's data
	// is DMA-copied into rank ppn-2's staging, that core adds its own data
	// and the DMA forwards the partial, until the accumulated partial lands
	// at the master. Every byte crosses the DMA ppn-1 times — the redundant
	// copies the paper calls out — and the final accumulation runs on the
	// master core, which is simultaneously the network protocol core.
	lr := r.LocalRank()
	if lr == ppn-1 {
		// Chain head: ship own chunks to the next core.
		l := &arChainHead{
			r: r, k: m.K, p: p, stage: st.stage[node][lr-1],
			peer: st.peer[node][lr], chunks: chunks, bytes: bytes, cont: finish,
		}
		l.stepFn = l.step
		p.WaitGEThen(st.ready[node], int64(ppn), l.stepFn)
	} else if lr > 0 {
		// Chain middle: combine the inbound partial with own data and
		// forward.
		l := &arChainMid{
			r: r, k: m.K, p: p, hwNode: r.Node().HW,
			stageIn: st.stage[node][lr], stageOut: st.stage[node][lr-1],
			peer: st.peer[node][lr], chunks: chunks, bytes: bytes,
			cached: cached, cont: finish,
		}
		l.reduceFn = l.reduce
		l.forwardFn = l.forward
		l.step()
	} else {
		// Master: final accumulation on the protocol core, then the DMA
		// distributes arriving results to the peers.
		l := &arMasterLoop{
			st: st, r: r, k: m.K, p: p, del: del, node: node, ppn: ppn,
			bytes: bytes, offs: offs, lens: lens, chunks: chunks, cont: finish,
		}
		l.reserveFn = l.reserve
		l.foldedFn = l.folded
		l.arriveFn = l.arrive
		l.step()
	}
}

// arChainHead is the head of the intra-node reduce chain: DMA-copy each own
// chunk into the next core's staging area, then wait for the broadcast-back.
type arChainHead struct {
	r      *mpi.Rank
	k      *sim.Kernel
	p      *sim.Proc
	stage  *sim.Counter
	peer   *sim.Counter
	chunks []hw.Span
	bytes  int
	j      int
	cont   func()
	stepFn func()
}

//bgplint:hot
func (l *arChainHead) step() {
	if l.j == len(l.chunks) {
		l.p.WaitGEThen(l.peer, int64(l.bytes), l.cont)
		return
	}
	chunk := l.chunks[l.j]
	putDone := l.r.Node().DMA.LocalCopy(l.r.Now(), chunk.Len)
	l.k.AddAt(putDone, l.stage, int64(chunk.Len))
	l.j++
	l.p.SleepUntilThen(putDone, l.stepFn)
}

// arChainMid is a middle link of the reduce chain: wait for the inbound
// partial, combine it with own data, and DMA-forward the new partial.
type arChainMid struct {
	r         *mpi.Rank
	k         *sim.Kernel
	p         *sim.Proc
	hwNode    *hw.Node
	stageIn   *sim.Counter
	stageOut  *sim.Counter
	peer      *sim.Counter
	chunks    []hw.Span
	bytes     int
	cached    bool
	j         int
	got       int64
	cont      func()
	reduceFn  func()
	forwardFn func()
}

//bgplint:hot
func (l *arChainMid) step() {
	if l.j == len(l.chunks) {
		l.p.WaitGEThen(l.peer, int64(l.bytes), l.cont)
		return
	}
	l.got += int64(l.chunks[l.j].Len)
	l.p.WaitGEThen(l.stageIn, l.got, l.reduceFn)
}

//bgplint:hot
func (l *arChainMid) reduce() {
	l.hwNode.ReduceThen(l.p, l.chunks[l.j].Len, l.cached, l.forwardFn)
}

//bgplint:hot
func (l *arChainMid) forward() {
	chunk := l.chunks[l.j]
	putDone := l.r.Node().DMA.LocalCopy(l.r.Now(), chunk.Len)
	l.k.AddAt(putDone, l.stageOut, int64(chunk.Len))
	l.j++
	l.step()
}

// arMasterLoop is the master's side of the current algorithm: the final
// accumulation of each staged chunk runs on the protocol core's pipe, and
// once the chain completes the DMA distributes arriving network results to
// the peers.
type arMasterLoop struct {
	st        *allreduceState
	r         *mpi.Rank
	k         *sim.Kernel
	p         *sim.Proc
	del       *ccmi.Delivery
	node      int
	ppn       int
	bytes     int
	offs      []int
	lens      []int
	chunks    []hw.Span
	j         int
	got       int64
	acc       int
	spanIdx   int
	seen      int
	cont      func()
	reserveFn func()
	foldedFn  func()
	arriveFn  func()
}

//bgplint:hot
func (l *arMasterLoop) step() {
	if l.j == len(l.chunks) {
		l.distOuter()
		return
	}
	l.got += int64(l.chunks[l.j].Len)
	l.p.WaitGEThen(l.st.stage[l.node][0], l.got, l.reserveFn)
}

//bgplint:hot
func (l *arMasterLoop) reserve() {
	reduceDone := l.st.proto[l.node].Reserve(l.chunks[l.j].Len)
	l.p.SleepUntilThen(reduceDone, l.foldedFn)
}

//bgplint:hot
func (l *arMasterLoop) folded() {
	chunk := l.chunks[l.j]
	foldLocal(l.st, l.r, l.node, chunk.Off, chunk.Len)
	l.acc += chunk.Len
	feedContribAbsolute(l.st, l.node, l.acc, l.offs, l.lens)
	l.j++
	l.step()
}

//bgplint:hot
func (l *arMasterLoop) distOuter() {
	if l.seen >= l.bytes {
		l.cont()
		return
	}
	l.p.WaitGEThen(l.del.Counter, int64(l.seen)+1, l.arriveFn)
}

//bgplint:hot
func (l *arMasterLoop) arrive() {
	for _, span := range l.del.Drain(&l.spanIdx) {
		for pi := 1; pi < l.ppn; pi++ {
			putDone := l.r.Node().DMA.LocalCopy(l.r.Now(), span.Len)
			l.k.AddAt(putDone, l.st.peer[l.node][pi], int64(span.Len))
		}
		l.seen += span.Len
	}
	l.distOuter()
}

// feedContribAbsolute translates linear local-reduce progress (bytes from
// offset zero) into the per-color contribution counters.
func feedContribAbsolute(st *allreduceState, node, done int, offs, lens []int) {
	for c := 0; c < allreduceColors; c++ {
		have := done - offs[c]
		if have < 0 {
			have = 0
		}
		if have > lens[c] {
			have = lens[c]
		}
		if delta := int64(have) - st.contrib[node][c].Value(); delta > 0 {
			st.contrib[node][c].Add(delta)
		}
	}
}

// allreduceSMPRankThen is the SMP-mode path shared by both algorithms: one
// rank per node contributes its buffer directly and waits for the result.
// finish installs the payload and releases the shared state.
func allreduceSMPRankThen(r *mpi.Rank, st *allreduceState, bytes int, send data.Buf, finish func()) {
	node := r.NodeID()
	_, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	// The node contribution is the send buffer itself; install it and
	// declare every color ready.
	if st.scratch[node].IsReal() && send.IsReal() && st.scratch[node].Len() == send.Len() {
		data.Copy(st.scratch[node], send)
	}
	for c := 0; c < allreduceColors; c++ {
		st.contrib[node][c].Add(int64(lens[c]))
	}
	r.Proc().WaitGEThen(st.dels[node].Counter, int64(bytes), finish)
}
