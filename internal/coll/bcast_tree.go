package coll

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/tree"
)

// The collective-network broadcasts below are written in explicit-resume
// (program) style: every loop is a recursive continuation closure and every
// blocking primitive is its *Then form, so a rank running them needs no
// goroutine. The same bodies ARE the blocking algorithms — on a
// goroutine-backed rank each *Then operation blocks and calls its
// continuation synchronously — so there is exactly one transcription of each
// protocol (see sim/program.go and DESIGN.md §11).

// injectWindow bounds how many chunks an injecting core may run ahead of
// delivery, modeling the collective network's limited buffering.
const injectWindow = 4

// treeBcastState is the shared state of one collective-network broadcast.
// On a classic world it is job-wide: the per-chunk combine operations plus
// every node's intra-node counters. On a sharded world it is node-wide
// (NodeShared): the per-node arrays hold exactly one slot (base = the node
// id) created on the node's own shard, and the combine protocol runs through
// a hub-shard stream instead of the per-chunk Op events — waiting on chunk
// i's delivery becomes waiting for the node-local delivered-chunk counter to
// reach i+1. The wait/inject helpers below hide the difference from the
// chunk loops, and the single-shard branch of each is byte-for-byte the
// pre-sharding protocol.
type treeBcastState struct {
	src    data.Buf
	spans  []hw.Span
	ops    []*tree.Op   // single-shard: per-chunk combines
	stream *tree.Stream // sharded: this node's hub stream (nil otherwise)
	base   int          // node id of slot 0 in the per-node arrays

	sw    []*sim.Counter // per node: bytes received by the reception core
	done  []*sim.Counter // per node: peers finished
	fill  []*sim.Counter // per node: bytes copied into the injector's buffer
	peer  [][]*sim.Counter
	rxBuf []data.Buf // per node: reception rank's buffer (window keys)
	r0Buf []data.Buf // per node: injector rank's buffer (window keys)
}

const treeBcastKind = "bcast.tree"

func getTreeBcastState(r *mpi.Rank, seq int64, total int) *treeBcastState {
	if r.Sharded() {
		return r.NodeShared(seq, treeBcastKind, func() any {
			return newTreeBcastNodeState(r, seq, total)
		}).(*treeBcastState)
	}
	return r.WorldShared(seq, treeBcastKind, func() any {
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		spans := m.Cfg.Params.Chunks(total)
		st := &treeBcastState{
			spans: spans,
			ops:   make([]*tree.Op, len(spans)),
			sw:    make([]*sim.Counter, nodes),
			done:  make([]*sim.Counter, nodes),
			fill:  make([]*sim.Counter, nodes),
			peer:  make([][]*sim.Counter, nodes),
			rxBuf: make([]data.Buf, nodes),
			r0Buf: make([]data.Buf, nodes),
		}
		for i, s := range spans {
			st.ops[i] = m.Tree.NewOp(s.Len)
		}
		for n := 0; n < nodes; n++ {
			st.sw[n] = m.K.NewCounter(fmt.Sprintf("treebc%d.sw%d", seq, n))
			st.done[n] = m.K.NewCounter("done")
			st.fill[n] = m.K.NewCounter("fill")
			st.peer[n] = make([]*sim.Counter, ppn)
			for p := 1; p < ppn; p++ {
				st.peer[n][p] = m.K.NewCounter("peer")
			}
		}
		return st
	}).(*treeBcastState)
}

// newTreeBcastNodeState builds one node's share of a sharded broadcast:
// every counter on the node's own shard, and a hub stream in place of the
// combine ops.
func newTreeBcastNodeState(r *mpi.Rank, seq int64, total int) *treeBcastState {
	m := r.Machine()
	sh := r.Shard()
	node := r.NodeID()
	ppn := r.LocalSize()
	spans := m.Cfg.Params.Chunks(total)
	st := &treeBcastState{
		spans:  spans,
		stream: m.Tree.NewStream(sh, seq, len(spans)),
		base:   node,
		sw:     make([]*sim.Counter, 1),
		done:   make([]*sim.Counter, 1),
		fill:   make([]*sim.Counter, 1),
		peer:   make([][]*sim.Counter, 1),
		rxBuf:  make([]data.Buf, 1),
		r0Buf:  make([]data.Buf, 1),
	}
	st.sw[0] = sh.NewCounter(fmt.Sprintf("treebc%d.sw%d", seq, node))
	st.done[0] = sh.NewCounter("done")
	st.fill[0] = sh.NewCounter("fill")
	st.peer[0] = make([]*sim.Counter, ppn)
	for p := 1; p < ppn; p++ {
		st.peer[0][p] = sh.NewCounter("peer")
	}
	return st
}

// Per-node accessors: slot n-base, so single-shard code indexes the full
// arrays while sharded code reaches its node's only slot — and indexing any
// other node's slot (a cross-shard bug) panics out of range.
func (st *treeBcastState) swAt(n int) *sim.Counter      { return st.sw[n-st.base] }
func (st *treeBcastState) doneAt(n int) *sim.Counter    { return st.done[n-st.base] }
func (st *treeBcastState) fillAt(n int) *sim.Counter    { return st.fill[n-st.base] }
func (st *treeBcastState) peerAt(n int) []*sim.Counter  { return st.peer[n-st.base] }
func (st *treeBcastState) rxBufAt(n int) data.Buf       { return st.rxBuf[n-st.base] }
func (st *treeBcastState) setRxBuf(n int, b data.Buf)   { st.rxBuf[n-st.base] = b }
func (st *treeBcastState) r0BufAt(n int) data.Buf       { return st.r0Buf[n-st.base] }
func (st *treeBcastState) setR0Buf(n int, b data.Buf)   { st.r0Buf[n-st.base] = b }

// inject records the calling node's contribution to chunk i at the current
// instant.
//
//bgplint:hot
func (st *treeBcastState) inject(i int) {
	if st.stream != nil {
		st.stream.Inject(i, st.spans[i].Len)
		return
	}
	st.ops[i].Inject()
}

// deliveredNow reports whether chunk i has already been delivered to the
// calling node (the pump's opportunistic drain check).
//
//bgplint:hot
func (st *treeBcastState) deliveredNow(i int) bool {
	if st.stream != nil {
		return st.stream.Delivered().Value() > int64(i)
	}
	return st.ops[i].Delivered().Fired()
}

// waitDelivered parks p behind chunk i's delivery to the calling node, runs
// pl, then continues with cont.
//
//bgplint:hot
func (st *treeBcastState) waitDelivered(p *sim.Proc, i int, pl *sim.Plan, cont func()) {
	if st.stream != nil {
		p.WaitGEPlanThen(st.stream.Delivered(), int64(i)+1, pl, cont)
		return
	}
	p.WaitPlanThen(st.ops[i].Delivered(), pl, cont)
}

// treeFinish builds the completion continuation every tree broadcast ends
// with: install the payload on non-root ranks, release the shared state (the
// position the blocking form's defer ran at), then continue. On a sharded
// world the payload install is vacuous (phantom buffers; st.src is set only
// on the root's node) and the release is node-scoped.
func treeFinish(r *mpi.Rank, st *treeBcastState, seq int64, buf data.Buf, root int, done func()) func() {
	return func() {
		if r.Rank() != root {
			installPayload(buf, st.src)
		}
		if r.Sharded() {
			r.ReleaseNodeShared(seq, treeBcastKind)
		} else {
			r.ReleaseWorldShared(seq, treeBcastKind)
		}
		done()
	}
}

// The chunk loops below are explicit state machines rather than recursive
// closures: each one is a small struct whose continuation is a method value
// bound once per rank per broadcast. A closure-based loop allocates its
// continuations once per *chunk*, and at 8192 ranks times tens of chunks the
// continuation garbage dominated the sweep allocation profile. The
// registration sequence (which *Then runs, in what order, with what plan
// contents) is identical to the closure form, so virtual times are
// bit-for-bit unchanged.

// injectLoop drives one node's injection side: the root's injector feeds
// the payload, every other node's injector feeds zeros into the global OR
// (paper §V-B). Injection is windowed against delivery to model the
// network's finite buffering.
type injectLoop struct {
	st      *treeBcastState
	net     *tree.Network
	p       *sim.Proc
	i       int
	cont    func()
	afterFn func() // bound method value: after, allocated once
}

func injectAllThen(r *mpi.Rank, st *treeBcastState, cont func()) {
	l := &injectLoop{st: st, net: r.Machine().Tree, p: r.Proc(), cont: cont}
	l.afterFn = l.after
	l.step()
}

//bgplint:hot
func (l *injectLoop) step() {
	if l.i == len(l.st.spans) {
		l.cont()
		return
	}
	touch := l.net.TouchTime(l.st.spans[l.i].Len)
	if l.i >= injectWindow {
		pl := l.p.NewPlan()
		pl.Sleep(touch)
		l.st.waitDelivered(l.p, l.i-injectWindow, pl, l.afterFn)
	} else {
		l.p.SleepThen(touch, l.afterFn)
	}
}

//bgplint:hot
func (l *injectLoop) after() {
	l.st.inject(l.i)
	l.i++
	l.step()
}

// recvLoop drives one node's reception side, paying the core packet-touch
// cost per chunk and publishing progress to the node's software counter (sw
// may be nil for observers that only pace delivery, like the SMP helper
// thread).
type recvLoop struct {
	st      *treeBcastState
	net     *tree.Network
	sw      *sim.Counter
	p       *sim.Proc
	i       int
	cont    func()
	afterFn func()
}

func receiveAllThen(r *mpi.Rank, st *treeBcastState, cont func()) {
	recvAllOn(r.Proc(), r.Machine().Tree, st, st.swAt(r.NodeID()), cont)
}

// recvAllOn is receiveAllThen for an explicit process (the SMP helper runs
// it on a spawned communication thread rather than the rank's own process).
func recvAllOn(p *sim.Proc, net *tree.Network, st *treeBcastState, sw *sim.Counter, cont func()) {
	l := &recvLoop{st: st, net: net, sw: sw, p: p, cont: cont}
	l.afterFn = l.after
	l.step()
}

//bgplint:hot
func (l *recvLoop) step() {
	if l.i == len(l.st.spans) {
		l.cont()
		return
	}
	pl := l.p.NewPlan()
	pl.Sleep(l.net.TouchTime(l.st.spans[l.i].Len))
	l.st.waitDelivered(l.p, l.i, pl, l.afterFn)
}

//bgplint:hot
func (l *recvLoop) after() {
	if l.sw != nil {
		l.sw.Add(int64(l.st.spans[l.i].Len))
	}
	l.i++
	l.step()
}

// masterPumpThen drives both sides of the collective network on a single
// core, the way the production quad-mode algorithms do: the core alternates
// between injecting the next chunk and draining any chunks the network has
// delivered (paying a packet-touch each way), so chunk latency overlaps but
// the core's throughput halves — the imbalance the shared-address core
// specialization removes. onRecv runs after each chunk's reception cost and
// must call k exactly once when its own work completes.
func masterPumpThen(r *mpi.Rank, st *treeBcastState, onRecv func(i int, span hw.Span, k func()), cont func()) {
	m := &masterPump{st: st, net: r.Machine().Tree, p: r.Proc(), onRecv: onRecv, cont: cont}
	m.afterInjectFn = m.afterInject
	m.enterRecvFn = m.enterRecv
	m.afterRecvFn = m.afterRecv
	m.inject()
}

// masterPump is masterPumpThen's state machine. phase records what the pump
// was doing when it parked for a reception, so afterRecv can resume exactly
// where the closure form's captured continuation would have: back into the
// opportunistic drain loop, retrying a window-blocked injection, or draining
// the tail.
type masterPump struct {
	st     *treeBcastState
	net    *tree.Network
	p      *sim.Proc
	onRecv func(i int, span hw.Span, k func())
	cont   func()

	injIdx  int
	recvIdx int
	phase   uint8

	afterInjectFn func()
	enterRecvFn   func()
	afterRecvFn   func()
}

const (
	pumpDrain uint8 = iota // receive came from drain: drain again, then inject
	pumpRetry              // receive unblocked the window: retry the same injection
	pumpTail               // injection done: keep receiving until all chunks land
)

//bgplint:hot
func (m *masterPump) inject() {
	if m.injIdx == len(m.st.spans) {
		m.tail()
		return
	}
	// Injection back-pressure: the network buffers only a few chunks.
	if m.injIdx-m.recvIdx >= injectWindow {
		m.phase = pumpRetry
		m.recvBlocked()
		return
	}
	// Inject (data or zeros): one packet-touch on the pumping core.
	m.p.SleepThen(m.net.TouchTime(m.st.spans[m.injIdx].Len), m.afterInjectFn)
}

//bgplint:hot
func (m *masterPump) afterInject() {
	m.st.inject(m.injIdx)
	m.injIdx++
	m.drain()
}

// drain opportunistically receives every chunk the network has already
// delivered before the pump injects the next one.
//
//bgplint:hot
func (m *masterPump) drain() {
	if m.recvIdx < len(m.st.spans) && m.st.deliveredNow(m.recvIdx) {
		m.phase = pumpDrain
		m.p.SleepThen(m.net.TouchTime(m.st.spans[m.recvIdx].Len), m.enterRecvFn)
		return
	}
	m.inject()
}

//bgplint:hot
func (m *masterPump) tail() {
	if m.recvIdx < len(m.st.spans) {
		m.phase = pumpTail
		m.recvBlocked()
		return
	}
	m.cont()
}

// recvBlocked parks behind a not-yet-delivered chunk: the wait and the
// reception packet-touch fuse into one parked stretch.
//
//bgplint:hot
func (m *masterPump) recvBlocked() {
	i := m.recvIdx
	pl := m.p.NewPlan()
	pl.Sleep(m.net.TouchTime(m.st.spans[i].Len))
	m.st.waitDelivered(m.p, i, pl, m.enterRecvFn)
}

//bgplint:hot
func (m *masterPump) enterRecv() {
	i := m.recvIdx
	m.onRecv(i, m.st.spans[i], m.afterRecvFn)
}

//bgplint:hot
func (m *masterPump) afterRecv() {
	m.recvIdx++
	switch m.phase {
	case pumpDrain:
		m.drain()
	case pumpRetry:
		m.inject()
	default:
		m.tail()
	}
}

// bcastTreeSMP is the current SMP-mode algorithm (paper §V-B): the main
// thread injects while a helper communication thread receives, together
// saturating the collective network.
func bcastTreeSMP(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}
	sh := r.Shard()
	helperDone := sh.NewEvent(fmt.Sprintf("treebc%d.helper%d", seq, r.Rank()))
	sh.SpawnProgram(fmt.Sprintf("rank%d.comm", r.Rank()), func(p *sim.Proc) {
		recvAllOn(p, r.Machine().Tree, st, nil, helperDone.Fire)
	})
	finish := treeFinish(r, st, seq, buf, root, done)
	injectAllThen(r, st, func() {
		r.Proc().WaitThen(helperDone, finish)
	})
}

// bcastTreeShmem is the quad-mode latency algorithm (paper §V-B): the master
// core injects and receives into a shared-memory segment, serialized on one
// core; peers copy the data out of the segment.
func bcastTreeShmem(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}

	node := r.NodeID()
	cached := quadBcastFootprint(r, buf.Len())
	finish := treeFinish(r, st, seq, buf, root, done)

	if r.IsNodeMaster() {
		sw := st.swAt(node)
		masterPumpThen(r, st, func(i int, span hw.Span, k func()) {
			sw.Add(int64(span.Len))
			if r.Rank() != root {
				// The master's own buffer needs the data too: a third
				// byte-touch on the same core.
				r.Node().HW.CopyThen(r.Proc(), span.Len, cached, k)
				return
			}
			k()
		}, finish)
	} else {
		treePeerCopyThen(r, st, root, cached, finish)
	}
}

// peerCopyLoop is the peer-side copy loop shared by the shmem and shaddr
// algorithms: wait on the node's software counter and copy arrived chunks.
type peerCopyLoop struct {
	st     *treeBcastState
	sw     *sim.Counter
	done   *sim.Counter
	p      *sim.Proc
	node   *hw.Node
	isRoot bool
	cached bool
	i      int
	got    int64
	cont   func()
	stepFn func()
}

func treePeerCopyThen(r *mpi.Rank, st *treeBcastState, root int, cached bool, cont func()) {
	n := r.NodeID()
	l := &peerCopyLoop{
		st: st, sw: st.swAt(n), done: st.doneAt(n), p: r.Proc(), node: r.Node().HW,
		isRoot: r.Rank() == root, cached: cached, cont: cont,
	}
	l.stepFn = l.step
	l.step()
}

//bgplint:hot
func (l *peerCopyLoop) step() {
	if l.i == len(l.st.spans) {
		l.done.Add(1)
		l.cont()
		return
	}
	span := l.st.spans[l.i]
	l.got += int64(span.Len)
	pl := l.p.NewPlan()
	if !l.isRoot {
		l.node.PlanPoll(pl)
		l.node.PlanCopy(pl, span.Len, l.cached)
	}
	l.i++
	l.p.WaitGEPlanThen(l.sw, l.got, pl, l.stepFn)
}

// bcastTreeDMAFIFO is the current quad-mode algorithm: the master core
// injects and receives; the DMA then moves the data to the peers' memory
// FIFOs, from which each peer's core copies into its application buffer.
func bcastTreeDMAFIFO(r *mpi.Rank, buf data.Buf, root int, done func()) {
	treeDMACommon(r, buf, root, true, done)
}

// bcastTreeDMADirect is the current quad-mode variant where the DMA
// direct-puts into the peers' application buffers, skipping the FIFO copy.
func bcastTreeDMADirect(r *mpi.Rank, buf data.Buf, root int, done func()) {
	treeDMACommon(r, buf, root, false, done)
}

func treeDMACommon(r *mpi.Rank, buf data.Buf, root int, fifo bool, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}
	m := r.Machine()

	node := r.NodeID()
	ppn := r.LocalSize()
	cached := quadBcastFootprint(r, buf.Len())
	finish := treeFinish(r, st, seq, buf, root, done)

	if r.IsNodeMaster() {
		masterPumpThen(r, st, func(i int, span hw.Span, k func()) {
			for p := 1; p < ppn; p++ {
				putDone := r.Node().DMA.LocalCopy(r.Now(), span.Len)
				// AddAt is the closure-free At(putDone, func() { cnt.Add(n) }):
				// one scheduled add per (chunk, peer) was the sweep's single
				// hottest allocation site.
				m.K.AddAt(putDone, st.peerAt(node)[p], int64(span.Len))
			}
			k()
		}, finish)
	} else {
		l := &dmaPeerLoop{
			st: st, cnt: st.peerAt(node)[r.LocalRank()], p: r.Proc(), node: r.Node().HW,
			fifoCopy: fifo && r.Rank() != root, cached: cached, cont: finish,
		}
		l.stepFn = l.step
		l.step()
	}
}

// dmaPeerLoop is the peer-side reception loop of the DMA broadcasts: wait on
// the per-peer DMA progress counter and, in FIFO mode, pay the core copy from
// the memory FIFO into the application buffer.
type dmaPeerLoop struct {
	st       *treeBcastState
	cnt      *sim.Counter
	p        *sim.Proc
	node     *hw.Node
	fifoCopy bool
	cached   bool
	i        int
	got      int64
	cont     func()
	stepFn   func()
}

//bgplint:hot
func (l *dmaPeerLoop) step() {
	if l.i == len(l.st.spans) {
		l.cont()
		return
	}
	span := l.st.spans[l.i]
	l.got += int64(span.Len)
	pl := l.p.NewPlan()
	if l.fifoCopy {
		// Memory-FIFO reception needs a core copy into the application buffer.
		l.node.PlanCopy(pl, span.Len, l.cached)
	}
	l.i++
	l.p.WaitGEPlanThen(l.cnt, l.got, pl, l.stepFn)
}

// bcastTreeShaddr is the proposed quad-mode algorithm (paper §V-B, Fig. 4):
// core specialization over shared address space. Local rank 0 injects
// (payload at the root, zeros elsewhere), local rank 1 receives directly
// into its application buffer and publishes a software counter, ranks 2 and
// 3 copy through process windows, and rank 2 additionally fills rank 0's
// buffer — the injector has no cycles to copy, and memory bandwidth is at
// least twice the collective network's.
func bcastTreeShaddr(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}
	node := r.NodeID()
	total := buf.Len()
	cached := quadBcastFootprint(r, total)
	rootRank := r.World().Rank(root)
	rootOnNode := rootRank.NodeID() == node
	finish := treeFinish(r, st, seq, buf, root, done)

	switch r.LocalRank() {
	case 0: // injection process
		st.setR0Buf(node, buf)
		afterMap := func() {
			injectAllThen(r, st, func() {
				if r.Rank() != root {
					// Wait for rank 2 to fill this buffer.
					r.Proc().WaitGEThen(st.fillAt(node), int64(total), finish)
					return
				}
				finish()
			})
		}
		if rootOnNode && root != r.Rank() {
			// Inject the payload out of the root rank's buffer through a
			// process window.
			r.CNK().MapThen(r.Proc(), windowKey(rootRank.LocalRank(), st.src), total, afterMap)
		} else {
			afterMap()
		}

	case 1: // reception process: directly into its application buffer
		st.setRxBuf(node, buf)
		if r.LocalSize() == 2 {
			// Dual mode has no dedicated copy processes: the reception
			// process also fills the injector's buffer.
			fillInjector := r.RankOf(node, 0) != root
			l := &dualRecvLoop{
				st: st, net: r.Machine().Tree, sw: st.swAt(node), fill: st.fillAt(node),
				p: r.Proc(), node: r.Node().HW,
				fillInjector: fillInjector, cached: cached, cont: finish,
			}
			l.stepFn = l.step
			l.afterFn = l.after
			if fillInjector {
				r.CNK().MapThen(r.Proc(), windowKey(0, st.r0BufAt(node)), total, l.stepFn)
			} else {
				l.step()
			}
			return
		}
		receiveAllThen(r, st, finish)

	case 2: // copy process, also responsible for the injector's buffer
		sw := st.swAt(node)
		r.Proc().WaitGEThen(sw, 1, func() {
			r.CNK().MapThen(r.Proc(), windowKey(1, st.rxBufAt(node)), total, func() {
				fillInjector := r.RankOf(node, 0) != root
				l := &shaddrCopyLoop{
					st: st, sw: sw, done: st.doneAt(node), fill: st.fillAt(node),
					p: r.Proc(), node: r.Node().HW,
					isRoot: r.Rank() == root, fillInjector: fillInjector,
					cached: cached, cont: finish,
				}
				l.stepFn = l.step
				if fillInjector {
					r.CNK().MapThen(r.Proc(), windowKey(0, st.r0BufAt(node)), total, l.stepFn)
				} else {
					l.step()
				}
			})
		})

	case 3: // copy process
		sw := st.swAt(node)
		r.Proc().WaitGEThen(sw, 1, func() {
			r.CNK().MapThen(r.Proc(), windowKey(1, st.rxBufAt(node)), total, func() {
				treePeerCopyThen(r, st, root, cached, finish)
			})
		})
	}
}

// dualRecvLoop is the dual-mode reception loop of the shaddr tree broadcast:
// with no dedicated copy processes, the reception process pays the per-chunk
// packet-touch, publishes the software counter, and — when the injector is
// not the root — copies each chunk into the injector's buffer on the same
// plan.
type dualRecvLoop struct {
	st           *treeBcastState
	net          *tree.Network
	sw           *sim.Counter
	fill         *sim.Counter
	p            *sim.Proc
	node         *hw.Node
	fillInjector bool
	cached       bool
	i            int
	cont         func()
	stepFn       func()
	afterFn      func()
}

//bgplint:hot
func (l *dualRecvLoop) step() {
	if l.i == len(l.st.spans) {
		l.cont()
		return
	}
	span := l.st.spans[l.i]
	pl := l.p.NewPlan()
	pl.Sleep(l.net.TouchTime(span.Len))
	pl.Add(l.sw, int64(span.Len))
	if l.fillInjector {
		l.node.PlanCopy(pl, span.Len, l.cached)
	}
	l.st.waitDelivered(l.p, l.i, pl, l.afterFn)
}

//bgplint:hot
func (l *dualRecvLoop) after() {
	if l.fillInjector {
		l.fill.Add(int64(l.st.spans[l.i].Len))
	}
	l.i++
	l.step()
}

// shaddrCopyLoop is the shaddr rank-2 copy loop: poll the reception rank's
// software counter, copy arrived chunks through the process window, and —
// when the injector is not the root — fill rank 0's buffer too (the extra
// copy rides the same plan; memory bandwidth exceeds the tree's, so it does
// not throttle the flow).
type shaddrCopyLoop struct {
	st           *treeBcastState
	sw           *sim.Counter
	done         *sim.Counter
	fill         *sim.Counter
	p            *sim.Proc
	node         *hw.Node
	isRoot       bool
	fillInjector bool
	cached       bool
	i            int
	got          int64
	cont         func()
	stepFn       func()
}

//bgplint:hot
func (l *shaddrCopyLoop) step() {
	if l.i == len(l.st.spans) {
		l.done.Add(1)
		l.cont()
		return
	}
	span := l.st.spans[l.i]
	l.got += int64(span.Len)
	pl := l.p.NewPlan()
	l.node.PlanPoll(pl)
	if !l.isRoot {
		l.node.PlanCopy(pl, span.Len, l.cached)
	}
	if l.fillInjector {
		l.node.PlanCopy(pl, span.Len, l.cached)
		pl.Add(l.fill, int64(span.Len))
	}
	l.i++
	l.p.WaitGEPlanThen(l.sw, l.got, pl, l.stepFn)
}
