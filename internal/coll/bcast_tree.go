package coll

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/tree"
)

// injectWindow bounds how many chunks an injecting core may run ahead of
// delivery, modeling the collective network's limited buffering.
const injectWindow = 4

// treeBcastState is the job-wide shared state of one collective-network
// broadcast: the per-chunk combine operations plus intra-node counters.
type treeBcastState struct {
	src   data.Buf
	spans []hw.Span
	ops   []*tree.Op

	sw    []*sim.Counter // per node: bytes received by the reception core
	done  []*sim.Counter // per node: peers finished
	fill  []*sim.Counter // per node: bytes copied into the injector's buffer
	peer  [][]*sim.Counter
	rxBuf []data.Buf // per node: reception rank's buffer (window keys)
	r0Buf []data.Buf // per node: injector rank's buffer (window keys)
}

const treeBcastKind = "bcast.tree"

func getTreeBcastState(r *mpi.Rank, seq int64, total int) *treeBcastState {
	return r.WorldShared(seq, treeBcastKind, func() any {
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		spans := m.Cfg.Params.Chunks(total)
		st := &treeBcastState{
			spans: spans,
			ops:   make([]*tree.Op, len(spans)),
			sw:    make([]*sim.Counter, nodes),
			done:  make([]*sim.Counter, nodes),
			fill:  make([]*sim.Counter, nodes),
			peer:  make([][]*sim.Counter, nodes),
			rxBuf: make([]data.Buf, nodes),
			r0Buf: make([]data.Buf, nodes),
		}
		for i, s := range spans {
			st.ops[i] = m.Tree.NewOp(s.Len)
		}
		for n := 0; n < nodes; n++ {
			st.sw[n] = m.K.NewCounter(fmt.Sprintf("treebc%d.sw%d", seq, n))
			st.done[n] = m.K.NewCounter("done")
			st.fill[n] = m.K.NewCounter("fill")
			st.peer[n] = make([]*sim.Counter, ppn)
			for p := 1; p < ppn; p++ {
				st.peer[n][p] = m.K.NewCounter("peer")
			}
		}
		return st
	}).(*treeBcastState)
}

// injectAll drives one node's injection side: the root's injector feeds the
// payload, every other node's injector feeds zeros into the global OR
// (paper §V-B). Injection is windowed against delivery to model the
// network's finite buffering.
func injectAll(r *mpi.Rank, st *treeBcastState) {
	net := r.Machine().Tree
	p := r.Proc()
	for i, span := range st.spans {
		touch := net.TouchTime(span.Len)
		if i >= injectWindow {
			pl := p.NewPlan()
			pl.Sleep(touch)
			p.WaitPlan(st.ops[i-injectWindow].Delivered(), pl)
		} else {
			p.Sleep(touch)
		}
		st.ops[i].Inject()
	}
}

// receiveAll drives one node's reception side, paying the core packet-touch
// cost per chunk and publishing progress to the node's software counter.
func receiveAll(r *mpi.Rank, st *treeBcastState) {
	net := r.Machine().Tree
	sw := st.sw[r.NodeID()]
	p := r.Proc()
	for i, span := range st.spans {
		pl := p.NewPlan()
		pl.Sleep(net.TouchTime(span.Len))
		p.WaitPlan(st.ops[i].Delivered(), pl)
		sw.Add(int64(span.Len))
	}
}

// masterPump drives both sides of the collective network on a single core,
// the way the production quad-mode algorithms do: the core alternates
// between injecting the next chunk and draining any chunks the network has
// delivered (paying a packet-touch each way), so chunk latency overlaps but
// the core's throughput halves — the imbalance the shared-address core
// specialization removes. onRecv runs after each chunk's reception cost.
func masterPump(r *mpi.Rank, st *treeBcastState, onRecv func(i int, span hw.Span)) {
	net := r.Machine().Tree
	p := r.Proc()
	recvIdx := 0
	recvOne := func() {
		span := st.spans[recvIdx]
		p.Sleep(net.TouchTime(span.Len))
		onRecv(recvIdx, span)
		recvIdx++
	}
	// recvBlocked is recvOne behind a not-yet-delivered chunk: the wait and
	// the reception packet-touch fuse into one parked stretch.
	recvBlocked := func() {
		span := st.spans[recvIdx]
		pl := p.NewPlan()
		pl.Sleep(net.TouchTime(span.Len))
		p.WaitPlan(st.ops[recvIdx].Delivered(), pl)
		onRecv(recvIdx, span)
		recvIdx++
	}
	drain := func() {
		for recvIdx < len(st.spans) && st.ops[recvIdx].Delivered().Fired() {
			recvOne()
		}
	}
	for i, span := range st.spans {
		// Injection back-pressure: the network buffers only a few chunks.
		for i-recvIdx >= injectWindow {
			recvBlocked()
		}
		p.Sleep(net.TouchTime(span.Len)) // inject (data or zeros)
		st.ops[i].Inject()
		drain()
	}
	for recvIdx < len(st.spans) {
		recvBlocked()
	}
}

// bcastTreeSMP is the current SMP-mode algorithm (paper §V-B): the main
// thread injects while a helper communication thread receives, together
// saturating the collective network.
func bcastTreeSMP(r *mpi.Rank, buf data.Buf, root int) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	defer r.ReleaseWorldShared(seq, treeBcastKind)
	if r.Rank() == root {
		st.src = buf
	}
	k := r.Machine().K
	helperDone := k.NewEvent(fmt.Sprintf("treebc%d.helper%d", seq, r.Rank()))
	rr := r
	k.Spawn(fmt.Sprintf("rank%d.comm", r.Rank()), func(p *sim.Proc) {
		net := rr.Machine().Tree
		for i, span := range st.spans {
			pl := p.NewPlan()
			pl.Sleep(net.TouchTime(span.Len))
			p.WaitPlan(st.ops[i].Delivered(), pl)
		}
		helperDone.Fire()
	})
	injectAll(r, st)
	r.Proc().Wait(helperDone)
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}

// bcastTreeShmem is the quad-mode latency algorithm (paper §V-B): the master
// core injects and receives into a shared-memory segment, serialized on one
// core; peers copy the data out of the segment.
func bcastTreeShmem(r *mpi.Rank, buf data.Buf, root int) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	defer r.ReleaseWorldShared(seq, treeBcastKind)
	if r.Rank() == root {
		st.src = buf
	}

	node := r.NodeID()
	cached := quadBcastFootprint(r, buf.Len())

	if r.IsNodeMaster() {
		sw := st.sw[node]
		masterPump(r, st, func(i int, span hw.Span) {
			sw.Add(int64(span.Len))
			if r.Rank() != root {
				// The master's own buffer needs the data too: a third
				// byte-touch on the same core.
				r.Node().HW.Copy(r.Proc(), span.Len, cached)
			}
		})
	} else {
		treePeerCopy(r, st, root, cached)
	}
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}

// treePeerCopy is the peer-side copy loop shared by the shmem and shaddr
// algorithms: wait on the node's software counter and copy arrived chunks.
func treePeerCopy(r *mpi.Rank, st *treeBcastState, root int, cached bool) {
	sw := st.sw[r.NodeID()]
	isRoot := r.Rank() == root
	p := r.Proc()
	node := r.Node().HW
	got := int64(0)
	for _, span := range st.spans {
		got += int64(span.Len)
		pl := p.NewPlan()
		if !isRoot {
			node.PlanPoll(pl)
			node.PlanCopy(pl, span.Len, cached)
		}
		p.WaitGEPlan(sw, got, pl)
	}
	st.done[r.NodeID()].Add(1)
}

// bcastTreeDMAFIFO is the current quad-mode algorithm: the master core
// injects and receives; the DMA then moves the data to the peers' memory
// FIFOs, from which each peer's core copies into its application buffer.
func bcastTreeDMAFIFO(r *mpi.Rank, buf data.Buf, root int) {
	treeDMACommon(r, buf, root, true)
}

// bcastTreeDMADirect is the current quad-mode variant where the DMA
// direct-puts into the peers' application buffers, skipping the FIFO copy.
func bcastTreeDMADirect(r *mpi.Rank, buf data.Buf, root int) {
	treeDMACommon(r, buf, root, false)
}

func treeDMACommon(r *mpi.Rank, buf data.Buf, root int, fifo bool) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	defer r.ReleaseWorldShared(seq, treeBcastKind)
	if r.Rank() == root {
		st.src = buf
	}
	m := r.Machine()

	node := r.NodeID()
	ppn := r.LocalSize()
	cached := quadBcastFootprint(r, buf.Len())

	if r.IsNodeMaster() {
		masterPump(r, st, func(i int, span hw.Span) {
			for p := 1; p < ppn; p++ {
				putDone := r.Node().DMA.LocalCopy(r.Now(), span.Len)
				cnt := st.peer[node][p]
				n := int64(span.Len)
				m.K.At(putDone, func() { cnt.Add(n) })
			}
		})
	} else {
		cnt := st.peer[node][r.LocalRank()]
		isRoot := r.Rank() == root
		p := r.Proc()
		hwNode := r.Node().HW
		got := int64(0)
		for _, span := range st.spans {
			got += int64(span.Len)
			pl := p.NewPlan()
			if fifo && !isRoot {
				// Memory-FIFO reception needs a core copy into the
				// application buffer.
				hwNode.PlanCopy(pl, span.Len, cached)
			}
			p.WaitGEPlan(cnt, got, pl)
		}
	}
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}

// bcastTreeShaddr is the proposed quad-mode algorithm (paper §V-B, Fig. 4):
// core specialization over shared address space. Local rank 0 injects
// (payload at the root, zeros elsewhere), local rank 1 receives directly
// into its application buffer and publishes a software counter, ranks 2 and
// 3 copy through process windows, and rank 2 additionally fills rank 0's
// buffer — the injector has no cycles to copy, and memory bandwidth is at
// least twice the collective network's.
func bcastTreeShaddr(r *mpi.Rank, buf data.Buf, root int) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	defer r.ReleaseWorldShared(seq, treeBcastKind)
	if r.Rank() == root {
		st.src = buf
	}
	node := r.NodeID()
	total := buf.Len()
	cached := quadBcastFootprint(r, total)
	rootRank := r.World().Rank(root)
	rootOnNode := rootRank.NodeID() == node

	switch r.LocalRank() {
	case 0: // injection process
		st.r0Buf[node] = buf
		if rootOnNode && root != r.Rank() {
			// Inject the payload out of the root rank's buffer through a
			// process window.
			r.CNK().Map(r.Proc(), windowKey(rootRank.LocalRank(), st.src), total)
		}
		injectAll(r, st)
		if r.Rank() != root {
			// Wait for rank 2 to fill this buffer.
			r.Proc().WaitGE(st.fill[node], int64(total))
		}

	case 1: // reception process: directly into its application buffer
		st.rxBuf[node] = buf
		if r.LocalSize() == 2 {
			// Dual mode has no dedicated copy processes: the reception
			// process also fills the injector's buffer.
			fillInjector := r.RankOf(node, 0) != root
			if fillInjector {
				r.CNK().Map(r.Proc(), windowKey(0, st.r0Buf[node]), total)
			}
			net := r.Machine().Tree
			sw := st.sw[node]
			p := r.Proc()
			for i, span := range st.spans {
				pl := p.NewPlan()
				pl.Sleep(net.TouchTime(span.Len))
				pl.Add(sw, int64(span.Len))
				if fillInjector {
					r.Node().HW.PlanCopy(pl, span.Len, cached)
				}
				p.WaitPlan(st.ops[i].Delivered(), pl)
				if fillInjector {
					st.fill[node].Add(int64(span.Len))
				}
			}
			break
		}
		receiveAll(r, st)

	case 2: // copy process, also responsible for the injector's buffer
		sw := st.sw[node]
		r.Proc().WaitGE(sw, 1)
		r.CNK().Map(r.Proc(), windowKey(1, st.rxBuf[node]), total)
		fillInjector := r.RankOf(node, 0) != root
		if fillInjector {
			r.CNK().Map(r.Proc(), windowKey(0, st.r0Buf[node]), total)
		}
		isRoot := r.Rank() == root
		p := r.Proc()
		hwNode := r.Node().HW
		got := int64(0)
		for _, span := range st.spans {
			got += int64(span.Len)
			pl := p.NewPlan()
			hwNode.PlanPoll(pl)
			if !isRoot {
				hwNode.PlanCopy(pl, span.Len, cached)
			}
			if fillInjector {
				// The extra copy into rank 0's buffer; memory bandwidth
				// exceeds the tree's, so this does not throttle the flow.
				hwNode.PlanCopy(pl, span.Len, cached)
				pl.Add(st.fill[node], int64(span.Len))
			}
			p.WaitGEPlan(sw, got, pl)
		}
		st.done[node].Add(1)

	case 3: // copy process
		sw := st.sw[node]
		r.Proc().WaitGE(sw, 1)
		r.CNK().Map(r.Proc(), windowKey(1, st.rxBuf[node]), total)
		treePeerCopy(r, st, root, cached)
	}
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}
