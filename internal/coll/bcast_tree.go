package coll

import (
	"fmt"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
	"bgpcoll/internal/tree"
)

// The collective-network broadcasts below are written in explicit-resume
// (program) style: every loop is a recursive continuation closure and every
// blocking primitive is its *Then form, so a rank running them needs no
// goroutine. The same bodies ARE the blocking algorithms — on a
// goroutine-backed rank each *Then operation blocks and calls its
// continuation synchronously — so there is exactly one transcription of each
// protocol (see sim/program.go and DESIGN.md §11).

// injectWindow bounds how many chunks an injecting core may run ahead of
// delivery, modeling the collective network's limited buffering.
const injectWindow = 4

// treeBcastState is the job-wide shared state of one collective-network
// broadcast: the per-chunk combine operations plus intra-node counters.
type treeBcastState struct {
	src   data.Buf
	spans []hw.Span
	ops   []*tree.Op

	sw    []*sim.Counter // per node: bytes received by the reception core
	done  []*sim.Counter // per node: peers finished
	fill  []*sim.Counter // per node: bytes copied into the injector's buffer
	peer  [][]*sim.Counter
	rxBuf []data.Buf // per node: reception rank's buffer (window keys)
	r0Buf []data.Buf // per node: injector rank's buffer (window keys)
}

const treeBcastKind = "bcast.tree"

func getTreeBcastState(r *mpi.Rank, seq int64, total int) *treeBcastState {
	return r.WorldShared(seq, treeBcastKind, func() any {
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		spans := m.Cfg.Params.Chunks(total)
		st := &treeBcastState{
			spans: spans,
			ops:   make([]*tree.Op, len(spans)),
			sw:    make([]*sim.Counter, nodes),
			done:  make([]*sim.Counter, nodes),
			fill:  make([]*sim.Counter, nodes),
			peer:  make([][]*sim.Counter, nodes),
			rxBuf: make([]data.Buf, nodes),
			r0Buf: make([]data.Buf, nodes),
		}
		for i, s := range spans {
			st.ops[i] = m.Tree.NewOp(s.Len)
		}
		for n := 0; n < nodes; n++ {
			st.sw[n] = m.K.NewCounter(fmt.Sprintf("treebc%d.sw%d", seq, n))
			st.done[n] = m.K.NewCounter("done")
			st.fill[n] = m.K.NewCounter("fill")
			st.peer[n] = make([]*sim.Counter, ppn)
			for p := 1; p < ppn; p++ {
				st.peer[n][p] = m.K.NewCounter("peer")
			}
		}
		return st
	}).(*treeBcastState)
}

// treeFinish builds the completion continuation every tree broadcast ends
// with: install the payload on non-root ranks, release the shared state (the
// position the blocking form's defer ran at), then continue.
func treeFinish(r *mpi.Rank, st *treeBcastState, seq int64, buf data.Buf, root int, done func()) func() {
	return func() {
		if r.Rank() != root {
			installPayload(buf, st.src)
		}
		r.ReleaseWorldShared(seq, treeBcastKind)
		done()
	}
}

// injectAllThen drives one node's injection side: the root's injector feeds
// the payload, every other node's injector feeds zeros into the global OR
// (paper §V-B). Injection is windowed against delivery to model the
// network's finite buffering.
func injectAllThen(r *mpi.Rank, st *treeBcastState, cont func()) {
	net := r.Machine().Tree
	p := r.Proc()
	var step func(i int)
	step = func(i int) {
		if i == len(st.spans) {
			cont()
			return
		}
		touch := net.TouchTime(st.spans[i].Len)
		after := func() {
			st.ops[i].Inject()
			step(i + 1)
		}
		if i >= injectWindow {
			pl := p.NewPlan()
			pl.Sleep(touch)
			p.WaitPlanThen(st.ops[i-injectWindow].Delivered(), pl, after)
		} else {
			p.SleepThen(touch, after)
		}
	}
	step(0)
}

// receiveAllThen drives one node's reception side, paying the core
// packet-touch cost per chunk and publishing progress to the node's software
// counter.
func receiveAllThen(r *mpi.Rank, st *treeBcastState, cont func()) {
	net := r.Machine().Tree
	sw := st.sw[r.NodeID()]
	p := r.Proc()
	var step func(i int)
	step = func(i int) {
		if i == len(st.spans) {
			cont()
			return
		}
		span := st.spans[i]
		pl := p.NewPlan()
		pl.Sleep(net.TouchTime(span.Len))
		p.WaitPlanThen(st.ops[i].Delivered(), pl, func() {
			sw.Add(int64(span.Len))
			step(i + 1)
		})
	}
	step(0)
}

// masterPumpThen drives both sides of the collective network on a single
// core, the way the production quad-mode algorithms do: the core alternates
// between injecting the next chunk and draining any chunks the network has
// delivered (paying a packet-touch each way), so chunk latency overlaps but
// the core's throughput halves — the imbalance the shared-address core
// specialization removes. onRecv runs after each chunk's reception cost and
// must call k exactly once when its own work completes.
func masterPumpThen(r *mpi.Rank, st *treeBcastState, onRecv func(i int, span hw.Span, k func()), cont func()) {
	net := r.Machine().Tree
	p := r.Proc()
	recvIdx := 0
	recvOne := func(k func()) {
		i := recvIdx
		span := st.spans[i]
		p.SleepThen(net.TouchTime(span.Len), func() {
			onRecv(i, span, func() {
				recvIdx++
				k()
			})
		})
	}
	// recvBlocked is recvOne behind a not-yet-delivered chunk: the wait and
	// the reception packet-touch fuse into one parked stretch.
	recvBlocked := func(k func()) {
		i := recvIdx
		span := st.spans[i]
		pl := p.NewPlan()
		pl.Sleep(net.TouchTime(span.Len))
		p.WaitPlanThen(st.ops[i].Delivered(), pl, func() {
			onRecv(i, span, func() {
				recvIdx++
				k()
			})
		})
	}
	var drain func(k func())
	drain = func(k func()) {
		if recvIdx < len(st.spans) && st.ops[recvIdx].Delivered().Fired() {
			recvOne(func() { drain(k) })
			return
		}
		k()
	}
	var tail func()
	tail = func() {
		if recvIdx < len(st.spans) {
			recvBlocked(tail)
			return
		}
		cont()
	}
	var inject func(i int)
	inject = func(i int) {
		if i == len(st.spans) {
			tail()
			return
		}
		// Injection back-pressure: the network buffers only a few chunks.
		if i-recvIdx >= injectWindow {
			recvBlocked(func() { inject(i) })
			return
		}
		span := st.spans[i]
		p.SleepThen(net.TouchTime(span.Len), func() { // inject (data or zeros)
			st.ops[i].Inject()
			drain(func() { inject(i + 1) })
		})
	}
	inject(0)
}

// bcastTreeSMP is the current SMP-mode algorithm (paper §V-B): the main
// thread injects while a helper communication thread receives, together
// saturating the collective network.
func bcastTreeSMP(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}
	k := r.Machine().K
	helperDone := k.NewEvent(fmt.Sprintf("treebc%d.helper%d", seq, r.Rank()))
	k.SpawnProgram(fmt.Sprintf("rank%d.comm", r.Rank()), func(p *sim.Proc) {
		net := r.Machine().Tree
		var step func(i int)
		step = func(i int) {
			if i == len(st.spans) {
				helperDone.Fire()
				return
			}
			pl := p.NewPlan()
			pl.Sleep(net.TouchTime(st.spans[i].Len))
			p.WaitPlanThen(st.ops[i].Delivered(), pl, func() { step(i + 1) })
		}
		step(0)
	})
	finish := treeFinish(r, st, seq, buf, root, done)
	injectAllThen(r, st, func() {
		r.Proc().WaitThen(helperDone, finish)
	})
}

// bcastTreeShmem is the quad-mode latency algorithm (paper §V-B): the master
// core injects and receives into a shared-memory segment, serialized on one
// core; peers copy the data out of the segment.
func bcastTreeShmem(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}

	node := r.NodeID()
	cached := quadBcastFootprint(r, buf.Len())
	finish := treeFinish(r, st, seq, buf, root, done)

	if r.IsNodeMaster() {
		sw := st.sw[node]
		masterPumpThen(r, st, func(i int, span hw.Span, k func()) {
			sw.Add(int64(span.Len))
			if r.Rank() != root {
				// The master's own buffer needs the data too: a third
				// byte-touch on the same core.
				r.Node().HW.CopyThen(r.Proc(), span.Len, cached, k)
				return
			}
			k()
		}, finish)
	} else {
		treePeerCopyThen(r, st, root, cached, finish)
	}
}

// treePeerCopyThen is the peer-side copy loop shared by the shmem and shaddr
// algorithms: wait on the node's software counter and copy arrived chunks.
func treePeerCopyThen(r *mpi.Rank, st *treeBcastState, root int, cached bool, cont func()) {
	sw := st.sw[r.NodeID()]
	isRoot := r.Rank() == root
	p := r.Proc()
	node := r.Node().HW
	var step func(i int, got int64)
	step = func(i int, got int64) {
		if i == len(st.spans) {
			st.done[r.NodeID()].Add(1)
			cont()
			return
		}
		span := st.spans[i]
		got += int64(span.Len)
		pl := p.NewPlan()
		if !isRoot {
			node.PlanPoll(pl)
			node.PlanCopy(pl, span.Len, cached)
		}
		g := got
		p.WaitGEPlanThen(sw, g, pl, func() { step(i+1, g) })
	}
	step(0, 0)
}

// bcastTreeDMAFIFO is the current quad-mode algorithm: the master core
// injects and receives; the DMA then moves the data to the peers' memory
// FIFOs, from which each peer's core copies into its application buffer.
func bcastTreeDMAFIFO(r *mpi.Rank, buf data.Buf, root int, done func()) {
	treeDMACommon(r, buf, root, true, done)
}

// bcastTreeDMADirect is the current quad-mode variant where the DMA
// direct-puts into the peers' application buffers, skipping the FIFO copy.
func bcastTreeDMADirect(r *mpi.Rank, buf data.Buf, root int, done func()) {
	treeDMACommon(r, buf, root, false, done)
}

func treeDMACommon(r *mpi.Rank, buf data.Buf, root int, fifo bool, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}
	m := r.Machine()

	node := r.NodeID()
	ppn := r.LocalSize()
	cached := quadBcastFootprint(r, buf.Len())
	finish := treeFinish(r, st, seq, buf, root, done)

	if r.IsNodeMaster() {
		masterPumpThen(r, st, func(i int, span hw.Span, k func()) {
			for p := 1; p < ppn; p++ {
				putDone := r.Node().DMA.LocalCopy(r.Now(), span.Len)
				cnt := st.peer[node][p]
				n := int64(span.Len)
				m.K.At(putDone, func() { cnt.Add(n) })
			}
			k()
		}, finish)
	} else {
		cnt := st.peer[node][r.LocalRank()]
		isRoot := r.Rank() == root
		p := r.Proc()
		hwNode := r.Node().HW
		var step func(i int, got int64)
		step = func(i int, got int64) {
			if i == len(st.spans) {
				finish()
				return
			}
			span := st.spans[i]
			got += int64(span.Len)
			pl := p.NewPlan()
			if fifo && !isRoot {
				// Memory-FIFO reception needs a core copy into the
				// application buffer.
				hwNode.PlanCopy(pl, span.Len, cached)
			}
			g := got
			p.WaitGEPlanThen(cnt, g, pl, func() { step(i+1, g) })
		}
		step(0, 0)
	}
}

// bcastTreeShaddr is the proposed quad-mode algorithm (paper §V-B, Fig. 4):
// core specialization over shared address space. Local rank 0 injects
// (payload at the root, zeros elsewhere), local rank 1 receives directly
// into its application buffer and publishes a software counter, ranks 2 and
// 3 copy through process windows, and rank 2 additionally fills rank 0's
// buffer — the injector has no cycles to copy, and memory bandwidth is at
// least twice the collective network's.
func bcastTreeShaddr(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTreeBcastState(r, seq, buf.Len())
	if r.Rank() == root {
		st.src = buf
	}
	node := r.NodeID()
	total := buf.Len()
	cached := quadBcastFootprint(r, total)
	rootRank := r.World().Rank(root)
	rootOnNode := rootRank.NodeID() == node
	finish := treeFinish(r, st, seq, buf, root, done)

	switch r.LocalRank() {
	case 0: // injection process
		st.r0Buf[node] = buf
		afterMap := func() {
			injectAllThen(r, st, func() {
				if r.Rank() != root {
					// Wait for rank 2 to fill this buffer.
					r.Proc().WaitGEThen(st.fill[node], int64(total), finish)
					return
				}
				finish()
			})
		}
		if rootOnNode && root != r.Rank() {
			// Inject the payload out of the root rank's buffer through a
			// process window.
			r.CNK().MapThen(r.Proc(), windowKey(rootRank.LocalRank(), st.src), total, afterMap)
		} else {
			afterMap()
		}

	case 1: // reception process: directly into its application buffer
		st.rxBuf[node] = buf
		if r.LocalSize() == 2 {
			// Dual mode has no dedicated copy processes: the reception
			// process also fills the injector's buffer.
			fillInjector := r.RankOf(node, 0) != root
			afterMap := func() {
				net := r.Machine().Tree
				sw := st.sw[node]
				p := r.Proc()
				var step func(i int)
				step = func(i int) {
					if i == len(st.spans) {
						finish()
						return
					}
					span := st.spans[i]
					pl := p.NewPlan()
					pl.Sleep(net.TouchTime(span.Len))
					pl.Add(sw, int64(span.Len))
					if fillInjector {
						r.Node().HW.PlanCopy(pl, span.Len, cached)
					}
					p.WaitPlanThen(st.ops[i].Delivered(), pl, func() {
						if fillInjector {
							st.fill[node].Add(int64(span.Len))
						}
						step(i + 1)
					})
				}
				step(0)
			}
			if fillInjector {
				r.CNK().MapThen(r.Proc(), windowKey(0, st.r0Buf[node]), total, afterMap)
			} else {
				afterMap()
			}
			return
		}
		receiveAllThen(r, st, finish)

	case 2: // copy process, also responsible for the injector's buffer
		sw := st.sw[node]
		r.Proc().WaitGEThen(sw, 1, func() {
			r.CNK().MapThen(r.Proc(), windowKey(1, st.rxBuf[node]), total, func() {
				fillInjector := r.RankOf(node, 0) != root
				run := func() {
					isRoot := r.Rank() == root
					p := r.Proc()
					hwNode := r.Node().HW
					var step func(i int, got int64)
					step = func(i int, got int64) {
						if i == len(st.spans) {
							st.done[node].Add(1)
							finish()
							return
						}
						span := st.spans[i]
						got += int64(span.Len)
						pl := p.NewPlan()
						hwNode.PlanPoll(pl)
						if !isRoot {
							hwNode.PlanCopy(pl, span.Len, cached)
						}
						if fillInjector {
							// The extra copy into rank 0's buffer; memory
							// bandwidth exceeds the tree's, so this does not
							// throttle the flow.
							hwNode.PlanCopy(pl, span.Len, cached)
							pl.Add(st.fill[node], int64(span.Len))
						}
						g := got
						p.WaitGEPlanThen(sw, g, pl, func() { step(i+1, g) })
					}
					step(0, 0)
				}
				if fillInjector {
					r.CNK().MapThen(r.Proc(), windowKey(0, st.r0Buf[node]), total, run)
				} else {
					run()
				}
			})
		})

	case 3: // copy process
		sw := st.sw[node]
		r.Proc().WaitGEThen(sw, 1, func() {
			r.CNK().MapThen(r.Proc(), windowKey(1, st.rxBuf[node]), total, func() {
				treePeerCopyThen(r, st, root, cached, finish)
			})
		})
	}
}
