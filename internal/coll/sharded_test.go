package coll

import (
	"strings"
	"testing"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// shardedConfig returns a phantom-buffer partition split into the given
// number of kernel shards (0 = classic single-shard build). Sharded runs
// support timing-only mode exclusively, so the serial reference uses the
// same phantom config with sharding off: the virtual times must match bit
// for bit.
func shardedConfig(shards int) hw.Config {
	cfg := testConfig(2, 2, 2, hw.Quad)
	cfg.Functional = false
	cfg.Shards = shards
	return cfg
}

// runSharded builds a world from cfg (optionally forcing the sequential
// noShard vehicle), selects the broadcast algorithm up front — tunables are
// shared state and may not be written from rank bodies once shard windows
// run in parallel — runs fn on every rank, and returns the elapsed virtual
// time.
func runSharded(t *testing.T, cfg hw.Config, algo string, noShard bool, fn func(r *mpi.Rank)) sim.Time {
	t.Helper()
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Bcast = algo
	w.M.K.SetNoShard(noShard)
	elapsed, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

// vehicles runs the workload serially, sharded-parallel, and sharded-
// sequential (noShard), and requires all three virtual times to be equal:
// sharding is a wall-clock optimization and must be invisible in virtual
// time.
func vehicles(t *testing.T, shards int, algo string, fn func(r *mpi.Rank)) sim.Time {
	t.Helper()
	label := algo
	if label == "" {
		label = "auto"
	}
	serial := runSharded(t, shardedConfig(0), algo, false, fn)
	parallel := runSharded(t, shardedConfig(shards), algo, false, fn)
	sequential := runSharded(t, shardedConfig(shards), algo, true, fn)
	if parallel != serial {
		t.Errorf("%s: sharded time %v != serial %v", label, parallel, serial)
	}
	if sequential != parallel {
		t.Errorf("%s: noShard time %v != sharded %v", label, sequential, parallel)
	}
	return serial
}

var shardedTreeAlgos = []string{
	mpi.BcastTreeShmem,
	mpi.BcastTreeDMAFIFO,
	mpi.BcastTreeDMADirect,
	mpi.BcastTreeShaddr,
}

// TestShardedTreeBcastMatchesSerial checks every collective-network
// broadcast algorithm at small, medium, and pipelined-large sizes on a
// 4-shard partition against the single-shard reference.
func TestShardedTreeBcastMatchesSerial(t *testing.T) {
	for _, algo := range shardedTreeAlgos {
		for _, msg := range []int{64, 8 << 10, 200 << 10} {
			fn := func(r *mpi.Rank) {
				r.Bcast(r.NewBuf(msg), 0)
			}
			if elapsed := vehicles(t, 4, algo, fn); elapsed == 0 {
				t.Errorf("%s/%d: zero elapsed time", algo, msg)
			}
		}
	}
}

// TestShardedBcastNonZeroRoot exercises the root-forwarding path (root is
// node 2 local rank 1, living on a different shard than node 0).
func TestShardedBcastNonZeroRoot(t *testing.T) {
	for _, algo := range shardedTreeAlgos {
		vehicles(t, 4, algo, func(r *mpi.Rank) {
			r.Bcast(r.NewBuf(32<<10), 9)
		})
	}
}

// TestShardedSMPBcast covers the SMP-mode helper-process algorithm, whose
// helper is spawned mid-run on the rank's own shard.
func TestShardedSMPBcast(t *testing.T) {
	for _, msg := range []int{64, 128 << 10} {
		fn := func(r *mpi.Rank) {
			r.Bcast(r.NewBuf(msg), 0)
		}
		cfg := testConfig(2, 2, 2, hw.SMP)
		cfg.Functional = false
		serial := runSharded(t, cfg, mpi.BcastTreeSMP, false, fn)
		cfg.Shards = 4
		if got := runSharded(t, cfg, mpi.BcastTreeSMP, false, fn); got != serial {
			t.Errorf("msg %d: sharded SMP time %v != serial %v", msg, got, serial)
		}
	}
}

// TestShardedBarrierMatchesSerial staggers rank arrivals across shards: the
// hub must release every node exactly one interrupt-network latency after
// the globally last arrival, as the serial protocol does.
func TestShardedBarrierMatchesSerial(t *testing.T) {
	vehicles(t, 4, "barrier", func(r *mpi.Rank) {
		for iter := 0; iter < 3; iter++ {
			r.Proc().Sleep(sim.Time(r.Rank()*(137+iter)) * sim.Nanosecond)
			r.Barrier()
		}
	})
}

// TestShardedMixedWorkload chains automatically-selected broadcasts from
// shifting roots and sizes with barriers — the cross-shard mailbox order
// must reproduce the serial schedule across collective boundaries, not just
// within one.
func TestShardedMixedWorkload(t *testing.T) {
	vehicles(t, 4, "", func(r *mpi.Rank) {
		for iter, msg := range []int{512, 4 << 10, 100 << 10} {
			r.Bcast(r.NewBuf(msg), (iter*5)%r.Size())
			r.Barrier()
		}
	})
}

// TestShardedWorldResetReuse leases one sharded world for repeated runs:
// Reset must restore every shard (clocks, mailboxes, per-shard op registry,
// hub barrier state) so a reused world reproduces the fresh world's time.
func TestShardedWorldResetReuse(t *testing.T) {
	fn := func(r *mpi.Rank) {
		r.Bcast(r.NewBuf(16<<10), 0)
		r.Barrier()
		r.Bcast(r.NewBuf(512), 3)
	}
	w, err := mpi.NewWorld(shardedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Bcast = mpi.BcastTreeShaddr
	first, err := w.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	for rerun := 0; rerun < 3; rerun++ {
		w.Reset()
		w.Tunables.Bcast = mpi.BcastTreeShaddr
		again, err := w.Run(fn)
		if err != nil {
			t.Fatalf("rerun %d: %v", rerun, err)
		}
		if again != first {
			t.Fatalf("rerun %d: time %v != first run %v", rerun, again, first)
		}
	}
}

// TestShardedWorldRejectsWorldScopedState pins the guard rail: collectives
// built on job-wide shared state (the torus and allreduce families) are not
// shard-capable, and a sharded world fails their runs loudly instead of
// racing on a shared map.
func TestShardedWorldRejectsWorldScopedState(t *testing.T) {
	w, err := mpi.NewWorld(shardedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Run(func(r *mpi.Rank) {
		r.WorldShared(r.NextSeq(), "probe", func() any { return struct{}{} })
	})
	if err == nil || !strings.Contains(err.Error(), "not shard-capable") {
		t.Fatalf("want shard-capability error, got %v", err)
	}
}
