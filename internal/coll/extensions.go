package coll

import (
	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/mpi"
)

// Extension collectives beyond the paper's evaluation, built from the same
// substrates (the paper's future work, §VII): Reduce reuses the allreduce
// machinery without the broadcast-down phase; Scatter and Alltoall use the
// point-to-point layer.

const (
	scatterTagBase  = 2 << 20
	alltoallTagBase = 3 << 20
)

const reduceKind = "reduce"

// reduceTorus implements MPI_Reduce with the shared-address local reduction
// and the multi-color chain schedule, delivering only to the root's node.
func reduceTorus(r *mpi.Rank, send, recv data.Buf, root int) {
	seq := r.NextSeq()
	bytes := send.Len()
	st := r.WorldShared(seq, reduceKind, func() any {
		return newAllreduceShared(r, seq, bytes, 1)
	}).(*allreduceState)
	defer r.ReleaseWorldShared(seq, reduceKind)
	m := r.Machine()
	node := r.NodeID()
	ppn := r.LocalSize()
	cached := r.Node().HW.Cached((2*ppn + 2) * bytes)
	rootRank := r.World().Rank(root)

	st.sends[r.Rank()] = send
	st.ready[node].Add(1)

	if r.Rank() == root {
		st.exec = &ccmi.Allreduce{
			M:           m,
			Root:        rootRank.Coord(),
			Bytes:       bytes,
			Colors:      geometry.Colors(allreduceColors),
			Lane0:       6,
			Contrib:     st.contrib,
			ContribBufs: st.scratch,
			ResultBufs:  st.result,
			Deliveries:  st.dels,
			ProtoPipes:  st.proto,
			ReduceOnly:  true,
		}
		st.exec.Run()
	}

	offs, lens := geometry.SplitAligned(bytes, allreduceColors, data.Float64Len)
	if ppn == 1 {
		// SMP mode: the node's contribution is the send buffer itself.
		if st.scratch[node].IsReal() && send.IsReal() && st.scratch[node].Len() == send.Len() {
			data.Copy(st.scratch[node], send)
		}
		for c := 0; c < allreduceColors; c++ {
			st.contrib[node][c].Add(int64(lens[c]))
		}
	} else if lr := r.LocalRank(); lr > 0 {
		// Cores 1..3: local reduce, one color partition each (as in the
		// shared-address allreduce).
		r.Proc().WaitGE(st.ready[node], int64(ppn))
		for p := 0; p < ppn; p++ {
			if p != lr {
				r.CNK().Map(r.Proc(), windowKey(p, st.sends[r.RankOf(node, p)]), bytes)
			}
		}
		color := lr - 1
		if color >= allreduceColors {
			color = allreduceColors - 1
		}
		for _, chunk := range m.Cfg.Params.Chunks(lens[color]) {
			r.Node().HW.Reduce(r.Proc(), 2*chunk.Len, cached)
			foldLocal(st, r, node, offs[color]+chunk.Off, chunk.Len)
			st.contrib[node][color].Add(int64(chunk.Len))
		}
		if lr == ppn-1 {
			for c := ppn - 1; c < allreduceColors; c++ {
				for _, chunk := range m.Cfg.Params.Chunks(lens[c]) {
					r.Node().HW.Reduce(r.Proc(), 2*chunk.Len, cached)
					foldLocal(st, r, node, offs[c]+chunk.Off, chunk.Len)
					st.contrib[node][c].Add(int64(chunk.Len))
				}
			}
		}
	}

	// Only the root rank waits for and takes the result.
	if r.Rank() == root {
		rootNode := rootRank.NodeID()
		r.Proc().WaitGE(st.dels[rootNode].Counter, int64(bytes))
		if !r.IsNodeMaster() {
			// The result landed in the node master's receive buffer; pull
			// it through a process window.
			r.CNK().Map(r.Proc(), windowKey(0, st.result[rootNode]), bytes)
			r.Node().HW.Copy(r.Proc(), bytes, cached)
		}
		if recv.Len() == bytes {
			installPayload(recv, st.result[rootNode])
		}
	}
}

// scatterTorus implements MPI_Scatter: the root streams each rank's block
// with nonblocking sends so the transfers pipeline; receivers simply post.
func scatterTorus(r *mpi.Rank, send, recv data.Buf, root int) {
	seq := r.NextSeq()
	tag := scatterTagBase + int(seq%scatterTagBase)
	block := recv.Len()
	if r.Rank() != root {
		r.Recv(root, recv, tag)
		return
	}
	if send.Len() != block*r.Size() {
		panic("coll: scatter send buffer must hold Size() blocks")
	}
	reqs := make([]*mpi.Request, 0, r.Size()-1)
	for dst := 0; dst < r.Size(); dst++ {
		if dst == root {
			r.Node().HW.Copy(r.Proc(), block, r.Node().HW.Cached(2*block))
			data.Copy(recv, send.Slice(root*block, block))
			continue
		}
		reqs = append(reqs, r.Isend(dst, send.Slice(dst*block, block), tag))
	}
	r.WaitAll(reqs...)
}

// alltoallTorus implements MPI_Alltoall with the pairwise-exchange ring: in
// step s every rank sends its block for rank (me+s) while receiving from
// (me-s). Sendrecv keeps each step deadlock-free regardless of protocol.
func alltoallTorus(r *mpi.Rank, send, recv data.Buf) {
	seq := r.NextSeq()
	size := r.Size()
	if send.Len()%size != 0 || recv.Len() != send.Len() {
		panic("coll: alltoall buffers must hold Size() equal blocks")
	}
	block := send.Len() / size
	me := r.Rank()
	base := alltoallTagBase + int(seq%alltoallTagBase)

	// Own block.
	r.Node().HW.Copy(r.Proc(), block, r.Node().HW.Cached(2*block))
	data.Copy(recv.Slice(me*block, block), send.Slice(me*block, block))

	for s := 1; s < size; s++ {
		dst := (me + s) % size
		src := (me - s + size) % size
		r.Sendrecv(dst, send.Slice(dst*block, block), base+s,
			src, recv.Slice(src*block, block), base+s)
	}
}
