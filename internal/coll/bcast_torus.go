package coll

import (
	"fmt"

	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// The torus broadcasts are written in explicit-resume (program) style like
// the tree algorithms: each chunk loop is a small state machine whose
// continuations are method values bound once per rank per broadcast (see the
// note in bcast_tree.go), so program-mode ranks run them without goroutines
// or per-chunk closure garbage while goroutine-backed ranks execute the
// identical bodies synchronously.

// torusBcastState is the job-wide shared state of one torus broadcast: the
// per-node network delivery logs plus the intra-node coordination counters
// each algorithm variant needs.
type torusBcastState struct {
	src  data.Buf
	dels []*ccmi.Delivery

	sw   []*sim.Counter   // per node: master-published software message counter
	done []*sim.Counter   // per node: peers finished copying out
	peer [][]*sim.Counter // per node, per local peer: bytes landed for that peer
	enq  []*sim.Counter   // per node: Bcast-FIFO bytes enqueued by the master

	masterBuf []data.Buf // per node: the master's receive buffer (window keys)
}

const torusBcastKind = "bcast.torus"

func getTorusBcastState(r *mpi.Rank, seq int64) *torusBcastState {
	return r.WorldShared(seq, torusBcastKind, func() any {
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		st := &torusBcastState{
			dels: make([]*ccmi.Delivery, nodes),
			sw:   make([]*sim.Counter, nodes),
			done: make([]*sim.Counter, nodes),
			peer: make([][]*sim.Counter, nodes),
			enq:  make([]*sim.Counter, nodes),
		}
		for n := 0; n < nodes; n++ {
			st.dels[n] = ccmi.NewDelivery(m.K, fmt.Sprintf("bcast%d.node%d", seq, n))
			st.sw[n] = m.K.NewCounter("sw")
			st.done[n] = m.K.NewCounter("done")
			st.enq[n] = m.K.NewCounter("enq")
			st.peer[n] = make([]*sim.Counter, ppn)
			for p := 1; p < ppn; p++ {
				st.peer[n][p] = m.K.NewCounter("peer")
			}
		}
		st.masterBuf = make([]data.Buf, nodes)
		return st
	}).(*torusBcastState)
}

// torusFinish builds the completion continuation every torus broadcast ends
// with: install the payload on non-root ranks, release the shared state (the
// position the blocking form's defer ran at), then continue.
func torusFinish(r *mpi.Rank, st *torusBcastState, seq int64, buf data.Buf, root int, done func()) func() {
	return func() {
		if r.Rank() != root {
			installPayload(buf, st.src)
		}
		r.ReleaseWorldShared(seq, torusBcastKind)
		done()
	}
}

// startTorusNetwork launches the multi-color rectangle broadcast from the
// root rank's node. Called by the root rank only.
func startTorusNetwork(r *mpi.Rank, st *torusBcastState, buf data.Buf, hook func(node int, span hw.Span, t sim.Time)) {
	m := r.Machine()
	st.src = buf
	colors := m.Colors()
	if n := r.World().Tunables.TorusColors; n > 0 && n <= len(colors) {
		colors = colors[:n]
	}
	b := &ccmi.Bcast{
		M:          m,
		Root:       r.Coord(),
		Src:        buf,
		Bufs:       make([]data.Buf, m.Geom.Nodes()),
		Deliveries: st.dels,
		Colors:     colors,
		Lane0:      0,
		Hook:       hook,
	}
	b.Run()
}

// bcastTorusDirectPut is the current production algorithm (paper §V-A): the
// DMA performs the network transfer, and in quad mode also the fourth,
// intra-node dimension of the spanning tree — three additional local direct
// puts per delivered chunk, all contending on the same engine.
func bcastTorusDirectPut(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	total := buf.Len()
	m := r.Machine()
	ppn := r.LocalSize()
	finish := torusFinish(r, st, seq, buf, root, done)

	if r.Rank() == root {
		hook := func(node int, span hw.Span, t sim.Time) {
			// AddAt is the closure-free At(putDone, func() { cnt.Add(n) }):
			// one scheduled add per (chunk, peer), the same hot site the tree
			// DMA broadcasts converted.
			for p := 1; p < ppn; p++ {
				putDone := m.Node(node).DMA.LocalCopy(t, span.Len)
				m.K.AddAt(putDone, st.peer[node][p], int64(span.Len))
			}
		}
		startTorusNetwork(r, st, buf, hook)
	}

	if r.IsNodeMaster() {
		// Block until this rank's node has received the full message.
		r.Proc().WaitGEThen(st.dels[r.NodeID()].Counter, int64(total), finish)
	} else {
		r.Proc().WaitGEThen(st.peer[r.NodeID()][r.LocalRank()], int64(total), finish)
	}
}

// bcastTorusShaddr is the proposed shared-address algorithm (paper §V-A):
// the network direct-puts into the master's application buffer; the master
// mirrors the DMA byte counters into a software message counter; peers copy
// newly arrived ranges directly out of the master's buffer through process
// windows; an atomic completion counter returns the buffer to the master.
func bcastTorusShaddr(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	total := buf.Len()
	node := r.NodeID()
	finish := torusFinish(r, st, seq, buf, root, done)

	if r.Rank() == root {
		startTorusNetwork(r, st, buf, nil)
	}

	switch {
	case r.IsNodeMaster():
		st.masterBuf[node] = buf
		l := &torusPumpLoop{
			del: st.dels[node], sw: st.sw[node], done: st.done[node],
			p: r.Proc(), node: r.Node().HW,
			peers: int64(r.LocalSize() - 1), total: total, cont: finish,
		}
		l.drainFn = l.drain
		l.mirrorFn = l.mirror
		l.step()

	default:
		sw := st.sw[node]
		if r.Rank() == root {
			// A non-master root already holds the data; it only signals.
			st.done[node].Add(1)
			finish()
			return
		}
		// The first published range also tells us the master has arrived
		// and its buffer is registered; map it once.
		r.Proc().WaitGEThen(sw, 1, func() {
			r.CNK().MapThen(r.Proc(), windowKey(0, st.masterBuf[node]), total, func() {
				l := &torusPeerCopyLoop{
					del: st.dels[node], sw: sw, done: st.done[node],
					p: r.Proc(), node: r.Node().HW,
					cached: quadBcastFootprint(r, total), total: total, cont: finish,
				}
				l.arriveFn = l.arrive
				l.drainFn = l.drainAvail
				l.afterFn = l.afterCopy
				l.outer()
			})
		})
	}
}

// torusPumpLoop is the shaddr master's mirror pump: wait for new DMA
// delivery progress, then mirror the hardware counter into the shared
// software counter the peers poll (one poll charge per batch).
type torusPumpLoop struct {
	del      *ccmi.Delivery
	sw       *sim.Counter
	done     *sim.Counter
	p        *sim.Proc
	node     *hw.Node
	peers    int64
	total    int
	spanIdx  int
	got      int
	batch    int
	cont     func()
	drainFn  func()
	mirrorFn func()
}

//bgplint:hot
func (l *torusPumpLoop) step() {
	if l.got >= l.total {
		// The master may reuse its buffer once every peer has copied out.
		l.p.WaitGEThen(l.done, l.peers, l.cont)
		return
	}
	l.p.WaitGEThen(l.del.Counter, int64(l.got)+1, l.drainFn)
}

//bgplint:hot
func (l *torusPumpLoop) drain() {
	l.batch = sumSpanLens(l.del.Drain(&l.spanIdx))
	l.node.PollThen(l.p, l.mirrorFn)
}

//bgplint:hot
func (l *torusPumpLoop) mirror() {
	l.sw.Add(int64(l.batch))
	l.got += l.batch
	l.step()
}

// torusPeerCopyLoop is the shaddr peer's copy-out loop: wait for the master
// to publish new ranges, poll the software counter, and copy every newly
// delivered span out of the master's buffer through the process window.
type torusPeerCopyLoop struct {
	del      *ccmi.Delivery
	sw       *sim.Counter
	done     *sim.Counter
	p        *sim.Proc
	node     *hw.Node
	cached   bool
	total    int
	spanIdx  int
	seen     int
	avail    int
	lastLen  int
	cont     func()
	arriveFn func()
	drainFn  func()
	afterFn  func()
}

//bgplint:hot
func (l *torusPeerCopyLoop) outer() {
	if l.seen >= l.total {
		l.done.Add(1)
		l.cont()
		return
	}
	l.p.WaitGEThen(l.sw, int64(l.seen)+1, l.arriveFn)
}

//bgplint:hot
func (l *torusPeerCopyLoop) arrive() {
	l.node.PollThen(l.p, l.drainFn)
}

//bgplint:hot
func (l *torusPeerCopyLoop) drainAvail() {
	l.avail = int(l.sw.Value())
	l.copyNext()
}

//bgplint:hot
func (l *torusPeerCopyLoop) copyNext() {
	if l.spanIdx < len(l.del.Spans) && l.seen < l.avail {
		span := l.del.Spans[l.spanIdx]
		l.spanIdx++
		l.lastLen = span.Len
		l.node.CopyThen(l.p, span.Len, l.cached, l.afterFn)
		return
	}
	l.outer()
}

//bgplint:hot
func (l *torusPeerCopyLoop) afterCopy() {
	l.seen += l.lastLen
	l.copyNext()
}

// bcastTorusFIFO is the shared-memory Bcast-FIFO algorithm (paper §V-A): the
// master packetizes chunks received in its application buffer into the
// concurrent broadcast FIFO (data plus connection-id metadata per slot); the
// three peers dequeue every slot. FIFO capacity provides back-pressure.
func bcastTorusFIFO(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	total := buf.Len()
	node := r.NodeID()
	params := r.Machine().Cfg.Params
	slot := params.FIFOSlotBytes
	capacity := slot * params.FIFOSlots
	// Staging through the FIFO doubles the traffic over every byte, so the
	// effective working set is twice the shared-address scheme's; large
	// messages fall out of the cache earlier.
	cached := r.Node().HW.Cached(2 * r.LocalSize() * total)
	finish := torusFinish(r, st, seq, buf, root, done)

	if r.Rank() == root {
		startTorusNetwork(r, st, buf, nil)
	}

	switch {
	case r.IsNodeMaster():
		l := &fifoMasterLoop{
			del: st.dels[node], enq: st.enq[node], done: st.done[node],
			peer: st.peer[node], p: r.Proc(), node: r.Node().HW,
			peers: r.LocalSize(), total: total, slot: slot,
			capacity: capacity, cached: cached, cont: finish,
		}
		l.availFn = l.onAvail
		l.copiedFn = l.copied
		l.peerOKFn = l.peerOK
		l.outer()

	default:
		l := &fifoPeerLoop{
			enq: st.enq[node], consumed: st.peer[node][r.LocalRank()],
			done: st.done[node], p: r.Proc(), node: r.Node().HW,
			isRoot: r.Rank() == root, cached: cached, total: total, slot: slot,
			cont: finish,
		}
		l.availFn = l.onAvail
		l.copyFn = l.copySlot
		l.afterFn = l.after
		l.outer()
	}
}

// fifoMasterLoop is the Bcast-FIFO master's packetizer: wait for new network
// delivery, carve the arrived bytes into FIFO slots, enforce the capacity
// back-pressure against the slowest peer, and pay a core copy per slot.
type fifoMasterLoop struct {
	del      *ccmi.Delivery
	enq      *sim.Counter
	done     *sim.Counter
	peer     []*sim.Counter
	p        *sim.Proc
	node     *hw.Node
	peers    int
	total    int
	slot     int
	capacity int
	cached   bool
	enqueued int
	avail    int
	piece    int
	thr      int64
	waitIdx  int
	cont     func()
	availFn  func()
	copiedFn func()
	peerOKFn func()
}

//bgplint:hot
func (l *fifoMasterLoop) outer() {
	if l.enqueued >= l.total {
		l.p.WaitGEThen(l.done, int64(l.peers-1), l.cont)
		return
	}
	l.p.WaitGEThen(l.del.Counter, int64(l.enqueued)+1, l.availFn)
}

//bgplint:hot
func (l *fifoMasterLoop) onAvail() {
	l.avail = int(l.del.Counter.Value())
	l.slots()
}

//bgplint:hot
func (l *fifoMasterLoop) slots() {
	if l.enqueued >= l.avail {
		l.outer()
		return
	}
	l.piece = l.slot
	if l.avail-l.enqueued < l.piece {
		l.piece = l.avail - l.enqueued
	}
	// Space check: every peer must have drained far enough that a slot is
	// free (myslot - head < fifoSize).
	if thr := int64(l.enqueued + l.piece - l.capacity); thr > 0 {
		l.thr = thr
		l.waitIdx = 1
		l.waitPeers()
		return
	}
	l.enqueue()
}

//bgplint:hot
func (l *fifoMasterLoop) waitPeers() {
	if l.waitIdx >= l.peers {
		l.enqueue()
		return
	}
	l.p.WaitGEThen(l.peer[l.waitIdx], l.thr, l.peerOKFn)
}

//bgplint:hot
func (l *fifoMasterLoop) peerOK() {
	l.waitIdx++
	l.waitPeers()
}

//bgplint:hot
func (l *fifoMasterLoop) enqueue() {
	// Copy data and metadata into the reserved slot.
	l.node.CopyThen(l.p, l.piece, l.cached, l.copiedFn)
}

//bgplint:hot
func (l *fifoMasterLoop) copied() {
	l.enq.Add(int64(l.piece))
	l.enqueued += l.piece
	l.slots()
}

// fifoPeerLoop is the Bcast-FIFO reader loop each peer runs: wait for the
// master to enqueue, then dequeue every available slot, paying a poll and a
// core copy per slot (the root already holds the data and only advances its
// head pointer).
type fifoPeerLoop struct {
	enq      *sim.Counter
	consumed *sim.Counter
	done     *sim.Counter
	p        *sim.Proc
	node     *hw.Node
	isRoot   bool
	cached   bool
	total    int
	slot     int
	seen     int
	avail    int
	piece    int
	cont     func()
	availFn  func()
	copyFn   func()
	afterFn  func()
}

//bgplint:hot
func (l *fifoPeerLoop) outer() {
	if l.seen >= l.total {
		l.done.Add(1)
		l.cont()
		return
	}
	l.p.WaitGEThen(l.enq, int64(l.seen)+1, l.availFn)
}

//bgplint:hot
func (l *fifoPeerLoop) onAvail() {
	l.avail = int(l.enq.Value())
	l.slots()
}

//bgplint:hot
func (l *fifoPeerLoop) slots() {
	if l.seen >= l.avail {
		l.outer()
		return
	}
	l.piece = l.slot
	if l.avail-l.seen < l.piece {
		l.piece = l.avail - l.seen
	}
	if !l.isRoot {
		l.node.PollThen(l.p, l.copyFn)
		return
	}
	l.after()
}

//bgplint:hot
func (l *fifoPeerLoop) copySlot() {
	l.node.CopyThen(l.p, l.piece, l.cached, l.afterFn)
}

//bgplint:hot
func (l *fifoPeerLoop) after() {
	// The last arriving reader's decrement frees the slot.
	l.consumed.Add(int64(l.piece))
	l.seen += l.piece
	l.slots()
}
