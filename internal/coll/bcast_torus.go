package coll

import (
	"fmt"

	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// torusBcastState is the job-wide shared state of one torus broadcast: the
// per-node network delivery logs plus the intra-node coordination counters
// each algorithm variant needs.
type torusBcastState struct {
	src  data.Buf
	dels []*ccmi.Delivery

	sw   []*sim.Counter   // per node: master-published software message counter
	done []*sim.Counter   // per node: peers finished copying out
	peer [][]*sim.Counter // per node, per local peer: bytes landed for that peer
	enq  []*sim.Counter   // per node: Bcast-FIFO bytes enqueued by the master

	masterBuf []data.Buf // per node: the master's receive buffer (window keys)
}

const torusBcastKind = "bcast.torus"

func getTorusBcastState(r *mpi.Rank, seq int64) *torusBcastState {
	return r.WorldShared(seq, torusBcastKind, func() any {
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		st := &torusBcastState{
			dels: make([]*ccmi.Delivery, nodes),
			sw:   make([]*sim.Counter, nodes),
			done: make([]*sim.Counter, nodes),
			peer: make([][]*sim.Counter, nodes),
			enq:  make([]*sim.Counter, nodes),
		}
		for n := 0; n < nodes; n++ {
			st.dels[n] = ccmi.NewDelivery(m.K, fmt.Sprintf("bcast%d.node%d", seq, n))
			st.sw[n] = m.K.NewCounter("sw")
			st.done[n] = m.K.NewCounter("done")
			st.enq[n] = m.K.NewCounter("enq")
			st.peer[n] = make([]*sim.Counter, ppn)
			for p := 1; p < ppn; p++ {
				st.peer[n][p] = m.K.NewCounter("peer")
			}
		}
		st.masterBuf = make([]data.Buf, nodes)
		return st
	}).(*torusBcastState)
}

// startTorusNetwork launches the multi-color rectangle broadcast from the
// root rank's node. Called by the root rank only.
func startTorusNetwork(r *mpi.Rank, st *torusBcastState, buf data.Buf, hook func(node int, span hw.Span, t sim.Time)) {
	m := r.Machine()
	st.src = buf
	colors := m.Colors()
	if n := r.World().Tunables.TorusColors; n > 0 && n <= len(colors) {
		colors = colors[:n]
	}
	b := &ccmi.Bcast{
		M:          m,
		Root:       r.Coord(),
		Src:        buf,
		Bufs:       make([]data.Buf, m.Geom.Nodes()),
		Deliveries: st.dels,
		Colors:     colors,
		Lane0:      0,
		Hook:       hook,
	}
	b.Run()
}

// waitNodeDelivery blocks until this rank's node has received the full
// message over the network.
func waitNodeDelivery(r *mpi.Rank, st *torusBcastState, total int) {
	r.Proc().WaitGE(st.dels[r.NodeID()].Counter, int64(total))
}

// bcastTorusDirectPut is the current production algorithm (paper §V-A): the
// DMA performs the network transfer, and in quad mode also the fourth,
// intra-node dimension of the spanning tree — three additional local direct
// puts per delivered chunk, all contending on the same engine.
func bcastTorusDirectPut(r *mpi.Rank, buf data.Buf, root int) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	defer r.ReleaseWorldShared(seq, torusBcastKind)
	total := buf.Len()
	m := r.Machine()
	ppn := r.LocalSize()

	if r.Rank() == root {
		hook := func(node int, span hw.Span, t sim.Time) {
			for p := 1; p < ppn; p++ {
				putDone := m.Node(node).DMA.LocalCopy(t, span.Len)
				cnt := st.peer[node][p]
				m.K.At(putDone, func() { cnt.Add(int64(span.Len)) })
			}
		}
		startTorusNetwork(r, st, buf, hook)
	}

	if r.IsNodeMaster() {
		waitNodeDelivery(r, st, total)
	} else {
		r.Proc().WaitGE(st.peer[r.NodeID()][r.LocalRank()], int64(total))
	}
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}

// bcastTorusShaddr is the proposed shared-address algorithm (paper §V-A):
// the network direct-puts into the master's application buffer; the master
// mirrors the DMA byte counters into a software message counter; peers copy
// newly arrived ranges directly out of the master's buffer through process
// windows; an atomic completion counter returns the buffer to the master.
func bcastTorusShaddr(r *mpi.Rank, buf data.Buf, root int) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	defer r.ReleaseWorldShared(seq, torusBcastKind)
	total := buf.Len()
	node := r.NodeID()

	if r.Rank() == root {
		startTorusNetwork(r, st, buf, nil)
	}

	switch {
	case r.IsNodeMaster():
		st.masterBuf[node] = buf
		del := st.dels[node]
		sw := st.sw[node]
		spanIdx := 0
		for got := 0; got < total; {
			r.Proc().WaitGE(del.Counter, int64(got)+1)
			batch := sumSpanLens(del.Drain(&spanIdx))
			got += batch
			// Mirror the hardware counter into the shared software
			// counter the peers poll.
			r.Node().HW.Poll(r.Proc())
			sw.Add(int64(batch))
		}
		// The master may reuse its buffer once every peer has copied out.
		r.Proc().WaitGE(st.done[node], int64(r.LocalSize()-1))

	default:
		sw := st.sw[node]
		del := st.dels[node]
		if r.Rank() == root {
			// A non-master root already holds the data; it only signals.
			st.done[node].Add(1)
			break
		}
		// The first published range also tells us the master has arrived
		// and its buffer is registered; map it once.
		r.Proc().WaitGE(sw, 1)
		r.CNK().Map(r.Proc(), windowKey(0, st.masterBuf[node]), total)
		cached := quadBcastFootprint(r, total)
		spanIdx := 0
		for seen := 0; seen < total; {
			r.Proc().WaitGE(sw, int64(seen)+1)
			r.Node().HW.Poll(r.Proc())
			avail := int(sw.Value())
			for spanIdx < len(del.Spans) && seen < avail {
				span := del.Spans[spanIdx]
				spanIdx++
				r.Node().HW.Copy(r.Proc(), span.Len, cached)
				seen += span.Len
			}
		}
		st.done[node].Add(1)
	}
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}

// bcastTorusFIFO is the shared-memory Bcast-FIFO algorithm (paper §V-A): the
// master packetizes chunks received in its application buffer into the
// concurrent broadcast FIFO (data plus connection-id metadata per slot); the
// three peers dequeue every slot. FIFO capacity provides back-pressure.
func bcastTorusFIFO(r *mpi.Rank, buf data.Buf, root int) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	defer r.ReleaseWorldShared(seq, torusBcastKind)
	total := buf.Len()
	node := r.NodeID()
	params := r.Machine().Cfg.Params
	slot := params.FIFOSlotBytes
	capacity := slot * params.FIFOSlots
	// Staging through the FIFO doubles the traffic over every byte, so the
	// effective working set is twice the shared-address scheme's; large
	// messages fall out of the cache earlier.
	cached := r.Node().HW.Cached(2 * r.LocalSize() * total)

	if r.Rank() == root {
		startTorusNetwork(r, st, buf, nil)
	}

	switch {
	case r.IsNodeMaster():
		del := st.dels[node]
		enq := st.enq[node]
		enqueued := 0
		for enqueued < total {
			r.Proc().WaitGE(del.Counter, int64(enqueued)+1)
			avail := int(del.Counter.Value())
			for enqueued < avail {
				piece := slot
				if avail-enqueued < piece {
					piece = avail - enqueued
				}
				// Space check: every peer must have drained far enough
				// that a slot is free (myslot - head < fifoSize).
				if thr := int64(enqueued + piece - capacity); thr > 0 {
					for p := 1; p < r.LocalSize(); p++ {
						r.Proc().WaitGE(st.peer[node][p], thr)
					}
				}
				// Copy data and metadata into the reserved slot.
				r.Node().HW.Copy(r.Proc(), piece, cached)
				enq.Add(int64(piece))
				enqueued += piece
			}
		}
		r.Proc().WaitGE(st.done[node], int64(r.LocalSize()-1))

	default:
		enq := st.enq[node]
		consumed := st.peer[node][r.LocalRank()]
		isRoot := r.Rank() == root
		for seen := 0; seen < total; {
			r.Proc().WaitGE(enq, int64(seen)+1)
			avail := int(enq.Value())
			for seen < avail {
				piece := slot
				if avail-seen < piece {
					piece = avail - seen
				}
				if !isRoot {
					r.Node().HW.Poll(r.Proc())
					r.Node().HW.Copy(r.Proc(), piece, cached)
				}
				// The last arriving reader's decrement frees the slot.
				consumed.Add(int64(piece))
				seen += piece
			}
		}
		st.done[node].Add(1)
	}
	if r.Rank() != root {
		installPayload(buf, st.src)
	}
}
