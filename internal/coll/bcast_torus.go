package coll

import (
	"fmt"

	"bgpcoll/internal/ccmi"
	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

// The torus broadcasts are written in explicit-resume (program) style like
// the tree algorithms: recursive continuation closures replace the blocking
// loops, so program-mode ranks run them without goroutines while
// goroutine-backed ranks execute the identical bodies synchronously.

// torusBcastState is the job-wide shared state of one torus broadcast: the
// per-node network delivery logs plus the intra-node coordination counters
// each algorithm variant needs.
type torusBcastState struct {
	src  data.Buf
	dels []*ccmi.Delivery

	sw   []*sim.Counter   // per node: master-published software message counter
	done []*sim.Counter   // per node: peers finished copying out
	peer [][]*sim.Counter // per node, per local peer: bytes landed for that peer
	enq  []*sim.Counter   // per node: Bcast-FIFO bytes enqueued by the master

	masterBuf []data.Buf // per node: the master's receive buffer (window keys)
}

const torusBcastKind = "bcast.torus"

func getTorusBcastState(r *mpi.Rank, seq int64) *torusBcastState {
	return r.WorldShared(seq, torusBcastKind, func() any {
		m := r.Machine()
		nodes := m.Geom.Nodes()
		ppn := r.LocalSize()
		st := &torusBcastState{
			dels: make([]*ccmi.Delivery, nodes),
			sw:   make([]*sim.Counter, nodes),
			done: make([]*sim.Counter, nodes),
			peer: make([][]*sim.Counter, nodes),
			enq:  make([]*sim.Counter, nodes),
		}
		for n := 0; n < nodes; n++ {
			st.dels[n] = ccmi.NewDelivery(m.K, fmt.Sprintf("bcast%d.node%d", seq, n))
			st.sw[n] = m.K.NewCounter("sw")
			st.done[n] = m.K.NewCounter("done")
			st.enq[n] = m.K.NewCounter("enq")
			st.peer[n] = make([]*sim.Counter, ppn)
			for p := 1; p < ppn; p++ {
				st.peer[n][p] = m.K.NewCounter("peer")
			}
		}
		st.masterBuf = make([]data.Buf, nodes)
		return st
	}).(*torusBcastState)
}

// torusFinish builds the completion continuation every torus broadcast ends
// with: install the payload on non-root ranks, release the shared state (the
// position the blocking form's defer ran at), then continue.
func torusFinish(r *mpi.Rank, st *torusBcastState, seq int64, buf data.Buf, root int, done func()) func() {
	return func() {
		if r.Rank() != root {
			installPayload(buf, st.src)
		}
		r.ReleaseWorldShared(seq, torusBcastKind)
		done()
	}
}

// startTorusNetwork launches the multi-color rectangle broadcast from the
// root rank's node. Called by the root rank only.
func startTorusNetwork(r *mpi.Rank, st *torusBcastState, buf data.Buf, hook func(node int, span hw.Span, t sim.Time)) {
	m := r.Machine()
	st.src = buf
	colors := m.Colors()
	if n := r.World().Tunables.TorusColors; n > 0 && n <= len(colors) {
		colors = colors[:n]
	}
	b := &ccmi.Bcast{
		M:          m,
		Root:       r.Coord(),
		Src:        buf,
		Bufs:       make([]data.Buf, m.Geom.Nodes()),
		Deliveries: st.dels,
		Colors:     colors,
		Lane0:      0,
		Hook:       hook,
	}
	b.Run()
}

// bcastTorusDirectPut is the current production algorithm (paper §V-A): the
// DMA performs the network transfer, and in quad mode also the fourth,
// intra-node dimension of the spanning tree — three additional local direct
// puts per delivered chunk, all contending on the same engine.
func bcastTorusDirectPut(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	total := buf.Len()
	m := r.Machine()
	ppn := r.LocalSize()
	finish := torusFinish(r, st, seq, buf, root, done)

	if r.Rank() == root {
		hook := func(node int, span hw.Span, t sim.Time) {
			for p := 1; p < ppn; p++ {
				putDone := m.Node(node).DMA.LocalCopy(t, span.Len)
				cnt := st.peer[node][p]
				m.K.At(putDone, func() { cnt.Add(int64(span.Len)) })
			}
		}
		startTorusNetwork(r, st, buf, hook)
	}

	if r.IsNodeMaster() {
		// Block until this rank's node has received the full message.
		r.Proc().WaitGEThen(st.dels[r.NodeID()].Counter, int64(total), finish)
	} else {
		r.Proc().WaitGEThen(st.peer[r.NodeID()][r.LocalRank()], int64(total), finish)
	}
}

// bcastTorusShaddr is the proposed shared-address algorithm (paper §V-A):
// the network direct-puts into the master's application buffer; the master
// mirrors the DMA byte counters into a software message counter; peers copy
// newly arrived ranges directly out of the master's buffer through process
// windows; an atomic completion counter returns the buffer to the master.
func bcastTorusShaddr(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	total := buf.Len()
	node := r.NodeID()
	finish := torusFinish(r, st, seq, buf, root, done)

	if r.Rank() == root {
		startTorusNetwork(r, st, buf, nil)
	}

	switch {
	case r.IsNodeMaster():
		st.masterBuf[node] = buf
		del := st.dels[node]
		sw := st.sw[node]
		spanIdx := 0
		var pump func(got int)
		pump = func(got int) {
			if got >= total {
				// The master may reuse its buffer once every peer has
				// copied out.
				r.Proc().WaitGEThen(st.done[node], int64(r.LocalSize()-1), finish)
				return
			}
			r.Proc().WaitGEThen(del.Counter, int64(got)+1, func() {
				batch := sumSpanLens(del.Drain(&spanIdx))
				// Mirror the hardware counter into the shared software
				// counter the peers poll.
				r.Node().HW.PollThen(r.Proc(), func() {
					sw.Add(int64(batch))
					pump(got + batch)
				})
			})
		}
		pump(0)

	default:
		sw := st.sw[node]
		del := st.dels[node]
		if r.Rank() == root {
			// A non-master root already holds the data; it only signals.
			st.done[node].Add(1)
			finish()
			return
		}
		// The first published range also tells us the master has arrived
		// and its buffer is registered; map it once.
		r.Proc().WaitGEThen(sw, 1, func() {
			r.CNK().MapThen(r.Proc(), windowKey(0, st.masterBuf[node]), total, func() {
				cached := quadBcastFootprint(r, total)
				spanIdx := 0
				var outer func(seen int)
				outer = func(seen int) {
					if seen >= total {
						st.done[node].Add(1)
						finish()
						return
					}
					r.Proc().WaitGEThen(sw, int64(seen)+1, func() {
						r.Node().HW.PollThen(r.Proc(), func() {
							avail := int(sw.Value())
							var copyNext func(seen int)
							copyNext = func(seen int) {
								if spanIdx < len(del.Spans) && seen < avail {
									span := del.Spans[spanIdx]
									spanIdx++
									r.Node().HW.CopyThen(r.Proc(), span.Len, cached, func() {
										copyNext(seen + span.Len)
									})
									return
								}
								outer(seen)
							}
							copyNext(seen)
						})
					})
				}
				outer(0)
			})
		})
	}
}

// bcastTorusFIFO is the shared-memory Bcast-FIFO algorithm (paper §V-A): the
// master packetizes chunks received in its application buffer into the
// concurrent broadcast FIFO (data plus connection-id metadata per slot); the
// three peers dequeue every slot. FIFO capacity provides back-pressure.
func bcastTorusFIFO(r *mpi.Rank, buf data.Buf, root int, done func()) {
	seq := r.NextSeq()
	st := getTorusBcastState(r, seq)
	total := buf.Len()
	node := r.NodeID()
	params := r.Machine().Cfg.Params
	slot := params.FIFOSlotBytes
	capacity := slot * params.FIFOSlots
	// Staging through the FIFO doubles the traffic over every byte, so the
	// effective working set is twice the shared-address scheme's; large
	// messages fall out of the cache earlier.
	cached := r.Node().HW.Cached(2 * r.LocalSize() * total)
	finish := torusFinish(r, st, seq, buf, root, done)

	if r.Rank() == root {
		startTorusNetwork(r, st, buf, nil)
	}

	switch {
	case r.IsNodeMaster():
		del := st.dels[node]
		enq := st.enq[node]
		var outer func(enqueued int)
		var slots func(enqueued, avail int)
		outer = func(enqueued int) {
			if enqueued >= total {
				r.Proc().WaitGEThen(st.done[node], int64(r.LocalSize()-1), finish)
				return
			}
			r.Proc().WaitGEThen(del.Counter, int64(enqueued)+1, func() {
				slots(enqueued, int(del.Counter.Value()))
			})
		}
		slots = func(enqueued, avail int) {
			if enqueued >= avail {
				outer(enqueued)
				return
			}
			piece := slot
			if avail-enqueued < piece {
				piece = avail - enqueued
			}
			enqueue := func() {
				// Copy data and metadata into the reserved slot.
				r.Node().HW.CopyThen(r.Proc(), piece, cached, func() {
					enq.Add(int64(piece))
					slots(enqueued+piece, avail)
				})
			}
			// Space check: every peer must have drained far enough that a
			// slot is free (myslot - head < fifoSize).
			if thr := int64(enqueued + piece - capacity); thr > 0 {
				var waitPeers func(p int)
				waitPeers = func(p int) {
					if p >= r.LocalSize() {
						enqueue()
						return
					}
					r.Proc().WaitGEThen(st.peer[node][p], thr, func() { waitPeers(p + 1) })
				}
				waitPeers(1)
			} else {
				enqueue()
			}
		}
		outer(0)

	default:
		enq := st.enq[node]
		consumed := st.peer[node][r.LocalRank()]
		isRoot := r.Rank() == root
		var outer func(seen int)
		var slots func(seen, avail int)
		outer = func(seen int) {
			if seen >= total {
				st.done[node].Add(1)
				finish()
				return
			}
			r.Proc().WaitGEThen(enq, int64(seen)+1, func() {
				slots(seen, int(enq.Value()))
			})
		}
		slots = func(seen, avail int) {
			if seen >= avail {
				outer(seen)
				return
			}
			piece := slot
			if avail-seen < piece {
				piece = avail - seen
			}
			after := func() {
				// The last arriving reader's decrement frees the slot.
				consumed.Add(int64(piece))
				slots(seen+piece, avail)
			}
			if !isRoot {
				r.Node().HW.PollThen(r.Proc(), func() {
					r.Node().HW.CopyThen(r.Proc(), piece, cached, after)
				})
				return
			}
			after()
		}
		outer(0)
	}
}
