package coll

import (
	"bgpcoll/internal/cnk"
	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

// Register installs every algorithm in the mpi registries. The facade calls
// it once at startup. The broadcast and allreduce families register in
// program form, which also derives their blocking entry points; the
// extension collectives remain goroutine-only.
func Register() {
	mpi.RegisterProgBcast(mpi.BcastTorusDirectPut, bcastTorusDirectPut)
	mpi.RegisterProgBcast(mpi.BcastTorusShaddr, bcastTorusShaddr)
	mpi.RegisterProgBcast(mpi.BcastTorusFIFO, bcastTorusFIFO)
	mpi.RegisterProgBcast(mpi.BcastTreeSMP, bcastTreeSMP)
	mpi.RegisterProgBcast(mpi.BcastTreeShmem, bcastTreeShmem)
	mpi.RegisterProgBcast(mpi.BcastTreeDMAFIFO, bcastTreeDMAFIFO)
	mpi.RegisterProgBcast(mpi.BcastTreeDMADirect, bcastTreeDMADirect)
	mpi.RegisterProgBcast(mpi.BcastTreeShaddr, bcastTreeShaddr)
	mpi.RegisterProgAllreduce(mpi.AllreduceTorusCurrent, allreduceCurrent)
	mpi.RegisterProgAllreduce(mpi.AllreduceTorusNew, allreduceShaddr)
	mpi.RegisterGather(mpi.GatherTorus, gatherTorus)
	mpi.RegisterAllgather(mpi.AllgatherTorus, allgatherTorus)
	mpi.RegisterAllgather(mpi.AllgatherRing, allgatherRing)
	mpi.RegisterReduce(mpi.ReduceTorus, reduceTorus)
	mpi.RegisterScatter(mpi.ScatterTorus, scatterTorus)
	mpi.RegisterAlltoall(mpi.AlltoallTorus, alltoallTorus)
}

// windowKey builds the CNK buffer key for mapping a peer's buffer.
func windowKey(peerLRank int, buf data.Buf) cnk.BufferKey {
	return cnk.BufferKey{OwnerLocalRank: peerLRank, Tag: buf.ID()}
}

// quadBcastFootprint is the node cache working set of a quad-mode broadcast:
// all four ranks' message buffers.
func quadBcastFootprint(r *mpi.Rank, n int) bool {
	return r.Node().HW.Cached(r.LocalSize() * n)
}

// installPayload copies the authoritative broadcast payload into a rank's
// buffer at completion (functional bookkeeping; see the package comment).
func installPayload(dst, src data.Buf) {
	if dst.Len() == src.Len() && dst.Len() > 0 {
		data.Copy(dst, src)
	}
}

// sumSpanLens totals a span list's bytes.
func sumSpanLens(spans []hw.Span) int {
	n := 0
	for _, s := range spans {
		n += s.Len
	}
	return n
}
