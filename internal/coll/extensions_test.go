package coll

import (
	"testing"

	"bgpcoll/internal/data"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

func TestReduceCorrect(t *testing.T) {
	for _, root := range []int{0, 5, 31} {
		cfg := testConfig(2, 2, 2, hw.Quad)
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const doubles = 1024
		size := cfg.Ranks()
		if _, err := w.Run(func(r *mpi.Rank) {
			send := r.NewBuf(doubles * data.Float64Len)
			vals := make([]float64, doubles)
			for i := range vals {
				vals[i] = float64(r.Rank() + 1)
			}
			send.PutFloats(vals)
			var recv data.Buf
			if r.Rank() == root {
				recv = r.NewBuf(doubles * data.Float64Len)
			}
			r.ReduceSum(send, recv, root)
			if r.Rank() == root {
				want := float64(size*(size+1)) / 2
				for i, v := range recv.Floats() {
					if v != want {
						t.Errorf("root %d elem %d = %v, want %v", root, i, v, want)
						break
					}
				}
			}
		}); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestReduceSMP(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.SMP)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const doubles = 512
	if _, err := w.Run(func(r *mpi.Rank) {
		send := r.NewBuf(doubles * data.Float64Len)
		vals := make([]float64, doubles)
		for i := range vals {
			vals[i] = 2
		}
		send.PutFloats(vals)
		recv := r.NewBuf(doubles * data.Float64Len)
		r.ReduceSum(send, recv, 0)
		if r.Rank() == 0 {
			if got := recv.Floats()[0]; got != float64(2*r.Size()) {
				t.Errorf("sum = %v, want %d", got, 2*r.Size())
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceCheaperThanAllreduce(t *testing.T) {
	// Reduce skips the broadcast-down phase, so it must be faster.
	cfg := testConfig(4, 4, 2, hw.Quad)
	cfg.Functional = false
	const doubles = 64 << 10
	measure := func(op func(r *mpi.Rank, send, recv data.Buf)) int64 {
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		el, err := w.Run(func(r *mpi.Rank) {
			send := r.NewBuf(doubles * data.Float64Len)
			recv := r.NewBuf(doubles * data.Float64Len)
			op(r, send, recv)
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(el)
	}
	allreduce := measure(func(r *mpi.Rank, send, recv data.Buf) { r.AllreduceSum(send, recv) })
	reduce := measure(func(r *mpi.Rank, send, recv data.Buf) { r.ReduceSum(send, recv, 0) })
	if reduce >= allreduce {
		t.Fatalf("reduce %d not faster than allreduce %d", reduce, allreduce)
	}
}

func TestScatterCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const block = 2048
	root := 7
	if _, err := w.Run(func(r *mpi.Rank) {
		var send data.Buf
		if r.Rank() == root {
			send = r.NewBuf(block * r.Size())
			for i := 0; i < r.Size(); i++ {
				send.Slice(i*block, block).Fill(uint64(i) + 100)
			}
		}
		recv := r.NewBuf(block)
		r.Scatter(send, recv, root)
		want := data.New(block, true)
		want.Fill(uint64(r.Rank()) + 100)
		if !data.Equal(recv, want) {
			t.Errorf("rank %d got wrong scatter block", r.Rank())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const block = 1024
	if _, err := w.Run(func(r *mpi.Rank) {
		size := r.Size()
		send := r.NewBuf(block * size)
		for j := 0; j < size; j++ {
			// Block for rank j is tagged with (me, j).
			send.Slice(j*block, block).Fill(uint64(r.Rank()*1000 + j))
		}
		recv := r.NewBuf(block * size)
		r.Alltoall(send, recv)
		for i := 0; i < size; i++ {
			want := data.New(block, true)
			want.Fill(uint64(i*1000 + r.Rank()))
			if !data.Equal(recv.Slice(i*block, block), want) {
				t.Errorf("rank %d block from %d corrupted", r.Rank(), i)
				break
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallLargeBlocksRendezvous(t *testing.T) {
	cfg := testConfig(2, 1, 1, hw.Quad)
	cfg.Functional = false
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const block = 64 << 10 // above eager limit
	if _, err := w.Run(func(r *mpi.Rank) {
		send := r.NewBuf(block * r.Size())
		recv := r.NewBuf(block * r.Size())
		r.Alltoall(send, recv)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDualModeCollectives(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Dual)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Ranks() != 8 {
		t.Fatalf("dual ranks = %d", cfg.Ranks())
	}
	const msg = 32 << 10
	if _, err := w.Run(func(r *mpi.Rank) {
		buf := r.NewBuf(msg)
		if r.Rank() == 0 {
			buf.Fill(5)
		}
		r.Bcast(buf, 0)
		want := data.New(msg, true)
		want.Fill(5)
		if !data.Equal(buf, want) {
			t.Errorf("dual bcast rank %d corrupted", r.Rank())
		}
		// Allreduce in dual mode.
		send := r.NewBuf(256 * data.Float64Len)
		recv := r.NewBuf(256 * data.Float64Len)
		vals := make([]float64, 256)
		for i := range vals {
			vals[i] = 1
		}
		send.PutFloats(vals)
		r.AllreduceSum(send, recv)
		if got := recv.Floats()[0]; got != float64(r.Size()) {
			t.Errorf("dual allreduce = %v, want %d", got, r.Size())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherRingCorrect(t *testing.T) {
	cfg := testConfig(2, 2, 1, hw.Quad)
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Tunables.Allgather = mpi.AllgatherRing
	const block = 512
	if _, err := w.Run(func(r *mpi.Rank) {
		send := r.NewBuf(block)
		send.Fill(uint64(r.Rank()) + 7)
		recv := r.NewBuf(block * r.Size())
		r.Allgather(send, recv)
		for src := 0; src < r.Size(); src++ {
			want := data.New(block, true)
			want.Fill(uint64(src) + 7)
			if !data.Equal(recv.Slice(src*block, block), want) {
				t.Errorf("rank %d: ring allgather block %d corrupted", r.Rank(), src)
				break
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherComposedBeatsRingAtScale(t *testing.T) {
	// With many ranks and substantial blocks, the composed gather+bcast
	// exploits the optimized six-color broadcast for the volume-dominant
	// phase; the ring pays P-1 serialized rendezvous steps.
	cfg := testConfig(4, 4, 2, hw.Quad) // 128 ranks
	cfg.Functional = false
	const block = 64 << 10
	measure := func(algo string) int64 {
		w, err := mpi.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w.Tunables.Allgather = algo
		el, err := w.Run(func(r *mpi.Rank) {
			send := r.NewBuf(block)
			recv := r.NewBuf(block * r.Size())
			r.Allgather(send, recv)
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		return int64(el)
	}
	ring := measure(mpi.AllgatherRing)
	composed := measure(mpi.AllgatherTorus)
	if composed >= ring {
		t.Fatalf("composed allgather %d not faster than ring %d at 128 ranks", composed, ring)
	}
}
