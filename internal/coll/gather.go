package coll

import (
	"bgpcoll/internal/data"
	"bgpcoll/internal/mpi"
)

// gatherTag is the reserved point-to-point tag space for gather traffic.
const gatherTag = 1 << 20

// allgatherRingTagBase reserves tag space for the ring allgather.
const allgatherRingTagBase = 4 << 20

// gatherTorus implements MPI_Gather over the torus point-to-point substrate
// (the paper's future-work extension): every rank sends its block to the
// root, which assembles them in rank order. Small blocks travel eagerly,
// large blocks via rendezvous direct put.
func gatherTorus(r *mpi.Rank, send, recv data.Buf, root int) {
	seq := r.NextSeq()
	block := send.Len()
	if r.Rank() != root {
		r.Send(root, send, gatherTag+int(seq%gatherTag))
		return
	}
	if recv.Len() != block*r.Size() {
		panic("coll: gather receive buffer must hold Size() blocks")
	}
	// Post every receive up front so the transfers overlap; the torus and
	// the root's DMA arbitrate the fan-in.
	reqs := make([]*mpi.Request, 0, r.Size()-1)
	for src := 0; src < r.Size(); src++ {
		dst := recv.Slice(src*block, block)
		if src == root {
			// The root's own block: a local copy.
			r.Node().HW.Copy(r.Proc(), block, r.Node().HW.Cached(2*block))
			data.Copy(dst, send)
			continue
		}
		reqs = append(reqs, r.Irecv(src, dst, gatherTag+int(seq%gatherTag)))
	}
	r.WaitAll(reqs...)
}

// allgatherTorus implements MPI_Allgather as a gather to rank 0 followed by
// the optimized broadcast of the assembled buffer — reusing the paper's
// shared-address machinery for the volume-dominant phase.
func allgatherTorus(r *mpi.Rank, send, recv data.Buf) {
	if recv.Len() != send.Len()*r.Size() {
		panic("coll: allgather receive buffer must hold Size() blocks")
	}
	r.Gather(send, recv, 0)
	r.Bcast(recv, 0)
}

// allgatherRing implements MPI_Allgather with the classic ring algorithm:
// in step s every rank passes along the block it obtained s steps ago. P-1
// steps of one block each; bandwidth-optimal on a ring but without the
// torus broadcast's six-way parallelism, so the composed gather+bcast
// (allgather.torus) wins for large aggregate sizes.
func allgatherRing(r *mpi.Rank, send, recv data.Buf) {
	seq := r.NextSeq()
	size := r.Size()
	block := send.Len()
	if recv.Len() != block*size {
		panic("coll: allgather receive buffer must hold Size() blocks")
	}
	me := r.Rank()
	base := allgatherRingTagBase + int(seq%allgatherRingTagBase)

	// Own block in place.
	r.Node().HW.Copy(r.Proc(), block, r.Node().HW.Cached(2*block))
	data.Copy(recv.Slice(me*block, block), send)

	right := (me + 1) % size
	left := (me - 1 + size) % size
	for s := 0; s < size-1; s++ {
		outIdx := (me - s + size) % size
		inIdx := (me - s - 1 + size) % size
		r.Sendrecv(right, recv.Slice(outIdx*block, block), base+s,
			left, recv.Slice(inIdx*block, block), base+s)
	}
}
