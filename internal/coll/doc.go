// Package coll implements every collective algorithm the paper describes —
// the current production algorithms and the proposed shared-memory,
// shared-address, and core-specialization designs — on top of the ccmi
// schedules and the mpi runtime.
//
// Broadcast over the collective (tree) network (§V-B):
//
//	tree.smp        SMP mode: main thread injects, helper thread receives.
//	tree.shmem      quad: one master core injects and receives into a shared
//	                segment; peers copy out. Latency-optimized.
//	tree.dmafifo    quad: master core injects/receives; the DMA moves data to
//	                per-core memory FIFOs; peers copy FIFO -> buffer.
//	tree.dmadirect  quad: as dmafifo but the DMA direct-puts into the peers'
//	                application buffers.
//	tree.shaddr     quad: core specialization — local rank 0 injects, rank 1
//	                receives into its application buffer, ranks 2 and 3 copy
//	                through process windows, rank 2 additionally fills rank
//	                0's buffer (the injector has no cycles to copy).
//
// Broadcast over the torus (§V-A):
//
//	torus.directput  the DMA moves data over the network and, in quad mode,
//	                 as the spanning tree's intra-node fourth dimension.
//	torus.fifo       quad: the master enqueues received chunks into the
//	                 concurrent Bcast FIFO; peers dequeue.
//	torus.shaddr     quad: the master receives into its application buffer
//	                 and mirrors the DMA byte counters into software message
//	                 counters; peers copy arrived ranges directly.
//
// Allreduce over the torus (§V-C):
//
//	allreduce.current  local reduce and local broadcast move every buffer
//	                   through the DMA, and the master core performs both
//	                   the local reduction and the network protocol.
//	allreduce.shaddr   core specialization: cores 1-3 locally reduce and
//	                   later copy out one color partition each through
//	                   process windows; core 0 runs only the network
//	                   protocol.
//
// Gather and Allgather over the torus implement the paper's future-work
// extension using the same point-to-point substrate.
//
// Functional correctness is handled uniformly: timing-relevant copies are
// charged where the paper's design performs them, while each rank installs
// the actual payload bytes from the authoritative source buffer when its
// participation completes (equivalent content, zero additional virtual
// time). The ccmi tests verify span-exact data plumbing at the network
// layer.
package coll
