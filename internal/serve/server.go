// HTTP surface of bgpsimd. Three request shapes, one cache: a single run
// (POST /v1/run), a sweep grid (POST /v1/sweep), and a whole named figure
// (GET /v1/figure) all decompose into cells before touching the pool, so a
// figure request warms the cache for the ad-hoc requests inside it and vice
// versa. Response bodies are rebuilt from cached picosecond entries through
// pure conversions and deterministic JSON marshaling (struct fields only, no
// maps), so a warm response is byte-identical to the cold one; cache status
// travels in the X-Cache header (hit / partial / miss), never in the body.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/serve/reqspec"
	"bgpcoll/internal/sim"
)

// Config sizes a server.
type Config struct {
	Workers   int  // pool workers (0 = 1)
	QueueCap  int  // max cells waiting for a worker (0 = 64)
	ClientCap int  // max outstanding cells per client (0 = QueueCap)
	Reference bool // run kernels in the reference vehicle (bit-identical times)

	// RunCell overrides cell execution; tests inject counters or blockers
	// here. nil = Cell.Run under the vehicle chosen by Reference.
	RunCell func(bench.Cell) (sim.Time, error)
}

// Server is the bgpsimd HTTP handler set plus its store, pool, and metrics.
type Server struct {
	store   *Store
	metrics *Metrics
	pool    *Pool
	mux     *http.ServeMux
}

// New builds a server around store (which may be pre-loaded from a cache
// file). Close must be called to join the worker pool.
func New(store *Store, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.ClientCap <= 0 {
		cfg.ClientCap = cfg.QueueCap
	}
	run := cfg.RunCell
	if run == nil {
		mode := bench.RunMode{Reference: cfg.Reference}
		run = func(c bench.Cell) (sim.Time, error) { return c.Run(mode) }
	}
	s := &Server{store: store, metrics: NewMetrics()}
	// Feed the fingerprint-latency histogram from the bench extrapolator.
	// The observer is process-wide; the newest server wins, which is the
	// running one everywhere outside multi-server tests.
	bench.SetFingerprintObserver(func(d time.Duration) {
		s.metrics.ObserveFingerprint(float64(d.Nanoseconds()) / 1e6)
	})
	s.pool = NewPool(store, s.metrics, cfg.Workers, cfg.QueueCap, cfg.ClientCap, run)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/figure", s.handleFigure)
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the instrumentation (for the main package's final stats).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close joins the worker pool. Call after the HTTP listener has stopped.
func (s *Server) Close() { s.pool.Close() }

// client extracts the fairness identity: the peer host, so one misbehaving
// host cannot starve others however many connections it opens.
func client(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.store)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

// submit runs cells through the pool and writes obj as the JSON response
// body with the X-Cache verdict, mapping ErrBusy to 429.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, cells []bench.Cell, body func(entries []Entry) any) {
	entries, hits, err := s.pool.Submit(client(r), cells)
	if errors.Is(err, ErrBusy) {
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	verdict := "miss"
	switch {
	case hits == len(cells):
		verdict = "hit"
	case hits > 0:
		verdict = "partial"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", verdict)
	data, err := json.Marshal(body(entries))
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Write(append(data, '\n'))
}

// runRequest is the /v1/run body: the bgpsim CLI's flags as JSON, parsed by
// the same reqspec grammar. For allreduce the size is still bytes; the
// operand length is size/8 doubles.
type runRequest struct {
	Op    string `json:"op"`    // "bcast" (default) or "allreduce"
	Algo  string `json:"algo"`  // required; see reqspec listings
	Size  string `json:"size"`  // "64K", "2M", ... (default "1M")
	Torus string `json:"torus"` // "DXxDYxDZ" (default "8x8x8")
	Mode  string `json:"mode"`  // smp/dual/quad (default "quad")
	Iters int    `json:"iters"` // micro-benchmark repetitions (default 1)
}

// cellResult is one measurement in a response body.
type cellResult struct {
	Series string  `json:"series"`
	Bytes  int     `json:"bytes"`
	PS     int64   `json:"ps"`
	US     float64 `json:"us"`
}

func resultOf(c bench.Cell, e Entry) cellResult {
	return cellResult{Series: c.Series, Bytes: c.Bytes(), PS: e.PS, US: sim.Time(e.PS).Microseconds()}
}

// buildCell validates one runRequest into a Cell.
func buildCell(q runRequest) (bench.Cell, error) {
	if q.Op == "" {
		q.Op = "bcast"
	}
	if q.Size == "" {
		q.Size = "1M"
	}
	if q.Torus == "" {
		q.Torus = "8x8x8"
	}
	if q.Mode == "" {
		q.Mode = "quad"
	}
	if q.Iters <= 0 {
		q.Iters = 1
	}
	size, err := reqspec.ParseSize(q.Size)
	if err != nil {
		return bench.Cell{}, err
	}
	if size <= 0 {
		return bench.Cell{}, fmt.Errorf("size must be positive, got %d", size)
	}
	dx, dy, dz, err := reqspec.ParseTorus(q.Torus)
	if err != nil {
		return bench.Cell{}, err
	}
	mode, err := reqspec.ParseMode(q.Mode)
	if err != nil {
		return bench.Cell{}, err
	}
	cfg := hw.DefaultConfig()
	cfg.Torus.DX, cfg.Torus.DY, cfg.Torus.DZ = dx, dy, dz
	cfg.Mode = mode
	cfg.Functional = false
	if err := cfg.Validate(); err != nil {
		return bench.Cell{}, err
	}
	c := bench.Cell{Experiment: "adhoc", Series: q.Algo, Cfg: cfg, Algo: q.Algo, Iters: q.Iters}
	switch q.Op {
	case "bcast":
		if !reqspec.ValidBcastAlgo(q.Algo) {
			return bench.Cell{}, fmt.Errorf("unknown bcast algorithm %q (have %v)", q.Algo, reqspec.BcastAlgorithms())
		}
		c.Kind, c.Arg = bench.CellBcast, size
	case "allreduce":
		if !reqspec.ValidAllreduceAlgo(q.Algo) {
			return bench.Cell{}, fmt.Errorf("unknown allreduce algorithm %q (have %v)", q.Algo, reqspec.AllreduceAlgorithms())
		}
		c.Kind, c.Arg = bench.CellAllreduce, size/8
		if c.Arg <= 0 {
			return bench.Cell{}, fmt.Errorf("allreduce size %d is under one double", size)
		}
	default:
		return bench.Cell{}, fmt.Errorf("unknown op %q (bcast or allreduce)", q.Op)
	}
	return c, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var q runRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	c, err := buildCell(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.respond(w, r, []bench.Cell{c}, func(entries []Entry) any {
		return resultOf(c, entries[0])
	})
}

// sweepRequest is the /v1/sweep body: a grid of algorithms x sizes over one
// partition, decomposed into one cell each.
type sweepRequest struct {
	Op    string   `json:"op"`
	Algos []string `json:"algos"`
	Sizes []string `json:"sizes"`
	Torus string   `json:"torus"`
	Mode  string   `json:"mode"`
	Iters int      `json:"iters"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var q sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(q.Algos) == 0 || len(q.Sizes) == 0 {
		httpError(w, http.StatusBadRequest, "sweep needs algos and sizes")
		return
	}
	cells := make([]bench.Cell, 0, len(q.Algos)*len(q.Sizes))
	for _, algo := range q.Algos {
		for _, size := range q.Sizes {
			c, err := buildCell(runRequest{Op: q.Op, Algo: algo, Size: size, Torus: q.Torus, Mode: q.Mode, Iters: q.Iters})
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			cells = append(cells, c)
		}
	}
	s.respond(w, r, cells, func(entries []Entry) any {
		out := struct {
			Cells []cellResult `json:"cells"`
		}{Cells: make([]cellResult, len(cells))}
		for i := range cells {
			out.Cells[i] = resultOf(cells[i], entries[i])
		}
		return out
	})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	id := q.Get("id")
	o := bench.Options{Quick: q.Get("quick") == "1" || q.Get("quick") == "true"}
	if v := q.Get("iters"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &o.Iters); err != nil || o.Iters <= 0 {
			httpError(w, http.StatusBadRequest, "bad iters %q", v)
			return
		}
	}
	if v := q.Get("iters_scale"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &o.ItersScale); err != nil || o.ItersScale <= 0 {
			httpError(w, http.StatusBadRequest, "bad iters_scale %q", v)
			return
		}
	}
	if v := q.Get("racks"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &o.Racks); err != nil || o.Racks <= 0 {
			httpError(w, http.StatusBadRequest, "bad racks %q", v)
			return
		}
	}
	plan, err := bench.PlanExperiment(id, o)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.respond(w, r, plan.Cells, func(entries []Entry) any {
		times := make([]sim.Time, len(entries))
		for i, e := range entries {
			times[i] = sim.Time(e.PS)
		}
		return plan.Assemble(times)
	})
}
