package serve

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/coll"
	"bgpcoll/internal/geometry"
	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
	"bgpcoll/internal/sim"
)

func init() { coll.Register() }

// spin yields until cond holds, reporting false (and a test error) if it
// never does. Pool state changes are driven by goroutines already running,
// so yielding (not sleeping) is enough and keeps the wall clock out of the
// tests. Callers run inside runConcurrently goroutines, so spin must not
// Fatal; on a false return the caller still performs its unblocking step
// (closing the release channel) so a failed test cannot deadlock.
func spin(t *testing.T, what string, cond func() bool) bool {
	t.Helper()
	for i := 0; i < 50_000_000; i++ {
		if cond() {
			return true
		}
		runtime.Gosched()
	}
	t.Errorf("condition %q never held", what)
	return false
}

// TestCoalescingExactlyOnce is the acceptance test for the coalescing
// protocol: N concurrent identical cold requests execute the simulation
// exactly once. The injected runCell blocks until every request has been
// classified, so all N demonstrably overlap.
func TestCoalescingExactlyOnce(t *testing.T) {
	const n = 8
	var calls atomic.Int32
	release := make(chan struct{})
	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 4, 32, 32, func(c bench.Cell) (sim.Time, error) {
		calls.Add(1)
		<-release
		return 42_000, nil
	})
	defer p.Close()

	cell := testCell()
	runConcurrently(n+1, func(i int) {
		if i == n {
			// Release only after all n requests are classified — every one
			// of them was in the miss-or-coalesce decision concurrently.
			spin(t, "all classified", func() bool {
				return metrics.Misses.Load()+metrics.Coalesced.Load() == n
			})
			close(release) // even on spin failure, so the test cannot hang
			return
		}
		entries, _, err := p.Submit(fmt.Sprintf("client-%d", i), []bench.Cell{cell})
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
			return
		}
		if entries[0].PS != 42_000 {
			t.Errorf("submit %d: PS = %d", i, entries[0].PS)
		}
	})

	if got := calls.Load(); got != 1 {
		t.Fatalf("simulation executed %d times for %d identical requests", got, n)
	}
	if m, c := metrics.Misses.Load(), metrics.Coalesced.Load(); m != 1 || c != n-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1 and %d", m, c, n-1)
	}
	// A repeat is now a pure store hit.
	_, hits, err := p.Submit("late", []bench.Cell{cell})
	if err != nil || hits != 1 {
		t.Fatalf("repeat: hits=%d err=%v", hits, err)
	}
}

// distinctCells returns n cells that differ only in payload (distinct keys).
func distinctCells(n int) []bench.Cell {
	out := make([]bench.Cell, n)
	for i := range out {
		out[i] = testCell()
		out[i].Arg = 1024 * (i + 1)
	}
	return out
}

// TestQueueBackpressure fills the one-worker pool to its queue bound and
// checks the next miss is refused atomically — ErrBusy, nothing enqueued.
// Steps are sequenced by explicit signals (the worker says when it holds the
// first cell; each filler waits its turn) so every condition the test spins
// on is stable once reached, not a transient gauge reading.
func TestQueueBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 1, 2, 16, func(c bench.Cell) (sim.Time, error) {
		started <- struct{}{}
		<-release
		return 1, nil
	})
	defer p.Close()

	cells := distinctCells(4)
	sig1, sig2 := make(chan struct{}), make(chan struct{})
	runConcurrently(4, func(i int) {
		switch i {
		case 0: // occupies the worker
			p.Submit("a", []bench.Cell{cells[0]})
		case 1: // first queue slot
			<-sig1
			p.Submit("b", []bench.Cell{cells[1]})
		case 2: // second queue slot
			<-sig2
			p.Submit("c", []bench.Cell{cells[2]})
		case 3: // coordinator
			defer close(release) // even on spin failure, so the test cannot hang
			<-started            // worker holds cells[0]; queue is empty
			close(sig1)
			ok := spin(t, "one queued", func() bool { return metrics.QueueDepth.Load() == 1 })
			close(sig2)
			if !ok || !spin(t, "queue full", func() bool { return metrics.QueueDepth.Load() == 2 }) {
				return
			}
			// Queue at bound, worker busy: the next miss must bounce.
			if _, _, err := p.Submit("d", []bench.Cell{cells[3]}); err != ErrBusy {
				t.Errorf("over-bound submit: err = %v, want ErrBusy", err)
			}
		}
	})
	if metrics.Rejected.Load() != 1 {
		t.Fatalf("rejected = %d", metrics.Rejected.Load())
	}
	// The refused cell was never enqueued nor cached.
	if _, ok := store.Get(KeyCell(cells[3])); ok {
		t.Fatal("rejected cell reached the store")
	}
}

// TestPerClientQuota pins fairness: one client saturating its own quota gets
// 429 while another client's requests still go through.
func TestPerClientQuota(t *testing.T) {
	release := make(chan struct{})
	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 1, 32, 2, func(c bench.Cell) (sim.Time, error) {
		<-release
		return 1, nil
	})
	defer p.Close()

	cells := distinctCells(4)
	var politeErr error
	runConcurrently(4, func(i int) {
		switch i {
		case 0:
			p.Submit("greedy", []bench.Cell{cells[0]})
		case 1:
			p.Submit("greedy", []bench.Cell{cells[1]})
		case 2: // polite client submits while greedy is saturated; blocks until release
			if spin(t, "greedy at quota", func() bool { return metrics.Misses.Load() == 2 }) {
				_, _, politeErr = p.Submit("polite", []bench.Cell{cells[3]})
			}
		case 3: // coordinator: greedy's third must bounce, then unblock everyone
			// >=: the polite miss (the third) may classify before we look.
			if spin(t, "greedy at quota", func() bool { return metrics.Misses.Load() >= 2 }) {
				if _, _, err := p.Submit("greedy", []bench.Cell{cells[2]}); err != ErrBusy {
					t.Errorf("third greedy submit: err = %v, want ErrBusy", err)
				}
				// Wait for the polite client's classification so its admission
				// provably happened while greedy was still saturated.
				spin(t, "polite classified", func() bool { return metrics.Misses.Load() == 3 })
			}
			close(release) // even on spin failure, so the test cannot hang
		}
	})
	if politeErr != nil {
		t.Errorf("polite client refused: %v", politeErr)
	}
	// Quota frees on completion: greedy can submit again.
	if _, _, err := p.Submit("greedy", []bench.Cell{cells[2]}); err != nil {
		t.Fatalf("post-drain greedy submit: %v", err)
	}
}

// TestBatchAdmissionAllOrNothing submits a batch larger than the queue and
// checks no partial state leaks: no flights, no quota consumed.
func TestBatchAdmissionAllOrNothing(t *testing.T) {
	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 1, 2, 16, func(c bench.Cell) (sim.Time, error) { return 1, nil })
	defer p.Close()

	if _, _, err := p.Submit("x", distinctCells(3)); err != ErrBusy {
		t.Fatalf("oversized batch: err = %v, want ErrBusy", err)
	}
	if metrics.Misses.Load() != 0 || metrics.QueueDepth.Load() != 0 {
		t.Fatalf("partial admission: misses=%d depth=%d", metrics.Misses.Load(), metrics.QueueDepth.Load())
	}
	// A batch that fits (duplicates coalesce intra-batch: 3 cells, 2 keys).
	cells := distinctCells(2)
	batch := []bench.Cell{cells[0], cells[1], cells[0]}
	entries, _, err := p.Submit("x", batch)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0] != entries[2] {
		t.Fatal("intra-batch duplicate resolved differently")
	}
	if metrics.Coalesced.Load() != 1 || metrics.Misses.Load() != 2 {
		t.Fatalf("intra-batch: coalesced=%d misses=%d", metrics.Coalesced.Load(), metrics.Misses.Load())
	}
}

// TestErrorFlightsRetry pins that failed computations are not cached: the
// next identical request runs again.
func TestErrorFlightsRetry(t *testing.T) {
	var calls atomic.Int32
	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 1, 8, 8, func(c bench.Cell) (sim.Time, error) {
		if calls.Add(1) == 1 {
			return 0, fmt.Errorf("transient")
		}
		return 7, nil
	})
	defer p.Close()

	cell := testCell()
	if _, _, err := p.Submit("x", []bench.Cell{cell}); err == nil {
		t.Fatal("first submit should fail")
	}
	entries, _, err := p.Submit("x", []bench.Cell{cell})
	if err != nil || entries[0].PS != 7 {
		t.Fatalf("retry: %+v, %v", entries, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

// TestPanicBecomesError pins the recover wrapper: a panicking cell yields an
// error response, and the pool keeps serving afterwards.
func TestPanicBecomesError(t *testing.T) {
	var calls atomic.Int32
	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 1, 8, 8, func(c bench.Cell) (sim.Time, error) {
		if calls.Add(1) == 1 {
			panic("boom")
		}
		return 9, nil
	})
	defer p.Close()

	cell := testCell()
	if _, _, err := p.Submit("x", []bench.Cell{cell}); err == nil {
		t.Fatal("panicking cell should surface an error")
	}
	entries, _, err := p.Submit("x", []bench.Cell{cell})
	if err != nil || entries[0].PS != 9 {
		t.Fatalf("pool dead after panic: %+v, %v", entries, err)
	}
}

// TestWorldPoolGrowthUnderMixedConfigs drives the real kernel through the
// server worker pool with concurrent misses on MIXED partition shapes — the
// worldpool's Reconfigure-on-lease growth path — and checks every answer
// against a direct fresh measurement. Run under -race this is the
// satellite check that cross-config world reuse is safe when the serving
// layer, not a benchmark loop, is the driver.
func TestWorldPoolGrowthUnderMixedConfigs(t *testing.T) {
	bench.DrainWorldPool()
	defer bench.DrainWorldPool()

	mkCfg := func(dz int, mode hw.Mode) hw.Config {
		cfg := hw.DefaultConfig()
		cfg.Torus = geometry.Torus{DX: 2, DY: 2, DZ: dz}
		cfg.Mode = mode
		cfg.Functional = false
		return cfg
	}
	var cells []bench.Cell
	for _, cfg := range []hw.Config{mkCfg(2, hw.Quad), mkCfg(4, hw.Quad), mkCfg(2, hw.SMP), mkCfg(4, hw.Dual)} {
		for _, arg := range []int{4 << 10, 64 << 10} {
			cells = append(cells, bench.Cell{
				Experiment: "adhoc", Series: "growth",
				Cfg: cfg, Kind: bench.CellBcast, Algo: mpi.BcastTorusShaddr,
				Arg: arg, Iters: 1,
			})
		}
	}

	store, metrics := NewStore(), NewMetrics()
	p := NewPool(store, metrics, 4, 64, 64, func(c bench.Cell) (sim.Time, error) {
		return c.Run(bench.RunMode{})
	})
	defer p.Close()

	// Concurrent single-cell submissions from distinct clients: workers
	// interleave configs, so pooled worlds get leased across shapes.
	got := make([]Entry, len(cells))
	runConcurrently(len(cells), func(i int) {
		entries, _, err := p.Submit(fmt.Sprintf("c%d", i%3), []bench.Cell{cells[i]})
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
			return
		}
		got[i] = entries[0]
	})
	if t.Failed() {
		t.FailNow()
	}
	for i, c := range cells {
		want, err := bench.MeasureBcastRun(c.Cfg, c.Algo, c.Arg, c.Iters, bench.RunMode{})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].PS != int64(want) {
			t.Fatalf("cell %d: pooled answer %d ps, fresh answer %d ps — cross-config world reuse changed the result", i, got[i].PS, int64(want))
		}
	}
	if metrics.Misses.Load() != int64(len(cells)) {
		t.Fatalf("misses = %d, want %d distinct cells", metrics.Misses.Load(), len(cells))
	}
}
