// Package reqspec is the one request grammar shared by every consumer-facing
// entry point: the bgpsim CLI and the bgpsimd server parse sizes, torus
// geometries, node modes, and algorithm names through these functions, so a
// request means the same thing whichever door it comes through — and a
// cached server result is addressable by the exact string a CLI user would
// have typed.
package reqspec

import (
	"fmt"
	"strconv"
	"strings"

	"bgpcoll/internal/hw"
	"bgpcoll/internal/mpi"
)

// ParseSize parses a byte count with the benchmark axes' K/M suffixes
// ("512", "64K", "2M", case-insensitive, surrounding whitespace ignored).
func ParseSize(s string) (int, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}

// ParseTorus parses a partition geometry "DXxDYxDZ" (case-insensitive x).
func ParseTorus(s string) (dx, dy, dz int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("torus must be DXxDYxDZ, got %q", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		dims[i], err = strconv.Atoi(p)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("torus dimension %q: %w", p, err)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

// ParseMode parses a node mode name ("smp", "dual", "quad",
// case-insensitive).
func ParseMode(s string) (hw.Mode, error) {
	switch strings.ToLower(s) {
	case "smp":
		return hw.SMP, nil
	case "dual":
		return hw.Dual, nil
	case "quad":
		return hw.Quad, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

// BcastAlgorithms lists the registered broadcast algorithm names, sorted.
func BcastAlgorithms() []string { return mpi.BcastAlgorithms() }

// AllreduceAlgorithms lists the allreduce algorithm names a request may
// select.
func AllreduceAlgorithms() []string {
	return []string{mpi.AllreduceTorusNew, mpi.AllreduceTorusCurrent}
}

// ValidBcastAlgo reports whether name is a registered broadcast algorithm.
func ValidBcastAlgo(name string) bool {
	for _, n := range BcastAlgorithms() {
		if n == name {
			return true
		}
	}
	return false
}

// ValidAllreduceAlgo reports whether name is a selectable allreduce
// algorithm.
func ValidAllreduceAlgo(name string) bool {
	for _, n := range AllreduceAlgorithms() {
		if n == name {
			return true
		}
	}
	return false
}
