package reqspec

import (
	"strconv"
	"strings"
	"testing"

	"bgpcoll/internal/coll"
	"bgpcoll/internal/hw"
)

func init() { coll.Register() }

// legacyParseSize is the cmd/bgpsim implementation as it stood before the
// grammar moved here, kept verbatim so the test pins CLI/server equivalence:
// any divergence between what `bgpsim -size` accepted and what the shared
// parser accepts fails here.
func legacyParseSize(s string) (int, bool) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return n * mult, true
}

func TestParseSizeEquivalence(t *testing.T) {
	cases := []string{
		"1", "17", "512", "1024",
		"1K", "64K", "1k", " 64k ", "128K",
		"1M", "2M", "4m", " 2M",
		"0", "-5",
		"", "x", "1.5M", "KM", "K", "64KB",
	}
	for _, in := range cases {
		want, wantOK := legacyParseSize(in)
		got, err := ParseSize(in)
		if wantOK != (err == nil) {
			t.Errorf("ParseSize(%q): err=%v, legacy ok=%v", in, err, wantOK)
			continue
		}
		if err == nil && got != want {
			t.Errorf("ParseSize(%q) = %d, legacy %d", in, got, want)
		}
	}
}

func TestParseSizeValues(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int
	}{
		{"64K", 64 << 10}, {"2M", 2 << 20}, {"17", 17}, {"1k", 1 << 10}, {" 4m ", 4 << 20},
	} {
		got, err := ParseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func TestParseTorus(t *testing.T) {
	dx, dy, dz, err := ParseTorus("8x8x16")
	if err != nil || dx != 8 || dy != 8 || dz != 16 {
		t.Fatalf("ParseTorus(8x8x16) = %d,%d,%d,%v", dx, dy, dz, err)
	}
	if dx, dy, dz, err = ParseTorus("2X2X4"); err != nil || dx != 2 || dy != 2 || dz != 4 {
		t.Fatalf("ParseTorus(2X2X4) = %d,%d,%d,%v (uppercase X must parse)", dx, dy, dz, err)
	}
	for _, bad := range []string{"8x8", "8x8x8x8", "axbxc", ""} {
		if _, _, _, err := ParseTorus(bad); err == nil {
			t.Errorf("ParseTorus(%q) succeeded", bad)
		}
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]hw.Mode{"smp": hw.SMP, "SMP": hw.SMP, "dual": hw.Dual, "Quad": hw.Quad} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("octo"); err == nil {
		t.Error("ParseMode(octo) succeeded")
	}
}

// TestAlgorithmListings pins the listing the CLI's -list flag prints and the
// server validates against: broadcasts come from the live registry, and the
// allreduce pair matches what cmd/bgpsim has always printed.
func TestAlgorithmListings(t *testing.T) {
	bs := BcastAlgorithms()
	if len(bs) == 0 {
		t.Fatal("no broadcast algorithms registered")
	}
	for _, n := range bs {
		if !ValidBcastAlgo(n) {
			t.Errorf("listed bcast algo %q not valid", n)
		}
	}
	if ValidBcastAlgo("tree.nonesuch") {
		t.Error("unknown bcast algo accepted")
	}
	ar := AllreduceAlgorithms()
	if len(ar) != 2 || ar[0] != "allreduce.shaddr" || ar[1] != "allreduce.current" {
		t.Fatalf("allreduce listing = %v, want the CLI's [allreduce.shaddr allreduce.current]", ar)
	}
	if !ValidAllreduceAlgo("allreduce.current") || ValidAllreduceAlgo("allreduce.none") {
		t.Error("allreduce validation wrong")
	}
}
