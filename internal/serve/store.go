// The content-addressed result store. Values are virtual times in
// picoseconds — not response bodies — so every endpoint that can phrase its
// work as cells (single runs, sweeps, whole figures) shares one cache, and a
// batch request with partial overlap hits cell by cell. Response bodies are
// rebuilt from entries through pure conversions, which keeps a warm response
// byte-identical to the cold one.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// cacheSchema identifies the persisted cache file format. cmd/benchdiff
// probes for it to accept a cache file as a report source.
const cacheSchema = "bgpsimd-cache/v1"

// Entry is one cached measurement. Canon is carried in full (not just the
// digest) so a persisted cache is auditable and so Load can reject entries
// whose key does not match their content — a corrupted or hand-edited file
// degrades to misses, never to wrong answers.
type Entry struct {
	Key        string  `json:"key"`
	Canon      string  `json:"canon"`
	Experiment string  `json:"experiment"` // experiment id of the first requester (reporting only)
	Series     string  `json:"series"`     // curve label of the first requester (reporting only)
	PS         int64   `json:"ps"`         // measured virtual time, picoseconds
	ComputeMS  float64 `json:"compute_ms"` // wall-clock cost of the original miss
}

// Store is the in-memory content-addressed map plus its persistence format.
type Store struct {
	mu      sync.Mutex
	entries map[string]Entry
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{entries: make(map[string]Entry)} }

// Get returns the entry for key, if present.
func (s *Store) Get(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Put records an entry. First write wins: the kernel is deterministic, so a
// second computation of the same key carries the same PS and differs only in
// incidental wall-clock, and keeping the first preserves the cold-miss cost
// the metrics already counted.
func (s *Store) Put(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[e.Key]; !ok {
		s.entries[e.Key] = e
	}
}

// Len returns the number of cached measurements.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Snapshot returns all entries sorted by key — the deterministic order used
// by Save and by benchdiff reports.
func (s *Store) Snapshot() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// cacheFile is the on-disk shape (-cache-file flag).
type cacheFile struct {
	Schema  string  `json:"schema"`
	Entries []Entry `json:"entries"`
}

// Save writes the store as indented JSON, atomically (write temp + rename),
// so a crash mid-save leaves the previous file intact.
func (s *Store) Save(path string) error {
	data, err := json.MarshalIndent(cacheFile{Schema: cacheSchema, Entries: s.Snapshot()}, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load merges entries from a persisted cache file into the store. Entries
// whose key does not re-derive from their canonical form are skipped: they
// can only be corruption or a stale key scheme, and a skipped entry is just
// a future miss. Returns the number of entries accepted.
func (s *Store) Load(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("cache file %s: %w", path, err)
	}
	if f.Schema != cacheSchema {
		return 0, fmt.Errorf("cache file %s: schema %q, want %q", path, f.Schema, cacheSchema)
	}
	n := 0
	for _, e := range f.Entries {
		if rederiveKey(e.Canon) != e.Key {
			continue
		}
		s.Put(e)
		n++
	}
	return n, nil
}
