// Cache-key canonicalization. A bgpsimd cache key names a measurement by its
// physics — (partition config, collective kind, algorithm, payload,
// iterations) — and nothing else: not the figure it belongs to, not the
// execution vehicle (RunMode), not the worker that ran it. The kernel is
// bit-deterministic in exactly those inputs (DESIGN.md §15), so one key has
// one answer forever, and a fig6 cell and a hand-rolled /v1/run request for
// the same measurement share a cache line.
//
// The canonical form follows the golden-digest discipline of
// internal/bench/golden_test.go: stable "path=value" lines in a fixed order,
// hashed with FNV-1a 64. Config fields are walked by reflection in declared
// order, so a future hw.Params field is picked up automatically — adding a
// field changes every key (a new field means the old answers were computed
// under a different, now-ambient assumption), which is precisely the safe
// failure mode for a cache.
package serve

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"strconv"
	"strings"

	"bgpcoll/internal/bench"
)

// keyVersion prefixes every canonical form. Bump it when the meaning of a
// measurement changes without any request field changing (e.g. a kernel
// timing-model fix): stale persisted caches then miss instead of lying.
const keyVersion = "bgpsimd/v1"

// CanonicalCell renders the cell's cache-relevant fields as one stable,
// human-auditable string. Equal strings imply bit-identical virtual times.
func CanonicalCell(c bench.Cell) string {
	var b strings.Builder
	b.Grow(1 << 10)
	fmt.Fprintf(&b, "v=%s\n", keyVersion)
	fmt.Fprintf(&b, "kind=%s\n", c.Kind)
	fmt.Fprintf(&b, "algo=%s\n", c.Algo)
	fmt.Fprintf(&b, "arg=%d\n", c.Arg)
	fmt.Fprintf(&b, "iters=%d\n", c.Iters)
	canonValue(&b, "cfg", reflect.ValueOf(c.Cfg))
	return b.String()
}

// canonValue appends "path=value" lines for v in declared field order.
func canonValue(b *strings.Builder, path string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			canonValue(b, path+"."+t.Field(i).Name, v.Field(i))
		}
	case reflect.Bool:
		fmt.Fprintf(b, "%s=%t\n", path, v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(b, "%s=%d\n", path, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(b, "%s=%d\n", path, v.Uint())
	case reflect.Float32, reflect.Float64:
		// 'g'/-1 is the shortest representation that round-trips, so the
		// canonical form is exact: two configs canonicalize equal iff their
		// float fields are bit-equal.
		fmt.Fprintf(b, "%s=%s\n", path, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		fmt.Fprintf(b, "%s=%s\n", path, v.String())
	default:
		// hw.Config holds only the kinds above today. A future slice or map
		// field must get an explicit ordering rule; refusing loudly beats
		// silently keying on an unstable rendering.
		panic(fmt.Sprintf("serve: cannot canonicalize %s of kind %s", path, v.Kind()))
	}
}

// KeyCell digests the canonical form into the 16-hex-digit content address
// used by the store, the coalescing table, and the persisted cache file.
func KeyCell(c bench.Cell) string { return rederiveKey(CanonicalCell(c)) }

// rederiveKey digests an already-canonical form; Store.Load uses it to check
// persisted entries against their claimed keys.
func rederiveKey(canon string) string {
	h := fnv.New64a()
	h.Write([]byte(canon))
	return fmt.Sprintf("%016x", h.Sum64())
}
