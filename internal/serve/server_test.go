package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bgpcoll/internal/bench"
	"bgpcoll/internal/sim"
)

// newTestServer builds a server and its httptest front end; the returned
// cleanup joins the pool.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(NewStore(), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

// TestFigureCachedByteIdenticalAndFaster is the tentpole acceptance test: a
// repeat of an identical figure request is served from the cache,
// byte-identical, and at least 100x faster than the cold miss.
func TestFigureCachedByteIdenticalAndFaster(t *testing.T) {
	bench.DrainWorldPool()
	defer bench.DrainWorldPool()
	s, ts := newTestServer(t, Config{Workers: 1})
	url := ts.URL + "/v1/figure?id=fig6&quick=1&iters=1&racks=1"

	coldStart := time.Now()
	resp1, body1 := get(t, url)
	cold := time.Since(coldStart)
	if resp1.StatusCode != 200 {
		t.Fatalf("cold: %d %s", resp1.StatusCode, body1)
	}
	if v := resp1.Header.Get("X-Cache"); v != "miss" {
		t.Fatalf("cold X-Cache = %q", v)
	}

	warm := time.Duration(1 << 62)
	var body2 []byte
	for i := 0; i < 5; i++ {
		warmStart := time.Now()
		resp2, b := get(t, url)
		if d := time.Since(warmStart); d < warm {
			warm = d
		}
		if resp2.StatusCode != 200 {
			t.Fatalf("warm: %d %s", resp2.StatusCode, b)
		}
		if v := resp2.Header.Get("X-Cache"); v != "hit" {
			t.Fatalf("warm X-Cache = %q", v)
		}
		body2 = b
	}

	if !bytes.Equal(body1, body2) {
		t.Fatalf("warm response differs from cold:\ncold: %s\nwarm: %s", body1, body2)
	}
	if cold < 100*warm {
		t.Fatalf("cache speedup %.1fx (cold %v, warm %v), want >= 100x", float64(cold)/float64(warm), cold, warm)
	}
	if s.metrics.Hits.Load() == 0 || s.metrics.Misses.Load() == 0 {
		t.Fatalf("metrics: hits=%d misses=%d", s.metrics.Hits.Load(), s.metrics.Misses.Load())
	}

	// The figure parses and carries the fig6 shape.
	var fig bench.Figure
	if err := json.Unmarshal(body1, &fig); err != nil {
		t.Fatal(err)
	}
	if fig.ID != "Fig6" || len(fig.Series) == 0 || len(fig.Sizes) == 0 {
		t.Fatalf("figure body: %+v", fig)
	}
}

// TestRunEndpointMatchesDirectMeasurement pins that an ad-hoc /v1/run answer
// is the same virtual time the bench API reports for the same request.
func TestRunEndpointMatchesDirectMeasurement(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/run",
		`{"op":"bcast","algo":"torus.shaddr","size":"64K","torus":"2x2x2","mode":"quad","iters":2}`)
	if resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Bytes int     `json:"bytes"`
		PS    int64   `json:"ps"`
		US    float64 `json:"us"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	c, err := buildCell(runRequest{Op: "bcast", Algo: "torus.shaddr", Size: "64K", Torus: "2x2x2", Mode: "quad", Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bench.MeasureBcastRun(c.Cfg, c.Algo, c.Arg, c.Iters, bench.RunMode{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bytes != 64<<10 || out.PS != int64(want) || out.US != want.Microseconds() {
		t.Fatalf("run body %+v, want ps=%d", out, int64(want))
	}
}

// TestSweepPartialOverlap warms one cell via /v1/run, then sweeps a grid
// containing it: the response must be partial (cell-level hits, not
// request-level), and the overlapping cell served from the store.
func TestSweepPartialOverlap(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp, body := post(t, ts.URL+"/v1/run",
		`{"op":"bcast","algo":"torus.shaddr","size":"4K","torus":"2x2x2","iters":1}`); resp.StatusCode != 200 {
		t.Fatalf("warmup: %d %s", resp.StatusCode, body)
	}
	resp, body := post(t, ts.URL+"/v1/sweep",
		`{"op":"bcast","algos":["torus.shaddr"],"sizes":["4K","8K"],"torus":"2x2x2","iters":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	if v := resp.Header.Get("X-Cache"); v != "partial" {
		t.Fatalf("sweep X-Cache = %q, want partial", v)
	}
	if s.metrics.Hits.Load() != 1 {
		t.Fatalf("hits = %d, want the overlapping cell", s.metrics.Hits.Load())
	}
	var out struct {
		Cells []struct {
			Bytes int   `json:"bytes"`
			PS    int64 `json:"ps"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 2 || out.Cells[0].PS == 0 || out.Cells[1].PS == 0 {
		t.Fatalf("sweep body: %s", body)
	}
}

// TestHTTPBackpressure429 drives the server past its queue bound over real
// HTTP and checks the refusal is a 429 with the rejection counted.
func TestHTTPBackpressure429(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueCap: 1, ClientCap: 16,
		RunCell: func(c bench.Cell) (sim.Time, error) {
			started <- struct{}{}
			<-release
			return 1, nil
		},
	})
	body := func(size string) string {
		return fmt.Sprintf(`{"op":"bcast","algo":"torus.shaddr","size":%q,"torus":"2x2x2","iters":1}`, size)
	}
	codes := make([]int, 2)
	runConcurrently(3, func(i int) {
		switch i {
		case 0: // fills the worker; blocks until release
			resp, _ := post(t, ts.URL+"/v1/run", body("4K"))
			codes[0] = resp.StatusCode
		case 1: // fills the one queue slot once the worker provably holds case 0
			<-started
			resp, _ := post(t, ts.URL+"/v1/run", body("8K"))
			codes[1] = resp.StatusCode
		case 2:
			ok := spin(t, "pool saturated", func() bool { return s.metrics.Misses.Load() == 2 })
			if ok {
				resp, b := post(t, ts.URL+"/v1/run", body("64K"))
				if resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("over-bound request: %d %s, want 429", resp.StatusCode, b)
				}
			}
			close(release) // even on spin failure, so the test cannot hang
		}
	})
	if codes[0] != 200 || codes[1] != 200 {
		t.Fatalf("admitted requests: %v", codes)
	}
	if s.metrics.Rejected.Load() != 1 {
		t.Fatalf("rejected = %d", s.metrics.Rejected.Load())
	}
}

// TestMetricsExposition checks the Prometheus text format carries the
// counters and histograms CI greps for.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/run", `{"op":"bcast","algo":"torus.shaddr","size":"4K","torus":"2x2x2","iters":1}`)
	post(t, ts.URL+"/v1/run", `{"op":"bcast","algo":"torus.shaddr","size":"4K","torus":"2x2x2","iters":1}`)
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"bgpsimd_cache_hits_total 1",
		"bgpsimd_cache_misses_total 1",
		"bgpsimd_cache_coalesced_total 0",
		"bgpsimd_cache_entries 1",
		"bgpsimd_compute_latency_ms_bucket{experiment=\"adhoc\",le=\"+Inf\"} 1",
		"bgpsimd_compute_latency_ms_count{experiment=\"adhoc\"} 1",
		"bgpsimd_extrapolated_iterations_total ",
		"bgpsimd_fingerprint_ms_bucket{le=\"+Inf\"} ",
		"bgpsimd_fingerprint_ms_count ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, do := range map[string]func() (*http.Response, []byte){
		"bad op":   func() (*http.Response, []byte) { return post(t, ts.URL+"/v1/run", `{"op":"scan","algo":"x"}`) },
		"bad algo": func() (*http.Response, []byte) { return post(t, ts.URL+"/v1/run", `{"algo":"torus.nope"}`) },
		"bad size": func() (*http.Response, []byte) {
			return post(t, ts.URL+"/v1/run", `{"algo":"torus.shaddr","size":"lots"}`)
		},
		"bad torus": func() (*http.Response, []byte) {
			return post(t, ts.URL+"/v1/run", `{"algo":"torus.shaddr","torus":"8x8"}`)
		},
		"bad body":    func() (*http.Response, []byte) { return post(t, ts.URL+"/v1/run", `{`) },
		"bad figure":  func() (*http.Response, []byte) { return get(t, ts.URL+"/v1/figure?id=figs") },
		"bad iters":   func() (*http.Response, []byte) { return get(t, ts.URL+"/v1/figure?id=fig6&iters=zero") },
		"bad scale":   func() (*http.Response, []byte) { return get(t, ts.URL+"/v1/figure?id=fig6&iters_scale=0") },
		"empty sweep": func() (*http.Response, []byte) { return post(t, ts.URL+"/v1/sweep", `{"algos":[],"sizes":[]}`) },
	} {
		resp, body := do()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", name, body)
		}
	}
	if resp, _ := get(t, ts.URL+"/v1/run"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: %d, want 405", resp.StatusCode)
	}
}
